// Quickstart: estimate a PW-RBF macromodel of a 3.3 V CMOS driver from its
// transistor-level reference, validate the submodels, and compare the
// macromodel against the reference on a transmission-line load.
//
// This walks exactly the modeling process of Stievano et al. (DATE 2002),
// Section 2, end to end.
#include <cstdio>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_device.hpp"
#include "core/driver_estimator.hpp"
#include "core/validation.hpp"
#include "devices/reference_driver.hpp"
#include "signal/sources.hpp"

using namespace emc;

int main() {
  std::printf("== PW-RBF driver macromodeling quickstart ==\n");

  // 1. The device under test: a 3.3 V LVC-class buffer (transistor level).
  const auto tech = dev::DriverTech::md1_lvc244();
  core::CircuitDriverDut dut(tech);

  // 2. Estimate the macromodel (submodels + switching weights).
  core::DriverEstimationOptions opt;
  opt.order = 2;
  std::printf("estimating PW-RBF model (order %d)...\n", opt.order);
  auto model = core::estimate_driver_model(dut, opt);
  model.name = "MD1 (74LVC244-class)";
  std::printf("  i_H: %zu basis functions, i_L: %zu basis functions\n",
              model.f_high.num_basis(), model.f_low.num_basis());

  // 3. Submodel accuracy on fresh identification data.
  const auto fit = core::validate_submodels(dut, model, opt);
  std::printf("  free-run rel RMS: high=%.2f%% low=%.2f%%\n", fit.rel_rms_high * 100.0,
              fit.rel_rms_low * 100.0);

  // 4. Closed-loop validation: 50 ohm / 0.5 ns line with a 10 pF far-end
  //    capacitor (the paper's Figure 1 setup), bit pattern "01".
  auto run_validation = [&](bool use_model) {
    ckt::Circuit c;
    const int pad = c.node("pad");
    const int far = c.node("far");
    c.add<ckt::IdealLine>(pad, c.ground(), far, c.ground(), 50.0, 0.5e-9);
    c.add<ckt::Capacitor>(far, c.ground(), 10e-12);
    if (use_model) {
      c.add<core::DriverDevice>(pad, model, "01", 2e-9);
    } else {
      auto pattern = sig::bit_stream("01", 2e-9, 0.1e-9, 0.0, tech.vdd);
      auto inst = dev::build_reference_driver(c, tech, [pattern](double t) { return pattern(t); });
      c.add<ckt::Resistor>(inst.pad, pad, 1e-3);  // tie pad to the probe node
    }
    ckt::TransientOptions topt;
    topt.dt = model.ts;
    topt.t_stop = 12e-9;
    auto res = ckt::run_transient(c, topt);
    return res.waveform(pad);
  };

  std::printf("running reference (transistor level)...\n");
  const auto v_ref = run_validation(false);
  std::printf("running PW-RBF macromodel...\n");
  const auto v_model = run_validation(true);

  const auto rep = core::validate_waveform("near-end v(t), bit 01", v_ref, v_model,
                                           tech.vdd / 2, 0.2e-9);
  std::printf("%s\n", rep.to_line().c_str());
  std::printf("done.\n");
  return 0;
}
