// Corner-sweep walkthrough: estimate a PW-RBF driver macromodel once,
// enumerate a small corner grid (supply x stimulus pattern x line length),
// run the transient -> swept-receiver -> compliance pipeline for every
// corner on a thread pool, and print the per-corner verdicts plus the
// aggregated worst-margin statistics.
//
// The whole sweep runs under the emc::obs instrumentation layer: a Tracer
// records sweep/corner/transient/newton_step spans into
// corner_sweep.trace.json (open it in Perfetto or chrome://tracing), and a
// structured RunReport with the solver statistics, worker utilization and
// metric counters lands in corner_sweep.report.json.
//
//   example_corner_sweep [--jobs N] [--out-dir DIR]
//   (jobs default: hardware concurrency; out-dir default: cwd)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/circuit_dut.hpp"
#include "core/driver_estimator.hpp"
#include "devices/reference_driver.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sweep/sweep_runner.hpp"

using namespace emc;

int main(int argc, char** argv) {
  std::size_t jobs = sweep::ThreadPool::default_workers();
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
      if (!out_dir.empty() && out_dir.back() != '/') out_dir += '/';
    } else {
      std::fprintf(stderr, "usage: example_corner_sweep [--jobs N] [--out-dir DIR]\n");
      return 2;
    }
  }
  const std::string trace_path = out_dir + "corner_sweep.trace.json";
  const std::string report_path = out_dir + "corner_sweep.report.json";

  // Fail up front when the output directory is unwritable: a sweep whose
  // artifacts silently vanish looks identical to one that worked.
  {
    const std::string probe_path = out_dir + ".corner_sweep.probe";
    std::FILE* probe = std::fopen(probe_path.c_str(), "w");
    if (!probe) {
      std::fprintf(stderr,
                   "error: output directory '%s' is not writable (cannot create %s)\n",
                   out_dir.empty() ? "." : out_dir.c_str(), probe_path.c_str());
      return 1;
    }
    std::fclose(probe);
    std::remove(probe_path.c_str());
  }

  std::printf("== corner sweep: one macromodel, many scenarios, %zu workers ==\n", jobs);

  // One estimated macromodel, shared immutably by every sweep worker.
  std::printf("estimating MD3 PW-RBF driver macromodel (one-time cost)...\n");
  core::CircuitDriverDut dut(dev::DriverTech::md3_ibm25());
  auto model = core::estimate_driver_model(dut, core::DriverEstimationOptions{});
  model.name = "MD3";

  // 2 supplies x 2 patterns x 2 lengths = 8 corners.
  sweep::CornerAxes axes;
  axes.vdd_scale = {0.95, 1.05};
  axes.pattern_seed = {1, 2};
  axes.line_length = {0.05, 0.1};
  axes.pattern_bits = 15;
  const sweep::CornerGrid grid(axes);

  sweep::EmissionSweepConfig cfg;
  cfg.model = &model;
  // The paper's Fig. 3 on-MCM coupled land pair (per-meter data).
  cfg.line.l = linalg::Matrix{{466e-9, 66e-9}, {66e-9, 466e-9}};
  cfg.line.c = linalg::Matrix{{66e-12, -6.6e-12}, {-6.6e-12, 66e-12}};
  cfg.line.loss = {66.0, 1.6e-3, 0.001, 1e9};
  cfg.periods = 3;
  cfg.rx.name = "wideband scan";
  cfg.rx.f_start = 50e6;
  cfg.rx.f_stop = 5e9;
  cfg.rx.n_points = 30;
  cfg.rx.tau_charge = 1e-9;
  cfg.rx.tau_discharge = 30e-9;
  cfg.mask = {"board-level mask", {{50e6, 140.0}, {5e9, 90.0}}};

  // Scope the metrics to the sweep and trace every span site it passes.
  obs::registry().reset();
  obs::Tracer tracer;
  tracer.install();

  sweep::SweepRunner runner(jobs);
  const auto out = runner.run(
      grid, sweep::make_emission_corner_fn(cfg), {}, sweep::emission_chunk_hint(grid),
      [](std::size_t done, std::size_t total) {
        std::printf("  corner %zu/%zu done\n", done, total);
      });

  tracer.uninstall();

  std::printf("\n%-60s %10s %s\n", "corner", "margin", "verdict");
  for (const auto& r : out.results)
    std::printf("%-60s %+9.1f dB %s\n", r.scenario.label().c_str(),
                r.report.worst_margin_db, r.report.pass ? "PASS" : "FAIL");

  const auto& s = out.summary;
  std::printf("\n%zu corners: %zu pass / %zu fail; worst margin %+.1f dB at %s\n",
              s.corners, s.passed, s.failed, s.worst_margin_db, s.worst_label.c_str());
  for (std::size_t a = 0; a < sweep::kNumAxes; ++a) {
    const auto axis = static_cast<sweep::AxisId>(a);
    if (grid.axis_size(axis) < 2) continue;
    std::printf("  worst by %-13s", sweep::axis_name(axis));
    for (std::size_t k = 0; k < grid.axis_size(axis); ++k)
      std::printf("  %s -> %+.1f dB", grid.axis_value_label(axis, k).c_str(),
                  s.axis_worst[a][k]);
    std::printf("\n");
  }

  // Solver work actually spent, memo hits excluded (reused corners repeat
  // the producing corner's stats).
  ckt::SolveStats solve;
  bool first = true;
  std::size_t reused = 0;
  for (const auto& r : out.results) {
    if (r.transient_reused) {
      ++reused;
      continue;
    }
    if (first) {
      solve = r.solve;
      first = false;
    } else {
      solve.merge(r.solve);
    }
  }
  std::printf("\ntransients: %zu run, %zu reused from the record memo\n",
              out.results.size() - reused, reused);
  std::printf("newton: %ld iterations over %ld steps (+%ld for DC), %ld restamps\n",
              solve.total_newton_iters, solve.steps, solve.dc_newton_iters,
              solve.restamps);
  for (std::size_t w = 0; w < out.workers.size(); ++w) {
    const auto& ws = out.workers[w];
    const double total = static_cast<double>(ws.busy_ns + ws.idle_ns);
    std::printf("worker %zu: %llu corners, %.0f%% busy\n", w,
                static_cast<unsigned long long>(ws.items),
                total > 0 ? 100.0 * static_cast<double>(ws.busy_ns) / total : 0.0);
  }

  const bool trace_written = tracer.write_chrome_trace(trace_path);
  if (trace_written)
    std::printf("wrote %s (%zu spans from %zu threads)\n", trace_path.c_str(),
                tracer.events().size(), tracer.threads());
  else
    std::fprintf(stderr, "error: could not write %s\n", trace_path.c_str());

  obs::RunReport report("corner_sweep");
  report.set("config", "jobs", static_cast<long>(jobs));
  report.set("config", "corners", static_cast<long>(grid.size()));
  report.set("solver", "kind",
             std::string(solve.used_sparse == 1   ? "sparse"
                         : solve.used_sparse == 0 ? "dense"
                                                  : "mixed"));
  report.set("solver", "newton_iters", solve.total_newton_iters);
  report.set("solver", "dc_newton_iters", solve.dc_newton_iters);
  report.set("solver", "steps", solve.steps);
  report.set("solver", "restamps", solve.restamps);
  report.set("sweep", "summary", sweep::summary_json(grid, out.summary));
  report.set("sweep", "transients_reused", static_cast<long>(reused));
  report.set("workers", "pool", sweep::worker_stats_json(out.workers));
  report.add_metrics(obs::registry().snapshot());
  report.add_trace_summary(tracer, trace_written ? trace_path : "");
  const bool report_written = report.write(report_path);
  if (report_written)
    std::printf("wrote %s\n", report_path.c_str());
  else
    std::fprintf(stderr, "error: could not write %s\n", report_path.c_str());
  return (trace_written && report_written) ? 0 : 1;
}
