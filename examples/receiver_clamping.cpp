// Receiver modeling scenario (the paper's Section 3 + Figures 5/6): build
// the parametric receiver macromodel and the simple C-R baseline from the
// same transistor-level receiver, then compare them on an overdriven bus
// where the ESD protection clamps engage.
#include <cstdio>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/receiver_device.hpp"
#include "core/receiver_estimator.hpp"
#include "core/validation.hpp"
#include "devices/reference_receiver.hpp"
#include "signal/csv.hpp"
#include "signal/sources.hpp"

using namespace emc;

namespace {

/// Pin voltage with the given termination model at the end of a lossy line
/// driven by an overdriving source (3.3 V into a 1.8 V receiver).
sig::Waveform run_link(const dev::ReceiverTech& tech,
                       const core::ParametricReceiverModel* parametric,
                       const core::CrReceiverModel* cr) {
  ckt::CoupledLineParams line;
  line.l = linalg::Matrix{{466e-9}};
  line.c = linalg::Matrix{{66e-12}};
  line.length = 0.1;
  line.loss.rdc = 66.0;
  line.loss.rskin = 1.6e-3;
  line.loss.tan_delta = 0.001;

  ckt::Circuit c;
  const int src = c.node();
  const int near = c.node();
  const int pin = c.node("pin");
  auto pulse = sig::trapezoid(0.0, 3.3, 0.4e-9, 0.1e-9, 3e-9, 0.1e-9);
  c.add<ckt::VSource>(src, c.ground(), [pulse](double t) { return pulse(t); });
  c.add<ckt::Resistor>(src, near, 50.0);
  add_coupled_lossy_line(c, {near}, {pin}, line, 25e-12, 8);

  if (parametric) {
    c.add<core::ReceiverDevice>(pin, *parametric);
  } else if (cr) {
    core::add_cr_receiver(c, pin, *cr);
  } else {
    auto inst = dev::build_reference_receiver(c, tech);
    c.add<ckt::Resistor>(inst.pin, pin, 1e-3);
  }

  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 8e-9;
  auto res = ckt::run_transient(c, opt);
  return res.waveform(pin);
}

}  // namespace

int main() {
  std::printf("== receiver macromodeling: parametric model vs C-R baseline ==\n");
  const auto tech = dev::ReceiverTech::md4_ibm18();
  core::CircuitReceiverDut dut(tech);

  std::printf("estimating the parametric receiver model (ARX + clamp RBFs)...\n");
  const auto parametric = core::estimate_receiver_model(dut);
  std::printf("  linear ARX: na=%d nb=%d; clamps: %zu + %zu basis functions\n",
              parametric.lin.na(), parametric.lin.nb(), parametric.up.num_basis(),
              parametric.dn.num_basis());
  std::printf("estimating the C-R baseline...\n");
  const auto cr = core::estimate_cr_model(dut);
  std::printf("  C = %.2f pF, %zu-point static I(V) table\n", cr.c * 1e12, cr.iv.size());

  std::printf("running the overdriven link (3.3 V pulse into the 1.8 V receiver)...\n");
  const auto v_ref = run_link(tech, nullptr, nullptr);
  const auto v_par = run_link(tech, &parametric, nullptr);
  const auto v_cr = run_link(tech, nullptr, &cr);

  const auto rep_par = core::validate_waveform("parametric", v_ref, v_par, 1.65, 0.2e-9);
  const auto rep_cr = core::validate_waveform("C-R model ", v_ref, v_cr, 1.65, 0.2e-9);
  std::printf("\n%s\n%s\n", rep_par.to_line().c_str(), rep_cr.to_line().c_str());
  std::printf("\nclamped peak: reference %.3f V, parametric %.3f V, C-R %.3f V "
              "(VDD = %.1f V)\n",
              v_ref.max_value(), v_par.max_value(), v_cr.max_value(), tech.vdd);

  sig::write_csv("bench_out/example_receiver_clamping.csv",
                 {"reference", "parametric", "cr"}, {v_ref, v_par, v_cr});
  std::printf("waveforms written to bench_out/example_receiver_clamping.csv\n");
  return 0;
}
