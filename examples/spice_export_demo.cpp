// SPICE export workflow (the paper's last modeling step): estimate the
// macromodels and write them as SPICE-like subcircuits for an external
// simulator (ngspice syntax). Coupling to ngspice is manual: include the
// generated files with .include and instantiate the subcircuits.
#include <cstdio>

#include "core/circuit_dut.hpp"
#include "core/driver_estimator.hpp"
#include "core/receiver_estimator.hpp"
#include "core/spice_export.hpp"
#include "devices/reference_driver.hpp"
#include "devices/reference_receiver.hpp"
#include "ibis/extract.hpp"
#include "ibis/writer.hpp"

using namespace emc;

int main() {
  std::printf("== macromodel -> SPICE subcircuit export ==\n");

  std::printf("estimating the MD1 driver macromodel...\n");
  core::CircuitDriverDut drv_dut{dev::DriverTech::md1_lvc244()};
  auto driver = core::estimate_driver_model(drv_dut);
  driver.name = "MD1";

  std::printf("estimating the MD4 receiver macromodels...\n");
  core::CircuitReceiverDut rx_dut{dev::ReceiverTech::md4_ibm18()};
  auto receiver = core::estimate_receiver_model(rx_dut);
  receiver.name = "MD4";
  const auto cr = core::estimate_cr_model(rx_dut);

  const auto drv_text = core::export_driver_spice(driver, "pwrbf_md1");
  const auto rx_text = core::export_receiver_spice(receiver, "rx_md4");
  const auto cr_text = core::export_cr_spice(cr, "cr_md4");

  core::write_spice_file("spice_out/pwrbf_md1.sp", drv_text);
  core::write_spice_file("spice_out/rx_md4.sp", rx_text);
  core::write_spice_file("spice_out/cr_md4.sp", cr_text);

  std::printf("\nwrote spice_out/pwrbf_md1.sp (%zu bytes)\n", drv_text.size());
  std::printf("wrote spice_out/rx_md4.sp    (%zu bytes)\n", rx_text.size());
  std::printf("wrote spice_out/cr_md4.sp    (%zu bytes)\n", cr_text.size());

  std::printf("\nextracting the IBIS corner set and writing md1.ibs...\n");
  const auto corners = ibis::extract_ibis_corners(dev::DriverTech::md1_lvc244());
  const auto ibs_text = ibis::write_ibs("md1", corners);
  ibis::write_ibs_file("spice_out/md1.ibs", ibs_text);
  std::printf("wrote spice_out/md1.ibs      (%zu bytes)\n", ibs_text.size());

  std::printf("\nfirst lines of the driver subcircuit:\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < drv_text.size()) {
    const auto eol = drv_text.find('\n', pos);
    std::printf("  %s\n", drv_text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("\nngspice usage (manual coupling):\n");
  std::printf("  .include pwrbf_md1.sp\n");
  std::printf("  X1 out wh wl pwrbf_md1\n");
  std::printf("  * drive wh/wl with PWL sources replaying the weight samples\n");
  std::printf("  * listed at the end of the exported file at each logic edge\n");
  return 0;
}
