// Full scan-to-compliance pipeline on a conducted-emission record:
// synthesize a 2 Mb/s digital bit stream (the kind of port activity whose
// conducted noise the paper's macromodels exist to predict), sweep a
// CISPR band B EMI receiver over 150 kHz - 30 MHz with peak / quasi-peak /
// average detectors, score the detector readings against the CISPR 32
// class B conducted masks, and dump spectrum + scan CSVs for plotting.
#include <cstdio>

#include "emc/adaptive.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "signal/csv.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

using namespace emc;

int main() {
  std::printf("== conducted-emission scan -> CISPR 32 compliance report ==\n");

  // 2 Mb/s pseudo-random stream, 3.3 V levels, 20 ns edges, attenuated by
  // a 40 dB coupling factor to stand in for the LISN-side noise voltage.
  sig::Lcg rng(42);
  std::string bits;
  for (int k = 0; k < 64; ++k) bits += rng.below(2) ? '1' : '0';
  auto pattern = sig::bit_stream(bits, 500e-9, 20e-9, 0.0, 3.3);

  const double fs = 256e6;
  const std::size_t n = 8192;  // 32 us record
  const double coupling = 0.01;  // -40 dB
  auto record = sig::Waveform::sample(
      [&](double t) { return coupling * pattern(t); }, 0.0, 1.0 / fs, n);
  std::printf("record: %zu samples at %.0f MS/s (%.1f us)\n", record.size(), fs / 1e6,
              record.size() / fs * 1e6);

  // Single-shot amplitude spectrum for the plot file.
  const auto spec = spec::amplitude_spectrum_dbuv(record, spec::Window::kHann);
  std::vector<double> spec_freq(spec.size());
  for (std::size_t k = 0; k < spec.size(); ++k) spec_freq[k] = spec.frequency_at(k);
  sig::write_spectrum_csv("bench_out/emission_scan_spectrum.csv", {"amplitude_dbuv"},
                          spec_freq, {spec.value});

  // CISPR band B sweep. A real receiver dwells ~1 s per frequency; the QP
  // time constants are compressed to the 32 us record so the charge /
  // discharge dynamics remain visible (documented model limitation).
  auto rx = spec::ReceiverSettings::cispr_band_b().with_time_scale(32e-6 / 1.0);
  rx.n_points = 60;
  std::printf("sweeping %s: %zu points, RBW %.0f kHz (zoom-IFFT demodulation when the "
              "RBW window decimates)\n",
              rx.name.c_str(), rx.n_points, rx.rbw / 1e3);
  const auto scan = spec::emi_scan(record, rx);
  if (scan.skipped_points > 0)
    std::printf("WARNING: %zu scan points at/above Nyquist (%.1f MHz) were dropped — "
                "the compliance verdict below covers a truncated scan\n",
                scan.skipped_points, fs / 2e6);

  sig::write_spectrum_csv("bench_out/emission_scan_detectors.csv",
                          {"peak_dbuv", "quasi_peak_dbuv", "average_dbuv"}, scan.freq,
                          {scan.peak_dbuv, scan.quasi_peak_dbuv, scan.average_dbuv});

  // Compliance: quasi-peak readings against the QP mask, average readings
  // against the AVG mask (the CISPR 32 dual-detector criterion).
  const auto mask_qp = spec::LimitMask::cispr32_class_b_conducted_qp();
  const auto rep_qp = spec::check_compliance(scan.freq, scan.quasi_peak_dbuv, mask_qp,
                                             "quasi-peak", scan.skipped_points);
  const auto rep_avg = spec::check_compliance(
      scan.freq, scan.average_dbuv, spec::LimitMask::cispr32_class_b_conducted_avg(),
      "average", scan.skipped_points);

  std::printf("\n%10s %10s %10s %10s %10s %10s\n", "f [MHz]", "peak", "QP", "avg",
              "QP limit", "margin");
  for (std::size_t k = 0; k < scan.size(); k += 6) {
    if (!mask_qp.covers(scan.freq[k])) continue;
    const double limit = mask_qp.at(scan.freq[k]);
    std::printf("%10.3f %10.1f %10.1f %10.1f %10.1f %+10.1f\n", scan.freq[k] / 1e6,
                scan.peak_dbuv[k], scan.quasi_peak_dbuv[k], scan.average_dbuv[k], limit,
                limit - scan.quasi_peak_dbuv[k]);
  }

  std::printf("\n%s\n%s\n", rep_qp.summary().c_str(), rep_avg.summary().c_str());

  // CISPR 32 requires both detector checks to pass; the combined verdict
  // (worst of the two reports) is the line that goes in a test report.
  const spec::ComplianceReport both[] = {rep_qp, rep_avg};
  std::printf("%s\n", spec::merge_reports(both, "combined QP+AVG").summary().c_str());

  // The same verdict from the adaptive planner: a coarse make_log_grid
  // pass over the cached spectrum, then detector passes spent only where
  // the QP trace approaches or crosses the mask. Every violation comes
  // back certified by a measured (pass, fail) frequency bracket.
  spec::AdaptiveScanner adaptive;
  adaptive.config().coarse_points = 16;
  const auto cert = adaptive.scan(record, rx, mask_qp, spec::TraceSel::kQuasiPeak,
                                  "quasi-peak adaptive");
  std::printf("\nadaptive quasi-peak scan: %zu coarse + %zu refined detector passes "
              "(fixed scan above spent %zu)\n",
              cert.coarse_points, cert.refined_points, scan.size());
  for (const auto& x : cert.crossings)
    std::printf("  mask crossing near %.3f MHz: %s certified by pass %.3f / fail %.3f MHz\n",
                x.f_cross / 1e6, x.entering ? "entering violation" : "leaving violation",
                x.f_pass / 1e6, x.f_fail / 1e6);
  std::printf("%s\n", cert.report.summary().c_str());

  std::printf("CSV written to bench_out/emission_scan_{spectrum,detectors}.csv\n");
  return 0;
}
