// EMC scenario: far-end crosstalk on a coupled on-MCM bus (the paper's
// Figure 3/4 experiment). Two 2.5 V drivers share a 0.1 m lossy coupled
// interconnect; the aggressor sends a pulse train while the victim driver
// holds Low. The PW-RBF macromodels replace the transistor-level buffers
// and must reproduce both the driven waveform and the (sensitive)
// crosstalk on the quiet land.
#include <cstdio>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_device.hpp"
#include "core/driver_estimator.hpp"
#include "core/validation.hpp"
#include "devices/reference_driver.hpp"
#include "signal/csv.hpp"
#include "signal/sources.hpp"

using namespace emc;

namespace {

ckt::CoupledLineParams mcm_interconnect() {
  ckt::CoupledLineParams p;
  p.l = linalg::Matrix{{466e-9, 66e-9}, {66e-9, 466e-9}};
  p.c = linalg::Matrix{{66e-12, -6.6e-12}, {-6.6e-12, 66e-12}};
  p.length = 0.1;
  p.loss.rdc = 66.0;
  p.loss.rskin = 1.6e-3;
  p.loss.tan_delta = 0.001;
  return p;
}

struct BusRun {
  sig::Waveform active;
  sig::Waveform quiet;
};

BusRun run_bus(const dev::DriverTech& tech, const core::PwRbfDriverModel* model) {
  const std::string aggressor_bits = "011011101010000";
  const std::string victim_bits = "000000000000000";

  ckt::Circuit c;
  const int a1 = c.node("near_active");
  const int a2 = c.node("near_quiet");
  const int b1 = c.node("far_active");
  const int b2 = c.node("far_quiet");
  add_coupled_lossy_line(c, {a1, a2}, {b1, b2}, mcm_interconnect(), 25e-12, 8);
  c.add<ckt::Capacitor>(b1, c.ground(), 1e-12);
  c.add<ckt::Capacitor>(b2, c.ground(), 1e-12);

  auto attach = [&](int pad, const std::string& bits) {
    if (model) {
      c.add<core::DriverDevice>(pad, *model, bits, 1e-9);
    } else {
      auto pattern = sig::bit_stream(bits, 1e-9, 0.1e-9, 0.0, tech.vdd);
      auto inst =
          dev::build_reference_driver(c, tech, [pattern](double t) { return pattern(t); });
      c.add<ckt::Resistor>(inst.pad, pad, 1e-3);
    }
  };
  attach(a1, aggressor_bits);
  attach(a2, victim_bits);

  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 25e-9;
  auto res = ckt::run_transient(c, opt);
  return {res.waveform(b1), res.waveform(b2)};
}

}  // namespace

int main() {
  std::printf("== coupled-bus crosstalk with PW-RBF driver macromodels ==\n");
  const auto tech = dev::DriverTech::md3_ibm25();

  std::printf("estimating the driver macromodel from the transistor-level buffer...\n");
  core::CircuitDriverDut dut(tech);
  auto model = core::estimate_driver_model(dut);
  model.name = "MD3 (2.5 V ASIC driver)";

  std::printf("running transistor-level reference...\n");
  const auto ref = run_bus(tech, nullptr);
  std::printf("running macromodel bus...\n");
  const auto mod = run_bus(tech, &model);

  const auto rep_active =
      core::validate_waveform("active far end", ref.active, mod.active, tech.vdd / 2, 0.2e-9);
  const auto rep_quiet =
      core::validate_waveform("quiet far end ", ref.quiet, mod.quiet, 1e9);

  std::printf("\n%s\n%s\n", rep_active.to_line().c_str(), rep_quiet.to_line().c_str());
  std::printf("crosstalk peak: reference %+.1f/%.1f mV, macromodel %+.1f/%.1f mV\n",
              ref.quiet.max_value() * 1e3, ref.quiet.min_value() * 1e3,
              mod.quiet.max_value() * 1e3, mod.quiet.min_value() * 1e3);

  sig::write_csv("bench_out/example_bus_crosstalk.csv",
                 {"active_ref", "active_model", "quiet_ref", "quiet_model"},
                 {ref.active, mod.active, ref.quiet, mod.quiet});
  std::printf("waveforms written to bench_out/example_bus_crosstalk.csv\n");
  return 0;
}
