// emc_report — operate on obs::RunReport JSON documents from the shell:
//
//   emc_report show REPORT.json
//       Parse and pretty-print (validates the document round-trips).
//   emc_report merge -o OUT.json IN1.json IN2.json ...
//       Deterministic N-way merge of sharded run reports
//       (obs::merge_run_reports; see src/obs/compare.hpp for the rules).
//   emc_report diff BASELINE.json CURRENT.json [--rel-tol X]
//       Compare every scalar leaf of BASELINE against CURRENT under one
//       uniform relative tolerance (default 0.25). Exit 1 on regression.
//   emc_report check SPEC.json CURRENT.json [--scale X]
//       Score CURRENT against a committed baseline spec
//       (bench/baselines/*.smoke.json schema). --scale multiplies every
//       row's tolerance — pass > 1 on slow or sanitized runners. Exit 1
//       on regression or missing metric.
//   emc_report flame REPORT.json [-o OUT.folded]
//       Export the report's "profile" section as collapsed-stack
//       ("folded") lines for flamegraph.pl / speedscope; stdout when no
//       -o is given.
//
// All commands exit 0 on success/pass, 1 on failure/regression, 2 on
// usage errors.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "obs/compare.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"

namespace {

using emc::obs::Json;

int usage() {
  std::fprintf(stderr,
               "usage: emc_report show REPORT.json\n"
               "       emc_report merge -o OUT.json IN1.json [IN2.json ...]\n"
               "       emc_report diff BASELINE.json CURRENT.json [--rel-tol X]\n"
               "       emc_report check SPEC.json CURRENT.json [--scale X]\n"
               "       emc_report flame REPORT.json [-o OUT.folded]\n");
  return 2;
}

// Human-readable footer for the receiver-scan accounting of a sweep
// summary (RunReports keep it under sweep.summary, bench docs under
// summary). Older documents predate the fields and print nothing.
void show_scan_section(const Json& doc) {
  const Json* summary = nullptr;
  if (const Json* sweep = doc.find("sweep")) summary = sweep->find("summary");
  if (!summary) summary = doc.find("summary");
  if (!summary) return;
  const Json* passes = summary->find("scan_detector_passes");
  const Json* refined = summary->find("scan_refined_points");
  const Json* crossings = summary->find("scan_crossings");
  if (!passes || !refined || !crossings) return;

  const double p = passes->as_double();
  const double r = refined->as_double();
  std::printf("receiver scan: %.0f detector passes, %.0f adaptive refinements",
              p, r);
  if (p > 0.0) std::printf(" (%.1f%%)", 100.0 * r / p);
  std::printf(", %.0f mask crossings certified\n", crossings->as_double());
}

int cmd_show(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const Json doc = Json::parse_file(args[0]);
  std::printf("%s\n", doc.dump().c_str());
  show_scan_section(doc);
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (out_path.empty() || inputs.empty()) return usage();

  std::vector<Json> docs;
  docs.reserve(inputs.size());
  for (const std::string& path : inputs) docs.push_back(Json::parse_file(path));
  const Json merged = emc::obs::merge_run_reports(docs);
  if (!merged.write_file(out_path)) return 1;
  std::printf("merged %zu reports -> %s\n", docs.size(), out_path.c_str());
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  double rel_tol = 0.25;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--rel-tol") {
      if (i + 1 >= args.size()) return usage();
      rel_tol = std::strtod(args[++i].c_str(), nullptr);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) return usage();

  const Json base = Json::parse_file(files[0]);
  const Json cur = Json::parse_file(files[1]);
  const emc::obs::CompareResult r = emc::obs::diff_reports(base, cur, rel_tol);
  std::printf("%s", r.format().c_str());
  return r.pass ? 0 : 1;
}

int cmd_check(const std::vector<std::string>& args) {
  double scale = 1.0;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale") {
      if (i + 1 >= args.size()) return usage();
      scale = std::strtod(args[++i].c_str(), nullptr);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) return usage();

  const Json spec = Json::parse_file(files[0]);
  const Json cur = Json::parse_file(files[1]);
  const emc::obs::CompareResult r = emc::obs::check_baseline(spec, cur, scale);
  std::printf("%s", r.format().c_str());
  return r.pass ? 0 : 1;
}

int cmd_flame(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 1) return usage();

  const Json doc = Json::parse_file(files[0]);
  const Json* profile = doc.find("profile");
  if (!profile) {
    std::fprintf(stderr, "emc_report flame: %s has no \"profile\" section\n",
                 files[0].c_str());
    return 1;
  }
  const std::string folded = emc::obs::collapsed_stacks_from_profile_json(*profile);
  if (out_path.empty()) {
    std::fputs(folded.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "emc_report flame: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const bool ok = std::fwrite(folded.data(), 1, folded.size(), f) == folded.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "emc_report flame: error writing %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "show") return cmd_show(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "flame") return cmd_flame(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emc_report %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
