// Spectrum, EMI-receiver and limit-mask layers of the spectral EMC
// subsystem (the FFT layer has its own test binary).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

using namespace emc;
using spec::Window;

namespace {

sig::Waveform tone(double amplitude, double freq, double fs, std::size_t n) {
  return sig::Waveform::sample(
      [=](double t) { return amplitude * std::sin(2.0 * std::numbers::pi * freq * t); }, 0.0,
      1.0 / fs, n);
}

sig::Waveform noise(double fs, std::size_t n, std::uint64_t seed) {
  sig::Lcg rng(seed);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.uniform() * 2.0 - 1.0;
  return sig::Waveform(0.0, 1.0 / fs, std::move(y));
}

}  // namespace

// ---------------------------------------------------------------- windows

TEST(EmcWindow, GainsOfStandardWindows) {
  const auto rect = spec::make_window(Window::kRectangular, 64);
  EXPECT_DOUBLE_EQ(rect.coherent_gain, 1.0);
  EXPECT_DOUBLE_EQ(rect.noise_gain, 1.0);

  // Periodic Hann: mean = 1/2 and mean-square = 3/8 exactly.
  const auto hann = spec::make_window(Window::kHann, 64);
  EXPECT_NEAR(hann.coherent_gain, 0.5, 1e-12);
  EXPECT_NEAR(hann.noise_gain, 0.375, 1e-12);

  const auto ft = spec::make_window(Window::kFlatTop, 64);
  EXPECT_NEAR(ft.coherent_gain, 0.21557895, 1e-9);
  EXPECT_GT(ft.noise_gain, ft.coherent_gain * ft.coherent_gain);
}

// ------------------------------------------------------- amplitude spectra

TEST(EmcSpectrum, HannExactOnBinCenteredTone) {
  const std::size_t n = 1024;
  const double fs = 1024.0;
  const auto w = tone(0.7, 128.0, fs, n);  // exactly bin 128
  const auto s = spec::amplitude_spectrum(w, Window::kHann);
  ASSERT_EQ(s.size(), n / 2 + 1);
  EXPECT_NEAR(s.df, 1.0, 1e-12);
  EXPECT_NEAR(s.value[128], 0.7, 1e-9);
  EXPECT_NEAR(s.value[300], 0.0, 1e-9);  // far-away bin stays clean
}

TEST(EmcSpectrum, FlatTopAmplitudeAccurateWithinPoint05Db) {
  // Acceptance criterion: worst-case scalloping (tone exactly between two
  // bins) stays within 0.05 dB of the true amplitude.
  const std::size_t n = 1024;
  const double fs = 1024.0;
  const auto w = tone(1.0, 100.5, fs, n);
  const auto s = spec::amplitude_spectrum(w, Window::kFlatTop);
  double peak = 0.0;
  for (double v : s.value) peak = std::max(peak, v);
  EXPECT_LT(std::abs(20.0 * std::log10(peak)), 0.05);

  // And a bin-centered tone reads essentially exactly.
  const auto s2 = spec::amplitude_spectrum(tone(1.0, 100.0, fs, n), Window::kFlatTop);
  EXPECT_NEAR(s2.value[100], 1.0, 1e-6);
}

TEST(EmcSpectrum, DbuvConversion) {
  // A sine of amplitude sqrt(2) has RMS 1 V = 120 dBuV.
  const auto w = tone(std::numbers::sqrt2, 64.0, 1024.0, 1024);
  const auto s = spec::amplitude_spectrum_dbuv(w, Window::kHann);
  EXPECT_NEAR(s.value[64], 120.0, 1e-6);

  EXPECT_NEAR(spec::volts_to_dbuv(1.0), 120.0, 1e-12);
  EXPECT_NEAR(spec::volts_to_dbuv(1e-6), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(spec::volts_to_dbuv(0.0), -120.0);  // clamped floor
}

TEST(EmcSpectrum, DcBinIsNotDoubled) {
  const auto w = sig::Waveform::sample([](double) { return 2.5; }, 0.0, 1e-3, 256);
  const auto s = spec::amplitude_spectrum(w, Window::kRectangular);
  EXPECT_NEAR(s.value[0], 2.5, 1e-12);
  EXPECT_NEAR(s.value[5], 0.0, 1e-12);
}

// ----------------------------------------------------------------- Welch

TEST(EmcWelch, RectangularNonOverlappingConservesPower) {
  // With a rectangular window and exact segmentation, sum(PSD)*df equals
  // the record's mean square by Parseval.
  const auto w = noise(1e6, 4096, 11);
  const auto psd = spec::welch_psd(w, 512, Window::kRectangular, 0.0);
  double ms = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k) ms += w[k] * w[k];
  ms /= static_cast<double>(w.size());
  double integral = 0.0;
  for (double v : psd.value) integral += v * psd.df;
  EXPECT_NEAR(integral, ms, 1e-10 * ms);
}

TEST(EmcWelch, HannOverlapApproximatelyConservesNoisePower) {
  const auto w = noise(1e6, 8192, 23);
  const auto psd = spec::welch_psd(w, 512, Window::kHann, 0.5);
  double ms = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k) ms += w[k] * w[k];
  ms /= static_cast<double>(w.size());
  double integral = 0.0;
  for (double v : psd.value) integral += v * psd.df;
  EXPECT_NEAR(integral, ms, 0.1 * ms);  // windowed estimate: ~few %
}

TEST(EmcWelch, LocatesAToneAtTheRightBin) {
  const auto w = tone(1.0, 32e3, 1.024e6, 8192);
  const auto psd = spec::welch_psd(w, 1024, Window::kHann, 0.5);
  std::size_t peak_bin = 0;
  for (std::size_t k = 1; k < psd.size(); ++k)
    if (psd.value[k] > psd.value[peak_bin]) peak_bin = k;
  EXPECT_NEAR(psd.frequency_at(peak_bin), 32e3, psd.df);
}

TEST(EmcWelch, RejectsBadArguments) {
  const auto w = noise(1e6, 256, 3);
  EXPECT_THROW(spec::welch_psd(w, 1), std::invalid_argument);
  EXPECT_THROW(spec::welch_psd(w, 512), std::invalid_argument);
  EXPECT_THROW(spec::welch_psd(w, 128, Window::kHann, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------ EMI receiver

namespace {

/// 100 kHz carrier pulsed at 10% duty (200 us bursts every 2 ms),
/// sampled at 1 MS/s for 20 ms.
sig::Waveform pulsed_carrier() {
  return sig::Waveform::sample(
      [](double t) {
        const double phase_in_frame = std::fmod(t, 2e-3);
        const double gate = phase_in_frame < 200e-6 ? 1.0 : 0.0;
        return gate * std::sin(2.0 * std::numbers::pi * 100e3 * t);
      },
      0.0, 1e-6, 20000);
}

spec::ReceiverSettings test_rx() {
  spec::ReceiverSettings s;
  s.name = "test";
  s.f_start = 50e3;
  s.f_stop = 200e3;
  s.n_points = 3;  // log-spaced: 50 kHz, 100 kHz, 200 kHz
  s.rbw = 20e3;
  s.tau_charge = 100e-6;
  s.tau_discharge = 2e-3;
  return s;
}

}  // namespace

TEST(EmcReceiver, QuasiPeakLiesBetweenAverageAndPeakOnPulsedSignal) {
  // Acceptance criterion. 10% duty: the average detector reads far below
  // the carrier, the peak detector reads the full burst amplitude, and the
  // quasi-peak charge/discharge circuit lands in between.
  const auto scan = spec::emi_scan(pulsed_carrier(), test_rx());
  ASSERT_EQ(scan.size(), 3u);
  EXPECT_NEAR(scan.freq[1], 100e3, 1.0);  // geometric middle point

  const double peak = scan.peak_dbuv[1];
  const double qp = scan.quasi_peak_dbuv[1];
  const double avg = scan.average_dbuv[1];
  EXPECT_LT(qp, peak);
  EXPECT_GT(qp, avg + 3.0);
  // Full burst amplitude 1 V peak = 117 dBuV at the detector.
  EXPECT_NEAR(peak, 117.0, 1.5);
  // 10% duty cycle: average roughly 20 dB below peak.
  EXPECT_LT(avg, peak - 12.0);
}

TEST(EmcReceiver, AllDetectorsAgreeOnContinuousTone) {
  const auto cw = sig::Waveform::sample(
      [](double t) { return std::sin(2.0 * std::numbers::pi * 100e3 * t); }, 0.0, 1e-6,
      20000);
  const auto scan = spec::emi_scan(cw, test_rx());
  const double peak = scan.peak_dbuv[1];
  EXPECT_NEAR(peak, 117.0, 1.0);
  EXPECT_NEAR(scan.quasi_peak_dbuv[1], peak, 1.5);
  EXPECT_NEAR(scan.average_dbuv[1], peak, 1.5);
  // An off-carrier scan point reads well below the tone.
  EXPECT_LT(scan.peak_dbuv[2], peak - 20.0);
}

TEST(EmcReceiver, CisprBandPresetsAndValidation) {
  const auto a = spec::ReceiverSettings::cispr_band_a();
  EXPECT_DOUBLE_EQ(a.rbw, 200.0);
  EXPECT_DOUBLE_EQ(a.f_start, 9e3);
  const auto b = spec::ReceiverSettings::cispr_band_b();
  EXPECT_DOUBLE_EQ(b.rbw, 9e3);
  EXPECT_DOUBLE_EQ(b.f_stop, 30e6);
  const auto scaled = b.with_time_scale(1e-3);
  EXPECT_NEAR(scaled.tau_charge, 1e-6, 1e-18);
  EXPECT_NEAR(scaled.tau_discharge, 160e-6, 1e-15);

  auto bad = test_rx();
  bad.rbw = 0.0;
  EXPECT_THROW(spec::emi_scan(pulsed_carrier(), bad), std::invalid_argument);
  bad = test_rx();
  bad.f_stop = bad.f_start;
  EXPECT_THROW(spec::emi_scan(pulsed_carrier(), bad), std::invalid_argument);

  // A record too short to resolve the RBW must refuse loudly rather than
  // silently reading the -120 dBuV floor (false compliance PASS).
  const auto short_record = sig::Waveform::sample(
      [](double t) { return std::sin(2.0 * std::numbers::pi * 50e3 * t); }, 0.0, 1e-6,
      256);  // 256 us: band A needs >= ~1 ms at RBW 200 Hz
  EXPECT_THROW(spec::emi_scan(short_record, spec::ReceiverSettings::cispr_band_a()),
               std::invalid_argument);
}

// ---------------------------------------------------------------- limits

TEST(EmcLimits, MaskInterpolatesInLogFrequency) {
  const auto mask = spec::LimitMask::cispr32_class_b_conducted_qp();
  EXPECT_NEAR(mask.at(150e3), 66.0, 1e-9);
  EXPECT_NEAR(mask.at(500e3), 56.0, 1e-9);
  // Halfway in log10(f) between 150 and 500 kHz: halfway in dB.
  EXPECT_NEAR(mask.at(std::sqrt(150e3 * 500e3)), 61.0, 1e-9);
  EXPECT_NEAR(mask.at(1e6), 56.0, 1e-9);
  // Step at 5 MHz: the upper segment wins at the boundary.
  EXPECT_NEAR(mask.at(5e6), 60.0, 1e-9);
  EXPECT_NEAR(mask.at(30e6), 60.0, 1e-9);

  EXPECT_FALSE(mask.covers(100e3));
  EXPECT_FALSE(mask.covers(40e6));
  EXPECT_TRUE(std::isnan(mask.at(100e3)));

  const auto avg = spec::LimitMask::cispr32_class_b_conducted_avg();
  EXPECT_NEAR(avg.at(150e3), 56.0, 1e-9);
  const auto a_qp = spec::LimitMask::cispr32_class_a_conducted_qp();
  EXPECT_NEAR(a_qp.at(200e3), 79.0, 1e-9);
  EXPECT_NEAR(a_qp.at(10e6), 73.0, 1e-9);
}

TEST(EmcLimits, ComplianceReportFindsWorstMargin) {
  const auto mask = spec::LimitMask::cispr32_class_b_conducted_qp();
  const std::vector<double> freq = {100e3, 200e3, 1e6, 10e6, 40e6};
  const std::vector<double> level = {90.0, 50.0, 58.5, 40.0, 95.0};
  // 100 kHz and 40 MHz are outside the mask; 1 MHz violates 56 by 2.5 dB.
  const auto rep = spec::check_compliance(freq, level, mask, "unit");
  ASSERT_EQ(rep.points.size(), 3u);
  EXPECT_FALSE(rep.pass);
  EXPECT_NEAR(rep.worst_margin_db, -2.5, 1e-9);
  EXPECT_NEAR(rep.points[rep.worst_index].f, 1e6, 1e-3);
  EXPECT_NE(rep.summary().find("FAIL"), std::string::npos);

  const std::vector<double> quiet = {90.0, 50.0, 49.0, 40.0, 95.0};
  const auto ok = spec::check_compliance(freq, quiet, mask, "unit");
  EXPECT_TRUE(ok.pass);
  EXPECT_NEAR(ok.worst_margin_db, 7.0, 1e-9);  // 56 dBuV limit at 1 MHz
  EXPECT_NE(ok.summary().find("PASS"), std::string::npos);
}

TEST(EmcLimits, EmptyIntersectionPasses) {
  spec::LimitMask mask{"narrow", {{1e6, 60.0}, {2e6, 60.0}}};
  const std::vector<double> freq = {10e3, 100e3};
  const std::vector<double> level = {200.0, 200.0};
  const auto rep = spec::check_compliance(freq, level, mask, "oob");
  EXPECT_TRUE(rep.pass);
  EXPECT_TRUE(rep.points.empty());
  EXPECT_NE(rep.summary().find("no points"), std::string::npos);
}

TEST(EmcLimits, SpectrumOverloadUsesUniformGrid) {
  // A flat 70 dBuV spectrum against class A QP (73/79 dBuV) passes; the
  // same against class B QP (56-66 dBuV) fails everywhere in band.
  spec::Spectrum s;
  s.df = 100e3;
  s.value.assign(301, 70.0);  // 0 - 30 MHz
  const auto a = spec::check_compliance(s, spec::LimitMask::cispr32_class_a_conducted_qp());
  EXPECT_TRUE(a.pass);
  EXPECT_NEAR(a.worst_margin_db, 3.0, 1e-9);
  const auto b = spec::check_compliance(s, spec::LimitMask::cispr32_class_b_conducted_qp());
  EXPECT_FALSE(b.pass);
  EXPECT_NEAR(b.worst_margin_db, 56.0 - 70.0, 1e-9);
}
