// Cross-module property tests: parameterized sweeps asserting physics
// invariants of the substrate (conservation, reciprocity, analytic
// solutions) across wide parameter ranges.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "ibis/extract.hpp"
#include "ibis/writer.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc;
using namespace emc::ckt;

// --- RC time constant across decades --------------------------------------

class RcSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RcSweep, StepResponseTimeConstant) {
  const auto [r, c] = GetParam();
  const double tau = r * c;

  Circuit ckt;
  const int vin = ckt.node();
  const int out = ckt.node();
  sig::Pwl step({{0.0, 0.0}, {tau * 1e-3, 1.0}});
  ckt.add<VSource>(vin, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(vin, out, r);
  ckt.add<Capacitor>(out, ckt.ground(), c);

  TransientOptions opt;
  opt.dt = tau / 200.0;
  opt.t_stop = 5.0 * tau;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(out);
  // At t = tau the response must be 1 - 1/e.
  EXPECT_NEAR(v.value_at(tau), 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NEAR(v.value_at(4.0 * tau), 1.0 - std::exp(-4.0), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Decades, RcSweep,
    ::testing::Values(std::tuple{10.0, 1e-12}, std::tuple{50.0, 10e-12},
                      std::tuple{1e3, 1e-9}, std::tuple{1e4, 100e-9},
                      std::tuple{100.0, 1e-6}));

// --- Ideal line: energy balance on a matched system ------------------------

class LineImpedanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(LineImpedanceSweep, MatchedDividerHalvesStep) {
  const double z0 = GetParam();
  Circuit ckt;
  const int src = ckt.node();
  const int a = ckt.node();
  const int b = ckt.node();
  sig::Pwl step({{0.0, 0.0}, {50e-12, 1.0}});
  ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(src, a, z0);
  ckt.add<IdealLine>(a, ckt.ground(), b, ckt.ground(), z0, 1e-9);
  ckt.add<Resistor>(b, ckt.ground(), z0);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 5e-9;
  auto res = run_transient(ckt, opt);
  // Matched at both ends: half the step everywhere after the delay, no
  // reflections whatever z0 is.
  EXPECT_NEAR(res.waveform(a).value_at(4.5e-9), 0.5, 5e-3);
  EXPECT_NEAR(res.waveform(b).value_at(4.5e-9), 0.5, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Impedances, LineImpedanceSweep,
                         ::testing::Values(10.0, 28.0, 50.0, 75.0, 120.0, 300.0));

// --- Coupled line reciprocity ----------------------------------------------

class CouplingSweep : public ::testing::TestWithParam<double> {};

TEST_P(CouplingSweep, CrosstalkReciprocity) {
  // Driving land 1 and reading land 2 must equal driving land 2 and
  // reading land 1 (the structure is symmetric and passive).
  const double lm = GetParam();
  const double l0 = 466e-9, c0 = 66e-12;
  const double cm = 6.6e-12 * (lm / 66e-9);
  linalg::Matrix l{{l0, lm}, {lm, l0}};
  linalg::Matrix c{{c0, -cm}, {-cm, c0}};

  auto run = [&](bool drive_first) {
    Circuit ckt;
    const int src = ckt.node();
    const int a1 = ckt.node();
    const int a2 = ckt.node();
    const int b1 = ckt.node();
    const int b2 = ckt.node();
    sig::Pwl step({{0.0, 0.0}, {0.1e-9, 0.0}, {0.3e-9, 1.0}});
    ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
    ckt.add<Resistor>(src, drive_first ? a1 : a2, 50.0);
    ckt.add<Resistor>(drive_first ? a2 : a1, ckt.ground(), 50.0);
    ckt.add<ModalLineSegment>(std::vector<int>{a1, a2}, std::vector<int>{b1, b2}, l, c,
                              0.1);
    ckt.add<Resistor>(b1, ckt.ground(), 50.0);
    ckt.add<Resistor>(b2, ckt.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 4e-9;
    auto res = run_transient(ckt, opt);
    return res.waveform(drive_first ? b2 : b1);
  };

  const auto x12 = run(true);
  const auto x21 = run(false);
  EXPECT_LT(sig::max_error(x12, x21), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CouplingStrengths, CouplingSweep,
                         ::testing::Values(16e-9, 33e-9, 66e-9, 120e-9));

// --- MOSFET invariants across bias -----------------------------------------

class MosBiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(MosBiasSweep, SaturationCurrentQuadraticInOverdrive) {
  const double vov = GetParam();
  MosParams p;
  p.kp = 150e-6;
  p.vt0 = 0.6;
  p.lambda = 0.0;
  p.w = 20e-6;
  p.l = 1e-6;
  Mosfet m(1, 2, 0, p);
  const double id = m.drain_current(5.0, p.vt0 + vov, 0.0);
  EXPECT_NEAR(id, 0.5 * p.beta() * vov * vov, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Overdrives, MosBiasSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 1.2, 2.0));

// --- KCL / charge conservation on a floating capacitive island -------------

TEST(ChargeConservation, SeriesCapacitorsSplitVoltage) {
  Circuit ckt;
  const int vin = ckt.node();
  const int mid = ckt.node();
  sig::Pwl step({{0.0, 0.0}, {0.2e-9, 3.0}});
  ckt.add<VSource>(vin, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Capacitor>(vin, mid, 2e-12);
  ckt.add<Capacitor>(mid, ckt.ground(), 4e-12);

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  // Capacitive divider: v_mid = 3 * C1/(C1+C2) = 1 V.
  EXPECT_NEAR(res.waveform(mid).value_at(1.9e-9), 1.0, 2e-2);
}

// --- IBIS writer round-trip structure --------------------------------------

TEST(IbisWriter, EmitsWellFormedFile) {
  ibis::IbisModel typ;
  typ.corner = ibis::Corner::Typical;
  typ.vdd = 3.3;
  typ.pullup.points = {{-1.0, -0.2}, {3.3, 0.0}, {4.3, 0.05}};
  typ.pulldown.points = {{-1.0, -0.05}, {0.0, 0.0}, {4.3, 0.2}};
  typ.ramp_up = 2e9;
  typ.ramp_down = 2.5e9;
  typ.c_comp = 5e-12;
  ibis::IbisModel slow = typ;
  slow.corner = ibis::Corner::Slow;
  ibis::IbisModel fast = typ;
  fast.corner = ibis::Corner::Fast;

  const auto text = ibis::write_ibs("md1", {slow, typ, fast});
  EXPECT_NE(text.find("[IBIS Ver]"), std::string::npos);
  EXPECT_NE(text.find("[Component]  md1"), std::string::npos);
  EXPECT_NE(text.find("[Pullup]"), std::string::npos);
  EXPECT_NE(text.find("[Pulldown]"), std::string::npos);
  EXPECT_NE(text.find("[Ramp]"), std::string::npos);
  EXPECT_NE(text.find("[End]"), std::string::npos);
}

TEST(IbisWriter, RequiresTypicalCorner) {
  ibis::IbisModel slow;
  slow.corner = ibis::Corner::Slow;
  EXPECT_THROW(ibis::write_ibs("x", {slow}), std::invalid_argument);
  EXPECT_THROW(ibis::write_ibs("x", {}), std::invalid_argument);
}
