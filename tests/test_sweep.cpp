// Tests of the emc::sweep subsystem: grid enumeration and deterministic
// PRBS, thread-pool scheduling/exception behavior, worst-margin
// aggregation, and the determinism contract (1-thread and N-thread sweeps
// produce bit-identical summaries). The corner functions here are cheap
// synthetic pipelines (small RC transients, hand-built reports) so the
// suite never pays for macromodel estimation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "obs/json.hpp"
#include "robust/error.hpp"
#include "robust/journal.hpp"
#include "sweep/corner_grid.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/thread_pool.hpp"

namespace {

using namespace emc;
using namespace emc::sweep;

// ------------------------------------------------------------- CornerGrid

TEST(CornerGrid, EnumerationCountAndOrdering) {
  CornerAxes axes;
  axes.vdd_scale = {0.9, 1.0, 1.1};
  axes.pattern_seed = {1, 2};
  axes.line_length = {0.05, 0.1};
  // detector/load/rbw stay singleton.
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 3u * 2u * 2u);

  // Mixed-radix order: pattern_seed slowest, then length, then the
  // post-processing vdd_scale axis fastest.
  const auto s0 = grid.at(0);
  EXPECT_EQ(s0.vdd_scale, 0.9);
  EXPECT_EQ(s0.pattern_seed, 1u);
  EXPECT_EQ(s0.line_length, 0.05);

  const auto s1 = grid.at(1);  // fastest non-singleton axis advances first
  EXPECT_EQ(s1.vdd_scale, 1.0);
  EXPECT_EQ(s1.pattern_seed, 1u);
  EXPECT_EQ(s1.line_length, 0.05);

  const auto s3 = grid.at(3);  // vdd wrapped, length advances
  EXPECT_EQ(s3.vdd_scale, 0.9);
  EXPECT_EQ(s3.pattern_seed, 1u);
  EXPECT_EQ(s3.line_length, 0.1);

  const auto last = grid.at(grid.size() - 1);
  EXPECT_EQ(last.vdd_scale, 1.1);
  EXPECT_EQ(last.pattern_seed, 2u);
  EXPECT_EQ(last.line_length, 0.1);

  // Every index decodes to a distinct coordinate tuple and round-trips.
  std::set<std::string> labels;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto sc = grid.at(i);
    EXPECT_EQ(sc.index, i);
    labels.insert(sc.label());
  }
  EXPECT_EQ(labels.size(), grid.size());

  EXPECT_THROW(grid.at(grid.size()), std::out_of_range);
  CornerAxes bad;
  bad.rbw.clear();
  EXPECT_THROW(CornerGrid{bad}, std::invalid_argument);
}

TEST(CornerGrid, PrbsIsDeterministicAndSeedSensitive) {
  const auto a = prbs_bits(7, 31);
  const auto b = prbs_bits(7, 31);
  const auto c = prbs_bits(8, 31);
  ASSERT_EQ(a.size(), 31u);
  EXPECT_EQ(a, b);          // pure function of the seed
  EXPECT_NE(a, c);          // neighboring seeds decorrelate
  for (char ch : a) EXPECT_TRUE(ch == '0' || ch == '1');

  // The scenario's pattern is derived from its own coordinates, never
  // from shared RNG state: two grids enumerate identical patterns.
  CornerAxes axes;
  axes.pattern_seed = {3, 4, 5};
  const CornerGrid g1(axes), g2(axes);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g1.at(i).bits, g2.at(i).bits);
    EXPECT_EQ(g1.at(i).bits, prbs_bits(g1.at(i).pattern_seed, axes.pattern_bits));
  }
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t kN = 1000;
  // Chunk sizes around and past the range length, including one that does
  // not divide kN: every index must still run exactly once.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}, kN + 1}) {
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(
        kN,
        [&](std::size_t i, std::size_t worker) {
          ASSERT_LT(worker, 4u);
          hits[i].fetch_add(1);
        },
        chunk);
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "chunk " << chunk;
  }
}

TEST(ThreadPool, ZeroItemsReturnsImmediatelyAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 0);
  // Zero-length loops with any chunk hint are equally inert.
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++ran; }, 1000);
  EXPECT_EQ(ran.load(), 0);
  pool.parallel_for(5, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 3;
  std::vector<std::atomic<int>> hits(kN);
  std::set<std::size_t> workers_seen;
  std::mutex mu;
  pool.parallel_for(kN, [&](std::size_t i, std::size_t worker) {
    ASSERT_LT(worker, 8u);
    hits[i].fetch_add(1);
    std::lock_guard<std::mutex> lk(mu);
    workers_seen.insert(worker);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // At most one worker per item can have participated.
  EXPECT_LE(workers_seen.size(), kN);
}

TEST(ThreadPool, ChunkHintLargerThanItemCount) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10;
  std::vector<std::atomic<int>> hits(kN);
  std::set<std::size_t> workers_seen;
  std::mutex mu;
  pool.parallel_for(
      kN,
      [&](std::size_t i, std::size_t worker) {
        hits[i].fetch_add(1);
        std::lock_guard<std::mutex> lk(mu);
        workers_seen.insert(worker);
      },
      /*chunk=*/1000);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // One chunk swallows the whole range: exactly one worker ran it.
  EXPECT_EQ(workers_seen.size(), 1u);
}

TEST(ThreadPool, WorkerAccountingIsConsistent) {
  ThreadPool pool(3);
  // Fresh pool: no epochs observed yet.
  for (const auto& ws : pool.worker_stats()) {
    EXPECT_EQ(ws.epochs, 0u);
    EXPECT_EQ(ws.busy_ns + ws.idle_ns, 0u);
    EXPECT_EQ(ws.items, 0u);
  }

  constexpr std::size_t kN = 64;
  constexpr int kEpochs = 3;
  auto spin = [](std::size_t, std::size_t) {
    volatile double x = 1.0;
    for (int k = 0; k < 20000; ++k) x = x * 1.0000001 + 1e-9;
  };
  for (int e = 0; e < kEpochs; ++e) pool.parallel_for(kN, spin);

  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t items = 0;
  for (std::size_t w = 0; w < stats.size(); ++w) {
    const auto& ws = stats[w];
    EXPECT_EQ(ws.epochs, static_cast<std::uint64_t>(kEpochs)) << "worker " << w;
    items += ws.items;
    // Busy never exceeds busy+idle (= the summed epoch wall time), and the
    // busy fraction is a well-defined [0, 1] number — the consistency the
    // report's busy_fraction field relies on.
    const std::uint64_t total = ws.busy_ns + ws.idle_ns;
    EXPECT_LE(ws.busy_ns, total);
    if (ws.items > 0) EXPECT_GT(ws.busy_ns, 0u) << "worker " << w;
  }
  EXPECT_EQ(items, static_cast<std::uint64_t>(kN) * kEpochs);
  // Every worker observed the same epochs, so their wall totals agree up
  // to clock granularity: all busy+idle sums are the same value.
  const std::uint64_t ref = stats[0].busy_ns + stats[0].idle_ns;
  EXPECT_GT(ref, 0u);
  for (const auto& ws : stats) EXPECT_EQ(ws.busy_ns + ws.idle_ns, ref);

  pool.reset_worker_stats();
  for (const auto& ws : pool.worker_stats()) {
    EXPECT_EQ(ws.epochs, 0u);
    EXPECT_EQ(ws.items, 0u);
  }
}

TEST(ThreadPool, WorkerStatsJsonShape) {
  ThreadPool pool(2);
  pool.parallel_for(16, [](std::size_t, std::size_t) {});
  const auto stats = pool.worker_stats();
  const auto rows = worker_stats_json(stats);
  ASSERT_EQ(rows.size(), 2u);
  std::uint64_t items = 0;
  for (std::size_t w = 0; w < rows.size(); ++w) {
    EXPECT_EQ(rows[w].at("worker").as_integer(), static_cast<long>(w));
    EXPECT_EQ(rows[w].at("epochs").as_integer(), 1);
    const double frac = rows[w].at("busy_fraction").as_double();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    items += static_cast<std::uint64_t>(rows[w].at("items").as_integer());
  }
  EXPECT_EQ(items, 16u);
}

TEST(ThreadPool, ExceptionPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i, std::size_t) {
                                   ++ran;
                                   if (i == 13) throw std::runtime_error("corner 13");
                                 }),
               std::runtime_error);
  // The loop drained: every index was still claimed and the pool is
  // reusable afterwards.
  EXPECT_EQ(ran.load(), 64);
  std::atomic<int> again{0};
  pool.parallel_for(32, [&](std::size_t, std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 32);
}

TEST(ThreadPool, ConcurrentThrowsAreCountedNotLost) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  constexpr std::size_t kThrowers = 9;
  std::atomic<int> ran{0};
  bool threw = false;
  try {
    pool.parallel_for(kN, [&](std::size_t i, std::size_t) {
      ++ran;
      if (i < kThrowers) throw std::runtime_error("boom " + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    // Only the first exception survives; the message must admit the rest
    // were suppressed so a caller never mistakes one error for the total.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("boom"), std::string::npos);
    EXPECT_NE(msg.find(std::to_string(kThrowers - 1) +
                       " more worker exception(s) suppressed"),
              std::string::npos)
        << msg;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(ran.load(), static_cast<int>(kN));  // drain still completes

  // The suppressed count is attributed to worker telemetry too.
  std::uint64_t suppressed = 0;
  for (const auto& ws : pool.worker_stats()) suppressed += ws.suppressed;
  EXPECT_EQ(suppressed, kThrowers - 1);

  // And the pool is reusable, with no stale error carried over.
  std::atomic<int> again{0};
  pool.parallel_for(32, [&](std::size_t, std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 32);
}

// ------------------------------------------------------------- summarize

spec::ComplianceReport report_with_margin(double margin_db, bool covered = true) {
  spec::ComplianceReport r;
  r.mask_name = "m";
  if (covered) {
    r.points.push_back({1e6, 50.0 - margin_db, 50.0, margin_db});
    r.worst_margin_db = margin_db;
    r.worst_index = 0;
    r.pass = margin_db >= 0.0;
  }
  return r;
}

TEST(SweepSummary, WorstMarginAggregationOnHandBuiltReports) {
  CornerAxes axes;
  axes.vdd_scale = {0.9, 1.1};
  axes.pattern_seed = {1, 2};
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 4u);

  // Margins in grid order (seed slowest, vdd fastest):
  // (seed=1,vdd=0.9)=+5, (1,1.1)=-3, (2,0.9)=+1, (2,1.1) uncovered.
  const double margins[] = {5.0, -3.0, 1.0, 0.0};
  std::vector<CornerResult> results(4);
  for (std::size_t i = 0; i < 4; ++i) {
    results[i].scenario = grid.at(i);
    results[i].report = report_with_margin(margins[i], /*covered=*/i != 3);
  }
  // Corner 2's scan was truncated at Nyquist: its verdict is partial and
  // the summary must say so.
  results[2].report.skipped_scan_points = 7;

  MarginHistogram spec_hist;
  spec_hist.lo_db = -40.0;
  spec_hist.hi_db = 40.0;
  spec_hist.n_bins = 16;  // 5 dB bins
  const auto s = summarize(grid, results, spec_hist);

  EXPECT_EQ(s.corners, 4u);
  EXPECT_EQ(s.passed, 2u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.uncovered, 1u);
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.worst_margin_db, -3.0);
  EXPECT_EQ(s.worst_corner, 1u);
  EXPECT_EQ(s.worst_label, grid.at(1).label());

  const auto vdd_axis = static_cast<std::size_t>(AxisId::kVddScale);
  const auto seed_axis = static_cast<std::size_t>(AxisId::kPatternSeed);
  EXPECT_EQ(s.axis_worst[vdd_axis][0], 1.0);    // vdd=0.9: min(+5, +1)
  EXPECT_EQ(s.axis_worst[vdd_axis][1], -3.0);   // vdd=1.1: the failing corner
  EXPECT_EQ(s.axis_worst[seed_axis][0], -3.0);  // seed=1: min(+5, -3)
  EXPECT_EQ(s.axis_worst[seed_axis][1], 1.0);   // seed=2: only covered corner

  // Histogram: -3 dB lands in bin floor((-3+40)/5)=7, +1 in bin 8,
  // +5 in bin 9; the uncovered corner is not histogrammed.
  std::size_t total = 0;
  for (std::size_t c : s.histogram.counts) total += c;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(s.histogram.counts[7], 1u);
  EXPECT_EQ(s.histogram.counts[8], 1u);
  EXPECT_EQ(s.histogram.counts[9], 1u);

  const std::vector<CornerResult> short_results(3);
  EXPECT_THROW(summarize(grid, short_results), std::invalid_argument);

  // All corners uncovered: unambiguous sentinels, never a fake 0 dB.
  std::vector<CornerResult> none(4);
  for (std::size_t i = 0; i < 4; ++i) {
    none[i].scenario = grid.at(i);
    none[i].report = report_with_margin(0.0, /*covered=*/false);
  }
  const auto e = summarize(grid, none);
  EXPECT_EQ(e.uncovered, 4u);
  EXPECT_TRUE(std::isinf(e.worst_margin_db));
  EXPECT_EQ(e.worst_corner, SIZE_MAX);
  EXPECT_TRUE(e.worst_label.empty());
}

TEST(SweepSummary, RecordMemoryPeaksAggregateOverAllCorners) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3};
  const CornerGrid grid(axes);

  std::vector<CornerResult> results(3);
  for (std::size_t i = 0; i < 3; ++i) {
    results[i].scenario = grid.at(i);
    // Corner 1 is uncovered but ran the biggest transient: its footprint
    // must still win the peak.
    results[i].report = report_with_margin(1.0, /*covered=*/i != 1);
    results[i].streamed_record_bytes = 100 * (i + 1);
    results[i].monolithic_record_bytes = i == 1 ? 999999 : 5000;
  }
  const auto s = summarize(grid, results);
  EXPECT_EQ(s.peak_streamed_record_bytes, 300u);
  EXPECT_EQ(s.peak_monolithic_record_bytes, 999999u);
}

// --------------------------------------------------- SweepRunner contract

/// Cheap but real corner pipeline: an RC divider driven by a bit stream
/// whose R depends on the supply corner and C on the load axis, solved
/// with the per-worker Newton workspace; the "report" scores the final
/// capacitor voltage. Exercises run_transient's external-workspace path
/// across many same-sized circuits per worker.
spec::ComplianceReport rc_corner(const Scenario& sc, Workspace& ws) {
  ckt::Circuit c;
  const int in = c.node();
  const int out = c.node();
  c.add<ckt::VSource>(in, c.ground(), 1.0 * sc.vdd_scale);
  c.add<ckt::Resistor>(in, out, 1e3 * (1.0 + sc.line_length));
  c.add<ckt::Capacitor>(out, c.ground(), sc.load_c);

  ckt::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 200e-9;
  const auto res = ckt::run_transient(c, opt, ws.newton);
  const auto v = res.waveform(out);

  spec::LimitMask mask{"v-final", {{1e5, 1.0}, {1e7, 1.0}}};
  const double freq[] = {1e6};
  const double level[] = {v[v.size() - 1]};
  return spec::check_compliance(freq, level, mask, sc.label());
}

TEST(SweepRunner, OneThreadAndNThreadSweepsAreBitIdentical) {
  CornerAxes axes;
  axes.vdd_scale = {0.8, 0.9, 1.0, 1.1};
  axes.line_length = {0.0, 0.5, 1.0};
  axes.load_c = {50e-12, 100e-12};  // tau 50-200 ns vs the 200 ns record
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 24u);

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(grid, rc_corner);
  const auto b = parallel.run(grid, rc_corner);

  // Bit-identical aggregate AND bit-identical per-corner margins.
  EXPECT_TRUE(a.summary == b.summary);

  // Chunked scheduling must not change anything either.
  const auto c = parallel.run(grid, rc_corner, {}, /*chunk=*/4);
  EXPECT_TRUE(a.summary == c.summary);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].scenario.index, i);
    ASSERT_EQ(a.results[i].report.points.size(), b.results[i].report.points.size());
    EXPECT_EQ(a.results[i].report.worst_margin_db, b.results[i].report.worst_margin_db)
        << "corner " << i;
  }
  // Sanity: the RC corners actually differ from one another.
  EXPECT_LT(a.summary.worst_margin_db, 0.3);
  EXPECT_GT(a.summary.passed + a.summary.failed, 0u);
}

TEST(SweepRunner, MemoryAccountingRidesWorkspaceAndIsSchedulingIndependent) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3, 4, 5, 6, 7, 8};
  const CornerGrid grid(axes);

  // Pure function of the scenario, as the streamed emission pipeline
  // guarantees: every scheduling must report identical bytes.
  const CornerFn fn = [](const Scenario& sc, Workspace& ws) {
    ws.memo_streamed_bytes = 10 + sc.index;
    ws.memo_monolithic_bytes = 1000 + 10 * sc.index;
    return report_with_margin(1.0);
  };

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(grid, fn);
  const auto b = parallel.run(grid, fn, {}, /*chunk=*/3);
  EXPECT_TRUE(a.summary == b.summary);
  EXPECT_EQ(a.summary.peak_streamed_record_bytes, 17u);
  EXPECT_EQ(a.summary.peak_monolithic_record_bytes, 1070u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.results[i].streamed_record_bytes, 10 + i);
    EXPECT_EQ(b.results[i].streamed_record_bytes, 10 + i);
    EXPECT_EQ(a.results[i].monolithic_record_bytes, 1000 + 10 * i);
  }
}

TEST(SweepRunner, ProgressCallbackSeesEveryCornerOnce) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3, 4, 5, 6};
  const CornerGrid grid(axes);

  const CornerFn fn = [](const Scenario&, Workspace&) { return report_with_margin(1.0); };

  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> max_done{0};
  SweepRunner runner(3);
  const auto out = runner.run(
      grid, fn, {}, /*chunk=*/1, [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, grid.size());
        EXPECT_GE(done, 1u);
        EXPECT_LE(done, total);
        ++calls;
        std::size_t prev = max_done.load();
        while (done > prev && !max_done.compare_exchange_weak(prev, done)) {
        }
      });
  EXPECT_EQ(calls.load(), grid.size());
  EXPECT_EQ(max_done.load(), grid.size());
  EXPECT_EQ(out.summary.corners, grid.size());

  // Worker telemetry: one entry per pool worker, every corner attributed
  // to a valid worker, items summing to the corner count.
  ASSERT_EQ(out.workers.size(), runner.jobs());
  std::uint64_t items = 0;
  for (const auto& w : out.workers) items += w.items;
  EXPECT_EQ(items, grid.size());
  for (const auto& r : out.results) EXPECT_LT(r.worker, runner.jobs());
}

TEST(SweepRunner, SolverTelemetryRidesWorkspaceLikeMemory) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3};
  axes.vdd_scale = {0.9, 1.0};  // post-processing axis: shares transients
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 6u);

  // A corner fn that marks its "transient" work the way the emission fn
  // does: a fresh solve per pattern, memo hits for the vdd corners.
  const CornerFn fn = [](const Scenario& sc, Workspace& ws) {
    const std::string key = sc.bits;
    ws.memo_hit = ws.memo_key == key;
    if (!ws.memo_hit) {
      ws.memo_solve = {};
      ws.memo_solve.total_newton_iters = 100 + static_cast<long>(sc.pattern_seed);
      ws.memo_solve.used_sparse = 1;
      ws.memo_key = key;
    }
    return report_with_margin(1.0);
  };

  SweepRunner serial(1);
  const auto out = serial.run(grid, fn, {}, emission_chunk_hint(grid));
  for (const auto& r : out.results) {
    EXPECT_EQ(r.solve.total_newton_iters,
              100 + static_cast<long>(r.scenario.pattern_seed))
        << "corner " << r.scenario.index;
    EXPECT_EQ(r.solve.used_sparse, 1);
  }
  // With the chunk hint, exactly one corner per pattern ran its transient.
  std::size_t fresh = 0;
  for (const auto& r : out.results) fresh += r.transient_reused ? 0 : 1;
  EXPECT_EQ(fresh, 3u);
}

TEST(SweepRunner, CornerExceptionDoesNotDeadlockAndPoolSurvives) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3, 4, 5, 6, 7, 8};
  const CornerGrid grid(axes);

  SweepRunner runner(3);
  // A non-SolveError signals a bug, not solver trouble: it must propagate
  // even under the default failure-isolation policy.
  const CornerFn faulty = [](const Scenario& sc, Workspace& ws) {
    if (sc.index == 5) throw std::runtime_error("diverged corner");
    return rc_corner(sc, ws);
  };
  EXPECT_THROW(runner.run(grid, faulty), std::runtime_error);

  // Same runner, clean function: completes and aggregates normally.
  const auto out = runner.run(grid, rc_corner);
  EXPECT_EQ(out.summary.corners, grid.size());
  EXPECT_EQ(out.summary.uncovered, 0u);
}

/// Corner function that fails with a structured SolveError on selected
/// grid indices and otherwise runs the cheap RC pipeline.
CornerFn solve_faulty_corner(std::set<std::size_t> bad) {
  return [bad = std::move(bad)](const Scenario& sc, Workspace& ws) {
    if (bad.count(sc.index)) {
      robust::SolveErrorInfo info;
      info.kind = robust::FailureKind::kTransientDivergence;
      info.site = "run_transient";
      info.context = sc.label();
      info.detail = "synthetic divergence";
      throw robust::SolveError(std::move(info));
    }
    return rc_corner(sc, ws);
  };
}

TEST(SweepRunner, SolveErrorIsIsolatedByDefaultAndSweepCompletes) {
  CornerAxes axes;
  axes.vdd_scale = {0.9, 1.1};
  axes.pattern_seed = {1, 2, 3};
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 6u);

  SweepRunner runner(3);
  const auto fn = solve_faulty_corner({1, 4});
  const auto out = runner.run(grid, fn, RunOptions{});

  EXPECT_EQ(out.summary.corners, 6u);
  EXPECT_EQ(out.summary.solver_failed, 2u);
  EXPECT_EQ(out.summary.uncovered, 0u);  // casualties are NOT "uncovered"
  EXPECT_EQ(out.summary.passed + out.summary.failed, 4u);
  ASSERT_EQ(out.results.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& r = out.results[i];
    if (i == 1 || i == 4) {
      EXPECT_TRUE(r.solver_failed);
      EXPECT_EQ(r.failure_kind, "transient_divergence");
      // The isolated record carries the corner identity the worker had.
      EXPECT_NE(r.failure.find(grid.at(i).label()), std::string::npos);
      EXPECT_TRUE(r.report.points.empty());
    } else {
      EXPECT_FALSE(r.solver_failed);
      EXPECT_TRUE(r.failure.empty());
    }
  }

  // Isolation is deterministic: any worker count sees the same casualties.
  SweepRunner serial(1);
  const auto ref = serial.run(grid, fn, RunOptions{});
  EXPECT_TRUE(ref.summary == out.summary);

  // Opting out restores the fail-fast contract. With two failing corners
  // the pool may wrap the survivor exception in its suppression message,
  // so catch the base type (SolveError IS-A runtime_error).
  RunOptions strict;
  strict.isolate_failures = false;
  EXPECT_THROW(runner.run(grid, fn, strict), std::runtime_error);
}

TEST(SweepSummary, SolverFailuresAreClassifiedAndAttributedPerAxis) {
  CornerAxes axes;
  axes.vdd_scale = {0.9, 1.1};
  axes.pattern_seed = {1, 2};
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 4u);

  std::vector<CornerResult> results(4);
  for (std::size_t i = 0; i < 4; ++i) {
    results[i].scenario = grid.at(i);
    results[i].report = report_with_margin(1.0);
  }
  // Corner 2 = (seed=2, vdd=0.9): solver casualty. Corner 1 recovered
  // after escalation. Corner 3 is a mask-coverage gap.
  results[2].solver_failed = true;
  results[2].failure_kind = "singular_system";
  results[2].report = {};
  results[1].recovered = true;
  results[1].solve_attempts = 3;
  results[3].report = report_with_margin(0.0, /*covered=*/false);

  const auto s = summarize(grid, results);
  EXPECT_EQ(s.corners, 4u);
  EXPECT_EQ(s.solver_failed, 1u);
  EXPECT_EQ(s.recovered, 1u);
  EXPECT_EQ(s.uncovered, 1u);  // corner 3 only — the casualty is separate
  EXPECT_EQ(s.passed, 2u);

  const auto vdd_axis = static_cast<std::size_t>(AxisId::kVddScale);
  const auto seed_axis = static_cast<std::size_t>(AxisId::kPatternSeed);
  EXPECT_EQ(s.axis_solver_failed[vdd_axis][0], 1u);
  EXPECT_EQ(s.axis_solver_failed[vdd_axis][1], 0u);
  EXPECT_EQ(s.axis_solver_failed[seed_axis][0], 0u);
  EXPECT_EQ(s.axis_solver_failed[seed_axis][1], 1u);

  // The JSON summary carries the counts without disturbing the margins.
  const auto j = summary_json(grid, s);
  EXPECT_EQ(j.at("solver_failed").as_integer(), 1);
  EXPECT_EQ(j.at("recovered").as_integer(), 1);
  EXPECT_EQ(j.at("uncovered").as_integer(), 1);
}

// --------------------------------------------------- checkpoint journal

TEST(SweepJournal, CornerEntryRoundTripsBitForBit) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2};
  const CornerGrid grid(axes);

  CornerResult r;
  r.scenario = grid.at(1);
  r.report = report_with_margin(-1.0 / 3.0);  // not representable in %.9g
  r.report.skipped_scan_points = 2;
  r.streamed_record_bytes = 4096;
  r.monolithic_record_bytes = 123456;
  r.solve.total_newton_iters = 321;
  r.solve.used_sparse = 1;
  r.solve_attempts = 2;
  r.recovered = true;

  const auto entry = corner_journal_json(1, r);
  std::size_t gidx = SIZE_MAX;
  const CornerResult back = corner_from_journal(entry, gidx);
  EXPECT_EQ(gidx, 1u);
  EXPECT_EQ(back.solver_failed, r.solver_failed);
  EXPECT_EQ(back.solve_attempts, 2);
  EXPECT_TRUE(back.recovered);
  // from_checkpoint is the RUNNER's flag for restored slots, not part of
  // the journaled record (it is scheduling history, not corner data).
  EXPECT_FALSE(back.from_checkpoint);
  EXPECT_EQ(back.streamed_record_bytes, 4096u);
  EXPECT_EQ(back.monolithic_record_bytes, 123456u);
  EXPECT_EQ(back.solve.total_newton_iters, 321);
  EXPECT_EQ(back.solve.used_sparse, 1);
  // Bit-exact doubles: the whole point of the %.17g spelling.
  ASSERT_EQ(back.report.points.size(), r.report.points.size());
  EXPECT_EQ(back.report.worst_margin_db, r.report.worst_margin_db);
  EXPECT_EQ(back.report.points[0].margin_db, r.report.points[0].margin_db);
  EXPECT_EQ(back.report.skipped_scan_points, 2u);
  EXPECT_EQ(back.report.pass, r.report.pass);

  // A failed corner round-trips its failure record instead of a report.
  CornerResult f;
  f.scenario = grid.at(0);
  f.solver_failed = true;
  f.failure = "solve failed [kind=dc_divergence ...]";
  f.failure_kind = "dc_divergence";
  f.solve_attempts = 5;
  std::size_t gf = 0;
  const CornerResult fb = corner_from_journal(corner_journal_json(0, f), gf);
  EXPECT_TRUE(fb.solver_failed);
  EXPECT_EQ(fb.failure, f.failure);
  EXPECT_EQ(fb.failure_kind, "dc_divergence");
  EXPECT_EQ(fb.solve_attempts, 5);
}

TEST(SweepJournal, AbortedRunResumesToByteIdenticalReports) {
  CornerAxes axes;
  axes.vdd_scale = {0.9, 1.0, 1.1};
  axes.pattern_seed = {1, 2, 3, 4};
  const CornerGrid grid(axes);
  ASSERT_EQ(grid.size(), 12u);

  const auto fn = solve_faulty_corner({3, 7});
  const std::string j_full = "test_sweep_journal_full.jsonl";
  const std::string j_cut = "test_sweep_journal_cut.jsonl";
  std::remove(j_full.c_str());
  std::remove(j_cut.c_str());

  // Reference: uninterrupted single-process run (journaling on, so the
  // byte-identity claim covers the journaled path itself).
  SweepRunner runner(3);
  RunOptions opt;
  opt.journal_path = j_full;
  const auto ref = runner.run(grid, fn, opt);
  EXPECT_EQ(ref.summary.corners, 12u);
  EXPECT_EQ(ref.summary.solver_failed, 2u);
  const auto full_entries = robust::load_journal(j_full);
  ASSERT_EQ(full_entries.size(), 12u);

  // Simulate a shard killed mid-run: keep only the first 5 journal lines
  // (whatever order the workers finished them in).
  {
    std::ofstream cut(j_cut);
    for (std::size_t i = 0; i < 5; ++i)
      cut << robust::dump_line(full_entries[i]) << '\n';
  }

  // Resume over the truncated journal with a different worker count.
  SweepRunner resumer(2);
  RunOptions ropt;
  ropt.journal_path = j_cut;
  const auto res = resumer.run(grid, fn, ropt);

  std::size_t restored = 0;
  for (const auto& r : res.results) restored += r.from_checkpoint ? 1 : 0;
  EXPECT_EQ(restored, 5u);

  // The merged outcome is byte-identical to the uninterrupted run:
  // summary JSON and every deterministic per-corner record.
  EXPECT_TRUE(ref.summary == res.summary);
  EXPECT_EQ(summary_json(grid, ref.summary).dump(2),
            summary_json(grid, res.summary).dump(2));
  ASSERT_EQ(ref.results.size(), res.results.size());
  for (std::size_t i = 0; i < ref.results.size(); ++i)
    EXPECT_EQ(corner_result_json(ref.results[i]).dump(2),
              corner_result_json(res.results[i]).dump(2))
        << "corner " << i;
  // The resumed journal now also holds every corner.
  EXPECT_EQ(robust::load_journal(j_cut).size(), 12u);

  std::remove(j_full.c_str());
  std::remove(j_cut.c_str());
}

TEST(SweepRunner, CooperativeStopAbortsJournalsAndResumes) {
  CornerAxes axes;
  axes.pattern_seed = {1, 2, 3, 4, 5, 6, 7, 8};
  const CornerGrid grid(axes);

  const std::string jpath = "test_sweep_journal_stop.jsonl";
  std::remove(jpath.c_str());

  std::atomic<bool> stop{false};
  SweepRunner runner(2);
  RunOptions opt;
  opt.journal_path = jpath;
  opt.stop = &stop;
  opt.progress = [&](std::size_t done, std::size_t) {
    if (done >= 3) stop.store(true);
  };
  EXPECT_THROW(runner.run(grid, rc_corner, opt), SweepAborted);

  // Whatever finished before the abort is on disk, ready for a resume.
  const auto entries = robust::load_journal(jpath);
  EXPECT_GE(entries.size(), 3u);
  EXPECT_LT(entries.size(), grid.size());

  RunOptions ropt;
  ropt.journal_path = jpath;
  const auto res = runner.run(grid, rc_corner, ropt);
  EXPECT_EQ(res.summary.corners, grid.size());

  // Identical to a never-aborted, never-journaled run.
  const auto ref = runner.run(grid, rc_corner);
  EXPECT_TRUE(ref.summary == res.summary);

  std::remove(jpath.c_str());
}

// ----------------------------------------------- engine workspace overload

TEST(EngineWorkspace, ExternalWorkspaceMatchesInternalRun) {
  auto build = [](double r) {
    auto c = std::make_unique<ckt::Circuit>();
    const int in = c->node();
    const int out = c->node();
    c->add<ckt::VSource>(in, c->ground(), 1.0);
    c->add<ckt::Resistor>(in, out, r);
    c->add<ckt::Capacitor>(out, c->ground(), 1e-9);
    return c;
  };
  ckt::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 100e-9;

  ckt::NewtonWorkspace ws;
  for (double r : {1e3, 2e3, 5e3}) {
    auto c1 = build(r);
    auto c2 = build(r);
    const auto ref = ckt::run_transient(*c1, opt);
    const auto got = ckt::run_transient(*c2, opt, ws);  // reused scratch
    ASSERT_EQ(ref.steps(), got.steps());
    for (std::size_t k = 0; k < ref.steps(); ++k)
      EXPECT_EQ(ref.value(k, 2), got.value(k, 2)) << "r=" << r << " step " << k;
  }
}

}  // namespace
