// Swept EMI receiver: zoom-IFFT vs reference demodulation agreement
// across RBW corner cases (occupied band from ~1 bin to the whole
// half-spectrum), scan-truncation accounting, and its surfacing through
// compliance reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

using namespace emc;

namespace {

/// Busy deterministic record: nine harmonics of a 1 MHz carrier with slow
/// amplitude modulation plus LCG noise — enough spectral structure that
/// every detector reads something nontrivial at every scan point.
sig::Waveform busy_record(std::size_t n, double fs) {
  sig::Lcg rng(77);
  std::vector<double> y(n);
  const double dt = 1.0 / fs;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    double v = 0.0;
    for (int h = 1; h <= 9; ++h)
      v += (1.0 / h) * std::sin(2.0 * std::numbers::pi * 1e6 * h * t + 0.3 * h);
    v *= 1.0 + 0.4 * std::sin(2.0 * std::numbers::pi * 40e3 * t);
    v += 0.01 * (rng.uniform() * 2.0 - 1.0);
    y[k] = v;
  }
  return {0.0, dt, std::move(y)};
}

spec::ReceiverSettings busy_rx(double rbw, spec::ScanMethod method) {
  spec::ReceiverSettings s;
  s.name = "test";
  s.f_start = 200e3;
  s.f_stop = 10e6;
  s.n_points = 25;
  s.rbw = rbw;
  s.tau_charge = 2e-6;
  s.tau_discharge = 60e-6;
  s.method = method;
  return s;
}

/// Worst |zoom - reference| across all three detectors and all points.
double max_delta_db(const spec::EmiScan& a, const spec::EmiScan& b) {
  EXPECT_EQ(a.size(), b.size());
  return spec::max_detector_delta_db(a, b);
}

}  // namespace

TEST(EmiZoom, MatchesReferenceAcrossRbwCornerCases) {
  // Acceptance criterion: the zoom-IFFT fast path agrees with the
  // full-length reference demodulation to < 0.01 dB on every detector.
  // fs = 64 MS/s, n = 4096 -> df = 15.625 kHz. The RBW list walks the
  // occupied band from ~2 bins to wider than the whole half-spectrum.
  const auto w = busy_record(4096, 64e6);
  for (double rbw : {4.5e3, 40e3, 200e3, 1e6, 40e6}) {
    spec::EmiScanner ref_scanner;
    spec::EmiScanner zoom_scanner;
    const auto ref = ref_scanner.scan(w, busy_rx(rbw, spec::ScanMethod::kReference));
    const auto zoom = zoom_scanner.scan(w, busy_rx(rbw, spec::ScanMethod::kZoom));
    EXPECT_LT(max_delta_db(ref, zoom), 0.01) << "rbw=" << rbw;
  }
}

TEST(EmiZoom, AutoMethodMatchesReference) {
  const auto w = busy_record(4096, 64e6);
  const auto ref = spec::emi_scan(w, busy_rx(100e3, spec::ScanMethod::kReference));
  const auto fast = spec::emi_scan(w, busy_rx(100e3, spec::ScanMethod::kAuto));
  EXPECT_LT(max_delta_db(ref, fast), 0.01);
}

TEST(EmiZoom, MatchesReferenceOnNonPowerOfTwoRecord) {
  // n = 3000 exercises the Bluestein reference inverse and the even-n
  // real-input forward against the radix-2 zoom plan.
  const auto w = busy_record(3000, 64e6);
  const auto ref = spec::emi_scan(w, busy_rx(150e3, spec::ScanMethod::kReference));
  const auto zoom = spec::emi_scan(w, busy_rx(150e3, spec::ScanMethod::kZoom));
  EXPECT_LT(max_delta_db(ref, zoom), 0.01);
}

TEST(EmiZoom, OneScannerHandlesMixedMethodsAndLengths) {
  // Plan/buffer reuse across method switches and record lengths must not
  // leak state between calls.
  spec::EmiScanner scanner;
  const auto w1 = busy_record(4096, 64e6);
  const auto w2 = busy_record(3000, 64e6);
  const auto a = scanner.scan(w1, busy_rx(100e3, spec::ScanMethod::kZoom));
  const auto b = scanner.scan(w2, busy_rx(150e3, spec::ScanMethod::kReference));
  const auto c = scanner.scan(w1, busy_rx(100e3, spec::ScanMethod::kZoom));
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(a.quasi_peak_dbuv[k], c.quasi_peak_dbuv[k]);
  EXPECT_EQ(b.size(), 25u);
}

TEST(EmiScanTruncation, SkippedPointsAreCounted) {
  const auto w = busy_record(4096, 64e6);  // Nyquist 32 MHz
  auto rx = busy_rx(200e3, spec::ScanMethod::kAuto);
  rx.f_stop = 100e6;  // well past Nyquist
  rx.n_points = 20;
  const auto scan = spec::emi_scan(w, rx);
  EXPECT_GT(scan.skipped_points, 0u);
  EXPECT_EQ(scan.size() + scan.skipped_points, 20u);
  for (double f : scan.freq) EXPECT_LT(f, 32e6);

  // A span fully below Nyquist drops nothing.
  const auto full = spec::emi_scan(w, busy_rx(200e3, spec::ScanMethod::kAuto));
  EXPECT_EQ(full.skipped_points, 0u);
  EXPECT_EQ(full.size(), 25u);
}

TEST(EmiScanTruncation, ComplianceReportSurfacesTruncatedScans) {
  const auto w = busy_record(4096, 64e6);
  auto rx = busy_rx(200e3, spec::ScanMethod::kAuto);
  rx.f_stop = 100e6;
  const auto scan = spec::emi_scan(w, rx);
  ASSERT_GT(scan.skipped_points, 0u);

  const spec::LimitMask mask{"unit mask", {{200e3, 200.0}, {100e6, 200.0}}};
  const auto rep = spec::check_compliance(scan.freq, scan.quasi_peak_dbuv, mask,
                                          "truncated", scan.skipped_points);
  EXPECT_EQ(rep.skipped_scan_points, scan.skipped_points);
  EXPECT_NE(rep.summary().find("TRUNCATED SCAN"), std::string::npos);

  // An untruncated report keeps the old summary shape.
  const auto clean = spec::check_compliance(scan.freq, scan.quasi_peak_dbuv, mask, "ok");
  EXPECT_EQ(clean.skipped_scan_points, 0u);
  EXPECT_EQ(clean.summary().find("TRUNCATED SCAN"), std::string::npos);

  // Merging the per-detector reports of one scan (the CISPR 32 QP+AVG
  // criterion) must not double-count that scan's dropped points.
  const spec::ComplianceReport both[] = {rep, rep};
  const auto merged = spec::merge_reports(both, "merged");
  EXPECT_EQ(merged.skipped_scan_points, scan.skipped_points);
  EXPECT_NE(merged.summary().find("TRUNCATED SCAN"), std::string::npos);
}

TEST(LogGrid, MatchesTheFixedScanGridBitForBit) {
  // scan() now lays its grid out through make_log_grid; the helper must
  // reproduce the frequencies a scan reports exactly (mask checks treat
  // band edges as inclusive, so even the endpoints must be bit-equal).
  const auto w = busy_record(4096, 64e6);
  const auto rx = busy_rx(200e3, spec::ScanMethod::kAuto);
  const auto scan = spec::emi_scan(w, rx);
  const auto grid = spec::make_log_grid(rx.f_start, rx.f_stop, rx.n_points);
  ASSERT_EQ(scan.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) EXPECT_EQ(scan.freq[k], grid[k]);
  EXPECT_EQ(grid.front(), rx.f_start);
  EXPECT_EQ(grid.back(), rx.f_stop);
}

TEST(LogGrid, EdgeCases) {
  // Single point.
  const auto one = spec::make_log_grid(1e6, 2e6, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 1e6);

  // f_lo == f_hi collapses to one point regardless of n.
  const auto flat = spec::make_log_grid(5e6, 5e6, 40);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0], 5e6);

  EXPECT_THROW(spec::make_log_grid(1e6, 2e6, 0), std::invalid_argument);
  EXPECT_THROW(spec::make_log_grid(0.0, 2e6, 10), std::invalid_argument);
  EXPECT_THROW(spec::make_log_grid(-1.0, 2e6, 10), std::invalid_argument);
  EXPECT_THROW(spec::make_log_grid(2e6, 1e6, 10), std::invalid_argument);

  // A grid reaching above the record's Nyquist rate feeds measure(),
  // which drops and counts the unmeasurable points.
  const auto w = busy_record(4096, 64e6);  // Nyquist 32 MHz
  spec::EmiScanner scanner;
  scanner.load_record(w);
  const auto grid = spec::make_log_grid(1e6, 100e6, 16);
  const auto scan = scanner.measure(busy_rx(200e3, spec::ScanMethod::kAuto), grid);
  EXPECT_GT(scan.skipped_points, 0u);
  EXPECT_EQ(scan.size() + scan.skipped_points, 16u);
}

TEST(EmiScanCounts, PerScanDemodulationCountsAreSurfaced) {
  const auto w = busy_record(4096, 64e6);

  // Forced reference: every measured point is a reference point.
  const auto ref = spec::emi_scan(w, busy_rx(200e3, spec::ScanMethod::kReference));
  EXPECT_EQ(ref.reference_points, ref.size());
  EXPECT_EQ(ref.zoom_points, 0u);
  EXPECT_EQ(ref.refined_points, 0u);

  // Forced zoom on a narrow RBW: every point with an occupied bin zooms.
  const auto zoom = spec::emi_scan(w, busy_rx(200e3, spec::ScanMethod::kZoom));
  EXPECT_EQ(zoom.zoom_points + zoom.reference_points, zoom.size());
  EXPECT_GT(zoom.zoom_points, 0u);
  EXPECT_EQ(zoom.reference_points, 0u);

  // Auto on a huge RBW falls back to the reference path (no decimation
  // to be had when the occupied band spans the whole half-spectrum).
  const auto wide = spec::emi_scan(w, busy_rx(40e6, spec::ScanMethod::kAuto));
  EXPECT_GT(wide.reference_points, 0u);
  EXPECT_EQ(wide.zoom_points + wide.reference_points, wide.size());
}

TEST(EmiScanCounts, MeasureReusesTheLoadedRecord) {
  const auto w = busy_record(4096, 64e6);
  const auto rx = busy_rx(200e3, spec::ScanMethod::kAuto);

  // load_record once + measure on the scan grid == scan() bit-for-bit.
  spec::EmiScanner a;
  spec::EmiScanner b;
  const auto whole = a.scan(w, rx);
  b.load_record(w);
  const auto parts =
      b.measure(rx, spec::make_log_grid(rx.f_start, rx.f_stop, rx.n_points));
  ASSERT_EQ(whole.size(), parts.size());
  for (std::size_t k = 0; k < whole.size(); ++k) {
    EXPECT_EQ(whole.freq[k], parts.freq[k]);
    EXPECT_EQ(whole.peak_dbuv[k], parts.peak_dbuv[k]);
    EXPECT_EQ(whole.quasi_peak_dbuv[k], parts.quasi_peak_dbuv[k]);
    EXPECT_EQ(whole.average_dbuv[k], parts.average_dbuv[k]);
  }

  // Point-at-a-time probing reads the same values as the whole grid.
  for (std::size_t k = 0; k < whole.size(); k += 7) {
    const double f[1] = {whole.freq[k]};
    const auto one = b.measure(rx, f);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.quasi_peak_dbuv[0], whole.quasi_peak_dbuv[k]);
  }

  spec::EmiScanner empty;
  const double f[1] = {1e6};
  EXPECT_THROW(empty.measure(rx, f), std::invalid_argument);
}
