// Engine-internal behavior: TransientResult bounds checking, SolveStats
// accounting, and the cached-LU linear fast path (one Newton iteration per
// step, waveforms identical to the generic re-factorizing path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"

namespace ckt = emc::ckt;

namespace {

/// Step-driven RLC ladder: Vsrc -- R -- L -- node(out) -- C || R_load.
/// Purely linear, with enough state (L, C histories) to exercise the
/// companion-model rhs refresh under a frozen Jacobian.
int build_rlc(ckt::Circuit& c) {
  const int n1 = c.node("in");
  const int n2 = c.node("mid");
  const int out = c.node("out");
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  c.add<ckt::Resistor>(n1, n2, 25.0);
  c.add<ckt::Inductor>(n2, out, 5e-9);
  c.add<ckt::Capacitor>(out, 0, 10e-12);
  c.add<ckt::Resistor>(out, 0, 1e3);
  return out;
}

ckt::TransientOptions rlc_options() {
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 10e-9;
  return opt;
}

}  // namespace

TEST(TransientResult, WaveformOutOfRangeIdThrows) {
  ckt::Circuit c;
  const int out = build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());

  EXPECT_NO_THROW(res.waveform(0));    // ground: all-zero waveform
  EXPECT_NO_THROW(res.waveform(out));  // valid node
  // 3 nodes + 2 branch currents (VSource, Inductor) = 5 unknowns; id 6 is
  // past the end.
  EXPECT_THROW(res.waveform(6), std::out_of_range);
  EXPECT_THROW(res.waveform(1000), std::out_of_range);
}

TEST(TransientResult, GroundWaveformIsZero) {
  ckt::Circuit c;
  build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());
  const auto gnd = res.waveform(0);
  for (std::size_t k = 0; k < gnd.size(); ++k) EXPECT_EQ(gnd[k], 0.0);
}

TEST(SolveStats, PopulatedByTransientRun) {
  ckt::Circuit c;
  build_rlc(c);
  const auto opt = rlc_options();
  const auto res = ckt::run_transient(c, opt);

  const long expected_steps =
      std::llround((opt.t_stop - opt.t_start) / opt.dt);
  EXPECT_EQ(res.stats.steps, expected_steps);
  EXPECT_GE(res.stats.total_newton_iters, res.stats.steps);
  EXPECT_EQ(res.stats.weak_steps, 0);
  // Result holds the initial state plus one record per step.
  EXPECT_EQ(res.steps(), static_cast<std::size_t>(expected_steps) + 1);
}

TEST(LinearFastPath, OneNewtonIterationPerStep) {
  // Regression: a purely linear circuit must ride the cached-LU fast path,
  // which solves each step with exactly one (exact) Newton iteration.
  ckt::Circuit c;
  build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());
  EXPECT_EQ(res.stats.total_newton_iters, res.stats.steps);
  EXPECT_EQ(res.stats.weak_steps, 0);
}

TEST(LinearFastPath, MatchesGenericNewtonPath) {
  ckt::Circuit fast, ref;
  const int out_fast = build_rlc(fast);
  const int out_ref = build_rlc(ref);

  auto opt = rlc_options();
  opt.cache_lu = true;
  const auto res_fast = ckt::run_transient(fast, opt);
  opt.cache_lu = false;
  const auto res_ref = ckt::run_transient(ref, opt);

  ASSERT_EQ(res_fast.steps(), res_ref.steps());
  const auto wf = res_fast.waveform(out_fast);
  const auto wr = res_ref.waveform(out_ref);
  double max_dv = 0.0;
  for (std::size_t k = 0; k < wf.size(); ++k)
    max_dv = std::max(max_dv, std::abs(wf[k] - wr[k]));
  EXPECT_LT(max_dv, 1e-9);
}

TEST(LinearFastPath, NonlinearCircuitUsesGenericPath) {
  // A diode clamp makes the circuit nonlinear: Newton must iterate, so the
  // per-step iteration count exceeds one somewhere in the run.
  ckt::Circuit c;
  const int n1 = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  const int out = c.node();
  c.add<ckt::Resistor>(n1, out, 100.0);
  c.add<ckt::Diode>(out, 0);
  c.add<ckt::Capacitor>(out, 0, 1e-12);

  auto opt = rlc_options();
  const auto res = ckt::run_transient(c, opt);
  EXPECT_GT(res.stats.total_newton_iters, res.stats.steps);
}

namespace {

/// Same unknown count as build_rlc (3 nodes + 2 branch currents) but a
/// different connection structure => different sparsity pattern.
int build_rc_ladder(ckt::Circuit& c) {
  const int n1 = c.node();
  const int n2 = c.node();
  const int out = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  c.add<ckt::Resistor>(n1, n2, 50.0);
  c.add<ckt::Resistor>(n2, out, 50.0);
  c.add<ckt::Capacitor>(out, 0, 10e-12);
  c.add<ckt::Inductor>(out, 0, 20e-9);
  return out;
}

double max_waveform_delta(const ckt::TransientResult& a, const ckt::TransientResult& b,
                          int id) {
  const auto wa = a.waveform(id);
  const auto wb = b.waveform(id);
  EXPECT_EQ(wa.size(), wb.size());
  double max_dv = 0.0;
  for (std::size_t k = 0; k < wa.size(); ++k)
    max_dv = std::max(max_dv, std::abs(wa[k] - wb[k]));
  return max_dv;
}

}  // namespace

TEST(WorkspaceInvalidation, DenseCacheDroppedOnOptionChange) {
  // Reusing a workspace across runs with different dt or gmin must refactor
  // rather than reuse a stale cached LU: each run's waveforms must equal a
  // fresh-workspace run of the same configuration exactly.
  ckt::Circuit shared_c, fresh_c;
  const int out_shared = build_rlc(shared_c);
  const int out_fresh = build_rlc(fresh_c);

  ckt::NewtonWorkspace ws;
  auto opt = rlc_options();
  ckt::run_transient(shared_c, opt, ws);  // primes the dt = 25 ps cache

  for (const auto& [dt, gmin] : {std::pair{50e-12, 1e-12}, std::pair{50e-12, 1e-9}}) {
    opt.dt = dt;
    opt.gmin = gmin;
    const auto res = ckt::run_transient(shared_c, opt, ws);
    ckt::NewtonWorkspace fresh_ws;
    const auto ref = ckt::run_transient(fresh_c, opt, fresh_ws);
    EXPECT_EQ(max_waveform_delta(res, ref, out_shared), 0.0)
        << "dt=" << dt << " gmin=" << gmin;
    (void)out_fresh;
  }
}

TEST(WorkspaceInvalidation, SparseSymbolicSurvivesNumericDrop) {
  // Between runs the numeric factors are dropped but the symbolic analysis
  // (pattern-hash-validated) is reused: a second identical run re-factors
  // without re-analyzing, and an option change still matches a fresh run.
  ckt::Circuit c;
  const int out = build_rlc(c);
  auto opt = rlc_options();
  opt.solver = ckt::SolverKind::kSparse;

  ckt::NewtonWorkspace ws;
  ckt::run_transient(c, opt, ws);
  const auto& st = ws.sp_tr.lu.stats();
  EXPECT_EQ(st.analyses, 1);
  const long refactors_first = st.refactors;
  EXPECT_GT(refactors_first, 0);

  ckt::run_transient(c, opt, ws);
  EXPECT_EQ(st.analyses, 1);  // same topology: symbolic reused...
  EXPECT_GT(st.symbolic_reuses, 0);
  EXPECT_GT(st.refactors, refactors_first);  // ...but the numbers were redone

  opt.gmin = 1e-9;
  const auto res = ckt::run_transient(c, opt, ws);
  ckt::Circuit fresh_c;
  build_rlc(fresh_c);
  ckt::NewtonWorkspace fresh_ws;
  const auto ref = ckt::run_transient(fresh_c, opt, fresh_ws);
  EXPECT_EQ(max_waveform_delta(res, ref, out), 0.0);
}

TEST(WorkspaceInvalidation, TopologyChangeSameSizeReanalyzes) {
  // Equal unknown counts keep the workspace buffers, but a different
  // stamped pattern must trigger a fresh symbolic analysis and produce the
  // same waveforms as an unshared workspace.
  ckt::Circuit a, b, b_fresh;
  build_rlc(a);
  const int out_b = build_rc_ladder(b);
  build_rc_ladder(b_fresh);
  ASSERT_EQ(a.finalize(), b.finalize());

  auto opt = rlc_options();
  opt.solver = ckt::SolverKind::kSparse;
  ckt::NewtonWorkspace ws;
  ckt::run_transient(a, opt, ws);
  EXPECT_EQ(ws.sp_tr.lu.stats().analyses, 1);

  const auto res = ckt::run_transient(b, opt, ws);
  EXPECT_EQ(ws.sp_tr.lu.stats().analyses, 2);

  ckt::NewtonWorkspace fresh_ws;
  const auto ref = ckt::run_transient(b_fresh, opt, fresh_ws);
  EXPECT_EQ(max_waveform_delta(res, ref, out_b), 0.0);
}

TEST(SparseSolver, MatchesDenseOnNonlinearCircuit) {
  // Different elimination orders round differently, but the converged
  // waveforms of the two backends must agree to solver tolerance.
  ckt::Circuit dense_c, sparse_c;
  for (ckt::Circuit* c : {&dense_c, &sparse_c}) {
    const int n1 = c->node();
    c->add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
    const int out = c->node();
    c->add<ckt::Resistor>(n1, out, 100.0);
    c->add<ckt::Diode>(out, 0);
    c->add<ckt::Capacitor>(out, 0, 1e-12);
  }

  auto opt = rlc_options();
  opt.solver = ckt::SolverKind::kDense;
  const auto res_dense = ckt::run_transient(dense_c, opt);
  opt.solver = ckt::SolverKind::kSparse;
  const auto res_sparse = ckt::run_transient(sparse_c, opt);

  ASSERT_EQ(res_dense.steps(), res_sparse.steps());
  EXPECT_LT(max_waveform_delta(res_dense, res_sparse, 2), 1e-9);
}

TEST(SparseSolver, AutoSelectionByProblemSize) {
  // kAuto on a 5-unknown circuit must not even build a sparse pattern (the
  // dense path is bit-identical to the pre-sparse engine); shrinking the
  // threshold flips the same circuit onto the sparse backend.
  ckt::Circuit c;
  build_rlc(c);
  auto opt = rlc_options();

  ckt::NewtonWorkspace ws;
  ckt::run_transient(c, opt, ws);
  EXPECT_FALSE(ws.sp_tr.pattern_ready);
  EXPECT_EQ(ws.sp_tr.lu.stats().refactors, 0);

  // Past the size gate but failing the density rule (a 5-unknown MNA
  // pattern is nowhere near 25% sparse): the pattern is built for the
  // decision, then the dense backend is kept.
  opt.sparse_min_unknowns = 1;
  ckt::run_transient(c, opt, ws);
  EXPECT_TRUE(ws.sp_tr.pattern_ready);
  EXPECT_EQ(ws.sp_tr.use_sparse, 0);
  EXPECT_EQ(ws.sp_tr.lu.stats().refactors, 0);

  // Relaxing the density bound flips the same circuit onto sparse.
  opt.sparse_max_density = 1.0;
  ckt::run_transient(c, opt, ws);
  EXPECT_EQ(ws.sp_tr.use_sparse, 1);
  EXPECT_GT(ws.sp_tr.lu.stats().refactors, 0);
}

TEST(LinearFastPath, DcOperatingPointOfLinearDivider) {
  // The cached-LU path is also taken during DC (dt = 0 key); the divider
  // solution must be exact.
  ckt::Circuit c;
  const int n1 = c.node();
  const int n2 = c.node();
  c.add<ckt::VSource>(n1, 0, 2.0);
  c.add<ckt::Resistor>(n1, n2, 1e3);
  c.add<ckt::Resistor>(n2, 0, 1e3);

  ckt::TransientOptions opt;
  c.finalize();
  std::vector<double> x(3, 0.0);  // 2 nodes + 1 branch current
  ckt::dc_operating_point(c, x, opt);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-6);
}
