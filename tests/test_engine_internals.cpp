// Engine-internal behavior: TransientResult bounds checking, SolveStats
// accounting, and the cached-LU linear fast path (one Newton iteration per
// step, waveforms identical to the generic re-factorizing path).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"

namespace ckt = emc::ckt;

namespace {

/// Step-driven RLC ladder: Vsrc -- R -- L -- node(out) -- C || R_load.
/// Purely linear, with enough state (L, C histories) to exercise the
/// companion-model rhs refresh under a frozen Jacobian.
int build_rlc(ckt::Circuit& c) {
  const int n1 = c.node("in");
  const int n2 = c.node("mid");
  const int out = c.node("out");
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  c.add<ckt::Resistor>(n1, n2, 25.0);
  c.add<ckt::Inductor>(n2, out, 5e-9);
  c.add<ckt::Capacitor>(out, 0, 10e-12);
  c.add<ckt::Resistor>(out, 0, 1e3);
  return out;
}

ckt::TransientOptions rlc_options() {
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 10e-9;
  return opt;
}

}  // namespace

TEST(TransientResult, WaveformOutOfRangeIdThrows) {
  ckt::Circuit c;
  const int out = build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());

  EXPECT_NO_THROW(res.waveform(0));    // ground: all-zero waveform
  EXPECT_NO_THROW(res.waveform(out));  // valid node
  // 3 nodes + 2 branch currents (VSource, Inductor) = 5 unknowns; id 6 is
  // past the end.
  EXPECT_THROW(res.waveform(6), std::out_of_range);
  EXPECT_THROW(res.waveform(1000), std::out_of_range);
}

TEST(TransientResult, GroundWaveformIsZero) {
  ckt::Circuit c;
  build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());
  const auto gnd = res.waveform(0);
  for (std::size_t k = 0; k < gnd.size(); ++k) EXPECT_EQ(gnd[k], 0.0);
}

TEST(SolveStats, PopulatedByTransientRun) {
  ckt::Circuit c;
  build_rlc(c);
  const auto opt = rlc_options();
  const auto res = ckt::run_transient(c, opt);

  const long expected_steps =
      std::llround((opt.t_stop - opt.t_start) / opt.dt);
  EXPECT_EQ(res.stats.steps, expected_steps);
  EXPECT_GE(res.stats.total_newton_iters, res.stats.steps);
  EXPECT_EQ(res.stats.weak_steps, 0);
  // Result holds the initial state plus one record per step.
  EXPECT_EQ(res.steps(), static_cast<std::size_t>(expected_steps) + 1);
}

TEST(LinearFastPath, OneNewtonIterationPerStep) {
  // Regression: a purely linear circuit must ride the cached-LU fast path,
  // which solves each step with exactly one (exact) Newton iteration.
  ckt::Circuit c;
  build_rlc(c);
  const auto res = ckt::run_transient(c, rlc_options());
  EXPECT_EQ(res.stats.total_newton_iters, res.stats.steps);
  EXPECT_EQ(res.stats.weak_steps, 0);
}

TEST(LinearFastPath, MatchesGenericNewtonPath) {
  ckt::Circuit fast, ref;
  const int out_fast = build_rlc(fast);
  const int out_ref = build_rlc(ref);

  auto opt = rlc_options();
  opt.cache_lu = true;
  const auto res_fast = ckt::run_transient(fast, opt);
  opt.cache_lu = false;
  const auto res_ref = ckt::run_transient(ref, opt);

  ASSERT_EQ(res_fast.steps(), res_ref.steps());
  const auto wf = res_fast.waveform(out_fast);
  const auto wr = res_ref.waveform(out_ref);
  double max_dv = 0.0;
  for (std::size_t k = 0; k < wf.size(); ++k)
    max_dv = std::max(max_dv, std::abs(wf[k] - wr[k]));
  EXPECT_LT(max_dv, 1e-9);
}

TEST(LinearFastPath, NonlinearCircuitUsesGenericPath) {
  // A diode clamp makes the circuit nonlinear: Newton must iterate, so the
  // per-step iteration count exceeds one somewhere in the run.
  ckt::Circuit c;
  const int n1 = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  const int out = c.node();
  c.add<ckt::Resistor>(n1, out, 100.0);
  c.add<ckt::Diode>(out, 0);
  c.add<ckt::Capacitor>(out, 0, 1e-12);

  auto opt = rlc_options();
  const auto res = ckt::run_transient(c, opt);
  EXPECT_GT(res.stats.total_newton_iters, res.stats.steps);
}

TEST(LinearFastPath, DcOperatingPointOfLinearDivider) {
  // The cached-LU path is also taken during DC (dt = 0 key); the divider
  // solution must be exact.
  ckt::Circuit c;
  const int n1 = c.node();
  const int n2 = c.node();
  c.add<ckt::VSource>(n1, 0, 2.0);
  c.add<ckt::Resistor>(n1, n2, 1e3);
  c.add<ckt::Resistor>(n2, 0, 1e3);

  ckt::TransientOptions opt;
  c.finalize();
  std::vector<double> x(3, 0.0);  // 2 nodes + 1 branch current
  ckt::dc_operating_point(c, x, opt);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-6);
}
