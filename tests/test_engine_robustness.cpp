// Robustness paths of the transient engine: DC convergence fallbacks,
// degenerate circuits, stats accounting, and device interactions not
// covered by the physics suites.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "signal/sources.hpp"

using namespace emc::ckt;

TEST(EngineRobustness, FloatingNodeRegularizedByGmin) {
  // A node connected only through a capacitor has no DC path; the gmin
  // leak must keep the operating point solvable.
  Circuit ckt;
  const int vin = ckt.node();
  const int island = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), 1.0);
  ckt.add<Capacitor>(vin, island, 1e-12);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_TRUE(std::isfinite(res.waveform(island)[0]));
}

TEST(EngineRobustness, StiffDiodeDcConverges) {
  // A hard-driven diode stack is the classic gmin/source-stepping test.
  Circuit ckt;
  const int vin = ckt.node();
  int prev = vin;
  ckt.add<VSource>(vin, ckt.ground(), 12.0);
  for (int k = 0; k < 4; ++k) {
    const int nxt = ckt.node();
    ckt.add<Diode>(prev, nxt);
    prev = nxt;
  }
  ckt.add<Resistor>(prev, ckt.ground(), 10.0);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  // ~0.75 V per diode, the rest across the resistor.
  const double v_load = res.waveform(prev)[0];
  EXPECT_GT(v_load, 7.0);
  EXPECT_LT(v_load, 11.0);
}

TEST(EngineRobustness, StatsCountStepsAndIterations) {
  Circuit ckt;
  const int a = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 1.0);
  ckt.add<Resistor>(a, ckt.ground(), 50.0);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-8;
  auto res = run_transient(ckt, opt);
  EXPECT_EQ(res.stats.steps, 100);
  EXPECT_GE(res.stats.total_newton_iters, res.stats.steps);
  EXPECT_EQ(res.stats.weak_steps, 0);  // a linear circuit always converges
}

TEST(EngineRobustness, ResultIndexValidation) {
  Circuit ckt;
  const int a = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 1.0);
  ckt.add<Resistor>(a, ckt.ground(), 50.0);
  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NO_THROW(res.waveform(0));  // ground: all zeros
  EXPECT_DOUBLE_EQ(res.waveform(0)[3], 0.0);
  EXPECT_THROW(res.waveform(999), std::out_of_range);
}

TEST(EngineRobustness, NamedNodesAreStable) {
  Circuit ckt;
  const int a = ckt.node("pad");
  const int b = ckt.node("pad");
  EXPECT_EQ(a, b);
  const int c = ckt.node("other");
  EXPECT_NE(a, c);
  EXPECT_EQ(ckt.ground(), 0);
}

TEST(EngineRobustness, InductorCurrentContinuousAcrossDc) {
  // DC current through an inductor must carry into the transient without
  // a jump (the extra unknown is seeded by the operating point).
  Circuit ckt;
  const int vin = ckt.node();
  const int mid = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), 2.0);
  ckt.add<Resistor>(vin, mid, 100.0);
  auto& ind = ckt.add<Inductor>(mid, ckt.ground(), 1e-6);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-8;
  auto res = run_transient(ckt, opt);
  const auto i = res.waveform(ind.current_id());
  for (std::size_t k = 0; k < i.size(); ++k) EXPECT_NEAR(i[k], 0.02, 1e-4);
}

TEST(EngineRobustness, SourceFunctionSampledAtStepTimes) {
  // The engine must evaluate time-dependent sources at the *new* time of
  // each step (off-by-one here shifts every waveform by dt).
  Circuit ckt;
  const int a = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), [](double t) { return t * 1e9; });
  ckt.add<Resistor>(a, ckt.ground(), 50.0);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(a);
  EXPECT_NEAR(v[5], 0.5, 1e-9);   // t = 0.5 ns -> 0.5 V
  EXPECT_NEAR(v[10], 1.0, 1e-9);  // t = 1.0 ns -> 1.0 V
}

TEST(EngineRobustness, TableCurrentScaleIsLive) {
  // The IBIS device relies on updating a TableCurrent's scale between
  // steps; verify the scale factor applies at stamp time.
  std::vector<std::pair<double, double>> iv{{-1.0, -1e-3}, {1.0, 1e-3}};
  Circuit ckt;
  const int a = ckt.node();
  auto& vs = ckt.add<VSource>(a, ckt.ground(), 1.0);
  auto& tc = ckt.add<TableCurrent>(a, ckt.ground(), iv);
  tc.set_scale(3.0);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  // Source supplies 3x the table current: branch current = -3 mA.
  EXPECT_NEAR(res.waveform(vs.current_id())[5], -3e-3, 1e-6);
}

TEST(EngineRobustness, ZeroVoltSourceActsAsAmmeter) {
  // The standard current-probe idiom: a 0 V source in series.
  Circuit ckt;
  const int vin = ckt.node();
  const int mid = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), 5.0);
  auto& probe = ckt.add<VSource>(vin, mid, 0.0);
  ckt.add<Resistor>(mid, ckt.ground(), 1000.0);

  TransientOptions opt;
  opt.dt = 1e-10;
  opt.t_stop = 1e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NEAR(res.waveform(mid)[2], 5.0, 1e-6);
  EXPECT_NEAR(res.waveform(probe.current_id())[2], 5e-3, 1e-8);
}
