#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/spice_export.hpp"
#include "ident/arx.hpp"
#include "ident/rbf.hpp"

using namespace emc;

namespace {

/// A tiny synthetic driver model (no estimation needed for export tests).
core::PwRbfDriverModel tiny_driver_model() {
  core::PwRbfDriverModel m;
  m.orders = ident::NarxOrders{2, 2};
  m.ts = 25e-12;
  m.vdd = 3.3;
  m.name = "tiny";

  ident::Scaler sc({0.0, 0.0, 0.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0, 1.0});
  linalg::Matrix centers(2, 5);
  centers(0, 0) = 1.0;
  centers(1, 0) = -1.0;
  m.f_high = ident::RbfModel(sc, centers, {0.5, -0.5}, 0.1, 1.5);
  m.f_low = ident::RbfModel(sc, centers, {-0.25, 0.25}, -0.1, 1.5);
  m.up.wh = {0.0, 0.5, 1.0};
  m.up.wl = {1.0, 0.5, 0.0};
  m.down.wh = {1.0, 0.5, 0.0};
  m.down.wl = {0.0, 0.5, 1.0};
  return m;
}

core::ParametricReceiverModel tiny_receiver_model() {
  core::ParametricReceiverModel m;
  m.ts = 25e-12;
  m.vdd = 1.8;
  m.nl_taps = 2;
  m.lin.b = {0.4, -0.4};
  m.lin.a = {0.1};
  ident::Scaler sc({0.0, 0.0}, {1.0, 1.0});
  linalg::Matrix centers(1, 2);
  centers(0, 0) = 2.0;
  m.up = ident::RbfModel(sc, centers, {0.01}, 0.0, 1.0);
  m.dn = ident::RbfModel(sc, centers, {-0.01}, 0.0, 1.0);
  return m;
}

int count_occurrences(const std::string& s, const std::string& needle) {
  int n = 0;
  std::size_t pos = 0;
  while ((pos = s.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

}  // namespace

TEST(SpiceExportDriver, HasSubcktStructure) {
  const auto text = core::export_driver_spice(tiny_driver_model(), "pwrbf_md1");
  EXPECT_NE(text.find(".subckt pwrbf_md1 out wh wl"), std::string::npos);
  EXPECT_NE(text.find(".ends pwrbf_md1"), std::string::npos);
}

TEST(SpiceExportDriver, EmitsDelayTapPerVoltageOrder) {
  const auto m = tiny_driver_model();
  const auto text = core::export_driver_spice(m, "d");
  // nv = 2 voltage taps realized as T elements, plus ni = 2 per submodel.
  EXPECT_EQ(count_occurrences(text, "TD=2.5e-11"), m.orders.nv + 2 * m.orders.ni);
}

TEST(SpiceExportDriver, EmitsGaussianTermsPerBasis) {
  const auto m = tiny_driver_model();
  const auto text = core::export_driver_spice(m, "d");
  // Two submodels x two basis functions each.
  EXPECT_EQ(count_occurrences(text, "exp(-("), 4);
}

TEST(SpiceExportDriver, DocumentsWeightSequences) {
  const auto text = core::export_driver_spice(tiny_driver_model(), "d");
  EXPECT_NE(text.find("up-transition weight samples"), std::string::npos);
  EXPECT_NE(text.find("down-transition weight samples"), std::string::npos);
}

TEST(SpiceExportReceiver, HasSubcktStructure) {
  const auto text = core::export_receiver_spice(tiny_receiver_model(), "rx_md4");
  EXPECT_NE(text.find(".subckt rx_md4 in"), std::string::npos);
  EXPECT_NE(text.find(".ends rx_md4"), std::string::npos);
  // ARX coefficients present.
  EXPECT_NE(text.find("0.4*v(in)"), std::string::npos);
  // Clamp B-sources present.
  EXPECT_NE(text.find("Bup"), std::string::npos);
  EXPECT_NE(text.find("Bdn"), std::string::npos);
}

TEST(SpiceExportCr, EmitsPwlTable) {
  core::CrReceiverModel cr;
  cr.c = 6e-12;
  cr.iv = {{-1.0, -0.1}, {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.1}};
  const auto text = core::export_cr_spice(cr, "cr_md4");
  EXPECT_NE(text.find(".subckt cr_md4 in"), std::string::npos);
  EXPECT_NE(text.find("Cin in 0 6e-12"), std::string::npos);
  EXPECT_NE(text.find("pwl(v(in)"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, ", "), 8);  // 4 table points = 8 values
}

TEST(SpiceExportFile, WritesToDisk) {
  const auto path =
      (std::filesystem::temp_directory_path() / "emc_spice_test.sp").string();
  core::write_spice_file(path, "* test netlist\n.end\n");
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_NE(ss.str().find(".end"), std::string::npos);
  std::remove(path.c_str());
}
