#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decomp.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace la = emc::linalg;

namespace {

/// Deterministic pseudo-random doubles for property tests.
double prand(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0) * 2.0 - 1.0;
}

la::Matrix random_matrix(std::size_t n, std::uint64_t seed, double diag_boost = 0.0) {
  la::Matrix a(n, n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = prand(s);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += diag_boost;
  return a;
}

}  // namespace

TEST(Matrix, InitializerListAndAccess) {
  la::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((la::Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  la::Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const la::Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, ProductAgainstHandComputed) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const la::Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  la::Matrix a(2, 3);
  la::Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  std::vector<double> v(2, 1.0);
  EXPECT_THROW(a.apply(v), std::invalid_argument);
}

TEST(Matrix, IdentityApply) {
  const la::Matrix i3 = la::Matrix::identity(3);
  std::vector<double> v{1.0, -2.0, 3.0};
  const auto y = i3.apply(v);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(y[k], v[k]);
}

TEST(VectorOps, NormsAndDot) {
  std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(la::norm_inf(a), 4.0);
  std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(la::dot(a, b), 11.0);
}

TEST(Lu, SolvesKnownSystem) {
  la::Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  std::vector<double> b{5.0, 10.0};
  const auto x = la::LuFactor(a).solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  la::Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(la::LuFactor{a}, std::runtime_error);
}

TEST(Lu, DefaultConstructedIsInvalid) {
  la::LuFactor lu;
  EXPECT_FALSE(lu.valid());
  std::vector<double> b;
  EXPECT_THROW(lu.solve_in_place(b), std::runtime_error);
}

TEST(Lu, RefactorReusesStorageAcrossSystems) {
  la::LuFactor lu;
  lu.factor(la::Matrix{{2.0, 1.0}, {1.0, 3.0}});
  EXPECT_TRUE(lu.valid());
  std::vector<double> b{5.0, 10.0};
  lu.solve_in_place(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);

  // Refactor the same object with a different same-size system.
  const la::Matrix a2{{4.0, 0.0}, {0.0, 2.0}};
  lu.factor(a2);
  std::vector<double> b2{8.0, 6.0};
  lu.solve_in_place(b2);
  EXPECT_NEAR(b2[0], 2.0, 1e-12);
  EXPECT_NEAR(b2[1], 3.0, 1e-12);

  // And with a different size.
  lu.factor(la::Matrix{{1.0}});
  EXPECT_EQ(lu.size(), 1u);
  std::vector<double> b3{7.0};
  lu.solve_in_place(b3);
  EXPECT_NEAR(b3[0], 7.0, 1e-12);
}

TEST(Lu, FailedRefactorInvalidates) {
  la::LuFactor lu;
  lu.factor(la::Matrix{{2.0, 1.0}, {1.0, 3.0}});
  ASSERT_TRUE(lu.valid());
  EXPECT_THROW(lu.factor(la::Matrix{{1.0, 2.0}, {2.0, 4.0}}), std::runtime_error);
  EXPECT_FALSE(lu.valid());
  std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(lu.solve_in_place(b), std::runtime_error);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  la::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<double> b{2.0, 3.0};
  const auto x = la::LuFactor(a).solve(b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

class LuRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, RandomSystemResidualSmall) {
  const int n = GetParam();
  const la::Matrix a = random_matrix(static_cast<std::size_t>(n), 1234 + n, 2.0 * n);
  std::uint64_t s = 99 + static_cast<std::uint64_t>(n);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = prand(s);
  const auto b = a.apply(x_true);
  const auto x = la::LuFactor(a).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

TEST(Cholesky, SolvesSpdSystem) {
  la::Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  std::vector<double> b{8.0, 7.0};
  const auto x = la::Cholesky(a).solve(b);
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-12);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  la::Matrix a{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_THROW(la::Cholesky{a}, std::runtime_error);
}

TEST(Cholesky, FactorReproducesMatrix) {
  la::Matrix a{{4.0, 2.0, 0.5}, {2.0, 5.0, 1.0}, {0.5, 1.0, 3.0}};
  const la::Cholesky ch(a);
  const la::Matrix l = ch.factor();
  const la::Matrix llt = l * l.transposed();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(llt(i, j), a(i, j), 1e-12);
}

TEST(LeastSquares, ExactFitWhenSquare) {
  la::Matrix a{{1.0, 1.0}, {1.0, 2.0}};
  std::vector<double> b{3.0, 5.0};
  const auto x = la::solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedLineFit) {
  // Fit y = 2 + 3t through noiseless samples: must recover exactly.
  const std::size_t m = 20;
  la::Matrix a(m, 2);
  std::vector<double> b(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double t = static_cast<double>(k) * 0.1;
    a(k, 0) = 1.0;
    a(k, 1) = t;
    b[k] = 2.0 + 3.0 * t;
  }
  const auto x = la::solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(LeastSquares, MatchesNormalEquations) {
  std::uint64_t s = 7;
  const std::size_t m = 30, n = 4;
  la::Matrix a(m, n);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = prand(s);
    b[i] = prand(s);
  }
  const auto x_qr = la::solve_least_squares(a, b);
  const auto x_ridge = la::solve_ridge(a, b, 0.0);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(x_qr[j], x_ridge[j], 1e-8);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  la::Matrix a(2, 3);
  std::vector<double> b(2);
  EXPECT_THROW(la::solve_least_squares(a, b), std::invalid_argument);
}

TEST(Ridge, ShrinksSolution) {
  la::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  std::vector<double> b{1.0, 1.0};
  const auto x0 = la::solve_ridge(a, b, 0.0);
  const auto x1 = la::solve_ridge(a, b, 1.0);
  EXPECT_NEAR(x0[0], 1.0, 1e-12);
  EXPECT_NEAR(x1[0], 0.5, 1e-12);
}

TEST(Eigen, DiagonalMatrix) {
  la::Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  const auto e = la::eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  la::Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const auto e = la::eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ReconstructsAVEqualsVLambda) {
  const auto n = static_cast<std::size_t>(GetParam());
  la::Matrix a = random_matrix(n, 42 + n, 0.0);
  // Symmetrize.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(j, i) = a(i, j);
  const auto e = la::eigen_symmetric(a);

  // Check A v_k = lambda_k v_k for each eigenpair.
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = e.vectors(i, k);
    const auto av = a.apply(v);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(av[i], e.values[k] * v[i], 1e-8);
  }
  // Eigenvalues ascending.
  for (std::size_t k = 1; k < n; ++k) EXPECT_LE(e.values[k - 1], e.values[k] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty, ::testing::Values(2, 3, 4, 6, 9, 12));

TEST(Eigen, OrthonormalEigenvectors) {
  la::Matrix a{{4.0, 1.0, 0.2}, {1.0, 3.0, 0.5}, {0.2, 0.5, 2.0}};
  const auto e = la::eigen_symmetric(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double d = 0.0;
      for (std::size_t k = 0; k < 3; ++k) d += e.vectors(k, i) * e.vectors(k, j);
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}
