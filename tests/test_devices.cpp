#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "devices/reference_driver.hpp"
#include "devices/reference_receiver.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc;
using namespace emc::ckt;
using namespace emc::dev;

namespace {

/// Run a reference driver into a resistive load; return the pad waveform.
sig::Waveform drive_into_load(const DriverTech& tech, const std::string& bits,
                              double bit_time, double r_load, double t_stop) {
  Circuit ckt;
  auto pattern = sig::bit_stream(bits, bit_time, 0.2e-9, 0.0, tech.vdd);
  auto inst = build_reference_driver(ckt, tech, [pattern](double t) { return pattern(t); });
  ckt.add<Resistor>(inst.pad, ckt.ground(), r_load);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = t_stop;
  auto res = run_transient(ckt, opt);
  return res.waveform(inst.pad);
}

}  // namespace

TEST(ReferenceDriver, StaticLevelsReachRails) {
  const auto tech = DriverTech::md1_lvc244();
  // Steady low input -> pad low; steady high -> pad near VDD (light load).
  const auto v_low = drive_into_load(tech, "00", 5e-9, 1e6, 8e-9);
  EXPECT_NEAR(v_low[v_low.size() - 1], 0.0, 0.05);
  const auto v_high = drive_into_load(tech, "11", 5e-9, 1e6, 8e-9);
  EXPECT_NEAR(v_high[v_high.size() - 1], tech.vdd, 0.05);
}

TEST(ReferenceDriver, DrivesHeavyLoadWithDrop) {
  const auto tech = DriverTech::md1_lvc244();
  // Into 50 ohm the High level sags below VDD: finite output resistance.
  const auto v = drive_into_load(tech, "11", 5e-9, 50.0, 10e-9);
  const double vf = v[v.size() - 1];
  EXPECT_GT(vf, 0.5 * tech.vdd);
  EXPECT_LT(vf, 0.97 * tech.vdd);
}

TEST(ReferenceDriver, TransitionHasFiniteSlew) {
  const auto tech = DriverTech::md1_lvc244();
  const auto v = drive_into_load(tech, "01", 5e-9, 1e3, 12e-9);
  // 20%-80% rise time of the output edge must be resolvable (>= 100 ps)
  // and fast (<= 3 ns) for a buffer of this class.
  const auto t20 = sig::threshold_crossings(v, 0.2 * tech.vdd);
  const auto t80 = sig::threshold_crossings(v, 0.8 * tech.vdd);
  ASSERT_FALSE(t20.empty());
  ASSERT_FALSE(t80.empty());
  const double rise = t80.front() - t20.front();
  EXPECT_GT(rise, 0.1e-9);
  EXPECT_LT(rise, 3e-9);
}

TEST(ReferenceDriver, AllTechPresetsSettleBothStates) {
  for (const auto& tech :
       {DriverTech::md1_lvc244(), DriverTech::md2_ibm18(), DriverTech::md3_ibm25()}) {
    const auto v0 = drive_into_load(tech, "00", 4e-9, 200.0, 6e-9);
    const auto v1 = drive_into_load(tech, "11", 4e-9, 200.0, 6e-9);
    EXPECT_NEAR(v0[v0.size() - 1], 0.0, 0.1) << "vdd = " << tech.vdd;
    EXPECT_GT(v1[v1.size() - 1], 0.8 * tech.vdd) << "vdd = " << tech.vdd;
  }
}

TEST(ReferenceDriver, CornersOrderDriveStrength) {
  const auto typ = DriverTech::md1_lvc244();
  const auto slow = typ.corner_slow();
  const auto fast = typ.corner_fast();
  // Into the same heavy load, the fast corner holds the highest High level
  // (strongest pull-up), the slow corner the lowest.
  const double v_typ = drive_into_load(typ, "11", 4e-9, 50.0, 8e-9)[319];
  const double v_slow = drive_into_load(slow, "11", 4e-9, 50.0, 8e-9)[319];
  const double v_fast = drive_into_load(fast, "11", 4e-9, 50.0, 8e-9)[319];
  EXPECT_LT(v_slow, v_typ);
  EXPECT_LT(v_typ, v_fast);
}

TEST(ReferenceDriver, StaticFixtureMatchesSteadyState) {
  // The gate-forced static fixture must sit at the same DC point as the
  // full driver after it settles.
  const auto tech = DriverTech::md2_ibm18();
  const auto v_full = drive_into_load(tech, "11", 4e-9, 100.0, 8e-9);

  Circuit ckt;
  auto inst = build_reference_driver_static(ckt, tech, /*gate_high=*/true);
  ckt.add<Resistor>(inst.pad, ckt.ground(), 100.0);
  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 4e-9;
  auto res = run_transient(ckt, opt);
  const auto v_static = res.waveform(inst.pad);

  EXPECT_NEAR(v_static[v_static.size() - 1], v_full[v_full.size() - 1], 0.02);
}

TEST(ReferenceDriver, PulsePropagatesThroughPackage) {
  // A short pulse must come out with package-induced ringing but the
  // correct polarity and width at mid-swing.
  const auto tech = DriverTech::md3_ibm25();
  const auto v = drive_into_load(tech, "010", 2e-9, 200.0, 8e-9);
  const auto cross = sig::threshold_crossings(v, tech.vdd / 2, 0.5e-9);
  ASSERT_GE(cross.size(), 2u);
  const double width = cross[1] - cross[0];
  EXPECT_NEAR(width, 2e-9, 0.5e-9);
}

TEST(ReferenceReceiver, LinearCapacitiveInsideRails) {
  // Inside the rails the pin current should integrate like the pad cap:
  // a clean ramp of slope s draws i ~ C_total * s.
  const auto tech = ReceiverTech::md4_ibm18();
  Circuit ckt;
  auto inst = build_reference_receiver(ckt, tech);
  const int src = ckt.node();
  sig::Pwl ramp({{0.0, 0.2}, {1e-9, 0.2}, {3e-9, 1.2}, {10e-9, 1.2}});
  auto& vs = ckt.add<VSource>(src, ckt.ground(), [ramp](double t) { return ramp(t); });
  ckt.add<Resistor>(src, inst.pin, 5.0);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 10e-9;
  auto res = run_transient(ckt, opt);
  const auto i = res.waveform(vs.current_id());
  // Mid-ramp the delivered current (into the pin) is C * dv/dt.
  const double slope = 1.0 / 2e-9;
  const double c_total = tech.c_pad + tech.c_esd;
  EXPECT_NEAR(-i.value_at(2e-9), c_total * slope, 0.2 * c_total * slope);
  // After the ramp: essentially no static current inside the rails.
  EXPECT_NEAR(i.value_at(9e-9), 0.0, 1e-5);
}

TEST(ReferenceReceiver, ClampsEngageOutsideRails) {
  const auto tech = ReceiverTech::md4_ibm18();

  auto static_current = [&](double v_force) {
    Circuit ckt;
    auto inst = build_reference_receiver(ckt, tech);
    const int src = ckt.node();
    auto& vs = ckt.add<VSource>(src, ckt.ground(), v_force);
    ckt.add<Resistor>(src, inst.pin, 1.0);
    TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 3e-9;
    auto res = run_transient(ckt, opt);
    return -res.waveform(vs.current_id())[res.steps() - 1];
  };

  // Inside the rails: microamp leakage. Outside: clamp conduction.
  EXPECT_LT(std::abs(static_current(0.9)), 1e-5);
  EXPECT_GT(static_current(tech.vdd + 1.0), 1e-3);   // up clamp conducts in
  EXPECT_LT(static_current(-1.0), -1e-3);            // down clamp pulls out
}

TEST(ReferenceReceiver, ProtectionCurrentGrowsWithOvervoltage) {
  const auto tech = ReceiverTech::md4_ibm18();
  auto static_current = [&](double v_force) {
    Circuit ckt;
    auto inst = build_reference_receiver(ckt, tech);
    const int src = ckt.node();
    auto& vs = ckt.add<VSource>(src, ckt.ground(), v_force);
    ckt.add<Resistor>(src, inst.pin, 1.0);
    TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 3e-9;
    auto res = run_transient(ckt, opt);
    return -res.waveform(vs.current_id())[res.steps() - 1];
  };
  const double i1 = static_current(tech.vdd + 0.8);
  const double i2 = static_current(tech.vdd + 1.2);
  EXPECT_GT(i2, i1 * 1.5);
}
