// Tests of obs::Profile (span aggregation: flat table, call tree, self
// time, collapsed-stack export, truncation flag) and obs::ResourceSampler
// (on-demand sampling, background ring, JSON export).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace {

using namespace emc;
using obs::Json;
using obs::Profile;
using obs::TraceEvent;

// Hand-built event stream in Tracer::events() order — (tid, start,
// longest-first), parents before children. Two threads:
//
//   tid 0: a [0, 10ms)                    tid 1: d [0, 4ms)
//            b [0.1ms, +3ms)                       c [0.1ms, +1ms)
//              c [0.15ms, +1ms)
//            b [5ms, +2ms)
//          a [20ms, +5ms)
std::vector<TraceEvent> nested_events() {
  return {
      {"a", 0, 0, 0, 10'000'000},
      {"b", 0, 1, 100'000, 3'000'000},
      {"c", 0, 2, 150'000, 1'000'000},
      {"b", 0, 1, 5'000'000, 2'000'000},
      {"a", 0, 0, 20'000'000, 5'000'000},
      {"d", 1, 0, 0, 4'000'000},
      {"c", 1, 1, 100'000, 1'000'000},
  };
}

TEST(ObsProfile, FlatTableAggregatesByName) {
  const auto events = nested_events();
  const Profile p = Profile::build(events, 0, 2);

  EXPECT_FALSE(p.truncated());
  EXPECT_EQ(p.dropped_events(), 0u);
  EXPECT_EQ(p.threads(), 2u);
  EXPECT_EQ(p.events(), events.size());

  ASSERT_EQ(p.spans().size(), 4u);
  const auto& a = p.spans().at("a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.total_ns, 15'000'000);
  EXPECT_EQ(a.self_ns, 10'000'000);  // minus the two b children
  EXPECT_EQ(a.min_ns, 5'000'000);
  EXPECT_EQ(a.max_ns, 10'000'000);

  const auto& b = p.spans().at("b");
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.total_ns, 5'000'000);
  EXPECT_EQ(b.self_ns, 4'000'000);  // minus the nested c

  // c is a leaf in both trees: self == total, aggregated across threads.
  const auto& c = p.spans().at("c");
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.total_ns, 2'000'000);
  EXPECT_EQ(c.self_ns, 2'000'000);
  EXPECT_EQ(c.min_ns, 1'000'000);
  EXPECT_EQ(c.max_ns, 1'000'000);

  const auto& d = p.spans().at("d");
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.self_ns, 3'000'000);

  EXPECT_EQ(p.self_ns("a"), 10'000'000);
  EXPECT_EQ(p.self_ns("never_traced"), 0);

  // Top-level durations sum across threads into the synthetic root.
  EXPECT_EQ(p.total_ns(), 19'000'000);
}

TEST(ObsProfile, TreeAggregatesByPathWithNameSortedChildren) {
  const auto events = nested_events();
  const Profile p = Profile::build(events, 0, 2);

  const auto& root = p.root();
  EXPECT_EQ(root.name, "");
  EXPECT_EQ(root.self_ns, 0);  // synthetic root owns no time itself
  ASSERT_EQ(root.children.size(), 2u);

  const auto& a = root.children[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.total_ns, 15'000'000);
  EXPECT_EQ(a.self_ns, 10'000'000);
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].name, "b");
  ASSERT_EQ(a.children[0].children.size(), 1u);

  // The same name lands on different paths: c under a;b and c under d are
  // distinct tree nodes even though the flat table folds them together.
  const auto& c_under_b = a.children[0].children[0];
  EXPECT_EQ(c_under_b.name, "c");
  EXPECT_EQ(c_under_b.count, 1u);
  EXPECT_EQ(c_under_b.total_ns, 1'000'000);

  const auto& d = root.children[1];
  EXPECT_EQ(d.name, "d");
  ASSERT_EQ(d.children.size(), 1u);
  EXPECT_EQ(d.children[0].name, "c");
  EXPECT_EQ(d.children[0].count, 1u);

  // Every node: self + sum(child totals) == total.
  EXPECT_EQ(a.self_ns + a.children[0].total_ns, a.total_ns);
  EXPECT_EQ(d.self_ns + d.children[0].total_ns, d.total_ns);
}

TEST(ObsProfile, CollapsedStacksMatchExactly) {
  const Profile p = Profile::build(nested_events(), 0, 2);
  EXPECT_EQ(p.collapsed_stacks(),
            "a 10000\n"
            "a;b 4000\n"
            "a;b;c 1000\n"
            "d 3000\n"
            "d;c 1000\n");
  // The free function reads the serialized section the same way.
  EXPECT_EQ(obs::collapsed_stacks_from_profile_json(p.to_json()),
            p.collapsed_stacks());
}

TEST(ObsProfile, JsonSectionIsSelfConsistent) {
  const Profile p = Profile::build(nested_events(), 0, 2);
  const Json j = Json::parse(p.to_json().dump());  // round-trips the parser

  EXPECT_FALSE(j.at("truncated").as_bool());
  EXPECT_EQ(j.at("threads").as_integer(), 2);
  EXPECT_EQ(j.at("events").as_integer(), 7);
  EXPECT_EQ(j.at("total_ns").as_integer(), 19'000'000);

  for (const auto& [name, row] : j.at("spans").fields()) {
    (void)name;
    const long count = row.at("count").as_integer();
    const double mean = row.at("mean_ns").as_double();
    EXPECT_LE(row.at("min_ns").as_double(), mean);
    EXPECT_LE(mean, row.at("max_ns").as_double());
    // Histogram buckets account for every occurrence.
    long in_buckets = 0;
    for (const Json& b : row.at("pow2_buckets").items())
      in_buckets += b.as_integer();
    EXPECT_EQ(in_buckets, count);
  }

  // Tree nodes carry the same invariant after serialization.
  const Json& a = j.at("tree")[0];
  EXPECT_EQ(a.at("name").as_string(), "a");
  EXPECT_EQ(a.at("self_ns").as_integer() +
                a.at("children")[0].at("total_ns").as_integer(),
            a.at("total_ns").as_integer());
}

TEST(ObsProfile, DroppedEventsFlagTruncation) {
  const Profile clean = Profile::build(nested_events(), 0, 2);
  EXPECT_FALSE(clean.truncated());

  const Profile truncated = Profile::build(nested_events(), 3, 2);
  EXPECT_TRUE(truncated.truncated());
  EXPECT_EQ(truncated.dropped_events(), 3u);

  // An orphaned event (depth beyond any retained parent) still lands in
  // the profile, clamped to the deepest retained ancestor.
  const std::vector<TraceEvent> orphaned = {
      {"root", 0, 0, 0, 1'000'000},
      {"deep", 0, 5, 100, 1'000},  // parents at depths 1..4 were dropped
  };
  const Profile best_effort = Profile::build(orphaned, 4, 1);
  EXPECT_TRUE(best_effort.truncated());
  ASSERT_EQ(best_effort.root().children.size(), 1u);
  ASSERT_EQ(best_effort.root().children[0].children.size(), 1u);
  EXPECT_EQ(best_effort.root().children[0].children[0].name, "deep");
}

TEST(ObsProfile, BuildsFromLiveTracer) {
  obs::Tracer tracer;
  tracer.install();
  {
    obs::Span outer("outer");
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  tracer.uninstall();

  const Profile p = Profile::build(tracer);
  EXPECT_FALSE(p.truncated());
  EXPECT_EQ(p.events(), 4u);
  ASSERT_EQ(p.spans().count("outer"), 1u);
  ASSERT_EQ(p.spans().count("inner"), 1u);
  EXPECT_EQ(p.spans().at("inner").count, 3u);

  const auto& outer = p.spans().at("outer");
  const auto& inner = p.spans().at("inner");
  EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
  EXPECT_GE(inner.total_ns, 3'000'000);  // three 1 ms sleeps
  EXPECT_NE(p.collapsed_stacks().find("outer;inner "), std::string::npos);
}

TEST(ObsProfile, OverflowingTracerYieldsTruncatedProfile) {
  obs::Tracer tracer(4);  // ring keeps 4 events per thread
  tracer.install();
  for (int i = 0; i < 10; ++i) { obs::Span s("work"); }
  tracer.uninstall();

  ASSERT_GT(tracer.dropped(), 0u);
  const Profile p = Profile::build(tracer);
  EXPECT_TRUE(p.truncated());
  EXPECT_EQ(p.dropped_events(), tracer.dropped());
  EXPECT_TRUE(p.to_json().at("truncated").as_bool());
}

// -------------------------------------------------------------- resources

TEST(ObsResource, OnDemandSampleReadsTheProcess) {
  const auto u = obs::sample_resources();
#ifdef __linux__
  EXPECT_GT(u.rss_bytes, 0u);  // a running test binary is resident
#endif
  // CPU times only move forward.
  const auto v = obs::sample_resources();
  EXPECT_GE(v.cpu_user_ns + v.cpu_sys_ns, u.cpu_user_ns + u.cpu_sys_ns);
}

TEST(ObsResource, SamplerCollectsAtLeastStartAndStopSamples) {
  obs::ResourceSampler sampler({/*interval_ms=*/5, /*ring_capacity=*/64});
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  const auto stats = sampler.stats();
  EXPECT_GE(stats.samples, 2u);  // immediate start sample + final stop sample
#ifdef __linux__
  EXPECT_GT(stats.peak_rss_bytes, 0u);
#endif
  EXPECT_GE(stats.wall_ns, 0);

  const auto series = sampler.series();
  EXPECT_EQ(series.size(), stats.samples - stats.dropped);
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);  // oldest first
  // stop() is idempotent and the data survives it.
  sampler.stop();
  EXPECT_EQ(sampler.stats().samples, stats.samples);
}

TEST(ObsResource, RingOverflowKeepsPeakExact) {
  obs::ResourceSampler sampler({/*interval_ms=*/1, /*ring_capacity=*/4});
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();

  const auto stats = sampler.stats();
  EXPECT_LE(sampler.series().size(), 4u);  // bounded by the ring
  EXPECT_EQ(stats.dropped, stats.samples - sampler.series().size());
  // The peak tracks every sample, including overwritten ones.
  for (const auto& s : sampler.series())
    EXPECT_LE(s.rss_bytes, stats.peak_rss_bytes);
}

TEST(ObsResource, JsonSectionParsesAndDecimates) {
  obs::ResourceSampler sampler({/*interval_ms=*/1, /*ring_capacity=*/256});
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sampler.stop();

  const Json j = Json::parse(sampler.to_json(/*max_series=*/4).dump());
  EXPECT_GE(j.at("samples").as_integer(), 2);
  EXPECT_GE(j.at("peak_rss_bytes").as_integer(), 0);
  EXPECT_GE(j.at("cpu_user_s").as_double(), 0.0);
  EXPECT_GE(j.at("wall_s").as_double(), 0.0);
  EXPECT_LE(j.at("rss_series").size(), 4u);  // decimated, not truncated
  for (const Json& row : j.at("rss_series").items()) {
    EXPECT_GE(row.at("t_ms").as_double(), 0.0);
    EXPECT_GE(row.at("rss_bytes").as_integer(), 0);
  }
}

}  // namespace
