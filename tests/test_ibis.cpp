#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "devices/reference_driver.hpp"
#include "ibis/device.hpp"
#include "ibis/extract.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc;

class IbisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new dev::DriverTech(dev::DriverTech::md1_lvc244());
    ibis::ExtractionOptions opt;
    opt.n_points = 25;  // keep extraction fast in tests
    model_ = new ibis::IbisModel(ibis::extract_ibis(*tech_, ibis::Corner::Typical, opt));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete tech_;
    model_ = nullptr;
    tech_ = nullptr;
  }

  static dev::DriverTech* tech_;
  static ibis::IbisModel* model_;
};

dev::DriverTech* IbisTest::tech_ = nullptr;
ibis::IbisModel* IbisTest::model_ = nullptr;

TEST_F(IbisTest, TablesAreValidAndMonotone) {
  ASSERT_TRUE(model_->pullup.valid());
  ASSERT_TRUE(model_->pulldown.valid());
  for (const auto* t : {&model_->pullup, &model_->pulldown}) {
    for (std::size_t k = 1; k < t->points.size(); ++k) {
      EXPECT_GT(t->points[k].first, t->points[k - 1].first);
      EXPECT_GE(t->points[k].second, t->points[k - 1].second - 2e-3);
    }
  }
}

TEST_F(IbisTest, TableSignsMatchDriverAction) {
  // Pullup at v = 0: sources current (negative into the pad); ~0 at VDD.
  auto at = [](const ibis::IvTable& t, double v) {
    double best = 1e9, i = 0.0;
    for (const auto& p : t.points)
      if (std::abs(p.first - v) < best) {
        best = std::abs(p.first - v);
        i = p.second;
      }
    return i;
  };
  EXPECT_LT(at(model_->pullup, 0.0), -0.05);
  EXPECT_NEAR(at(model_->pullup, tech_->vdd), 0.0, 0.03);
  EXPECT_GT(at(model_->pulldown, tech_->vdd), 0.05);
  EXPECT_NEAR(at(model_->pulldown, 0.0), 0.0, 0.03);
}

TEST_F(IbisTest, RampRatesArePlausible) {
  // LVC-class edges: between 0.5 and 10 V/ns at the pad.
  EXPECT_GT(model_->ramp_up, 0.5e9);
  EXPECT_LT(model_->ramp_up, 10e9);
  EXPECT_GT(model_->ramp_down, 0.5e9);
  EXPECT_LT(model_->ramp_down, 10e9);
  EXPECT_GT(model_->c_comp, 1e-12);
}

TEST_F(IbisTest, CornersOrderDriveStrength) {
  ibis::ExtractionOptions opt;
  opt.n_points = 9;
  const auto slow = ibis::extract_ibis(*tech_, ibis::Corner::Slow, opt);
  const auto fast = ibis::extract_ibis(*tech_, ibis::Corner::Fast, opt);
  // Compare pull-down strength at VDD/2 (positive currents).
  auto at_mid = [&](const ibis::IbisModel& m) {
    double best = 1e9, i = 0.0;
    for (const auto& p : m.pulldown.points)
      if (std::abs(p.first - tech_->vdd / 2) < best) {
        best = std::abs(p.first - tech_->vdd / 2);
        i = p.second;
      }
    return i;
  };
  EXPECT_LT(at_mid(slow), at_mid(*model_));
  EXPECT_LT(at_mid(*model_), at_mid(fast));
  EXPECT_LT(slow.ramp_up, fast.ramp_up);
}

TEST_F(IbisTest, CornerNames) {
  EXPECT_EQ(ibis::corner_name(ibis::Corner::Slow), "slow");
  EXPECT_EQ(ibis::corner_name(ibis::Corner::Typical), "typical");
  EXPECT_EQ(ibis::corner_name(ibis::Corner::Fast), "fast");
}

namespace {

sig::Waveform run_ibis_on_load(const ibis::IbisModel& m, const std::string& bits,
                               double bit_time, double r_load, double t_stop) {
  ckt::Circuit c;
  const int pad = c.node();
  c.add<ibis::IbisDriverDevice>(pad, m, bits, bit_time);
  c.add<ckt::Resistor>(pad, c.ground(), r_load);
  ckt::TransientOptions topt;
  topt.dt = 25e-12;
  topt.t_stop = t_stop;
  auto res = ckt::run_transient(c, topt);
  return res.waveform(pad);
}

}  // namespace

TEST_F(IbisTest, DeviceSettlesAtTableLevels) {
  // Steady High into 50 ohm must match the pullup-table/load intersection,
  // which is the same settled level as the reference driver's.
  const auto v = run_ibis_on_load(*model_, "11", 3e-9, 50.0, 6e-9);

  ckt::Circuit c;
  auto inst = dev::build_reference_driver_static(c, *tech_, true);
  c.add<ckt::Resistor>(inst.pad, c.ground(), 50.0);
  ckt::TransientOptions topt;
  topt.dt = 25e-12;
  topt.t_stop = 6e-9;
  auto res = ckt::run_transient(c, topt);
  const auto v_ref = res.waveform(inst.pad);

  EXPECT_NEAR(v[v.size() - 1], v_ref[v_ref.size() - 1], 0.05);
}

TEST_F(IbisTest, DeviceEdgeRateFollowsRamp) {
  const auto v = run_ibis_on_load(*model_, "01", 4e-9, 1e6, 10e-9);
  const auto t20 = sig::threshold_crossings(v, 0.2 * tech_->vdd);
  const auto t80 = sig::threshold_crossings(v, 0.8 * tech_->vdd);
  ASSERT_FALSE(t20.empty());
  ASSERT_FALSE(t80.empty());
  const double slew = 0.6 * tech_->vdd / (t80.front() - t20.front());
  // The lightly loaded pad edge should be within ~2.5x of the extracted
  // (50-ohm) ramp rate.
  EXPECT_GT(slew, model_->ramp_up / 2.5);
  EXPECT_LT(slew, model_->ramp_up * 2.5);
}

TEST_F(IbisTest, DeviceTracksReferenceRoughly) {
  // IBIS is the paper's "coarse" baseline: it should follow the reference
  // transition on a resistive load within ~15% RMS, clearly worse than
  // the PW-RBF model but in the right ballpark.
  ckt::Circuit c;
  auto pattern = sig::bit_stream("01", 3e-9, 0.1e-9, 0.0, tech_->vdd);
  auto inst = dev::build_reference_driver(c, *tech_,
                                          [pattern](double t) { return pattern(t); });
  c.add<ckt::Resistor>(inst.pad, c.ground(), 100.0);
  ckt::TransientOptions topt;
  topt.dt = 25e-12;
  topt.t_stop = 9e-9;
  auto res = ckt::run_transient(c, topt);
  const auto v_ref = res.waveform(inst.pad);

  const auto v_ibis = run_ibis_on_load(*model_, "01", 3e-9, 100.0, 9e-9);
  const double rel = sig::rms_error(v_ref, v_ibis) / sig::rms(v_ref);
  EXPECT_LT(rel, 0.15);
  EXPECT_GT(rel, 0.001);  // and it is not magically exact
}

TEST_F(IbisTest, DeviceValidation) {
  ibis::IbisModel empty;
  EXPECT_THROW(ibis::IbisDriverDevice(1, empty, "01", 1e-9), std::invalid_argument);
  EXPECT_THROW(ibis::IbisDriverDevice(1, *model_, "", 1e-9), std::invalid_argument);
  EXPECT_THROW(ibis::IbisDriverDevice(1, *model_, "01", -1.0), std::invalid_argument);
}
