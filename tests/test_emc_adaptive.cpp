// Adaptive mask-driven scanning: property-style agreement with a dense
// fixed reference scan on the worst margin and the crossing frequencies,
// certification semantics of the (pass, fail) brackets, and the
// no-refinement fast path on comfortably compliant records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "emc/adaptive.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

using namespace emc;

namespace {

/// Busy deterministic record: nine harmonics of a 1 MHz carrier with slow
/// amplitude modulation plus LCG noise. Scanned with an RBW well above
/// the 1 MHz harmonic spacing the detector trace is a smooth envelope —
/// which is what makes a dense fixed grid a trustworthy ground truth for
/// the worst margin (its quantization error shrinks quadratically in the
/// grid step).
sig::Waveform busy_record(std::size_t n, double fs) {
  sig::Lcg rng(77);
  std::vector<double> y(n);
  const double dt = 1.0 / fs;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    double v = 0.0;
    for (int h = 1; h <= 9; ++h)
      v += (1.0 / h) * std::sin(2.0 * std::numbers::pi * 1e6 * h * t + 0.3 * h);
    v *= 1.0 + 0.4 * std::sin(2.0 * std::numbers::pi * 40e3 * t);
    v += 0.01 * (rng.uniform() * 2.0 - 1.0);
    y[k] = v;
  }
  return {0.0, dt, std::move(y)};
}

spec::ReceiverSettings smooth_rx(double rbw) {
  spec::ReceiverSettings s;
  s.name = "adaptive-test";
  s.f_start = 200e3;
  s.f_stop = 10e6;
  s.n_points = 25;  // ignored by the adaptive planner (cfg.coarse_points)
  s.rbw = rbw;
  s.tau_charge = 2e-6;
  s.tau_discharge = 60e-6;
  return s;
}

spec::LimitMask flat_mask(double level_dbuv) {
  return spec::LimitMask{"flat", {{200e3, level_dbuv}, {10e6, level_dbuv}}};
}

/// Margin of the scan's selected trace at an exactly-measured frequency.
double margin_at(const spec::CertifiedScan& cs, const spec::LimitMask& mask,
                 spec::TraceSel trace, double f) {
  const auto& freq = cs.scan.freq;
  const auto it = std::find(freq.begin(), freq.end(), f);
  EXPECT_NE(it, freq.end()) << "certificate frequency was never measured: " << f;
  const std::size_t k = static_cast<std::size_t>(it - freq.begin());
  return mask.at(f) - spec::scan_trace(cs.scan, trace)[k];
}

/// Sign changes of (limit - level) across a dense scan: the ground-truth
/// crossing list the certificates are checked against. Returns the
/// bracketing dense-grid intervals.
std::vector<std::pair<double, double>> dense_crossings(const spec::EmiScan& scan,
                                                       const std::vector<double>& trace,
                                                       const spec::LimitMask& mask) {
  std::vector<std::pair<double, double>> out;
  for (std::size_t k = 0; k + 1 < scan.size(); ++k) {
    const double m0 = mask.at(scan.freq[k]) - trace[k];
    const double m1 = mask.at(scan.freq[k + 1]) - trace[k + 1];
    if ((m0 >= 0.0) != (m1 >= 0.0)) out.emplace_back(scan.freq[k], scan.freq[k + 1]);
  }
  return out;
}

}  // namespace

TEST(AdaptiveScan, AgreesWithDenseReferenceAcrossCorners) {
  const auto w = busy_record(4096, 64e6);
  spec::EmiScanner scanner;

  for (const double rbw : {1.5e6, 2.5e6}) {
    for (const spec::TraceSel trace :
         {spec::TraceSel::kQuasiPeak, spec::TraceSel::kAverage}) {
      const auto rx = smooth_rx(rbw);

      // Dense fixed reference: 16x the adaptive coarse grid (the satellite
      // requires >= 8x).
      auto dense_rx = rx;
      dense_rx.n_points = 400;
      const auto dense = spec::emi_scan(w, dense_rx);
      const auto& dense_trace = spec::scan_trace(dense, trace);

      // Mask through the middle of the trace's range: guaranteed crossings.
      const auto [lo_it, hi_it] =
          std::minmax_element(dense_trace.begin(), dense_trace.end());
      const auto mask = flat_mask(0.5 * (*lo_it + *hi_it));
      const auto dense_rep =
          spec::check_compliance(dense.freq, dense_trace, mask, "dense");

      spec::AdaptiveScanConfig cfg;
      cfg.coarse_points = 25;
      cfg.freq_tol_rel = 5e-4;
      cfg.margin_tol_db = 0.005;
      cfg.refine_margin_window_db = std::numeric_limits<double>::infinity();
      const auto cs = spec::adaptive_scan(scanner, w, rx, mask, trace, cfg, "adaptive");

      // Worst margin within 0.02 dB of the dense ground truth.
      ASSERT_FALSE(cs.report.points.empty());
      ASSERT_FALSE(dense_rep.points.empty());
      EXPECT_NEAR(cs.report.worst_margin_db, dense_rep.worst_margin_db, 0.02)
          << "rbw=" << rbw << " trace=" << spec::trace_name(trace);

      // Same crossing structure as the dense reference, and every
      // certificate's crossing estimate lands inside (or within one
      // tolerance of) a dense sign-change interval.
      const auto truth = dense_crossings(dense, dense_trace, mask);
      ASSERT_GE(truth.size(), 1u);
      EXPECT_EQ(cs.crossings.size(), truth.size())
          << "rbw=" << rbw << " trace=" << spec::trace_name(trace);
      for (const auto& x : cs.crossings) {
        // Certified bracket: both endpoints measured, verdicts opposite,
        // width within the configured tolerance of the crossing.
        EXPECT_GE(margin_at(cs, mask, trace, x.f_pass), 0.0);
        EXPECT_LT(margin_at(cs, mask, trace, x.f_fail), 0.0);
        EXPECT_LE(std::abs(x.f_fail - x.f_pass), cfg.freq_tol_rel * x.f_cross * 1.01);
        EXPECT_GE(x.f_cross, std::min(x.f_pass, x.f_fail));
        EXPECT_LE(x.f_cross, std::max(x.f_pass, x.f_fail));

        const bool near_truth = std::any_of(
            truth.begin(), truth.end(), [&](const std::pair<double, double>& iv) {
              const double slack = cfg.freq_tol_rel * x.f_cross;
              return x.f_cross >= iv.first - slack && x.f_cross <= iv.second + slack;
            });
        EXPECT_TRUE(near_truth) << "crossing at " << x.f_cross
                                << " has no dense counterpart";
      }
    }
  }
}

TEST(AdaptiveScan, FullyCompliantRecordTakesNoRefinement) {
  const auto w = busy_record(4096, 64e6);
  spec::EmiScanner scanner;
  const auto rx = smooth_rx(2e6);

  // Mask 30 dB above the trace's maximum: every margin is far outside the
  // default 10 dB refinement window, so the planner must spend exactly
  // the coarse pass and certify zero crossings.
  auto dense_rx = rx;
  dense_rx.n_points = 400;
  const auto dense = spec::emi_scan(w, dense_rx);
  const double peak =
      *std::max_element(dense.quasi_peak_dbuv.begin(), dense.quasi_peak_dbuv.end());

  spec::AdaptiveScanConfig cfg;
  cfg.coarse_points = 25;
  const auto cs = spec::adaptive_scan(scanner, w, rx, flat_mask(peak + 30.0),
                                      spec::TraceSel::kQuasiPeak, cfg, "compliant");
  EXPECT_TRUE(cs.report.pass);
  EXPECT_TRUE(cs.crossings.empty());
  EXPECT_EQ(cs.refined_points, 0u);
  EXPECT_EQ(cs.scan.refined_points, 0u);
  EXPECT_EQ(cs.detector_passes, cs.coarse_points);
  EXPECT_EQ(cs.coarse_points, 25u);
}

TEST(AdaptiveScan, CrossingExactlyOnACoarseGridPoint) {
  const auto w = busy_record(4096, 64e6);
  const auto rx = smooth_rx(2e6);

  // Pin the mask to the exact level of an interior coarse-grid point: the
  // margin there is exactly 0.0 (a pass — band edges of the violation),
  // the canonical degenerate bracket input.
  const auto grid = spec::make_log_grid(rx.f_start, rx.f_stop, 25);
  spec::EmiScanner probe;
  probe.load_record(w);
  const double f_pin = grid[10];
  const double pin[1] = {f_pin};
  const auto at_pin = probe.measure(rx, pin);
  ASSERT_EQ(at_pin.size(), 1u);
  const auto mask = flat_mask(at_pin.quasi_peak_dbuv[0]);

  spec::EmiScanner scanner;
  spec::AdaptiveScanConfig cfg;
  cfg.coarse_points = 25;
  cfg.refine_margin_window_db = std::numeric_limits<double>::infinity();
  const auto cs = spec::adaptive_scan(scanner, w, rx, mask,
                                      spec::TraceSel::kQuasiPeak, cfg, "pinned");

  // The pinned point reads margin exactly 0 in the merged scan.
  EXPECT_EQ(margin_at(cs, mask, spec::TraceSel::kQuasiPeak, f_pin), 0.0);
  // Somewhere the trace must dip below the pinned level, so at least one
  // crossing is certified, and every certificate keeps its semantics
  // (pass side >= 0, fail side < 0, tight bracket).
  ASSERT_GE(cs.crossings.size(), 1u);
  for (const auto& x : cs.crossings) {
    EXPECT_GE(margin_at(cs, mask, spec::TraceSel::kQuasiPeak, x.f_pass), 0.0);
    EXPECT_LT(margin_at(cs, mask, spec::TraceSel::kQuasiPeak, x.f_fail), 0.0);
    EXPECT_LE(std::abs(x.f_fail - x.f_pass), cfg.freq_tol_rel * x.f_cross * 1.01);
  }
  EXPECT_FALSE(cs.report.pass);  // part of the span is below the pinned level
}

TEST(AdaptiveScan, MergedScanIsSortedAndCountsAdd) {
  const auto w = busy_record(4096, 64e6);
  spec::EmiScanner scanner;
  const auto rx = smooth_rx(1.5e6);

  auto dense_rx = rx;
  dense_rx.n_points = 200;
  const auto dense = spec::emi_scan(w, dense_rx);
  const auto [lo_it, hi_it] =
      std::minmax_element(dense.quasi_peak_dbuv.begin(), dense.quasi_peak_dbuv.end());
  const auto mask = flat_mask(0.5 * (*lo_it + *hi_it));

  spec::AdaptiveScanConfig cfg;
  cfg.coarse_points = 25;
  cfg.refine_margin_window_db = std::numeric_limits<double>::infinity();
  const auto cs = spec::adaptive_scan(scanner, w, rx, mask,
                                      spec::TraceSel::kQuasiPeak, cfg, "counts");

  EXPECT_TRUE(std::is_sorted(cs.scan.freq.begin(), cs.scan.freq.end()));
  EXPECT_EQ(cs.scan.size(), cs.coarse_points + cs.refined_points);
  EXPECT_EQ(cs.detector_passes, cs.coarse_points + cs.refined_points);
  EXPECT_GT(cs.refined_points, 0u);
  EXPECT_EQ(cs.scan.refined_points, cs.refined_points);
  EXPECT_EQ(cs.scan.zoom_points + cs.scan.reference_points, cs.scan.size());
  EXPECT_EQ(cs.scan.skipped_points, 0u);

  // Determinism: the same inputs reproduce the identical certificate.
  spec::EmiScanner scanner2;
  const auto cs2 = spec::adaptive_scan(scanner2, w, rx, mask,
                                       spec::TraceSel::kQuasiPeak, cfg, "counts");
  ASSERT_EQ(cs2.scan.freq.size(), cs.scan.freq.size());
  for (std::size_t k = 0; k < cs.scan.freq.size(); ++k)
    EXPECT_EQ(cs.scan.freq[k], cs2.scan.freq[k]);
  EXPECT_EQ(cs.report.worst_margin_db, cs2.report.worst_margin_db);
  ASSERT_EQ(cs.crossings.size(), cs2.crossings.size());
  for (std::size_t k = 0; k < cs.crossings.size(); ++k) {
    EXPECT_EQ(cs.crossings[k].f_pass, cs2.crossings[k].f_pass);
    EXPECT_EQ(cs.crossings[k].f_fail, cs2.crossings[k].f_fail);
  }
}
