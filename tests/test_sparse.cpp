// Sparse MNA substrate: CSR pattern building, lane-batched value storage,
// and the static-pivot SparseLu — symbolic reuse across refactors, the
// weak-diagonal deferral that keeps VSource-style rows factorable without
// value-dependent pivoting, the dense fallback when the numeric health
// check fails, and bit-identical lane-batched vs. scalar arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "linalg/decomp.hpp"
#include "linalg/sparse.hpp"

namespace linalg = emc::linalg;

namespace {

/// Deterministic values in [-1, 1): tests must not depend on libc rand.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : s_(seed) {}
  double next() {
    s_ = s_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(s_ >> 11) / 4503599627370496.0 - 1.0;
  }

 private:
  std::uint64_t s_;
};

/// Random banded pattern + diagonally dominant values: well conditioned,
/// so the static-pivot factorization should never need the dense fallback.
void fill_banded(std::size_t n, std::uint64_t seed,
                 std::vector<linalg::SparseCoord>& coords, linalg::Matrix& dense) {
  Lcg rng(seed);
  dense = linalg::Matrix(n, n);
  coords.clear();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto d = i > j ? i - j : j - i;
      if (d > 3 && !(i % 7 == 0 && j + 1 == n)) continue;  // band + a few spikes
      const double v = i == j ? 8.0 + rng.next() : rng.next();
      coords.push_back({static_cast<int>(i), static_cast<int>(j)});
      dense(i, j) = v;
    }
  }
}

void load_matrix(linalg::SparseMatrix& a, const linalg::Matrix& dense,
                 std::size_t lane = 0) {
  a.clear_lane(lane);
  const std::size_t n = dense.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (dense(i, j) != 0.0) {
        ASSERT_TRUE(a.add(static_cast<int>(i), static_cast<int>(j), dense(i, j), lane));
      }
}

}  // namespace

TEST(SparsePattern, BuildDedupsSortsAndCompletesDiagonal) {
  const linalg::SparseCoord coords[] = {{0, 1}, {1, 0}, {0, 1}, {0, 0}, {2, 1}};
  const auto p = linalg::SparsePattern::build(3, coords);

  EXPECT_EQ(p.n(), 3u);
  // Dedup of the double (0,1) stamp, plus the implicit (1,1) and (2,2).
  EXPECT_EQ(p.nnz(), 6u);
  EXPECT_NE(p.find(0, 0), linalg::SparsePattern::npos);
  EXPECT_NE(p.find(1, 1), linalg::SparsePattern::npos);
  EXPECT_NE(p.find(2, 2), linalg::SparsePattern::npos);
  EXPECT_EQ(p.find(2, 0), linalg::SparsePattern::npos);
  EXPECT_EQ(p.diag_slot(1), p.find(1, 1));

  // Only (0,0) was stamped by a "device"; (1,1) and (2,2) are engine-added.
  EXPECT_TRUE(p.structural_diag(0));
  EXPECT_FALSE(p.structural_diag(1));
  EXPECT_FALSE(p.structural_diag(2));

  // Columns sorted within each row.
  for (std::size_t r = 0; r < p.n(); ++r)
    for (std::size_t s = p.row_ptr()[r] + 1; s < p.row_ptr()[r + 1]; ++s)
      EXPECT_LT(p.col()[s - 1], p.col()[s]);
}

TEST(SparsePattern, HashDistinguishesStructure) {
  const linalg::SparseCoord a[] = {{0, 1}, {1, 0}};
  const linalg::SparseCoord a_dup[] = {{1, 0}, {0, 1}, {0, 1}};
  const linalg::SparseCoord b[] = {{0, 1}, {1, 0}, {0, 2}};
  const linalg::SparseCoord c[] = {{0, 1}, {1, 0}, {0, 0}};  // diag now structural

  EXPECT_EQ(linalg::SparsePattern::build(3, a).hash(),
            linalg::SparsePattern::build(3, a_dup).hash());
  EXPECT_NE(linalg::SparsePattern::build(3, a).hash(),
            linalg::SparsePattern::build(3, b).hash());
  EXPECT_NE(linalg::SparsePattern::build(3, a).hash(),
            linalg::SparsePattern::build(3, c).hash());
  EXPECT_NE(linalg::SparsePattern::build(3, a).hash(),
            linalg::SparsePattern::build(4, a).hash());
}

TEST(SparsePattern, OutOfRangeCoordinateThrows) {
  const linalg::SparseCoord bad[] = {{0, 3}};
  EXPECT_THROW(linalg::SparsePattern::build(3, bad), std::invalid_argument);
  const linalg::SparseCoord neg[] = {{-1, 0}};
  EXPECT_THROW(linalg::SparsePattern::build(3, neg), std::invalid_argument);
}

TEST(SparseMatrix, AddMissesOutsidePattern) {
  const linalg::SparseCoord coords[] = {{0, 1}, {1, 0}};
  const auto p = linalg::SparsePattern::build(2, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p);

  EXPECT_TRUE(a.add(0, 1, 2.0));
  EXPECT_TRUE(a.add(0, 1, 0.5));   // accumulates
  EXPECT_TRUE(a.add(0, 0, 3.0));   // diagonal always present
  EXPECT_TRUE(a.add(1, 1, 1.0));   // diagonal of row 1 too
  EXPECT_FALSE(a.add(0, 5, 1.0));  // out of range -> miss, not crash

  const auto d = a.to_dense();
  EXPECT_EQ(d(0, 1), 2.5);
  EXPECT_EQ(d(0, 0), 3.0);
  EXPECT_EQ(d(1, 0), 0.0);
}

TEST(SparseMatrix, LaneStorageIsIndependent) {
  const linalg::SparseCoord coords[] = {{0, 0}, {0, 1}, {1, 1}};
  const auto p = linalg::SparsePattern::build(2, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p, 3);

  a.add(0, 1, 1.0, 0);
  a.add(0, 1, 2.0, 1);
  a.add_diag(5.0, 2);
  EXPECT_EQ(a.to_dense(0)(0, 1), 1.0);
  EXPECT_EQ(a.to_dense(1)(0, 1), 2.0);
  EXPECT_EQ(a.to_dense(2)(0, 0), 5.0);
  EXPECT_EQ(a.to_dense(2)(0, 1), 0.0);

  a.clear_lane(1);
  EXPECT_EQ(a.to_dense(0)(0, 1), 1.0);
  EXPECT_EQ(a.to_dense(1)(0, 1), 0.0);
}

TEST(SparseLu, MatchesDenseOnRandomBandedSystem) {
  const std::size_t n = 30;
  std::vector<linalg::SparseCoord> coords;
  linalg::Matrix dense;
  fill_banded(n, 42, coords, dense);

  const auto p = linalg::SparsePattern::build(n, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p);
  load_matrix(a, dense);

  linalg::SparseLu lu;
  lu.factor(a);
  EXPECT_EQ(lu.stats().dense_fallback_lanes, 0);

  Lcg rng(7);
  std::vector<double> b(n);
  for (double& v : b) v = rng.next();
  auto x = b;
  lu.solve_in_place(x);

  linalg::LuFactor ref;
  ref.factor(dense);
  const auto xr = ref.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xr[i], 1e-10);
}

TEST(SparseLu, WeakDiagonalDeferralHandlesVSourceRows) {
  // The MNA shape that breaks naive static ordering: a branch-current row
  // whose diagonal is only the engine's gmin leakage. Eliminating it first
  // would pivot on ~1e-12; the ordering must defer it until the voltage
  // row's elimination has strengthened it.
  const linalg::SparseCoord coords[] = {{0, 0}, {0, 1}, {1, 0}};
  const auto p = linalg::SparsePattern::build(2, coords);
  ASSERT_FALSE(p.structural_diag(1));

  linalg::SparseMatrix a;
  a.set_pattern(&p);
  a.add(0, 0, 2.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add_diag(1e-12);  // gmin augmentation

  linalg::SparseLu lu;
  lu.factor(a);
  EXPECT_EQ(lu.stats().dense_fallback_lanes, 0);

  std::vector<double> x = {3.0, 1.0};
  lu.solve_in_place(x);
  linalg::LuFactor ref;
  ref.factor(a.to_dense());
  const auto xr = ref.solve(std::vector<double>{3.0, 1.0});
  EXPECT_NEAR(x[0], xr[0], 1e-9);
  EXPECT_NEAR(x[1], xr[1], 1e-9);
}

TEST(SparseLu, SymbolicReusedAcrossRefactors) {
  const std::size_t n = 20;
  std::vector<linalg::SparseCoord> coords;
  linalg::Matrix dense;
  fill_banded(n, 3, coords, dense);
  const auto p = linalg::SparsePattern::build(n, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p);

  linalg::SparseLu lu;
  for (int round = 0; round < 3; ++round) {
    linalg::Matrix d2;
    std::vector<linalg::SparseCoord> unused;
    fill_banded(n, 100 + static_cast<std::uint64_t>(round), unused, d2);
    load_matrix(a, d2);
    lu.factor(a);

    std::vector<double> b(n, 1.0);
    auto x = b;
    lu.solve_in_place(x);
    linalg::LuFactor ref;
    ref.factor(d2);
    const auto xr = ref.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xr[i], 1e-9);
  }
  EXPECT_EQ(lu.stats().analyses, 1);
  EXPECT_EQ(lu.stats().refactors, 3);
  EXPECT_EQ(lu.stats().symbolic_reuses, 2);

  lu.invalidate();
  load_matrix(a, dense);
  lu.factor(a);
  EXPECT_EQ(lu.stats().analyses, 2);
}

TEST(SparseLu, DenseFallbackOnHealthFailureStaysCorrect) {
  // Static order eliminates index 0 first; the 1e-30 pivot then produces a
  // 1e30 multiplier, failing the health check. The lane must transparently
  // re-factor densely (with partial pivoting) and still solve correctly.
  const linalg::SparseCoord coords[] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const auto p = linalg::SparsePattern::build(2, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p);
  a.add(0, 0, 1e-30);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1.0);

  linalg::SparseLu lu;
  lu.factor(a);
  EXPECT_GT(lu.stats().dense_fallback_lanes, 0);

  // Exact solution of [[1e-30, 1], [1, 1]] x = [1, 2] is x ~ [1, 1].
  std::vector<double> x = {1.0, 2.0};
  lu.solve_in_place(x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLu, SingularBeyondFallbackThrows) {
  const linalg::SparseCoord coords[] = {{0, 1}, {1, 0}};
  const auto p = linalg::SparsePattern::build(2, coords);
  linalg::SparseMatrix a;
  a.set_pattern(&p);  // all-zero values: singular however you pivot
  linalg::SparseLu lu;
  EXPECT_THROW(lu.factor(a), std::runtime_error);
  EXPECT_FALSE(lu.valid());
}

TEST(SparseLu, LaneBatchedFactorSolveIsBitIdenticalToScalar) {
  const std::size_t n = 24;
  const std::size_t lanes = 4;
  std::vector<linalg::SparseCoord> coords;
  linalg::Matrix dense0;
  fill_banded(n, 11, coords, dense0);
  const auto p = linalg::SparsePattern::build(n, coords);

  // Batched: all lanes side by side, one factor, one solve.
  linalg::SparseMatrix batched;
  batched.set_pattern(&p, lanes);
  std::vector<linalg::Matrix> per_lane(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    std::vector<linalg::SparseCoord> unused;
    fill_banded(n, 500 + static_cast<std::uint64_t>(l), unused, per_lane[l]);
    load_matrix(batched, per_lane[l], l);
  }
  linalg::SparseLu lu_b;
  lu_b.factor(batched);

  Lcg rng(99);
  std::vector<double> rhs(n * lanes);
  for (double& v : rhs) v = rng.next();
  auto xb = rhs;
  lu_b.solve_lanes_in_place(xb);

  // Scalar reference: each lane alone through a fresh single-lane solver.
  for (std::size_t l = 0; l < lanes; ++l) {
    linalg::SparseMatrix single;
    single.set_pattern(&p, 1);
    load_matrix(single, per_lane[l]);
    linalg::SparseLu lu_s;
    lu_s.factor(single);

    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = rhs[i * lanes + l];
    lu_s.solve_in_place(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xb[i * lanes + l], x[i]) << "lane " << l;
  }
}

TEST(SparseLu, WalkCountersCountPatternEntriesOncePerCall) {
  const std::size_t n = 16;
  std::vector<linalg::SparseCoord> coords;
  linalg::Matrix dense;
  fill_banded(n, 5, coords, dense);
  const auto p = linalg::SparsePattern::build(n, coords);

  linalg::SparseMatrix one, four;
  one.set_pattern(&p, 1);
  four.set_pattern(&p, 4);
  load_matrix(one, dense);
  for (std::size_t l = 0; l < 4; ++l) load_matrix(four, dense, l);

  linalg::SparseLu lu1, lu4;
  lu1.factor(one);
  lu4.factor(four);
  // Same structure => same per-call walk regardless of lane count.
  EXPECT_EQ(lu1.factor_walk(), lu4.factor_walk());
  EXPECT_EQ(lu1.solve_walk(), lu4.solve_walk());
  EXPECT_GT(lu1.factor_walk(), 0u);
}
