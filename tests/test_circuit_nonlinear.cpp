#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc::ckt;

TEST(DiodeModel, ForwardDropAbout0p6V) {
  // 5 V through 1 kohm into a diode: V_f should settle near 0.6-0.75 V.
  Circuit ckt;
  const int vin = ckt.node();
  const int a = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), 5.0);
  ckt.add<Resistor>(vin, a, 1000.0);
  ckt.add<Diode>(a, ckt.ground());

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  const double vf = res.waveform(a)[0];
  EXPECT_GT(vf, 0.5);
  EXPECT_LT(vf, 0.8);
}

TEST(DiodeModel, ReverseBlocksCurrent) {
  Circuit ckt;
  const int vin = ckt.node();
  const int a = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), -5.0);
  ckt.add<Resistor>(vin, a, 1000.0);
  ckt.add<Diode>(a, ckt.ground());

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  // Reverse leakage only: node a sits essentially at -5 V.
  EXPECT_NEAR(res.waveform(a)[0], -5.0, 0.01);
}

TEST(DiodeModel, EvalContinuousAcrossOverflowGuard) {
  Diode d(1, 0);
  const double nvt = 0.02585;
  const double vlim = 40.0 * nvt;
  const auto [i_lo, g_lo] = d.eval(vlim - 1e-9);
  const auto [i_hi, g_hi] = d.eval(vlim + 1e-9);
  EXPECT_NEAR(i_lo, i_hi, std::abs(i_lo) * 1e-6);
  EXPECT_NEAR(g_lo, g_hi, std::abs(g_lo) * 1e-3);
}

TEST(MosfetModel, CutoffSaturationTriodeCurrents) {
  MosParams p;
  p.kp = 200e-6;
  p.vt0 = 0.7;
  p.lambda = 0.0;
  p.w = 10e-6;
  p.l = 1e-6;
  Mosfet m(1, 2, 0, p);
  const double beta = p.beta();

  // Cut-off.
  EXPECT_NEAR(m.drain_current(5.0, 0.5, 0.0), 0.0, 1e-9);
  // Saturation: id = beta/2 * vov^2.
  const double id_sat = m.drain_current(5.0, 1.7, 0.0);
  EXPECT_NEAR(id_sat, 0.5 * beta * 1.0, 1e-9);
  // Triode: vds = 0.5 < vov = 1: id = beta*(vov*vds - vds^2/2).
  const double id_tri = m.drain_current(0.5, 1.7, 0.0);
  EXPECT_NEAR(id_tri, beta * (1.0 * 0.5 - 0.125), 1e-9);
}

TEST(MosfetModel, SymmetricInDrainSourceSwap) {
  MosParams p;
  p.lambda = 0.0;
  Mosfet m(1, 2, 3, p);
  // Current with terminals reversed must flip sign exactly.
  const double i_fwd = m.drain_current(1.2, 2.0, 0.2);
  Mosfet m_rev(3, 2, 1, p);
  const double i_rev = m_rev.drain_current(0.2, 2.0, 1.2);
  EXPECT_NEAR(i_fwd, -i_rev, 1e-15);
}

TEST(MosfetModel, PmosMirrorsNmos) {
  MosParams pn;
  pn.type = MosType::Nmos;
  pn.lambda = 0.0;
  MosParams pp = pn;
  pp.type = MosType::Pmos;
  Mosfet n(1, 2, 0, pn);
  Mosfet pm(1, 2, 0, pp);
  // Mirrored bias must give mirrored current.
  const double in = n.drain_current(1.0, 1.5, 0.0);
  const double ip = pm.drain_current(-1.0, -1.5, 0.0);
  EXPECT_NEAR(in, -ip, 1e-15);
}

TEST(MosfetModel, ChannelLengthModulationIncreasesId) {
  MosParams p0;
  p0.lambda = 0.0;
  MosParams p1 = p0;
  p1.lambda = 0.1;
  Mosfet m0(1, 2, 0, p0), m1(1, 2, 0, p1);
  EXPECT_GT(m1.drain_current(3.0, 1.5, 0.0), m0.drain_current(3.0, 1.5, 0.0));
}

namespace {

/// A minimal resistive-load NMOS inverter for DC transfer checks.
double nmos_inverter_out(double vin_val) {
  Circuit ckt;
  const int vdd = ckt.node();
  const int vin = ckt.node();
  const int out = ckt.node();
  ckt.add<VSource>(vdd, ckt.ground(), 3.3);
  ckt.add<VSource>(vin, ckt.ground(), vin_val);
  ckt.add<Resistor>(vdd, out, 10e3);
  MosParams p;
  p.kp = 100e-6;
  p.vt0 = 0.6;
  p.w = 20e-6;
  p.l = 1e-6;
  ckt.add<Mosfet>(out, vin, ckt.ground(), p);

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  return res.waveform(out)[0];
}

}  // namespace

TEST(MosfetCircuit, ResistiveInverterTransfer) {
  // Below threshold the output stays high; far above it is pulled low.
  EXPECT_NEAR(nmos_inverter_out(0.0), 3.3, 1e-3);
  EXPECT_LT(nmos_inverter_out(3.3), 0.3);
  // Monotone decreasing transfer.
  double prev = 10.0;
  for (double v = 0.0; v <= 3.3; v += 0.3) {
    const double o = nmos_inverter_out(v);
    EXPECT_LE(o, prev + 1e-6);
    prev = o;
  }
}

TEST(MosfetCircuit, CmosInverterRailToRail) {
  Circuit ckt;
  const int vdd = ckt.node();
  const int vin = ckt.node();
  const int out = ckt.node();
  ckt.add<VSource>(vdd, ckt.ground(), 2.5);
  emc::sig::Pwl sweep({{0.0, 0.0}, {10e-9, 2.5}});
  ckt.add<VSource>(vin, ckt.ground(), [sweep](double t) { return sweep(t); });

  MosParams pn;
  pn.kp = 200e-6;
  pn.vt0 = 0.5;
  pn.w = 10e-6;
  pn.l = 0.5e-6;
  MosParams pp;
  pp.type = MosType::Pmos;
  pp.kp = 80e-6;
  pp.vt0 = 0.5;
  pp.w = 25e-6;
  pp.l = 0.5e-6;
  ckt.add<Mosfet>(out, vin, ckt.ground(), pn);
  ckt.add<Mosfet>(out, vin, vdd, pp);
  ckt.add<Capacitor>(out, ckt.ground(), 10e-15);

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 10e-9;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(out);
  EXPECT_NEAR(v[10], 2.5, 0.01);              // input low -> output at VDD
  EXPECT_NEAR(v[v.size() - 2], 0.0, 0.01);    // input high -> output at GND
  // The transfer passes mid-rail somewhere in the middle of the sweep.
  const auto cross = emc::sig::threshold_crossings(v, 1.25);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_GT(cross[0], 2e-9);
  EXPECT_LT(cross[0], 8e-9);
}

TEST(EsdClampPair, ClampsOutsideRails) {
  // Receiver-style protection: diode to VDD and diode from GND.
  Circuit ckt;
  const int vdd = ckt.node();
  const int pin = ckt.node();
  const int src = ckt.node();
  ckt.add<VSource>(vdd, ckt.ground(), 1.8);
  emc::sig::Pwl tri({{0.0, 0.0}, {5e-9, 4.0}, {10e-9, -2.0}});
  ckt.add<VSource>(src, ckt.ground(), [tri](double t) { return tri(t); });
  ckt.add<Resistor>(src, pin, 200.0);
  DiodeParams dp;
  dp.is = 1e-15;
  ckt.add<Diode>(pin, vdd, dp);   // up clamp
  ckt.add<Diode>(ckt.ground(), pin, dp);  // down clamp

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 10e-9;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(pin);
  EXPECT_LT(v.max_value(), 1.8 + 1.0);   // clamped above VDD + V_f
  EXPECT_GT(v.min_value(), -1.0);        // clamped below GND - V_f
  // And genuinely clamped: the unclamped source reaches 4 V / -2 V.
  EXPECT_LT(v.max_value(), 3.0);
  EXPECT_GT(v.min_value(), -1.5);
}
