// Scenario-axis refinement: plan_axis_refinement finds pass/fail sign
// flips in the per-axis worst-margin table, apply_refinement subdivides
// the axes, and SweepRunner::refine carries prior corners bit-for-bit
// while evaluating only the fresh ones — deterministically for any worker
// count, and in exact agreement with a from-scratch sweep of the refined
// grid.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sweep/corner_grid.hpp"
#include "sweep/sweep_runner.hpp"

using namespace emc;
using namespace emc::sweep;

namespace {

/// Cheap analytic corner function: the margin is a smooth pure function
/// of (line_length, vdd_scale) with a single pass/fail boundary along the
/// length axis — precise control of where the planner must subdivide,
/// with none of the transient pipeline's cost.
double synthetic_margin(const Scenario& sc) {
  return -40.0 * std::log10(sc.line_length / 0.1) - 25.0 * (sc.vdd_scale - 1.0);
}

spec::ComplianceReport synthetic_report(double margin_db, bool covered = true) {
  spec::ComplianceReport r;
  r.mask_name = "synthetic";
  if (covered) {
    r.points.push_back({1e6, 50.0 - margin_db, 50.0, margin_db});
    r.worst_margin_db = margin_db;
    r.worst_index = 0;
    r.pass = margin_db >= 0.0;
  }
  return r;
}

CornerFn make_synthetic_fn(std::atomic<std::size_t>* calls = nullptr) {
  return [calls](const Scenario& sc, Workspace& ws) {
    if (calls) calls->fetch_add(1, std::memory_order_relaxed);
    ws.scan = ScanCounts{0, 7, 0};  // fixed-plan style accounting
    return synthetic_report(synthetic_margin(sc));
  };
}

CornerAxes boundary_axes() {
  CornerAxes axes;
  axes.line_length = {0.05, 0.1, 0.2, 0.4};
  axes.vdd_scale = {0.9, 1.1};
  return axes;
}

}  // namespace

TEST(PlanAxisRefinement, FindsTheSignFlipOnTheLengthAxis) {
  const CornerGrid grid(boundary_axes());
  SweepRunner runner(1);
  const auto prior = runner.run(grid, make_synthetic_fn());

  // Worst margin per length value (min over vdd): 9.54, -2.5, -14.5,
  // -26.6 dB -> exactly one pass/fail flip, between 0.05 m and 0.1 m.
  // The vdd axis fails at both values, so it contributes nothing.
  const auto plan = plan_axis_refinement(grid, prior.summary);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].axis, AxisId::kLineLength);
  EXPECT_EQ(plan[0].after, 0u);
  EXPECT_EQ(plan[0].value, std::sqrt(0.05 * 0.1));
}

TEST(PlanAxisRefinement, AllPassGridNeedsNoRefinement) {
  CornerAxes axes;
  axes.line_length = {0.01, 0.02, 0.05};  // all margins comfortably positive
  const CornerGrid grid(axes);
  SweepRunner runner(1);
  const auto prior = runner.run(grid, make_synthetic_fn());
  EXPECT_TRUE(plan_axis_refinement(grid, prior.summary).empty());
}

TEST(PlanAxisRefinement, UncoveredSentinelNeverFormsABoundary) {
  CornerAxes axes;
  axes.line_length = {0.05, 0.1, 0.4};
  const CornerGrid grid(axes);

  // Hand-built results: pass at 0.05 m, NO covered scan point at 0.1 m,
  // fail at 0.4 m. Both adjacent pairs straddle the +inf sentinel, so the
  // planner must not invent a boundary across the coverage hole.
  std::vector<CornerResult> results(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    results[i].scenario = grid.at(i);
    const double m = synthetic_margin(results[i].scenario);
    results[i].report = synthetic_report(m, /*covered=*/i != 1);
  }
  const auto summary = summarize(grid, results);
  EXPECT_TRUE(std::isinf(summary.axis_worst[size_t(AxisId::kLineLength)][1]));
  EXPECT_TRUE(plan_axis_refinement(grid, summary).empty());
}

TEST(ApplyRefinement, InsertsSortedValuesAndRejectsBadPlans) {
  const auto axes = boundary_axes();
  const std::vector<AxisInsertion> plan = {
      {AxisId::kLineLength, 0, std::sqrt(0.05 * 0.1)},
      {AxisId::kLineLength, 2, std::sqrt(0.2 * 0.4)},
      {AxisId::kVddScale, 0, std::sqrt(0.9 * 1.1)},
  };
  const auto refined = apply_refinement(axes, plan);
  const std::vector<double> want_len = {0.05, std::sqrt(0.05 * 0.1), 0.1,
                                        0.2, std::sqrt(0.2 * 0.4), 0.4};
  EXPECT_EQ(refined.line_length, want_len);
  const std::vector<double> want_vdd = {0.9, std::sqrt(0.9 * 1.1), 1.1};
  EXPECT_EQ(refined.vdd_scale, want_vdd);
  EXPECT_EQ(refined.load_c, axes.load_c);          // untouched axes survive
  EXPECT_EQ(refined.pattern_bits, axes.pattern_bits);

  EXPECT_THROW(apply_refinement(axes, std::vector<AxisInsertion>{
                   {AxisId::kDetector, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(apply_refinement(axes, std::vector<AxisInsertion>{
                   {AxisId::kLineLength, 99, 0.3}}),
               std::invalid_argument);
}

TEST(SweepRefine, CarriesPriorResultsAndEvaluatesOnlyFreshCorners) {
  const CornerGrid grid(boundary_axes());
  SweepRunner runner(2);
  const auto prior = runner.run(grid, make_synthetic_fn());

  std::atomic<std::size_t> calls{0};
  const auto out = runner.refine(grid, prior, make_synthetic_fn(&calls));

  // One insertion on the length axis: 5x2 = 10 corners, 8 carried over.
  ASSERT_EQ(out.plan.size(), 1u);
  EXPECT_EQ(out.grid.size(), 10u);
  EXPECT_EQ(out.reused, 8u);
  EXPECT_EQ(out.evaluated, 2u);
  EXPECT_EQ(calls.load(), 2u);
  ASSERT_EQ(out.outcome.results.size(), out.grid.size());

  for (const auto& r : out.outcome.results) {
    // Every corner (carried or fresh) reports the synthetic margin of its
    // own scenario, and the scenario matches the refined grid slot.
    EXPECT_EQ(r.scenario.label(), out.grid.at(r.scenario.index).label());
    ASSERT_FALSE(r.report.points.empty());
    EXPECT_EQ(r.report.worst_margin_db, synthetic_margin(r.scenario));
    EXPECT_EQ(r.scan.detector_passes, 7u);
  }

  // Carried corners keep their prior report bit-for-bit (match by label —
  // Scenario::label() is value-based, so it survives re-indexing).
  for (const auto& p : prior.results) {
    bool found = false;
    for (const auto& r : out.outcome.results) {
      if (r.scenario.label() != p.scenario.label()) continue;
      found = true;
      EXPECT_EQ(r.report.worst_margin_db, p.report.worst_margin_db);
      EXPECT_EQ(r.report.pass, p.report.pass);
    }
    EXPECT_TRUE(found) << "prior corner lost: " << p.scenario.label();
  }
}

TEST(SweepRefine, MatchesAFromScratchSweepOfTheRefinedGrid) {
  const CornerGrid grid(boundary_axes());
  SweepRunner runner(2);
  const auto prior = runner.run(grid, make_synthetic_fn());
  const auto out = runner.refine(grid, prior, make_synthetic_fn());

  // The refined grid evaluated from scratch must aggregate to the exact
  // same summary: carried results are pure functions of the scenario.
  const CornerGrid refined(apply_refinement(grid.axes(), out.plan));
  ASSERT_EQ(refined.size(), out.grid.size());
  const auto scratch = runner.run(refined, make_synthetic_fn());
  EXPECT_EQ(out.outcome.summary, scratch.summary);
}

TEST(SweepRefine, BitIdenticalAcrossWorkerCounts) {
  const CornerGrid grid(boundary_axes());
  SweepRunner one(1), three(3);
  const auto p1 = one.run(grid, make_synthetic_fn());
  const auto p3 = three.run(grid, make_synthetic_fn());
  ASSERT_EQ(p1.summary, p3.summary);

  const auto r1 = one.refine(grid, p1, make_synthetic_fn());
  const auto r3 = three.refine(grid, p3, make_synthetic_fn());
  EXPECT_EQ(r1.plan, r3.plan);
  EXPECT_EQ(r1.outcome.summary, r3.outcome.summary);
  ASSERT_EQ(r1.outcome.results.size(), r3.outcome.results.size());
  for (std::size_t i = 0; i < r1.outcome.results.size(); ++i) {
    EXPECT_EQ(r1.outcome.results[i].scenario.label(),
              r3.outcome.results[i].scenario.label());
    EXPECT_EQ(r1.outcome.results[i].report.worst_margin_db,
              r3.outcome.results[i].report.worst_margin_db);
  }
}

TEST(SweepRefine, EmptyPlanReturnsThePriorOutcome) {
  CornerAxes axes;
  axes.line_length = {0.01, 0.02};  // every corner passes
  const CornerGrid grid(axes);
  SweepRunner runner(2);
  const auto prior = runner.run(grid, make_synthetic_fn());

  std::atomic<std::size_t> calls{0};
  const auto out = runner.refine(grid, prior, make_synthetic_fn(&calls));
  EXPECT_TRUE(out.plan.empty());
  EXPECT_EQ(out.grid.size(), grid.size());
  EXPECT_EQ(out.reused, grid.size());
  EXPECT_EQ(out.evaluated, 0u);
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(out.outcome.summary, prior.summary);
}

TEST(SweepRefine, RejectsAPartialPriorOutcome) {
  const CornerGrid grid(boundary_axes());
  SweepRunner runner(1);
  auto prior = runner.run(grid, make_synthetic_fn());
  prior.results.pop_back();
  EXPECT_THROW(runner.refine(grid, prior, make_synthetic_fn()),
               std::invalid_argument);
}
