#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_device.hpp"
#include "core/driver_estimator.hpp"
#include "core/validation.hpp"
#include "signal/sources.hpp"

using namespace emc;

/// Estimate the MD1-class model once for the whole suite (the estimation
/// itself is the expensive step).
class DriverModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new dev::DriverTech(dev::DriverTech::md1_lvc244());
    dut_ = new core::CircuitDriverDut(*tech_);
    model_ = new core::PwRbfDriverModel(core::estimate_driver_model(*dut_));
    model_->name = "MD1-test";
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dut_;
    delete tech_;
    model_ = nullptr;
    dut_ = nullptr;
    tech_ = nullptr;
  }

  static dev::DriverTech* tech_;
  static core::CircuitDriverDut* dut_;
  static core::PwRbfDriverModel* model_;
};

dev::DriverTech* DriverModelTest::tech_ = nullptr;
core::CircuitDriverDut* DriverModelTest::dut_ = nullptr;
core::PwRbfDriverModel* DriverModelTest::model_ = nullptr;

TEST_F(DriverModelTest, SubmodelsFreeRunAccuracy) {
  const auto rep = core::validate_submodels(*dut_, *model_);
  EXPECT_LT(rep.rel_rms_high, 0.10);
  EXPECT_LT(rep.rel_rms_low, 0.10);
}

TEST_F(DriverModelTest, StaticHighIvIsMonotone) {
  double prev = -1e9;
  for (double v = -0.5; v <= tech_->vdd + 1.0; v += 0.2) {
    const double i = model_->steady_current(true, v);
    EXPECT_GE(i, prev - 2e-3) << "at v = " << v;  // small tolerance for RBF ripple
    prev = i;
  }
}

TEST_F(DriverModelTest, StaticIvZeroAtOwnRail) {
  // i_H at VDD and i_L at 0 V correspond to the unloaded settled states
  // (tolerance ~4% of the +-0.45 A full scale the model was fitted over).
  EXPECT_NEAR(model_->steady_current(true, tech_->vdd), 0.0, 0.02);
  EXPECT_NEAR(model_->steady_current(false, 0.0), 0.0, 0.02);
}

TEST_F(DriverModelTest, StaticIvSignsMatchDriverAction) {
  // High state below VDD: driver sources current (i into pin negative).
  EXPECT_LT(model_->steady_current(true, 1.0), -0.05);
  // Low state above 0: driver sinks current.
  EXPECT_GT(model_->steady_current(false, 2.0), 0.05);
}

TEST_F(DriverModelTest, WeightSequencesStartAndSettleCorrectly) {
  ASSERT_FALSE(model_->up.empty());
  ASSERT_FALSE(model_->down.empty());
  // Up: starts at the Low steady pair and settles at the High pair.
  EXPECT_NEAR(model_->up.wh.front(), 0.0, 1e-9);
  EXPECT_NEAR(model_->up.wl.front(), 1.0, 1e-9);
  EXPECT_NEAR(model_->up.wh.back(), 1.0, 1e-9);
  EXPECT_NEAR(model_->up.wl.back(), 0.0, 1e-9);
  EXPECT_NEAR(model_->down.wh.front(), 1.0, 1e-9);
  EXPECT_NEAR(model_->down.wl.back(), 1.0, 1e-9);
}

TEST_F(DriverModelTest, WeightsStayInPhysicalBand) {
  for (const auto* seq : {&model_->up, &model_->down}) {
    for (std::size_t k = 0; k < seq->size(); ++k) {
      EXPECT_GE(seq->wh[k], -0.3);
      EXPECT_LE(seq->wh[k], 1.3);
      EXPECT_GE(seq->wl[k], -0.3);
      EXPECT_LE(seq->wl[k], 1.3);
    }
  }
}

TEST_F(DriverModelTest, WeightsAtBeyondSequenceAreSteady) {
  const auto [wh, wl] = model_->weights_at(true, model_->up.size() + 100);
  EXPECT_DOUBLE_EQ(wh, 1.0);
  EXPECT_DOUBLE_EQ(wl, 0.0);
}

namespace {

/// Closed-loop run of either the macromodel or the reference on a load
/// builder; returns the pad waveform.
template <typename LoadFn>
sig::Waveform closed_loop(const dev::DriverTech& tech, const core::PwRbfDriverModel* model,
                          const std::string& bits, double bit_time, double t_stop,
                          LoadFn&& add_load) {
  ckt::Circuit c;
  const int pad = c.node();
  add_load(c, pad);
  if (model) {
    c.add<core::DriverDevice>(pad, *model, bits, bit_time);
  } else {
    auto pattern = sig::bit_stream(bits, bit_time, 0.1e-9, 0.0, tech.vdd);
    auto inst = dev::build_reference_driver(c, tech,
                                            [pattern](double t) { return pattern(t); });
    c.add<ckt::Resistor>(inst.pad, pad, 1e-3);
  }
  ckt::TransientOptions topt;
  topt.dt = 25e-12;
  topt.t_stop = t_stop;
  auto res = ckt::run_transient(c, topt);
  return res.waveform(pad);
}

}  // namespace

TEST_F(DriverModelTest, ClosedLoopResistorLoadTracksReference) {
  auto load = [](ckt::Circuit& c, int pad) { c.add<ckt::Resistor>(pad, c.ground(), 50.0); };
  const auto v_ref = closed_loop(*tech_, nullptr, "01", 3e-9, 9e-9, load);
  const auto v_mod = closed_loop(*tech_, model_, "01", 3e-9, 9e-9, load);
  const auto rep = core::validate_waveform("r-load", v_ref, v_mod, tech_->vdd / 2, 0.2e-9);
  EXPECT_LT(rep.rel_rms, 0.10);
  ASSERT_TRUE(rep.timing_error.has_value());
  EXPECT_LT(*rep.timing_error, 20e-12);  // the paper's Section 5 bound
}

TEST_F(DriverModelTest, ClosedLoopTransmissionLineTimingError) {
  // The paper's Figure 1 class of validation: line + far capacitor.
  auto load = [](ckt::Circuit& c, int pad) {
    const int far = c.node();
    c.add<ckt::IdealLine>(pad, c.ground(), far, c.ground(), 50.0, 0.5e-9);
    c.add<ckt::Capacitor>(far, c.ground(), 10e-12);
  };
  const auto v_ref = closed_loop(*tech_, nullptr, "01", 2e-9, 12e-9, load);
  const auto v_mod = closed_loop(*tech_, model_, "01", 2e-9, 12e-9, load);
  const auto rep = core::validate_waveform("line", v_ref, v_mod, tech_->vdd / 2, 0.2e-9);
  EXPECT_LT(rep.rel_rms, 0.10);
  ASSERT_TRUE(rep.timing_error.has_value());
  EXPECT_LT(*rep.timing_error, 20e-12);
}

TEST_F(DriverModelTest, ClosedLoopPulsePattern) {
  // A "010" pulse exercises both weight sequences back to back.
  auto load = [](ckt::Circuit& c, int pad) { c.add<ckt::Resistor>(pad, c.ground(), 100.0); };
  const auto v_ref = closed_loop(*tech_, nullptr, "010", 2.5e-9, 10e-9, load);
  const auto v_mod = closed_loop(*tech_, model_, "010", 2.5e-9, 10e-9, load);
  const auto rep = core::validate_waveform("pulse", v_ref, v_mod, tech_->vdd / 2, 0.3e-9);
  EXPECT_LT(rep.rel_rms, 0.12);
  ASSERT_TRUE(rep.timing_error.has_value());
  EXPECT_LT(*rep.timing_error, 30e-12);
}

TEST_F(DriverModelTest, TheveninSimulatorMatchesCircuitDevice) {
  const auto v_fast = core::simulate_driver_on_thevenin(
      *model_, "01", 3e-9, [](double) { return 0.0; }, 50.0, 9e-9);
  auto load = [](ckt::Circuit& c, int pad) { c.add<ckt::Resistor>(pad, c.ground(), 50.0); };
  const auto v_mna = closed_loop(*tech_, model_, "01", 3e-9, 9e-9, load);
  EXPECT_LT(sig::max_error(v_mna, v_fast), 0.05);
}

TEST_F(DriverModelTest, SimulateOnVoltageMatchesRecordedCurrent) {
  const auto rec = dut_->switching_response("01", 2e-9, 50.0, 0.0, model_->ts, 8e-9);
  const auto i_model = core::simulate_driver_on_voltage(
      *model_, rec.v, static_cast<std::size_t>(2e-9 / model_->ts), true);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < rec.i.size(); ++k) {
    num += std::pow(i_model[k] - rec.i[k], 2);
    den += std::pow(rec.i[k], 2);
  }
  // The current-domain error is dominated by the brief +-60 mA switching
  // spikes, so the relative bound is looser than the voltage-domain
  // validation (the paper's figure of merit), which stays below 10%.
  EXPECT_LT(std::sqrt(num / den), 0.30);
}

TEST_F(DriverModelTest, DeviceRequiresMatchingTimeStep) {
  ckt::Circuit c;
  const int pad = c.node();
  c.add<core::DriverDevice>(pad, *model_, "01", 2e-9);
  c.add<ckt::Resistor>(pad, c.ground(), 50.0);
  ckt::TransientOptions topt;
  topt.dt = 10e-12;  // != Ts
  topt.t_stop = 1e-9;
  EXPECT_THROW(ckt::run_transient(c, topt), std::runtime_error);
}

TEST_F(DriverModelTest, DeviceValidation) {
  EXPECT_THROW(core::DriverDevice(1, *model_, "", 1e-9), std::invalid_argument);
  EXPECT_THROW(core::DriverDevice(1, *model_, "01", 0.0), std::invalid_argument);
}

TEST_F(DriverModelTest, SimulatorInputValidation) {
  EXPECT_THROW(core::simulate_driver_on_voltage(*model_, sig::Waveform(), 0, true),
               std::invalid_argument);
  EXPECT_THROW(core::simulate_driver_on_thevenin(*model_, "", 1e-9,
                                                 [](double) { return 0.0; }, 50.0, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(core::simulate_driver_on_thevenin(*model_, "01", 1e-9,
                                                 [](double) { return 0.0; }, -1.0, 1e-9),
               std::invalid_argument);
}
