// Tests of the emc::obs observability layer: the JSON value tree and its
// parser (every exported document must parse back), the sharded metric
// registry (deterministic merges across threads, kill switch), the span
// tracer (nesting, concurrent per-thread rings, overflow accounting,
// Chrome trace export) and the RunReport builder.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace emc;
using obs::Json;

// ------------------------------------------------------------------- Json

TEST(ObsJson, BuildAndReadBack) {
  auto doc = Json::object();
  doc.set("name", Json::string("run"))
      .set("count", Json::integer(42))
      .set("ratio", Json::number(0.5))
      .set("ok", Json::boolean(true))
      .set("nothing", Json::null());
  auto arr = Json::array();
  arr.push(Json::integer(1)).push(Json::integer(2));
  doc.set("items", std::move(arr));

  EXPECT_EQ(doc.at("name").as_string(), "run");
  EXPECT_EQ(doc.at("count").as_integer(), 42);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 0.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  EXPECT_EQ(doc.at("items").size(), 2u);
  EXPECT_EQ(doc.at("items")[1].as_integer(), 2);
  // as_double accepts integers (a parsed "3" may feed a double consumer)...
  EXPECT_DOUBLE_EQ(doc.at("count").as_double(), 42.0);
  // ...but the reverse narrows and throws.
  EXPECT_THROW(doc.at("ratio").as_integer(), std::logic_error);
  EXPECT_THROW(doc.at("name").as_double(), std::logic_error);

  EXPECT_EQ(doc.find("count"), &doc.at("count"));
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::logic_error);

  // Fields keep insertion order (reports must diff cleanly run to run).
  EXPECT_EQ(doc.fields()[0].first, "name");
  EXPECT_EQ(doc.fields()[5].first, "items");
}

TEST(ObsJson, DumpParseRoundTripIsExact) {
  auto doc = Json::object();
  doc.set("escapes", Json::string("a\"b\\c\nd\te\x01f"));
  doc.set("neg", Json::integer(-7));
  doc.set("big", Json::number(1.25e9));
  doc.set("empty_obj", Json::object());
  doc.set("empty_arr", Json::array());
  auto nested = Json::array();
  nested.push(Json::object().set("k", Json::boolean(false)));
  doc.set("nested", std::move(nested));

  const std::string text = doc.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump(), text);  // fixed point after one round trip
  EXPECT_EQ(back.at("escapes").as_string(), "a\"b\\c\nd\te\x01f");
  EXPECT_EQ(back.at("nested")[0].at("k").as_bool(), false);
}

TEST(ObsJson, ParserHandlesNumbersEscapesAndErrors) {
  EXPECT_EQ(Json::parse("42").as_integer(), 42);
  EXPECT_TRUE(Json::parse("42").kind() == Json::Kind::kInteger);
  EXPECT_TRUE(Json::parse("4.5").kind() == Json::Kind::kNumber);
  EXPECT_TRUE(Json::parse("1e3").kind() == Json::Kind::kNumber);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.125").as_double(), -0.125);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_TRUE(Json::parse("null").is_null());

  EXPECT_THROW(Json::parse(""), obs::JsonParseError);
  EXPECT_THROW(Json::parse("{"), obs::JsonParseError);
  EXPECT_THROW(Json::parse("tru"), obs::JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), obs::JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), obs::JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), obs::JsonParseError);  // trailing garbage
  try {
    Json::parse("[1, 2, oops]");
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_GE(e.offset(), 7u);  // points at the bad token, not the start
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(ObsJson, NonFiniteNumbersEmitNull) {
  auto doc = Json::array();
  doc.push(Json::number(std::numeric_limits<double>::infinity()));
  doc.push(Json::number(std::numeric_limits<double>::quiet_NaN()));
  const Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back[0].is_null());
  EXPECT_TRUE(back[1].is_null());
}

// ------------------------------------------------------------ MetricRegistry

TEST(ObsMetrics, CountersSumAcrossThreadsDeterministically) {
  obs::MetricRegistry reg;
  const auto id = reg.counter("test.count");
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) reg.add(id);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.snapshot().value("test.count"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, GaugeIsHighWatermarkAcrossThreads) {
  obs::MetricRegistry reg;
  const auto id = reg.gauge("test.peak");
  std::vector<std::thread> ts;
  for (int t = 1; t <= 4; ++t)
    ts.emplace_back([&, t] {
      reg.set_max(id, static_cast<std::uint64_t>(100 * t));
      reg.set_max(id, 1);  // lowering never sticks
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.snapshot().value("test.peak"), 400u);
}

TEST(ObsMetrics, HistogramBucketsCountSumMax) {
  obs::MetricRegistry reg;
  const auto id = reg.histogram("test.h");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 255ull}) reg.record(id, v);
  const auto snap = reg.snapshot();
  const auto* row = snap.find("test.h");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(row->value, 6u);  // count
  EXPECT_EQ(row->sum, 265u);
  EXPECT_EQ(row->max, 255u);
  ASSERT_EQ(row->buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(row->buckets[0], 1u);  // value 0
  EXPECT_EQ(row->buckets[1], 1u);  // value 1
  EXPECT_EQ(row->buckets[2], 2u);  // values 2, 3
  EXPECT_EQ(row->buckets[3], 1u);  // value 4
  EXPECT_EQ(row->buckets[8], 1u);  // value 255
}

TEST(ObsMetrics, SnapshotSortedRegistrationIdempotentKindMismatchThrows) {
  obs::MetricRegistry reg;
  reg.counter("zz.last");
  reg.counter("aa.first");
  const auto a = reg.counter("zz.last");  // idempotent: same metric
  reg.add(a, 5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_EQ(snap.rows[0].name, "aa.first");
  EXPECT_EQ(snap.rows[1].name, "zz.last");
  EXPECT_EQ(snap.value("zz.last"), 5u);
  EXPECT_EQ(snap.value("absent"), 0u);
  EXPECT_THROW(reg.gauge("zz.last"), std::logic_error);
}

TEST(ObsMetrics, KillSwitchStopsRecordingAndResetZeroes) {
  obs::MetricRegistry reg;
  const auto id = reg.counter("test.c");
  reg.add(id, 3);
  reg.set_enabled(false);
  reg.add(id, 100);
  reg.set_max(reg.gauge("test.g"), 7);
  EXPECT_EQ(reg.snapshot().value("test.c"), 3u);
  EXPECT_EQ(reg.snapshot().value("test.g"), 0u);
  reg.set_enabled(true);
  reg.add(id);
  EXPECT_EQ(reg.snapshot().value("test.c"), 4u);
  reg.reset();
  EXPECT_EQ(reg.snapshot().value("test.c"), 0u);
  // Names survive a reset — the next add lands in the same row.
  reg.add(id, 2);
  EXPECT_EQ(reg.snapshot().value("test.c"), 2u);
}

TEST(ObsMetrics, SnapshotToJsonShape) {
  obs::MetricRegistry reg;
  reg.add(reg.counter("c"), 9);
  reg.record(reg.histogram("h"), 4);
  reg.record(reg.histogram("h"), 4);
  const Json j = reg.snapshot().to_json();
  EXPECT_EQ(j.at("c").as_integer(), 9);
  EXPECT_EQ(j.at("h").at("count").as_integer(), 2);
  EXPECT_EQ(j.at("h").at("sum").as_integer(), 8);
  EXPECT_EQ(j.at("h").at("max").as_integer(), 4);
  EXPECT_DOUBLE_EQ(j.at("h").at("mean").as_double(), 4.0);
  // Parse-back of the snapshot document (it lands inside RunReports).
  EXPECT_EQ(Json::parse(j.dump()).at("c").as_integer(), 9);
}

TEST(ObsMetrics, GlobalHandlesRecordIntoGlobalRegistry) {
  static const obs::Counter c("test_obs.handle.count");
  static const obs::Gauge g("test_obs.handle.peak");
  static const obs::Histogram h("test_obs.handle.hist");
  obs::registry().reset();
  c.add();
  c.add(4);
  g.set_max(123);
  h.record(16);
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(snap.value("test_obs.handle.count"), 5u);
  EXPECT_EQ(snap.value("test_obs.handle.peak"), 123u);
  EXPECT_EQ(snap.value("test_obs.handle.hist"), 1u);
  obs::registry().reset();
}

// ------------------------------------------------------------------ Tracer

TEST(ObsTrace, SpansWithoutTracerAreInert) {
  // No tracer installed: spans must be safe no-ops at any nesting.
  obs::Span a("outer");
  { obs::Span b("inner"); }
  SUCCEED();
}

TEST(ObsTrace, RecordsNestedSpansWithDepthAndContainment) {
  obs::Tracer tracer;
  tracer.install();
  {
    obs::Span sweep("sweep");
    {
      obs::Span corner("corner");
      obs::Span transient("transient");
      (void)transient;
    }
    { obs::Span corner2("corner"); }
  }
  tracer.uninstall();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.threads(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);

  // Sorted (tid, start, -duration): the enclosing span leads.
  EXPECT_STREQ(events[0].name, "sweep");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "corner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "transient");
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_STREQ(events[3].name, "corner");

  // Interval containment: every child lies inside its parent.
  const auto& p = events[0];
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, p.ts_ns);
    EXPECT_LE(events[i].ts_ns + events[i].dur_ns, p.ts_ns + p.dur_ns);
  }
  EXPECT_GE(events[2].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[2].ts_ns + events[2].dur_ns, events[1].ts_ns + events[1].dur_ns);
}

TEST(ObsTrace, ConcurrentThreadsGetDistinctRings) {
  obs::Tracer tracer;
  tracer.install();
  constexpr int kThreads = 4, kSpans = 50;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::Span outer("outer");
        obs::Span inner("inner");
        (void)inner;
      }
    });
  for (auto& t : ts) t.join();
  tracer.uninstall();

  EXPECT_EQ(tracer.threads(), static_cast<std::size_t>(kThreads));
  const auto events = tracer.events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kSpans * 2);
  // Per-thread streams stay internally nested even under concurrency.
  std::vector<int> outers(kThreads, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.tid, static_cast<std::uint32_t>(kThreads));
    if (std::string(e.name) == "outer") {
      EXPECT_EQ(e.depth, 0u);
      ++outers[e.tid];
    } else {
      EXPECT_EQ(e.depth, 1u);
    }
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(outers[t], kSpans);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  static const char* kNames[] = {"s0", "s1", "s2", "s3", "s4",
                                 "s5", "s6", "s7", "s8", "s9"};
  obs::Tracer tracer(/*ring_capacity=*/4);
  tracer.install();
  for (const char* name : kNames) { obs::Span s(name); }
  tracer.uninstall();

  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest events survive, in order.
  EXPECT_STREQ(events[0].name, "s6");
  EXPECT_STREQ(events[1].name, "s7");
  EXPECT_STREQ(events[2].name, "s8");
  EXPECT_STREQ(events[3].name, "s9");
}

TEST(ObsTrace, SingleInstallContractAndReinstall) {
  obs::Tracer a;
  a.install();
  EXPECT_TRUE(a.installed());
  obs::Tracer b;
  EXPECT_THROW(b.install(), std::logic_error);
  a.uninstall();
  EXPECT_FALSE(a.installed());
  b.install();  // slot freed
  { obs::Span s("into_b"); }
  b.uninstall();
  EXPECT_EQ(b.events().size(), 1u);
  EXPECT_EQ(a.events().size(), 0u);
}

TEST(ObsTrace, ChromeTraceExportParsesBackWithCorrectShape) {
  obs::Tracer tracer;
  tracer.install();
  {
    obs::Span outer("phase");
    { obs::Span inner("work"); }
  }
  tracer.uninstall();

  const Json doc = Json::parse(tracer.chrome_trace_json().dump());
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events[i];
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("pid").as_integer(), 1);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
  }
  EXPECT_EQ(events[0].at("name").as_string(), "phase");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_integer(), 0);

  const std::string path = testing::TempDir() + "test_obs.trace.json";
  ASSERT_TRUE(tracer.write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_EQ(Json::parse(text).at("traceEvents").size(), 2u);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- RunReport

TEST(ObsReport, SectionsSettersMetricsAndTraceSummary) {
  obs::MetricRegistry reg;
  reg.add(reg.counter("runs"), 1);

  obs::Tracer tracer;
  tracer.install();
  { obs::Span s("phase"); }
  tracer.uninstall();

  obs::RunReport report("demo");
  report.set("solver", "kind", std::string("sparse"));
  report.set("solver", "newton_iters", 42L);
  report.set("solver", "converged", true);
  report.set("timing", "wall_s", 1.5);
  report.set("solver", "restamps", 0L);  // lands in the existing section
  report.add_metrics(reg.snapshot());
  report.add_trace_summary(tracer, "demo.trace.json");

  const Json j = report.to_json();
  EXPECT_EQ(j.at("report").as_string(), "demo");
  EXPECT_EQ(j.at("schema_version").as_integer(), 2);
  EXPECT_GT(j.at("host").at("cpus").as_integer(), 0);
  EXPECT_EQ(j.at("solver").at("kind").as_string(), "sparse");
  EXPECT_EQ(j.at("solver").at("newton_iters").as_integer(), 42);
  EXPECT_EQ(j.at("solver").at("restamps").as_integer(), 0);
  EXPECT_TRUE(j.at("solver").at("converged").as_bool());
  EXPECT_DOUBLE_EQ(j.at("timing").at("wall_s").as_double(), 1.5);
  EXPECT_EQ(j.at("metrics").at("runs").as_integer(), 1);
  EXPECT_EQ(j.at("trace").at("events").as_integer(), 1);
  EXPECT_EQ(j.at("trace").at("threads").as_integer(), 1);
  EXPECT_EQ(j.at("trace").at("file").as_string(), "demo.trace.json");

  // Section order is creation order after the automatic host section:
  // solver before timing.
  EXPECT_EQ(j.fields()[2].first, "host");
  EXPECT_EQ(j.fields()[3].first, "solver");
  EXPECT_EQ(j.fields()[4].first, "timing");

  const std::string path = testing::TempDir() + "test_obs.report.json";
  ASSERT_TRUE(report.write(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_EQ(Json::parse(text).at("report").as_string(), "demo");
  std::remove(path.c_str());
}

}  // namespace
