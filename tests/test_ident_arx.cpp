#include <gtest/gtest.h>

#include <cmath>

#include "ident/arx.hpp"
#include "signal/sources.hpp"

using namespace emc::ident;
using emc::sig::Waveform;

namespace {

/// Generate the response of a known ARX system to an input sequence.
std::vector<double> run_system(const std::vector<double>& v, const std::vector<double>& b,
                               const std::vector<double>& a) {
  std::vector<double> i(v.size(), 0.0);
  const std::size_t h = std::max(b.size() - 1, a.size());
  for (std::size_t k = h; k < v.size(); ++k) {
    double y = 0.0;
    for (std::size_t j = 0; j < b.size(); ++j) y += b[j] * v[k - j];
    for (std::size_t j = 0; j < a.size(); ++j) y += a[j] * i[k - 1 - j];
    i[k] = y;
  }
  return i;
}

std::vector<double> multilevel_input(std::size_t n, std::uint64_t seed) {
  emc::sig::Lcg rng(seed);
  std::vector<double> v(n);
  double level = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k % 17 == 0) level = 2.0 * rng.uniform() - 1.0;
    v[k] = level;
  }
  return v;
}

}  // namespace

TEST(ArxFit, RecoversKnownCoefficients) {
  const std::vector<double> b_true{0.5, -0.2, 0.1};
  const std::vector<double> a_true{1.2, -0.5};
  const auto v = multilevel_input(800, 5);
  const auto i = run_system(v, b_true, a_true);

  const auto m = fit_arx(Waveform(0, 1, v), Waveform(0, 1, i), 2, 2);
  ASSERT_EQ(m.b.size(), 3u);
  ASSERT_EQ(m.a.size(), 2u);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(m.b[j], b_true[j], 1e-6);
  for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(m.a[j], a_true[j], 1e-6);
}

TEST(ArxFit, FirstOrderLowpassStepResponse) {
  // Discrete RC: i(k) = 0.9 i(k-1) + 0.1 v(k); step input settles at 1.
  const std::vector<double> b_true{0.1};
  const std::vector<double> a_true{0.9};
  auto v = multilevel_input(600, 9);
  const auto i = run_system(v, b_true, a_true);
  const auto m = fit_arx(Waveform(0, 1, v), Waveform(0, 1, i), 1, 0);

  EXPECT_NEAR(m.dc_gain(), 1.0, 1e-9);
  std::vector<double> step(100, 1.0);
  const auto out = simulate_arx(m, step);
  EXPECT_NEAR(out.back(), 1.0, 1e-4);
  EXPECT_LT(out[2], 0.5);  // rises gradually, not instantly
}

TEST(ArxFit, FreeRunTracksFreshData) {
  const std::vector<double> b_true{0.3, 0.05};
  const std::vector<double> a_true{0.6};
  const auto v = multilevel_input(500, 21);
  const auto i = run_system(v, b_true, a_true);
  const auto m = fit_arx(Waveform(0, 1, v), Waveform(0, 1, i), 1, 1);

  const auto v2 = multilevel_input(300, 77);
  const auto i2 = run_system(v2, b_true, a_true);
  const auto sim = simulate_arx(m, v2);
  for (std::size_t k = 10; k < v2.size(); ++k) EXPECT_NEAR(sim[k], i2[k], 1e-6);
}

TEST(ArxFit, CapacitorLikeDifferentiator) {
  // A discrete capacitor: i(k) = C/dt * (v(k) - v(k-1)) is exactly ARX
  // with b = [C/dt, -C/dt], a = [] -- the structure used for receivers.
  const double c_over_dt = 4.0;
  const auto v = multilevel_input(400, 13);
  std::vector<double> i(v.size(), 0.0);
  for (std::size_t k = 1; k < v.size(); ++k) i[k] = c_over_dt * (v[k] - v[k - 1]);
  const auto m = fit_arx(Waveform(0, 1, v), Waveform(0, 1, i), 0, 1);
  ASSERT_EQ(m.b.size(), 2u);
  EXPECT_NEAR(m.b[0], c_over_dt, 1e-8);
  EXPECT_NEAR(m.b[1], -c_over_dt, 1e-8);
  EXPECT_NEAR(m.dc_gain(), 0.0, 1e-8);
}

TEST(ArxModel, PredictUsesHistoriesNewestFirst) {
  ArxModel m;
  m.b = {2.0, 1.0};
  m.a = {0.5};
  // i(k) = 2 v(k) + 1 v(k-1) + 0.5 i(k-1).
  const double y = m.predict(std::vector<double>{3.0, 4.0}, std::vector<double>{10.0});
  EXPECT_DOUBLE_EQ(y, 2.0 * 3.0 + 1.0 * 4.0 + 0.5 * 10.0);
}

TEST(ArxFit, Validation) {
  Waveform v(0, 1, {1, 2, 3});
  Waveform i(0, 1, {1, 2});
  EXPECT_THROW(fit_arx(v, i, 1, 1), std::invalid_argument);
  Waveform i3(0, 1, {1, 2, 3});
  EXPECT_THROW(fit_arx(v, i3, -1, 0), std::invalid_argument);
  EXPECT_THROW(fit_arx(v, i3, 2, 2), std::invalid_argument);  // too short
}

TEST(ArxModel, DcGainGuardsMarginalSystems) {
  ArxModel m;
  m.b = {1.0};
  m.a = {1.0};  // integrator: 1 - sum(a) = 0
  EXPECT_THROW(m.dc_gain(), std::runtime_error);
}
