// Tests of the report-level observability tooling: the RunReport host
// section and full-schema round-trip, merge_run_reports (the N-way
// shard-merge rules), check_baseline / diff_reports verdicts, and
// resolve_path addressing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/compare.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace {

using namespace emc;
using obs::CompareResult;
using obs::Json;
using obs::Verdict;

// ---------------------------------------------------------------- reports

TEST(ObsReportSchema, HostSectionIsAttachedAtConstruction) {
  obs::RunReport report("host_probe");
  const Json doc = report.to_json();

  EXPECT_EQ(doc.at("schema_version").as_integer(), 2);
  const Json& host = doc.at("host");
  EXPECT_GT(host.at("cpus").as_integer(), 0);
  EXPECT_FALSE(host.at("os").as_string().empty());
  EXPECT_FALSE(host.at("compiler").as_string().empty());
  const long bits = host.at("pointer_bits").as_integer();
  EXPECT_TRUE(bits == 32 || bits == 64);
  // The free function and the embedded section agree.
  EXPECT_EQ(obs::host_info_json().dump(), host.dump());
}

TEST(ObsReportSchema, FullSchemaRoundTripIsByteIdentical) {
  // Exercise every section the schema names, with real producers.
  obs::MetricRegistry reg;
  reg.add(reg.counter("sweep.runs"), 3);
  reg.set_max(reg.gauge("stream.peak_bytes"), 4096);
  reg.record(reg.histogram("corner.wall_us"), 250);
  reg.record(reg.histogram("corner.wall_us"), 900);

  obs::Tracer tracer;
  tracer.install();
  {
    obs::Span sweep("sweep");
    {
      obs::Span corner("corner");
      {
        obs::Span transient("transient");
        { obs::Span newton("newton_step"); }
      }
    }
  }
  tracer.uninstall();

  obs::ResourceSampler sampler({/*interval_ms=*/5, /*ring_capacity=*/64});
  sampler.start();
  sampler.stop();

  obs::RunReport report("roundtrip");
  report.set("config", "jobs", static_cast<long>(2));
  report.set("solver", "kind", std::string("sparse"));
  report.add_metrics(reg.snapshot());
  report.add_trace_summary(tracer, "roundtrip.trace.json");
  report.add_profile(obs::Profile::build(tracer));
  report.add_resources(sampler);

  const std::string dumped = report.to_json().dump();
  const Json parsed = Json::parse(dumped);
  EXPECT_EQ(parsed.dump(), dumped);  // parse -> dump is the identity

  // Gauges carry the v2 {"peak": v} shape through the round trip.
  EXPECT_EQ(parsed.at("metrics").at("stream.peak_bytes").at("peak").as_integer(),
            4096);
  EXPECT_EQ(parsed.at("metrics").at("sweep.runs").as_integer(), 3);

  // The profile tree preserves more than three nesting levels:
  // profile -> tree -> children -> children -> children.
  const Json& sweep_node = parsed.at("profile").at("tree")[0];
  EXPECT_EQ(sweep_node.at("name").as_string(), "sweep");
  const Json& newton_node = sweep_node.at("children")[0]
                                .at("children")[0]
                                .at("children")[0];
  EXPECT_EQ(newton_node.at("name").as_string(), "newton_step");
}

// ------------------------------------------------------------------ merge

TEST(ObsMerge, RequiresAtLeastOneReport) {
  EXPECT_THROW(obs::merge_run_reports({}), std::invalid_argument);
}

TEST(ObsMerge, CountersSumGaugesMaxHistogramsAdd) {
  const Json a = Json::parse(R"({
    "report": "shard", "schema_version": 2,
    "metrics": {"sweep.corners": 3, "stream.peak": {"peak": 500},
                "h": {"count": 2, "sum": 10, "max": 8, "mean": 5.0,
                      "pow2_buckets": [0, 1, 1]}}})");
  const Json b = Json::parse(R"({
    "report": "shard", "schema_version": 2,
    "metrics": {"sweep.corners": 5, "stream.peak": {"peak": 900},
                "h": {"count": 1, "sum": 16, "max": 16, "mean": 16.0,
                      "pow2_buckets": [0, 0, 0, 0, 1]}}})");

  const Json m = obs::merge_run_reports({a, b});
  EXPECT_EQ(m.at("report").as_string(), "shard");
  EXPECT_EQ(m.at("merged_from").as_integer(), 2);
  const Json& mm = m.at("metrics");
  EXPECT_EQ(mm.at("sweep.corners").as_integer(), 8);       // counters sum
  EXPECT_EQ(mm.at("stream.peak").at("peak").as_integer(), 900);  // gauges max
  const Json& h = mm.at("h");                              // histograms add
  EXPECT_EQ(h.at("count").as_integer(), 3);
  EXPECT_EQ(h.at("sum").as_integer(), 26);
  EXPECT_EQ(h.at("max").as_integer(), 16);
  EXPECT_NEAR(h.at("mean").as_double(), 26.0 / 3.0, 1e-12);
  ASSERT_EQ(h.at("pow2_buckets").size(), 5u);  // widened to the larger set
  EXPECT_EQ(h.at("pow2_buckets")[1].as_integer(), 1);
  EXPECT_EQ(h.at("pow2_buckets")[4].as_integer(), 1);
}

TEST(ObsMerge, WorkersConcatenateAndRedealIds) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2,
    "workers": {"pool": [{"worker": 0, "items": 4}, {"worker": 1, "items": 2}]}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2,
    "workers": {"pool": [{"worker": 0, "items": 6}]}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& pool = m.at("workers").at("pool");
  ASSERT_EQ(pool.size(), 3u);
  for (std::size_t w = 0; w < pool.size(); ++w)
    EXPECT_EQ(pool[w].at("worker").as_integer(), static_cast<long>(w));
  EXPECT_EQ(pool[2].at("items").as_integer(), 6);  // document order kept
}

TEST(ObsMerge, TraceSummariesCombineAndPluralizeFiles) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2,
    "trace": {"threads": 2, "events": 100, "dropped_events": 0, "file": "a.json"}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2,
    "trace": {"threads": 1, "events": 50, "dropped_events": 3, "file": "b.json"}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& t = m.at("trace");
  EXPECT_EQ(t.at("threads").as_integer(), 3);
  EXPECT_EQ(t.at("events").as_integer(), 150);
  EXPECT_EQ(t.at("dropped_events").as_integer(), 3);
  EXPECT_EQ(t.find("file"), nullptr);  // renamed to the plural
  ASSERT_EQ(t.at("files").size(), 2u);
  EXPECT_EQ(t.at("files")[0].as_string(), "a.json");
  EXPECT_EQ(t.at("files")[1].as_string(), "b.json");
}

TEST(ObsMerge, ContextFieldsPassEqualAndListDisagreements) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2,
    "config": {"jobs": 2, "grid": "4x3x2"}, "host": {"cpus": 8}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2,
    "config": {"jobs": 4, "grid": "4x3x2"}, "host": {"cpus": 8}})");

  const Json m = obs::merge_run_reports({a, b});
  // Agreeing fields pass through; disagreeing ones become per-doc lists.
  EXPECT_EQ(m.at("config").at("grid").as_string(), "4x3x2");
  ASSERT_TRUE(m.at("config").at("jobs").is_array());
  EXPECT_EQ(m.at("config").at("jobs")[0].as_integer(), 2);
  EXPECT_EQ(m.at("config").at("jobs")[1].as_integer(), 4);
  EXPECT_EQ(m.at("host").at("cpus").as_integer(), 8);
}

TEST(ObsMerge, SolverCountersSumAndKindMixes) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2,
    "solver": {"kind": "sparse", "newton_iters": 100, "steps": 40}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2,
    "solver": {"kind": "dense", "newton_iters": 50, "steps": 20}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& s = m.at("solver");
  EXPECT_EQ(s.at("kind").as_string(), "mixed");
  EXPECT_EQ(s.at("newton_iters").as_integer(), 150);
  EXPECT_EQ(s.at("steps").as_integer(), 60);

  const Json same = obs::merge_run_reports({a, a});
  EXPECT_EQ(same.at("solver").at("kind").as_string(), "sparse");
}

TEST(ObsMerge, SweepSummariesMergeLikeTheUnshardedRun) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2, "sweep": {
    "summary": {"corners": 4, "passed": 3, "failed": 1,
                "worst_margin_db": -2.5, "worst_label": "corner/1",
                "per_axis_worst": [{"axis": "vdd", "worst_by_value": [
                  {"value": "0.9", "worst_margin_db": -2.5},
                  {"value": "1.1", "worst_margin_db": 1.0}]}],
                "margin_histogram_db": {"lo_db": -10.0, "hi_db": 10.0,
                                        "counts": [1, 3]}},
    "transients_reused": 0}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2, "sweep": {
    "summary": {"corners": 4, "passed": 2, "failed": 2,
                "worst_margin_db": -5.0, "worst_label": "corner/7",
                "per_axis_worst": [{"axis": "vdd", "worst_by_value": [
                  {"value": "0.9", "worst_margin_db": -1.0},
                  {"value": "1.1", "worst_margin_db": -5.0}]}],
                "margin_histogram_db": {"lo_db": -10.0, "hi_db": 10.0,
                                        "counts": [2, 2]}},
    "transients_reused": 1}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& sweep = m.at("sweep");
  const Json& sum = sweep.at("summary");
  EXPECT_EQ(sum.at("corners").as_integer(), 8);
  EXPECT_EQ(sum.at("passed").as_integer(), 5);
  EXPECT_EQ(sum.at("failed").as_integer(), 3);
  // The globally worst document wins verbatim — margin and label together.
  EXPECT_DOUBLE_EQ(sum.at("worst_margin_db").as_double(), -5.0);
  EXPECT_EQ(sum.at("worst_label").as_string(), "corner/7");
  // Per-axis rows take the min margin per value across documents.
  const Json& vdd = sum.at("per_axis_worst")[0].at("worst_by_value");
  EXPECT_DOUBLE_EQ(vdd[0].at("worst_margin_db").as_double(), -2.5);
  EXPECT_DOUBLE_EQ(vdd[1].at("worst_margin_db").as_double(), -5.0);
  // Histogram counts add bucket-wise over identical edges.
  EXPECT_EQ(sum.at("margin_histogram_db").at("counts")[0].as_integer(), 3);
  EXPECT_EQ(sum.at("margin_histogram_db").at("counts")[1].as_integer(), 5);
  EXPECT_EQ(sweep.at("transients_reused").as_integer(), 1);
}

TEST(ObsMerge, ProfileSectionsMergeTreesByName) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2, "profile": {
    "truncated": false, "dropped_events": 0, "threads": 1, "events": 2,
    "total_ns": 1000,
    "spans": {"outer": {"count": 1, "total_ns": 1000, "self_ns": 600,
                        "min_ns": 1000, "max_ns": 1000, "mean_ns": 1000.0,
                        "pow2_buckets": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]},
              "inner": {"count": 1, "total_ns": 400, "self_ns": 400,
                        "min_ns": 400, "max_ns": 400, "mean_ns": 400.0,
                        "pow2_buckets": [0, 0, 0, 0, 0, 0, 0, 0, 0, 1]}},
    "tree": [{"name": "outer", "count": 1, "total_ns": 1000, "self_ns": 600,
              "children": [{"name": "inner", "count": 1, "total_ns": 400,
                            "self_ns": 400}]}]}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2, "profile": {
    "truncated": true, "dropped_events": 5, "threads": 1, "events": 1,
    "total_ns": 700,
    "spans": {"outer": {"count": 1, "total_ns": 700, "self_ns": 700,
                        "min_ns": 700, "max_ns": 700, "mean_ns": 700.0,
                        "pow2_buckets": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]}},
    "tree": [{"name": "outer", "count": 1, "total_ns": 700,
              "self_ns": 700}]}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& p = m.at("profile");
  EXPECT_TRUE(p.at("truncated").as_bool());  // any truncated shard taints
  EXPECT_EQ(p.at("dropped_events").as_integer(), 5);
  EXPECT_EQ(p.at("events").as_integer(), 3);
  EXPECT_EQ(p.at("total_ns").as_integer(), 1700);

  const Json& outer = p.at("spans").at("outer");
  EXPECT_EQ(outer.at("count").as_integer(), 2);
  EXPECT_EQ(outer.at("total_ns").as_integer(), 1700);
  EXPECT_EQ(outer.at("self_ns").as_integer(), 1300);
  EXPECT_EQ(outer.at("min_ns").as_integer(), 700);
  EXPECT_EQ(outer.at("max_ns").as_integer(), 1000);
  // "inner" only exists in one shard; it merges through unchanged.
  EXPECT_EQ(p.at("spans").at("inner").at("count").as_integer(), 1);

  const Json& tree_outer = p.at("tree")[0];
  EXPECT_EQ(tree_outer.at("count").as_integer(), 2);
  EXPECT_EQ(tree_outer.at("total_ns").as_integer(), 1700);
  ASSERT_EQ(tree_outer.at("children").size(), 1u);
  EXPECT_EQ(tree_outer.at("children")[0].at("name").as_string(), "inner");
}

TEST(ObsMerge, ResourceSectionsSumCpuAndMaxRss) {
  const Json a = Json::parse(R"({"report": "r", "schema_version": 2,
    "resources": {"samples": 10, "dropped_samples": 0, "peak_rss_bytes": 1000,
                  "rss_is_peak_fallback": false, "cpu_user_s": 1.5,
                  "cpu_sys_s": 0.25, "wall_s": 2.0,
                  "rss_series": [{"t_ms": 0.0, "rss_bytes": 900}]}})");
  const Json b = Json::parse(R"({"report": "r", "schema_version": 2,
    "resources": {"samples": 4, "dropped_samples": 1, "peak_rss_bytes": 3000,
                  "rss_is_peak_fallback": false, "cpu_user_s": 0.5,
                  "cpu_sys_s": 0.25, "wall_s": 1.0,
                  "rss_series": [{"t_ms": 0.0, "rss_bytes": 2900}]}})");

  const Json m = obs::merge_run_reports({a, b});
  const Json& r = m.at("resources");
  EXPECT_EQ(r.at("samples").as_integer(), 14);
  EXPECT_EQ(r.at("peak_rss_bytes").as_integer(), 3000);
  EXPECT_DOUBLE_EQ(r.at("cpu_user_s").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(r.at("wall_s").as_double(), 2.0);  // max, not sum
  EXPECT_EQ(r.at("rss_series").size(), 0u);  // per-process series dropped
}

// --------------------------------------------------------------- baseline

Json spec_row(const std::string& path, const std::string& value_json,
              double rel_tol, const std::string& dir) {
  return Json::parse(R"({"path": ")" + path + R"(", "value": )" + value_json +
                     R"(, "rel_tol": )" + std::to_string(rel_tol) +
                     R"(, "dir": ")" + dir + R"("})");
}

Json make_spec(std::vector<Json> rows) {
  Json spec = Json::object();
  spec.set("baseline", Json::string("test"));
  spec.set("schema_version", Json::integer(1));
  Json arr = Json::array();
  for (Json& r : rows) arr.push(std::move(r));
  spec.set("metrics", std::move(arr));
  return spec;
}

TEST(ObsBaseline, UpperBoundVerdicts) {
  const Json current = Json::parse(
      R"({"scenarios": [{"name": "scan", "wall_s": 0.11}], "gate": true})");

  // Within tolerance -> PASS.
  auto res = obs::check_baseline(
      make_spec({spec_row("scenarios[scan].wall_s", "0.1", 0.25, "upper")}),
      current);
  EXPECT_TRUE(res.pass);
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0].verdict, Verdict::kPass);

  // Above the bound -> REGRESS, and pass goes false.
  res = obs::check_baseline(
      make_spec({spec_row("scenarios[scan].wall_s", "0.05", 0.25, "upper")}),
      current);
  EXPECT_FALSE(res.pass);
  EXPECT_EQ(res.regressed, 1u);
  EXPECT_EQ(res.rows[0].verdict, Verdict::kRegress);

  // Far below an upper bound -> IMPROVED, still a pass.
  res = obs::check_baseline(
      make_spec({spec_row("scenarios[scan].wall_s", "1.0", 0.25, "upper")}),
      current);
  EXPECT_TRUE(res.pass);
  EXPECT_EQ(res.improved, 1u);
  EXPECT_EQ(res.rows[0].verdict, Verdict::kImproved);

  // A path the report doesn't have -> MISSING, fails the check.
  res = obs::check_baseline(
      make_spec({spec_row("scenarios[gone].wall_s", "0.1", 0.25, "upper")}),
      current);
  EXPECT_FALSE(res.pass);
  EXPECT_EQ(res.missing, 1u);
}

TEST(ObsBaseline, LowerEqualAndScaledTolerances) {
  const Json current =
      Json::parse(R"({"throughput": 50.0, "kind": "sparse", "gates": 3})");

  // dir lower: falling below the band regresses.
  auto res = obs::check_baseline(
      make_spec({spec_row("throughput", "100.0", 0.25, "lower")}), current);
  EXPECT_EQ(res.rows[0].verdict, Verdict::kRegress);

  // dir equal compares exactly, for strings and integers alike.
  res = obs::check_baseline(make_spec({spec_row("kind", R"("sparse")", 0.0, "equal"),
                                       spec_row("gates", "3", 0.0, "equal")}),
                            current);
  EXPECT_TRUE(res.pass);
  res = obs::check_baseline(make_spec({spec_row("gates", "4", 0.0, "equal")}),
                            current);
  EXPECT_FALSE(res.pass);

  // tol_scale widens the band at check time (the sanitize-job knob):
  // 100 +/- 25% regresses at 50, but passes once scaled 4x (rel 1.0 ->
  // lower bound 100/2 = 50).
  const Json spec = make_spec({spec_row("throughput", "100.0", 0.25, "both")});
  EXPECT_FALSE(obs::check_baseline(spec, current).pass);
  EXPECT_TRUE(obs::check_baseline(spec, current, 4.0).pass);
  EXPECT_THROW(obs::check_baseline(spec, current, 0.0), std::invalid_argument);
}

TEST(ObsBaseline, NegativeBaselinesKeepTheBandUpright) {
  // dB margins and sentinel values are negative; the tolerance band must
  // still put hi above lo (a value equal to its baseline always passes).
  const Json current = Json::parse(R"({"margin_db": -2.5, "sentinel": -1})");
  auto res = obs::check_baseline(
      make_spec({spec_row("margin_db", "-2.5", 0.25, "both"),
                 spec_row("sentinel", "-1", 0.25, "both")}),
      current);
  EXPECT_TRUE(res.pass);

  // A margin that collapsed from -2.5 to -4.0 is outside the 25% band.
  const Json worse = Json::parse(R"({"margin_db": -4.0, "sentinel": -1})");
  res = obs::check_baseline(
      make_spec({spec_row("margin_db", "-2.5", 0.25, "both")}), worse);
  EXPECT_FALSE(res.pass);
}

TEST(ObsBaseline, SpecValidationThrows) {
  const Json current = Json::parse(R"({"x": 1})");
  EXPECT_THROW(obs::check_baseline(Json::parse(R"({"baseline": "b"})"), current),
               std::invalid_argument);
  EXPECT_THROW(
      obs::check_baseline(
          make_spec({spec_row("x", "1", 0.25, "sideways")}), current),
      std::invalid_argument);
}

TEST(ObsDiff, WalksEveryLeafOfTheBaseline) {
  const Json base = Json::parse(R"({
    "solver": {"kind": "sparse", "newton_iters": 100},
    "scenarios": [{"name": "scan", "wall_s": 0.1}]})");
  const Json same = Json::parse(R"({
    "solver": {"kind": "sparse", "newton_iters": 110},
    "scenarios": [{"name": "scan", "wall_s": 0.09}]})");
  const Json worse = Json::parse(R"({
    "solver": {"kind": "dense", "newton_iters": 100},
    "scenarios": [{"name": "scan", "wall_s": 0.5}]})");

  const CompareResult ok = obs::diff_reports(base, same, 0.25);
  EXPECT_TRUE(ok.pass);
  EXPECT_EQ(ok.rows.size(), 4u);  // one row per baseline leaf

  const CompareResult bad = obs::diff_reports(base, worse, 0.25);
  EXPECT_FALSE(bad.pass);
  EXPECT_EQ(bad.regressed, 2u);  // the kind string and the 5x wall time
  // Rows carry name-addressed paths, and format() summarizes them.
  bool saw_scan = false;
  for (const auto& row : bad.rows)
    if (row.path == "scenarios[scan].wall_s") {
      saw_scan = true;
      EXPECT_EQ(row.verdict, Verdict::kRegress);
    }
  EXPECT_TRUE(saw_scan);
  EXPECT_NE(bad.format().find("REGRESS"), std::string::npos);
  EXPECT_FALSE(bad.to_json().at("pass").as_bool());
}

TEST(ObsResolvePath, DottedIndexAndNameSelectors) {
  const Json doc = Json::parse(R"({
    "a": {"b": {"c": 7}},
    "rows": [{"name": "first", "v": 1}, {"name": "second", "v": 2}],
    "axes": [{"axis": "vdd", "worst_by_value": [{"value": "0.9", "m": -1.5}]}]})");

  ASSERT_NE(obs::resolve_path(doc, "a.b.c"), nullptr);
  EXPECT_EQ(obs::resolve_path(doc, "a.b.c")->as_integer(), 7);
  EXPECT_EQ(obs::resolve_path(doc, "rows[1].v")->as_integer(), 2);       // index
  EXPECT_EQ(obs::resolve_path(doc, "rows[second].v")->as_integer(), 2);  // name
  // Objects also address by "axis" and "value" keys, nested freely.
  EXPECT_DOUBLE_EQ(
      obs::resolve_path(doc, "axes[vdd].worst_by_value[0.9].m")->as_double(),
      -1.5);
  EXPECT_EQ(obs::resolve_path(doc, "a.b.missing"), nullptr);
  EXPECT_EQ(obs::resolve_path(doc, "rows[9].v"), nullptr);
  EXPECT_EQ(obs::resolve_path(doc, "rows[third].v"), nullptr);
  EXPECT_EQ(obs::resolve_path(doc, "a[0]"), nullptr);  // [] on a non-array
}

}  // namespace
