#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "signal/csv.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

using namespace emc::sig;

TEST(Waveform, BasicAccessors) {
  Waveform w(1.0, 0.5, {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(w.t0(), 1.0);
  EXPECT_DOUBLE_EQ(w.dt(), 0.5);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.time_at(2), 2.0);
  EXPECT_DOUBLE_EQ(w.t_end(), 2.0);
}

TEST(Waveform, RejectsNonPositiveDt) {
  EXPECT_THROW(Waveform(0.0, 0.0, {1.0}), std::invalid_argument);
}

TEST(Waveform, LinearInterpolationAndClamping) {
  Waveform w(0.0, 1.0, {0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(w.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value_at(1.75), 3.5);
  EXPECT_DOUBLE_EQ(w.value_at(-1.0), 0.0);  // clamp left
  EXPECT_DOUBLE_EQ(w.value_at(9.0), 4.0);   // clamp right
}

TEST(Waveform, SampleFunction) {
  auto w = Waveform::sample([](double t) { return 2.0 * t; }, 0.0, 0.25, 5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[3], 1.5);
}

TEST(Waveform, ResampleRoundTrip) {
  auto w = Waveform::sample([](double t) { return std::sin(t); }, 0.0, 0.01, 200);
  auto r = w.resampled(0.0, 0.02, 100);
  for (std::size_t k = 0; k < r.size(); ++k)
    EXPECT_NEAR(r[k], std::sin(r.time_at(k)), 1e-3);
}

TEST(Waveform, SliceAndArithmetic) {
  Waveform w(0.0, 1.0, {1.0, 2.0, 3.0, 4.0});
  auto s = w.slice(1, 2);
  EXPECT_DOUBLE_EQ(s.t0(), 1.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);

  Waveform a(0.0, 1.0, {1.0, 1.0});
  Waveform b(0.0, 1.0, {2.0, 3.0});
  auto d = b - a;
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_THROW(w += a, std::invalid_argument);
}

TEST(Waveform, MinMax) {
  Waveform w(0.0, 1.0, {-1.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(w.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(w.max_value(), 5.0);
}

TEST(Pwl, InterpolatesBetweenBreakpoints) {
  Pwl p({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(p(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(p(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p(2.0), 2.0);
  EXPECT_DOUBLE_EQ(p(10.0), 2.0);
}

TEST(Pwl, RejectsUnorderedBreakpoints) {
  EXPECT_THROW(Pwl({{1.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);
  Pwl p;
  p.add(1.0, 0.0);
  EXPECT_THROW(p.add(0.5, 0.0), std::invalid_argument);
}

TEST(Sources, TrapezoidShape) {
  auto p = trapezoid(/*base=*/0.0, /*amp=*/3.0, /*delay=*/1.0, /*rise=*/0.5, /*width=*/2.0,
                     /*fall=*/0.5);
  EXPECT_DOUBLE_EQ(p(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p(1.25), 1.5);  // mid-rise
  EXPECT_DOUBLE_EQ(p(2.0), 3.0);   // flat top
  EXPECT_DOUBLE_EQ(p(3.75), 1.5);  // mid-fall
  EXPECT_DOUBLE_EQ(p(5.0), 0.0);
}

TEST(Sources, BitStreamLevelsAndEdges) {
  auto p = bit_stream("010", /*bit_time=*/1.0, /*t_edge=*/0.1, /*v_low=*/0.0, /*v_high=*/2.0);
  EXPECT_NEAR(p(0.5), 0.0, 1e-12);
  EXPECT_NEAR(p(1.05), 1.0, 1e-9);  // mid rising edge at t=1
  EXPECT_NEAR(p(1.5), 2.0, 1e-12);
  EXPECT_NEAR(p(2.05), 1.0, 1e-9);  // mid falling edge at t=2
  EXPECT_NEAR(p(2.5), 0.0, 1e-12);
}

TEST(Sources, BitStreamValidation) {
  EXPECT_THROW(bit_stream("", 1.0, 0.1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(bit_stream("012", 1.0, 0.1, 0.0, 1.0), std::invalid_argument);
}

TEST(Sources, LcgDeterministicAndUniform) {
  Lcg a(7), b(7);
  double mean = 0.0;
  for (int k = 0; k < 1000; ++k) {
    const double ua = a.uniform();
    EXPECT_DOUBLE_EQ(ua, b.uniform());
    EXPECT_GE(ua, 0.0);
    EXPECT_LT(ua, 1.0);
    mean += ua;
  }
  mean /= 1000.0;
  EXPECT_NEAR(mean, 0.5, 0.05);
}

TEST(Sources, MultilevelSignalStaysInRangeAndMoves) {
  auto p = multilevel_signal(-0.5, 3.8, 8, 40, 2e-9, 0.2e-9, 11);
  int distinct_moves = 0;
  double prev = p(1e-9);
  for (int k = 1; k < 40; ++k) {
    const double t = 1e-9 + 2.2e-9 * static_cast<double>(k);
    const double v = p(t);
    EXPECT_GE(v, -0.5 - 1e-12);
    EXPECT_LE(v, 3.8 + 1e-12);
    if (std::abs(v - prev) > 1e-9) ++distinct_moves;
    prev = v;
  }
  EXPECT_GT(distinct_moves, 20);  // the signal must actually excite dynamics
}

TEST(Sources, StaircaseMonotone) {
  auto p = staircase(0.0, 3.0, 6, 1.0, 0.1);
  double prev = -1.0;
  for (double t = 0.5; t < 7.0; t += 1.1) {
    const double v = p(t);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
  EXPECT_NEAR(p(100.0), 3.0, 1e-12);
}

TEST(Metrics, RmsAndMaxError) {
  Waveform a(0.0, 1.0, {1.0, 1.0, 1.0, 1.0});
  Waveform b(0.0, 1.0, {1.0, 2.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(max_error(a, b), 1.0);
  EXPECT_NEAR(rms_error(a, b), 0.5, 1e-12);
  EXPECT_NEAR(rms(a), 1.0, 1e-12);
}

TEST(Metrics, ThresholdCrossingInterpolation) {
  // Ramp crossing 0.5 exactly at t = 0.5.
  Waveform w(0.0, 1.0, {0.0, 1.0});
  const auto c = threshold_crossings(w, 0.5);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0], 0.5, 1e-12);
}

TEST(Metrics, CrossingMergeWindow) {
  // Ringing around the threshold: crossings at ~0.5, 1.5, 2.5.
  Waveform w(0.0, 1.0, {0.0, 1.0, 0.0, 1.0});
  EXPECT_EQ(threshold_crossings(w, 0.5).size(), 3u);
  EXPECT_EQ(threshold_crossings(w, 0.5, 10.0).size(), 1u);
}

TEST(Metrics, TimingErrorMatchesShift) {
  auto f = [](double t) { return t < 1.0 ? 0.0 : (t < 2.0 ? t - 1.0 : 1.0); };
  auto ref = Waveform::sample(f, 0.0, 0.01, 400);
  auto shifted = Waveform::sample([&](double t) { return f(t - 0.07); }, 0.0, 0.01, 400);
  const auto te = timing_error(ref, shifted, 0.5);
  ASSERT_TRUE(te.has_value());
  EXPECT_NEAR(*te, 0.07, 1e-9);
}

TEST(Metrics, TimingErrorNulloptWithoutCrossing) {
  Waveform flat(0.0, 1.0, {0.0, 0.0, 0.0});
  Waveform ramp(0.0, 1.0, {0.0, 1.0, 1.0});
  EXPECT_FALSE(timing_error(flat, ramp, 0.5).has_value());
}

TEST(Metrics, HysteresisCrossingsIgnoreGrazingRing) {
  // Edge to 1.0, ring dipping to 0.45 (grazes a 0.5 threshold), recovery.
  Waveform w(0.0, 1.0, {0.0, 1.0, 0.45, 1.0, 1.0});
  // Plain detection sees three crossings; hysteresis (0.2) sees one.
  EXPECT_EQ(threshold_crossings(w, 0.5).size(), 3u);
  const auto ch = threshold_crossings_hysteresis(w, 0.5, 0.2);
  ASSERT_EQ(ch.size(), 1u);
  EXPECT_NEAR(ch[0], 0.5, 1e-12);
}

TEST(Metrics, HysteresisCrossingsKeepRealTransitions) {
  // Full swings must all be registered, with interpolated times.
  Waveform w(0.0, 1.0, {0.0, 1.0, 0.0, 1.0});
  const auto ch = threshold_crossings_hysteresis(w, 0.5, 0.2);
  ASSERT_EQ(ch.size(), 3u);
  EXPECT_NEAR(ch[0], 0.5, 1e-12);
  EXPECT_NEAR(ch[1], 1.5, 1e-12);
  EXPECT_NEAR(ch[2], 2.5, 1e-12);
}

TEST(Metrics, TimingErrorWithHysteresisRobustToGrazing) {
  // The reference ring crosses the threshold; the model's ring stops just
  // above it, so the plain metric sees unmatched phantom crossings.
  Waveform ref(0.0, 1.0, {0.0, 1.0, 0.48, 1.0, 1.0});
  Waveform mod(0.0, 1.0, {0.0, 1.0, 0.52, 1.0, 1.0});
  // Plain metric reports a huge phantom error; hysteresis fixes it.
  const auto te_plain = timing_error(ref, mod, 0.5);
  const auto te_hyst = timing_error(ref, mod, 0.5, 0.0, 0.2);
  ASSERT_TRUE(te_plain.has_value());
  ASSERT_TRUE(te_hyst.has_value());
  EXPECT_GT(*te_plain, 0.4);
  EXPECT_NEAR(*te_hyst, 0.0, 1e-12);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "emc_csv_test.csv";
  Waveform a(0.0, 1.0, {1.0, 2.0});
  Waveform b(0.0, 1.0, {3.0, 4.0});
  write_csv(path, {"a", "b"}, {a, b});

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "time,a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "0,1,3");
  std::remove(path.c_str());
}

TEST(Csv, Validation) {
  Waveform a(0.0, 1.0, {1.0});
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a", "b"}, {a}), std::invalid_argument);
  EXPECT_THROW(write_csv("/tmp/x.csv", {}, {}), std::invalid_argument);
}

TEST(Csv, SpectrumWriterHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "emc_spec_csv_test.csv";
  write_spectrum_csv(path, {"ref_dbuv", "model_dbuv"}, {1e6, 2e6},
                     {{60.0, 55.0}, {59.5, 54.0}});

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "freq_hz,ref_dbuv,model_dbuv");
  std::getline(is, line);
  EXPECT_EQ(line, "1e+06,60,59.5");
  std::getline(is, line);
  EXPECT_EQ(line, "2e+06,55,54");
  std::remove(path.c_str());
}

TEST(Csv, SpectrumWriterValidation) {
  EXPECT_THROW(write_spectrum_csv("/tmp/x.csv", {"a"}, {1.0, 2.0}, {{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_spectrum_csv("/tmp/x.csv", {"a", "b"}, {1.0}, {{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_spectrum_csv("/tmp/x.csv", {}, {}, {}), std::invalid_argument);
}

TEST(Csv, UnwritablePathThrows) {
  // The "parent directory" is an existing regular file: neither writer can
  // create it or open the leaf, and both must say so instead of silently
  // producing nothing.
  const std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "emc_csv_unwritable";
  { std::ofstream(blocker) << "x"; }
  const std::string path = (blocker / "nested" / "out.csv").string();

  Waveform a(0.0, 1.0, {1.0, 2.0});
  EXPECT_THROW(write_csv(path, {"a"}, {a}), std::runtime_error);
  EXPECT_THROW(write_spectrum_csv(path, {"s"}, {1e6}, {{60.0}}), std::runtime_error);
  std::filesystem::remove(blocker);

  // A write that starts but cannot complete (ENOSPC via /dev/full) must
  // throw from the stream-state check rather than truncate.
  if (std::filesystem::exists("/dev/full")) {
    Waveform big(0.0, 1.0, std::vector<double>(4096, 1.5));
    EXPECT_THROW(write_csv("/dev/full", {"v"}, {big}), std::runtime_error);
  }
}

// ---- degenerate metric inputs: empty, constant, and single-sample records

TEST(MetricsDegenerate, EmptyWaveforms) {
  Waveform empty;
  Waveform ramp(0.0, 1.0, {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(rms(empty), 0.0);
  EXPECT_DOUBLE_EQ(rms_error(empty, ramp), 0.0);
  EXPECT_DOUBLE_EQ(max_error(empty, ramp), 0.0);
  EXPECT_TRUE(threshold_crossings(empty, 0.5).empty());
  EXPECT_TRUE(threshold_crossings_hysteresis(empty, 0.5, 0.1).empty());
  EXPECT_EQ(timing_error(empty, ramp, 0.5), std::nullopt);
  EXPECT_EQ(timing_error(ramp, empty, 0.5), std::nullopt);
  EXPECT_EQ(edge_timing_error(empty, ramp, 0.5, 0.1), std::nullopt);
}

TEST(MetricsDegenerate, ConstantWaveforms) {
  Waveform flat(0.0, 1.0, std::vector<double>(8, 1.0));
  Waveform ramp(0.0, 1.0, {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});

  // A constant record never crosses an off-level threshold.
  EXPECT_TRUE(threshold_crossings(flat, 0.5).empty());
  EXPECT_TRUE(threshold_crossings_hysteresis(flat, 0.5, 0.1).empty());
  EXPECT_EQ(timing_error(flat, ramp, 0.5), std::nullopt);
  EXPECT_EQ(timing_error(ramp, flat, 0.5), std::nullopt);
  EXPECT_EQ(edge_timing_error(flat, ramp, 0.5, 0.1), std::nullopt);

  // Sitting exactly on the threshold: each touch registers at the sample
  // time (documented touching-equality behavior), and hysteresis
  // deglitching reports none.
  const auto touching = threshold_crossings(flat, 1.0);
  ASSERT_EQ(touching.size(), 7u);
  EXPECT_DOUBLE_EQ(touching.front(), 0.0);
  EXPECT_TRUE(threshold_crossings_hysteresis(flat, 1.0, 0.1).empty());

  // Identical constants: zero error, no timing information.
  EXPECT_DOUBLE_EQ(rms_error(flat, flat), 0.0);
  EXPECT_DOUBLE_EQ(max_error(flat, flat), 0.0);
  EXPECT_DOUBLE_EQ(rms(flat), 1.0);
}

TEST(MetricsDegenerate, SingleSampleRecords) {
  Waveform one(0.0, 1.0, {2.0});
  Waveform ramp(0.0, 1.0, {0.0, 1.0, 2.0});

  EXPECT_DOUBLE_EQ(rms(one), 2.0);
  // Errors are evaluated on the first record's grid; the other record is
  // interpolated (clamped) at t = 0.
  EXPECT_DOUBLE_EQ(rms_error(one, ramp), 2.0);
  EXPECT_DOUBLE_EQ(max_error(one, ramp), 2.0);

  // One sample has no interval to cross in.
  EXPECT_TRUE(threshold_crossings(one, 1.0).empty());
  EXPECT_TRUE(threshold_crossings_hysteresis(one, 1.0, 0.1).empty());
  EXPECT_EQ(timing_error(one, ramp, 1.0), std::nullopt);
  EXPECT_EQ(timing_error(ramp, one, 1.0), std::nullopt);
  EXPECT_EQ(edge_timing_error(one, ramp, 1.0, 0.1), std::nullopt);
}
