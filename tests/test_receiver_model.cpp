#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "core/circuit_dut.hpp"
#include "core/receiver_device.hpp"
#include "core/receiver_estimator.hpp"
#include "core/validation.hpp"
#include "signal/sources.hpp"

using namespace emc;

class ReceiverModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new dev::ReceiverTech(dev::ReceiverTech::md4_ibm18());
    dut_ = new core::CircuitReceiverDut(*tech_);
    model_ = new core::ParametricReceiverModel(core::estimate_receiver_model(*dut_));
    cr_ = new core::CrReceiverModel(core::estimate_cr_model(*dut_));
  }
  static void TearDownTestSuite() {
    delete cr_;
    delete model_;
    delete dut_;
    delete tech_;
    cr_ = nullptr;
    model_ = nullptr;
    dut_ = nullptr;
    tech_ = nullptr;
  }

  /// Record the reference response to a trapezoid of given amplitude.
  static core::PortRecord trapezoid_record(double amp, double rs, double t_stop) {
    auto tz = sig::trapezoid(0.0, amp, 0.4e-9, 0.1e-9, 3e-9, 0.1e-9);
    return dut_->forced_response(tz, rs, 25e-12, t_stop);
  }

  static dev::ReceiverTech* tech_;
  static core::CircuitReceiverDut* dut_;
  static core::ParametricReceiverModel* model_;
  static core::CrReceiverModel* cr_;
};

dev::ReceiverTech* ReceiverModelTest::tech_ = nullptr;
core::CircuitReceiverDut* ReceiverModelTest::dut_ = nullptr;
core::ParametricReceiverModel* ReceiverModelTest::model_ = nullptr;
core::CrReceiverModel* ReceiverModelTest::cr_ = nullptr;

TEST_F(ReceiverModelTest, LinearRegionParametricBeatsCr) {
  // Paper Figure 5: inside the rails the parametric model tracks the
  // reference current closely; the C-R model is a rough approximation.
  const auto rec = trapezoid_record(1.0, 10.0, 5e-9);
  const auto i_par = core::simulate_receiver_on_voltage(*model_, rec.v);
  const auto i_cr = core::simulate_cr_on_voltage(*cr_, rec.v);

  const auto rep_par = core::validate_waveform("par", rec.i, i_par, 0.02);
  const auto rep_cr = core::validate_waveform("cr", rec.i, i_cr, 0.02);
  EXPECT_LT(rep_par.rel_rms, 0.10);
  EXPECT_GT(rep_cr.rel_rms, 1.5 * rep_par.rel_rms);
}

TEST_F(ReceiverModelTest, NonlinearRegionParametricStaysAccurate) {
  // Amplitudes beyond VDD engage the protection clamps (paper Figure 6).
  for (double amp : {2.5, 3.3}) {
    const auto rec = trapezoid_record(amp, 50.0, 6e-9);
    const auto i_par = core::simulate_receiver_on_voltage(*model_, rec.v);
    const auto rep = core::validate_waveform("par", rec.i, i_par, 0.02);
    EXPECT_LT(rep.rel_rms, 0.10) << "amp = " << amp;
  }
}

TEST_F(ReceiverModelTest, LinearSubmodelIsNearlyLossless) {
  // A receiver inside the rails is capacitive: near-zero DC gain.
  EXPECT_NEAR(model_->lin.dc_gain(), 0.0, 1e-4);
}

TEST_F(ReceiverModelTest, StaticCurrentClampShape) {
  // Tiny leakage inside the rails, strong conduction beyond them.
  EXPECT_NEAR(model_->static_current(0.9), 0.0, 2e-3);
  EXPECT_GT(model_->static_current(tech_->vdd + 1.0), 5e-3);
  EXPECT_LT(model_->static_current(-1.0), -5e-3);
}

TEST_F(ReceiverModelTest, CrModelCapacitanceMatchesTechnology) {
  const double c_expected = tech_->c_pad + tech_->c_esd;
  EXPECT_NEAR(cr_->c, c_expected, 0.25 * c_expected);
}

TEST_F(ReceiverModelTest, CrTableIsMonotone) {
  for (std::size_t k = 1; k < cr_->iv.size(); ++k)
    EXPECT_GE(cr_->iv[k].second, cr_->iv[k - 1].second - 1e-6);
}

TEST_F(ReceiverModelTest, DeviceClosedLoopMatchesReferencePinVoltage) {
  // Replace the reference receiver by the macromodel at the end of a
  // resistive divider and compare the resulting pin voltages.
  auto run = [&](bool use_model) {
    ckt::Circuit c;
    const int src = c.node();
    const int pin = c.node();
    auto tz = sig::trapezoid(0.0, 2.5, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9);
    c.add<ckt::VSource>(src, c.ground(), [tz](double t) { return tz(t); });
    c.add<ckt::Resistor>(src, pin, 50.0);
    if (use_model) {
      c.add<core::ReceiverDevice>(pin, *model_);
    } else {
      auto inst = dev::build_reference_receiver(c, *tech_);
      c.add<ckt::Resistor>(inst.pin, pin, 1e-3);
    }
    ckt::TransientOptions topt;
    topt.dt = 25e-12;
    topt.t_stop = 5e-9;
    auto res = ckt::run_transient(c, topt);
    return res.waveform(pin);
  };
  const auto v_ref = run(false);
  const auto v_mod = run(true);
  const auto rep = core::validate_waveform("pin", v_ref, v_mod, 1.25, 0.2e-9);
  EXPECT_LT(rep.rel_rms, 0.05);
  ASSERT_TRUE(rep.timing_error.has_value());
  EXPECT_LT(*rep.timing_error, 20e-12);
}

TEST_F(ReceiverModelTest, CrDeviceBuildsAndClamps) {
  ckt::Circuit c;
  const int src = c.node();
  const int pin = c.node();
  auto tz = sig::trapezoid(0.0, 3.3, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9);
  c.add<ckt::VSource>(src, c.ground(), [tz](double t) { return tz(t); });
  c.add<ckt::Resistor>(src, pin, 50.0);
  core::add_cr_receiver(c, pin, *cr_);
  ckt::TransientOptions topt;
  topt.dt = 25e-12;
  topt.t_stop = 5e-9;
  auto res = ckt::run_transient(c, topt);
  const auto v = res.waveform(pin);
  // The static clamp must keep the pin well below the source amplitude.
  EXPECT_LT(v.max_value(), 3.1);
}

TEST_F(ReceiverModelTest, CrDeviceValidation) {
  ckt::Circuit c;
  core::CrReceiverModel empty;
  EXPECT_THROW(core::add_cr_receiver(c, 1, empty), std::invalid_argument);
}

TEST_F(ReceiverModelTest, DeviceRequiresMatchingTimeStep) {
  ckt::Circuit c;
  const int pin = c.node();
  c.add<ckt::Resistor>(pin, c.ground(), 50.0);
  c.add<core::ReceiverDevice>(pin, *model_);
  ckt::TransientOptions topt;
  topt.dt = 10e-12;
  topt.t_stop = 1e-9;
  EXPECT_THROW(ckt::run_transient(c, topt), std::runtime_error);
}

TEST_F(ReceiverModelTest, SimulateValidation) {
  EXPECT_THROW(core::simulate_receiver_on_voltage(*model_, sig::Waveform()),
               std::invalid_argument);
  EXPECT_THROW(core::simulate_cr_on_voltage(*cr_, sig::Waveform()), std::invalid_argument);
}
