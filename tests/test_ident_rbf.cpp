#include <gtest/gtest.h>

#include <cmath>

#include "ident/rbf.hpp"
#include "signal/sources.hpp"

using namespace emc::ident;
namespace la = emc::linalg;

namespace {

/// Static nonlinear test function on [-2, 2].
double bump(double v) { return std::tanh(2.0 * v) + 0.3 * v; }

la::Matrix column(const std::vector<double>& v) {
  la::Matrix m(v.size(), 1);
  for (std::size_t r = 0; r < v.size(); ++r) m(r, 0) = v[r];
  return m;
}

}  // namespace

TEST(Scaler, StandardizesColumns) {
  la::Matrix x(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    x(r, 0) = static_cast<double>(r);  // mean 1.5
    x(r, 1) = 10.0;                    // constant
  }
  const Scaler s = Scaler::fit(x);
  EXPECT_NEAR(s.mean()[0], 1.5, 1e-12);
  EXPECT_NEAR(s.mean()[1], 10.0, 1e-12);
  EXPECT_NEAR(s.scale()[1], 1.0, 1e-12);  // constant column passes through

  const la::Matrix z = s.transform(x);
  double m0 = 0.0, v0 = 0.0;
  for (std::size_t r = 0; r < 4; ++r) m0 += z(r, 0);
  EXPECT_NEAR(m0, 0.0, 1e-12);
  for (std::size_t r = 0; r < 4; ++r) v0 += z(r, 0) * z(r, 0);
  EXPECT_NEAR(std::sqrt(v0 / 4.0), 1.0, 1e-12);
}

TEST(NarxDataset, LayoutMatchesDefinition) {
  // v = [0,1,2,3,4], i = [10,11,12,13,14], orders nv=1, ni=2.
  emc::sig::Waveform v(0.0, 1.0, {0, 1, 2, 3, 4});
  emc::sig::Waveform i(0.0, 1.0, {10, 11, 12, 13, 14});
  NarxOrders ord{1, 2};
  const auto ds = build_narx_dataset(v, i, ord);
  ASSERT_EQ(ds.x.rows(), 3u);  // k = 2, 3, 4
  ASSERT_EQ(ds.x.cols(), 4u);  // v(k), v(k-1), i(k-1), i(k-2)
  // First row: k = 2 -> [2, 1, 11, 10], y = 12.
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ds.x(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds.x(0, 2), 11.0);
  EXPECT_DOUBLE_EQ(ds.x(0, 3), 10.0);
  EXPECT_DOUBLE_EQ(ds.y[0], 12.0);
}

TEST(NarxDataset, Validation) {
  emc::sig::Waveform v(0.0, 1.0, {0, 1});
  emc::sig::Waveform i(0.0, 1.0, {0, 1, 2});
  EXPECT_THROW(build_narx_dataset(v, i, NarxOrders{}), std::invalid_argument);
  emc::sig::Waveform i2(0.0, 1.0, {0, 1});
  EXPECT_THROW(build_narx_dataset(v, i2, NarxOrders{2, 2}), std::invalid_argument);
}

TEST(NarxRegressor, FillMatchesDataset) {
  std::vector<double> v_hist{5.0, 4.0, 3.0};  // v(k), v(k-1), v(k-2)
  std::vector<double> i_hist{2.0, 1.0};       // i(k-1), i(k-2)
  NarxOrders ord{2, 2};
  std::vector<double> reg(5);
  fill_narx_regressor(v_hist, i_hist, ord, reg);
  EXPECT_DOUBLE_EQ(reg[0], 5.0);
  EXPECT_DOUBLE_EQ(reg[2], 3.0);
  EXPECT_DOUBLE_EQ(reg[3], 2.0);
  EXPECT_DOUBLE_EQ(reg[4], 1.0);
}

TEST(RbfFit, RecoversStaticNonlinearity) {
  // Dense 1-D samples of a smooth function: an RBF net with a handful of
  // centers must fit it to sub-percent accuracy.
  std::vector<double> xs, ys;
  for (int k = 0; k <= 200; ++k) {
    const double v = -2.0 + 4.0 * k / 200.0;
    xs.push_back(v);
    ys.push_back(bump(v));
  }
  RbfFitOptions opt;
  opt.max_basis = 12;
  opt.sigma = 0.5;
  const RbfModel m = fit_rbf_ols(column(xs), ys, opt);
  EXPECT_LE(m.num_basis(), 12u);
  double worst = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double e = std::abs(m.eval(std::vector<double>{xs[k]}) - ys[k]);
    worst = std::max(worst, e);
  }
  EXPECT_LT(worst, 0.02);
}

TEST(RbfFit, ConstantDataGivesConstantModel) {
  std::vector<double> xs(50), ys(50, 3.25);
  for (std::size_t k = 0; k < xs.size(); ++k) xs[k] = static_cast<double>(k);
  RbfFitOptions opt;
  const RbfModel m = fit_rbf_ols(column(xs), ys, opt);
  EXPECT_NEAR(m.eval(std::vector<double>{25.0}), 3.25, 1e-9);
}

TEST(RbfFit, GradientMatchesFiniteDifference) {
  std::vector<double> xs, ys;
  for (int k = 0; k <= 100; ++k) {
    const double v = -1.0 + 0.02 * k;
    xs.push_back(v);
    ys.push_back(std::sin(3.0 * v));
  }
  RbfFitOptions opt;
  opt.max_basis = 15;
  const RbfModel m = fit_rbf_ols(column(xs), ys, opt);

  for (double v : {-0.8, -0.3, 0.0, 0.4, 0.9}) {
    double grad = 0.0;
    m.eval_with_grad(std::vector<double>{v}, 0, &grad);
    const double h = 1e-6;
    const double fd = (m.eval(std::vector<double>{v + h}) - m.eval(std::vector<double>{v - h})) /
                      (2.0 * h);
    EXPECT_NEAR(grad, fd, 1e-4 * std::max(1.0, std::abs(fd))) << "v = " << v;
  }
}

TEST(RbfFit, AutoSigmaNotWorseThanFixed) {
  std::vector<double> xs, ys;
  for (int k = 0; k <= 300; ++k) {
    const double v = -2.0 + 4.0 * k / 300.0;
    xs.push_back(v);
    ys.push_back(bump(v) + 0.2 * std::sin(6.0 * v));
  }
  RbfFitOptions opt;
  opt.max_basis = 14;
  const RbfModel fixed = fit_rbf_ols(column(xs), ys, opt);
  const RbfModel autom = fit_rbf_auto(column(xs), ys, opt);

  double err_fixed = 0.0, err_auto = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    err_fixed += std::pow(fixed.eval(std::vector<double>{xs[k]}) - ys[k], 2);
    err_auto += std::pow(autom.eval(std::vector<double>{xs[k]}) - ys[k], 2);
  }
  EXPECT_LE(err_auto, err_fixed * 1.5);
}

TEST(RbfFit, DynamicNarxSystemFreeRun) {
  // Nonlinear first-order system: i(k) = 0.8 i(k-1) + tanh(v(k)).
  // Identify from a multilevel excitation, then free-run on fresh input.
  emc::sig::Lcg rng(3);
  std::vector<double> v(1200), i(1200, 0.0);
  double level = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (k % 25 == 0) level = 4.0 * rng.uniform() - 2.0;
    v[k] = level;
    if (k > 0) i[k] = 0.8 * i[k - 1] + std::tanh(v[k]);
  }

  NarxOrders ord{0, 1};  // v(k), i(k-1)
  emc::sig::Waveform vw(0.0, 1.0, v), iw(0.0, 1.0, i);
  const auto ds = build_narx_dataset(vw, iw, ord);
  RbfFitOptions opt;
  opt.max_basis = 16;
  opt.sigma = 1.0;
  const RbfModel m = fit_rbf_ols(ds.x, ds.y, opt);

  // Fresh validation sequence.
  std::vector<double> v2(400), i2(400, 0.0);
  level = 0.0;
  for (std::size_t k = 0; k < v2.size(); ++k) {
    if (k % 40 == 0) level = 4.0 * rng.uniform() - 2.0;
    v2[k] = level;
    if (k > 0) i2[k] = 0.8 * i2[k - 1] + std::tanh(v2[k]);
  }
  const auto sim = simulate_narx(m, ord, v2, std::vector<double>{0.0});
  double rms = 0.0, ref = 0.0;
  for (std::size_t k = 10; k < v2.size(); ++k) {
    rms += std::pow(sim[k] - i2[k], 2);
    ref += i2[k] * i2[k];
  }
  EXPECT_LT(std::sqrt(rms / ref), 0.05);  // < 5% relative free-run error
}

TEST(RbfFit, InputValidation) {
  la::Matrix x(0, 1);
  std::vector<double> y;
  EXPECT_THROW(fit_rbf_ols(x, y, RbfFitOptions{}), std::invalid_argument);

  la::Matrix x2(3, 1);
  std::vector<double> y2(2);
  EXPECT_THROW(fit_rbf_ols(x2, y2, RbfFitOptions{}), std::invalid_argument);

  RbfFitOptions bad;
  bad.max_basis = 0;
  std::vector<double> y3(3);
  EXPECT_THROW(fit_rbf_ols(x2, y3, bad), std::invalid_argument);
}

TEST(RbfModel, ConstructorValidation) {
  EXPECT_THROW(RbfModel(Scaler({0.0}, {1.0}), la::Matrix(2, 1), {1.0}, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(RbfModel(Scaler({0.0}, {1.0}), la::Matrix(1, 1), {1.0}, 0.0, -1.0),
               std::invalid_argument);
}
