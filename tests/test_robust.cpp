// Tests of the emc::robust resilience layer: structured SolveError and
// its corner enrichment, the deterministic fault-injection harness
// (matching, budgets, escalation-aware sparing), the retry/escalation
// ladder, cooperative deadlines, the checkpoint journal's exact double
// round trip, and the engine-side fault probes (every FaultSite reports
// the real failure kind it emulates).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "obs/json.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "robust/journal.hpp"
#include "robust/retry.hpp"
#include "signal/sample_sink.hpp"

namespace ckt = emc::ckt;
namespace sig = emc::sig;
namespace robust = emc::robust;
namespace obs = emc::obs;

namespace {

// ------------------------------------------------------------- SolveError

TEST(SolveError, FormatsInfoAndSurvivesCornerEnrichment) {
  robust::SolveErrorInfo info;
  info.kind = robust::FailureKind::kTransientDivergence;
  info.site = "run_transient";
  info.context = "101|0.1|1e-12";
  info.t = 3.25e-9;
  info.dt = 25e-12;
  info.residual_history = {1.0, 10.0, 1e3};
  info.detail = "went non-finite";
  const robust::SolveError e(info);

  const std::string msg = e.what();
  EXPECT_NE(msg.find("run_transient"), std::string::npos);
  EXPECT_NE(msg.find("transient_divergence"), std::string::npos);
  EXPECT_NE(msg.find("went non-finite"), std::string::npos);
  EXPECT_EQ(e.info().residual_history.size(), 3u);

  const robust::SolveError wrapped = robust::with_corner(e, "vdd=0.9/len=0.1", 17);
  EXPECT_EQ(wrapped.info().corner, "vdd=0.9/len=0.1");
  EXPECT_EQ(wrapped.info().corner_index, 17);
  EXPECT_NE(std::string(wrapped.what()).find("vdd=0.9/len=0.1"), std::string::npos);
  // The original failure record is intact under the wrap.
  EXPECT_EQ(wrapped.info().kind, robust::FailureKind::kTransientDivergence);
  EXPECT_EQ(wrapped.info().context, info.context);

  // IS-A runtime_error: pre-existing catch sites keep working.
  try {
    throw robust::SolveError(info);
  } catch (const std::runtime_error& re) {
    EXPECT_NE(std::string(re.what()).find("transient_divergence"), std::string::npos);
  }
}

TEST(SolveError, KindNamesAreStableSnakeCase) {
  using K = robust::FailureKind;
  EXPECT_STREQ(robust::failure_kind_name(K::kDcDivergence), "dc_divergence");
  EXPECT_STREQ(robust::failure_kind_name(K::kTransientDivergence),
               "transient_divergence");
  EXPECT_STREQ(robust::failure_kind_name(K::kSingularSystem), "singular_system");
  EXPECT_STREQ(robust::failure_kind_name(K::kPatternUnstable), "pattern_unstable");
  EXPECT_STREQ(robust::failure_kind_name(K::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(robust::failure_kind_name(K::kSinkFailure), "sink_failure");
  EXPECT_STREQ(robust::failure_kind_name(K::kInjectedFault), "injected_fault");
}

TEST(Deadline, DefaultUnarmedNeverExpires) {
  robust::Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());

  const robust::Deadline hot = robust::Deadline::after(0.0);
  EXPECT_TRUE(hot.armed());
  EXPECT_TRUE(hot.expired());
  EXPECT_EQ(hot.budget_s(), 0.0);

  const robust::Deadline cold = robust::Deadline::after(3600.0);
  EXPECT_TRUE(cold.armed());
  EXPECT_FALSE(cold.expired());
}

// -------------------------------------------------------------- FaultPlan

robust::FaultCtx ctx_with(std::string_view key, double dt = 25e-12,
                          double gmin = 1e-12, double dx = 0.5, int solver = 2) {
  robust::FaultCtx c;
  c.key = key;
  c.solver = solver;
  c.dt = dt;
  c.gmin = gmin;
  c.dx_limit = dx;
  return c;
}

TEST(FaultPlan, MatchesSiteAndKeyConsumesBudgets) {
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kTransientStep;
  spec.key = "corner-A";
  spec.skip = 2;
  spec.remaining = 2;
  plan.arm(spec);

  const auto ctx_a = ctx_with("corner-A");
  const auto ctx_b = ctx_with("corner-B");
  // Wrong site and wrong key never fire (and consume nothing).
  EXPECT_FALSE(plan.fire(robust::FaultSite::kDcSolve, ctx_a));
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep, ctx_b));
  // skip=2 passes the first two matching probes, remaining=2 caps fires.
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep, ctx_a));
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep, ctx_a));
  EXPECT_TRUE(plan.fire(robust::FaultSite::kTransientStep, ctx_a));
  EXPECT_TRUE(plan.fire(robust::FaultSite::kTransientStep, ctx_a));
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep, ctx_a));
  EXPECT_EQ(plan.fired(), 2);
}

TEST(FaultPlan, EmptyKeyMatchesAnyContext) {
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kSinkWrite;
  plan.arm(spec);
  EXPECT_TRUE(plan.fire(robust::FaultSite::kSinkWrite, ctx_with("anything")));
  EXPECT_TRUE(plan.fire(robust::FaultSite::kSinkWrite, ctx_with("")));
}

TEST(FaultPlan, SpareThresholdsHealStatelesslyWithoutConsumingBudget) {
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kTransientStep;
  spec.remaining = 1;
  spec.spare_dense = true;
  spec.spare_dt_below = 20e-12;
  spec.spare_gmin_at_least = 1e-9;
  spec.spare_dx_limit_below = 0.2;
  plan.arm(spec);

  // Every spared probe leaves the budget untouched — healing must be a
  // stateless function of the attempt options, not of probe order.
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep,
                         ctx_with("k", 25e-12, 1e-12, 0.5, robust::kSolverDenseAsInt)));
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep,
                         ctx_with("k", 12.5e-12, 1e-12, 0.5)));  // dt below bar
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep,
                         ctx_with("k", 25e-12, 1e-9, 0.5)));  // gmin at bar
  EXPECT_FALSE(plan.fire(robust::FaultSite::kTransientStep,
                         ctx_with("k", 25e-12, 1e-12, 0.125)));  // damped past bar
  EXPECT_EQ(plan.fired(), 0);
  // An unspared probe still fires.
  EXPECT_TRUE(plan.fire(robust::FaultSite::kTransientStep, ctx_with("k")));
  EXPECT_EQ(plan.fired(), 1);
}

TEST(FaultPlan, InstallationIsScopedAndNullWhenAbsent) {
  EXPECT_EQ(robust::installed_fault_plan(), nullptr);
  EXPECT_FALSE(robust::fault(robust::FaultSite::kDcSolve, ctx_with("x")));
  {
    robust::FaultPlan plan;
    robust::FaultSpec spec;
    spec.site = robust::FaultSite::kDcSolve;
    plan.arm(spec);
    robust::ScopedFaultPlan guard(plan);
    EXPECT_EQ(robust::installed_fault_plan(), &plan);
    EXPECT_TRUE(robust::fault(robust::FaultSite::kDcSolve, ctx_with("x")));
  }
  EXPECT_EQ(robust::installed_fault_plan(), nullptr);
}

// ----------------------------------------------------------- retry ladder

TEST(RetryLadder, EscalationScheduleIsCumulative) {
  ckt::TransientOptions base;
  base.dt = 25e-12;
  base.gmin = 1e-12;
  base.dx_limit = 0.5;
  base.max_newton = 100;
  base.solver = ckt::SolverKind::kSparse;

  const auto a0 = robust::escalate(base, 0);
  EXPECT_EQ(a0.dt, base.dt);
  EXPECT_EQ(a0.solver, ckt::SolverKind::kSparse);

  const auto a1 = robust::escalate(base, 1);
  EXPECT_EQ(a1.dt, base.dt * 0.5);
  EXPECT_EQ(a1.solver, ckt::SolverKind::kSparse);

  const auto a2 = robust::escalate(base, 2);
  EXPECT_EQ(a2.dt, base.dt * 0.5);
  EXPECT_EQ(a2.solver, ckt::SolverKind::kDense);

  const auto a3 = robust::escalate(base, 3);
  EXPECT_GE(a3.gmin, 1e-9);
  EXPECT_EQ(a3.max_newton, 200);

  const auto a4 = robust::escalate(base, 4);
  EXPECT_EQ(a4.dx_limit, 0.125);
  EXPECT_EQ(a4.max_newton, 400);

  EXPECT_STREQ(robust::retry_stage_name(0), "base");
  EXPECT_STREQ(robust::retry_stage_name(2), "dense");
  EXPECT_STREQ(robust::retry_stage_name(4), "damp");
}

robust::SolveError make_err(const char* detail) {
  robust::SolveErrorInfo info;
  info.kind = robust::FailureKind::kTransientDivergence;
  info.site = "body";
  info.detail = detail;
  return robust::SolveError(std::move(info));
}

TEST(RetryLadder, FirstTrySuccessRunsOnce) {
  int calls = 0;
  const auto out = robust::run_with_escalation(
      {}, {}, [&](const ckt::TransientOptions&) { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.recovered);
  EXPECT_TRUE(out.failures.empty());
}

TEST(RetryLadder, RecoversAtTheStageThatClearsTheFault) {
  // Fails until the ladder forces the dense backend (stage 2).
  int calls = 0;
  const auto out = robust::run_with_escalation(
      {}, {}, [&](const ckt::TransientOptions& opt) {
        ++calls;
        if (opt.solver != ckt::SolverKind::kDense) throw make_err("not dense yet");
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_TRUE(out.recovered);
  ASSERT_EQ(out.failures.size(), 2u);
  EXPECT_EQ(out.failures[0].stage, "base");
  EXPECT_EQ(out.failures[1].stage, "dt/2");
}

TEST(RetryLadder, ExhaustionRethrowsWithAttemptsAndLadderHistory) {
  int calls = 0;
  try {
    robust::run_with_escalation({}, {}, [&](const ckt::TransientOptions&) {
      ++calls;
      throw make_err("always");
    });
    FAIL() << "ladder must rethrow after exhaustion";
  } catch (const robust::SolveError& e) {
    EXPECT_EQ(calls, robust::kMaxLadderStages);
    EXPECT_EQ(e.info().attempts, robust::kMaxLadderStages);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ladder exhausted"), std::string::npos);
    EXPECT_NE(msg.find("[damp]"), std::string::npos);
  }
}

TEST(RetryLadder, PinnedDtStillEscalatesEverythingElse) {
  // refine_dt=false: pipelines whose step is locked (emission transients
  // run at the model's Ts) keep base.dt on every rung while the dense /
  // gmin / damp escalations still apply.
  robust::RetryPolicy pinned;
  pinned.refine_dt = false;
  ckt::TransientOptions base;
  base.dt = 25e-12;
  std::vector<double> dts;
  const auto out = robust::run_with_escalation(
      pinned, base, [&](const ckt::TransientOptions& opt) {
        dts.push_back(opt.dt);
        if (opt.dx_limit >= 0.2) throw make_err("needs damping");
      });
  EXPECT_EQ(out.attempts, 5);
  EXPECT_TRUE(out.recovered);
  for (double dt : dts) EXPECT_EQ(dt, base.dt);
}

TEST(RetryLadder, DisabledPolicyIsSingleAttemptPassThrough) {
  robust::RetryPolicy off;
  off.enabled = false;
  int calls = 0;
  EXPECT_THROW(robust::run_with_escalation(off, {},
                                           [&](const ckt::TransientOptions&) {
                                             ++calls;
                                             throw make_err("once");
                                           }),
               robust::SolveError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryLadder, NonSolveErrorPropagatesImmediately) {
  int calls = 0;
  EXPECT_THROW(robust::run_with_escalation({}, {},
                                           [&](const ckt::TransientOptions&) {
                                             ++calls;
                                             throw std::logic_error("bug");
                                           }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------- journal

TEST(Journal, ExactDoubleRoundTripsBitForBit) {
  const double values[] = {1.0 / 3.0, 25e-12, -123.456789012345678, 0.0,
                           1e300,     5e-324, 140.0};
  for (double v : values) {
    const obs::Json j = obs::Json::string(robust::exact_double(v));
    EXPECT_EQ(robust::parse_exact(j), v) << robust::exact_double(v);
  }
  // Plain JSON numbers still decode (for integer-valued fields).
  EXPECT_EQ(robust::parse_exact(obs::Json::number(2.5)), 2.5);
}

TEST(Journal, DumpLineIsSingleLine) {
  auto o = obs::Json::object();
  o.set("s", obs::Json::string("line\nbreak\ttab"));
  auto arr = obs::Json::array();
  arr.push(obs::Json::integer(1));
  arr.push(obs::Json::integer(2));
  o.set("a", std::move(arr));
  const std::string line = robust::dump_line(o);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // The escaped payload survives the round trip.
  const obs::Json back = obs::Json::parse(line);
  EXPECT_EQ(back.at("s").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(back.at("a").size(), 2u);
}

TEST(Journal, AppendLoadRoundTripAndTruncatedTailDropped) {
  const std::string path = "test_robust_journal.jsonl";
  std::remove(path.c_str());

  {
    robust::JournalWriter w(path);
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < 3; ++i) {
      auto o = obs::Json::object();
      o.set("i", obs::Json::integer(i));
      o.set("x", obs::Json::string(robust::exact_double(1.0 / (i + 3.0))));
      w.append(o);
    }
  }
  auto entries = robust::load_journal(path);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[2].at("i").as_integer(), 2);
  EXPECT_EQ(robust::parse_exact(entries[2].at("x")), 1.0 / 5.0);

  // A write killed mid-line leaves a truncated tail: dropped, not fatal.
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"i\": 3, \"x\": \"0.1", f);
    std::fclose(f);
  }
  entries = robust::load_journal(path);
  EXPECT_EQ(entries.size(), 3u);

  // Appending after a resume trims the dead fragment first — otherwise it
  // would weld onto the new entry and poison the NEXT resume as interior
  // corruption. The journal stays loadable across crash/resume cycles.
  {
    robust::JournalWriter w(path);
    ASSERT_TRUE(w.ok());
    auto o = obs::Json::object();
    o.set("i", obs::Json::integer(4));
    w.append(o);
  }
  entries = robust::load_journal(path);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[3].at("i").as_integer(), 4);

  // Genuine interior corruption (a malformed COMPLETE line with entries
  // after it) must throw, not silently drop corners.
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"i\": 5, \"x\": garbage}\n", f);
    std::fclose(f);
    robust::JournalWriter w(path);  // trims nothing: the line is complete
    auto o = obs::Json::object();
    o.set("i", obs::Json::integer(6));
    w.append(o);
  }
  EXPECT_THROW(robust::load_journal(path), std::runtime_error);

  std::remove(path.c_str());
  // A missing journal is an empty history, not an error.
  EXPECT_TRUE(robust::load_journal(path).empty());
}

// --------------------------------------------------- engine fault probes

/// Step-driven RC through a diode clamp: nonlinear, so both the DC and
/// the damped transient Newton paths run.
int build_clamp(ckt::Circuit& c) {
  const int in = c.node();
  c.add<ckt::VSource>(in, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  const int out = c.node();
  c.add<ckt::Resistor>(in, out, 50.0);
  c.add<ckt::Diode>(out, 0);
  c.add<ckt::Capacitor>(out, 0, 1e-12);
  return out;
}

ckt::TransientOptions clamp_options() {
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 4e-9;
  opt.context = "clamp-ctx";
  return opt;
}

robust::SolveErrorInfo run_expecting_failure(const ckt::TransientOptions& opt) {
  ckt::Circuit c;
  const int out = build_clamp(c);
  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const int probes[] = {out};
  try {
    ckt::run_transient_streamed(c, opt, ws, probes, rec, 64);
  } catch (const robust::SolveError& e) {
    return e.info();
  }
  ADD_FAILURE() << "expected a SolveError";
  return {};
}

TEST(EngineFaults, EachSiteReportsTheRealFailureKind) {
  using FS = robust::FaultSite;
  using K = robust::FailureKind;
  const struct {
    FS site;
    K kind;
  } cases[] = {
      {FS::kDcSolve, K::kDcDivergence},
      {FS::kFactor, K::kSingularSystem},
      {FS::kTransientStep, K::kTransientDivergence},
      {FS::kSinkWrite, K::kSinkFailure},
      {FS::kDeadline, K::kDeadlineExceeded},
  };
  for (const auto& tc : cases) {
    robust::FaultPlan plan;
    robust::FaultSpec spec;
    spec.site = tc.site;
    spec.key = "clamp-ctx";
    plan.arm(spec);
    robust::ScopedFaultPlan guard(plan);
    const auto info = run_expecting_failure(clamp_options());
    EXPECT_EQ(info.kind, tc.kind) << robust::fault_site_name(tc.site);
    EXPECT_EQ(info.context, "clamp-ctx");
    EXPECT_NE(info.detail.find("injected"), std::string::npos)
        << robust::fault_site_name(tc.site);
    EXPECT_GT(plan.fired(), 0);
  }
}

TEST(EngineFaults, KeyedPlanLeavesOtherContextsUntouched) {
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kTransientStep;
  spec.key = "some-other-corner";
  plan.arm(spec);
  robust::ScopedFaultPlan guard(plan);

  ckt::Circuit c;
  const int out = build_clamp(c);
  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const int probes[] = {out};
  EXPECT_NO_THROW(ckt::run_transient_streamed(c, clamp_options(), ws, probes, rec, 64));
  EXPECT_EQ(plan.fired(), 0);
}

TEST(EngineFaults, ExpiredDeadlineCancelsWithStructuredError) {
  ckt::Circuit c;
  const int out = build_clamp(c);
  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const int probes[] = {out};
  auto opt = clamp_options();
  const robust::Deadline hot = robust::Deadline::after(0.0);
  opt.deadline = &hot;
  try {
    ckt::run_transient_streamed(c, opt, ws, probes, rec, 64);
    FAIL() << "expired deadline must cancel the run";
  } catch (const robust::SolveError& e) {
    EXPECT_EQ(e.info().kind, robust::FailureKind::kDeadlineExceeded);
  }
}

TEST(EngineFaults, DcDivergenceCarriesScheduleAndResidualHistory) {
  // A genuinely impossible DC problem: the voltage source fights a
  // short via a pathological nonlinearity budget. Easier determinstic
  // trigger: inject at the DC site and check the structured payload.
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kDcSolve;
  plan.arm(spec);
  robust::ScopedFaultPlan guard(plan);
  const auto info = run_expecting_failure(clamp_options());
  EXPECT_EQ(info.kind, robust::FailureKind::kDcDivergence);
  EXPECT_EQ(info.site, "dc_operating_point");
  EXPECT_EQ(info.dt, 25e-12);
}

}  // namespace
