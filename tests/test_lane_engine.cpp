// Lane-batched transient engine: each lane's streamed record must be
// bit-identical to running that circuit alone through the scalar sparse
// engine — for linear lanes on the batched cached-factor fast path and
// for nonlinear lanes whose Newton iterations converge at different
// rates. Plus the input validation contract.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/lane_engine.hpp"
#include "circuit/netlist.hpp"
#include "robust/fault.hpp"

namespace ckt = emc::ckt;
namespace sig = emc::sig;

namespace {

/// Step-driven RLC with per-lane component values (same topology).
int build_rlc(ckt::Circuit& c, double r_src, double ind, double cap) {
  const int n1 = c.node();
  const int n2 = c.node();
  const int out = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  c.add<ckt::Resistor>(n1, n2, r_src);
  c.add<ckt::Inductor>(n2, out, ind);
  c.add<ckt::Capacitor>(out, 0, cap);
  c.add<ckt::Resistor>(out, 0, 1e3);
  return out;
}

/// Diode clamp behind a per-lane series resistance: the switching edge
/// makes the lanes' Newton iteration counts differ.
int build_clamp(ckt::Circuit& c, double r) {
  const int n1 = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  const int out = c.node();
  c.add<ckt::Resistor>(n1, out, r);
  c.add<ckt::Diode>(out, 0);
  c.add<ckt::Capacitor>(out, 0, 1e-12);
  return out;
}

ckt::TransientOptions sparse_options() {
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 10e-9;
  // The lane engine is sparse-only; the scalar reference must use the
  // sparse backend too for bit-identical arithmetic.
  opt.solver = ckt::SolverKind::kSparse;
  return opt;
}

/// Scalar reference record of one circuit through the streamed engine.
std::vector<double> scalar_record(ckt::Circuit& c, const ckt::TransientOptions& opt,
                                  std::span<const int> probes,
                                  ckt::SolveStats* stats = nullptr) {
  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const auto st = ckt::run_transient_streamed(c, opt, ws, probes, rec, 64);
  if (stats) *stats = st;
  return std::move(rec).take_data();
}

}  // namespace

TEST(LaneEngine, LinearLanesBitIdenticalToScalarSparse) {
  const double r_src[] = {25.0, 33.0, 47.0, 75.0};
  const double ind[] = {5e-9, 7e-9, 4e-9, 9e-9};
  const double cap[] = {10e-12, 8e-12, 15e-12, 12e-12};
  const std::size_t L = 4;

  std::vector<ckt::Circuit> lane_c(L);
  std::vector<ckt::Circuit*> lanes;
  std::vector<sig::RecordingSink> recs(L);
  std::vector<sig::SampleSink*> sinks;
  int out = 0;
  for (std::size_t l = 0; l < L; ++l) {
    out = build_rlc(lane_c[l], r_src[l], ind[l], cap[l]);
    lanes.push_back(&lane_c[l]);
    sinks.push_back(&recs[l]);
  }

  const auto opt = sparse_options();
  const int probes[] = {out};
  ckt::LaneWorkspace lw;
  const auto stats = ckt::run_transient_lanes(lanes, opt, lw, probes, sinks, 64);

  ASSERT_EQ(stats.lanes.size(), L);
  for (std::size_t l = 0; l < L; ++l) {
    ckt::Circuit ref;
    build_rlc(ref, r_src[l], ind[l], cap[l]);
    ckt::SolveStats ref_stats;
    const auto expect = scalar_record(ref, opt, probes, &ref_stats);
    EXPECT_EQ(recs[l].data(), expect) << "lane " << l;
    EXPECT_EQ(stats.lanes[l].steps, ref_stats.steps);
    EXPECT_EQ(stats.lanes[l].total_newton_iters, ref_stats.total_newton_iters);
    EXPECT_EQ(stats.lanes[l].weak_steps, ref_stats.weak_steps);
  }
  // One shared-structure walk per batched call vs. L walks run lane by
  // lane: the batched side must do strictly less structural work.
  EXPECT_EQ(stats.scalar_walk_entries, L * stats.batched_walk_entries);
}

TEST(LaneEngine, NonlinearLanesWithDifferingConvergenceBitIdentical) {
  const double r[] = {100.0, 220.0, 470.0, 1000.0};
  const std::size_t L = 4;

  std::vector<ckt::Circuit> lane_c(L);
  std::vector<ckt::Circuit*> lanes;
  std::vector<sig::RecordingSink> recs(L);
  std::vector<sig::SampleSink*> sinks;
  int out = 0;
  for (std::size_t l = 0; l < L; ++l) {
    out = build_clamp(lane_c[l], r[l]);
    lanes.push_back(&lane_c[l]);
    sinks.push_back(&recs[l]);
  }

  const auto opt = sparse_options();
  const int probes[] = {out};
  ckt::LaneWorkspace lw;
  const auto stats = ckt::run_transient_lanes(lanes, opt, lw, probes, sinks, 64);

  bool iter_counts_differ = false;
  long first_iters = 0;
  for (std::size_t l = 0; l < L; ++l) {
    ckt::Circuit ref;
    build_clamp(ref, r[l]);
    ckt::SolveStats ref_stats;
    const auto expect = scalar_record(ref, opt, probes, &ref_stats);
    EXPECT_EQ(recs[l].data(), expect) << "lane " << l;
    EXPECT_EQ(stats.lanes[l].total_newton_iters, ref_stats.total_newton_iters)
        << "lane " << l;
    EXPECT_EQ(stats.lanes[l].weak_steps, ref_stats.weak_steps) << "lane " << l;
    if (l == 0)
      first_iters = ref_stats.total_newton_iters;
    else if (ref_stats.total_newton_iters != first_iters)
      iter_counts_differ = true;
  }
  // The scenario is only meaningful if the lanes really do converge at
  // different rates (per-lane masks were exercised).
  EXPECT_TRUE(iter_counts_differ);
  EXPECT_GT(stats.scalar_walk_entries, stats.batched_walk_entries);
}

TEST(LaneEngine, DivergedLaneIsFrozenWhileSurvivorsStayBitIdentical) {
  namespace robust = emc::robust;
  const double r[] = {100.0, 220.0, 470.0, 1000.0};
  const std::size_t L = 4;

  std::vector<ckt::Circuit> lane_c(L);
  std::vector<ckt::Circuit*> lanes;
  std::vector<sig::RecordingSink> recs(L);
  std::vector<sig::SampleSink*> sinks;
  std::vector<std::string> keys;
  int out = 0;
  for (std::size_t l = 0; l < L; ++l) {
    out = build_clamp(lane_c[l], r[l]);
    lanes.push_back(&lane_c[l]);
    sinks.push_back(&recs[l]);
    keys.push_back("lane-" + std::to_string(l));
  }

  // Poison lane 2's batched stepping mid-run via the fault harness.
  robust::FaultPlan plan;
  robust::FaultSpec spec;
  spec.site = robust::FaultSite::kLaneStep;
  spec.key = "lane-2";
  spec.skip = 100;  // fail well into the record, not at the first step
  plan.arm(spec);
  robust::ScopedFaultPlan guard(plan);

  const auto opt = sparse_options();
  const int probes[] = {out};
  ckt::LaneWorkspace lw;
  const auto stats = ckt::run_transient_lanes(lanes, opt, lw, probes, sinks, 64, keys);
  EXPECT_GT(plan.fired(), 0);

  ASSERT_EQ(stats.failures.size(), L);
  EXPECT_EQ(stats.failed_lanes, 1u);
  EXPECT_TRUE(stats.failures[2].failed);
  EXPECT_FALSE(stats.failures[2].message.empty());
  EXPECT_GT(stats.failures[2].t, 0.0);

  for (std::size_t l = 0; l < L; ++l) {
    if (l == 2) continue;
    ckt::Circuit ref;
    build_clamp(ref, r[l]);
    ckt::SolveStats ref_stats;
    const auto expect = scalar_record(ref, opt, probes, &ref_stats);
    EXPECT_EQ(recs[l].data(), expect) << "survivor lane " << l;
    EXPECT_FALSE(stats.failures[l].failed) << "survivor lane " << l;
    EXPECT_EQ(stats.lanes[l].total_newton_iters, ref_stats.total_newton_iters)
        << "survivor lane " << l;
  }
  // The failed lane's sink received the same gap-free full-length stream
  // as the survivors (frozen frames repeat the last committed state —
  // downstream chunk accounting must not break).
  EXPECT_EQ(recs[2].frames(), recs[0].frames());
}

TEST(LaneEngine, WorkspaceReusableAcrossBatches) {
  // Second batch through the same LaneWorkspace (same topology): the
  // symbolic analysis is reused and results stay identical to fresh runs.
  ckt::Circuit c1, c2, ref;
  const int out = build_rlc(c1, 25.0, 5e-9, 10e-12);
  build_rlc(c2, 33.0, 7e-9, 8e-12);
  build_rlc(ref, 33.0, 7e-9, 8e-12);

  const auto opt = sparse_options();
  const int probes[] = {out};
  ckt::LaneWorkspace lw;
  for (int round = 0; round < 2; ++round) {
    sig::RecordingSink r1, r2;
    ckt::Circuit* lanes[] = {&c1, &c2};
    sig::SampleSink* sinks[] = {&r1, &r2};
    ckt::run_transient_lanes(lanes, opt, lw, probes, sinks, 64);
    const auto expect = scalar_record(ref, opt, probes);
    EXPECT_EQ(r2.data(), expect) << "round " << round;
  }
  EXPECT_EQ(lw.lu.stats().analyses, 1);
  EXPECT_GT(lw.lu.stats().symbolic_reuses, 0);
}

TEST(LaneEngine, ValidatesInputs) {
  ckt::Circuit a, b, small;
  build_rlc(a, 25.0, 5e-9, 10e-12);
  build_rlc(b, 33.0, 7e-9, 8e-12);
  const int n1 = small.node();
  small.add<ckt::Resistor>(n1, 0, 50.0);

  const auto opt = sparse_options();
  const int probes[] = {1};
  ckt::LaneWorkspace lw;
  sig::RecordingSink r1, r2;
  sig::SampleSink* two_sinks[] = {&r1, &r2};
  sig::SampleSink* one_sink[] = {&r1};

  {  // no lanes
    std::vector<ckt::Circuit*> lanes;
    EXPECT_THROW(
        ckt::run_transient_lanes(lanes, opt, lw, probes, std::span<sig::SampleSink* const>{}),
        std::invalid_argument);
  }
  {  // sink count mismatch
    ckt::Circuit* lanes[] = {&a, &b};
    EXPECT_THROW(ckt::run_transient_lanes(lanes, opt, lw, probes, one_sink),
                 std::invalid_argument);
  }
  {  // dense backend not allowed
    ckt::Circuit* lanes[] = {&a, &b};
    auto dense_opt = opt;
    dense_opt.solver = ckt::SolverKind::kDense;
    EXPECT_THROW(ckt::run_transient_lanes(lanes, dense_opt, lw, probes, two_sinks),
                 std::invalid_argument);
  }
  {  // unknown-count mismatch
    ckt::Circuit* lanes[] = {&a, &small};
    EXPECT_THROW(ckt::run_transient_lanes(lanes, opt, lw, probes, two_sinks),
                 std::invalid_argument);
  }
  {  // mixed linearity
    ckt::Circuit nl;
    build_clamp(nl, 100.0);
    ckt::Circuit lin;  // same unknown count as the clamp (2 nodes + branch)
    const int m1 = lin.node();
    lin.add<ckt::VSource>(m1, 0, 1.0);
    const int m2 = lin.node();
    lin.add<ckt::Resistor>(m1, m2, 100.0);
    lin.add<ckt::Resistor>(m2, 0, 100.0);
    lin.add<ckt::Capacitor>(m2, 0, 1e-12);
    ASSERT_EQ(nl.finalize(), lin.finalize());
    ckt::Circuit* lanes[] = {&nl, &lin};
    EXPECT_THROW(ckt::run_transient_lanes(lanes, opt, lw, probes, two_sinks),
                 std::invalid_argument);
  }
  {  // same size, different stamped pattern
    ckt::Circuit other;
    const int k1 = other.node();
    const int k2 = other.node();
    const int k3 = other.node();
    other.add<ckt::VSource>(k1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
    other.add<ckt::Resistor>(k1, k2, 50.0);
    other.add<ckt::Resistor>(k2, k3, 50.0);
    other.add<ckt::Capacitor>(k3, 0, 10e-12);
    other.add<ckt::Inductor>(k3, 0, 20e-9);
    ASSERT_EQ(a.finalize(), other.finalize());
    ckt::Circuit* lanes[] = {&a, &other};
    sig::RecordingSink f1, f2;
    sig::SampleSink* sinks[] = {&f1, &f2};
    EXPECT_THROW(ckt::run_transient_lanes(lanes, opt, lw, probes, sinks),
                 std::invalid_argument);
  }
}
