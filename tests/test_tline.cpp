#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/stampers.hpp"
#include "circuit/tline.hpp"
#include "linalg/sparse.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc::ckt;
namespace sg = emc::sig;

namespace {

struct LineRun {
  sg::Waveform near;
  sg::Waveform far;
};

/// Step of 1 V through source resistance rs into an ideal line (z0, td)
/// terminated by r_load (use 1e9 for open).
LineRun run_ideal_line(double rs, double z0, double td, double r_load, double t_stop,
                       double dt) {
  Circuit ckt;
  const int src = ckt.node();
  const int a = ckt.node();
  const int b = ckt.node();
  sg::Pwl step({{0.0, 0.0}, {50e-12, 0.0}, {60e-12, 1.0}});
  ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(src, a, rs);
  ckt.add<IdealLine>(a, ckt.ground(), b, ckt.ground(), z0, td);
  ckt.add<Resistor>(b, ckt.ground(), r_load);

  TransientOptions opt;
  opt.dt = dt;
  opt.t_stop = t_stop;
  auto res = run_transient(ckt, opt);
  return {res.waveform(a), res.waveform(b)};
}

}  // namespace

TEST(IdealLineModel, MatchedLineNoReflection) {
  const double z0 = 50.0, td = 1e-9;
  auto r = run_ideal_line(z0, z0, td, z0, 6e-9, 25e-12);
  // Near end: half the step immediately, stays at half (matched).
  EXPECT_NEAR(r.near.value_at(0.5e-9), 0.5, 5e-3);
  EXPECT_NEAR(r.near.value_at(5e-9), 0.5, 5e-3);
  // Far end: zero until td, then half step.
  EXPECT_NEAR(r.far.value_at(0.9e-9), 0.0, 5e-3);
  EXPECT_NEAR(r.far.value_at(1.5e-9), 0.5, 5e-3);
}

TEST(IdealLineModel, OpenEndDoublesAndReflects) {
  const double z0 = 50.0, td = 1e-9;
  auto r = run_ideal_line(z0, z0, td, 1e9, 6e-9, 25e-12);
  // Far end doubles the incident half-step at td.
  EXPECT_NEAR(r.far.value_at(1.5e-9), 1.0, 1e-2);
  // Near end sits at half until the reflection returns at 2*td.
  EXPECT_NEAR(r.near.value_at(1.9e-9), 0.5, 1e-2);
  EXPECT_NEAR(r.near.value_at(2.5e-9), 1.0, 1e-2);
}

TEST(IdealLineModel, ShortEndInverts) {
  const double z0 = 50.0, td = 1e-9;
  auto r = run_ideal_line(z0, z0, td, 1e-3, 6e-9, 25e-12);
  // Far end pinned near zero; near end collapses to ~0 after 2*td.
  EXPECT_NEAR(r.far.value_at(2e-9), 0.0, 2e-2);
  EXPECT_NEAR(r.near.value_at(1.5e-9), 0.5, 1e-2);
  EXPECT_NEAR(r.near.value_at(2.5e-9), 0.0, 2e-2);
}

TEST(IdealLineModel, MismatchedLoadReflectionCoefficient) {
  // r_load = 150 on z0 = 50: rho = 0.5, far end = incident*(1+rho) = 0.75.
  const double z0 = 50.0, td = 1e-9;
  auto r = run_ideal_line(z0, z0, td, 150.0, 6e-9, 25e-12);
  EXPECT_NEAR(r.far.value_at(1.7e-9), 0.75, 1e-2);
}

TEST(IdealLineModel, DelayShorterThanStepThrows) {
  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 1.0);
  ckt.add<IdealLine>(a, ckt.ground(), b, ckt.ground(), 50.0, 10e-12);
  ckt.add<Resistor>(b, ckt.ground(), 50.0);
  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 1e-9;
  EXPECT_THROW(run_transient(ckt, opt), std::runtime_error);
}

TEST(IdealLineModel, ParameterValidation) {
  EXPECT_THROW(IdealLine(1, 0, 2, 0, -50.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(IdealLine(1, 0, 2, 0, 50.0, 0.0), std::invalid_argument);
}

TEST(IdealLineModel, DcChargedLineStartsQuiet) {
  // A line biased at 2 V DC must not generate spurious transients.
  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 2.0);
  ckt.add<IdealLine>(a, ckt.ground(), b, ckt.ground(), 50.0, 1e-9);
  ckt.add<Resistor>(b, ckt.ground(), 1e6);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 5e-9;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(b);
  for (std::size_t k = 0; k < v.size(); ++k) EXPECT_NEAR(v[k], 2.0, 5e-3);
}

TEST(ModalSegment, SingleConductorMatchesIdealLine) {
  // A 1-conductor modal segment must behave exactly like IdealLine with
  // z0 = sqrt(L/C), td = len*sqrt(LC).
  const double lpm = 2.5e-7, cpm = 1e-10, len = 0.2;
  const double z0 = std::sqrt(lpm / cpm);
  const double td = len * std::sqrt(lpm * cpm);

  auto build = [&](bool modal) {
    Circuit ckt;
    const int src = ckt.node();
    const int a = ckt.node();
    const int b = ckt.node();
    sg::Pwl step({{0.0, 0.0}, {50e-12, 0.0}, {150e-12, 1.0}});
    ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
    ckt.add<Resistor>(src, a, 30.0);
    if (modal) {
      ckt.add<ModalLineSegment>(std::vector<int>{a}, std::vector<int>{b},
                                emc::linalg::Matrix{{lpm}}, emc::linalg::Matrix{{cpm}}, len);
    } else {
      ckt.add<IdealLine>(a, ckt.ground(), b, ckt.ground(), z0, td);
    }
    ckt.add<Resistor>(b, ckt.ground(), 120.0);
    TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 8e-9;
    auto res = run_transient(ckt, opt);
    return res.waveform(b);
  };

  const auto v_modal = build(true);
  const auto v_ideal = build(false);
  EXPECT_LT(sg::max_error(v_ideal, v_modal), 1e-6);
}

TEST(ModalSegment, SymmetricPairEvenOddParameters) {
  const double l0 = 466e-9, lm = 66e-9, c0 = 66e-12, cm = 6.6e-12, len = 0.1;
  emc::linalg::Matrix l{{l0, lm}, {lm, l0}};
  emc::linalg::Matrix c{{c0, -cm}, {-cm, c0}};
  ModalLineSegment seg({1, 2}, {3, 4}, l, c, len);
  ASSERT_EQ(seg.modes(), 2u);

  const double z_even = std::sqrt((l0 + lm) / (c0 - cm));
  const double z_odd = std::sqrt((l0 - lm) / (c0 + cm));
  const double td_even = len * std::sqrt((l0 + lm) * (c0 - cm));
  const double td_odd = len * std::sqrt((l0 - lm) * (c0 + cm));

  // Modal delays are physical; modes come out sorted by eigenvalue.
  const double ta = seg.modal_td(0), tb = seg.modal_td(1);
  EXPECT_NEAR(std::min(ta, tb), std::min(td_even, td_odd), 1e-6 * td_odd);
  EXPECT_NEAR(std::max(ta, tb), std::max(td_even, td_odd), 1e-6 * td_even);

  // The physical characteristic admittance of a symmetric pair is
  // Yc = 0.5*[[ge+go, ge-go],[ge-go, ge+go]] with ge = 1/Z_even, go = 1/Z_odd.
  const auto& y = seg.char_admittance();
  const double ge = 1.0 / z_even, go = 1.0 / z_odd;
  EXPECT_NEAR(y(0, 0), 0.5 * (ge + go), 1e-6 * go);
  EXPECT_NEAR(y(1, 1), 0.5 * (ge + go), 1e-6 * go);
  EXPECT_NEAR(y(0, 1), 0.5 * (ge - go), 1e-6 * go);
  EXPECT_NEAR(y(1, 0), 0.5 * (ge - go), 1e-6 * go);
}

TEST(ModalSegment, QuietLineSeesCrosstalk) {
  // Drive line 1, keep line 2 terminated: the coupled segment must
  // produce a small but nonzero far-end crosstalk signal.
  const double l0 = 466e-9, lm = 66e-9, c0 = 66e-12, cm = 6.6e-12, len = 0.1;
  emc::linalg::Matrix l{{l0, lm}, {lm, l0}};
  emc::linalg::Matrix c{{c0, -cm}, {-cm, c0}};

  Circuit ckt;
  const int src = ckt.node();
  const int a1 = ckt.node();
  const int a2 = ckt.node();
  const int b1 = ckt.node();
  const int b2 = ckt.node();
  sg::Pwl step({{0.0, 0.0}, {0.1e-9, 0.0}, {0.2e-9, 1.0}});
  ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(src, a1, 50.0);
  ckt.add<Resistor>(a2, ckt.ground(), 50.0);
  ckt.add<ModalLineSegment>(std::vector<int>{a1, a2}, std::vector<int>{b1, b2}, l, c, len);
  ckt.add<Resistor>(b1, ckt.ground(), 50.0);
  ckt.add<Resistor>(b2, ckt.ground(), 50.0);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 5e-9;
  auto res = run_transient(ckt, opt);
  const auto v_active = res.waveform(b1);
  const auto v_quiet = res.waveform(b2);

  const double peak_active = std::max(std::abs(v_active.max_value()),
                                      std::abs(v_active.min_value()));
  const double peak_quiet = std::max(std::abs(v_quiet.max_value()),
                                     std::abs(v_quiet.min_value()));
  EXPECT_GT(peak_active, 0.3);
  EXPECT_GT(peak_quiet, 1e-3);            // crosstalk exists
  EXPECT_LT(peak_quiet, 0.3 * peak_active);  // but is much smaller
}

TEST(SkinLadderFit, ApproximatesSqrtF) {
  const double rskin = 1.6e-3 * 0.0125;  // ohm*sqrt(s) for a 12.5 mm section
  const auto lad = fit_skin_ladder(rskin, 1e7, 1e10, 3);
  ASSERT_EQ(lad.r.size(), 3u);
  for (double rk : lad.r) EXPECT_GT(rk, 0.0);
  for (double lk : lad.l) EXPECT_GT(lk, 0.0);

  // The ladder's series impedance magnitude should track rskin*sqrt(f)
  // within a factor ~2 across the band.
  for (double f : {3e7, 3e8, 3e9}) {
    const double w = 2.0 * M_PI * f;
    double re = 0.0, im = 0.0;
    for (std::size_t k = 0; k < lad.r.size(); ++k) {
      // Parallel R-L branch: Z = jwL*R / (R + jwL).
      const double r = lad.r[k], x = w * lad.l[k];
      const double den = r * r + x * x;
      re += r * x * x / den;
      im += r * r * x / den;
    }
    const double mag = std::sqrt(re * re + im * im);
    const double target = rskin * std::sqrt(f);
    EXPECT_GT(mag, 0.4 * target) << "f = " << f;
    EXPECT_LT(mag, 2.5 * target) << "f = " << f;
  }
}

TEST(LossyCoupledLine, DcResistanceEndToEnd) {
  // At DC the cascade reduces to the series resistance: check the voltage
  // divider ratio against rdc*length.
  CoupledLineParams p;
  p.l = emc::linalg::Matrix{{466e-9}};
  p.c = emc::linalg::Matrix{{66e-12}};
  p.length = 0.1;
  p.loss.rdc = 66.0;

  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 1.0);
  add_coupled_lossy_line(ckt, {a}, {b}, p, 25e-12, 4);
  ckt.add<Resistor>(b, ckt.ground(), 50.0);

  TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 50e-9;  // settle through the line delay
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(b);
  const double expect = 50.0 / (50.0 + 6.6);
  EXPECT_NEAR(v[v.size() - 1], expect, 0.02);
}

TEST(LossyCoupledLine, AttenuatesStep) {
  // Lossy line attenuates the transmitted edge relative to lossless.
  auto run_line = [](double rdc) {
    CoupledLineParams p;
    p.l = emc::linalg::Matrix{{466e-9}};
    p.c = emc::linalg::Matrix{{66e-12}};
    p.length = 0.1;
    p.loss.rdc = rdc;

    Circuit ckt;
    const int src = ckt.node();
    const int a = ckt.node();
    const int b = ckt.node();
    sg::Pwl step({{0.0, 0.0}, {0.1e-9, 0.0}, {0.2e-9, 1.0}});
    ckt.add<VSource>(src, ckt.ground(), [step](double t) { return step(t); });
    ckt.add<Resistor>(src, a, 50.0);
    add_coupled_lossy_line(ckt, {a}, {b}, p, 25e-12, 4);
    ckt.add<Resistor>(b, ckt.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 3e-9;
    auto res = run_transient(ckt, opt);
    return res.waveform(b).value_at(2.5e-9);
  };

  const double v_lossless = run_line(0.0);
  const double v_lossy = run_line(66.0);
  EXPECT_GT(v_lossless, v_lossy + 0.01);
  EXPECT_GT(v_lossy, 0.2);  // but the signal still arrives
}

TEST(LossyCoupledLine, SectionCountValidation) {
  CoupledLineParams p;
  p.l = emc::linalg::Matrix{{466e-9}};
  p.c = emc::linalg::Matrix{{66e-12}};
  p.length = 0.1;  // total delay ~0.55 ns

  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  // 64 sections -> section delay ~8.6 ps < dt = 25 ps: must throw.
  EXPECT_THROW(add_coupled_lossy_line(ckt, {a}, {b}, p, 25e-12, 64), std::invalid_argument);
}

TEST(LossyCoupledLine, AutoSectionsRespectDt) {
  CoupledLineParams p;
  p.l = emc::linalg::Matrix{{466e-9}};
  p.c = emc::linalg::Matrix{{66e-12}};
  p.length = 0.1;

  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  auto h = add_coupled_lossy_line(ckt, {a}, {b}, p, 25e-12, 0);
  const double td_total = 0.1 * std::sqrt(466e-9 * 66e-12);
  EXPECT_GE(td_total / h.sections, 25e-12);
  EXPECT_GE(h.sections, 1);
  EXPECT_LE(h.sections, 16);
}

TEST(LossyCoupledLine, StampsIdenticalThroughDenseAndSparseStampers) {
  // The Fig. 3 structure — two coupled conductors, driver + quiet line,
  // capacitive far-end loads — stamped twice from identical device state:
  // once through the dense stamper, once through pattern discovery + the
  // sparse stamper. Every matrix entry and rhs entry must match exactly
  // (the stampers address different storage but receive the same values).
  CoupledLineParams p;
  p.l = emc::linalg::Matrix{{300e-9, 60e-9}, {60e-9, 300e-9}};
  p.c = emc::linalg::Matrix{{100e-12, -20e-12}, {-20e-12, 100e-12}};
  p.length = 0.1;
  p.loss.rdc = 5.0;
  p.loss.rskin = 1e-3;
  p.loss.tan_delta = 0.02;

  const double dt = 25e-12;
  Circuit ckt;
  const int a1 = ckt.node();
  const int a2 = ckt.node();
  const int b1 = ckt.node();
  const int b2 = ckt.node();
  const int src = ckt.node();
  ckt.add<VSource>(src, ckt.ground(), [](double t) { return t < 1e-10 ? 0.0 : 1.0; });
  ckt.add<Resistor>(src, a1, 25.0);
  ckt.add<Resistor>(a2, ckt.ground(), 25.0);
  add_coupled_lossy_line(ckt, {a1, a2}, {b1, b2}, p, dt, 0);
  ckt.add<Capacitor>(b1, ckt.ground(), 2e-12);
  ckt.add<Capacitor>(b2, ckt.ground(), 2e-12);

  const auto n = static_cast<std::size_t>(ckt.finalize());
  // Deterministic nonzero state so history-dependent stamps are exercised.
  std::vector<double> x(n), x_prev(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.1 + 0.03 * static_cast<double>(i % 7);
    x_prev[i] = 0.05 + 0.02 * static_cast<double>(i % 5);
  }

  const auto check_state = [&](const SimState& st) {
    emc::linalg::Matrix g(n, n);
    std::vector<double> rhs_dense(n, 0.0);
    DenseStamper ds(g, rhs_dense);
    for (const auto& dev : ckt.devices()) dev->stamp(ds, st);

    PatternStamper ps;
    for (const auto& dev : ckt.devices()) dev->stamp(ps, st);
    const auto pattern =
        emc::linalg::SparsePattern::build(n, std::move(ps).take_coords());

    emc::linalg::SparseMatrix a;
    a.set_pattern(&pattern);
    std::vector<double> rhs_sparse(n, 0.0);
    SparseStamper ss(a, rhs_sparse);
    for (const auto& dev : ckt.devices()) dev->stamp(ss, st);
    ASSERT_TRUE(ss.missed().empty());

    const auto d = a.to_dense();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(rhs_sparse[i], rhs_dense[i]) << "rhs row " << i;
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(d(i, j), g(i, j)) << "entry (" << i << ", " << j << ")";
    }
  };

  // DC topology: line stamps dc shorts, capacitors stamp open.
  for (const auto& dev : ckt.devices()) dev->reset();
  check_state(SimState{x, x_prev, 0.0, 0.0, true, 1.0});

  // Transient topology at a mid-run step, with line history loaded.
  for (const auto& dev : ckt.devices()) dev->reset();
  for (int k = 1; k <= 4; ++k) {
    const double t = dt * static_cast<double>(k);
    SimState step{x_prev, x_prev, t, dt, false, 1.0};
    for (const auto& dev : ckt.devices()) dev->start_step(step);
    SimState committed{x, x_prev, t, dt, false, 1.0};
    for (const auto& dev : ckt.devices()) dev->commit(committed);
  }
  const double t = dt * 5.0;
  SimState step{x_prev, x_prev, t, dt, false, 1.0};
  for (const auto& dev : ckt.devices()) dev->start_step(step);
  check_state(SimState{x, x_prev, t, dt, false, 1.0});
}
