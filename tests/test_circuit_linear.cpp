#include <gtest/gtest.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

using namespace emc::ckt;

TEST(CircuitDc, VoltageDivider) {
  Circuit ckt;
  const int vin = ckt.node("in");
  const int mid = ckt.node("mid");
  ckt.add<VSource>(vin, ckt.ground(), 10.0);
  ckt.add<Resistor>(vin, mid, 1000.0);
  ckt.add<Resistor>(mid, ckt.ground(), 3000.0);

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NEAR(res.waveform(mid)[0], 7.5, 1e-6);
  EXPECT_NEAR(res.waveform(vin)[0], 10.0, 1e-9);
}

TEST(CircuitDc, VsourceCurrentSignConvention) {
  // 10 V across 10 ohm: 1 A delivered, so the SPICE-convention branch
  // current (plus terminal through the source) is -1 A.
  Circuit ckt;
  const int vin = ckt.node();
  auto& vs = ckt.add<VSource>(vin, ckt.ground(), 10.0);
  ckt.add<Resistor>(vin, ckt.ground(), 10.0);

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NEAR(res.waveform(vs.current_id())[0], -1.0, 1e-6);
}

TEST(CircuitTransient, RcStepMatchesAnalytic) {
  // 1k / 1nF driven by a 1 V step: v_c = 1 - exp(-t/tau), tau = 1 us.
  Circuit ckt;
  const int vin = ckt.node();
  const int out = ckt.node();
  emc::sig::Pwl step({{0.0, 0.0}, {1e-9, 0.0}, {1.001e-9, 1.0}});
  ckt.add<VSource>(vin, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(vin, out, 1000.0);
  ckt.add<Capacitor>(out, ckt.ground(), 1e-9);

  TransientOptions opt;
  opt.dt = 5e-9;
  opt.t_stop = 5e-6;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(out);
  for (std::size_t k = 0; k < v.size(); k += 50) {
    const double t = v.time_at(k) - 1e-9;
    const double expect = t <= 0 ? 0.0 : 1.0 - std::exp(-t / 1e-6);
    EXPECT_NEAR(v[k], expect, 2e-3) << "at t=" << v.time_at(k);
  }
}

TEST(CircuitTransient, RlStepCurrentMatchesAnalytic) {
  // Series R-L on a step: i = (V/R)(1 - exp(-t R/L)).
  Circuit ckt;
  const int vin = ckt.node();
  const int mid = ckt.node();
  emc::sig::Pwl step({{0.0, 0.0}, {1e-9, 0.0}, {1.0001e-9, 1.0}});
  ckt.add<VSource>(vin, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(vin, mid, 50.0);
  auto& ind = ckt.add<Inductor>(mid, ckt.ground(), 100e-9);

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 20e-9;
  auto res = run_transient(ckt, opt);
  const auto i = res.waveform(ind.current_id());
  const double tau = 100e-9 / 50.0;  // 2 ns
  for (std::size_t k = 0; k < i.size(); k += 100) {
    const double t = i.time_at(k) - 1e-9;
    const double expect = t <= 0 ? 0.0 : (1.0 / 50.0) * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(i[k], expect, 5e-4) << "at t=" << i.time_at(k);
  }
}

TEST(CircuitTransient, LcResonanceFrequency) {
  // Underdamped series RLC; ringing frequency ~ 1/(2*pi*sqrt(LC)).
  Circuit ckt;
  const int vin = ckt.node();
  const int a = ckt.node();
  const int out = ckt.node();
  emc::sig::Pwl step({{0.0, 0.0}, {1e-10, 1.0}});
  ckt.add<VSource>(vin, ckt.ground(), [step](double t) { return step(t); });
  ckt.add<Resistor>(vin, a, 1.0);
  ckt.add<Inductor>(a, out, 10e-9);
  ckt.add<Capacitor>(out, ckt.ground(), 10e-12);

  TransientOptions opt;
  opt.dt = 5e-12;
  opt.t_stop = 20e-9;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(out);

  // Period from successive upward crossings of the settled value (1 V).
  const auto crossings = emc::sig::threshold_crossings(v, 1.0);
  ASSERT_GE(crossings.size(), 3u);
  const double period = crossings[2] - crossings[0];
  const double expected = 2.0 * M_PI * std::sqrt(10e-9 * 10e-12);
  EXPECT_NEAR(period, expected, 0.03 * expected);
}

TEST(CircuitTransient, CapacitorDcInitIsSteady) {
  // Capacitor pre-charged by the DC solve; transient must stay put.
  Circuit ckt;
  const int vin = ckt.node();
  const int out = ckt.node();
  ckt.add<VSource>(vin, ckt.ground(), 2.5);
  ckt.add<Resistor>(vin, out, 100.0);
  ckt.add<Capacitor>(out, ckt.ground(), 1e-12);

  TransientOptions opt;
  opt.dt = 1e-11;
  opt.t_stop = 1e-8;
  auto res = run_transient(ckt, opt);
  const auto v = res.waveform(out);
  for (std::size_t k = 0; k < v.size(); ++k) EXPECT_NEAR(v[k], 2.5, 1e-6);
}

TEST(ControlledSources, VcvsGain) {
  Circuit ckt;
  const int a = ckt.node();
  const int out = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 2.0);
  ckt.add<Vcvs>(out, ckt.ground(), a, ckt.ground(), 3.0);
  ckt.add<Resistor>(out, ckt.ground(), 1000.0);

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NEAR(res.waveform(out)[0], 6.0, 1e-6);
}

TEST(ControlledSources, VccsIntoLoad) {
  // gm = 10 mS driven by 2 V into 100 ohm: v_out = -gm*v*R = -2 V
  // (current flows out of node `out` into ground through the source).
  Circuit ckt;
  const int a = ckt.node();
  const int out = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 2.0);
  ckt.add<Vccs>(out, ckt.ground(), a, ckt.ground(), 10e-3);
  ckt.add<Resistor>(out, ckt.ground(), 100.0);

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  EXPECT_NEAR(res.waveform(out)[0], -2.0, 1e-6);
}

TEST(TableCurrentDevice, PiecewiseLinearResistor) {
  // Table of a 100 ohm resistor: i = v/100.
  Circuit ckt;
  const int a = ckt.node();
  ckt.add<VSource>(a, ckt.ground(), 2.0);
  std::vector<std::pair<double, double>> iv{{-1.0, -0.01}, {0.0, 0.0}, {1.0, 0.01}};
  auto& tc = ckt.add<TableCurrent>(a, ckt.ground(), iv);
  (void)tc;

  TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 2e-9;
  auto res = run_transient(ckt, opt);
  // Extrapolated linearly beyond the table: at 2 V the branch draws 20 mA;
  // the node is pinned by the source, so just verify via the source current.
  EXPECT_NEAR(res.waveform(a)[0], 2.0, 1e-9);
}

TEST(TableCurrentDevice, EvalInterpolatesAndExtrapolates) {
  std::vector<std::pair<double, double>> iv{{0.0, 0.0}, {1.0, 1e-3}, {2.0, 4e-3}};
  TableCurrent tc(1, 0, iv);
  EXPECT_NEAR(tc.eval(0.5).first, 0.5e-3, 1e-12);
  EXPECT_NEAR(tc.eval(1.5).first, 2.5e-3, 1e-12);
  EXPECT_NEAR(tc.eval(3.0).first, 7e-3, 1e-12);    // end-slope extrapolation
  EXPECT_NEAR(tc.eval(-1.0).first, -1e-3, 1e-12);  // start-slope extrapolation
}

TEST(TableCurrentDevice, RejectsBadTables) {
  EXPECT_THROW(TableCurrent(1, 0, {{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(TableCurrent(1, 0, {{1.0, 0.0}, {0.0, 0.0}}), std::invalid_argument);
}

TEST(Engine, InputValidation) {
  Circuit ckt;
  const int a = ckt.node();
  ckt.add<Resistor>(a, ckt.ground(), 1.0);
  TransientOptions opt;
  opt.dt = -1.0;
  opt.t_stop = 1.0;
  EXPECT_THROW(run_transient(ckt, opt), std::invalid_argument);
  opt.dt = 1e-9;
  opt.t_stop = 0.0;
  EXPECT_THROW(run_transient(ckt, opt), std::invalid_argument);
}

TEST(Engine, DeviceValidation) {
  EXPECT_THROW(Resistor(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(1, 0, -1e-12), std::invalid_argument);
  EXPECT_THROW(Inductor(1, 0, 0.0), std::invalid_argument);
}
