// Streaming transient -> EMI pipeline: the SampleSink protocol and sinks,
// run_transient_streamed vs. the recorded reference (bit-identical),
// chunk-size invariance, the chunk-fed Welch accumulator (bit-identical
// to welch_psd), and the segmented EMI receiver's detector agreement with
// the monolithic scan across segment/overlap corners (< 0.1 dB).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "emc/streaming.hpp"
#include "signal/csv.hpp"
#include "signal/sample_sink.hpp"
#include "signal/waveform.hpp"

namespace ckt = emc::ckt;
namespace sig = emc::sig;
namespace spec = emc::spec;

namespace {

/// Nonlinear clamp circuit: the streamed/recorded comparison must cover
/// the damped-Newton path, not just the cached-LU one.
int build_clamp(ckt::Circuit& c) {
  const int n1 = c.node();
  c.add<ckt::VSource>(n1, 0, [](double t) { return t < 1e-9 ? 0.0 : 3.3; });
  const int out = c.node();
  c.add<ckt::Resistor>(n1, out, 100.0);
  c.add<ckt::Diode>(out, 0);
  c.add<ckt::Capacitor>(out, 0, 1e-12);
  return out;
}

ckt::TransientOptions clamp_options() {
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 10e-9;
  return opt;
}

/// Feed a single-channel sample vector through a sink as a chunked stream.
void stream_samples(sig::SampleSink& sink, const std::vector<double>& y, double t0,
                    double dt, std::size_t chunk_frames) {
  sig::StreamInfo info;
  info.t0 = t0;
  info.dt = dt;
  info.channels = 1;
  info.total_frames = y.size();
  sink.begin(info);
  for (std::size_t f = 0; f < y.size(); f += chunk_frames) {
    sig::SampleChunk c;
    c.first_frame = f;
    c.frames = std::min(chunk_frames, y.size() - f);
    c.channels = 1;
    c.data = y.data() + f;
    sink.consume(c);
  }
  sink.finish();
}

// ------------------------------------------------- engine streaming path

TEST(StreamedTransient, RecordingSinkBitIdenticalToRunTransient) {
  ckt::Circuit c_ref, c_str;
  const int out_ref = build_clamp(c_ref);
  build_clamp(c_str);
  const auto opt = clamp_options();

  const auto ref = ckt::run_transient(c_ref, opt);

  const int n = c_str.finalize();
  std::vector<int> probes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) probes[static_cast<std::size_t>(i)] = i + 1;
  sig::RecordingSink rec;
  ckt::NewtonWorkspace ws;
  const auto stats = ckt::run_transient_streamed(c_str, opt, ws, probes, rec, 100);

  EXPECT_EQ(stats.steps, ref.stats.steps);
  EXPECT_EQ(stats.total_newton_iters, ref.stats.total_newton_iters);
  EXPECT_EQ(stats.weak_steps, ref.stats.weak_steps);

  ASSERT_EQ(rec.frames(), ref.steps());
  ASSERT_EQ(rec.channels(), static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < ref.steps(); ++k)
    for (int id = 1; id <= n; ++id)
      EXPECT_EQ(rec.value(k, static_cast<std::size_t>(id) - 1), ref.value(k, id))
          << "step " << k << " id " << id;

  // Waveform view agrees too (t0/dt metadata carried through the sink).
  const auto w_ref = ref.waveform(out_ref);
  const auto w_str = rec.waveform(static_cast<std::size_t>(out_ref) - 1);
  ASSERT_EQ(w_ref.size(), w_str.size());
  EXPECT_EQ(w_ref.t0(), w_str.t0());
  EXPECT_EQ(w_ref.dt(), w_str.dt());
  for (std::size_t k = 0; k < w_ref.size(); ++k) EXPECT_EQ(w_ref[k], w_str[k]);
}

TEST(StreamedTransient, ChunkSizeInvariance) {
  const auto opt = clamp_options();

  auto run_with_chunk = [&](std::size_t chunk) {
    ckt::Circuit c;
    const int out = build_clamp(c);
    sig::RecordingSink rec;
    ckt::NewtonWorkspace ws;
    const int probes[] = {out};
    ckt::run_transient_streamed(c, opt, ws, probes, rec, chunk);
    return std::move(rec).take_data();
  };

  const auto a = run_with_chunk(1);
  const auto b = run_with_chunk(7);
  const auto c = run_with_chunk(1 << 20);  // single chunk holds everything
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k], b[k]);
    EXPECT_EQ(a[k], c[k]);
  }
}

TEST(StreamedTransient, GroundProbeStreamsZeros) {
  ckt::Circuit c;
  const int out = build_clamp(c);
  sig::RecordingSink rec;
  ckt::NewtonWorkspace ws;
  const int probes[] = {0, out};
  ckt::run_transient_streamed(c, clamp_options(), ws, probes, rec, 64);
  ASSERT_GT(rec.frames(), 0u);
  for (std::size_t k = 0; k < rec.frames(); ++k) EXPECT_EQ(rec.value(k, 0), 0.0);
}

TEST(StreamedTransient, ValidatesProbesAndChunk) {
  ckt::Circuit c;
  build_clamp(c);
  sig::NullSink sink;
  ckt::NewtonWorkspace ws;
  const auto opt = clamp_options();

  const int bad_hi[] = {1000};
  EXPECT_THROW(ckt::run_transient_streamed(c, opt, ws, bad_hi, sink),
               std::invalid_argument);
  const int bad_lo[] = {-1};
  EXPECT_THROW(ckt::run_transient_streamed(c, opt, ws, bad_lo, sink),
               std::invalid_argument);
  const int good[] = {1};
  EXPECT_THROW(ckt::run_transient_streamed(c, opt, ws, good, sink, 0),
               std::invalid_argument);
}

TEST(StreamedTransient, SinkExceptionPropagates) {
  class ThrowingSink final : public sig::SampleSink {
   public:
    void consume(const sig::SampleChunk& chunk) override {
      if (chunk.first_frame >= 32) throw std::runtime_error("sink full");
    }
    void finish() override { finished = true; }
    bool finished = false;
  };
  ckt::Circuit c;
  const int out = build_clamp(c);
  ThrowingSink sink;
  ckt::NewtonWorkspace ws;
  const int probes[] = {out};
  EXPECT_THROW(ckt::run_transient_streamed(c, clamp_options(), ws, probes, sink, 16),
               std::runtime_error);
  EXPECT_FALSE(sink.finished);  // aborted streams never report completion
}

TEST(StreamedTransient, WorkspaceSurvivesSinkFailureMidChunk) {
  class MidChunkThrowingSink final : public sig::SampleSink {
   public:
    void consume(const sig::SampleChunk& chunk) override {
      if (chunk.first_frame >= 48) throw std::runtime_error("disk full");
    }
  };

  // First, the clean reference from a pristine workspace.
  const auto opt = clamp_options();
  std::vector<double> ref;
  {
    ckt::Circuit c;
    const int out = build_clamp(c);
    sig::RecordingSink rec;
    ckt::NewtonWorkspace fresh;
    const int probes[] = {out};
    ckt::run_transient_streamed(c, opt, fresh, probes, rec, 16);
    ref = std::move(rec).take_data();
  }

  // Now fail a run mid-stream, then reuse the SAME workspace: an aborted
  // delivery must not leave scratch state (LU cache, residual history,
  // staged chunk) that perturbs the next solve through that workspace.
  ckt::NewtonWorkspace ws;
  {
    ckt::Circuit c;
    const int out = build_clamp(c);
    MidChunkThrowingSink sink;
    const int probes[] = {out};
    EXPECT_THROW(ckt::run_transient_streamed(c, opt, ws, probes, sink, 16),
                 std::runtime_error);
  }
  {
    ckt::Circuit c;
    const int out = build_clamp(c);
    sig::RecordingSink rec;
    const int probes[] = {out};
    ckt::run_transient_streamed(c, opt, ws, probes, rec, 16);
    const auto got = std::move(rec).take_data();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t k = 0; k < got.size(); ++k)
      EXPECT_EQ(got[k], ref[k]) << "sample " << k;
  }
}

// -------------------------------------------------------- signal sinks

TEST(RecordingSink, WindowMatchesSliceOfFullRecord) {
  std::vector<double> y(257);
  for (std::size_t k = 0; k < y.size(); ++k) y[k] = std::sin(0.01 * static_cast<double>(k));

  sig::RecordingSink full;
  stream_samples(full, y, 1.0, 0.5, 31);
  ASSERT_EQ(full.frames(), y.size());

  sig::RecordingSink window(40, 100);
  stream_samples(window, y, 1.0, 0.5, 31);
  ASSERT_EQ(window.frames(), 100u);
  const auto w = window.waveform(0);
  EXPECT_DOUBLE_EQ(w.t0(), 1.0 + 0.5 * 40.0);
  for (std::size_t k = 0; k < 100; ++k) EXPECT_EQ(w[k], y[40 + k]);

  // Window past the end of the stream: captures what exists.
  sig::RecordingSink tail(250, 100);
  stream_samples(tail, y, 0.0, 1.0, 31);
  ASSERT_EQ(tail.frames(), 7u);
  for (std::size_t k = 0; k < 7; ++k) EXPECT_EQ(tail.value(k, 0), y[250 + k]);
}

TEST(DecimatingSink, KeepsEveryMthFrameAndRescalesDt) {
  std::vector<double> y(1000);
  for (std::size_t k = 0; k < y.size(); ++k) y[k] = static_cast<double>(k);

  sig::RecordingSink rec;
  sig::DecimatingSink dec(7, rec);
  stream_samples(dec, y, 2.0, 0.25, 13);  // chunk size coprime with factor

  ASSERT_EQ(rec.frames(), (y.size() + 6) / 7);
  const auto w = rec.waveform(0);
  EXPECT_DOUBLE_EQ(w.dt(), 0.25 * 7.0);
  EXPECT_DOUBLE_EQ(w.t0(), 2.0);
  for (std::size_t k = 0; k < rec.frames(); ++k)
    EXPECT_EQ(w[k], y[7 * k]) << "decimated frame " << k;

  EXPECT_THROW(sig::DecimatingSink(0, rec), std::invalid_argument);
}

TEST(ChannelTapSink, ExtractsOneChannelInOrder) {
  // Two-channel stream; the tap must deliver channel 1 contiguously.
  const std::size_t frames = 100;
  std::vector<double> data(frames * 2);
  for (std::size_t f = 0; f < frames; ++f) {
    data[2 * f] = static_cast<double>(f);
    data[2 * f + 1] = 1000.0 + static_cast<double>(f);
  }
  std::vector<double> got;
  sig::ChannelTapSink tap(1, [&](std::span<const double> x) {
    got.insert(got.end(), x.begin(), x.end());
  });
  sig::StreamInfo info{0.0, 1.0, 2, frames};
  tap.begin(info);
  for (std::size_t f = 0; f < frames; f += 9) {
    sig::SampleChunk c;
    c.first_frame = f;
    c.frames = std::min<std::size_t>(9, frames - f);
    c.channels = 2;
    c.data = data.data() + 2 * f;
    tap.consume(c);
  }
  ASSERT_EQ(got.size(), frames);
  for (std::size_t f = 0; f < frames; ++f) EXPECT_EQ(got[f], 1000.0 + static_cast<double>(f));

  sig::ChannelTapSink bad(5, [](std::span<const double>) {});
  EXPECT_THROW(bad.begin(info), std::invalid_argument);
}

// ------------------------------------------------------ CSV stream sink

TEST(CsvStreamSink, WritesHeaderAndAllRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "emc_stream_sink.csv").string();
  std::vector<double> y(300);
  for (std::size_t k = 0; k < y.size(); ++k) y[k] = 0.125 * static_cast<double>(k);

  sig::CsvStreamSink sink(path, {"v_out"});
  stream_samples(sink, y, 0.0, 1e-9, 64);
  EXPECT_EQ(sink.rows_written(), y.size());

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "time,v_out");
  std::size_t rows = 0;
  double last_v = -1.0;
  while (std::getline(is, line)) {
    ++rows;
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    last_v = std::stod(line.substr(comma + 1));
  }
  EXPECT_EQ(rows, y.size());
  EXPECT_DOUBLE_EQ(last_v, y.back());
  std::filesystem::remove(path);
}

TEST(CsvStreamSink, UnopenablePathThrowsInBegin) {
  // The target "directory" component is an existing regular file, so the
  // sink can neither create it nor open the leaf.
  const auto blocker = std::filesystem::temp_directory_path() / "emc_csv_blocker";
  { std::ofstream(blocker) << "x"; }
  sig::CsvStreamSink sink((blocker / "sub" / "out.csv").string(), {"v"});
  sig::StreamInfo info{0.0, 1.0, 1, 10};
  EXPECT_THROW(sink.begin(info), std::runtime_error);
  std::filesystem::remove(blocker);

  EXPECT_THROW(sig::CsvStreamSink("x.csv", {}), std::invalid_argument);
}

TEST(CsvWriters, WriteFailureThrowsInsteadOfTruncating) {
  // /dev/full accepts opens but fails every flush with ENOSPC — exactly
  // the silent-truncation scenario the stream-state checks must catch.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";

  const sig::Waveform w(0.0, 1e-9, std::vector<double>(4096, 1.0));
  EXPECT_THROW(sig::write_csv("/dev/full", {"v"}, {w}), std::runtime_error);

  const std::vector<double> freq(4096, 1e6);
  const std::vector<std::vector<double>> cols{std::vector<double>(4096, 0.0)};
  EXPECT_THROW(sig::write_spectrum_csv("/dev/full", {"s"}, freq, cols),
               std::runtime_error);

  sig::CsvStreamSink sink("/dev/full", {"v"});
  EXPECT_THROW(stream_samples(sink, std::vector<double>(1 << 16, 1.0), 0.0, 1.0, 4096),
               std::runtime_error);
}

// --------------------------------------------------- Welch accumulation

sig::Waveform lcg_noise(std::size_t n, double dt) {
  std::vector<double> y(n);
  std::uint64_t s = 0x2545F4914F6CDD1Dull;
  for (std::size_t k = 0; k < n; ++k) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    y[k] = static_cast<double>(s >> 11) / 9007199254740992.0 - 0.5;
  }
  return sig::Waveform(0.0, dt, std::move(y));
}

TEST(WelchAccumulator, BitIdenticalToMonolithicWelchPsd) {
  const auto w = lcg_noise(10000, 1e-9);
  for (const double overlap : {0.0, 0.5, 0.75}) {
    for (const auto win : {spec::Window::kHann, spec::Window::kRectangular}) {
      const auto ref = spec::welch_psd(w, 1024, win, overlap);

      spec::WelchAccumulator acc(w.dt(), 1024, win, overlap);
      // Awkward chunk sizes: smaller than, equal to, and larger than the
      // segment, plus a 1-sample drip.
      std::size_t pos = 0;
      const std::size_t sizes[] = {1, 3, 17, 1024, 5000};
      std::size_t si = 0;
      while (pos < w.size()) {
        const std::size_t take = std::min(sizes[si % 5], w.size() - pos);
        acc.push(std::span<const double>(w.samples().data() + pos, take));
        pos += take;
        ++si;
      }

      const auto got = acc.psd();
      EXPECT_EQ(got.df, ref.df);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t k = 0; k < ref.size(); ++k)
        EXPECT_EQ(got.value[k], ref.value[k])
            << "bin " << k << " overlap " << overlap;
    }
  }
}

TEST(WelchAccumulator, ThrowsBeforeFirstSegmentAndResets) {
  spec::WelchAccumulator acc(1e-9, 256);
  EXPECT_THROW(acc.psd(), std::logic_error);
  const std::vector<double> x(300, 1.0);
  acc.push(x);
  EXPECT_EQ(acc.segments(), 1u);
  EXPECT_NO_THROW(acc.psd());
  acc.reset();
  EXPECT_EQ(acc.segments(), 0u);
  EXPECT_THROW(acc.psd(), std::logic_error);
  EXPECT_GT(acc.state_bytes(), 0u);
}

// ------------------------------------------- segmented EMI accumulation

/// Exactly coherent broadband test signal: harmonics of f0 = 1/(P*dt)
/// spanning the scan band, smooth deterministic amplitudes and phases.
/// Any whole number of periods is sampled coherently, so segmented and
/// monolithic receivers measure the same line spectrum.
sig::Waveform harmonic_record(std::size_t period, std::size_t periods, double dt) {
  const double f0 = 1.0 / (static_cast<double>(period) * dt);
  std::vector<double> y(period * periods, 0.0);
  for (int h = 10; h <= 380; h += 3) {
    const double a = 1.0 / (1.0 + 0.01 * static_cast<double>(h));
    const double phi = 2.0 * std::numbers::pi * 0.618034 * static_cast<double>(h * h % 89);
    const double om = 2.0 * std::numbers::pi * f0 * static_cast<double>(h) * dt;
    for (std::size_t k = 0; k < y.size(); ++k)
      y[k] += a * std::cos(om * static_cast<double>(k) + phi);
  }
  return sig::Waveform(0.0, dt, std::move(y));
}

TEST(SegmentedEmi, DetectorsWithinTenthDbOfMonolithicAcrossCorners) {
  // P = 2048 @ 10 GS/s: f0 = 4.88 MHz, harmonics 10..380 cover ~49 MHz to
  // ~1.86 GHz — every scan point sees genuine signal, no spectral nulls.
  const std::size_t period = 2048;
  const std::size_t periods = 4;
  const double dt = 100e-12;
  const auto w = harmonic_record(period, periods, dt);

  spec::ReceiverSettings rx;
  rx.name = "segmented-vs-monolithic";
  rx.f_start = 100e6;
  rx.f_stop = 1.6e9;
  rx.n_points = 16;
  rx.rbw = 25e6;
  rx.tau_charge = 0.5e-9;
  rx.tau_discharge = 10e-9;

  const auto mono = spec::emi_scan(w, rx);
  ASSERT_EQ(mono.skipped_points, 0u);

  for (const std::size_t seg : {period, 2 * period}) {
    for (const double overlap : {0.0, 0.5}) {
      spec::SegmentedScanOptions opt;
      opt.segment_len = seg;
      opt.overlap = overlap;
      opt.rx = rx;
      spec::SegmentedEmiAccumulator acc(w.t0(), w.dt(), opt);
      // Push in odd-sized chunks to exercise the carry buffer.
      std::size_t pos = 0;
      while (pos < w.size()) {
        const std::size_t take = std::min<std::size_t>(777, w.size() - pos);
        acc.push(std::span<const double>(w.samples().data() + pos, take));
        pos += take;
      }
      ASSERT_GE(acc.segments(), 2u) << "seg " << seg << " overlap " << overlap;
      const auto got = acc.result();
      ASSERT_EQ(got.size(), mono.size());
      EXPECT_EQ(got.skipped_points, 0u);
      const double delta = spec::max_detector_delta_db(mono, got);
      EXPECT_LT(delta, 0.1) << "seg " << seg << " overlap " << overlap;
    }
  }
}

TEST(SegmentedEmi, ResultBeforeFirstSegmentThrows) {
  spec::SegmentedScanOptions opt;
  opt.segment_len = 1024;
  opt.rx.f_start = 1e8;
  opt.rx.f_stop = 1e9;
  opt.rx.rbw = 25e6;
  opt.rx.tau_charge = 1e-9;
  opt.rx.tau_discharge = 10e-9;
  spec::SegmentedEmiAccumulator acc(0.0, 100e-12, opt);
  EXPECT_THROW(acc.result(), std::logic_error);
  EXPECT_THROW(spec::SegmentedEmiAccumulator(0.0, 0.0, opt), std::invalid_argument);
}

TEST(StreamingEmiSink, MatchesDirectAccumulator) {
  const std::size_t period = 1024;
  const double dt = 100e-12;
  const auto w = harmonic_record(period, 3, dt);

  spec::SegmentedScanOptions opt;
  opt.segment_len = period;
  opt.rx.name = "sink";
  opt.rx.f_start = 2e8;
  opt.rx.f_stop = 1.5e9;
  opt.rx.n_points = 8;
  opt.rx.rbw = 40e6;
  opt.rx.tau_charge = 0.5e-9;
  opt.rx.tau_discharge = 10e-9;

  spec::SegmentedEmiAccumulator direct(w.t0(), dt, opt);
  direct.push(std::span<const double>(w.samples()));
  const auto want = direct.result();

  // Same samples as channel 1 of a two-channel stream (channel 0 is junk
  // the sink must ignore).
  spec::StreamingEmiSink sink(1, opt);
  std::vector<double> frames(2 * w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    frames[2 * k] = -7.0;
    frames[2 * k + 1] = w[k];
  }
  sig::StreamInfo info{w.t0(), dt, 2, w.size()};
  sink.begin(info);
  for (std::size_t f = 0; f < w.size(); f += 500) {
    sig::SampleChunk c;
    c.first_frame = f;
    c.frames = std::min<std::size_t>(500, w.size() - f);
    c.channels = 2;
    c.data = frames.data() + 2 * f;
    sink.consume(c);
  }
  sink.finish();

  const auto got = sink.scan();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got.peak_dbuv[k], want.peak_dbuv[k]);
    EXPECT_EQ(got.quasi_peak_dbuv[k], want.quasi_peak_dbuv[k]);
    EXPECT_EQ(got.average_dbuv[k], want.average_dbuv[k]);
  }

  spec::StreamingEmiSink bad(7, opt);
  EXPECT_THROW(bad.begin(info), std::invalid_argument);
  spec::StreamingEmiSink unused(0, opt);
  EXPECT_THROW(unused.scan(), std::logic_error);
}

}  // namespace
