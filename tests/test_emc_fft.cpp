// FFT layer of the spectral EMC subsystem: radix-2 and Bluestein paths
// against a naive DFT, Parseval's identity, and round-trip accuracy on
// awkward (non-power-of-two, prime) lengths.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "emc/fft.hpp"
#include "signal/sources.hpp"

using emc::spec::FftPlan;
using cplx = std::complex<double>;

namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  emc::sig::Lcg rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  return x;
}

std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ph = -2.0 * std::numbers::pi * static_cast<double>(j * k % n) /
                        static_cast<double>(n);
      acc += x[j] * cplx{std::cos(ph), std::sin(ph)};
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace

TEST(EmcFft, MatchesNaiveDftAcrossLengths) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 12u, 16u, 17u, 31u, 32u, 45u, 64u}) {
    FftPlan plan(n);
    auto x = random_signal(n, 1000 + n);
    auto ref = naive_dft(x);
    plan.forward(x.data());
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-9 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
  }
}

TEST(EmcFft, ImpulseAndDc) {
  FftPlan plan(24);
  std::vector<cplx> impulse(24, 0.0);
  impulse[0] = 1.0;
  plan.forward(impulse.data());
  for (const auto& v : impulse) EXPECT_NEAR(std::abs(v - cplx{1.0, 0.0}), 0.0, 1e-12);

  std::vector<cplx> dc(24, 1.0);
  plan.forward(dc.data());
  EXPECT_NEAR(std::abs(dc[0] - cplx{24.0, 0.0}), 0.0, 1e-12);
  for (std::size_t k = 1; k < dc.size(); ++k) EXPECT_NEAR(std::abs(dc[k]), 0.0, 1e-11);
}

TEST(EmcFft, ParsevalIdentity) {
  // sum |x|^2 == (1/n) sum |X|^2, on both radix-2 and Bluestein paths.
  for (std::size_t n : {256u, 1000u, 729u, 1021u}) {  // 1021 is prime
    FftPlan plan(n);
    auto x = random_signal(n, 7 * n);
    double time_energy = 0.0;
    for (const auto& v : x) time_energy += std::norm(v);
    plan.forward(x.data());
    double freq_energy = 0.0;
    for (const auto& v : x) freq_energy += std::norm(v);
    freq_energy /= static_cast<double>(n);
    EXPECT_NEAR(freq_energy, time_energy, 1e-10 * time_energy) << "n=" << n;
  }
}

TEST(EmcFft, RoundTripBelow1em12OnNonPowerOfTwo) {
  // Acceptance criterion: forward + inverse returns the input to < 1e-12
  // on non-power-of-two lengths.
  for (std::size_t n : {600u, 1000u, 1021u, 2400u}) {
    FftPlan plan(n);
    const auto x0 = random_signal(n, 31 * n);
    auto x = x0;
    plan.forward(x.data());
    plan.inverse(x.data());
    double worst = 0.0;
    for (std::size_t k = 0; k < n; ++k) worst = std::max(worst, std::abs(x[k] - x0[k]));
    EXPECT_LT(worst, 1e-12) << "n=" << n;
  }
}

TEST(EmcFft, InverseUndoesForwardPow2) {
  FftPlan plan(512);
  const auto x0 = random_signal(512, 99);
  auto x = x0;
  plan.forward(x.data());
  plan.inverse(x.data());
  for (std::size_t k = 0; k < x.size(); ++k)
    EXPECT_NEAR(std::abs(x[k] - x0[k]), 0.0, 1e-12);
}

TEST(EmcFft, ForwardRealMatchesNaiveRealDftAcrossLengths) {
  // The split/recombine real kernel against a naive real DFT on even,
  // odd and prime lengths (2 and 4 hit the specialized DC/Nyquist and
  // center-bin butterflies with an empty recombine loop; 127 and 257 are
  // primes on the odd fallback / Bluestein path).
  for (std::size_t n : {2u, 4u, 6u, 8u, 12u, 16u, 18u, 30u, 32u, 64u, 100u, 127u, 128u,
                        255u, 256u, 257u, 300u}) {
    emc::sig::Lcg rng(500 + n);
    std::vector<double> xr(n);
    std::vector<cplx> xc(n);
    for (std::size_t k = 0; k < n; ++k) {
      xr[k] = rng.uniform() * 2.0 - 1.0;
      xc[k] = {xr[k], 0.0};
    }
    const auto ref = naive_dft(xc);
    FftPlan plan(n);
    std::vector<cplx> bins;
    plan.forward_real(xr, bins);
    ASSERT_EQ(bins.size(), n / 2 + 1) << "n=" << n;
    for (std::size_t k = 0; k < bins.size(); ++k)
      EXPECT_NEAR(std::abs(bins[k] - ref[k]), 0.0, 1e-10 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
  }
}

TEST(EmcFft, ParsevalOnRecombinedHalfSpectrum) {
  // sum x^2 == (1/n) * sum |X_k|^2 with interior bins carrying their
  // conjugate pair's energy — on the recombined half-spectrum directly.
  for (std::size_t n : {256u, 300u, 255u, 1024u}) {
    emc::sig::Lcg rng(9 * n);
    std::vector<double> x(n);
    double time_energy = 0.0;
    for (auto& v : x) {
      v = rng.uniform() * 2.0 - 1.0;
      time_energy += v * v;
    }
    FftPlan plan(n);
    std::vector<cplx> bins;
    plan.forward_real(x, bins);
    double freq_energy = 0.0;
    for (std::size_t k = 0; k < bins.size(); ++k) {
      const bool paired = k != 0 && !(n % 2 == 0 && k == n / 2);
      freq_energy += std::norm(bins[k]) * (paired ? 2.0 : 1.0);
    }
    freq_energy /= static_cast<double>(n);
    EXPECT_NEAR(freq_energy, time_energy, 1e-10 * time_energy) << "n=" << n;
  }
}

TEST(EmcFft, RealPlanIsReusableAcrossCalls) {
  FftPlan plan(128);
  for (std::uint64_t seed : {11u, 12u}) {
    emc::sig::Lcg rng(seed);
    std::vector<double> xr(128);
    std::vector<cplx> xc(128);
    for (std::size_t k = 0; k < 128; ++k) {
      xr[k] = rng.uniform() * 2.0 - 1.0;
      xc[k] = {xr[k], 0.0};
    }
    const auto ref = naive_dft(xc);
    std::vector<cplx> bins;
    plan.forward_real(xr, bins);
    for (std::size_t k = 0; k < bins.size(); ++k)
      EXPECT_NEAR(std::abs(bins[k] - ref[k]), 0.0, 1e-10) << "seed=" << seed;
  }
}

TEST(EmcFft, InverseToMatchesInPlaceInverseAndPreservesInput) {
  // Out-of-place inverse on both the radix-2 and Bluestein paths: same
  // result as the in-place inverse, and the (sparse, caller-maintained)
  // input spectrum is left untouched.
  for (std::size_t n : {512u, 300u, 1u}) {
    FftPlan plan(n);
    const auto spectrum = random_signal(n, 400 + n);
    auto in_place = spectrum;
    plan.inverse(in_place.data());

    const auto spectrum_before = spectrum;
    std::vector<cplx> out(n);
    plan.inverse_to(spectrum.data(), out.data());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(out[k] - in_place[k]), 0.0, 1e-14) << "n=" << n << " k=" << k;
      EXPECT_EQ(spectrum[k], spectrum_before[k]) << "input modified, n=" << n;
    }
  }
}

TEST(EmcFft, ForwardRealMatchesComplexBins) {
  const std::size_t n = 300;
  emc::sig::Lcg rng(5);
  std::vector<double> xr(n);
  std::vector<cplx> xc(n);
  for (std::size_t k = 0; k < n; ++k) {
    xr[k] = rng.uniform() * 2.0 - 1.0;
    xc[k] = {xr[k], 0.0};
  }
  FftPlan plan(n);
  std::vector<cplx> bins;
  plan.forward_real(xr, bins);
  plan.forward(xc.data());
  ASSERT_EQ(bins.size(), n / 2 + 1);
  for (std::size_t k = 0; k < bins.size(); ++k)
    EXPECT_NEAR(std::abs(bins[k] - xc[k]), 0.0, 1e-11);
}

TEST(EmcFft, PlanIsReusable) {
  // Two different records through one plan: no state leaks between calls.
  FftPlan plan(90);
  auto a = random_signal(90, 1);
  auto b = random_signal(90, 2);
  auto a_ref = naive_dft(a);
  auto b_ref = naive_dft(b);
  plan.forward(a.data());
  plan.forward(b.data());
  for (std::size_t k = 0; k < 90; ++k) {
    EXPECT_NEAR(std::abs(a[k] - a_ref[k]), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(b[k] - b_ref[k]), 0.0, 1e-9);
  }
}

TEST(EmcFft, RejectsZeroLength) { EXPECT_THROW(FftPlan(0), std::invalid_argument); }
