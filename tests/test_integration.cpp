// End-to-end integration: a complete point-to-point link (driver -> lossy
// interconnect -> receiver) where BOTH ports are replaced by their
// estimated macromodels at once, validated against the full
// transistor-level simulation. This is the paper's intended use case: a
// system-level EMC/SI simulation running entirely on behavioral models.
#include <gtest/gtest.h>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_device.hpp"
#include "core/driver_estimator.hpp"
#include "core/receiver_device.hpp"
#include "core/receiver_estimator.hpp"
#include "core/validation.hpp"
#include "devices/reference_driver.hpp"
#include "devices/reference_receiver.hpp"
#include "signal/sources.hpp"

using namespace emc;

namespace {

struct LinkModels {
  dev::DriverTech drv_tech = dev::DriverTech::md2_ibm18();
  dev::ReceiverTech rx_tech = dev::ReceiverTech::md4_ibm18();
  core::PwRbfDriverModel driver;
  core::ParametricReceiverModel receiver;
};

const LinkModels& models() {
  static const LinkModels m = [] {
    LinkModels lm;
    core::CircuitDriverDut ddut(lm.drv_tech);
    lm.driver = core::estimate_driver_model(ddut);
    core::CircuitReceiverDut rdut(lm.rx_tech);
    lm.receiver = core::estimate_receiver_model(rdut);
    return lm;
  }();
  return m;
}

/// A 1.8 V point-to-point link over 10 cm of lossy interconnect.
struct LinkRun {
  sig::Waveform near;
  sig::Waveform pin;
};

LinkRun run_link(bool behavioral, const std::string& bits) {
  const auto& m = models();

  ckt::CoupledLineParams line;
  line.l = linalg::Matrix{{466e-9}};
  line.c = linalg::Matrix{{66e-12}};
  line.length = 0.1;
  line.loss.rdc = 66.0;
  line.loss.rskin = 1.6e-3;
  line.loss.tan_delta = 0.001;

  ckt::Circuit c;
  const int near = c.node();
  const int pin = c.node();
  add_coupled_lossy_line(c, {near}, {pin}, line, 25e-12, 8);

  if (behavioral) {
    c.add<core::DriverDevice>(near, m.driver, bits, 2e-9);
    c.add<core::ReceiverDevice>(pin, m.receiver);
  } else {
    auto pattern = sig::bit_stream(bits, 2e-9, 0.1e-9, 0.0, m.drv_tech.vdd);
    auto drv = dev::build_reference_driver(c, m.drv_tech,
                                           [pattern](double t) { return pattern(t); });
    c.add<ckt::Resistor>(drv.pad, near, 1e-3);
    auto rx = dev::build_reference_receiver(c, m.rx_tech);
    c.add<ckt::Resistor>(rx.pin, pin, 1e-3);
  }

  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = 14e-9;
  auto res = ckt::run_transient(c, opt);
  return {res.waveform(near), res.waveform(pin)};
}

}  // namespace

TEST(IntegrationLink, FullyBehavioralLinkTracksReference) {
  const auto ref = run_link(false, "0110");
  const auto mod = run_link(true, "0110");

  const double vth = models().drv_tech.vdd / 2;
  const auto rep_pin =
      core::validate_waveform("receiver pin", ref.pin, mod.pin, vth, 0.2e-9);
  EXPECT_LT(rep_pin.rel_rms, 0.12);
  ASSERT_TRUE(rep_pin.edge_timing_error.has_value());
  EXPECT_LT(*rep_pin.edge_timing_error, 40e-12);

  const auto rep_near =
      core::validate_waveform("driver pad", ref.near, mod.near, vth, 0.2e-9);
  EXPECT_LT(rep_near.rel_rms, 0.12);
}

TEST(IntegrationLink, EyeLevelsSettleCorrectly) {
  const auto mod = run_link(true, "0110");
  const auto& m = models();
  // After the last falling edge the link must settle back near ground;
  // mid-pattern High must reach the receiver near VDD (light DC load).
  // The settled-Low tolerance reflects the RBF submodel's static
  // zero-crossing offset (a few percent of its +-0.5 A fit range maps to
  // ~0.2 V through the output conductance; see EXPERIMENTS.md).
  EXPECT_NEAR(mod.pin.value_at(13.8e-9), 0.0, 0.25);
  EXPECT_NEAR(mod.pin.value_at(5.6e-9), m.drv_tech.vdd, 0.25);
}

TEST(IntegrationLink, BehavioralLinkIsDeterministic) {
  const auto a = run_link(true, "01");
  const auto b = run_link(true, "01");
  for (std::size_t k = 0; k < a.pin.size(); k += 25)
    EXPECT_DOUBLE_EQ(a.pin[k], b.pin[k]);
}
