// Shared experiment builders for the paper-reproduction benches: device
// presets, the Fig. 3 coupled interconnect, and runners that produce the
// reference / macromodel / IBIS waveforms for every validation setup.
#pragma once

#include <string>
#include <vector>

#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_estimator.hpp"
#include "core/receiver_estimator.hpp"
#include "devices/reference_driver.hpp"
#include "devices/reference_receiver.hpp"
#include "ibis/extract.hpp"
#include "signal/waveform.hpp"

namespace emc::exp {

inline constexpr double kTs = 25e-12;  ///< paper sampling time

/// Estimate the PW-RBF model of a driver technology (cached per process).
core::PwRbfDriverModel make_driver_model(const dev::DriverTech& tech,
                                         const std::string& name);

/// Estimate the receiver models of MD4.
core::ParametricReceiverModel make_receiver_model();
core::CrReceiverModel make_cr_model();

/// Fig. 3 coupled on-MCM interconnect (parameters reconstructed in
/// DESIGN.md section 6).
ckt::CoupledLineParams mcm_fig3_params();

/// Fig. 1: MD1 driving an ideal line (50 ohm / 0.5 ns) with a 10 pF far
/// capacitor, bit pattern "01"; near-end voltage.
struct Fig1Curves {
  sig::Waveform reference;
  sig::Waveform pwrbf;
  sig::Waveform ibis_slow, ibis_typical, ibis_fast;
};
Fig1Curves run_fig1();

/// Fig. 2: MD2 driving three ideal lines with a 1 ns "010" pulse; far-end
/// voltages, 1 pF terminations.
struct Fig2Panel {
  double z0;
  double td;
  sig::Waveform reference;
  sig::Waveform pwrbf;
};
std::vector<Fig2Panel> run_fig2();

/// Fig. 4: two MD3 drivers on the Fig. 3 structure; far-end voltages of
/// the active (v21) and quiet (v22) lands.
struct Fig4Curves {
  sig::Waveform v21_reference, v21_pwrbf;
  sig::Waveform v22_reference, v22_pwrbf;
};
Fig4Curves run_fig4(bool use_model_drivers, double t_stop = 30e-9);
Fig4Curves run_fig4_both(double t_stop = 30e-9);

/// Fig. 5: MD4 receiver driven through 10 ohm by a 1 V / 100 ps trapezoid;
/// pin current for reference / parametric / C-R models.
struct Fig5Curves {
  sig::Waveform i_reference, i_parametric, i_cr;
};
Fig5Curves run_fig5();

/// Fig. 6: MD4 at the end of a 10 cm lossy line driven through 50 ohm by a
/// 3 ns pulse with 100 ps edges; pin voltage per amplitude.
struct Fig6Panel {
  double amplitude;
  sig::Waveform v_reference, v_parametric, v_cr;
};
std::vector<Fig6Panel> run_fig6();

/// Bus-crosstalk emission scenario (shared by bench_emc and the EMC
/// examples): two MD3 drivers on the Fig. 3 coupled interconnect, the
/// aggressor repeating its 15-bit pattern `periods` times while the victim
/// holds Low. Far-end voltages for the transistor-level reference and the
/// PW-RBF macromodel.
struct BusEmissions {
  double pattern_period = 0.0;  ///< one aggressor pattern repetition [s]
  sig::Waveform active_reference, quiet_reference;
  sig::Waveform active_pwrbf, quiet_pwrbf;
};
BusEmissions run_bus_emissions(int periods);

}  // namespace emc::exp
