// Microbenchmarks of the substrate: they explain where the Table 1 CPU
// time goes (dense MNA solves vs device evaluation) and quantify the cost
// of the macromodel primitives (RBF evaluation, OLS estimation).
#include <benchmark/benchmark.h>

#include <cmath>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "ident/rbf.hpp"
#include "linalg/decomp.hpp"
#include "signal/sources.hpp"

namespace {

using namespace emc;

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(n, n);
  sig::Lcg rng(7);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform() - 0.5;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    auto x = linalg::LuFactor(a).solve(b);
    benchmark::DoNotOptimize(x);
  }
}

void BM_RbfEval(benchmark::State& state) {
  const auto nb = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 5;  // order-2 NARX regressor
  ident::Scaler sc(std::vector<double>(dim, 0.0), std::vector<double>(dim, 1.0));
  linalg::Matrix centers(nb, dim);
  std::vector<double> w(nb, 0.1);
  sig::Lcg rng(3);
  for (std::size_t j = 0; j < nb; ++j)
    for (std::size_t k = 0; k < dim; ++k) centers(j, k) = rng.uniform() * 2.0 - 1.0;
  ident::RbfModel m(sc, centers, w, 0.0, 1.5);

  std::vector<double> x(dim, 0.3);
  for (auto _ : state) {
    double g = 0.0;
    const double y = m.eval_with_grad(x, 0, &g);
    benchmark::DoNotOptimize(y);
    benchmark::DoNotOptimize(g);
  }
}

void BM_TransientRcLadder(benchmark::State& state) {
  // Cost per simulated nanosecond of a linear ladder with n sections.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ckt::Circuit c;
    sig::Pwl step({{0.0, 0.0}, {0.1e-9, 1.0}});
    int prev = c.node();
    c.add<ckt::VSource>(prev, c.ground(), [step](double t) { return step(t); });
    for (int k = 0; k < n; ++k) {
      const int nxt = c.node();
      c.add<ckt::Resistor>(prev, nxt, 10.0);
      c.add<ckt::Capacitor>(nxt, c.ground(), 1e-12);
      prev = nxt;
    }
    ckt::TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 1e-9;
    auto res = ckt::run_transient(c, opt);
    benchmark::DoNotOptimize(res);
  }
}

void BM_TransientCmosInverter(benchmark::State& state) {
  // Nonlinear Newton cost: one switching CMOS stage per step.
  for (auto _ : state) {
    ckt::Circuit c;
    const int vdd = c.node();
    const int in = c.node();
    const int out = c.node();
    c.add<ckt::VSource>(vdd, c.ground(), 2.5);
    auto bits = sig::bit_stream("0101", 1e-9, 0.1e-9, 0.0, 2.5);
    c.add<ckt::VSource>(in, c.ground(), [bits](double t) { return bits(t); });
    ckt::MosParams pn;
    pn.vt0 = 0.5;
    ckt::MosParams pp;
    pp.type = ckt::MosType::Pmos;
    pp.vt0 = 0.5;
    pp.w = 25e-6;
    c.add<ckt::Mosfet>(out, in, c.ground(), pn);
    c.add<ckt::Mosfet>(out, in, vdd, pp);
    c.add<ckt::Capacitor>(out, c.ground(), 50e-15);
    ckt::TransientOptions opt;
    opt.dt = 25e-12;
    opt.t_stop = 4e-9;
    auto res = ckt::run_transient(c, opt);
    benchmark::DoNotOptimize(res);
  }
}

void BM_OlsFit(benchmark::State& state) {
  // RBF estimation cost on a synthetic NARX dataset (the per-model cost of
  // the paper's "low cost of generation" claim).
  const std::size_t n = 4000;
  linalg::Matrix x(n, 5);
  std::vector<double> y(n);
  sig::Lcg rng(11);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t cidx = 0; cidx < 5; ++cidx) x(r, cidx) = rng.uniform() * 4.0 - 2.0;
    y[r] = std::tanh(x(r, 0)) + 0.2 * x(r, 3);
  }
  ident::RbfFitOptions opt;
  opt.max_basis = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto m = ident::fit_rbf_ols(x, y, opt);
    benchmark::DoNotOptimize(m);
  }
}

}  // namespace

BENCHMARK(BM_DenseLuSolve)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_RbfEval)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_TransientRcLadder)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransientCmosInverter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OlsFit)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
