// Bench + gate of the adaptive mask-driven receiver scan and the
// scenario-axis refinement stage.
//
// Phase A (certified scan): scan a busy multi-harmonic record with the
// adaptive planner and against a dense (16x coarse) fixed reference.
// Gates: the adaptive worst margin is within 0.02 dB of the dense
// reference, every mask crossing is certified by a measured (pass, fail)
// bracket within the frequency tolerance, and the adaptive scan spends at
// most 40% of the dense reference's detector passes (>= 2.5x scan-phase
// work reduction by construction).
//
// Phase B (adaptive sweep + refinement): run the full emission corner
// sweep under ScanPlan::kAdaptive with a mask calibrated to put a
// pass/fail boundary inside the line-length axis. Gates: the sweep and
// its refinement stage are bit-identical across worker counts, the
// refinement outcome equals a from-scratch sweep of the refined grid
// (same pass/fail boundary corners), and the lane-batched refinement
// matches the scalar sparse one.
//
//   bench_adaptive [--jobs N] [--smoke]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numbers>
#include <thread>
#include <vector>

#include "baseline.hpp"
#include "emc/adaptive.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "experiments.hpp"
#include "json_out.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace emc;
using bench::seconds_since;

/// Nine harmonics of 1 MHz with slow AM plus LCG noise; scanned with an
/// RBW above the harmonic spacing the detector trace is a smooth envelope
/// (dense-grid quantization error well under the 0.02 dB gate).
sig::Waveform busy_record(std::size_t n, double fs) {
  sig::Lcg rng(77);
  std::vector<double> y(n);
  const double dt = 1.0 / fs;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    double v = 0.0;
    for (int h = 1; h <= 9; ++h)
      v += (1.0 / h) * std::sin(2.0 * std::numbers::pi * 1e6 * h * t + 0.3 * h);
    v *= 1.0 + 0.4 * std::sin(2.0 * std::numbers::pi * 40e3 * t);
    v += 0.01 * (rng.uniform() * 2.0 - 1.0);
    y[k] = v;
  }
  return {0.0, dt, std::move(y)};
}

double margin_at(const spec::CertifiedScan& cs, const spec::LimitMask& mask,
                 spec::TraceSel trace, double f) {
  const auto& freq = cs.scan.freq;
  const auto it = std::find(freq.begin(), freq.end(), f);
  if (it == freq.end()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t k = static_cast<std::size_t>(it - freq.begin());
  return mask.at(f) - spec::scan_trace(cs.scan, trace)[k];
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  std::size_t jobs = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_adaptive [--jobs N] [--smoke]\n");
      return 2;
    }
  }
  if (jobs == 0) jobs = sweep::ThreadPool::default_workers();

  std::printf("=== bench_adaptive: certified adaptive scan + sweep refinement ===%s\n",
              smoke ? "  [smoke mode]" : "");
  auto doc = bench::make_bench_doc("bench_adaptive");
  doc.set("smoke", bench::Json::boolean(smoke));
  doc.set("jobs", bench::Json::integer(static_cast<long>(jobs)));
  doc.set("hardware_concurrency",
          bench::Json::integer(static_cast<long>(std::thread::hardware_concurrency())));

  // ------------------------------------------------ phase A: certified scan
  const auto w = busy_record(smoke ? 4096 : 8192, 64e6);
  spec::ReceiverSettings rx;
  rx.name = "adaptive-vs-dense";
  rx.f_start = 200e3;
  rx.f_stop = 10e6;
  rx.rbw = 1.5e6;
  rx.tau_charge = 2e-6;
  rx.tau_discharge = 60e-6;
  const auto trace_sel = spec::TraceSel::kQuasiPeak;

  spec::AdaptiveScanConfig acfg;
  acfg.coarse_points = 25;
  acfg.freq_tol_rel = 5e-4;
  acfg.margin_tol_db = 0.005;
  acfg.refine_margin_window_db = std::numeric_limits<double>::infinity();

  // Dense fixed reference: 16x the adaptive coarse grid.
  auto dense_rx = rx;
  dense_rx.n_points = 16 * acfg.coarse_points;
  const auto t_dense = std::chrono::steady_clock::now();
  const auto dense = spec::emi_scan(w, dense_rx);
  const double wall_dense = seconds_since(t_dense);
  doc.at("scenarios").push(bench::scenario_row("dense_reference_scan", wall_dense));

  const auto& dense_trace = spec::scan_trace(dense, trace_sel);
  const auto [lo_it, hi_it] =
      std::minmax_element(dense_trace.begin(), dense_trace.end());
  const spec::LimitMask mask{
      "mid-range flat",
      {{rx.f_start, 0.5 * (*lo_it + *hi_it)}, {rx.f_stop, 0.5 * (*lo_it + *hi_it)}}};
  const auto dense_rep = spec::check_compliance(dense.freq, dense_trace, mask, "dense");

  spec::EmiScanner scanner;
  const auto t_adapt = std::chrono::steady_clock::now();
  const auto cs = spec::adaptive_scan(scanner, w, rx, mask, trace_sel, acfg, "adaptive");
  const double wall_adapt = seconds_since(t_adapt);
  doc.at("scenarios").push(bench::scenario_row("adaptive_scan", wall_adapt));

  // Gate: worst margin within 0.02 dB of the dense ground truth.
  const double margin_err = std::abs(cs.report.worst_margin_db - dense_rep.worst_margin_db);
  const bool margin_agrees = margin_err <= 0.02;

  // Gate: every crossing certified — measured pass/fail bracket, tight,
  // and matching a dense-grid sign change.
  std::size_t dense_flips = 0;
  std::vector<std::pair<double, double>> flip_ivals;
  for (std::size_t k = 0; k + 1 < dense.size(); ++k) {
    const double m0 = mask.at(dense.freq[k]) - dense_trace[k];
    const double m1 = mask.at(dense.freq[k + 1]) - dense_trace[k + 1];
    if ((m0 >= 0.0) != (m1 >= 0.0)) {
      ++dense_flips;
      flip_ivals.emplace_back(dense.freq[k], dense.freq[k + 1]);
    }
  }
  bool crossings_certified = cs.crossings.size() == dense_flips && dense_flips > 0;
  for (const auto& x : cs.crossings) {
    const double mp = margin_at(cs, mask, trace_sel, x.f_pass);
    const double mf = margin_at(cs, mask, trace_sel, x.f_fail);
    if (!(mp >= 0.0) || !(mf < 0.0)) crossings_certified = false;
    if (std::abs(x.f_fail - x.f_pass) > acfg.freq_tol_rel * x.f_cross * 1.01)
      crossings_certified = false;
    const bool near = std::any_of(
        flip_ivals.begin(), flip_ivals.end(), [&](const std::pair<double, double>& iv) {
          const double slack = acfg.freq_tol_rel * x.f_cross;
          return x.f_cross >= iv.first - slack && x.f_cross <= iv.second + slack;
        });
    if (!near) crossings_certified = false;
  }

  // Gate: <= 40% of the dense reference's detector passes (>= 2.5x fewer).
  const double pass_ratio =
      static_cast<double>(cs.detector_passes) / static_cast<double>(dense.size());
  const bool scan_ratio_ok = pass_ratio <= 0.40;
  const double scan_speedup = wall_adapt > 0.0 ? wall_dense / wall_adapt : 0.0;

  std::printf("dense: %zu passes %.3f s   adaptive: %zu passes (%zu coarse + %zu refined) %.3f s\n",
              dense.size(), wall_dense, cs.detector_passes, cs.coarse_points,
              cs.refined_points, wall_adapt);
  std::printf("worst margin: dense %+.4f dB, adaptive %+.4f dB (|err| %.4f dB)  %s\n",
              dense_rep.worst_margin_db, cs.report.worst_margin_db, margin_err,
              margin_agrees ? "ok" : "FAIL");
  std::printf("crossings: %zu certified vs %zu dense sign changes  %s\n",
              cs.crossings.size(), dense_flips, crossings_certified ? "ok" : "FAIL");
  std::printf("detector passes: %.1f%% of dense (gate <= 40%%)  wall speedup %.1fx  %s\n",
              100.0 * pass_ratio, scan_speedup, scan_ratio_ok ? "ok" : "FAIL");

  auto scan_doc = bench::Json::object();
  scan_doc.set("dense_passes", bench::Json::integer(static_cast<long>(dense.size())));
  scan_doc.set("adaptive_passes",
               bench::Json::integer(static_cast<long>(cs.detector_passes)));
  scan_doc.set("coarse_points", bench::Json::integer(static_cast<long>(cs.coarse_points)));
  scan_doc.set("refined_points",
               bench::Json::integer(static_cast<long>(cs.refined_points)));
  scan_doc.set("crossings", bench::Json::integer(static_cast<long>(cs.crossings.size())));
  scan_doc.set("worst_margin_db", bench::Json::number(cs.report.worst_margin_db));
  scan_doc.set("dense_worst_margin_db", bench::Json::number(dense_rep.worst_margin_db));
  scan_doc.set("margin_err_db", bench::Json::number(margin_err));
  scan_doc.set("pass_ratio", bench::Json::number(pass_ratio));
  scan_doc.set("wall_speedup", bench::Json::number(scan_speedup));
  doc.set("scan", scan_doc);

  // --------------------------------- phase B: adaptive sweep + refinement
  std::printf("estimating MD3 PW-RBF macromodel...\n");
  const auto t_est = std::chrono::steady_clock::now();
  const auto model = exp::make_driver_model(dev::DriverTech::md3_ibm25(), "MD3");
  doc.at("scenarios").push(bench::scenario_row("estimate_model", seconds_since(t_est)));

  sweep::CornerAxes axes;
  if (smoke) {
    axes.vdd_scale = {0.95, 1.05};
    axes.pattern_seed = {1};
  } else {
    axes.vdd_scale = {0.90, 0.95, 1.00, 1.05};
    axes.pattern_seed = {1, 2};
  }
  axes.line_length = {0.05, 0.1};
  axes.load_c = {1e-12, 2e-12};
  axes.pattern_bits = 15;
  const sweep::CornerGrid grid(axes);

  sweep::EmissionSweepConfig cfg;
  cfg.model = &model;
  cfg.line = exp::mcm_fig3_params();
  cfg.bit_time = 1e-9;
  cfg.periods = 3;
  cfg.rx.name = "wideband scan";
  cfg.rx.f_start = 50e6;
  cfg.rx.f_stop = 5e9;
  cfg.rx.n_points = 40;
  cfg.rx.tau_charge = 1e-9;
  cfg.rx.tau_discharge = 30e-9;
  cfg.solver = ckt::SolverKind::kSparse;  // lane runs require sparse; match it
  cfg.mask = {"calibration", {{50e6, 140.0}, {5e9, 140.0}}};

  // Calibrate a flat mask that splits the two line lengths across the
  // pass/fail boundary. The calibration must run under the SAME scan plan
  // as the gated sweeps — the adaptive planner's coarse pass resolves the
  // spiky emission spectrum differently than the fixed 40-point grid — so:
  // one fixed-plan sweep for the detector-pass comparison, one adaptive
  // sweep against a flat 140 dBuV limit for the margins, then the final
  // limit at the midpoint of the two lengths' worst margins. Deterministic
  // — a pure function of the pipeline.
  const std::size_t chunk = sweep::emission_chunk_hint(grid);
  sweep::SweepRunner serial(1);
  const auto t_fix = std::chrono::steady_clock::now();
  const auto fixed = serial.run(grid, sweep::make_emission_corner_fn(cfg), {}, chunk);
  doc.at("scenarios").push(bench::scenario_row("fixed_plan_sweep",
                                               seconds_since(t_fix)));
  cfg.scan_plan = spec::ScanPlan::kAdaptive;
  cfg.adaptive.coarse_points = 16;
  cfg.adaptive.freq_tol_rel = 1e-3;
  const auto t_cal = std::chrono::steady_clock::now();
  const auto cal = serial.run(grid, sweep::make_emission_corner_fn(cfg), {}, chunk);
  doc.at("scenarios").push(bench::scenario_row("calibration_adaptive_sweep",
                                               seconds_since(t_cal)));
  const auto& len_worst =
      cal.summary.axis_worst[static_cast<std::size_t>(sweep::AxisId::kLineLength)];
  const double limit = 140.0 - 0.5 * (len_worst[0] + len_worst[1]);
  cfg.mask = {"calibrated flat", {{50e6, limit}, {5e9, limit}}};
  const auto corner_fn = sweep::make_emission_corner_fn(cfg);
  std::printf("calibrated flat limit: %.1f dBuV (length-axis worst %+.1f / %+.1f dB)\n",
              limit, len_worst[0], len_worst[1]);

  // Adaptive sweep, 1 thread vs --jobs threads: bit-identical summaries.
  const auto t1 = std::chrono::steady_clock::now();
  const auto out1 = serial.run(grid, corner_fn, {}, chunk);
  const double wall_1 = seconds_since(t1);
  doc.at("scenarios").push(bench::scenario_row("adaptive_sweep_1_thread", wall_1));

  sweep::SweepRunner parallel(jobs);
  const auto tn = std::chrono::steady_clock::now();
  const auto outn = parallel.run(grid, corner_fn, {}, chunk);
  doc.at("scenarios").push(bench::scenario_row(
      "adaptive_sweep_" + std::to_string(jobs) + "_threads", seconds_since(tn)));
  const bool sweep_identical = out1.summary == outn.summary;

  // Refinement stage, 1 thread vs --jobs threads.
  const auto t_r1 = std::chrono::steady_clock::now();
  const auto ref1 = serial.refine(grid, out1, corner_fn);
  doc.at("scenarios").push(bench::scenario_row("refine_1_thread", seconds_since(t_r1)));
  const auto t_rn = std::chrono::steady_clock::now();
  const auto refn = parallel.refine(grid, outn, corner_fn);
  doc.at("scenarios").push(bench::scenario_row(
      "refine_" + std::to_string(jobs) + "_threads", seconds_since(t_rn)));
  const bool refine_identical =
      ref1.plan == refn.plan && ref1.outcome.summary == refn.outcome.summary;

  // From-scratch sweep of the refined grid: the refinement stage must land
  // on the same pass/fail boundary corners (equal summaries — carried
  // corners are pure functions of the scenario).
  const sweep::CornerGrid refined(sweep::apply_refinement(grid.axes(), ref1.plan));
  const auto t_scr = std::chrono::steady_clock::now();
  const auto scratch =
      parallel.run(refined, corner_fn, {}, sweep::emission_chunk_hint(refined));
  doc.at("scenarios").push(bench::scenario_row("refined_grid_from_scratch",
                                               seconds_since(t_scr)));
  const bool refine_matches_scratch = ref1.outcome.summary == scratch.summary;

  // Lane-batched prior + refinement must match the scalar sparse runs.
  sweep::LaneSweepInfo lanes_info;
  const auto t_lp = std::chrono::steady_clock::now();
  const auto lanes_prior = sweep::run_emission_sweep_lanes(cfg, grid, 4, {}, &lanes_info);
  const auto lanes_ref = sweep::refine_emission_sweep_lanes(cfg, grid, lanes_prior, 4);
  doc.at("scenarios").push(bench::scenario_row("lane_sweep_and_refine",
                                               seconds_since(t_lp)));
  const bool lanes_match = lanes_prior.summary == out1.summary &&
                           lanes_ref.plan == ref1.plan &&
                           lanes_ref.outcome.summary == ref1.outcome.summary;

  std::printf("adaptive sweep: %zu corners, %zu detector passes (%zu refined), %zu crossings\n",
              outn.summary.corners, outn.summary.scan_detector_passes,
              outn.summary.scan_refined_points, outn.summary.scan_crossings);
  std::printf("fixed-plan sweep spent %zu passes -> adaptive spends %.1f%%\n",
              fixed.summary.scan_detector_passes,
              fixed.summary.scan_detector_passes > 0
                  ? 100.0 * static_cast<double>(outn.summary.scan_detector_passes) /
                        static_cast<double>(fixed.summary.scan_detector_passes)
                  : 0.0);
  std::printf("refinement: plan %zu insertions, %zu reused + %zu evaluated corners\n",
              ref1.plan.size(), ref1.reused, ref1.evaluated);
  std::printf("sweep bit-identical: %s   refine bit-identical: %s\n",
              sweep_identical ? "yes" : "NO", refine_identical ? "yes" : "NO");
  std::printf("refine == from-scratch refined grid: %s   lanes match scalar: %s\n",
              refine_matches_scratch ? "yes" : "NO", lanes_match ? "yes" : "NO");

  // The calibrated mask guarantees a pass/fail flip on the length axis, so
  // an empty plan means the planner lost the boundary.
  const bool found_boundary = !ref1.plan.empty();

  doc.set("sweep_bit_identical", bench::Json::boolean(sweep_identical));
  doc.set("refinement_found_boundary", bench::Json::boolean(found_boundary));
  doc.set("refine_bit_identical", bench::Json::boolean(refine_identical));
  doc.set("refine_matches_scratch", bench::Json::boolean(refine_matches_scratch));
  doc.set("lanes_match", bench::Json::boolean(lanes_match));
  doc.set("margin_agrees", bench::Json::boolean(margin_agrees));
  doc.set("crossings_certified", bench::Json::boolean(crossings_certified));
  doc.set("scan_ratio_ok", bench::Json::boolean(scan_ratio_ok));
  auto refine_doc = bench::Json::object();
  refine_doc.set("plan_insertions", bench::Json::integer(static_cast<long>(ref1.plan.size())));
  refine_doc.set("reused", bench::Json::integer(static_cast<long>(ref1.reused)));
  refine_doc.set("evaluated", bench::Json::integer(static_cast<long>(ref1.evaluated)));
  doc.set("refine", refine_doc);
  doc.set("summary", sweep::summary_json(refined, ref1.outcome.summary));

  if (doc.write_file("BENCH_adaptive.json")) std::printf("wrote BENCH_adaptive.json\n");
  const bool base_ok = bench::check_baseline_gate(doc, bargs);

  const bool ok = margin_agrees && crossings_certified && scan_ratio_ok &&
                  sweep_identical && refine_identical && refine_matches_scratch &&
                  lanes_match && found_boundary && base_ok;
  return ok ? 0 : 1;
}
