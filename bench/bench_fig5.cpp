// Figure 5 reproduction: MD4 receiver driven directly by an equivalent
// source (10 ohm series, 1 V / 100 ps trapezoid); input current computed
// with the reference model, the parametric model (eq. 2) and the C-R
// baseline. Paper result: the parametric model overlays the reference,
// the C-R model only roughly approximates it.
#include <cstdio>

#include "core/validation.hpp"
#include "experiments.hpp"
#include "signal/csv.hpp"

int main() {
  using namespace emc;
  std::printf("=== Figure 5: MD4 input current, direct drive ===\n");
  std::printf("estimating MD4 parametric and C-R models...\n");
  const auto curves = exp::run_fig5();

  sig::write_csv("bench_out/fig5.csv", {"reference", "parametric", "cr"},
                 {curves.i_reference, curves.i_parametric, curves.i_cr});

  // Timing threshold at 20 mA (the current pulse peaks near 45 mA).
  const auto rep_par = core::validate_waveform("parametric", curves.i_reference,
                                               curves.i_parametric, 0.02, 0.2e-9);
  const auto rep_cr =
      core::validate_waveform("C-R model ", curves.i_reference, curves.i_cr, 0.02, 0.2e-9);

  std::printf("\n%-10s %12s %12s %12s\n", "model", "rms [mA]", "max [mA]", "timing [ps]");
  for (const auto& r : {rep_par, rep_cr})
    std::printf("%-10s %12.4f %12.4f %12.2f\n", r.label.c_str(), r.rms_error * 1e3,
                r.max_error * 1e3, r.timing_error ? *r.timing_error * 1e12 : -1.0);

  std::printf("\ncurrent peaks [mA]: ref %.2f / %.2f, parametric %.2f / %.2f, "
              "C-R %.2f / %.2f\n",
              curves.i_reference.max_value() * 1e3, curves.i_reference.min_value() * 1e3,
              curves.i_parametric.max_value() * 1e3, curves.i_parametric.min_value() * 1e3,
              curves.i_cr.max_value() * 1e3, curves.i_cr.min_value() * 1e3);

  std::printf("\npaper shape check: parametric rms << C-R rms  -> ratio %.1fx\n",
              rep_cr.rms_error / rep_par.rms_error);
  std::printf("series written to bench_out/fig5.csv\n");
  return 0;
}
