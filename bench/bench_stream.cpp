// Streaming-pipeline bench: the same long PRBS transient run twice —
// monolithic (full record materialized, then Welch PSD + swept EMI
// receiver on the record) and streamed (run_transient_streamed pushing
// chunks through a ChannelTapSink into a WelchAccumulator and a
// SegmentedEmiAccumulator, no record ever held). Gates:
//
//   * the streamed Welch PSD is bit-identical to the monolithic one,
//   * the record is >= 50x the chunk size while the streamed path's peak
//     memory (chunk staging + accumulator state) stays O(chunk)/O(segment),
//   * streamed throughput is within 1.2x of the monolithic wall time
//     (relaxed in --smoke, where runs are too short to time reliably).
//
// Results land in BENCH_stream.json with the shared bench schema.
//
//   bench_stream [--smoke]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "baseline.hpp"
#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "emc/streaming.hpp"
#include "json_out.hpp"
#include "obs/resource.hpp"
#include "signal/sample_sink.hpp"

namespace {

using namespace emc;
using bench::seconds_since;

/// PRBS-driven R-L-C ladder: broadband stimulus (repeating 127-bit LCG
/// pattern), enough state for a nontrivial spectrum, purely linear so the
/// cached-LU fast path carries the long record.
struct Ladder {
  int out = 0;
  ckt::Circuit c;
};

// Deterministic 127-bit pattern from a minimal LCG.
constexpr int kBits = 127;

void build_ladder(Ladder& l, int n_sections, double bit_time) {
  using namespace emc::ckt;
  const int in = l.c.node("in");
  l.c.add<VSource>(in, 0, [bit_time](double t) {
    auto idx = static_cast<long long>(std::floor(t / bit_time));
    const auto k = static_cast<std::uint32_t>(((idx % kBits) + kBits) % kBits);
    std::uint32_t s = 0x1234'5678u + k * 0x9E37'79B9u;
    s ^= s >> 16;
    s *= 0x85EB'CA6Bu;
    s ^= s >> 13;
    return (s & 1u) ? 3.3 : 0.0;
  });
  int prev = in;
  for (int k = 0; k < n_sections; ++k) {
    const int mid = l.c.node();
    const int nxt = l.c.node();
    l.c.add<Resistor>(prev, mid, 2.0);
    l.c.add<Inductor>(mid, nxt, 1e-9);
    l.c.add<Capacitor>(nxt, 0, 2e-12);
    prev = nxt;
  }
  l.c.add<Resistor>(prev, 0, 50.0);
  l.out = prev;
}

double max_psd_delta(const spec::Spectrum& a, const spec::Spectrum& b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k)
    worst = std::max(worst, std::abs(a.value[k] - b.value[k]));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_stream [--smoke]\n");
      return 2;
    }
  }

  // External cross-check of the "bytes held" accounting below: sample the
  // process RSS over the whole bench; the OS-observed peak can never be
  // below what the sinks claim to hold.
  obs::ResourceSampler sampler({/*interval_ms=*/10, /*ring_capacity=*/4096});
  sampler.start();

  // Geometry: the EMI segment is one exact PRBS pattern period (the
  // documented contract of the segmented receiver — whole periods keep
  // the harmonics coherently sampled), and the record is >= 50x the
  // streaming chunk by construction.
  const int sections = smoke ? 10 : 40;
  const std::size_t chunk_frames = smoke ? 256 : 1024;
  const double bit_time = 1e-9;
  const std::size_t samples_per_bit = 40;  // dt = 25 ps
  const std::size_t period = static_cast<std::size_t>(kBits) * samples_per_bit;  // 5080
  const std::size_t periods = smoke ? 4 : 16;
  const std::size_t n_steps = periods * period;
  const std::size_t seg_len = smoke ? 4096 : 16384;  // Welch segment (pow2)

  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = opt.dt * static_cast<double>(n_steps);

  spec::SegmentedScanOptions emi;
  emi.segment_len = period;
  emi.rx.name = "stream scan";
  emi.rx.f_start = 100e6;
  // Stop short of 1/bit_time: the PRBS spectrum has a sinc null there, and
  // a scan point sitting in a null measures leakage, not signal.
  emi.rx.f_stop = 900e6;
  emi.rx.n_points = smoke ? 12 : 30;
  emi.rx.rbw = 30e6;
  emi.rx.tau_charge = 1e-9;
  emi.rx.tau_discharge = 30e-9;

  std::printf("=== bench_stream: monolithic record vs streamed sinks ===%s\n",
              smoke ? "  [smoke mode]" : "");
  std::printf("ladder: %d sections, %zu steps (%zu periods), chunk %zu frames, "
              "welch segment %zu, emi segment %zu\n",
              sections, n_steps, periods, chunk_frames, seg_len, period);

  auto doc = bench::make_bench_doc("bench_stream");
  doc.set("smoke", bench::Json::boolean(smoke));

  // ---- monolithic: materialize the record, then analyze it. The EMI scan
  // follows the sweep convention: drop the initial-state frame and the
  // first pattern period (startup transient), measure the steady whole
  // periods so segments and record stay coherently sampled.
  const std::size_t emi_skip = period + 1;
  Ladder mono;
  build_ladder(mono, sections, bit_time);
  auto t0 = std::chrono::steady_clock::now();
  const auto res = ckt::run_transient(mono.c, opt);
  const auto wf = res.waveform(mono.out);
  const auto psd_mono = spec::welch_psd(wf, seg_len, spec::Window::kHann, 0.5);
  spec::EmiScanner scanner;
  const auto scan_mono = scanner.scan(wf.slice(emi_skip, (periods - 1) * period), emi.rx);
  const double wall_mono = seconds_since(t0);
  const std::size_t bytes_mono =
      res.data().size() * sizeof(double) + wf.size() * sizeof(double);
  doc.at("scenarios").push(
      bench::scenario_row("monolithic", wall_mono, res.stats.total_newton_iters));

  // ---- streamed: same circuit, chunks through Welch + segmented EMI.
  Ladder str;
  build_ladder(str, sections, bit_time);
  ckt::NewtonWorkspace ws;
  t0 = std::chrono::steady_clock::now();
  spec::WelchAccumulator welch(opt.dt, seg_len, spec::Window::kHann, 0.5);
  spec::SegmentedEmiAccumulator emi_acc(opt.t_start, opt.dt, emi);
  std::size_t emi_to_skip = emi_skip;  // keep the EMI segments period-aligned
  sig::ChannelTapSink tap(0, [&](std::span<const double> x) {
    welch.push(x);
    const std::size_t drop = std::min(emi_to_skip, x.size());
    emi_to_skip -= drop;
    emi_acc.push(x.subspan(drop));
  });
  const int probes[] = {str.out};
  const auto stats = ckt::run_transient_streamed(str.c, opt, ws, probes, tap, chunk_frames);
  const auto psd_stream = welch.psd();
  const auto scan_stream = emi_acc.result();
  const double wall_stream = seconds_since(t0);
  const std::size_t bytes_stream = chunk_frames * sizeof(double) +
                                   welch.state_bytes() + emi_acc.state_bytes();
  doc.at("scenarios").push(
      bench::scenario_row("streamed", wall_stream, stats.total_newton_iters));

  // ---- gates
  const double psd_delta = max_psd_delta(psd_mono, psd_stream);
  const double emi_delta = spec::max_detector_delta_db(scan_mono, scan_stream);
  const double ratio = wall_mono > 0.0 ? wall_stream / wall_mono : 0.0;
  const double mem_ratio = bytes_stream > 0
                               ? static_cast<double>(bytes_mono) /
                                     static_cast<double>(bytes_stream)
                               : 0.0;
  const std::size_t record_frames = res.steps();
  // Short smoke runs cannot be timed reliably; correctness/memory gates
  // stay strict, the throughput gate relaxes.
  const double ratio_bound = smoke ? 2.0 : 1.2;

  const bool psd_ok = psd_delta == 0.0;
  const bool mem_ok = record_frames >= 50 * chunk_frames && mem_ratio >= 10.0;
  const bool speed_ok = ratio <= ratio_bound;
  // Period-coherent steady-state segments track the monolithic detectors
  // closely. The circuit record is not bit-exactly periodic (floating-point
  // rounding of floor(t/bit_time) can jitter a bit edge by one sample
  // between periods), which max-type detectors amplify, so the bench gate
  // is 0.2 dB; the strict < 0.1 dB segment/overlap-corner bound lives in
  // tests/test_stream.cpp on an exactly coherent synthetic record.
  const bool emi_ok = emi_delta < 0.2;

  std::printf("monolithic: %.3f s, %.1f KiB held\n", wall_mono,
              static_cast<double>(bytes_mono) / 1024.0);
  std::printf("streamed:   %.3f s, %.1f KiB held (%.0fx less), %zu welch / %zu emi segments\n",
              wall_stream, static_cast<double>(bytes_stream) / 1024.0, mem_ratio,
              welch.segments(), emi_acc.segments());
  std::printf("welch PSD bit-identical: %s (max delta %.3e)\n", psd_ok ? "yes" : "NO",
              psd_delta);
  std::printf("segmented EMI detectors vs monolithic scan: %.4f dB max delta\n", emi_delta);
  std::printf("throughput ratio streamed/monolithic: %.3f (bound %.1f): %s\n", ratio,
              ratio_bound, speed_ok ? "ok" : "EXCEEDED");
  std::printf("record %zu frames >= 50x chunk %zu: %s\n", record_frames, chunk_frames,
              mem_ok ? "ok" : "VIOLATED");

  doc.set("record_frames", bench::Json::integer(static_cast<long>(record_frames)));
  doc.set("chunk_frames", bench::Json::integer(static_cast<long>(chunk_frames)));
  doc.set("bytes_monolithic", bench::Json::integer(static_cast<long>(bytes_mono)));
  doc.set("bytes_streamed", bench::Json::integer(static_cast<long>(bytes_stream)));
  doc.set("memory_ratio", bench::Json::number(mem_ratio));
  doc.set("welch_psd_max_delta", bench::Json::number(psd_delta));
  doc.set("emi_detector_max_delta_db", bench::Json::number(emi_delta));
  doc.set("throughput_ratio", bench::Json::number(ratio));
  doc.set("throughput_bound", bench::Json::number(ratio_bound));
  // ---- resource cross-check: the sampled process peak RSS must dominate
  // every byte count the sinks report holding (the monolithic record is
  // still alive here, so it bounds from below too).
  sampler.stop();
  const auto rstats = sampler.stats();
  const bool rss_ok = rstats.samples >= 2 &&
                      rstats.peak_rss_bytes >= std::max(bytes_mono, bytes_stream);
  std::printf("peak RSS %.1f MiB over %llu samples >= %.1f KiB held: %s\n",
              static_cast<double>(rstats.peak_rss_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(rstats.samples),
              static_cast<double>(std::max(bytes_mono, bytes_stream)) / 1024.0,
              rss_ok ? "ok" : "VIOLATED");
  doc.set("resources", sampler.to_json());
  doc.set("rss_covers_bytes_held", bench::Json::boolean(rss_ok));
  doc.set("pass", bench::Json::boolean(psd_ok && mem_ok && speed_ok && emi_ok && rss_ok));

  if (doc.write_file("BENCH_stream.json")) std::printf("wrote BENCH_stream.json\n");
  const bool base_ok = bench::check_baseline_gate(doc, bargs);
  return (psd_ok && mem_ok && speed_ok && emi_ok && rss_ok && base_ok) ? 0 : 1;
}
