// Shared JSON emission for the bench binaries, so every BENCH_*.json file
// carries the same top-level schema:
//
//   {
//     "bench": "<name>",
//     "host": { ...obs::host_info_json()... },
//     "scenarios": [{"name": ..., "wall_s": ..., ...}, ...],
//     ...bench-specific extras...
//   }
//
// The value tree itself is emc::obs::Json (the observability layer's
// insertion-ordered JSON document — the same type RunReport and the trace
// exporter use, with nesting, parsing and file I/O); this header only adds
// the bench document conventions on top.
#pragma once

#include <chrono>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace emc::bench {

using Json = emc::obs::Json;

/// Wall-clock seconds elapsed since `t0` (the wall_s convention every
/// scenario row uses).
inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Standard top-level bench document: {"bench": name, "host": {...},
/// "scenarios": []}. Push scenario_row()s into "scenarios" and attach
/// bench-specific extras with set() afterwards.
inline Json make_bench_doc(const std::string& name) {
  Json doc = Json::object();
  doc.set("bench", Json::string(name));
  doc.set("host", emc::obs::host_info_json());
  doc.set("scenarios", Json::array());
  return doc;
}

/// Standard per-scenario row. newton_iters is the engine's solver-work
/// proxy; pass -1 when the scenario does not expose solver stats.
inline Json scenario_row(const std::string& name, double wall_s, long newton_iters = -1) {
  Json row = Json::object();
  row.set("name", Json::string(name));
  row.set("wall_s", Json::number(wall_s));
  row.set("newton_iters", Json::integer(newton_iters));
  return row;
}

}  // namespace emc::bench
