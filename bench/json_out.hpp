// Shared JSON emission for the bench binaries, so every BENCH_*.json file
// carries the same top-level schema:
//
//   {
//     "bench": "<name>",
//     "scenarios": [{"name": ..., "wall_s": ..., ...}, ...],
//     ...bench-specific extras...
//   }
//
// Json is a tiny insertion-ordered value tree (object / array / string /
// number / integer / bool); make_bench_doc() builds the standard skeleton
// and scenario_row() the standard per-scenario row, to which callers may
// attach extra fields before pushing.
#pragma once

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace emc::bench {

/// Wall-clock seconds elapsed since `t0` (the wall_s convention every
/// scenario row uses).
inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json string(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json number(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json integer(long v) {
    Json j(Kind::kInteger);
    j.int_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  /// Object field (insertion-ordered). Returns *this for chaining.
  Json& set(std::string key, Json v) {
    require(Kind::kObject, "set");
    fields_.emplace_back(std::move(key), std::move(v));
    return *this;
  }
  /// Array element. Returns *this for chaining.
  Json& push(Json v) {
    require(Kind::kArray, "push");
    items_.push_back(std::move(v));
    return *this;
  }

  /// Mutable access to an existing object field (e.g. the "scenarios"
  /// array of a make_bench_doc() document). Throws if absent.
  Json& at(const std::string& key) {
    require(Kind::kObject, "at");
    for (auto& [k, v] : fields_)
      if (k == key) return v;
    throw std::logic_error("Json: no field " + key);
  }

  std::string dump(int indent = 2) const {
    std::string out;
    emit(out, indent, 0);
    out.push_back('\n');
    return out;
  }

  /// Serialize to `path`; prints a warning and returns false on failure.
  bool write_file(const std::string& path, int indent = 2) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "json_out: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string text = dump(indent);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBool };

  explicit Json(Kind k) : kind_(k) {}

  void require(Kind k, const char* op) const {
    if (kind_ != k) throw std::logic_error(std::string("Json: bad ") + op);
  }

  static void escape(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void emit(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    char buf[64];
    switch (kind_) {
      case Kind::kObject: {
        if (fields_.empty()) {
          out += "{}";
          return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
          out += pad;
          escape(out, fields_[i].first);
          out += ": ";
          fields_[i].second.emit(out, indent, depth + 1);
          if (i + 1 < fields_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += close_pad + "}";
        return;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          out += "[]";
          return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out += pad;
          items_[i].emit(out, indent, depth + 1);
          if (i + 1 < items_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += close_pad + "]";
        return;
      }
      case Kind::kString:
        escape(out, str_);
        return;
      case Kind::kNumber:
        std::snprintf(buf, sizeof buf, "%.9g", num_);
        out += buf;
        return;
      case Kind::kInteger:
        std::snprintf(buf, sizeof buf, "%ld", int_);
        out += buf;
        return;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        return;
    }
  }

  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  long int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
};

/// Standard top-level bench document: {"bench": name, "scenarios": []}.
/// Push scenario_row()s into "scenarios" and attach bench-specific extras
/// with set() afterwards.
inline Json make_bench_doc(const std::string& name) {
  Json doc = Json::object();
  doc.set("bench", Json::string(name));
  doc.set("scenarios", Json::array());
  return doc;
}

/// Standard per-scenario row. newton_iters is the engine's solver-work
/// proxy; pass -1 when the scenario does not expose solver stats.
inline Json scenario_row(const std::string& name, double wall_s, long newton_iters = -1) {
  Json row = Json::object();
  row.set("name", Json::string(name));
  row.set("wall_s", Json::number(wall_s));
  row.set("newton_iters", Json::integer(newton_iters));
  return row;
}

}  // namespace emc::bench
