// bench_report: gates for the report-analysis layer (obs::Profile,
// obs::ResourceSampler, obs::merge_run_reports, obs::check_baseline).
//
//   [A] shard-merge equality — a 24-corner sweep run once in-process and
//       once as 4 ShardRange quarters (fresh metrics registry per shard)
//       must merge into a report byte-identical to the single-process one
//       on every solver, sweep-summary and metrics field. The only
//       excluded counter is sweep.runs (1 vs 4 by construction) plus the
//       scheduling-dependent sections (workers, trace, wall times).
//
//   [B] profile coverage — a single-threaded traced sweep through the
//       transient -> scan pipeline, aggregated by obs::Profile, must
//       attribute >= 80% of the traced sweep wall time to the
//       newton_step / transient / scan span sites (self time), with zero
//       ring drops. The profile, resource samples and collapsed stacks
//       land in REPORT_report.json / report_profile.folded.
//
//   [C] regression-gate round trip — a min-of-N wall-time baseline
//       captured in-process and written through the real spec file format
//       must PASS an unmodified rerun and flag REGRESS on a deliberately
//       slowed run (8x the simulated time plus the kReference scan path).
//
//   bench_report [--smoke] [--check-baseline SPEC] [--baseline-scale X]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "json_out.hpp"
#include "obs/compare.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "sweep/corner_grid.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace emc;
using bench::seconds_since;

// ------------------------------------------------------ corner pipeline
// RC transient -> EMI receiver scan -> mask check. Deliberately cheap but
// structurally complete: it drives the dc/transient/newton_step span and
// counter sites through the engine and the scan/zoom counters through the
// receiver, so shard merges and profiles have every metric family to
// aggregate. Solver stats ride the workspace memo fields (the documented
// channel into CornerResult); there is no memoized stage, so every corner
// reports its own transient.
spec::ComplianceReport rc_scan_corner(const sweep::Scenario& sc, sweep::Workspace& ws) {
  ckt::Circuit c;
  const int in = c.node();
  const int out = c.node();
  // Square-ish drive so the scan sees harmonics, not just a settled step.
  const double vdd = 1.0 * sc.vdd_scale;
  c.add<ckt::VSource>(in, c.ground(), [vdd](double t) {
    return std::fmod(t * 1e7, 1.0) < 0.5 ? 0.0 : vdd;
  });
  c.add<ckt::Resistor>(in, out, 1e3 * (1.0 + sc.line_length));
  c.add<ckt::Capacitor>(out, c.ground(), sc.load_c);

  ckt::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 400e-9;
  const auto res = ckt::run_transient(c, opt, ws.newton);
  ws.memo_solve = res.stats;
  ws.memo_hit = false;
  const auto v = res.waveform(out);

  spec::ReceiverSettings rx;
  rx.name = "report scan";
  rx.f_start = 1e6;
  rx.f_stop = 1e8;
  rx.n_points = 12;
  rx.rbw = 2e6;
  rx.tau_charge = 1e-9;
  rx.tau_discharge = 30e-9;
  const auto scan = ws.scanner.scan(v, rx);

  spec::LimitMask mask{"report-mask", {{1e6, 120.0}, {1e8, 120.0}}};
  return spec::check_compliance(scan.freq, scan.peak_dbuv, mask, sc.label(),
                                scan.skipped_points);
}

// -------------------------------------------------------- report builder
// The RunReport every phase of gate [A] emits: solver aggregate (corners
// with a reused transient skipped, as in bench_obs), sweep summary,
// worker stats, metrics snapshot.
obs::Json make_report(const sweep::CornerGrid& grid, const sweep::SweepOutcome& out,
                      const obs::MetricsSnapshot& snap) {
  obs::RunReport report("bench_report");
  ckt::SolveStats agg;
  std::size_t reused = 0;
  bool first = true;
  for (const auto& r : out.results) {
    if (r.transient_reused) {
      ++reused;
      continue;
    }
    if (first) {
      agg = r.solve;
      first = false;
    } else {
      agg.merge(r.solve);
    }
  }
  report.set("solver", "kind",
             std::string(agg.used_sparse == 1   ? "sparse"
                         : agg.used_sparse == 0 ? "dense"
                                                : "mixed"));
  report.set("solver", "newton_iters", agg.total_newton_iters);
  report.set("solver", "dc_newton_iters", agg.dc_newton_iters);
  report.set("solver", "restamps", agg.restamps);
  report.set("solver", "steps", agg.steps);
  report.set("sweep", "summary", sweep::summary_json(grid, out.summary));
  report.set("sweep", "transients_reused", static_cast<long>(reused));
  report.set("workers", "pool", sweep::worker_stats_json(out.workers));
  report.add_metrics(snap);
  return report.to_json();
}

/// The deterministic view of a report gate [A] compares: solver and sweep
/// sections plus every metric except the invocation-scoped sweep.runs
/// counter (1 for the full run, 4 for the shards by construction).
obs::Json deterministic_view(const obs::Json& report) {
  obs::Json view = obs::Json::object();
  view.set("solver", report.at("solver"));
  view.set("sweep", report.at("sweep"));
  obs::Json metrics = obs::Json::object();
  for (const auto& [name, value] : report.at("metrics").fields())
    if (name != "sweep.runs") metrics.set(name, value);
  view.set("metrics", std::move(metrics));
  return view;
}

// ---------------------------------------------------- gate [C] pipeline
/// One transient -> scan pipeline run; `t_scale` multiplies the simulated
/// time and `method` selects the scan's demodulation path. Returns wall
/// seconds — the knob pair (8, kReference) is the "deliberately slowed
/// build" a wall-time baseline must flag.
double scan_pipeline_wall_s(double t_scale, spec::ScanMethod method) {
  const auto t0 = std::chrono::steady_clock::now();
  ckt::Circuit c;
  const int in = c.node();
  const int out = c.node();
  c.add<ckt::VSource>(in, c.ground(),
                      [](double t) { return std::fmod(t * 1e7, 1.0) < 0.5 ? 0.0 : 1.0; });
  c.add<ckt::Resistor>(in, out, 1e3);
  c.add<ckt::Capacitor>(out, c.ground(), 100e-12);

  ckt::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 400e-9 * t_scale;
  ckt::NewtonWorkspace ws;
  const auto res = ckt::run_transient(c, opt, ws);
  const auto v = res.waveform(out);

  spec::ReceiverSettings rx;
  rx.name = "gateC scan";
  rx.f_start = 1e6;
  rx.f_stop = 1e8;
  rx.n_points = 12;
  rx.rbw = 2e6;
  rx.tau_charge = 1e-9;
  rx.tau_discharge = 30e-9;
  rx.method = method;
  spec::EmiScanner scanner;
  (void)scanner.scan(v, rx);
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_report [--smoke]\n");
      return 2;
    }
  }

  std::printf("=== bench_report: shard merge / profile coverage / baseline gate ===%s\n",
              smoke ? "  [smoke mode]" : "");
  auto doc = bench::make_bench_doc("bench_report");
  doc.set("smoke", bench::Json::boolean(smoke));
  bool ok = true;

  obs::ResourceSampler sampler({/*interval_ms=*/10, /*ring_capacity=*/4096});
  sampler.start();

  sweep::CornerAxes axes;
  axes.vdd_scale = {0.8, 0.9, 1.0, 1.1};
  axes.line_length = {0.0, 0.5, 1.0};
  axes.load_c = {50e-12, 100e-12};
  const sweep::CornerGrid grid(axes);
  const std::size_t n_shards = 4;

  // ---------------------------------------------------------------- A ----
  // Single-process reference run, then 4 contiguous shards of the same
  // grid, each with a private metrics epoch; merge the shard reports and
  // compare the deterministic view byte for byte.
  obs::registry().set_enabled(true);
  const auto t_merge = std::chrono::steady_clock::now();

  obs::registry().reset();
  sweep::SweepRunner full_runner(2);
  const auto full_out = full_runner.run(grid, rc_scan_corner);
  const obs::Json full_report = make_report(grid, full_out, obs::registry().snapshot());

  std::vector<obs::Json> shard_reports;
  const std::size_t per_shard = grid.size() / n_shards;
  for (std::size_t s = 0; s < n_shards; ++s) {
    sweep::ShardRange range;
    range.begin = s * per_shard;
    range.end = (s + 1 == n_shards) ? grid.size() : (s + 1) * per_shard;
    obs::registry().reset();
    sweep::SweepRunner shard_runner(2);
    const auto shard_out = shard_runner.run(grid, rc_scan_corner, {}, 1, {}, range);
    shard_reports.push_back(
        make_report(grid, shard_out, obs::registry().snapshot()));
  }
  const obs::Json merged = obs::merge_run_reports(shard_reports);

  const std::string full_view = deterministic_view(full_report).dump();
  const std::string merged_view = deterministic_view(merged).dump();
  const bool merge_identical = full_view == merged_view;
  ok &= merge_identical;
  std::printf("[A] 4-way shard merge vs single process (%zu corners): %s\n", grid.size(),
              merge_identical ? "byte-identical" : "DIFFERENT");
  if (!merge_identical) {
    // Dump both so a CI failure is diagnosable from the log.
    std::printf("--- full ---\n%s\n--- merged ---\n%s\n", full_view.c_str(),
                merged_view.c_str());
  }
  doc.at("scenarios").push(bench::scenario_row("shard_merge", seconds_since(t_merge)));
  doc.set("merge_identical", bench::Json::boolean(merge_identical));

  // ---------------------------------------------------------------- B ----
  // Traced single-worker sweep -> Profile. Single worker keeps every span
  // on one thread, so self times sum to at most the sweep span's wall time
  // and the coverage ratio is well-defined.
  const auto t_prof = std::chrono::steady_clock::now();
  obs::registry().reset();
  obs::Tracer tracer(1 << 17);
  tracer.install();
  {
    sweep::SweepRunner runner(1);
    (void)runner.run(grid, rc_scan_corner);
  }
  tracer.uninstall();
  const obs::Profile profile = obs::Profile::build(tracer);

  const std::int64_t sweep_total =
      profile.spans().count("sweep") ? profile.spans().at("sweep").total_ns : 0;
  const std::int64_t attributed = profile.self_ns("newton_step") +
                                  profile.self_ns("transient") + profile.self_ns("scan");
  const double coverage =
      sweep_total > 0 ? static_cast<double>(attributed) / static_cast<double>(sweep_total)
                      : 0.0;
  const bool profile_ok = tracer.dropped() == 0 && !profile.truncated() &&
                          coverage >= 0.80 && coverage <= 1.0 + 1e-9;
  ok &= profile_ok;
  std::printf("[B] profile: %zu events, %zu dropped; newton_step+transient+scan self = "
              "%.1f%% of sweep (>= 80%% required): %s\n",
              profile.events(), static_cast<std::size_t>(tracer.dropped()),
              100.0 * coverage, profile_ok ? "ok" : "FAILED");
  doc.at("scenarios").push(bench::scenario_row("profile_sweep", seconds_since(t_prof)));
  doc.set("profile_coverage", bench::Json::number(coverage));
  doc.set("profile_ok", bench::Json::boolean(profile_ok));

  // ---------------------------------------------------------------- C ----
  // Baseline round trip through the real file format. The slowed run is
  // 8x the simulated time through the kReference scan path, so it clears
  // the 4x tolerance with margin; the unmodified rerun uses min-of-N
  // exactly like the capture, retried to ride out scheduler noise.
  const auto t_gate = std::chrono::steady_clock::now();
  const int reps = smoke ? 3 : 5;
  double captured = 1e300;
  for (int r = 0; r < reps; ++r)
    captured = std::min(captured, scan_pipeline_wall_s(1.0, spec::ScanMethod::kAuto));

  obs::Json spec_doc = obs::Json::object();
  spec_doc.set("baseline", obs::Json::string("bench_report.gateC"));
  spec_doc.set("schema_version", obs::Json::integer(1));
  obs::Json row = obs::Json::object();
  row.set("path", obs::Json::string("scenarios[scan_pipeline].wall_s"));
  row.set("value", obs::Json::number(captured));
  row.set("rel_tol", obs::Json::number(3.0));
  row.set("dir", obs::Json::string("upper"));
  obs::Json metrics_rows = obs::Json::array();
  metrics_rows.push(std::move(row));
  spec_doc.set("metrics", std::move(metrics_rows));
  const std::string spec_path = "report_gateC_baseline.json";
  const bool spec_written = spec_doc.write_file(spec_path);

  const auto wall_doc = [](double wall_s) {
    obs::Json d = obs::Json::object();
    obs::Json rows = obs::Json::array();
    obs::Json r2 = obs::Json::object();
    r2.set("name", obs::Json::string("scan_pipeline"));
    r2.set("wall_s", obs::Json::number(wall_s));
    rows.push(std::move(r2));
    d.set("scenarios", std::move(rows));
    return d;
  };

  bool rerun_pass = false;
  const obs::Json spec_parsed = spec_written ? obs::Json::parse_file(spec_path) : spec_doc;
  for (int attempt = 0; attempt < 3 && !rerun_pass; ++attempt) {
    double rerun = 1e300;
    for (int r = 0; r < reps; ++r)
      rerun = std::min(rerun, scan_pipeline_wall_s(1.0, spec::ScanMethod::kAuto));
    rerun_pass = obs::check_baseline(spec_parsed, wall_doc(rerun)).pass;
  }

  const double slowed = scan_pipeline_wall_s(8.0, spec::ScanMethod::kReference);
  const auto slow_check = obs::check_baseline(spec_parsed, wall_doc(slowed));
  const bool regress_detected = !slow_check.pass && slow_check.regressed == 1;

  const bool gate_ok = spec_written && rerun_pass && regress_detected;
  ok &= gate_ok;
  std::printf("[C] baseline gate: captured %.2e s, rerun %s, slowed 8x/kReference "
              "(%.2e s) %s: %s\n",
              captured, rerun_pass ? "PASS" : "REGRESS (unexpected)", slowed,
              regress_detected ? "REGRESS" : "PASS (unexpected)",
              gate_ok ? "ok" : "FAILED");
  doc.at("scenarios").push(bench::scenario_row("baseline_gate", seconds_since(t_gate)));
  doc.set("baseline_rerun_pass", bench::Json::boolean(rerun_pass));
  doc.set("baseline_regress_detected", bench::Json::boolean(regress_detected));

  // ------------------------------------------------------------ report ----
  sampler.stop();
  const auto rstats = sampler.stats();
  const bool resources_ok = rstats.samples >= 2 && rstats.peak_rss_bytes > 0;
  ok &= resources_ok;
  doc.set("resources_ok", bench::Json::boolean(resources_ok));

  obs::RunReport report("bench_report");
  report.set("sweep", "summary", sweep::summary_json(grid, full_out.summary));
  report.add_metrics(obs::registry().snapshot());
  report.add_trace_summary(tracer);
  report.add_profile(profile);
  report.add_resources(sampler);
  if (report.write("REPORT_report.json")) std::printf("wrote REPORT_report.json\n");

  const std::string folded = profile.collapsed_stacks();
  if (std::FILE* f = std::fopen("report_profile.folded", "w")) {
    const bool wrote = std::fwrite(folded.data(), 1, folded.size(), f) == folded.size();
    if (std::fclose(f) == 0 && wrote) std::printf("wrote report_profile.folded\n");
  }

  doc.set("gates_passed", bench::Json::boolean(ok));
  if (doc.write_file("BENCH_report.json")) std::printf("wrote BENCH_report.json\n");
  ok = bench::check_baseline_gate(doc, bargs) && ok;
  std::printf("bench_report: %s\n", ok ? "all gates passed" : "GATE FAILURE");
  return ok ? 0 : 1;
}
