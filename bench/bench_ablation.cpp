// Ablation study of the design choices called out in DESIGN.md section 7:
//   (a) NARX dynamic order r of the driver submodels,
//   (b) basis budget of the OLS selection,
//   (c) two-load weight identification vs the complementary-weight
//       shortcut (w_L = 1 - w_H), and
//   (d) section count of the lossy coupled-line cascade.
// Each row reports the Figure-1-style closed-loop accuracy produced by
// that variant, so the contribution of every mechanism is visible.
#include <cstdio>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "core/circuit_dut.hpp"
#include "core/driver_device.hpp"
#include "core/driver_estimator.hpp"
#include "core/validation.hpp"
#include "devices/reference_driver.hpp"
#include "experiments.hpp"
#include "signal/sources.hpp"

using namespace emc;

namespace {

sig::Waveform fig1_load_run(const dev::DriverTech& tech,
                            const core::PwRbfDriverModel* model) {
  ckt::Circuit c;
  const int pad = c.node();
  const int far = c.node();
  c.add<ckt::IdealLine>(pad, c.ground(), far, c.ground(), 50.0, 0.5e-9);
  c.add<ckt::Capacitor>(far, c.ground(), 10e-12);
  if (model) {
    c.add<core::DriverDevice>(pad, *model, "01", 2e-9);
  } else {
    auto pattern = sig::bit_stream("01", 2e-9, 0.1e-9, 0.0, tech.vdd);
    auto inst =
        dev::build_reference_driver(c, tech, [pattern](double t) { return pattern(t); });
    c.add<ckt::Resistor>(inst.pad, pad, 1e-3);
  }
  ckt::TransientOptions opt;
  opt.dt = exp::kTs;
  opt.t_stop = 12e-9;
  return ckt::run_transient(c, opt).waveform(pad);
}

void report(const char* label, const sig::Waveform& ref, const sig::Waveform& v) {
  const auto rep = core::validate_waveform(label, ref, v, 1.65, 0.2e-9);
  std::printf("%-34s %9.2f%% %10.4f %12.2f\n", label, rep.rel_rms * 100.0, rep.max_error,
              rep.edge_timing_error ? *rep.edge_timing_error * 1e12 : -1.0);
}

}  // namespace

int main() {
  std::printf("=== Ablations (Figure-1 closed loop, MD1) ===\n");
  const auto tech = dev::DriverTech::md1_lvc244();
  core::CircuitDriverDut dut(tech);
  const auto ref = fig1_load_run(tech, nullptr);

  std::printf("\n%-34s %10s %10s %12s\n", "variant", "rel rms", "max [V]", "edge [ps]");

  // (a) dynamic order sweep.
  for (int order : {1, 2, 3}) {
    core::DriverEstimationOptions opt;
    opt.order = order;
    const auto model = core::estimate_driver_model(dut, opt);
    char label[64];
    std::snprintf(label, sizeof label, "(a) NARX order r = %d", order);
    report(label, ref, fig1_load_run(tech, &model));
  }

  // (b) basis budget sweep (selection may stop earlier).
  for (int nb : {8, 16, 26}) {
    core::DriverEstimationOptions opt;
    opt.max_basis_high = nb;
    opt.max_basis_low = nb;
    const auto model = core::estimate_driver_model(dut, opt);
    char label[64];
    std::snprintf(label, sizeof label, "(b) basis budget = %d", nb);
    report(label, ref, fig1_load_run(tech, &model));
  }

  // (c) two-load inversion vs the complementary-weight shortcut.
  {
    core::DriverEstimationOptions opt;
    auto model = core::estimate_driver_model(dut, opt);
    report("(c) two-load weights (paper)", ref, fig1_load_run(tech, &model));

    core::PwRbfDriverModel complementary = model;
    for (std::size_t k = 0; k < complementary.up.size(); ++k)
      complementary.up.wl[k] = 1.0 - complementary.up.wh[k];
    for (std::size_t k = 0; k < complementary.down.size(); ++k)
      complementary.down.wl[k] = 1.0 - complementary.down.wh[k];
    report("(c) complementary wl = 1 - wh", ref, fig1_load_run(tech, &complementary));
  }

  // (d) coupled-line section count: far-end crosstalk peak convergence.
  std::printf("\n(d) lossy-line cascade sections (quiet-land crosstalk peak):\n");
  for (int sections : {2, 4, 8}) {
    ckt::Circuit c;
    const int src = c.node();
    const int a1 = c.node();
    const int a2 = c.node();
    const int b1 = c.node();
    const int b2 = c.node();
    sig::Pwl step({{0.0, 0.0}, {0.5e-9, 0.0}, {0.7e-9, 2.5}});
    c.add<ckt::VSource>(src, c.ground(), [step](double t) { return step(t); });
    c.add<ckt::Resistor>(src, a1, 25.0);
    c.add<ckt::Resistor>(a2, c.ground(), 25.0);
    add_coupled_lossy_line(c, {a1, a2}, {b1, b2}, exp::mcm_fig3_params(), exp::kTs,
                           sections);
    c.add<ckt::Capacitor>(b1, c.ground(), 1e-12);
    c.add<ckt::Capacitor>(b2, c.ground(), 1e-12);
    ckt::TransientOptions opt;
    opt.dt = exp::kTs;
    opt.t_stop = 6e-9;
    auto res = ckt::run_transient(c, opt);
    const auto v22 = res.waveform(b2);
    std::printf("    sections = %d: peak %+7.1f / %7.1f mV\n", sections,
                v22.max_value() * 1e3, v22.min_value() * 1e3);
  }
  return 0;
}
