// Spectral hot-path bench: (1) the real-input split/recombine FFT against
// the complex forward (and a naive real DFT at small lengths), (2) the
// swept EMI receiver's zoom-IFFT demodulation against the full-length
// reference path, across record lengths. Wall clocks, speedups and the
// zoom-vs-reference detector agreement land in BENCH_fft.json with the
// shared bench schema (see json_out.hpp).
//
//   bench_fft [--smoke]
//
// The exit code gates on correctness only (forward_real matching the
// complex bins, zoom detectors within 0.01 dB of the reference); speedups
// are recorded, not gated, because they are hardware-dependent.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <vector>

#include "baseline.hpp"
#include "emc/fft.hpp"
#include "emc/receiver.hpp"
#include "json_out.hpp"
#include "signal/sources.hpp"
#include "signal/waveform.hpp"

namespace {

using namespace emc;
using cplx = std::complex<double>;
using bench::seconds_since;

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  sig::Lcg rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
  return x;
}

/// Naive O(n^2) real-input DFT, the half-spectrum only.
std::vector<cplx> naive_real_dft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    double re = 0.0, im = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ph = -2.0 * std::numbers::pi * static_cast<double>(j * k % n) /
                        static_cast<double>(n);
      re += x[j] * std::cos(ph);
      im += x[j] * std::sin(ph);
    }
    out[k] = {re, im};
  }
  return out;
}

/// Repetition count targeting a roughly constant total work per length.
std::size_t fft_reps(std::size_t n, bool smoke) {
  const double work = static_cast<double>(n) * std::log2(static_cast<double>(n) + 1.0);
  const double budget = smoke ? 4e6 : 6e7;
  return std::max<std::size_t>(3, static_cast<std::size_t>(budget / work));
}

/// Busy wideband record: harmonics of a 100 MHz carrier, slow AM, LCG
/// noise — spectral structure at every EMI-scan frequency.
sig::Waveform scan_record(std::size_t n, double fs) {
  sig::Lcg rng(123);
  std::vector<double> y(n);
  const double dt = 1.0 / fs;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    double v = 0.0;
    for (int h = 1; h <= 12; ++h)
      v += (1.0 / h) * std::sin(2.0 * std::numbers::pi * 100e6 * h * t + 0.4 * h);
    v *= 1.0 + 0.3 * std::sin(2.0 * std::numbers::pi * 5e6 * t);
    v += 0.02 * (rng.uniform() * 2.0 - 1.0);
    y[k] = v;
  }
  return {0.0, dt, std::move(y)};
}

spec::ReceiverSettings scan_rx(std::size_t n_points, spec::ScanMethod method) {
  spec::ReceiverSettings rx;
  rx.name = "wideband scan";
  rx.f_start = 50e6;
  rx.f_stop = 5e9;
  rx.n_points = n_points;
  rx.rbw = 20e6;
  rx.tau_charge = 1e-9;
  rx.tau_discharge = 30e-9;
  rx.method = method;
  return rx;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::printf("=== bench_fft: real-input FFT + zoom-IFFT receiver demodulation ===%s\n",
              smoke ? "  [smoke mode]" : "");

  auto doc = bench::make_bench_doc("bench_fft");
  doc.set("smoke", bench::Json::boolean(smoke));
  bool ok = true;

  // ---------------------------------------------------- forward transforms
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{1024, 16384}
            : std::vector<std::size_t>{1024, 4096, 16384, 131072, 3600};
  auto fft_rows = bench::Json::array();
  std::printf("\n%9s %6s %14s %14s %9s %12s\n", "n", "pow2", "forward [us]",
              "fwd_real [us]", "speedup", "naive [us]");
  for (std::size_t n : lengths) {
    const auto x = random_real(n, 7 * n);
    const std::size_t reps = fft_reps(n, smoke);
    spec::FftPlan plan(n);

    // Treat-real-as-complex pipeline: widen to complex, full transform.
    std::vector<cplx> xc(n), buf(n);
    for (std::size_t k = 0; k < n; ++k) xc[k] = {x[k], 0.0};
    const auto t_fwd = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      std::copy(xc.begin(), xc.end(), buf.begin());
      plan.forward(buf.data());
    }
    const double wall_fwd = seconds_since(t_fwd) / static_cast<double>(reps);

    // Real-input split/recombine kernel.
    std::vector<cplx> bins;
    plan.forward_real(x, bins);  // warm (builds the half plan)
    const auto t_real = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) plan.forward_real(x, bins);
    const double wall_real = seconds_since(t_real) / static_cast<double>(reps);

    // Correctness gate: half-spectrum must match the complex transform.
    double worst = 0.0;
    for (std::size_t k = 0; k < bins.size(); ++k) worst = std::max(worst, std::abs(bins[k] - buf[k]));
    if (worst > 1e-9 * static_cast<double>(n)) {
      std::printf("FAIL: forward_real deviates from forward by %g at n=%zu\n", worst, n);
      ok = false;
    }

    double wall_naive = 0.0;
    if (n <= 2048) {
      const auto t_naive = std::chrono::steady_clock::now();
      const auto ref = naive_real_dft(x);
      wall_naive = seconds_since(t_naive);
      double worst_naive = 0.0;
      for (std::size_t k = 0; k < bins.size(); ++k)
        worst_naive = std::max(worst_naive, std::abs(bins[k] - ref[k]));
      if (worst_naive > 1e-8 * static_cast<double>(n)) {
        std::printf("FAIL: forward_real deviates from naive DFT by %g at n=%zu\n",
                    worst_naive, n);
        ok = false;
      }
    }

    const double speedup = wall_real > 0.0 ? wall_fwd / wall_real : 0.0;
    const bool pow2 = (n & (n - 1)) == 0;
    char naive_col[24];
    if (wall_naive > 0.0)
      std::snprintf(naive_col, sizeof naive_col, "%.1f", wall_naive * 1e6);
    else
      std::snprintf(naive_col, sizeof naive_col, "-");
    std::printf("%9zu %6s %14.1f %14.1f %8.2fx %12s\n", n, pow2 ? "yes" : "no",
                wall_fwd * 1e6, wall_real * 1e6, speedup, naive_col);

    auto row = bench::Json::object();
    row.set("n", bench::Json::integer(static_cast<long>(n)));
    row.set("pow2", bench::Json::boolean(pow2));
    row.set("wall_forward_s", bench::Json::number(wall_fwd));
    row.set("wall_forward_real_s", bench::Json::number(wall_real));
    row.set("speedup_real", bench::Json::number(speedup));
    if (wall_naive > 0.0) row.set("wall_naive_s", bench::Json::number(wall_naive));
    fft_rows.push(std::move(row));
    doc.at("scenarios").push(bench::scenario_row("fft_n" + std::to_string(n),
                                                 wall_fwd + wall_real));
  }
  doc.set("fft", std::move(fft_rows));

  // ------------------------------------------------- swept receiver scans
  const std::vector<std::size_t> record_lengths =
      smoke ? std::vector<std::size_t>{16384} : std::vector<std::size_t>{16384, 131072};
  const std::size_t n_points = smoke ? 20 : 100;
  auto scan_rows = bench::Json::array();
  std::printf("\n%9s %7s %16s %12s %9s %14s\n", "n", "points", "reference [ms]",
              "zoom [ms]", "speedup", "max delta [dB]");
  for (std::size_t n : record_lengths) {
    const auto w = scan_record(n, 40e9);
    spec::EmiScanner scanner;

    const std::size_t ref_reps = smoke ? 1 : 2;
    const std::size_t zoom_reps = smoke ? 2 : 5;

    // One shared log grid + one cached forward transform: the timed loops
    // below measure the demodulation phase alone, which is what zoom vs.
    // reference actually compares.
    const auto rx_ref = scan_rx(n_points, spec::ScanMethod::kReference);
    const auto rx_zoom = scan_rx(n_points, spec::ScanMethod::kZoom);
    const auto grid = spec::make_log_grid(rx_ref.f_start, rx_ref.f_stop, n_points);
    scanner.load_record(w);

    spec::EmiScan ref;
    const auto t_ref = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < ref_reps; ++r) ref = scanner.measure(rx_ref, grid);
    const double wall_ref = seconds_since(t_ref) / static_cast<double>(ref_reps);

    spec::EmiScan zoom;
    scanner.measure(rx_zoom, grid);  // warm zoom plan
    const auto t_zoom = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < zoom_reps; ++r) zoom = scanner.measure(rx_zoom, grid);
    const double wall_zoom = seconds_since(t_zoom) / static_cast<double>(zoom_reps);

    const double delta = spec::max_detector_delta_db(ref, zoom);
    if (!(delta < 0.01) || ref.size() != zoom.size()) {
      std::printf("FAIL: zoom deviates from reference by %.4f dB at n=%zu\n", delta, n);
      ok = false;
    }

    const double speedup = wall_zoom > 0.0 ? wall_ref / wall_zoom : 0.0;
    std::printf("%9zu %7zu %16.2f %12.2f %8.2fx %14.5f\n", n, n_points, wall_ref * 1e3,
                wall_zoom * 1e3, speedup, delta);

    auto row = bench::Json::object();
    row.set("n", bench::Json::integer(static_cast<long>(n)));
    row.set("points", bench::Json::integer(static_cast<long>(n_points)));
    row.set("wall_reference_s", bench::Json::number(wall_ref));
    row.set("wall_zoom_s", bench::Json::number(wall_zoom));
    row.set("speedup", bench::Json::number(speedup));
    row.set("max_delta_db", bench::Json::number(delta));
    scan_rows.push(std::move(row));
    doc.at("scenarios").push(
        bench::scenario_row("scan_n" + std::to_string(n), wall_ref + wall_zoom));
  }
  doc.set("receiver_scan", std::move(scan_rows));
  doc.set("accuracy_ok", bench::Json::boolean(ok));

  if (doc.write_file("BENCH_fft.json")) std::printf("\nwrote BENCH_fft.json\n");
  ok = bench::check_baseline_gate(doc, bargs) && ok;
  return ok ? 0 : 1;
}
