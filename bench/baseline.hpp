// --check-baseline support shared by every bench binary.
//
// Each bench calls extract_baseline_args() first — it strips
//
//   --check-baseline PATH    baseline spec to score the bench doc against
//   --baseline-scale X       multiply every row's tolerance (slow runners)
//
// from argv in place, so the bench's own argument parsing never sees
// them — then, after building its BENCH_*.json document, gates the run
// with check_baseline_gate(). With no --check-baseline the gate is a
// no-op returning true; with one it parses the spec
// (bench/baselines/*.smoke.json, schema in src/obs/compare.hpp), scores
// the document through obs::check_baseline, prints the verdict table, and
// returns the pass flag for the bench to fold into its exit code.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/compare.hpp"
#include "obs/json.hpp"

namespace emc::bench {

struct BaselineArgs {
  std::string path;   ///< empty = no baseline check requested
  double scale = 1.0; ///< tolerance multiplier
};

/// Strip --check-baseline/--baseline-scale (and their values) out of
/// argv, compacting it in place and updating argc.
inline BaselineArgs extract_baseline_args(int& argc, char** argv) {
  BaselineArgs out;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string a = argv[r];
    if (a == "--check-baseline" && r + 1 < argc) {
      out.path = argv[++r];
    } else if (a == "--baseline-scale" && r + 1 < argc) {
      out.scale = std::strtod(argv[++r], nullptr);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return out;
}

/// Score `doc` against the baseline spec named in `args`. True when no
/// baseline was requested or every row passes; prints the verdict table
/// either way. Unreadable/malformed specs report to stderr and fail.
inline bool check_baseline_gate(const obs::Json& doc, const BaselineArgs& args) {
  if (args.path.empty()) return true;
  try {
    const obs::Json spec = obs::Json::parse_file(args.path);
    const obs::CompareResult r = obs::check_baseline(spec, doc, args.scale);
    std::printf("baseline %s (tol x%g):\n%s", args.path.c_str(), args.scale,
                r.format().c_str());
    return r.pass;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baseline check failed: %s\n", e.what());
    return false;
  }
}

}  // namespace emc::bench
