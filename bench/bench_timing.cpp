// Section 5 reproduction: the accuracy table. For every validation
// experiment the threshold-crossing timing error between the reference and
// the macromodel is computed (sampling time Ts = 25 ps). Paper claim:
// always below 20 ps, mostly around 5 ps.
#include <cstdio>
#include <vector>

#include "core/validation.hpp"
#include "experiments.hpp"

int main() {
  using namespace emc;
  std::printf("=== Section 5: timing-error summary (Ts = 25 ps) ===\n");
  std::printf("estimating all device models, running all experiments...\n\n");

  std::vector<core::ValidationReport> rows;

  {
    const auto f1 = exp::run_fig1();
    rows.push_back(
        core::validate_waveform("fig1 MD1 near-end", f1.reference, f1.pwrbf, 1.65, 0.2e-9));
  }
  {
    const auto f2 = exp::run_fig2();
    int idx = 0;
    for (const auto& p : f2) {
      char label[48];
      std::snprintf(label, sizeof label, "fig2%c MD2 far-end",
                    static_cast<char>('a' + idx++));
      rows.push_back(core::validate_waveform(label, p.reference, p.pwrbf, 0.9, 0.2e-9));
    }
  }
  {
    const auto f4 = exp::run_fig4_both(20e-9);
    rows.push_back(core::validate_waveform("fig4 MD3 active", f4.v21_reference,
                                           f4.v21_pwrbf, 1.25, 0.2e-9));
  }
  {
    const auto f5 = exp::run_fig5();
    rows.push_back(core::validate_waveform("fig5 MD4 current", f5.i_reference,
                                           f5.i_parametric, 0.02, 0.2e-9));
  }
  {
    const auto f6 = exp::run_fig6();
    int idx = 0;
    for (const auto& p : f6) {
      char label[48];
      std::snprintf(label, sizeof label, "fig6%c MD4 pin",
                    static_cast<char>('a' + idx++));
      rows.push_back(core::validate_waveform(label, p.v_reference, p.v_parametric,
                                             p.amplitude / 2, 0.2e-9));
    }
  }

  // Two timing columns: "all" scores every deglitched threshold crossing
  // (including shallow ring-throughs, where dt = dv/slope inflates small
  // voltage errors); "edge" scores switching edges only, which is what the
  // paper's Section 5 methodology measures.
  std::printf("%-20s %10s %10s %10s   %s\n", "experiment", "rel rms", "all [ps]",
              "edge [ps]", "paper bound: < 20 ps on edges");
  int within = 0, total = 0;
  for (const auto& r : rows) {
    const double te = r.timing_error ? *r.timing_error * 1e12 : -1.0;
    const double ete = r.edge_timing_error ? *r.edge_timing_error * 1e12 : -1.0;
    if (r.edge_timing_error) {
      ++total;
      if (ete < 20.0) ++within;
    }
    std::printf("%-20s %9.2f%% %10.2f %10.2f   %s\n", r.label.c_str(), r.rel_rms * 100.0,
                te, ete,
                (r.edge_timing_error && ete < 20.0)
                    ? "ok"
                    : (r.edge_timing_error ? "EXCEEDED" : "-"));
  }
  std::printf("\n%d/%d experiments within the paper's 20 ps bound (edge metric)\n", within,
              total);
  return 0;
}
