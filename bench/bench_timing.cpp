// Section 5 reproduction: the accuracy table. For every validation
// experiment the threshold-crossing timing error between the reference and
// the macromodel is computed (sampling time Ts = 25 ps). Paper claim:
// always below 20 ps, mostly around 5 ps.
//
// Besides the human-readable table, the bench emits BENCH_timing.json
// (scenario name, wall time, Newton iterations) so the perf trajectory of
// the engine is tracked across PRs, and it times a purely linear transient
// twice — cached-LU fast path vs. the generic re-factorizing Newton path —
// verifying the waveforms agree to sub-nanovolt level.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "baseline.hpp"
#include "core/validation.hpp"
#include "experiments.hpp"
#include "json_out.hpp"

namespace {

struct BenchRow {
  std::string name;
  double wall_s = 0.0;
  long newton_iters = -1;  ///< -1: the scenario does not expose solver stats
};

using emc::bench::seconds_since;

/// Linear R-L-C ladder (n_sections stages) driven by a 3.3 V step: the
/// cached-LU showcase. Purely linear, so the engine solves one exact
/// Newton iteration per step and can reuse a single factorization.
void build_ladder(emc::ckt::Circuit& c, int n_sections) {
  using namespace emc::ckt;
  const int in = c.node("in");
  c.add<VSource>(in, 0, [](double t) { return t < 0.5e-9 ? 0.0 : 3.3; });
  int prev = in;
  for (int k = 0; k < n_sections; ++k) {
    const int mid = c.node();
    const int nxt = c.node();
    c.add<Resistor>(prev, mid, 2.0);
    c.add<Inductor>(mid, nxt, 1e-9);
    c.add<Capacitor>(nxt, 0, 2e-12);
    prev = nxt;
  }
  c.add<Resistor>(prev, 0, 50.0);
}

struct RecordCost {
  double record_wall_s = 0.0;   ///< full flat-record run
  double stream_wall_s = 0.0;   ///< streamed run, NullSink (no record)
  std::size_t record_bytes = 0; ///< flat record footprint
};

bool write_json(const std::vector<BenchRow>& rows, double speedup, double max_dv,
                const RecordCost& rc, bool smoke,
                const emc::bench::BaselineArgs& bargs) {
  auto doc = emc::bench::make_bench_doc("bench_timing");
  for (const auto& r : rows)
    doc.at("scenarios").push(emc::bench::scenario_row(r.name, r.wall_s, r.newton_iters));
  doc.set("smoke", emc::bench::Json::boolean(smoke));
  doc.set("linear_fastpath_speedup", emc::bench::Json::number(speedup));
  doc.set("linear_fastpath_max_dv", emc::bench::Json::number(max_dv));
  // Record-materialization cost: the flat single-allocation record vs. the
  // streamed path with a NullSink (production only). The gap is what
  // storing the record adds — with the step-major flat buffer this is one
  // allocation per run where the seed paid one vector per step.
  doc.set("record_wall_s", emc::bench::Json::number(rc.record_wall_s));
  doc.set("stream_null_wall_s", emc::bench::Json::number(rc.stream_wall_s));
  doc.set("record_bytes", emc::bench::Json::integer(static_cast<long>(rc.record_bytes)));
  if (doc.write_file("BENCH_timing.json"))
    std::printf("wrote BENCH_timing.json (%zu scenarios)\n", rows.size());
  return emc::bench::check_baseline_gate(doc, bargs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emc;
  // --smoke: CI sanity mode. Skips the model-estimation experiments and
  // shrinks the linear-ladder comparison so the binary exercises its whole
  // reporting path in seconds.
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::printf("=== Section 5: timing-error summary (Ts = 25 ps) ===%s\n",
              smoke ? "  [smoke mode]" : "");
  if (!smoke) std::printf("estimating all device models, running all experiments...\n\n");

  std::vector<core::ValidationReport> validation_rows;
  std::vector<BenchRow> bench_rows;

  if (!smoke) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto f1 = exp::run_fig1();
    bench_rows.push_back({"fig1", seconds_since(t0), -1});
    validation_rows.push_back(
        core::validate_waveform("fig1 MD1 near-end", f1.reference, f1.pwrbf, 1.65, 0.2e-9));
  }
  if (!smoke) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto f2 = exp::run_fig2();
    bench_rows.push_back({"fig2", seconds_since(t0), -1});
    int idx = 0;
    for (const auto& p : f2) {
      char label[48];
      std::snprintf(label, sizeof label, "fig2%c MD2 far-end",
                    static_cast<char>('a' + idx++));
      validation_rows.push_back(
          core::validate_waveform(label, p.reference, p.pwrbf, 0.9, 0.2e-9));
    }
  }
  if (!smoke) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto f4 = exp::run_fig4_both(20e-9);
    bench_rows.push_back({"fig4", seconds_since(t0), -1});
    validation_rows.push_back(core::validate_waveform("fig4 MD3 active", f4.v21_reference,
                                                      f4.v21_pwrbf, 1.25, 0.2e-9));
  }
  if (!smoke) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto f5 = exp::run_fig5();
    bench_rows.push_back({"fig5", seconds_since(t0), -1});
    validation_rows.push_back(core::validate_waveform("fig5 MD4 current", f5.i_reference,
                                                      f5.i_parametric, 0.02, 0.2e-9));
  }
  if (!smoke) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto f6 = exp::run_fig6();
    bench_rows.push_back({"fig6", seconds_since(t0), -1});
    int idx = 0;
    for (const auto& p : f6) {
      char label[48];
      std::snprintf(label, sizeof label, "fig6%c MD4 pin",
                    static_cast<char>('a' + idx++));
      validation_rows.push_back(core::validate_waveform(
          label, p.v_reference, p.v_parametric, p.amplitude / 2, 0.2e-9));
    }
  }

  // Two timing columns: "all" scores every deglitched threshold crossing
  // (including shallow ring-throughs, where dt = dv/slope inflates small
  // voltage errors); "edge" scores switching edges only, which is what the
  // paper's Section 5 methodology measures.
  std::printf("%-20s %10s %10s %10s   %s\n", "experiment", "rel rms", "all [ps]",
              "edge [ps]", "paper bound: < 20 ps on edges");
  int within = 0, total = 0;
  for (const auto& r : validation_rows) {
    const double te = r.timing_error ? *r.timing_error * 1e12 : -1.0;
    const double ete = r.edge_timing_error ? *r.edge_timing_error * 1e12 : -1.0;
    if (r.edge_timing_error) {
      ++total;
      if (ete < 20.0) ++within;
    }
    std::printf("%-20s %9.2f%% %10.2f %10.2f   %s\n", r.label.c_str(), r.rel_rms * 100.0,
                te, ete,
                (r.edge_timing_error && ete < 20.0)
                    ? "ok"
                    : (r.edge_timing_error ? "EXCEEDED" : "-"));
  }
  std::printf("\n%d/%d experiments within the paper's 20 ps bound (edge metric)\n", within,
              total);

  // ---- linear-circuit transient: cached-LU fast path vs. generic Newton
  std::printf("\n=== Linear transient: cached-LU fast path vs. full per-step LU ===\n");
  const int kSections = smoke ? 10 : 40;
  ckt::TransientOptions opt;
  opt.dt = 25e-12;
  opt.t_stop = smoke ? 20e-9 : 100e-9;

  ckt::Circuit fast_ckt, ref_ckt;
  build_ladder(fast_ckt, kSections);
  build_ladder(ref_ckt, kSections);

  opt.cache_lu = true;
  auto t0 = std::chrono::steady_clock::now();
  const auto res_fast = ckt::run_transient(fast_ckt, opt);
  const double wall_fast = seconds_since(t0);
  bench_rows.push_back(
      {"linear_ladder_cached_lu", wall_fast, res_fast.stats.total_newton_iters});

  opt.cache_lu = false;
  t0 = std::chrono::steady_clock::now();
  const auto res_ref = ckt::run_transient(ref_ckt, opt);
  const double wall_ref = seconds_since(t0);
  bench_rows.push_back(
      {"linear_ladder_full_lu", wall_ref, res_ref.stats.total_newton_iters});

  double max_dv = 0.0;
  const int last_node = 1 + 2 * kSections;  // ladder output node id
  const auto wf = res_fast.waveform(last_node);
  const auto wr = res_ref.waveform(last_node);
  for (std::size_t k = 0; k < wf.size(); ++k)
    max_dv = std::max(max_dv, std::abs(wf[k] - wr[k]));
  const double speedup = wall_fast > 0.0 ? wall_ref / wall_fast : 0.0;

  std::printf("cached LU: %8.4f s  (%ld Newton iters over %ld steps)\n", wall_fast,
              res_fast.stats.total_newton_iters, res_fast.stats.steps);
  std::printf("full LU:   %8.4f s  (%ld Newton iters over %ld steps)\n", wall_ref,
              res_ref.stats.total_newton_iters, res_ref.stats.steps);
  std::printf("speedup:   %.2fx   max |dv| = %.3e V (bound: 1e-9)\n", speedup, max_dv);

  // ---- record materialization cost: flat full record vs. streamed NullSink
  std::printf("\n=== Record cost: flat full record vs. streamed (no record) ===\n");
  RecordCost rc;
  {
    ckt::Circuit rec_ckt, str_ckt;
    build_ladder(rec_ckt, kSections);
    build_ladder(str_ckt, kSections);
    opt.cache_lu = true;

    t0 = std::chrono::steady_clock::now();
    const auto res = ckt::run_transient(rec_ckt, opt);
    rc.record_wall_s = seconds_since(t0);
    rc.record_bytes = res.data().size() * sizeof(double);
    bench_rows.push_back({"linear_ladder_record", rc.record_wall_s,
                          res.stats.total_newton_iters});

    const int n_unknowns = str_ckt.finalize();
    std::vector<int> probes(static_cast<std::size_t>(n_unknowns));
    for (int i = 0; i < n_unknowns; ++i) probes[static_cast<std::size_t>(i)] = i + 1;
    sig::NullSink null;
    ckt::NewtonWorkspace ws;
    t0 = std::chrono::steady_clock::now();
    const auto stats = ckt::run_transient_streamed(str_ckt, opt, ws, probes, null);
    rc.stream_wall_s = seconds_since(t0);
    bench_rows.push_back(
        {"linear_ladder_stream_null", rc.stream_wall_s, stats.total_newton_iters});

    std::printf("flat record: %8.4f s  (%.1f KiB record)\n", rc.record_wall_s,
                static_cast<double>(rc.record_bytes) / 1024.0);
    std::printf("null sink:   %8.4f s  (record cost: %+.1f%%)\n", rc.stream_wall_s,
                rc.stream_wall_s > 0.0
                    ? 100.0 * (rc.record_wall_s - rc.stream_wall_s) / rc.stream_wall_s
                    : 0.0);
  }

  const bool base_ok = write_json(bench_rows, speedup, max_dv, rc, smoke, bargs);
  return (max_dv < 1e-9 && base_ok) ? 0 : 1;
}
