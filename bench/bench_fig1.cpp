// Figure 1 reproduction: near-end voltage of MD1 driving an ideal
// transmission line (50 ohm, 0.5 ns) terminated by 10 pF, Low->High
// transition. Reference vs PW-RBF macromodel vs slow/typ/fast IBIS.
//
// Paper result: the PW-RBF model overlays the reference; the IBIS corner
// band misses the detailed waveform even though it brackets the drive
// strength.
#include <cstdio>

#include "core/validation.hpp"
#include "experiments.hpp"
#include "signal/csv.hpp"

int main() {
  using namespace emc;
  std::printf("=== Figure 1: MD1 near-end voltage on 50 ohm / 0.5 ns line + 10 pF ===\n");
  std::printf("estimating models (PW-RBF + IBIS corners)...\n");
  const auto curves = exp::run_fig1();

  sig::write_csv("bench_out/fig1.csv",
                 {"reference", "pwrbf", "ibis_slow", "ibis_typical", "ibis_fast"},
                 {curves.reference, curves.pwrbf, curves.ibis_slow, curves.ibis_typical,
                  curves.ibis_fast});

  const double vdd = 3.3;
  const auto rep_model =
      core::validate_waveform("PW-RBF   ", curves.reference, curves.pwrbf, vdd / 2, 0.2e-9);
  const auto rep_slow = core::validate_waveform("IBIS slow", curves.reference,
                                                curves.ibis_slow, vdd / 2, 0.2e-9);
  const auto rep_typ = core::validate_waveform("IBIS typ ", curves.reference,
                                               curves.ibis_typical, vdd / 2, 0.2e-9);
  const auto rep_fast = core::validate_waveform("IBIS fast", curves.reference,
                                                curves.ibis_fast, vdd / 2, 0.2e-9);

  std::printf("\n%-10s %10s %10s %12s\n", "model", "rms [V]", "max [V]", "timing [ps]");
  for (const auto& r : {rep_model, rep_slow, rep_typ, rep_fast})
    std::printf("%-10s %10.4f %10.4f %12.2f\n", r.label.c_str(), r.rms_error, r.max_error,
                r.timing_error ? *r.timing_error * 1e12 : -1.0);

  std::printf("\nwaveform samples every 1 ns (t[ns]  ref  pwrbf  ibis_typ):\n");
  for (double t = 0.0; t <= 12e-9; t += 1e-9)
    std::printf("  %5.1f  %7.4f  %7.4f  %7.4f\n", t * 1e9, curves.reference.value_at(t),
                curves.pwrbf.value_at(t), curves.ibis_typical.value_at(t));

  std::printf("\npaper shape check: PW-RBF rms should be far below every IBIS corner\n");
  std::printf("  pwrbf rms = %.4f V, best IBIS rms = %.4f V  -> ratio %.1fx\n",
              rep_model.rms_error,
              std::min({rep_slow.rms_error, rep_typ.rms_error, rep_fast.rms_error}),
              std::min({rep_slow.rms_error, rep_typ.rms_error, rep_fast.rms_error}) /
                  rep_model.rms_error);
  std::printf("series written to bench_out/fig1.csv\n");
  return 0;
}
