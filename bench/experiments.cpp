#include "experiments.hpp"

#include <map>
#include <tuple>
#include <utility>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "core/driver_device.hpp"
#include "core/receiver_device.hpp"
#include "ibis/device.hpp"
#include "signal/sources.hpp"

namespace emc::exp {

core::PwRbfDriverModel make_driver_model(const dev::DriverTech& tech,
                                         const std::string& name) {
  // Estimation costs seconds; cache per device tag so benches that rerun
  // an experiment (Table 1 timing loops) measure simulation, not fitting.
  static std::map<std::string, core::PwRbfDriverModel> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  core::CircuitDriverDut dut(tech);
  core::DriverEstimationOptions opt;
  auto model = core::estimate_driver_model(dut, opt);
  model.name = name;
  cache.emplace(name, model);
  return model;
}

core::ParametricReceiverModel make_receiver_model() {
  static const auto cached = [] {
    core::CircuitReceiverDut dut(dev::ReceiverTech::md4_ibm18());
    auto m = core::estimate_receiver_model(dut);
    m.name = "MD4";
    return m;
  }();
  return cached;
}

core::CrReceiverModel make_cr_model() {
  static const auto cached = [] {
    core::CircuitReceiverDut dut(dev::ReceiverTech::md4_ibm18());
    auto m = core::estimate_cr_model(dut);
    m.name = "MD4-CR";
    return m;
  }();
  return cached;
}

ckt::CoupledLineParams mcm_fig3_params() {
  ckt::CoupledLineParams p;
  p.l = linalg::Matrix{{466e-9, 66e-9}, {66e-9, 466e-9}};
  p.c = linalg::Matrix{{66e-12, -6.6e-12}, {-6.6e-12, 66e-12}};
  p.length = 0.1;
  p.loss.rdc = 66.0;
  p.loss.rskin = 1.6e-3;
  p.loss.tan_delta = 0.001;
  p.loss.f_ref = 1e9;
  return p;
}

namespace {

/// Attach either a reference transistor driver or a behavioral device to a
/// pad node.
void attach_driver(ckt::Circuit& c, int pad, const dev::DriverTech& tech,
                   const core::PwRbfDriverModel* model, const ibis::IbisModel* ibis_model,
                   const std::string& bits, double bit_time) {
  if (model) {
    c.add<core::DriverDevice>(pad, *model, bits, bit_time);
    return;
  }
  if (ibis_model) {
    c.add<ibis::IbisDriverDevice>(pad, *ibis_model, bits, bit_time);
    return;
  }
  auto pattern = sig::bit_stream(bits, bit_time, 0.1e-9, 0.0, tech.vdd);
  auto inst =
      dev::build_reference_driver(c, tech, [pattern](double t) { return pattern(t); });
  c.add<ckt::Resistor>(inst.pad, pad, 1e-3);
}

/// The Fig. 3 coupled on-MCM bus: two drivers on a 0.1 m lossy coupled
/// line with 1 pF far-end loads. Returns the far-end (active, quiet)
/// voltages. Shared by the Fig. 4 validation and the emission benches so
/// both measure the identical structure.
std::pair<sig::Waveform, sig::Waveform> run_fig3_bus(const dev::DriverTech& tech,
                                                     const core::PwRbfDriverModel* model,
                                                     const std::string& active_bits,
                                                     const std::string& quiet_bits,
                                                     double bit_time, double t_stop) {
  ckt::Circuit c;
  const int a1 = c.node();
  const int a2 = c.node();
  const int b1 = c.node();
  const int b2 = c.node();
  add_coupled_lossy_line(c, {a1, a2}, {b1, b2}, mcm_fig3_params(), kTs, 8);
  c.add<ckt::Capacitor>(b1, c.ground(), 1e-12);
  c.add<ckt::Capacitor>(b2, c.ground(), 1e-12);
  attach_driver(c, a1, tech, model, nullptr, active_bits, bit_time);
  attach_driver(c, a2, tech, model, nullptr, quiet_bits, bit_time);

  ckt::TransientOptions opt;
  opt.dt = kTs;
  opt.t_stop = t_stop;
  auto res = ckt::run_transient(c, opt);
  return {res.waveform(b1), res.waveform(b2)};
}

sig::Waveform run_fig1_variant(const dev::DriverTech& tech,
                               const core::PwRbfDriverModel* model,
                               const ibis::IbisModel* ibis_model) {
  ckt::Circuit c;
  const int pad = c.node();
  const int far = c.node();
  c.add<ckt::IdealLine>(pad, c.ground(), far, c.ground(), 50.0, 0.5e-9);
  c.add<ckt::Capacitor>(far, c.ground(), 10e-12);
  attach_driver(c, pad, tech, model, ibis_model, "01", 2e-9);

  ckt::TransientOptions opt;
  opt.dt = kTs;
  opt.t_stop = 12e-9;
  auto res = ckt::run_transient(c, opt);
  return res.waveform(pad);
}

}  // namespace

Fig1Curves run_fig1() {
  const auto tech = dev::DriverTech::md1_lvc244();
  const auto model = make_driver_model(tech, "MD1");
  const auto corners = ibis::extract_ibis_corners(tech);

  Fig1Curves out;
  out.reference = run_fig1_variant(tech, nullptr, nullptr);
  out.pwrbf = run_fig1_variant(tech, &model, nullptr);
  out.ibis_slow = run_fig1_variant(tech, nullptr, &corners[0]);
  out.ibis_typical = run_fig1_variant(tech, nullptr, &corners[1]);
  out.ibis_fast = run_fig1_variant(tech, nullptr, &corners[2]);
  return out;
}

std::vector<Fig2Panel> run_fig2() {
  const auto tech = dev::DriverTech::md2_ibm18();
  const auto model = make_driver_model(tech, "MD2");

  const double z0s[] = {50.0, 120.0, 45.0};
  const double tds[] = {0.5e-9, 0.5e-9, 75e-12};

  std::vector<Fig2Panel> panels;
  for (int p = 0; p < 3; ++p) {
    auto run = [&](const core::PwRbfDriverModel* m) {
      ckt::Circuit c;
      const int pad = c.node();
      const int far = c.node();
      c.add<ckt::IdealLine>(pad, c.ground(), far, c.ground(), z0s[p], tds[p]);
      c.add<ckt::Capacitor>(far, c.ground(), 1e-12);
      attach_driver(c, pad, tech, m, nullptr, "010", 1e-9);
      ckt::TransientOptions opt;
      opt.dt = kTs;
      opt.t_stop = 8e-9;
      auto res = ckt::run_transient(c, opt);
      return res.waveform(far);
    };
    Fig2Panel panel;
    panel.z0 = z0s[p];
    panel.td = tds[p];
    panel.reference = run(nullptr);
    panel.pwrbf = run(&model);
    panels.push_back(std::move(panel));
  }
  return panels;
}

Fig4Curves run_fig4(bool use_model_drivers, double t_stop) {
  const auto tech = dev::DriverTech::md3_ibm25();
  core::PwRbfDriverModel model;
  if (use_model_drivers) model = make_driver_model(tech, "MD3");

  auto [active, quiet] =
      run_fig3_bus(tech, use_model_drivers ? &model : nullptr, "011011101010000",
                   std::string(15, '0'), 1e-9, t_stop);

  Fig4Curves out;
  if (use_model_drivers) {
    out.v21_pwrbf = std::move(active);
    out.v22_pwrbf = std::move(quiet);
  } else {
    out.v21_reference = std::move(active);
    out.v22_reference = std::move(quiet);
  }
  return out;
}

Fig4Curves run_fig4_both(double t_stop) {
  Fig4Curves ref = run_fig4(false, t_stop);
  Fig4Curves mod = run_fig4(true, t_stop);
  ref.v21_pwrbf = std::move(mod.v21_pwrbf);
  ref.v22_pwrbf = std::move(mod.v22_pwrbf);
  return ref;
}

Fig5Curves run_fig5() {
  const auto tech = dev::ReceiverTech::md4_ibm18();
  const auto model = make_receiver_model();
  const auto cr = make_cr_model();

  auto run = [&](int which) {  // 0 = reference, 1 = parametric, 2 = C-R
    ckt::Circuit c;
    const int src = c.node();
    const int pin = c.node();
    const double rs = 10.0;
    auto tz = sig::trapezoid(0.0, 1.0, 0.4e-9, 0.1e-9, 3e-9, 0.1e-9);
    c.add<ckt::VSource>(src, c.ground(), [tz](double t) { return tz(t); });
    c.add<ckt::Resistor>(src, pin, rs);
    if (which == 0) {
      auto inst = dev::build_reference_receiver(c, tech);
      c.add<ckt::Resistor>(inst.pin, pin, 1e-3);
    } else if (which == 1) {
      c.add<core::ReceiverDevice>(pin, model);
    } else {
      core::add_cr_receiver(c, pin, cr);
    }
    ckt::TransientOptions opt;
    opt.dt = kTs;
    opt.t_stop = 5e-9;
    auto res = ckt::run_transient(c, opt);
    const auto v_src = res.waveform(src);
    const auto v_pin = res.waveform(pin);
    std::vector<double> i(v_src.size());
    for (std::size_t k = 0; k < i.size(); ++k) i[k] = (v_src[k] - v_pin[k]) / rs;
    return sig::Waveform(v_src.t0(), v_src.dt(), std::move(i));
  };

  Fig5Curves out;
  out.i_reference = run(0);
  out.i_parametric = run(1);
  out.i_cr = run(2);
  return out;
}

std::vector<Fig6Panel> run_fig6() {
  const auto tech = dev::ReceiverTech::md4_ibm18();
  const auto model = make_receiver_model();
  const auto cr = make_cr_model();

  // 10 cm lossy single-conductor line (same per-meter data as Fig. 3).
  ckt::CoupledLineParams line;
  line.l = linalg::Matrix{{466e-9}};
  line.c = linalg::Matrix{{66e-12}};
  line.length = 0.1;
  line.loss = mcm_fig3_params().loss;

  std::vector<Fig6Panel> panels;
  for (double amp : {1.9, 3.3, 3.6}) {
    auto run = [&](int which) {
      ckt::Circuit c;
      const int src = c.node();
      const int near = c.node();
      const int pin = c.node();
      auto tz = sig::trapezoid(0.0, amp, 0.4e-9, 0.1e-9, 3e-9, 0.1e-9);
      c.add<ckt::VSource>(src, c.ground(), [tz](double t) { return tz(t); });
      c.add<ckt::Resistor>(src, near, 50.0);
      add_coupled_lossy_line(c, {near}, {pin}, line, kTs, 8);
      if (which == 0) {
        auto inst = dev::build_reference_receiver(c, tech);
        c.add<ckt::Resistor>(inst.pin, pin, 1e-3);
      } else if (which == 1) {
        c.add<core::ReceiverDevice>(pin, model);
      } else {
        core::add_cr_receiver(c, pin, cr);
      }
      ckt::TransientOptions opt;
      opt.dt = kTs;
      opt.t_stop = 8e-9;
      auto res = ckt::run_transient(c, opt);
      return res.waveform(pin);
    };
    Fig6Panel p;
    p.amplitude = amp;
    p.v_reference = run(0);
    p.v_parametric = run(1);
    p.v_cr = run(2);
    panels.push_back(std::move(p));
  }
  return panels;
}

BusEmissions run_bus_emissions(int periods) {
  const auto tech = dev::DriverTech::md3_ibm25();
  const auto model = make_driver_model(tech, "MD3");

  const std::string pattern = "011011101010000";
  const double bit_time = 1e-9;
  std::string active_bits;
  for (int p = 0; p < periods; ++p) active_bits += pattern;
  const std::string quiet_bits(active_bits.size(), '0');

  BusEmissions out;
  out.pattern_period = bit_time * static_cast<double>(pattern.size());
  const double t_stop = out.pattern_period * static_cast<double>(periods);

  std::tie(out.active_reference, out.quiet_reference) =
      run_fig3_bus(tech, nullptr, active_bits, quiet_bits, bit_time, t_stop);
  std::tie(out.active_pwrbf, out.quiet_pwrbf) =
      run_fig3_bus(tech, &model, active_bits, quiet_bits, bit_time, t_stop);
  return out;
}

}  // namespace emc::exp
