// Spectral EMC assessment of the bus-crosstalk scenario: does the PW-RBF
// macromodel predict the same emission spectrum as the transistor-level
// reference where an EMC engineer would look — in dBuV vs. frequency,
// against a limit mask?
//
// The aggressor repeats its 15-bit pattern, the steady-state far-end
// record (an exact number of pattern periods, so harmonics are coherently
// sampled and the rectangular window is exact) is transformed, and the two
// spectra are compared per harmonic. Both are then scored against a
// CISPR-style piecewise-log board-level mask and a swept EMI-receiver
// measurement is timed. Results land in BENCH_emc.json with the shared
// bench schema (see json_out.hpp).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "baseline.hpp"
#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "experiments.hpp"
#include "json_out.hpp"
#include "signal/csv.hpp"

namespace {

using emc::bench::seconds_since;

/// Steady-state slice: drop the first pattern period (startup transient),
/// keep an exact number of whole periods.
emc::sig::Waveform steady_slice(const emc::sig::Waveform& w, double period, int periods) {
  const auto per_period = static_cast<std::size_t>(std::lround(period / w.dt()));
  return w.slice(per_period, per_period * static_cast<std::size_t>(periods - 1));
}

/// Board-level conducted-style emission mask spanning the harmonic range
/// of the 1 Gb/s aggressor: log-linear from 140 dBuV at 50 MHz down to
/// 90 dBuV at 5 GHz (CISPR-style shape; the standard conducted masks stop
/// at 30 MHz, below this record's resolution). Sized so the bus passes at
/// the fundamental but trips on mid-range harmonics — the regime where
/// reference and macromodel verdicts must agree.
emc::spec::LimitMask board_mask() {
  return {"board-level conducted-style mask", {{50e6, 140.0}, {5e9, 90.0}}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emc;
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  // Total simulated periods; the first is discarded as startup transient.
  const int periods = smoke ? 3 : 7;

  std::printf("=== bench_emc: emission spectra, reference vs. PW-RBF macromodel ===%s\n",
              smoke ? "  [smoke mode]" : "");
  std::printf("running bus-crosstalk scenario (%d pattern periods)...\n", periods);

  auto doc = bench::make_bench_doc("bench_emc");
  doc.set("smoke", bench::Json::boolean(smoke));

  const auto t_run = std::chrono::steady_clock::now();
  const auto bus = exp::run_bus_emissions(periods);
  doc.at("scenarios").push(bench::scenario_row("bus_emissions_ref_and_model",
                                               seconds_since(t_run)));

  const auto ref = steady_slice(bus.active_reference, bus.pattern_period, periods);
  const auto mod = steady_slice(bus.active_pwrbf, bus.pattern_period, periods);

  // Coherent record: rectangular window measures each harmonic exactly.
  // The record length (periods-1)*600 samples is not a power of two, so
  // this also exercises the Bluestein path end-to-end.
  const auto t_fft = std::chrono::steady_clock::now();
  const auto spec_ref = spec::amplitude_spectrum_dbuv(ref, spec::Window::kRectangular);
  const auto spec_mod = spec::amplitude_spectrum_dbuv(mod, spec::Window::kRectangular);
  doc.at("scenarios").push(
      bench::scenario_row("amplitude_spectra", seconds_since(t_fft)));

  // Harmonics of the 15 ns pattern sit every (periods-1) bins. Report the
  // ones the mask range covers and that rise above the numerical floor.
  const std::size_t hop = static_cast<std::size_t>(periods - 1);
  auto harmonics = bench::Json::array();
  double max_abs_err = 0.0;
  // The gated error covers harmonics within 40 dB of the carrier and below
  // 2 GHz: with ~100 ps edges there is no meaningful emission energy (and
  // no macromodel fidelity claim in the paper) above that, and dB errors
  // on near-floor harmonics are meaningless.
  double max_abs_err_strong = 0.0;
  double strongest = -300.0;
  for (std::size_t k = hop; k < spec_ref.size(); k += hop)
    strongest = std::max(strongest, spec_ref[k]);
  std::printf("\n%10s %12s %12s %9s\n", "f [MHz]", "ref [dBuV]", "model [dBuV]",
              "err [dB]");
  for (std::size_t k = hop; k < spec_ref.size(); k += hop) {
    const double f = spec_ref.frequency_at(k);
    if (f > 5e9) break;
    const double lv_ref = spec_ref[k];
    const double lv_mod = spec_mod[k];
    if (lv_ref < strongest - 100.0) continue;  // numerical floor
    const double err = lv_mod - lv_ref;
    max_abs_err = std::max(max_abs_err, std::abs(err));
    if (lv_ref > strongest - 40.0 && f <= 2e9)
      max_abs_err_strong = std::max(max_abs_err_strong, std::abs(err));
    if (f < 1.5e9)
      std::printf("%10.1f %12.2f %12.2f %9.2f\n", f / 1e6, lv_ref, lv_mod, err);
    auto row = bench::Json::object();
    row.set("f_mhz", bench::Json::number(f / 1e6));
    row.set("ref_dbuv", bench::Json::number(lv_ref));
    row.set("model_dbuv", bench::Json::number(lv_mod));
    row.set("err_db", bench::Json::number(err));
    harmonics.push(std::move(row));
  }
  doc.set("harmonics", std::move(harmonics));
  doc.set("max_abs_err_db", bench::Json::number(max_abs_err));
  doc.set("max_abs_err_strong_db", bench::Json::number(max_abs_err_strong));
  std::printf(
      "\nmax |err| %.2f dB overall, %.2f dB on strong harmonics (<2 GHz, within 40 dB "
      "of carrier)\n",
      max_abs_err, max_abs_err_strong);

  // Limit-mask compliance of both spectra, CISPR-style worst margin.
  const auto mask = board_mask();
  const auto rep_ref = spec::check_compliance(spec_ref, mask, "reference");
  const auto rep_mod = spec::check_compliance(spec_mod, mask, "macromodel");
  std::printf("%s\n%s\n", rep_ref.summary().c_str(), rep_mod.summary().c_str());

  auto compliance = bench::Json::object();
  compliance.set("mask", bench::Json::string(mask.name));
  auto side = [](const spec::ComplianceReport& r) {
    auto o = bench::Json::object();
    o.set("pass", bench::Json::boolean(r.pass));
    o.set("worst_margin_db", bench::Json::number(r.worst_margin_db));
    if (const auto* w = r.worst_point()) {
      o.set("worst_f_mhz", bench::Json::number(w->f / 1e6));
      o.set("worst_level_dbuv", bench::Json::number(w->level_dbuv));
    }
    return o;
  };
  compliance.set("reference", side(rep_ref));
  compliance.set("macromodel", side(rep_mod));
  compliance.set("worst_margin_delta_db",
                 bench::Json::number(rep_mod.worst_margin_db - rep_ref.worst_margin_db));
  doc.set("compliance", std::move(compliance));

  // Swept EMI-receiver measurement (timed; perf tracking for the scan
  // path). The RBW/QP constants are compressed to the record length.
  spec::ReceiverSettings rx;
  rx.name = "wideband scan";
  rx.f_start = 50e6;
  rx.f_stop = 5e9;
  rx.n_points = smoke ? 20 : 60;
  rx.rbw = 20e6;
  rx.tau_charge = 1e-9;
  rx.tau_discharge = 30e-9;
  const auto t_scan = std::chrono::steady_clock::now();
  const auto scan_ref = spec::emi_scan(ref, rx);
  const auto scan_mod = spec::emi_scan(mod, rx);
  doc.at("scenarios").push(bench::scenario_row("emi_scan", seconds_since(t_scan)));

  // Scan-phase timing: zoom-IFFT vs full-length reference demodulation on
  // the same (reference-circuit) record, and the detector agreement the
  // fast path must hold on a real emission waveform.
  spec::EmiScanner phase_scanner;
  auto rx_ref = rx;
  rx_ref.method = spec::ScanMethod::kReference;
  auto rx_zoom = rx;
  rx_zoom.method = spec::ScanMethod::kZoom;
  // Shared log grid + cached forward transform: both timed passes measure
  // the demodulation phase over the identical frequency list.
  const auto scan_grid = spec::make_log_grid(rx.f_start, rx.f_stop, rx.n_points);
  phase_scanner.load_record(ref);
  const auto t_scan_ref = std::chrono::steady_clock::now();
  const auto phase_ref = phase_scanner.measure(rx_ref, scan_grid);
  const double wall_scan_ref = seconds_since(t_scan_ref);
  doc.at("scenarios").push(bench::scenario_row("emi_scan_reference", wall_scan_ref));
  const auto t_scan_zoom = std::chrono::steady_clock::now();
  const auto phase_zoom = phase_scanner.measure(rx_zoom, scan_grid);
  const double wall_scan_zoom = seconds_since(t_scan_zoom);
  doc.at("scenarios").push(bench::scenario_row("emi_scan_zoom", wall_scan_zoom));
  const double zoom_delta = spec::max_detector_delta_db(phase_ref, phase_zoom);
  doc.set("scan_speedup_zoom",
          bench::Json::number(wall_scan_zoom > 0.0 ? wall_scan_ref / wall_scan_zoom : 0.0));
  doc.set("scan_zoom_max_delta_db", bench::Json::number(zoom_delta));
  std::printf("scan demodulation: reference %.1f ms, zoom %.1f ms (%.1fx), max detector "
              "delta %.5f dB\n",
              wall_scan_ref * 1e3, wall_scan_zoom * 1e3,
              wall_scan_zoom > 0.0 ? wall_scan_ref / wall_scan_zoom : 0.0, zoom_delta);
  double qp_top = -300.0;
  for (double v : scan_ref.quasi_peak_dbuv) qp_top = std::max(qp_top, v);
  double max_qp_err = 0.0;
  for (std::size_t k = 0; k < scan_ref.size(); ++k) {
    if (scan_ref.quasi_peak_dbuv[k] < qp_top - 60.0) continue;  // scan noise floor
    max_qp_err = std::max(max_qp_err,
                          std::abs(scan_mod.quasi_peak_dbuv[k] - scan_ref.quasi_peak_dbuv[k]));
  }
  doc.set("emi_scan_max_qp_err_db", bench::Json::number(max_qp_err));
  std::printf("EMI scan (%zu points): max quasi-peak error %.2f dB (within 60 dB of top)\n",
              scan_ref.size(), max_qp_err);

  sig::write_spectrum_csv("bench_out/bench_emc_scan.csv",
                          {"ref_peak_dbuv", "ref_qp_dbuv", "ref_avg_dbuv", "model_qp_dbuv"},
                          scan_ref.freq,
                          {scan_ref.peak_dbuv, scan_ref.quasi_peak_dbuv,
                           scan_ref.average_dbuv, scan_mod.quasi_peak_dbuv});

  if (doc.write_file("BENCH_emc.json"))
    std::printf("wrote BENCH_emc.json and bench_out/bench_emc_scan.csv\n");

  const bool base_ok = bench::check_baseline_gate(doc, bargs);

  // Gate on the macromodel reproducing the strong harmonics (the paper's
  // models track the reference to a few percent in the time domain, which
  // must hold up as a few dB where the emission energy actually is) and on
  // the zoom demodulation agreeing with the reference path on a real
  // emission waveform.
  return max_abs_err_strong < 6.0 && zoom_delta < 0.01 && base_ok ? 0 : 1;
}
