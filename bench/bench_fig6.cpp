// Figure 6 reproduction: MD4 receiver at the end of a 10 cm lossy line
// driven through 50 ohm by a 3 ns pulse with 100 ps edges; amplitudes
// 1.9 / 3.3 / 3.6 V walk the port from the linear region into clamping.
// Pin voltage for reference / parametric / C-R models.
#include <cstdio>

#include "core/validation.hpp"
#include "experiments.hpp"
#include "signal/csv.hpp"

int main() {
  using namespace emc;
  std::printf("=== Figure 6: MD4 on a 10 cm lossy line, increasing amplitude ===\n");
  std::printf("estimating MD4 parametric and C-R models...\n");
  const auto panels = exp::run_fig6();

  std::printf("\n%-22s %-10s %10s %10s %12s\n", "panel", "model", "rms [V]", "max [V]",
              "timing [ps]");
  int idx = 0;
  for (const auto& p : panels) {
    const char tag = static_cast<char>('a' + idx++);
    sig::write_csv("bench_out/fig6" + std::string(1, tag) + ".csv",
                   {"reference", "parametric", "cr"},
                   {p.v_reference, p.v_parametric, p.v_cr});
    const double threshold = p.amplitude / 2.0;
    const auto rep_par = core::validate_waveform("parametric", p.v_reference,
                                                 p.v_parametric, threshold, 0.2e-9);
    const auto rep_cr =
        core::validate_waveform("C-R", p.v_reference, p.v_cr, threshold, 0.2e-9);
    char label[32];
    std::snprintf(label, sizeof label, "(%c) amplitude %.1f V", tag, p.amplitude);
    for (const auto& r : {rep_par, rep_cr})
      std::printf("%-22s %-10s %10.4f %10.4f %12.2f\n", label, r.label.c_str(),
                  r.rms_error, r.max_error, r.timing_error ? *r.timing_error * 1e12 : -1.0);
  }

  std::printf("\npeak pin voltages (clamping visible above VDD = 1.8 V):\n");
  for (const auto& p : panels)
    std::printf("  amp %.1f V: ref %.3f V, parametric %.3f V, C-R %.3f V\n", p.amplitude,
                p.v_reference.max_value(), p.v_parametric.max_value(), p.v_cr.max_value());
  std::printf("series written to bench_out/fig6{a,b,c}.csv\n");
  return 0;
}
