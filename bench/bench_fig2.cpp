// Figure 2 reproduction: far-end voltage of MD2 applying a 1 ns pulse
// ("010") to three ideal transmission lines with different characteristic
// impedance / delay, terminated by 1 pF. Reference vs PW-RBF.
#include <cstdio>

#include "core/validation.hpp"
#include "experiments.hpp"
#include "signal/csv.hpp"

int main() {
  using namespace emc;
  std::printf("=== Figure 2: MD2 far-end voltage, 1 ns pulse on three lines ===\n");
  std::printf("estimating MD2 PW-RBF model...\n");
  const auto panels = exp::run_fig2();

  std::printf("\n%-26s %10s %10s %12s\n", "line", "rms [V]", "max [V]", "timing [ps]");
  int idx = 0;
  for (const auto& p : panels) {
    const char tag = static_cast<char>('a' + idx++);
    sig::write_csv("bench_out/fig2" + std::string(1, tag) + ".csv", {"reference", "pwrbf"},
                   {p.reference, p.pwrbf});
    char label[64];
    std::snprintf(label, sizeof label, "(%c) Z0=%.0f ohm Td=%.0f ps", tag, p.z0,
                  p.td * 1e12);
    const auto rep = core::validate_waveform(label, p.reference, p.pwrbf, 0.9, 0.2e-9);
    std::printf("%-26s %10.4f %10.4f %12.2f\n", rep.label.c_str(), rep.rms_error,
                rep.max_error, rep.timing_error ? *rep.timing_error * 1e12 : -1.0);
  }

  std::printf("\npanel (a) samples every 0.5 ns (t[ns]  ref  pwrbf):\n");
  for (double t = 0.0; t <= 8e-9; t += 0.5e-9)
    std::printf("  %5.1f  %7.4f  %7.4f\n", t * 1e9, panels[0].reference.value_at(t),
                panels[0].pwrbf.value_at(t));
  std::printf("series written to bench_out/fig2{a,b,c}.csv\n");
  return 0;
}
