// Throughput bench of the parallel corner-sweep engine: estimate one
// PW-RBF macromodel, enumerate a corner grid over supply / PRBS pattern /
// line length / load, run the full transient -> swept-receiver ->
// compliance pipeline per corner on 1 thread and on --jobs threads, and
// verify the two SweepSummary aggregates are bit-identical (the sweep's
// determinism contract). Wall-clock speedup and the worst-margin
// statistics land in BENCH_sweep.json with the shared bench schema.
//
//   bench_sweep [--jobs N] [--smoke]
//
// Default grid: 4 supplies x 4 patterns x 2 lengths x 2 loads = 64
// corners; --smoke shrinks it to 8 corners for CI.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "baseline.hpp"
#include "emc/limits.hpp"
#include "experiments.hpp"
#include "json_out.hpp"
#include "sweep/sweep_runner.hpp"

// The summary/margin JSON emitters moved into the sweep library
// (sweep::summary_json / sweep::margin_json) so the example and RunReports
// share the schema with this bench.

int main(int argc, char** argv) {
  using namespace emc;
  using bench::seconds_since;
  using sweep::summary_json;

  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  std::size_t jobs = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_sweep [--jobs N] [--smoke]\n");
      return 2;
    }
  }
  if (jobs == 0) jobs = sweep::ThreadPool::default_workers();

  std::printf("=== bench_sweep: parallel corner sweep, macromodel -> compliance ===%s\n",
              smoke ? "  [smoke mode]" : "");

  auto doc = bench::make_bench_doc("bench_sweep");
  doc.set("smoke", bench::Json::boolean(smoke));
  doc.set("jobs", bench::Json::integer(static_cast<long>(jobs)));
  doc.set("hardware_concurrency",
          bench::Json::integer(static_cast<long>(std::thread::hardware_concurrency())));

  // One immutable macromodel, estimated once and shared (const) by every
  // sweep worker.
  std::printf("estimating MD3 PW-RBF macromodel...\n");
  const auto t_est = std::chrono::steady_clock::now();
  const auto model = exp::make_driver_model(dev::DriverTech::md3_ibm25(), "MD3");
  doc.at("scenarios").push(bench::scenario_row("estimate_model", seconds_since(t_est)));

  sweep::CornerAxes axes;
  if (smoke) {
    axes.vdd_scale = {0.95, 1.05};
    axes.pattern_seed = {1, 2};
    axes.line_length = {0.1};
    axes.load_c = {1e-12, 2e-12};
  } else {
    axes.vdd_scale = {0.90, 0.95, 1.00, 1.05};
    axes.pattern_seed = {1, 2, 3, 4};
    axes.line_length = {0.05, 0.1};
    axes.load_c = {1e-12, 2e-12};
  }
  axes.detector = {sweep::Detector::kQuasiPeak};
  axes.rbw = {20e6};
  axes.pattern_bits = 15;
  const sweep::CornerGrid grid(axes);

  sweep::EmissionSweepConfig cfg;
  cfg.model = &model;
  cfg.line = exp::mcm_fig3_params();
  cfg.bit_time = 1e-9;
  cfg.periods = smoke ? 3 : 4;
  cfg.rx.name = "wideband scan";
  cfg.rx.f_start = 50e6;
  cfg.rx.f_stop = 5e9;
  cfg.rx.n_points = smoke ? 20 : 40;
  cfg.rx.tau_charge = 1e-9;
  cfg.rx.tau_discharge = 30e-9;
  cfg.mask = {"board-level conducted-style mask", {{50e6, 140.0}, {5e9, 90.0}}};
  const auto corner_fn = sweep::make_emission_corner_fn(cfg);

  std::printf("grid: %zu corners (%zu bits/pattern, %d periods)\n", grid.size(),
              axes.pattern_bits, cfg.periods);

  // Serial reference first, then the parallel run; their summaries must be
  // bit-identical (the determinism contract of the engine). The chunk hint
  // keeps corners sharing one transient on one worker (record memo hits).
  const std::size_t chunk = sweep::emission_chunk_hint(grid);
  sweep::SweepRunner serial(1);
  const auto t1 = std::chrono::steady_clock::now();
  const auto out1 = serial.run(grid, corner_fn, {}, chunk);
  const double wall_1 = seconds_since(t1);
  doc.at("scenarios").push(bench::scenario_row("sweep_1_thread", wall_1));

  sweep::SweepRunner parallel(jobs);
  const auto tn = std::chrono::steady_clock::now();
  const auto outn = parallel.run(grid, corner_fn, {}, chunk);
  const double wall_n = seconds_since(tn);
  doc.at("scenarios").push(
      bench::scenario_row("sweep_" + std::to_string(jobs) + "_threads", wall_n));

  const bool identical = out1.summary == outn.summary;
  const double speedup = wall_n > 0.0 ? wall_1 / wall_n : 0.0;

  std::printf("1 thread: %.2f s   %zu threads: %.2f s   speedup %.2fx\n", wall_1, jobs,
              wall_n, speedup);
  std::printf("summaries bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  std::printf("verdict: %zu pass / %zu fail, worst margin %+.1f dB at corner %zu (%s)\n",
              outn.summary.passed, outn.summary.failed, outn.summary.worst_margin_db,
              outn.summary.worst_corner, outn.summary.worst_label.c_str());
  // The streamed corner pipeline: what a worker actually held per corner
  // (chunk staging + steady-state record) vs. the monolithic full record
  // the legacy path would have materialized.
  std::printf("record memory/corner: streamed %.1f KiB vs monolithic %.1f KiB (%.1fx)\n",
              static_cast<double>(outn.summary.peak_streamed_record_bytes) / 1024.0,
              static_cast<double>(outn.summary.peak_monolithic_record_bytes) / 1024.0,
              outn.summary.peak_streamed_record_bytes > 0
                  ? static_cast<double>(outn.summary.peak_monolithic_record_bytes) /
                        static_cast<double>(outn.summary.peak_streamed_record_bytes)
                  : 0.0);

  // Worst corner per swept axis value — the table an EMC engineer reads
  // to find which knob drives the failures.
  for (std::size_t a = 0; a < sweep::kNumAxes; ++a) {
    const auto axis = static_cast<sweep::AxisId>(a);
    if (grid.axis_size(axis) < 2) continue;
    std::printf("  %-13s", sweep::axis_name(axis));
    for (std::size_t k = 0; k < grid.axis_size(axis); ++k)
      std::printf("  %s: %+.1f dB", grid.axis_value_label(axis, k).c_str(),
                  outn.summary.axis_worst[a][k]);
    std::printf("\n");
  }

  doc.set("wall_s_1_thread", bench::Json::number(wall_1));
  doc.set("wall_s_n_threads", bench::Json::number(wall_n));
  doc.set("speedup", bench::Json::number(speedup));
  doc.set("bit_identical", bench::Json::boolean(identical));
  doc.set("mean_corner_wall_s",
          bench::Json::number(wall_1 / static_cast<double>(grid.size())));
  doc.set("summary", summary_json(grid, outn.summary));
  doc.set("workers", sweep::worker_stats_json(outn.workers));

  if (doc.write_file("BENCH_sweep.json")) std::printf("wrote BENCH_sweep.json\n");

  const bool base_ok = bench::check_baseline_gate(doc, bargs);

  // Gate on determinism, never on speedup: speedup is hardware-dependent
  // (recorded in the JSON next to hardware_concurrency).
  return identical && base_ok ? 0 : 1;
}
