// Sparse-solver bench + gate: dense vs sparse MNA on an N-conductor
// coupled-bus harness (crossover curve over problem size, waveform
// agreement, speedup at >= 200 unknowns), lane-batched corner transients
// vs the scalar sparse loop (bit-identity + structural work reduction),
// and the lane-batched emission sweep vs the scalar SweepRunner
// (SweepSummary bit-identity). Results land in BENCH_sparse.json.
//
//   bench_sparse [--smoke]
//
// Gates (nonzero exit on failure):
//   * dense/sparse max waveform delta <= 1e-9 at every size
//   * lane records bit-identical to scalar sparse runs
//   * lane-batch structural walk ratio >= 1.5 at 4 lanes
//   * sweep summaries bit-identical (scalar vs lane-batched)
//   * full mode only: sparse >= 3x faster than dense at >= 200 unknowns
//     (wall clock is recorded in smoke mode but not gated)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/lane_engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "experiments.hpp"
#include "json_out.hpp"
#include "signal/sample_sink.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace emc;
using bench::seconds_since;

/// N-conductor coupled bus: pulsed R-source drivers at the near end, a
/// lossy coupled line (nearest-neighbor L/C coupling), diode clamps and
/// load capacitors at the far end. The clamps make the circuit nonlinear,
/// so every Newton iteration refactors — the workload the sparse path's
/// cheap numeric refactor is built for.
struct BusSpec {
  int conductors = 2;
  int sections = 4;
  double length = 0.2;       ///< [m]
  double dt = 50e-12;
  double t_stop = 4e-9;
  double r_drive = 25.0;
  double load_c = 2e-12;
};

std::vector<int> build_bus(ckt::Circuit& c, const BusSpec& spec) {
  const int n = spec.conductors;
  linalg::Matrix l(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  linalg::Matrix cap(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    l(i, i) = 300e-9;
    cap(i, i) = 100e-12;
    if (i + 1 < n) {
      l(i, i + 1) = l(i + 1, i) = 60e-9;
      cap(i, i + 1) = cap(i + 1, i) = -20e-12;
    }
  }
  ckt::CoupledLineParams p;
  p.l = std::move(l);
  p.c = std::move(cap);
  p.length = spec.length;
  p.loss.rdc = 5.0;
  p.loss.rskin = 1e-3;
  p.loss.tan_delta = 0.02;

  std::vector<int> near(static_cast<std::size_t>(n)), far(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    near[static_cast<std::size_t>(k)] = c.node();
    far[static_cast<std::size_t>(k)] = c.node();
  }
  for (int k = 0; k < n; ++k) {
    const int src = c.node();
    const double t_edge = 0.5e-9 + 0.1e-9 * static_cast<double>(k);
    c.add<ckt::VSource>(src, c.ground(),
                        [t_edge](double t) { return t < t_edge ? 0.0 : 1.5; });
    c.add<ckt::Resistor>(src, near[static_cast<std::size_t>(k)], spec.r_drive);
  }
  add_coupled_lossy_line(c, near, far, p, spec.dt, spec.sections);
  for (int k = 0; k < n; ++k) {
    c.add<ckt::Diode>(c.ground(), far[static_cast<std::size_t>(k)]);
    c.add<ckt::Capacitor>(far[static_cast<std::size_t>(k)], c.ground(), spec.load_c);
  }
  return far;
}

ckt::TransientOptions bus_options(const BusSpec& spec, ckt::SolverKind solver) {
  ckt::TransientOptions opt;
  opt.dt = spec.dt;
  opt.t_stop = spec.t_stop;
  opt.solver = solver;
  return opt;
}

struct BusRun {
  std::vector<double> record;  ///< frame-major far-end voltages
  double wall_s = 0.0;
  long newton_iters = 0;
  int n_unknowns = 0;
};

BusRun run_bus(const BusSpec& spec, ckt::SolverKind solver) {
  ckt::Circuit c;
  const auto far = build_bus(c, spec);
  BusRun out;
  out.n_unknowns = c.finalize();

  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = ckt::run_transient_streamed(c, bus_options(spec, solver), ws, far, rec);
  out.wall_s = seconds_since(t0);
  out.newton_iters = stats.total_newton_iters;
  out.record = std::move(rec).take_data();
  return out;
}

double max_delta(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_sparse [--smoke]\n");
      return 2;
    }
  }

  std::printf("=== bench_sparse: sparse MNA + lane-batched corner transients ===%s\n",
              smoke ? "  [smoke mode]" : "");
  auto doc = bench::make_bench_doc("bench_sparse");
  doc.set("smoke", bench::Json::boolean(smoke));
  bool ok = true;

  // ---------------------------------------------------------------- A ----
  // Dense vs sparse crossover: the same coupled-bus transient through both
  // backends at growing size. Agreement is gated everywhere; the speedup
  // gate applies to the largest (>= 200 unknowns) harness in full mode.
  std::vector<BusSpec> sizes;
  {
    BusSpec s;
    s.conductors = 2, s.sections = 4;
    sizes.push_back(s);
    s.conductors = 4, s.sections = 6;
    sizes.push_back(s);
    s.conductors = 6, s.sections = 10;
    sizes.push_back(s);
    s.conductors = 8, s.sections = 16, s.length = 0.3;
    if (smoke) s.t_stop = 2e-9;
    sizes.push_back(s);
  }

  auto crossover = bench::Json::array();
  double big_speedup = 0.0;
  int big_n = 0;
  std::printf("%-10s %-10s %-12s %-12s %-9s %s\n", "unknowns", "iters", "dense [s]",
              "sparse [s]", "speedup", "max |dv|");
  for (const auto& spec : sizes) {
    const auto dense = run_bus(spec, ckt::SolverKind::kDense);
    const auto sparse = run_bus(spec, ckt::SolverKind::kSparse);
    const double dv = max_delta(dense.record, sparse.record);
    const double speedup = sparse.wall_s > 0.0 ? dense.wall_s / sparse.wall_s : 0.0;
    std::printf("%-10d %-10ld %-12.4f %-12.4f %-9.2f %.3g\n", dense.n_unknowns,
                dense.newton_iters, dense.wall_s, sparse.wall_s, speedup, dv);
    if (dense.newton_iters != sparse.newton_iters || dv > 1e-9) {
      std::printf("GATE FAILED: dense/sparse disagreement at n = %d "
                  "(max delta %.3g, iters %ld vs %ld)\n",
                  dense.n_unknowns, dv, dense.newton_iters, sparse.newton_iters);
      ok = false;
    }
    if (dense.n_unknowns > big_n) {
      big_n = dense.n_unknowns;
      big_speedup = speedup;
    }
    auto row = bench::Json::object();
    row.set("n_unknowns", bench::Json::integer(dense.n_unknowns));
    row.set("newton_iters", bench::Json::integer(dense.newton_iters));
    row.set("dense_wall_s", bench::Json::number(dense.wall_s));
    row.set("sparse_wall_s", bench::Json::number(sparse.wall_s));
    row.set("speedup", bench::Json::number(speedup));
    row.set("max_waveform_delta", bench::Json::number(dv));
    crossover.push(std::move(row));
    doc.at("scenarios")
        .push(bench::scenario_row("bus_n" + std::to_string(dense.n_unknowns) + "_sparse",
                                  sparse.wall_s, sparse.newton_iters));
  }
  doc.set("crossover", std::move(crossover));
  doc.set("largest_n_unknowns", bench::Json::integer(big_n));
  doc.set("largest_speedup", bench::Json::number(big_speedup));
  if (big_n < 200) {
    std::printf("GATE FAILED: largest harness has %d unknowns (< 200)\n", big_n);
    ok = false;
  }
  if (!smoke && big_speedup < 3.0) {
    std::printf("GATE FAILED: sparse speedup %.2fx < 3x at n = %d\n", big_speedup, big_n);
    ok = false;
  }

  // ---------------------------------------------------------------- B ----
  // Lane-batched corner transients: 4 load/drive corners of one mid-size
  // bus, advanced in lockstep vs looped through the scalar sparse engine.
  {
    BusSpec base;
    base.conductors = 4;
    base.sections = 8;
    if (smoke) base.t_stop = 2e-9;
    const double loads[] = {1e-12, 2e-12, 4e-12, 8e-12};
    const std::size_t L = 4;

    std::vector<ckt::Circuit> lane_c(L);
    std::vector<ckt::Circuit*> lanes;
    std::vector<sig::RecordingSink> recs(L);
    std::vector<sig::SampleSink*> sinks;
    std::vector<int> probes;
    for (std::size_t l = 0; l < L; ++l) {
      BusSpec spec = base;
      spec.load_c = loads[l];
      const auto far = build_bus(lane_c[l], spec);
      if (l == 0) probes = far;
      lanes.push_back(&lane_c[l]);
      sinks.push_back(&recs[l]);
    }

    const auto opt = bus_options(base, ckt::SolverKind::kSparse);
    ckt::LaneWorkspace lw;
    const auto t_lanes = std::chrono::steady_clock::now();
    const auto stats = ckt::run_transient_lanes(lanes, opt, lw, probes, sinks);
    const double wall_lanes = seconds_since(t_lanes);

    bool identical = true;
    double wall_scalar = 0.0;
    for (std::size_t l = 0; l < L; ++l) {
      BusSpec spec = base;
      spec.load_c = loads[l];
      ckt::Circuit ref;
      build_bus(ref, spec);
      ckt::NewtonWorkspace ws;
      sig::RecordingSink rec;
      const auto t0 = std::chrono::steady_clock::now();
      ckt::run_transient_streamed(ref, opt, ws, probes, rec);
      wall_scalar += seconds_since(t0);
      if (std::move(rec).take_data() != recs[l].data()) identical = false;
    }
    const double walk_ratio =
        stats.batched_walk_entries > 0
            ? static_cast<double>(stats.scalar_walk_entries) /
                  static_cast<double>(stats.batched_walk_entries)
            : 0.0;

    std::printf("lane batch (4 lanes): scalar %.4f s, batched %.4f s, "
                "walk ratio %.2fx, bit-identical: %s\n",
                wall_scalar, wall_lanes, walk_ratio, identical ? "yes" : "NO");
    if (!identical) {
      std::printf("GATE FAILED: lane records differ from scalar sparse runs\n");
      ok = false;
    }
    // Single-core container: the honest throughput gate is the structural
    // work reduction (one pattern walk serves 4 lanes); wall time also
    // carries the unbatchable device evaluations and is recorded only.
    if (walk_ratio < 1.5) {
      std::printf("GATE FAILED: lane-batch walk ratio %.2fx < 1.5x\n", walk_ratio);
      ok = false;
    }
    auto lane_doc = bench::Json::object();
    lane_doc.set("lanes", bench::Json::integer(static_cast<long>(L)));
    lane_doc.set("bit_identical", bench::Json::boolean(identical));
    lane_doc.set("walk_ratio", bench::Json::number(walk_ratio));
    lane_doc.set("batched_walk_entries",
                 bench::Json::integer(static_cast<long>(stats.batched_walk_entries)));
    lane_doc.set("scalar_walk_entries",
                 bench::Json::integer(static_cast<long>(stats.scalar_walk_entries)));
    lane_doc.set("wall_s_scalar", bench::Json::number(wall_scalar));
    lane_doc.set("wall_s_batched", bench::Json::number(wall_lanes));
    doc.set("lane_batch", std::move(lane_doc));
    doc.at("scenarios").push(bench::scenario_row("lane_batch_4", wall_lanes));
  }

  // ---------------------------------------------------------------- C ----
  // Lane-batched emission sweep vs the scalar SweepRunner on a small grid:
  // the SweepSummary aggregates must be bit-identical (both sides on the
  // sparse backend, which is what the lane engine reproduces per lane).
  {
    std::printf("estimating MD3 PW-RBF macromodel...\n");
    const auto t_est = std::chrono::steady_clock::now();
    const auto model = exp::make_driver_model(dev::DriverTech::md3_ibm25(), "MD3");
    doc.at("scenarios").push(bench::scenario_row("estimate_model", seconds_since(t_est)));

    sweep::CornerAxes axes;
    axes.vdd_scale = {0.95, 1.05};
    axes.pattern_seed = {1};
    axes.line_length = {0.1};
    axes.load_c = {1e-12, 2e-12};
    axes.detector = {sweep::Detector::kQuasiPeak};
    axes.rbw = {20e6};
    axes.pattern_bits = smoke ? 7 : 15;
    const sweep::CornerGrid grid(axes);

    sweep::EmissionSweepConfig cfg;
    cfg.model = &model;
    cfg.line = exp::mcm_fig3_params();
    cfg.bit_time = 1e-9;
    cfg.periods = 3;
    cfg.rx.name = "wideband scan";
    cfg.rx.f_start = 50e6;
    cfg.rx.f_stop = 5e9;
    cfg.rx.n_points = 20;
    cfg.rx.tau_charge = 1e-9;
    cfg.rx.tau_discharge = 30e-9;
    cfg.mask = {"board-level conducted-style mask", {{50e6, 140.0}, {5e9, 90.0}}};
    cfg.solver = ckt::SolverKind::kSparse;

    sweep::SweepRunner serial(1);
    const auto fn = sweep::make_emission_corner_fn(cfg);
    const auto t_scalar = std::chrono::steady_clock::now();
    const auto scalar = serial.run(grid, fn, {}, sweep::emission_chunk_hint(grid));
    const double wall_scalar = seconds_since(t_scalar);

    sweep::LaneSweepInfo info;
    const auto t_lanes = std::chrono::steady_clock::now();
    const auto lanes = sweep::run_emission_sweep_lanes(cfg, grid, 4, {}, &info);
    const double wall_lanes = seconds_since(t_lanes);

    const bool identical = scalar.summary == lanes.summary;
    std::printf("sweep (%zu corners, %zu transients in %zu batches): scalar %.2f s, "
                "lane-batched %.2f s, summaries bit-identical: %s\n",
                grid.size(), info.transients, info.batches, wall_scalar, wall_lanes,
                identical ? "yes" : "NO");
    if (!identical) {
      std::printf("GATE FAILED: lane-batched sweep summary differs from scalar\n");
      ok = false;
    }
    auto sweep_doc = bench::Json::object();
    sweep_doc.set("corners", bench::Json::integer(static_cast<long>(grid.size())));
    sweep_doc.set("transients", bench::Json::integer(static_cast<long>(info.transients)));
    sweep_doc.set("batches", bench::Json::integer(static_cast<long>(info.batches)));
    sweep_doc.set("bit_identical", bench::Json::boolean(identical));
    sweep_doc.set("wall_s_scalar", bench::Json::number(wall_scalar));
    sweep_doc.set("wall_s_lane_batched", bench::Json::number(wall_lanes));
    doc.set("sweep_equivalence", std::move(sweep_doc));
    doc.at("scenarios").push(bench::scenario_row("sweep_lane_batched", wall_lanes));
  }

  doc.set("gates_passed", bench::Json::boolean(ok));
  if (doc.write_file("BENCH_sparse.json")) std::printf("wrote BENCH_sparse.json\n");
  ok = bench::check_baseline_gate(doc, bargs) && ok;
  std::printf(ok ? "all gates passed\n" : "GATES FAILED\n");
  return ok ? 0 : 1;
}
