// Observability-layer bench + gate: prove the emc::obs instrumentation is
// free where it must be free and truthful where it must be truthful.
//
//   bench_obs [--smoke]
//
// Gates (nonzero exit on failure):
//   * bit-identity: a ~200-unknown nonlinear bus transient produces
//     bit-identical records with metrics enabled, metrics disabled, and a
//     tracer installed — instrumentation never perturbs the numerics
//   * overhead: metrics enabled + spans compiled in but no tracer
//     installed costs < 2% wall time vs the kill-switched run
//     (min-of-N interleaved reps, re-measured on a noisy container)
//   * traced sweep: a multi-worker corner sweep under an installed Tracer
//     exports a Chrome trace that parses as valid JSON, carries spans from
//     >= 2 worker threads, nests sweep -> corner -> transient ->
//     newton_step, and keeps every child interval inside its parent
//
// Artifacts: BENCH_obs.json (bench schema), REPORT_obs.json (RunReport),
// obs_sweep.trace.json (Chrome trace, open in Perfetto).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "circuit/devices_linear.hpp"
#include "circuit/devices_nonlinear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"
#include "baseline.hpp"
#include "emc/limits.hpp"
#include "json_out.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "signal/sample_sink.hpp"
#include "sweep/corner_grid.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace emc;
using bench::seconds_since;

// ----------------------------------------------------------- bus transient
// Same nonlinear coupled-bus harness bench_sparse gates the solvers on:
// pulsed drivers, a lossy 8-conductor line, diode clamps. Every Newton
// iteration restamps and refactors, so the per-step / per-factor span and
// counter sites all run hot.
struct BusSpec {
  int conductors = 8;
  int sections = 16;
  double length = 0.3;
  double dt = 50e-12;
  double t_stop = 4e-9;
};

std::vector<int> build_bus(ckt::Circuit& c, const BusSpec& spec) {
  const int n = spec.conductors;
  linalg::Matrix l(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  linalg::Matrix cap(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    l(i, i) = 300e-9;
    cap(i, i) = 100e-12;
    if (i + 1 < n) {
      l(i, i + 1) = l(i + 1, i) = 60e-9;
      cap(i, i + 1) = cap(i + 1, i) = -20e-12;
    }
  }
  ckt::CoupledLineParams p;
  p.l = std::move(l);
  p.c = std::move(cap);
  p.length = spec.length;
  p.loss.rdc = 5.0;
  p.loss.rskin = 1e-3;
  p.loss.tan_delta = 0.02;

  std::vector<int> near(static_cast<std::size_t>(n)), far(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    near[static_cast<std::size_t>(k)] = c.node();
    far[static_cast<std::size_t>(k)] = c.node();
  }
  for (int k = 0; k < n; ++k) {
    const int src = c.node();
    const double t_edge = 0.5e-9 + 0.1e-9 * static_cast<double>(k);
    c.add<ckt::VSource>(src, c.ground(),
                        [t_edge](double t) { return t < t_edge ? 0.0 : 1.5; });
    c.add<ckt::Resistor>(src, near[static_cast<std::size_t>(k)], 25.0);
  }
  add_coupled_lossy_line(c, near, far, p, spec.dt, spec.sections);
  for (int k = 0; k < n; ++k) {
    c.add<ckt::Diode>(c.ground(), far[static_cast<std::size_t>(k)]);
    c.add<ckt::Capacitor>(far[static_cast<std::size_t>(k)], c.ground(), 2e-12);
  }
  return far;
}

struct BusRun {
  std::vector<double> record;
  double wall_s = 0.0;
  int n_unknowns = 0;
};

BusRun run_bus(const BusSpec& spec) {
  ckt::Circuit c;
  const auto far = build_bus(c, spec);
  BusRun out;
  out.n_unknowns = c.finalize();
  ckt::TransientOptions opt;
  opt.dt = spec.dt;
  opt.t_stop = spec.t_stop;
  opt.solver = ckt::SolverKind::kSparse;
  ckt::NewtonWorkspace ws;
  sig::RecordingSink rec;
  const auto t0 = std::chrono::steady_clock::now();
  ckt::run_transient_streamed(c, opt, ws, far, rec);
  out.wall_s = seconds_since(t0);
  out.record = std::move(rec).take_data();
  return out;
}

// -------------------------------------------------------------- RC sweep
// Cheap corner pipeline (no macromodel estimation) whose transients still
// drive the dc/transient/newton_step span sites — enough structure for the
// trace-nesting gate without bench-scale wall time.
spec::ComplianceReport rc_corner(const sweep::Scenario& sc, sweep::Workspace& ws) {
  ckt::Circuit c;
  const int in = c.node();
  const int out = c.node();
  c.add<ckt::VSource>(in, c.ground(), 1.0 * sc.vdd_scale);
  c.add<ckt::Resistor>(in, out, 1e3 * (1.0 + sc.line_length));
  c.add<ckt::Capacitor>(out, c.ground(), sc.load_c);

  ckt::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 400e-9;
  const auto res = ckt::run_transient(c, opt, ws.newton);
  const auto v = res.waveform(out);

  spec::LimitMask mask{"v-final", {{1e5, 1.0}, {1e7, 1.0}}};
  const double freq[] = {1e6};
  const double level[] = {v[v.size() - 1]};
  return spec::check_compliance(freq, level, mask, sc.label());
}

// --------------------------------------------------- trace-shape checker
struct TraceCheck {
  bool valid_json = false;
  bool nesting_ok = false;
  std::size_t tids = 0;
  std::size_t events = 0;
  std::set<std::string> names;
  std::string error;
};

TraceCheck check_chrome_trace(const std::string& text) {
  TraceCheck out;
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const obs::JsonParseError& e) {
    out.error = e.what();
    return out;
  }
  out.valid_json = true;

  const obs::Json* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    out.error = "no traceEvents array";
    return out;
  }
  out.events = events->size();

  // Per-tid event streams, kept in file order (the exporter sorts by
  // (tid, start, -duration), so a parent precedes its children).
  struct Ev {
    double ts, dur;
    long depth;
    std::string name;
  };
  std::map<long, std::vector<Ev>> by_tid;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const obs::Json& e = (*events)[i];
    if (e.at("ph").as_string() != "X") {
      out.error = "unexpected phase";
      return out;
    }
    Ev ev{e.at("ts").as_double(), e.at("dur").as_double(),
          e.at("args").at("depth").as_integer(), e.at("name").as_string()};
    out.names.insert(ev.name);
    by_tid[e.at("tid").as_integer()].push_back(ev);
  }
  out.tids = by_tid.size();

  // Stack containment per thread: an event at depth d must lie inside the
  // most recent still-open event at depth d-1.
  out.nesting_ok = true;
  for (const auto& [tid, evs] : by_tid) {
    std::vector<Ev> stack;
    for (const Ev& e : evs) {
      while (!stack.empty() &&
             static_cast<long>(stack.size()) > e.depth)
        stack.pop_back();
      if (static_cast<long>(stack.size()) != e.depth) {
        out.nesting_ok = false;
        out.error = "depth jump without parent (tid " + std::to_string(tid) + ")";
        return out;
      }
      if (!stack.empty()) {
        const Ev& p = stack.back();
        const double eps = 1e-3;  // exporter rounds ns to µs
        if (e.ts + eps < p.ts || e.ts + e.dur > p.ts + p.dur + eps) {
          out.nesting_ok = false;
          out.error = "child escapes parent interval (tid " + std::to_string(tid) + ")";
          return out;
        }
      }
      stack.push_back(e);
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_obs [--smoke]\n");
      return 2;
    }
  }

  std::printf("=== bench_obs: observability bit-identity / overhead / trace ===%s\n",
              smoke ? "  [smoke mode]" : "");
  auto doc = bench::make_bench_doc("bench_obs");
  doc.set("smoke", bench::Json::boolean(smoke));
  bool ok = true;

  BusSpec spec;
  if (smoke) spec.t_stop = 2e-9;

  // ---------------------------------------------------------------- A ----
  // Bit-identity: metrics on (default), kill-switched, and fully traced
  // runs of the same transient must agree to the last bit.
  obs::registry().set_enabled(true);
  const auto t_ident = std::chrono::steady_clock::now();
  const BusRun enabled = run_bus(spec);

  obs::registry().set_enabled(false);
  const BusRun disabled = run_bus(spec);

  obs::registry().set_enabled(true);
  obs::Tracer ident_tracer;
  ident_tracer.install();
  const BusRun traced = run_bus(spec);
  ident_tracer.uninstall();

  const bool identical =
      enabled.record == disabled.record && enabled.record == traced.record;
  ok &= identical;
  std::printf("[A] bit-identity (%d unknowns, %zu samples): %s\n", enabled.n_unknowns,
              enabled.record.size(), identical ? "identical" : "DIFFERENT");
  doc.at("scenarios").push(
      bench::scenario_row("bit_identity", seconds_since(t_ident)));
  doc.set("n_unknowns", bench::Json::integer(enabled.n_unknowns));
  doc.set("bit_identical", bench::Json::boolean(identical));

  // ---------------------------------------------------------------- B ----
  // Overhead of enabled-but-untraced instrumentation vs the kill switch:
  // interleaved reps, min-of-N per arm (min is the noise-robust statistic
  // for a quiet machine), re-measured with more reps if a noisy first
  // attempt exceeds the gate.
  double overhead = 0.0;
  bool overhead_ok = false;
  const int base_reps = smoke ? 3 : 5;
  const auto t_ovh = std::chrono::steady_clock::now();
  for (int attempt = 0; attempt < 3 && !overhead_ok; ++attempt) {
    double min_en = 1e300, min_dis = 1e300;
    const int reps = base_reps * (attempt + 1);
    for (int r = 0; r < reps; ++r) {
      obs::registry().set_enabled(true);
      min_en = std::min(min_en, run_bus(spec).wall_s);
      obs::registry().set_enabled(false);
      min_dis = std::min(min_dis, run_bus(spec).wall_s);
    }
    overhead = min_dis > 0.0 ? (min_en - min_dis) / min_dis : 0.0;
    overhead_ok = overhead < 0.02;
    std::printf("[B] attempt %d: enabled %.4fs  disabled %.4fs  overhead %+.2f%%\n",
                attempt + 1, min_en, min_dis, 100.0 * overhead);
  }
  obs::registry().set_enabled(true);
  ok &= overhead_ok;
  std::printf("[B] instrumentation overhead (tracing off): %+.2f%% (< 2%% required) %s\n",
              100.0 * overhead, overhead_ok ? "ok" : "FAILED");
  doc.at("scenarios").push(bench::scenario_row("overhead", seconds_since(t_ovh)));
  doc.set("overhead_fraction", bench::Json::number(overhead));
  doc.set("overhead_ok", bench::Json::boolean(overhead_ok));

  // ---------------------------------------------------------------- C ----
  // Traced multi-worker sweep -> Chrome trace -> parse back and verify.
  // On a loaded single-core CI the helper worker can lose every cursor
  // race; retry until both threads recorded spans.
  sweep::CornerAxes axes;
  axes.vdd_scale = {0.8, 0.9, 1.0, 1.1};
  axes.line_length = {0.0, 0.5, 1.0};
  axes.load_c = {50e-12, 100e-12};
  const sweep::CornerGrid grid(axes);

  TraceCheck check;
  sweep::SweepOutcome sweep_out;
  obs::MetricsSnapshot sweep_metrics;
  obs::Profile profile;
  std::size_t sweep_threads = 0, sweep_dropped = 0, trace_events = 0;
  const auto t_sweep = std::chrono::steady_clock::now();
  const int max_tries = 10;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    obs::registry().reset();
    // Ring sized for the whole traced sweep: the zero-drop gate below
    // requires that no event was overwritten, so the profile is complete.
    obs::Tracer tracer(1 << 18);
    tracer.install();
    {
      obs::Span root("bench_obs");
      sweep::SweepRunner runner(2);
      sweep_out = runner.run(grid, rc_corner, {}, /*chunk=*/1);
    }
    tracer.uninstall();
    sweep_metrics = obs::registry().snapshot();
    sweep_threads = tracer.threads();
    sweep_dropped = tracer.dropped();
    trace_events = tracer.events().size();
    profile = obs::Profile::build(tracer);

    if (!tracer.write_chrome_trace("obs_sweep.trace.json")) break;
    check = check_chrome_trace(read_file("obs_sweep.trace.json"));
    if (check.valid_json && check.nesting_ok && check.tids >= 2) break;
    std::printf("[C] attempt %d: tids=%zu (%s) — retrying\n", attempt + 1, check.tids,
                check.error.empty() ? "need both workers traced" : check.error.c_str());
  }

  const bool spans_present = check.names.count("sweep") && check.names.count("corner") &&
                             check.names.count("transient") &&
                             check.names.count("newton_step");
  const bool trace_ok =
      check.valid_json && check.nesting_ok && check.tids >= 2 && spans_present;
  ok &= trace_ok;
  std::printf(
      "[C] traced sweep: %zu events, %zu threads, %zu dropped; json %s, nesting %s, "
      "spans %s %s\n",
      check.events, check.tids, sweep_dropped, check.valid_json ? "valid" : "INVALID",
      check.nesting_ok ? "ok" : "BROKEN", spans_present ? "complete" : "MISSING",
      trace_ok ? "" : (" [" + check.error + "]").c_str());
  doc.at("scenarios").push(bench::scenario_row("traced_sweep", seconds_since(t_sweep)));
  doc.set("trace_events", bench::Json::integer(static_cast<long>(check.events)));
  doc.set("trace_threads", bench::Json::integer(static_cast<long>(check.tids)));
  doc.set("trace_dropped", bench::Json::integer(static_cast<long>(sweep_dropped)));
  doc.set("trace_ok", bench::Json::boolean(trace_ok));

  // ---------------------------------------------------------------- D ----
  // Drop-free tracing: the sized-up ring must have retained every event of
  // the sweep (dropped == 0), and the profile built from it must not be
  // flagged truncated — the hard-warning contract for regression gates.
  const bool drops_ok = sweep_dropped == 0 && !profile.truncated() &&
                        profile.events() == trace_events &&
                        profile.spans().count("newton_step") > 0;
  ok &= drops_ok;
  std::printf("[D] drop-free profile: %zu events, dropped %zu, truncated %s: %s\n",
              profile.events(), sweep_dropped, profile.truncated() ? "yes" : "no",
              drops_ok ? "ok" : "FAILED");
  doc.set("profile_truncated", bench::Json::boolean(profile.truncated()));
  doc.set("drops_ok", bench::Json::boolean(drops_ok));

  // ------------------------------------------------------------ report ----
  // The structured run report of the traced sweep: what ran, how hard the
  // solver worked, how the pool spent its time, what the scan decided.
  obs::RunReport report("bench_obs");
  ckt::SolveStats agg;
  std::size_t reused = 0;
  bool first_solve = true;
  for (const auto& r : sweep_out.results) {
    if (r.transient_reused) {
      ++reused;
      continue;
    }
    if (first_solve) {
      agg = r.solve;
      first_solve = false;
    } else {
      agg.merge(r.solve);
    }
  }
  report.set("solver", "kind",
             std::string(agg.used_sparse == 1   ? "sparse"
                         : agg.used_sparse == 0 ? "dense"
                                                : "mixed"));
  report.set("solver", "newton_iters", agg.total_newton_iters);
  report.set("solver", "dc_newton_iters", agg.dc_newton_iters);
  report.set("solver", "restamps", agg.restamps);
  report.set("solver", "steps", agg.steps);
  report.set("sweep", "summary", sweep::summary_json(grid, sweep_out.summary));
  report.set("sweep", "transients_reused", static_cast<long>(reused));
  report.set("workers", "pool", sweep::worker_stats_json(sweep_out.workers));
  report.add_metrics(sweep_metrics);
  report.set("trace", "threads", static_cast<long>(sweep_threads));
  report.set("trace", "events", static_cast<long>(trace_events));
  report.set("trace", "dropped_events", static_cast<long>(sweep_dropped));
  report.set("trace", "file", std::string("obs_sweep.trace.json"));
  report.add_profile(profile);
  if (report.write("REPORT_obs.json")) std::printf("wrote REPORT_obs.json\n");

  doc.set("gates_passed", bench::Json::boolean(ok));
  if (doc.write_file("BENCH_obs.json")) std::printf("wrote BENCH_obs.json\n");
  ok = bench::check_baseline_gate(doc, bargs) && ok;
  std::printf("bench_obs: %s\n", ok ? "all gates passed" : "GATE FAILURE");
  return ok ? 0 : 1;
}
