// Table 1 reproduction: CPU time of simulating the Fig. 3 coupled
// structure with transistor-level drivers vs PW-RBF macromodels (plus the
// model's stand-alone discrete-time fast path as an extra row). The paper
// reports > 20x speedup from macromodels; the exact magnitude depends on
// how detailed the transistor netlist is — see EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "experiments.hpp"

namespace {

// Estimated once; estimation cost is reported as its own benchmark.
const emc::core::PwRbfDriverModel& md3_model() {
  static const auto model =
      emc::exp::make_driver_model(emc::dev::DriverTech::md3_ibm25(), "MD3");
  return model;
}

void BM_Tab1_TransistorLevel(benchmark::State& state) {
  for (auto _ : state) {
    auto curves = emc::exp::run_fig4(false, 15e-9);
    benchmark::DoNotOptimize(curves.v21_reference);
  }
}

void BM_Tab1_PwRbfMacromodel(benchmark::State& state) {
  (void)md3_model();  // exclude estimation from the timed region
  for (auto _ : state) {
    auto curves = emc::exp::run_fig4(true, 15e-9);
    benchmark::DoNotOptimize(curves.v21_pwrbf);
  }
}

void BM_Tab1_ModelEstimationCost(benchmark::State& state) {
  // The paper: "some ten seconds on a Pentium-II @ 350 MHz".
  for (auto _ : state) {
    auto model =
        emc::exp::make_driver_model(emc::dev::DriverTech::md3_ibm25(), "MD3-est");
    benchmark::DoNotOptimize(model);
  }
}

void BM_Tab1_StandaloneDiscreteTime(benchmark::State& state) {
  // The macromodel outside the MNA solver (Thevenin load fast path):
  // this is the regime where behavioral models shine the most.
  const auto& model = md3_model();
  for (auto _ : state) {
    auto v = emc::core::simulate_driver_on_thevenin(
        model, "011011101010000", 1e-9, [](double) { return 0.0; }, 50.0, 15e-9);
    benchmark::DoNotOptimize(v);
  }
}

}  // namespace

BENCHMARK(BM_Tab1_TransistorLevel)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Tab1_PwRbfMacromodel)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Tab1_ModelEstimationCost)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Tab1_StandaloneDiscreteTime)->Unit(benchmark::kMillisecond)->Iterations(3);

BENCHMARK_MAIN();
