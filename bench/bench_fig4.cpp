// Figures 3+4 reproduction: two MD3 drivers on the 0.1 m lossy coupled
// on-MCM interconnect (Fig. 3 structure). The active land sends
// "011011101010000" (1 ns bits), the quiet land stays Low. Far-end
// voltages v21 (active) and v22 (quiet, far-end crosstalk) are compared
// between the transistor-level reference and the PW-RBF macromodels.
#include <cstdio>

#include "core/validation.hpp"
#include "experiments.hpp"
#include "signal/csv.hpp"

int main() {
  using namespace emc;
  std::printf("=== Figure 4: far-end voltages on the Fig. 3 coupled structure ===\n");
  std::printf("estimating MD3 PW-RBF model and running both simulations...\n");
  const auto curves = exp::run_fig4_both();

  sig::write_csv("bench_out/fig4.csv",
                 {"v21_reference", "v21_pwrbf", "v22_reference", "v22_pwrbf"},
                 {curves.v21_reference, curves.v21_pwrbf, curves.v22_reference,
                  curves.v22_pwrbf});

  const auto rep_active = core::validate_waveform(
      "v21 (active land)", curves.v21_reference, curves.v21_pwrbf, 1.25, 0.2e-9);
  // The quiet-land crosstalk never crosses mid-supply; validate on RMS and
  // peak tracking instead of threshold timing.
  const auto rep_quiet = core::validate_waveform(
      "v22 (quiet land) ", curves.v22_reference, curves.v22_pwrbf, 1e9);

  std::printf("\n%-18s %10s %10s %12s\n", "signal", "rms [V]", "max [V]", "timing [ps]");
  std::printf("%-18s %10.4f %10.4f %12.2f\n", rep_active.label.c_str(),
              rep_active.rms_error, rep_active.max_error,
              rep_active.timing_error ? *rep_active.timing_error * 1e12 : -1.0);
  std::printf("%-18s %10.4f %10.4f %12s\n", rep_quiet.label.c_str(), rep_quiet.rms_error,
              rep_quiet.max_error, "n/a");

  std::printf("\ncrosstalk peaks: reference %.1f mV / %.1f mV, pwrbf %.1f mV / %.1f mV\n",
              curves.v22_reference.max_value() * 1e3, curves.v22_reference.min_value() * 1e3,
              curves.v22_pwrbf.max_value() * 1e3, curves.v22_pwrbf.min_value() * 1e3);

  std::printf("\nactive-land samples every 2 ns (t[ns]  ref  pwrbf):\n");
  for (double t = 0.0; t <= 30e-9; t += 2e-9)
    std::printf("  %5.1f  %7.4f  %7.4f\n", t * 1e9, curves.v21_reference.value_at(t),
                curves.v21_pwrbf.value_at(t));
  std::printf("series written to bench_out/fig4.csv\n");
  return 0;
}
