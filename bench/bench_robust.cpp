// Robustness gates of the fault-tolerant sweep execution layer, run as a
// bench so CI exercises the full resilience surface on the real emission
// pipeline (estimated MD3 macromodel, coupled lossy line, swept receiver):
//
//   A  fault-tolerant sweep — deterministic faults injected at five
//      distinct sites (DC solve, factorization, transient stepping, sink
//      write, deadline) across a 24-corner grid; the sweep must complete,
//      record every casualty, recover the recoverable groups through the
//      escalation ladder, and produce byte-identical summaries and
//      per-corner records for any worker count.
//   B  zero-fault overhead — with no faults armed, the retry-enabled
//      sweep must be byte-identical to the retry-disabled (pre-robustness)
//      path: resilience must cost nothing when nothing fails.
//   C  checkpoint/resume — a journaled sweep aborted mid-run and resumed
//      in a fresh runner must merge to reports byte-identical to an
//      uninterrupted single-process run.
//   D  lane demotion — a fault firing only in the lane-batched path must
//      demote that lane to a scalar retry while the batched sweep's
//      summary stays byte-identical to the scalar sparse sweep.
//
//   bench_robust [--jobs N] [--smoke]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baseline.hpp"
#include "experiments.hpp"
#include "json_out.hpp"
#include "robust/fault.hpp"
#include "robust/journal.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace emc;

/// Deterministic byte spelling of a finished sweep: the summary plus every
/// schedule-independent per-corner record, one string to compare runs by.
std::string sweep_bytes(const sweep::CornerGrid& grid, const sweep::SweepOutcome& out) {
  std::string s = sweep::summary_json(grid, out.summary).dump(2);
  for (const auto& r : out.results) s += sweep::corner_result_json(r).dump(2);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::seconds_since;

  const auto bargs = bench::extract_baseline_args(argc, argv);
  bool smoke = false;
  std::size_t jobs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_robust [--jobs N] [--smoke]\n");
      return 2;
    }
  }
  if (jobs == 0) jobs = sweep::ThreadPool::default_workers();

  std::printf("=== bench_robust: fault-tolerant sweep execution gates ===%s\n",
              smoke ? "  [smoke mode]" : "");

  auto doc = bench::make_bench_doc("bench_robust");
  doc.set("smoke", bench::Json::boolean(smoke));
  doc.set("jobs", bench::Json::integer(static_cast<long>(jobs)));
  doc.set("hardware_concurrency",
          bench::Json::integer(static_cast<long>(std::thread::hardware_concurrency())));

  std::printf("estimating MD3 PW-RBF macromodel...\n");
  const auto t_est = std::chrono::steady_clock::now();
  const auto model = exp::make_driver_model(dev::DriverTech::md3_ibm25(), "MD3");
  doc.at("scenarios").push(bench::scenario_row("estimate_model", seconds_since(t_est)));

  // 24-corner grid (smoke and full): 6 transient groups of 4 corners each
  // (vdd x rbw are post-processing axes sharing one transient). Full mode
  // only deepens the per-corner work, not the gate structure.
  sweep::CornerAxes axes;
  axes.vdd_scale = {0.95, 1.05};
  axes.pattern_seed = {1, 2, 3};
  axes.line_length = {0.1};
  axes.load_c = {1e-12, 2e-12};
  axes.rbw = {20e6, 40e6};
  axes.detector = {sweep::Detector::kQuasiPeak};
  axes.pattern_bits = 15;
  const sweep::CornerGrid grid(axes);
  const std::size_t chunk = sweep::emission_chunk_hint(grid);
  const std::size_t group = chunk;  // corners per transient group

  sweep::EmissionSweepConfig cfg;
  cfg.model = &model;
  cfg.line = exp::mcm_fig3_params();
  cfg.bit_time = 1e-9;
  cfg.periods = smoke ? 3 : 4;
  cfg.rx.name = "wideband scan";
  cfg.rx.f_start = 50e6;
  cfg.rx.f_stop = 5e9;
  cfg.rx.n_points = smoke ? 20 : 40;
  cfg.rx.tau_charge = 1e-9;
  cfg.rx.tau_discharge = 30e-9;
  cfg.mask = {"board-level conducted-style mask", {{50e6, 140.0}, {5e9, 90.0}}};

  std::printf("grid: %zu corners, %zu transient groups of %zu\n", grid.size(),
              grid.size() / group, group);

  sweep::RunOptions ropt;
  ropt.chunk = chunk;

  // ---------------------------------------------------------------- gate A
  // Five fault sites, each keyed to a different transient group's identity
  // so firing is a pure function of the corner, never of scheduling. Two
  // are unsparable (permanent casualties); three heal at a known ladder
  // stage. Group 5 stays clean.
  robust::FaultPlan plan;
  auto key_of = [&](std::size_t g) {
    return sweep::emission_transient_key(grid.at(g * group));
  };
  {
    robust::FaultSpec s;

    s.site = robust::FaultSite::kDcSolve;  // permanent: fails every attempt
    s.key = key_of(0);
    plan.arm(s);

    s = {};
    s.site = robust::FaultSite::kFactor;  // heals when the ladder goes dense
    s.key = key_of(1);
    s.spare_dense = true;
    plan.arm(s);

    s = {};
    s.site = robust::FaultSite::kTransientStep;  // heals at the damp stage
    s.key = key_of(2);
    s.spare_dx_limit_below = 0.2;  // base dx_limit 0.5, quartered at "damp"
    plan.arm(s);

    s = {};
    s.site = robust::FaultSite::kSinkWrite;  // heals at the gmin stage
    s.key = key_of(3);
    s.spare_gmin_at_least = 1e-9;
    plan.arm(s);

    s = {};
    s.site = robust::FaultSite::kDeadline;  // permanent
    s.key = key_of(4);
    plan.arm(s);
  }

  const auto corner_fn = sweep::make_emission_corner_fn(cfg);
  sweep::SweepOutcome fault_1, fault_n;
  {
    robust::ScopedFaultPlan guard(plan);

    sweep::SweepRunner serial(1);
    const auto t1 = std::chrono::steady_clock::now();
    fault_1 = serial.run(grid, corner_fn, ropt);
    doc.at("scenarios").push(
        bench::scenario_row("faulted_sweep_1_thread", seconds_since(t1)));

    sweep::SweepRunner parallel(jobs);
    const auto tn = std::chrono::steady_clock::now();
    fault_n = parallel.run(grid, corner_fn, ropt);
    doc.at("scenarios").push(bench::scenario_row(
        "faulted_sweep_" + std::to_string(jobs) + "_threads", seconds_since(tn)));
  }

  // Every corner accounted for: a casualty record or a scored report.
  std::size_t recorded = 0;
  for (const auto& r : fault_n.results)
    if (r.solver_failed ? !r.failure.empty() && !r.failure_kind.empty()
                        : r.failure.empty())
      ++recorded;
  const bool gate_a = sweep_bytes(grid, fault_1) == sweep_bytes(grid, fault_n) &&
                      recorded == grid.size() &&
                      fault_n.summary.solver_failed == 2 * group &&
                      fault_n.summary.recovered == 3 * group &&
                      fault_n.summary.corners == grid.size();
  std::printf("gate A (fault isolation): %zu/%zu corners recorded, %zu failed, "
              "%zu recovered, deterministic across 1/%zu workers: %s\n",
              recorded, grid.size(), fault_n.summary.solver_failed,
              fault_n.summary.recovered, jobs, gate_a ? "PASS" : "FAIL");

  // ---------------------------------------------------------------- gate B
  // No faults armed: the retry-enabled sweep must match the retry-disabled
  // (pre-robustness) path byte for byte.
  auto cfg_off = cfg;
  cfg_off.retry.enabled = false;
  sweep::SweepRunner runner_b(jobs);
  const auto tb = std::chrono::steady_clock::now();
  const auto clean_on = runner_b.run(grid, sweep::make_emission_corner_fn(cfg), ropt);
  const double wall_clean = seconds_since(tb);
  doc.at("scenarios").push(bench::scenario_row("clean_sweep_retry_on", wall_clean));
  const auto tb2 = std::chrono::steady_clock::now();
  const auto clean_off =
      runner_b.run(grid, sweep::make_emission_corner_fn(cfg_off), ropt);
  doc.at("scenarios").push(
      bench::scenario_row("clean_sweep_retry_off", seconds_since(tb2)));

  const bool gate_b = sweep_bytes(grid, clean_on) == sweep_bytes(grid, clean_off) &&
                      clean_on.summary.solver_failed == 0 &&
                      clean_on.summary.recovered == 0;
  std::printf("gate B (zero-fault overhead): retry on == retry off: %s\n",
              gate_b ? "PASS" : "FAIL");

  // ---------------------------------------------------------------- gate C
  // Journaled sweep aborted mid-run, resumed in a fresh runner over the
  // same journal: byte-identical to the uninterrupted run (gate B's).
  const std::string journal = "BENCH_robust.journal.jsonl";
  std::remove(journal.c_str());
  std::atomic<bool> stop{false};
  auto jopt = ropt;
  jopt.journal_path = journal;
  jopt.stop = &stop;
  jopt.progress = [&](std::size_t done, std::size_t) {
    if (done >= 2) stop.store(true, std::memory_order_release);
  };
  bool aborted = false;
  std::size_t journaled_at_abort = 0;
  const auto tc = std::chrono::steady_clock::now();
  try {
    sweep::SweepRunner doomed(jobs);
    (void)doomed.run(grid, sweep::make_emission_corner_fn(cfg), jopt);
  } catch (const sweep::SweepAborted&) {
    aborted = true;
    journaled_at_abort = robust::load_journal(journal).size();
  }
  sweep::SweepRunner resumer(jobs);
  auto resume_opt = ropt;
  resume_opt.journal_path = journal;
  const auto resumed = resumer.run(grid, sweep::make_emission_corner_fn(cfg), resume_opt);
  doc.at("scenarios").push(bench::scenario_row("abort_and_resume", seconds_since(tc)));
  std::remove(journal.c_str());

  std::size_t restored = 0;
  for (const auto& r : resumed.results) restored += r.from_checkpoint ? 1 : 0;
  const bool gate_c = aborted && journaled_at_abort > 0 &&
                      journaled_at_abort < grid.size() &&
                      restored == journaled_at_abort &&
                      sweep_bytes(grid, resumed) == sweep_bytes(grid, clean_on);
  std::printf("gate C (checkpoint/resume): aborted with %zu corners journaled, "
              "resumed %zu, merged == uninterrupted: %s\n",
              journaled_at_abort, restored, gate_c ? "PASS" : "FAIL");

  // ---------------------------------------------------------------- gate D
  // A lane-step fault fires only in the batched path: the lane is demoted
  // to a scalar retry (which never sees the fault and succeeds at the base
  // stage), so the lane sweep must still match the scalar sparse sweep.
  auto cfg_sparse = cfg;
  cfg_sparse.solver = ckt::SolverKind::kSparse;
  robust::FaultPlan lane_plan;
  {
    robust::FaultSpec s;
    s.site = robust::FaultSite::kLaneStep;
    s.key = key_of(1);
    lane_plan.arm(s);
  }
  sweep::SweepOutcome lanes_out, scalar_out;
  sweep::LaneSweepInfo lane_info;
  const auto td = std::chrono::steady_clock::now();
  {
    robust::ScopedFaultPlan guard(lane_plan);
    lanes_out = sweep::run_emission_sweep_lanes(cfg_sparse, grid, 4, {}, &lane_info);
    sweep::SweepRunner scalar(jobs);
    scalar_out = scalar.run(grid, sweep::make_emission_corner_fn(cfg_sparse), ropt);
  }
  doc.at("scenarios").push(
      bench::scenario_row("lane_demotion_sweep", seconds_since(td)));

  const bool gate_d = lane_info.demoted >= 1 &&
                      lanes_out.summary.solver_failed == 0 &&
                      sweep_bytes(grid, lanes_out) == sweep_bytes(grid, scalar_out);
  std::printf("gate D (lane demotion): %zu lane(s) demoted, lane sweep == scalar "
              "sparse sweep: %s\n",
              lane_info.demoted, gate_d ? "PASS" : "FAIL");

  // ------------------------------------------------------------- document
  doc.set("gate_a_fault_isolation", bench::Json::boolean(gate_a));
  doc.set("gate_b_zero_fault_identical", bench::Json::boolean(gate_b));
  doc.set("gate_c_resume_identical", bench::Json::boolean(gate_c));
  doc.set("gate_d_lane_demotion", bench::Json::boolean(gate_d));
  doc.set("solver_failed_corners",
          bench::Json::integer(static_cast<long>(fault_n.summary.solver_failed)));
  doc.set("recovered_corners",
          bench::Json::integer(static_cast<long>(fault_n.summary.recovered)));
  doc.set("journaled_at_abort",
          bench::Json::integer(static_cast<long>(journaled_at_abort)));
  doc.set("lanes_demoted", bench::Json::integer(static_cast<long>(lane_info.demoted)));
  doc.set("clean_sweep_wall_s", bench::Json::number(wall_clean));
  doc.set("summary", sweep::summary_json(grid, fault_n.summary));

  if (doc.write_file("BENCH_robust.json")) std::printf("wrote BENCH_robust.json\n");

  const bool base_ok = bench::check_baseline_gate(doc, bargs);
  return gate_a && gate_b && gate_c && gate_d && base_ok ? 0 : 1;
}
