// Symmetric eigenvalue decomposition (cyclic Jacobi) used by the modal
// decomposition of coupled multiconductor transmission lines.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace emc::linalg {

struct EigenResult {
  std::vector<double> values;  ///< eigenvalues, ascending
  Matrix vectors;              ///< columns are the matching eigenvectors
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// Only the symmetric part of `a` is used. Throws std::invalid_argument on
/// non-square input.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

}  // namespace emc::linalg
