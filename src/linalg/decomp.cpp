#include "linalg/decomp.hpp"

#include <cmath>
#include <stdexcept>

namespace emc::linalg {

LuFactor::LuFactor(Matrix a) {
  factor(std::move(a));
}

void LuFactor::factor(const Matrix& a) {
  lu_ = a;  // vector assignment reuses capacity when sizes match
  factorize();
}

void LuFactor::factor(Matrix&& a) {
  lu_ = std::move(a);
  factorize();
}

void LuFactor::factorize() {
  valid_ = false;
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LuFactor: matrix not square");
  const std::size_t n = lu_.rows();
  piv_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t p = k;
    double pmax = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax < 1e-300) throw std::runtime_error("LuFactor: singular matrix");
    piv_[k] = static_cast<int>(p);
    if (p != k)
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv_pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
  valid_ = true;
}

std::vector<double> LuFactor::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void LuFactor::solve_in_place(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (!valid_) throw std::runtime_error("LuFactor::solve: no valid factorization");
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size mismatch");
  // Apply the recorded row interchanges, then substitute fully in place:
  // the whole solve is allocation-free.
  for (std::size_t k = 0; k < n; ++k)
    if (piv_[k] != static_cast<int>(k)) std::swap(b[k], b[static_cast<std::size_t>(piv_[k])]);
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * b[j];
    b[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * b[j];
    b[ii] = acc / lu_(ii, ii);
  }
}

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  if (a.rows() != a.cols()) throw std::invalid_argument("Cholesky: matrix not square");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (acc <= 0.0) throw std::runtime_error("Cholesky: matrix not positive definite");
        l_(i, i) = std::sqrt(acc);
      } else {
        l_(i, j) = acc / l_(j, j);
      }
    }
  }
}

std::vector<double> Cholesky::forward(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky::forward: size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  std::vector<double> y = forward(b);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * y[j];
    y[ii] = acc / l_(ii, ii);
  }
  return y;
}

std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("solve_least_squares: size mismatch");
  if (m < n) throw std::invalid_argument("solve_least_squares: underdetermined system");

  Matrix r = a;  // working copy, becomes R in the upper triangle
  std::vector<double> rhs(b.begin(), b.end());

  // Householder QR, applying reflectors to the right-hand side on the fly.
  for (std::size_t k = 0; k < n; ++k) {
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha < 1e-300) throw std::runtime_error("solve_least_squares: rank deficient");
    if (r(k, k) > 0) alpha = -alpha;

    std::vector<double> v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vnorm2 = dot(v, v);
    if (vnorm2 < 1e-300) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and rhs.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      const double s = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * rhs[i];
    const double s = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= s * v[i - k];
  }

  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) < 1e-300)
      throw std::runtime_error("solve_least_squares: rank deficient");
    x[ii] = acc / r(ii, ii);
  }
  return x;
}

std::vector<double> solve_ridge(const Matrix& a, std::span<const double> b, double lambda) {
  const std::size_t n = a.cols();
  if (b.size() != a.rows()) throw std::invalid_argument("solve_ridge: size mismatch");
  Matrix ata(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * a(k, j);
      ata(i, j) = acc;
      ata(j, i) = acc;
    }
    ata(i, i) += lambda;
  }
  std::vector<double> atb(n, 0.0);
  for (std::size_t k = 0; k < a.rows(); ++k)
    for (std::size_t i = 0; i < n; ++i) atb[i] += a(k, i) * b[k];
  return Cholesky(ata).solve(atb);
}

std::vector<double> solve_dense(const Matrix& a, std::span<const double> b) {
  // Reuse one factorization's storage per thread: repeated calls on
  // same-sized systems (line post_dc seeding per corner) neither copy the
  // input by value nor reallocate.
  static thread_local LuFactor lu;
  lu.factor(a);
  return lu.solve(b);
}

}  // namespace emc::linalg
