// Dense row-major matrix and small vector helpers.
//
// This is the numerical substrate shared by the MNA circuit solver, the
// system-identification estimators (least squares / OLS) and the modal
// decomposition of coupled transmission lines. Sizes in this project are
// small (tens to a few hundred rows), so a simple dense representation is
// the right tool.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace emc::linalg {

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Set every entry to `value`.
  void fill(double value);

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; throws std::invalid_argument on shape mismatch.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix * vector.
  std::vector<double> apply(std::span<const double> x) const;

  /// Human-readable dump (testing / debugging aid).
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Infinity norm of a vector.
double norm_inf(std::span<const double> v);

/// Dot product; spans must have equal length.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace emc::linalg
