#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace emc::linalg {

EigenResult eigen_symmetric(const Matrix& a, double tol, int max_sweeps) {
  if (a.rows() != a.cols()) throw std::invalid_argument("eigen_symmetric: matrix not square");
  const std::size_t n = a.rows();

  // Work on the symmetrized copy so tiny asymmetries from upstream
  // arithmetic cannot stall convergence.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = 0.5 * (a(i, j) + a(j, i));

  Matrix v = Matrix::identity(n);

  // The convergence threshold is relative to the matrix magnitude so the
  // solver works for matrices of any physical scale (e.g. LC products of
  // transmission lines are ~1e-17 in SI units).
  double fro = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) fro += m(i, j) * m(i, j);
  const double threshold = tol * std::max(std::sqrt(fro), 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (std::sqrt(off) < threshold) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(m(p, q)) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * m(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult res;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = m(i, i);

  // Sort ascending, permuting eigenvectors to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return res.values[x] < res.values[y]; });

  EigenResult sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    sorted.values[c] = res.values[order[c]];
    for (std::size_t r = 0; r < n; ++r) sorted.vectors(r, c) = v(r, order[c]);
  }
  return sorted;
}

}  // namespace emc::linalg
