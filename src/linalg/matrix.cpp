#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace emc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : init) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  for (auto& x : data_) x = value;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("Matrix*: shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::apply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* p = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += p[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) os << (*this)(r, c) << (c + 1 < cols_ ? " " : "");
    os << "\n";
  }
  return os.str();
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace emc::linalg
