// Matrix factorizations: LU with partial pivoting (the MNA workhorse),
// Cholesky (SPD systems, modal decomposition of line capacitance), and
// Householder QR for overdetermined least-squares problems used by the
// ARX / RBF estimators.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace emc::linalg {

/// LU factorization with partial pivoting, reusable for multiple
/// right-hand sides. Throws std::runtime_error on (numerical) singularity.
///
/// The factorization storage is reusable: a default-constructed LuFactor
/// can be (re)loaded with factor(), which recycles the internal buffers so
/// repeated refactorization of same-sized systems performs no heap
/// allocation after the first call — this is what the MNA Newton hot path
/// relies on.
class LuFactor {
 public:
  /// Empty factor; call factor() before solving.
  LuFactor() = default;

  explicit LuFactor(Matrix a);

  /// (Re)factorize `a`, copying it into internal storage. Existing
  /// capacity is reused when the size matches. Throws std::runtime_error
  /// on singularity, in which case valid() becomes false.
  void factor(const Matrix& a);

  /// (Re)factorize taking ownership of `a` (no copy).
  void factor(Matrix&& a);

  /// True when a factorization is loaded and numerically usable.
  bool valid() const { return valid_; }

  /// Solve A x = b for one right-hand side.
  std::vector<double> solve(std::span<const double> b) const;

  /// In-place solve (b is overwritten by x). Performs no heap allocation.
  void solve_in_place(std::span<double> b) const;

  std::size_t size() const { return lu_.rows(); }

 private:
  /// In-place LU of lu_ with partial pivoting; records row swaps in piv_.
  void factorize();

  Matrix lu_;
  std::vector<int> piv_;  ///< row swapped with row k at elimination step k
  bool valid_ = false;
};

/// Cholesky factorization A = L L^T of a symmetric positive definite
/// matrix (only the lower triangle of `a` is read).
/// Throws std::runtime_error if the matrix is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  std::vector<double> solve(std::span<const double> b) const;

  /// Lower-triangular factor L.
  const Matrix& factor() const { return l_; }

  /// Solve L y = b (forward substitution).
  std::vector<double> forward(std::span<const double> b) const;

 private:
  Matrix l_;
};

/// Least-squares solution of min ||A x - b||_2 via Householder QR
/// (requires rows >= cols). Throws std::runtime_error on rank deficiency.
std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b);

/// Ridge-regularized least squares: (A^T A + lambda I) x = A^T b.
/// Robust for nearly collinear regressor sets.
std::vector<double> solve_ridge(const Matrix& a, std::span<const double> b, double lambda);

/// Convenience: dense solve of a square system (single use). Routes
/// through a thread-local reusable LuFactor, so back-to-back calls on
/// same-sized systems perform no copy of `a` and no extra allocation.
std::vector<double> solve_dense(const Matrix& a, std::span<const double> b);

}  // namespace emc::linalg
