// Matrix factorizations: LU with partial pivoting (the MNA workhorse),
// Cholesky (SPD systems, modal decomposition of line capacitance), and
// Householder QR for overdetermined least-squares problems used by the
// ARX / RBF estimators.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace emc::linalg {

/// LU factorization with partial pivoting, reusable for multiple
/// right-hand sides. Throws std::runtime_error on (numerical) singularity.
class LuFactor {
 public:
  explicit LuFactor(Matrix a);

  /// Solve A x = b for one right-hand side.
  std::vector<double> solve(std::span<const double> b) const;

  /// In-place solve (b is overwritten by x).
  void solve_in_place(std::span<double> b) const;

  std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<int> piv_;
};

/// Cholesky factorization A = L L^T of a symmetric positive definite
/// matrix (only the lower triangle of `a` is read).
/// Throws std::runtime_error if the matrix is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  std::vector<double> solve(std::span<const double> b) const;

  /// Lower-triangular factor L.
  const Matrix& factor() const { return l_; }

  /// Solve L y = b (forward substitution).
  std::vector<double> forward(std::span<const double> b) const;

 private:
  Matrix l_;
};

/// Least-squares solution of min ||A x - b||_2 via Householder QR
/// (requires rows >= cols). Throws std::runtime_error on rank deficiency.
std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b);

/// Ridge-regularized least squares: (A^T A + lambda I) x = A^T b.
/// Robust for nearly collinear regressor sets.
std::vector<double> solve_ridge(const Matrix& a, std::span<const double> b, double lambda);

/// Convenience: dense solve of a square system (single use).
std::vector<double> solve_dense(const Matrix& a, std::span<const double> b);

}  // namespace emc::linalg
