// Sparse MNA substrate: CSR pattern with a coordinate-stamping builder,
// a lane-batched value container, and a static-pivot sparse LU whose
// symbolic phase (fill-reducing ordering + fill pattern) is computed once
// and reused across numeric refactorizations — the PR 1 cached-LU trick
// generalized to nonlinear circuits, where the *values* change every
// Newton iteration but the *structure* never does.
//
// Determinism contract: the elimination order is a pure function of the
// pattern (structure only, never of the values), so a factorization's
// rounding is identical no matter which corner previously used a reused
// workspace. Numeric robustness is recovered by a health check at
// refactor time (pivot magnitude / multiplier growth); lanes that fail it
// fall back to dense partial-pivoting LU for that factor call only —
// a pure function of the lane's own values, so purity is preserved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"

namespace emc::linalg {

/// One stamped position (0-based row/col in unknown space).
struct SparseCoord {
  int r = 0;
  int c = 0;
};

/// Immutable CSR sparsity pattern of an n x n system. Built from the
/// coordinate list a stamping pass produces (duplicates welcome); the full
/// diagonal is always included (the engine adds gmin there), but build()
/// remembers which diagonals were *structurally* stamped by a device —
/// the ordering uses that to defer numerically weak pivots (e.g. VSource
/// branch rows whose diagonal is only the gmin leakage).
class SparsePattern {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SparsePattern() = default;

  /// Dedup + sort `coords` into CSR; throws std::invalid_argument on
  /// out-of-range coordinates.
  static SparsePattern build(std::size_t n, std::span<const SparseCoord> coords);

  std::size_t n() const { return n_; }
  std::size_t nnz() const { return col_.size(); }
  bool empty() const { return n_ == 0; }

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const int> col() const { return col_; }

  /// Slot of (r, r); every row has one.
  std::size_t diag_slot(std::size_t r) const { return diag_slot_[r]; }

  /// True when some device stamped (r, r) — i.e. the diagonal exists
  /// beyond the engine's gmin augmentation.
  bool structural_diag(std::size_t r) const { return structural_diag_[r] != 0; }

  /// Slot of (r, c), or npos when the position is not in the pattern.
  std::size_t find(int r, int c) const;

  /// FNV-1a over the full structure (n, rows, columns, structural-diagonal
  /// flags): equal hashes => identical patterns for all practical purposes,
  /// which is what lets one symbolic analysis be shared across corners.
  std::uint64_t hash() const { return hash_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<int> col_;              ///< sorted within each row
  std::vector<std::size_t> diag_slot_;
  std::vector<char> structural_diag_;
  std::uint64_t hash_ = 0;
};

/// Values over a SparsePattern, batched over `lanes` independent systems
/// sharing the structure. Storage is slot-major (values[slot * lanes +
/// lane]) so a factorization walking the pattern once can process all
/// lanes with a unit-stride inner loop. The pattern is referenced, not
/// owned: it must outlive the matrix (both live side by side in
/// NewtonWorkspace / LaneWorkspace).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Bind to `p` with `lanes` value lanes; values are zeroed.
  void set_pattern(const SparsePattern* p, std::size_t lanes = 1);

  const SparsePattern* pattern() const { return p_; }
  std::size_t lanes() const { return lanes_; }
  std::size_t n() const { return p_ ? p_->n() : 0; }

  void clear_values();                  ///< zero every lane
  void clear_lane(std::size_t lane);    ///< zero one lane

  /// values(r, c, lane) += v; returns false (and does nothing) when the
  /// position is outside the pattern — callers collect misses and rebuild.
  bool add(int r, int c, double v, std::size_t lane = 0);

  /// Add `v` to every diagonal entry of `lane` (the gmin augmentation).
  void add_diag(double v, std::size_t lane = 0);

  double value(std::size_t slot, std::size_t lane = 0) const {
    return values_[slot * lanes_ + lane];
  }
  std::span<const double> values() const { return values_; }

  /// Materialize one lane as a dense matrix (dense-fallback path, tests).
  Matrix to_dense(std::size_t lane = 0) const;

 private:
  const SparsePattern* p_ = nullptr;
  std::size_t lanes_ = 1;
  std::vector<double> values_;  ///< nnz * lanes, slot-major
};

/// Counters of what a SparseLu actually did — how often the symbolic
/// analysis was reused, how often the numeric health check bailed to
/// dense, and how many pattern entries the factor/solve kernels walked
/// (walk_entries counts pattern traversals once per call, *not* per lane:
/// it is the metric that shows lane batching amortizing structure walks).
struct SparseLuStats {
  long analyses = 0;         ///< symbolic phases computed
  long symbolic_reuses = 0;  ///< numeric refactors that reused the symbolic
  long refactors = 0;        ///< numeric factorizations performed
  long dense_fallback_lanes = 0;  ///< lanes that failed health and went dense
  long solves = 0;           ///< triangular-solve calls
  unsigned long long walk_entries = 0;
};

/// Sparse LU with a static pivot order.
///
/// factor(a) runs the symbolic analysis only when the pattern hash differs
/// from the one analyzed last (fill-reducing minimum-degree ordering on the
/// symmetrized pattern, with structurally weak diagonals deferred until an
/// eliminated neighbor strengthens them; then the exact fill pattern of L
/// and U). Every later factor() of the same structure is a cheap numeric
/// refactorization: scatter, eliminate along the precomputed pattern,
/// gather — no searching, no allocation.
///
/// All lanes of `a` are factored in one pattern walk. A lane whose numeric
/// health fails (pivot < 1e-300 or multiplier > 1e6 in magnitude) is
/// re-factored densely with partial pivoting for this call; the other
/// lanes are unaffected, so each lane's solution remains a pure function
/// of its own values.
class SparseLu {
 public:
  SparseLu() = default;

  /// (Re)factorize; throws std::runtime_error when a system is singular
  /// beyond even the dense fallback.
  void factor(const SparseMatrix& a);

  bool valid() const { return valid_; }
  std::size_t size() const { return n_; }
  std::size_t lanes() const { return lanes_; }

  /// Solve A x = b in place for a single-lane factorization.
  void solve_in_place(std::span<double> b) const;

  /// Solve all lanes in place; b is n * lanes, lane-fastest (b[i * lanes +
  /// lane]). Per-lane arithmetic is the identical operation sequence the
  /// single-lane solve performs, so lane results are bit-identical to
  /// scalar solves of the same values.
  void solve_lanes_in_place(std::span<double> b) const;

  /// Drop numeric *and* symbolic state (topology changed for good).
  void invalidate();

  const SparseLuStats& stats() const { return stats_; }

  /// Pattern entries walked by one factor / one solve call (valid after
  /// the first factor): the work-reduction currency of lane batching.
  unsigned long long factor_walk() const { return factor_walk_; }
  unsigned long long solve_walk() const { return solve_walk_; }

 private:
  void analyze(const SparsePattern& p);

  std::size_t n_ = 0;
  std::size_t lanes_ = 1;
  bool analyzed_ = false;
  bool valid_ = false;
  std::uint64_t hash_ = 0;

  // Symbolic: elimination order and the static fill pattern (permuted
  // indices; L strictly lower with columns ascending, U strictly upper).
  std::vector<int> perm_;  ///< perm_[k] = original index eliminated at step k
  std::vector<int> pinv_;  ///< pinv_[original] = elimination step
  std::vector<std::size_t> l_ptr_;
  std::vector<int> l_col_;
  std::vector<std::size_t> u_ptr_;
  std::vector<int> u_col_;
  // Scatter map: for permuted row i, A slots a_slot_[k] land at permuted
  // column a_pcol_[k], k in [a_ptr_[i], a_ptr_[i+1]).
  std::vector<std::size_t> a_ptr_;
  std::vector<std::size_t> a_slot_;
  std::vector<int> a_pcol_;
  unsigned long long factor_walk_ = 0;
  unsigned long long solve_walk_ = 0;

  // Numeric (lane-batched, slot-major like SparseMatrix).
  std::vector<double> l_val_;
  std::vector<double> u_val_;
  std::vector<double> inv_diag_;
  std::vector<double> w_;    ///< scatter workspace, n * lanes
  std::vector<double> lij_;  ///< per-lane multiplier scratch

  // Per-lane dense fallback of the current factorization.
  std::vector<char> lane_dense_;
  std::vector<LuFactor> dense_;
  mutable std::vector<double> pb_;  ///< permuted rhs scratch for solves
  mutable std::vector<double> xb_;  ///< per-lane gather scratch (dense lanes)

  mutable SparseLuStats stats_;
};

}  // namespace emc::linalg
