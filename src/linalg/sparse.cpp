#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace emc::linalg {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  // Mix each byte so permuted column lists cannot collide trivially.
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// Numeric-health bounds of the static-pivot refactorization: beyond
/// these the structure-chosen pivot order is not trustworthy and the lane
/// is redone densely with partial pivoting.
constexpr double kMinPivot = 1e-300;
constexpr double kMaxMultiplier = 1e6;

}  // namespace

SparsePattern SparsePattern::build(std::size_t n, std::span<const SparseCoord> coords) {
  SparsePattern p;
  p.n_ = n;
  p.row_ptr_.assign(n + 1, 0);
  p.diag_slot_.assign(n, npos);
  p.structural_diag_.assign(n, 0);
  if (n == 0) {
    p.hash_ = fnv_mix(kFnvOffset, 0);
    return p;
  }

  std::vector<SparseCoord> cs(coords.begin(), coords.end());
  for (const SparseCoord& co : cs)
    if (co.r < 0 || co.c < 0 || static_cast<std::size_t>(co.r) >= n ||
        static_cast<std::size_t>(co.c) >= n)
      throw std::invalid_argument("SparsePattern::build: coordinate out of range");
  for (const SparseCoord& co : cs)
    if (co.r == co.c) p.structural_diag_[static_cast<std::size_t>(co.r)] = 1;
  // The gmin augmentation needs every diagonal present even when no device
  // stamps it.
  cs.reserve(cs.size() + n);
  for (std::size_t i = 0; i < n; ++i)
    cs.push_back({static_cast<int>(i), static_cast<int>(i)});

  std::sort(cs.begin(), cs.end(), [](const SparseCoord& a, const SparseCoord& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });
  cs.erase(std::unique(cs.begin(), cs.end(),
                       [](const SparseCoord& a, const SparseCoord& b) {
                         return a.r == b.r && a.c == b.c;
                       }),
           cs.end());

  p.col_.reserve(cs.size());
  for (const SparseCoord& co : cs) {
    ++p.row_ptr_[static_cast<std::size_t>(co.r) + 1];
    if (co.r == co.c) p.diag_slot_[static_cast<std::size_t>(co.r)] = p.col_.size();
    p.col_.push_back(co.c);
  }
  for (std::size_t i = 0; i < n; ++i) p.row_ptr_[i + 1] += p.row_ptr_[i];

  std::uint64_t h = fnv_mix(kFnvOffset, n);
  for (std::size_t r = 0; r < n; ++r) {
    h = fnv_mix(h, p.row_ptr_[r + 1] - p.row_ptr_[r]);
    for (std::size_t s = p.row_ptr_[r]; s < p.row_ptr_[r + 1]; ++s)
      h = fnv_mix(h, static_cast<std::uint64_t>(p.col_[s]));
    h = fnv_mix(h, static_cast<std::uint64_t>(p.structural_diag_[r]));
  }
  p.hash_ = h;
  return p;
}

std::size_t SparsePattern::find(int r, int c) const {
  if (r < 0 || c < 0 || static_cast<std::size_t>(r) >= n_ ||
      static_cast<std::size_t>(c) >= n_)
    return npos;
  const auto lo = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[static_cast<std::size_t>(r)]);
  const auto hi = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
  const auto it = std::lower_bound(lo, hi, c);
  if (it == hi || *it != c) return npos;
  return static_cast<std::size_t>(it - col_.begin());
}

void SparseMatrix::set_pattern(const SparsePattern* p, std::size_t lanes) {
  if (!p) throw std::invalid_argument("SparseMatrix::set_pattern: null pattern");
  if (lanes == 0) throw std::invalid_argument("SparseMatrix::set_pattern: zero lanes");
  p_ = p;
  lanes_ = lanes;
  values_.assign(p->nnz() * lanes, 0.0);
}

void SparseMatrix::clear_values() { std::fill(values_.begin(), values_.end(), 0.0); }

void SparseMatrix::clear_lane(std::size_t lane) {
  for (std::size_t s = lane; s < values_.size(); s += lanes_) values_[s] = 0.0;
}

bool SparseMatrix::add(int r, int c, double v, std::size_t lane) {
  const std::size_t slot = p_->find(r, c);
  if (slot == SparsePattern::npos) return false;
  values_[slot * lanes_ + lane] += v;
  return true;
}

void SparseMatrix::add_diag(double v, std::size_t lane) {
  for (std::size_t i = 0; i < p_->n(); ++i)
    values_[p_->diag_slot(i) * lanes_ + lane] += v;
}

Matrix SparseMatrix::to_dense(std::size_t lane) const {
  const std::size_t n = this->n();
  Matrix m(n, n);
  const auto rp = p_->row_ptr();
  const auto col = p_->col();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t s = rp[r]; s < rp[r + 1]; ++s)
      m(r, static_cast<std::size_t>(col[s])) = values_[s * lanes_ + lane];
  return m;
}

void SparseLu::invalidate() {
  analyzed_ = false;
  valid_ = false;
  hash_ = 0;
}

void SparseLu::analyze(const SparsePattern& p) {
  const std::size_t n = p.n();
  n_ = n;

  // Symmetrized adjacency A + A^T (off-diagonal structure only): the
  // ordering must not depend on which of (i,j)/(j,i) a device stamped.
  std::vector<std::set<int>> adj(n);
  {
    const auto rp = p.row_ptr();
    const auto col = p.col();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t s = rp[r]; s < rp[r + 1]; ++s) {
        const int c = col[s];
        if (static_cast<std::size_t>(c) == r) continue;
        adj[r].insert(c);
        adj[static_cast<std::size_t>(c)].insert(static_cast<int>(r));
      }
  }

  // Minimum-degree elimination with weak-diagonal deferral. A node whose
  // diagonal is only the gmin leakage (VSource/Vcvs branch rows) would be
  // a catastrophic static pivot; defer it until the elimination of a
  // neighbor has deposited a Schur-complement contribution on its
  // diagonal (l_ik * u_kj fill with i == j). Ties break on the lowest
  // index, keeping the order fully deterministic.
  std::vector<char> weak(n), gone(n, 0);
  for (std::size_t i = 0; i < n; ++i) weak[i] = p.structural_diag(i) ? 0 : 1;
  perm_.assign(n, 0);
  pinv_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = n;
    bool best_weak = true;
    std::size_t best_deg = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (gone[i]) continue;
      const bool w = weak[i] != 0;
      const std::size_t d = adj[i].size();
      if (best == n || (w ? best_weak && d < best_deg : best_weak || d < best_deg)) {
        best = i;
        best_weak = w;
        best_deg = d;
      }
    }
    gone[best] = 1;
    perm_[k] = static_cast<int>(best);
    pinv_[best] = static_cast<int>(k);
    // Clique-connect the uneliminated neighbors (fill), and strengthen
    // their diagonals: eliminating `best` updates them via l * u terms.
    std::vector<int> nbrs(adj[best].begin(), adj[best].end());
    for (int u : nbrs) {
      adj[static_cast<std::size_t>(u)].erase(static_cast<int>(best));
      weak[static_cast<std::size_t>(u)] = 0;
    }
    for (std::size_t a = 0; a < nbrs.size(); ++a)
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[static_cast<std::size_t>(nbrs[a])].insert(nbrs[b]);
        adj[static_cast<std::size_t>(nbrs[b])].insert(nbrs[a]);
      }
    adj[best].clear();
  }

  // Permuted A rows (scatter map) grouped by elimination step.
  a_ptr_.assign(n + 1, 0);
  {
    const auto rp = p.row_ptr();
    for (std::size_t r = 0; r < n; ++r)
      a_ptr_[static_cast<std::size_t>(pinv_[r]) + 1] += rp[r + 1] - rp[r];
    for (std::size_t i = 0; i < n; ++i) a_ptr_[i + 1] += a_ptr_[i];
    a_slot_.assign(p.nnz(), 0);
    a_pcol_.assign(p.nnz(), 0);
    std::vector<std::size_t> next(a_ptr_.begin(), a_ptr_.end() - 1);
    const auto col = p.col();
    for (std::size_t r = 0; r < n; ++r) {
      const auto i = static_cast<std::size_t>(pinv_[r]);
      for (std::size_t s = rp[r]; s < rp[r + 1]; ++s) {
        a_slot_[next[i]] = s;
        a_pcol_[next[i]] = pinv_[static_cast<std::size_t>(col[s])];
        ++next[i];
      }
    }
  }

  // Up-looking symbolic factorization: the fill pattern of permuted row i
  // is its A pattern merged with the U rows of every j < i it touches
  // (processed in ascending j — std::set iteration is insertion-safe).
  l_ptr_.assign(n + 1, 0);
  u_ptr_.assign(n + 1, 0);
  l_col_.clear();
  u_col_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::set<int> cols;
    for (std::size_t k = a_ptr_[i]; k < a_ptr_[i + 1]; ++k) cols.insert(a_pcol_[k]);
    cols.insert(static_cast<int>(i));
    for (auto it = cols.begin(); it != cols.end() && *it < static_cast<int>(i); ++it) {
      const auto j = static_cast<std::size_t>(*it);
      for (std::size_t us = u_ptr_[j]; us < u_ptr_[j + 1]; ++us) cols.insert(u_col_[us]);
    }
    for (int c : cols) {
      if (c < static_cast<int>(i))
        l_col_.push_back(c);
      else if (c > static_cast<int>(i))
        u_col_.push_back(c);
    }
    l_ptr_[i + 1] = l_col_.size();
    u_ptr_[i + 1] = u_col_.size();
  }

  factor_walk_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    factor_walk_ += (a_ptr_[i + 1] - a_ptr_[i]);                   // scatter
    factor_walk_ += 2 * (l_ptr_[i + 1] - l_ptr_[i]);               // eliminate + gather L
    factor_walk_ += 2 * (u_ptr_[i + 1] - u_ptr_[i]) + 1;           // gather U + pivot
    for (std::size_t ls = l_ptr_[i]; ls < l_ptr_[i + 1]; ++ls) {
      const auto j = static_cast<std::size_t>(l_col_[ls]);
      factor_walk_ += u_ptr_[j + 1] - u_ptr_[j];                   // updates
    }
  }
  solve_walk_ = l_col_.size() + u_col_.size() + n;

  hash_ = p.hash();
  analyzed_ = true;
  valid_ = false;
  ++stats_.analyses;
  static const obs::Counter c_analyses("linalg.sparselu.analyses");
  c_analyses.add();
}

void SparseLu::factor(const SparseMatrix& a) {
  const SparsePattern* p = a.pattern();
  if (!p) throw std::invalid_argument("SparseLu::factor: matrix has no pattern");
  static const obs::Counter c_reuses("linalg.sparselu.symbolic_reuses");
  if (!analyzed_ || hash_ != p->hash()) {
    analyze(*p);
  } else {
    ++stats_.symbolic_reuses;
    c_reuses.add();
  }

  const std::size_t n = n_;
  const std::size_t L = a.lanes();
  lanes_ = L;
  valid_ = false;
  l_val_.assign(l_col_.size() * L, 0.0);
  u_val_.assign(u_col_.size() * L, 0.0);
  inv_diag_.assign(n * L, 0.0);
  w_.assign(n * L, 0.0);
  lij_.assign(L, 0.0);
  lane_dense_.assign(L, 0);
  std::vector<char> healthy(L, 1);

  const std::span<const double> av = a.values();
  for (std::size_t i = 0; i < n; ++i) {
    // Zero the workspace over this row's fill pattern, scatter A into it.
    for (std::size_t ls = l_ptr_[i]; ls < l_ptr_[i + 1]; ++ls) {
      double* w = &w_[static_cast<std::size_t>(l_col_[ls]) * L];
      for (std::size_t t = 0; t < L; ++t) w[t] = 0.0;
    }
    for (std::size_t t = 0; t < L; ++t) w_[i * L + t] = 0.0;
    for (std::size_t us = u_ptr_[i]; us < u_ptr_[i + 1]; ++us) {
      double* w = &w_[static_cast<std::size_t>(u_col_[us]) * L];
      for (std::size_t t = 0; t < L; ++t) w[t] = 0.0;
    }
    for (std::size_t k = a_ptr_[i]; k < a_ptr_[i + 1]; ++k) {
      const double* src = &av[a_slot_[k] * L];
      double* w = &w_[static_cast<std::size_t>(a_pcol_[k]) * L];
      for (std::size_t t = 0; t < L; ++t) w[t] = src[t];
    }
    // Eliminate along the precomputed L pattern (columns ascending).
    for (std::size_t ls = l_ptr_[i]; ls < l_ptr_[i + 1]; ++ls) {
      const auto j = static_cast<std::size_t>(l_col_[ls]);
      const double* wj = &w_[j * L];
      const double* dj = &inv_diag_[j * L];
      double* lv = &l_val_[ls * L];
      for (std::size_t t = 0; t < L; ++t) {
        const double m = wj[t] * dj[t];
        lij_[t] = m;
        lv[t] = m;
        if (!(std::abs(m) <= kMaxMultiplier)) healthy[t] = 0;
      }
      for (std::size_t us = u_ptr_[j]; us < u_ptr_[j + 1]; ++us) {
        const double* uv = &u_val_[us * L];
        double* wc = &w_[static_cast<std::size_t>(u_col_[us]) * L];
        for (std::size_t t = 0; t < L; ++t) wc[t] -= lij_[t] * uv[t];
      }
    }
    // Pivot + gather the U row.
    for (std::size_t t = 0; t < L; ++t) {
      const double d = w_[i * L + t];
      if (!(std::abs(d) >= kMinPivot)) healthy[t] = 0;
      inv_diag_[i * L + t] = 1.0 / d;
    }
    for (std::size_t us = u_ptr_[i]; us < u_ptr_[i + 1]; ++us) {
      const double* wc = &w_[static_cast<std::size_t>(u_col_[us]) * L];
      double* uv = &u_val_[us * L];
      for (std::size_t t = 0; t < L; ++t) uv[t] = wc[t];
    }
  }

  ++stats_.refactors;
  stats_.walk_entries += factor_walk_;
  static const obs::Counter c_refactors("linalg.sparselu.refactors");
  static const obs::Counter c_walk("linalg.sparselu.walk_entries");
  c_refactors.add();
  c_walk.add(factor_walk_);

  // Lanes whose static pivots went bad are redone densely (partial
  // pivoting) for this call only; a genuinely singular lane throws, same
  // as the dense engine path.
  if (dense_.size() < L) dense_.resize(L);
  for (std::size_t t = 0; t < L; ++t) {
    if (healthy[t]) continue;
    lane_dense_[t] = 1;
    ++stats_.dense_fallback_lanes;
    static const obs::Counter c_fallback("linalg.sparselu.dense_fallback_lanes");
    c_fallback.add();
    dense_[t].factor(a.to_dense(t));
  }
  valid_ = true;
}

void SparseLu::solve_in_place(std::span<double> b) const {
  if (lanes_ != 1)
    throw std::invalid_argument("SparseLu::solve_in_place: use solve_lanes_in_place");
  solve_lanes_in_place(b);
}

void SparseLu::solve_lanes_in_place(std::span<double> b) const {
  const std::size_t n = n_;
  const std::size_t L = lanes_;
  if (!valid_) throw std::runtime_error("SparseLu::solve: no valid factorization");
  if (b.size() != n * L) throw std::invalid_argument("SparseLu::solve: size mismatch");
  ++stats_.solves;
  stats_.walk_entries += solve_walk_;
  static const obs::Counter c_solves("linalg.sparselu.solves");
  static const obs::Counter c_walk("linalg.sparselu.walk_entries");
  c_solves.add();
  c_walk.add(solve_walk_);

  // Permute into elimination order first; dense-fallback lanes can then
  // overwrite b directly while the batched kernel works on the copy.
  pb_.resize(n * L);
  for (std::size_t k = 0; k < n; ++k) {
    const double* src = &b[static_cast<std::size_t>(perm_[k]) * L];
    double* dst = &pb_[k * L];
    for (std::size_t t = 0; t < L; ++t) dst[t] = src[t];
  }
  bool any_sparse = false;
  for (std::size_t t = 0; t < L; ++t) {
    if (!lane_dense_[t]) {
      any_sparse = true;
      continue;
    }
    xb_.resize(n);
    for (std::size_t i = 0; i < n; ++i) xb_[i] = b[i * L + t];
    dense_[t].solve_in_place(xb_);
    for (std::size_t i = 0; i < n; ++i) b[i * L + t] = xb_[i];
  }
  if (!any_sparse) return;

  // Forward substitution (unit lower triangle), then backward with the
  // reciprocal diagonal — the same per-lane operation sequence for any
  // lane count, which is what keeps lane results bit-identical to scalar.
  for (std::size_t i = 0; i < n; ++i) {
    double* bi = &pb_[i * L];
    for (std::size_t ls = l_ptr_[i]; ls < l_ptr_[i + 1]; ++ls) {
      const double* lv = &l_val_[ls * L];
      const double* bj = &pb_[static_cast<std::size_t>(l_col_[ls]) * L];
      for (std::size_t t = 0; t < L; ++t) bi[t] -= lv[t] * bj[t];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double* bi = &pb_[ii * L];
    for (std::size_t us = u_ptr_[ii]; us < u_ptr_[ii + 1]; ++us) {
      const double* uv = &u_val_[us * L];
      const double* bc = &pb_[static_cast<std::size_t>(u_col_[us]) * L];
      for (std::size_t t = 0; t < L; ++t) bi[t] -= uv[t] * bc[t];
    }
    const double* di = &inv_diag_[ii * L];
    for (std::size_t t = 0; t < L; ++t) bi[t] *= di[t];
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double* src = &pb_[k * L];
    double* dst = &b[static_cast<std::size_t>(perm_[k]) * L];
    for (std::size_t t = 0; t < L; ++t)
      if (!lane_dense_[t]) dst[t] = src[t];
  }
}

}  // namespace emc::linalg
