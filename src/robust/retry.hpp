// Deterministic retry/escalation ladder for failing transients.
//
// A corner whose solve throws robust::SolveError is retried under
// cumulatively stronger numerics — halve dt, force the dense backend,
// raise gmin and the iteration budget, tighten Newton damping — until an
// attempt succeeds or the ladder is exhausted. The stage sequence is a
// pure function of the attempt number and the base options, so retries
// are identical for any worker count or scheduling order. Per-attempt
// wall-clock deadlines ride the same mechanism: each attempt gets a fresh
// robust::Deadline the engines check cooperatively.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/engine.hpp"
#include "robust/error.hpp"

namespace emc::robust {

struct RetryPolicy {
  /// Off = exactly one attempt, exceptions pass through unchanged (the
  /// pre-robustness path, byte-identical when nothing fails).
  bool enabled = true;

  /// Base attempt + escalation stages; clamped to [1, kMaxLadderStages].
  int max_attempts = 5;

  /// Per-ATTEMPT wall-clock budget (seconds); 0 disables. A timed-out
  /// attempt counts as failed and escalates like any other failure. Real
  /// wall-clock expiry is machine-dependent — leave 0 where byte-identical
  /// summaries across runs are gated.
  double deadline_s = 0.0;

  /// Allow the ladder to halve dt. Pipelines whose engine step is pinned
  /// (the emission transient must run at the macromodel's sampling time
  /// Ts) set false: the "dt/2" stage then becomes a plain re-attempt at
  /// the base step and later stages keep base.dt while still adding the
  /// dense backend, gmin and damping escalations.
  bool refine_dt = true;
};

/// Base attempt + 4 escalation stages.
inline constexpr int kMaxLadderStages = 5;

/// Stage name for attempt `a` (0-based): "base", "dt/2", "dense",
/// "gmin", "damp".
const char* retry_stage_name(int attempt);

/// The options attempt `attempt` runs with — cumulative escalation:
///   0: base verbatim
///   1: dt/2
///   2: + solver = kDense
///   3: + gmin raised to >= 1e-9, max_newton doubled
///   4: + dx_limit quartered (stronger damping), max_newton doubled again
ckt::TransientOptions escalate(const ckt::TransientOptions& base, int attempt);

struct AttemptRecord {
  int attempt = 0;
  std::string stage;  ///< retry_stage_name(attempt)
  std::string error;  ///< what() of the failure
};

struct RetryOutcome {
  int attempts = 0;        ///< attempts actually run (>= 1)
  bool recovered = false;  ///< success after at least one failed attempt
  std::vector<AttemptRecord> failures;  ///< one per failed attempt
};

/// Run `body(options)` under the ladder. The body must rebuild all of its
/// state per call (fresh circuit, fresh sinks) — a failed attempt leaves
/// nothing behind. Only robust::SolveError failures are retried; any
/// other exception propagates immediately. When every attempt fails, the
/// final SolveError is rethrown with info().attempts set and the ladder
/// history appended to info().detail.
RetryOutcome run_with_escalation(
    const RetryPolicy& policy, const ckt::TransientOptions& base,
    const std::function<void(const ckt::TransientOptions&)>& body);

}  // namespace emc::robust
