// Append-only JSON-lines checkpoint journal for sharded sweeps.
//
// SweepRunner spools every finished corner as one line; a killed shard
// resumes by loading the journal and skipping the corners already present,
// and the resumed-plus-merged report is byte-identical to an uninterrupted
// run. Byte-identity needs exact double round-trips, which obs::Json
// numbers (%.9g) do not provide — doubles that must survive a resume are
// encoded with exact_double() (%.17g strings) and read back with
// parse_exact().
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace emc::robust {

/// Exact decimal spelling of a double: %.17g round-trips every finite
/// value through strtod bit-for-bit.
std::string exact_double(double v);

/// Read a value written by exact_double (a string) or a plain Json number.
double parse_exact(const obs::Json& j);

/// One-line serialization of a Json tree (dump() pretty-prints; journal
/// entries must be single lines). Safe because the escaper encodes every
/// control character inside strings.
std::string dump_line(const obs::Json& j);

/// Append-only journal writer. Lines are flushed as written, so a killed
/// process loses at most the line being written — which the loader drops.
class JournalWriter {
 public:
  /// Opens `path` in append mode; ok() reports failure (the caller
  /// decides whether journaling is load-bearing).
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool ok() const { return f_ != nullptr; }

  /// Serialize + append + flush one entry; thread-safe.
  void append(const obs::Json& entry);

 private:
  std::mutex mu_;
  std::FILE* f_ = nullptr;
};

/// Load every complete entry of a journal; a missing file returns an
/// empty vector (nothing to resume). A truncated or malformed FINAL line
/// — the writer died mid-append — is dropped; a malformed interior line
/// means real corruption and throws std::runtime_error.
std::vector<obs::Json> load_journal(const std::string& path);

}  // namespace emc::robust
