// Structured solver failures for the resilience layer.
//
// Every divergence the circuit engines can hit — DC continuation running
// out of schedule, a transient Newton solve going non-finite, a singular
// system, a sparse pattern that will not stabilize, a deadline overrun, a
// sink refusing a chunk — is thrown as a SolveError carrying a machine-
// readable SolveErrorInfo instead of a bare std::runtime_error. The sweep
// layer records (not rethrows) these per corner, the retry ladder
// escalates on them, and reports serialize them; existing catch sites
// keep working because SolveError IS-A std::runtime_error.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

namespace emc::robust {

/// Failure taxonomy. A recorded failure names exactly one of these, so
/// reports can aggregate by kind without parsing message strings.
enum class FailureKind {
  kDcDivergence,         ///< DC continuation + source stepping exhausted
  kTransientDivergence,  ///< stepped Newton solve went non-finite
  kSingularSystem,       ///< factorization failed at an iterate
  kPatternUnstable,      ///< sparse pattern would not stabilize
  kDeadlineExceeded,     ///< cooperative wall-clock cancellation fired
  kSinkFailure,          ///< sample sink refused a chunk
  kInjectedFault,        ///< fault-injection harness fired (tests/benches)
};

const char* failure_kind_name(FailureKind kind);

/// Everything a failure report needs, captured at the throw site and
/// enriched (corner label / index, attempt count) as the error crosses
/// layers on its way to the sweep recorder.
struct SolveErrorInfo {
  FailureKind kind = FailureKind::kTransientDivergence;
  std::string site;     ///< throwing function, e.g. "run_transient"
  std::string context;  ///< TransientOptions::context (transient key)
  std::string corner;   ///< Scenario::label(); filled by the sweep layer
  long corner_index = -1;  ///< grid index; -1 outside a sweep
  double t = 0.0;          ///< simulation time of the failure (0 for DC)
  double dt = 0.0;         ///< step of the failing attempt
  int solver = -1;         ///< ckt::SolverKind of the attempt; -1 unknown
  int attempts = 0;        ///< escalation attempts consumed; 0 = no ladder
  /// |dx|_inf per Newton iteration of the failing solve, most recent
  /// last (bounded; see NewtonWorkspace::kResidualHistoryCap).
  std::vector<double> residual_history;
  std::string detail;  ///< site-specific free text (schedules, lane ids…)
};

/// Derives from std::runtime_error so every pre-existing catch keeps
/// working; what() is formatted once from the info at construction.
class SolveError : public std::runtime_error {
 public:
  explicit SolveError(SolveErrorInfo info);

  const SolveErrorInfo& info() const { return info_; }

 private:
  static std::string format(const SolveErrorInfo& info);
  SolveErrorInfo info_;
};

/// Rebuild `e` with the corner identity attached (label + grid index) —
/// the sweep layer's wrapper so failures recorded from worker threads
/// always say which corner produced them.
SolveError with_corner(const SolveError& e, std::string corner_label,
                       std::size_t corner_index);

/// Cooperative wall-clock deadline. A default-constructed Deadline is
/// unarmed and never expires; the engines check expired() once per time
/// step and once per Newton iteration, so a stuck solve cancels within
/// one iteration rather than one corner.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.budget_s_ = seconds;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }
  double budget_s() const { return budget_s_; }

 private:
  std::chrono::steady_clock::time_point at_{};
  double budget_s_ = 0.0;
  bool armed_ = false;
};

}  // namespace emc::robust
