#include "robust/error.hpp"

#include <cstdio>

namespace emc::robust {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kDcDivergence: return "dc_divergence";
    case FailureKind::kTransientDivergence: return "transient_divergence";
    case FailureKind::kSingularSystem: return "singular_system";
    case FailureKind::kPatternUnstable: return "pattern_unstable";
    case FailureKind::kDeadlineExceeded: return "deadline_exceeded";
    case FailureKind::kSinkFailure: return "sink_failure";
    case FailureKind::kInjectedFault: return "injected_fault";
  }
  return "unknown";
}

std::string SolveError::format(const SolveErrorInfo& info) {
  std::string out = info.site.empty() ? std::string("solve") : info.site;
  out += ": ";
  out += failure_kind_name(info.kind);
  char buf[64];
  if (!info.corner.empty()) {
    out += " [corner ";
    if (info.corner_index >= 0) {
      std::snprintf(buf, sizeof buf, "%ld ", info.corner_index);
      out += buf;
    }
    out += info.corner;
    out += "]";
  }
  if (info.t != 0.0) {
    std::snprintf(buf, sizeof buf, " at t = %.6g", info.t);
    out += buf;
  }
  if (info.dt > 0.0) {
    std::snprintf(buf, sizeof buf, " (dt %.3g)", info.dt);
    out += buf;
  }
  if (info.attempts > 0) {
    std::snprintf(buf, sizeof buf, " after %d attempt%s", info.attempts,
                  info.attempts == 1 ? "" : "s");
    out += buf;
  }
  if (!info.residual_history.empty()) {
    out += "; |dx| history:";
    for (double r : info.residual_history) {
      std::snprintf(buf, sizeof buf, " %.3g", r);
      out += buf;
    }
  }
  if (!info.detail.empty()) {
    out += "; ";
    out += info.detail;
  }
  return out;
}

SolveError::SolveError(SolveErrorInfo info)
    : std::runtime_error(format(info)), info_(std::move(info)) {}

SolveError with_corner(const SolveError& e, std::string corner_label,
                       std::size_t corner_index) {
  SolveErrorInfo info = e.info();
  info.corner = std::move(corner_label);
  info.corner_index = static_cast<long>(corner_index);
  return SolveError(std::move(info));
}

}  // namespace emc::robust
