#include "robust/journal.hpp"

#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

namespace emc::robust {

std::string exact_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_exact(const obs::Json& j) {
  if (j.is_string()) return std::strtod(j.as_string().c_str(), nullptr);
  return j.as_double();
}

std::string dump_line(const obs::Json& j) {
  std::string out = j.dump(0);
  std::string line;
  line.reserve(out.size());
  for (char c : out)
    if (c != '\n') line.push_back(c);
  return line;
}

JournalWriter::JournalWriter(const std::string& path) {
  // A journal killed mid-append ends in a partial line. Appending straight
  // after it would weld that fragment onto the next entry, turning a
  // droppable tail into corrupt-interior poison for the NEXT resume. The
  // fragment's corner was never acknowledged (load_journal drops it), so
  // it is dead weight: cut the file back to its last complete line before
  // appending. Every complete entry ends in '\n' (see append), so the
  // fragment is exactly the bytes past the final newline.
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    std::fseek(probe, 0, SEEK_END);
    long end = std::ftell(probe);
    long keep = 0;
    for (long at = end - 1; at >= 0; --at) {
      std::fseek(probe, at, SEEK_SET);
      if (std::fgetc(probe) == '\n') {
        keep = at + 1;
        break;
      }
    }
    std::fclose(probe);
    if (keep < end) (void)truncate(path.c_str(), static_cast<off_t>(keep));
  }
  f_ = std::fopen(path.c_str(), "a");
}

JournalWriter::~JournalWriter() {
  if (f_) std::fclose(f_);
}

void JournalWriter::append(const obs::Json& entry) {
  if (!f_) return;
  const std::string line = dump_line(entry);
  std::lock_guard<std::mutex> lk(mu_);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
}

std::vector<obs::Json> load_journal(const std::string& path) {
  std::vector<obs::Json> entries;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return entries;  // nothing to resume
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof buf, f);
    text.append(buf, got);
    if (got < sizeof buf) break;
  }
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool final_line = nl == std::string::npos;
    const std::string_view line(text.data() + pos,
                                (final_line ? text.size() : nl) - pos);
    pos = final_line ? text.size() : nl + 1;
    if (line.empty()) continue;
    try {
      entries.push_back(obs::Json::parse(line));
    } catch (const obs::JsonParseError&) {
      // A line the writer never finished: only tolerable at the tail.
      const bool tail = pos >= text.size();
      if (!tail)
        throw std::runtime_error("load_journal: corrupt interior line in " + path);
      break;
    }
  }
  return entries;
}

}  // namespace emc::robust
