// Deterministic fault-injection harness for the resilience layer.
//
// Tests and bench_robust install a FaultPlan; the circuit engines probe it
// at fixed sites (DC entry, Newton factorization, after every transient
// step, chunk delivery, the deadline check). With no plan installed the
// probe is a single relaxed atomic load of a null pointer — the production
// path pays nothing.
//
// Determinism contract: a spec keyed to one transient context is only
// probed by that transient's attempts, which run sequentially on whichever
// worker claimed the corner chunk — so fire decisions are identical for
// any worker count. The "spare" thresholds make escalation recovery
// deterministic too: instead of counting fires, a spec stops firing once
// the retry ladder's options clear the configured bar (e.g. spare_dense
// heals the fault the moment a retry forces the dense backend), so every
// attempt below that stage fails identically no matter how it was
// scheduled. Unkeyed specs match every context and are only deterministic
// in single-threaded runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace emc::robust {

/// Where the engines probe for injected faults.
enum class FaultSite {
  kDcSolve,        ///< dc_operating_point entry -> injected DC divergence
  kFactor,         ///< Newton factorization -> singular pivot
  kTransientStep,  ///< scalar engine, after a step's solve -> NaN poisoning
  kLaneStep,       ///< lane engine, per-lane after a step -> NaN poisoning
  kSinkWrite,      ///< chunk delivery -> sink write failure
  kDeadline,       ///< per-step deadline check -> forced overrun
};

const char* fault_site_name(FaultSite site);

/// ckt::SolverKind::kDense as an int — this header stays free of circuit
/// dependencies; engine.cpp static_asserts the value matches the enum.
inline constexpr int kSolverDenseAsInt = 1;

/// What the probing engine knows about the current attempt; spare
/// thresholds are evaluated against these fields.
struct FaultCtx {
  std::string_view key;  ///< TransientOptions::context (or per-lane key)
  int solver = -1;       ///< ckt::SolverKind of the attempt, as int
  double dt = 0.0;
  double gmin = 0.0;
  double dx_limit = 0.0;
};

/// One armed fault. Default: fires on every matching probe forever —
/// combine with spare thresholds (deterministic healing) or `remaining`
/// (counted fires) to let recovery paths succeed.
struct FaultSpec {
  FaultSite site = FaultSite::kTransientStep;
  std::string key;     ///< context to match; empty = any context
  long skip = 0;       ///< let the first N matching probes pass unharmed
  long remaining = -1; ///< fire at most this many times; -1 = unlimited

  // Escalation-aware sparing: the fault heals once a retry attempt clears
  // the bar (checked statelessly per probe, so healing is deterministic).
  bool spare_dense = false;          ///< don't fire when solver == kDense
  double spare_dt_below = 0.0;       ///< don't fire when dt < this
  double spare_gmin_at_least = 0.0;  ///< don't fire when gmin >= this
  double spare_dx_limit_below = 0.0; ///< don't fire when dx_limit < this
};

/// A set of armed faults. arm() everything before install — fire() is
/// thread-safe but arming concurrently with probes is not supported.
class FaultPlan {
 public:
  void arm(FaultSpec spec);

  /// True when some armed spec fires for this probe. Consumes skip /
  /// remaining budgets of the first matching spec.
  bool fire(FaultSite site, const FaultCtx& ctx);

  /// Total fires across all specs since construction.
  long fired() const;

 private:
  struct Slot {
    FaultSpec spec;
    long fired = 0;
  };
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  long fired_total_ = 0;
};

/// Process-wide plan used by the engine probes; nullptr uninstalls. The
/// plan must outlive its installation. Not reference-counted: uninstall
/// before destroying the plan.
void install_fault_plan(FaultPlan* plan);
FaultPlan* installed_fault_plan();

namespace detail {
extern std::atomic<FaultPlan*> g_fault_plan;
}

/// The engine-side probe: one relaxed-ish load when no plan is installed.
inline bool fault(FaultSite site, const FaultCtx& ctx) {
  FaultPlan* plan = detail::g_fault_plan.load(std::memory_order_acquire);
  return plan != nullptr && plan->fire(site, ctx);
}

/// RAII install/uninstall for tests and benches.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan) { install_fault_plan(&plan); }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace emc::robust
