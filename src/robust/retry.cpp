#include "robust/retry.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace emc::robust {

const char* retry_stage_name(int attempt) {
  switch (attempt) {
    case 0: return "base";
    case 1: return "dt/2";
    case 2: return "dense";
    case 3: return "gmin";
    case 4: return "damp";
  }
  return "beyond";
}

ckt::TransientOptions escalate(const ckt::TransientOptions& base, int attempt) {
  ckt::TransientOptions o = base;
  if (attempt >= 1) o.dt = base.dt * 0.5;
  if (attempt >= 2) o.solver = ckt::SolverKind::kDense;
  if (attempt >= 3) {
    o.gmin = std::max(o.gmin, 1e-9);
    o.max_newton *= 2;
  }
  if (attempt >= 4) {
    o.dx_limit *= 0.25;
    o.max_newton *= 2;
  }
  return o;
}

RetryOutcome run_with_escalation(
    const RetryPolicy& policy, const ckt::TransientOptions& base,
    const std::function<void(const ckt::TransientOptions&)>& body) {
  static const obs::Counter c_attempts("robust.retry.attempts");
  static const obs::Counter c_recovered("robust.retry.recovered");
  static const obs::Counter c_exhausted("robust.retry.exhausted");

  const int max_attempts =
      policy.enabled ? std::clamp(policy.max_attempts, 1, kMaxLadderStages) : 1;

  RetryOutcome out;
  for (int a = 0; a < max_attempts; ++a) {
    ckt::TransientOptions opt = escalate(base, a);
    if (!policy.refine_dt) opt.dt = base.dt;
    Deadline deadline;
    if (policy.enabled && policy.deadline_s > 0.0) {
      deadline = Deadline::after(policy.deadline_s);
      opt.deadline = &deadline;
    }
    ++out.attempts;
    c_attempts.add();
    try {
      body(opt);
      out.recovered = a > 0;
      if (out.recovered) c_recovered.add();
      return out;
    } catch (const SolveError& e) {
      out.failures.push_back(AttemptRecord{a, retry_stage_name(a), e.what()});
      if (a + 1 >= max_attempts) {
        c_exhausted.add();
        SolveErrorInfo info = e.info();
        info.attempts = out.attempts;
        std::string ladder = "ladder exhausted:";
        for (const AttemptRecord& rec : out.failures) {
          ladder += " [";
          ladder += rec.stage;
          ladder += "]";
        }
        info.detail = info.detail.empty() ? ladder : info.detail + "; " + ladder;
        throw SolveError(std::move(info));
      }
    }
  }
  return out;  // unreachable: the loop returns or throws
}

}  // namespace emc::robust
