#include "robust/fault.hpp"

namespace emc::robust {

namespace detail {
std::atomic<FaultPlan*> g_fault_plan{nullptr};
}

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kDcSolve: return "dc_solve";
    case FaultSite::kFactor: return "factor";
    case FaultSite::kTransientStep: return "transient_step";
    case FaultSite::kLaneStep: return "lane_step";
    case FaultSite::kSinkWrite: return "sink_write";
    case FaultSite::kDeadline: return "deadline";
  }
  return "unknown";
}

void FaultPlan::arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  slots_.push_back(Slot{std::move(spec), 0});
}

bool FaultPlan::fire(FaultSite site, const FaultCtx& ctx) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Slot& slot : slots_) {
    const FaultSpec& s = slot.spec;
    if (s.site != site) continue;
    if (!s.key.empty() && s.key != ctx.key) continue;
    // Stateless sparing first: a spared probe consumes no budget, so the
    // heal point depends only on the attempt's options, never on history.
    if (s.spare_dense && ctx.solver == kSolverDenseAsInt) continue;
    if (s.spare_dt_below > 0.0 && ctx.dt < s.spare_dt_below) continue;
    if (s.spare_gmin_at_least > 0.0 && ctx.gmin >= s.spare_gmin_at_least) continue;
    if (s.spare_dx_limit_below > 0.0 && ctx.dx_limit < s.spare_dx_limit_below) continue;
    if (slot.spec.skip > 0) {
      --slot.spec.skip;
      continue;
    }
    if (slot.spec.remaining == 0) continue;
    if (slot.spec.remaining > 0) --slot.spec.remaining;
    ++slot.fired;
    ++fired_total_;
    return true;
  }
  return false;
}

long FaultPlan::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_total_;
}

void install_fault_plan(FaultPlan* plan) {
  detail::g_fault_plan.store(plan, std::memory_order_release);
}

FaultPlan* installed_fault_plan() {
  return detail::g_fault_plan.load(std::memory_order_acquire);
}

}  // namespace emc::robust
