#include "emc/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace emc::spec {

// ------------------------------------------------------------ SegmentBuffer

SegmentBuffer::SegmentBuffer(std::size_t segment_len, double overlap) : seg_(segment_len) {
  if (seg_ < 2) throw std::invalid_argument("SegmentBuffer: segment_len must be >= 2");
  if (!(overlap >= 0.0 && overlap < 1.0))
    throw std::invalid_argument("SegmentBuffer: overlap must be in [0, 1)");
  hop_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg_) * (1.0 - overlap))));
  buf_.assign(seg_, 0.0);
}

void SegmentBuffer::reset() {
  fill_ = 0;
  first_sample_ = 0;
}

// --------------------------------------------------------- WelchAccumulator

WelchAccumulator::WelchAccumulator(double dt, std::size_t segment_len, Window win,
                                   double overlap)
    : fs_(1.0 / dt),
      assembler_(segment_len, overlap),
      wd_(make_window(win, segment_len)),
      plan_(segment_len),
      xw_(segment_len, 0.0),
      acc_(segment_len / 2 + 1, 0.0) {
  if (!(dt > 0.0)) throw std::invalid_argument("WelchAccumulator: dt must be positive");
}

void WelchAccumulator::push(std::span<const double> x) {
  assembler_.push(x, [&](std::span<const double> seg) {
    const std::size_t n = seg.size();
    for (std::size_t k = 0; k < n; ++k) xw_[k] = seg[k] * wd_.w[k];
    plan_.forward_real(xw_, bins_);
    // Identical per-segment arithmetic (and segment order) to welch_psd, so
    // the streamed PSD is bit-for-bit the monolithic one.
    const double scale = 1.0 / (fs_ * static_cast<double>(n) * wd_.noise_gain);
    for (std::size_t k = 0; k < bins_.size(); ++k) {
      const bool paired = k != 0 && !(n % 2 == 0 && k == n / 2);
      acc_[k] += std::norm(bins_[k]) * scale * (paired ? 2.0 : 1.0);
    }
    ++n_segments_;
    static const obs::Counter c_segments("spec.welch.segments");
    static const obs::Gauge g_bytes("spec.welch.state_bytes_peak");
    c_segments.add();
    g_bytes.set_max(state_bytes());
  });
}

Spectrum WelchAccumulator::psd() const {
  if (n_segments_ == 0)
    throw std::logic_error("WelchAccumulator::psd: no full segment accumulated");
  Spectrum out;
  out.df = fs_ / static_cast<double>(assembler_.segment_len());
  out.value = acc_;
  const double inv = 1.0 / static_cast<double>(n_segments_);
  for (double& v : out.value) v *= inv;
  return out;
}

void WelchAccumulator::reset() {
  assembler_.reset();
  std::fill(acc_.begin(), acc_.end(), 0.0);
  n_segments_ = 0;
}

std::size_t WelchAccumulator::state_bytes() const {
  return (assembler_.segment_len() + xw_.size() + acc_.size() + wd_.w.size()) *
             sizeof(double) +
         bins_.capacity() * sizeof(std::complex<double>);
}

// --------------------------------------------------- SegmentedEmiAccumulator

SegmentedEmiAccumulator::SegmentedEmiAccumulator(double t0, double dt,
                                                 const SegmentedScanOptions& opt)
    : t0_(t0), dt_(dt), opt_(opt), assembler_(opt.segment_len, opt.overlap) {
  if (!(dt > 0.0))
    throw std::invalid_argument("SegmentedEmiAccumulator: dt must be positive");
  if (opt.segment_len < 4)
    throw std::invalid_argument("SegmentedEmiAccumulator: segment_len must be >= 4");
}

void SegmentedEmiAccumulator::push(std::span<const double> x) {
  assembler_.push(x, [&](std::span<const double> seg) { measure(seg); });
}

void SegmentedEmiAccumulator::measure(std::span<const double> seg) {
  const double t_seg =
      t0_ + dt_ * static_cast<double>(assembler_.next_segment_start());
  sig::Waveform w(t_seg, dt_, std::vector<double>(seg.begin(), seg.end()));
  const EmiScan scan = scanner_.scan(w, opt_.rx);
  static const obs::Counter c_segments("spec.stream.segments");
  static const obs::Gauge g_bytes("spec.stream.state_bytes_peak");
  c_segments.add();
  g_bytes.set_max(state_bytes());

  if (n_segments_ == 0) {
    freq_ = scan.freq;
    peak_db_ = scan.peak_dbuv;
    qp_db_ = scan.quasi_peak_dbuv;
    avg_v_.resize(scan.size());
    for (std::size_t k = 0; k < scan.size(); ++k)
      avg_v_[k] = 1e-6 * std::pow(10.0, scan.average_dbuv[k] / 20.0);
    skipped_points_ = scan.skipped_points;
  } else {
    // Equal-length segments at one dt share the scan grid by construction.
    for (std::size_t k = 0; k < freq_.size(); ++k) {
      peak_db_[k] = std::max(peak_db_[k], scan.peak_dbuv[k]);
      qp_db_[k] = std::max(qp_db_[k], scan.quasi_peak_dbuv[k]);
      avg_v_[k] += 1e-6 * std::pow(10.0, scan.average_dbuv[k] / 20.0);
    }
  }
  ++n_segments_;
}

EmiScan SegmentedEmiAccumulator::result() const {
  if (n_segments_ == 0)
    throw std::logic_error("SegmentedEmiAccumulator::result: no segment completed");
  EmiScan out;
  out.receiver = opt_.rx.name;
  out.freq = freq_;
  out.peak_dbuv = peak_db_;
  out.quasi_peak_dbuv = qp_db_;
  out.average_dbuv.resize(avg_v_.size());
  const double inv = 1.0 / static_cast<double>(n_segments_);
  for (std::size_t k = 0; k < avg_v_.size(); ++k)
    out.average_dbuv[k] = volts_to_dbuv(avg_v_[k] * inv);
  out.skipped_points = skipped_points_;
  return out;
}

std::size_t SegmentedEmiAccumulator::state_bytes() const {
  return (assembler_.segment_len() + freq_.size() + peak_db_.size() + qp_db_.size() +
          avg_v_.size()) *
         sizeof(double);
}

// ------------------------------------------------------- StreamingEmiSink

StreamingEmiSink::StreamingEmiSink(std::size_t channel, const SegmentedScanOptions& opt)
    : channel_(channel), opt_(opt) {}

void StreamingEmiSink::begin(const sig::StreamInfo& info) {
  sig::SampleSink::begin(info);
  if (channel_ >= info.channels)
    throw std::invalid_argument("StreamingEmiSink: channel out of range");
  acc_.clear();
  acc_.emplace_back(info.t0, info.dt, opt_);
}

void StreamingEmiSink::consume(const sig::SampleChunk& chunk) {
  buf_.resize(chunk.frames);
  for (std::size_t f = 0; f < chunk.frames; ++f)
    buf_[f] = chunk.data[f * chunk.channels + channel_];
  acc_.front().push(buf_);
}

EmiScan StreamingEmiSink::scan() const { return accumulator().result(); }

const SegmentedEmiAccumulator& StreamingEmiSink::accumulator() const {
  if (acc_.empty())
    throw std::logic_error("StreamingEmiSink: stream never began");
  return acc_.front();
}

}  // namespace emc::spec
