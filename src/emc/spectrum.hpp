// Spectral analysis of sig::Waveform records: windowing, single-shot
// amplitude spectra (the EMC engineer's dBuV-vs-frequency view) and
// Welch-averaged power spectral density.
#pragma once

#include <cstddef>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::spec {

/// Analysis windows. All are generated in DFT-even ("periodic") form so a
/// bin-centered tone is measured exactly.
enum class Window {
  kRectangular,  ///< no taper; exact for coherently sampled periodic records
  kHann,         ///< general-purpose, -31.5 dB sidelobes
  kFlatTop,      ///< amplitude-accurate (<0.01 dB scalloping), wide main lobe
};

/// Window samples plus the gains needed to undo its effect:
/// coherent_gain = mean(w) corrects tone amplitudes, noise_gain = mean(w^2)
/// corrects power/PSD estimates.
struct WindowData {
  std::vector<double> w;
  double coherent_gain = 1.0;
  double noise_gain = 1.0;
};

WindowData make_window(Window kind, std::size_t n);

/// A one-sided spectrum on the uniform frequency grid k * df, k = 0..n/2
/// (interior bins already carry their conjugate pair's contribution).
/// `value` units depend on the producer: volts (peak) for
/// amplitude_spectrum, dBuV for amplitude_spectrum_dbuv, V^2/Hz for
/// welch_psd.
struct Spectrum {
  double df = 0.0;
  std::vector<double> value;

  std::size_t size() const { return value.size(); }
  double frequency_at(std::size_t k) const { return df * static_cast<double>(k); }
  double operator[](std::size_t k) const { return value[k]; }
};

/// RMS voltage -> dBuV (the EMI-receiver unit): 20*log10(v_rms / 1 uV).
/// Clamped at -120 dBuV so exact zeros stay finite.
double volts_to_dbuv(double v_rms);

/// Single-shot amplitude spectrum: window, FFT, single-sided fold and
/// coherent-gain correction. value[k] is the peak amplitude (volts) of the
/// spectral component at k*df; a pure tone A*sin(2*pi*f*t) on a bin reads
/// exactly A.
Spectrum amplitude_spectrum(const sig::Waveform& w, Window win = Window::kHann);

/// Amplitude spectrum converted to dBuV of the equivalent sine RMS
/// (value / sqrt(2), except the DC bin which is already an RMS level).
Spectrum amplitude_spectrum_dbuv(const sig::Waveform& w, Window win = Window::kHann);

/// Welch-averaged one-sided PSD in V^2/Hz: segments of `segment_len`
/// samples with `overlap` fractional overlap (default 50%), windowed,
/// periodograms noise-gain corrected and averaged. sum(value)*df
/// approximates the mean-square value of the record.
Spectrum welch_psd(const sig::Waveform& w, std::size_t segment_len,
                   Window win = Window::kHann, double overlap = 0.5);

}  // namespace emc::spec
