#include "emc/limits.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace emc::spec {

bool LimitMask::covers(double f) const {
  return !points.empty() && f >= points.front().f && f <= points.back().f;
}

double LimitMask::at(double f) const {
  if (!covers(f)) return std::numeric_limits<double>::quiet_NaN();
  // Walk segments from the high-frequency end so that at a step (two
  // breakpoints sharing a frequency) the upper segment wins.
  for (std::size_t i = points.size() - 1; i > 0; --i) {
    const Point& a = points[i - 1];
    const Point& b = points[i];
    if (f >= a.f && f <= b.f) {
      if (a.f == b.f) return b.limit_dbuv;
      const double u = (std::log10(f) - std::log10(a.f)) / (std::log10(b.f) - std::log10(a.f));
      return a.limit_dbuv + u * (b.limit_dbuv - a.limit_dbuv);
    }
  }
  return points.front().limit_dbuv;
}

LimitMask LimitMask::cispr32_class_a_conducted_qp() {
  return {"CISPR 32 class A conducted QP",
          {{150e3, 79.0}, {500e3, 79.0}, {500e3, 73.0}, {30e6, 73.0}}};
}

LimitMask LimitMask::cispr32_class_a_conducted_avg() {
  return {"CISPR 32 class A conducted AVG",
          {{150e3, 66.0}, {500e3, 66.0}, {500e3, 60.0}, {30e6, 60.0}}};
}

LimitMask LimitMask::cispr32_class_b_conducted_qp() {
  return {"CISPR 32 class B conducted QP",
          {{150e3, 66.0}, {500e3, 56.0}, {5e6, 56.0}, {5e6, 60.0}, {30e6, 60.0}}};
}

LimitMask LimitMask::cispr32_class_b_conducted_avg() {
  return {"CISPR 32 class B conducted AVG",
          {{150e3, 56.0}, {500e3, 46.0}, {5e6, 46.0}, {5e6, 50.0}, {30e6, 50.0}}};
}

ComplianceReport check_compliance(std::span<const double> freq,
                                  std::span<const double> level_dbuv,
                                  const LimitMask& mask, std::string what,
                                  std::size_t skipped_scan_points) {
  if (freq.size() != level_dbuv.size())
    throw std::invalid_argument("check_compliance: freq/level size mismatch");

  ComplianceReport rep;
  rep.mask_name = mask.name;
  rep.what = std::move(what);
  rep.skipped_scan_points = skipped_scan_points;
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < freq.size(); ++k) {
    if (!mask.covers(freq[k])) continue;
    MarginPoint p;
    p.f = freq[k];
    p.level_dbuv = level_dbuv[k];
    p.limit_dbuv = mask.at(freq[k]);
    p.margin_db = p.limit_dbuv - p.level_dbuv;
    if (p.margin_db < worst) {
      worst = p.margin_db;
      rep.worst_index = rep.points.size();
    }
    rep.points.push_back(p);
  }
  rep.worst_margin_db = rep.points.empty() ? 0.0 : worst;
  rep.pass = rep.points.empty() || worst >= 0.0;
  return rep;
}

ComplianceReport check_compliance(const Spectrum& spectrum_dbuv, const LimitMask& mask,
                                  std::string what) {
  std::vector<double> freq(spectrum_dbuv.size());
  for (std::size_t k = 0; k < freq.size(); ++k) freq[k] = spectrum_dbuv.frequency_at(k);
  return check_compliance(freq, spectrum_dbuv.value, mask, std::move(what));
}

double worst_margin(std::span<const ComplianceReport> reports) {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& r : reports)
    if (!r.points.empty()) worst = std::min(worst, r.worst_margin_db);
  return worst;
}

std::size_t worst_report_index(std::span<const ComplianceReport> reports) {
  std::size_t idx = SIZE_MAX;
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < reports.size(); ++k) {
    if (reports[k].points.empty()) continue;
    if (reports[k].worst_margin_db < worst) {
      worst = reports[k].worst_margin_db;
      idx = k;
    }
  }
  return idx;
}

ComplianceReport merge_reports(std::span<const ComplianceReport> reports,
                               std::string what) {
  ComplianceReport out;
  out.what = std::move(what);
  const std::size_t wi = worst_report_index(reports);
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const auto& r = reports[k];
    if (out.mask_name.empty())
      out.mask_name = r.mask_name;
    else if (!r.mask_name.empty() && r.mask_name != out.mask_name)
      out.mask_name += " + " + r.mask_name;
    if (k == wi) out.worst_index = out.points.size() + r.worst_index;
    out.points.insert(out.points.end(), r.points.begin(), r.points.end());
    out.pass = out.pass && r.pass;
    // Max, not sum: the canonical merge folds several detector reports of
    // the *same* scan (the CISPR 32 QP+AVG criterion), where summing
    // would double-count the one scan's dropped points.
    out.skipped_scan_points = std::max(out.skipped_scan_points, r.skipped_scan_points);
  }
  out.worst_margin_db = out.points.empty() ? 0.0 : worst_margin(reports);
  return out;
}

std::string ComplianceReport::summary() const {
  char buf[256];
  const std::string label = what.empty() ? "spectrum" : what;
  std::string text;
  if (points.empty()) {
    std::snprintf(buf, sizeof buf, "%s vs %s: no points in mask range", label.c_str(),
                  mask_name.c_str());
    text = buf;
  } else {
    const MarginPoint& w = points[worst_index];
    std::snprintf(buf, sizeof buf,
                  "%s vs %s: %s, worst margin %+.1f dB at %.4g MHz (%.1f dBuV, limit %.1f)",
                  label.c_str(), mask_name.c_str(), pass ? "PASS" : "FAIL",
                  worst_margin_db, w.f / 1e6, w.level_dbuv, w.limit_dbuv);
    text = buf;
  }
  if (skipped_scan_points > 0) {
    std::snprintf(buf, sizeof buf,
                  " [TRUNCATED SCAN: %zu points above the record's Nyquist rate were "
                  "never measured]",
                  skipped_scan_points);
    text += buf;
  }
  return text;
}

}  // namespace emc::spec
