// EMI-receiver emulation: a swept-frequency measurement of a time-domain
// record the way a CISPR 16-1-1 receiver would see it. At each scan
// frequency the record is passed through a Gaussian resolution-bandwidth
// filter (RBW = -6 dB width), the analytic-signal envelope is extracted,
// and three detectors read it out: peak, average, and the classic
// quasi-peak charge/discharge circuit.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "emc/fft.hpp"
#include "signal/waveform.hpp"

namespace emc::spec {

struct ReceiverSettings {
  std::string name = "custom";
  double f_start = 0.0;          ///< first scan frequency [Hz]
  double f_stop = 0.0;           ///< last scan frequency [Hz]
  std::size_t n_points = 100;    ///< log-spaced scan frequencies
  double rbw = 0.0;              ///< -6 dB resolution bandwidth [Hz]
  double tau_charge = 0.0;       ///< quasi-peak charge time constant [s]
  double tau_discharge = 0.0;    ///< quasi-peak discharge time constant [s]

  /// CISPR 16 band A (9-150 kHz): RBW 200 Hz, QP 45 ms / 500 ms.
  static ReceiverSettings cispr_band_a();
  /// CISPR 16 band B (150 kHz-30 MHz): RBW 9 kHz, QP 1 ms / 160 ms.
  static ReceiverSettings cispr_band_b();

  /// Copy with QP time constants scaled by `s`. Real quasi-peak constants
  /// assume >= 1 s dwell per frequency; short simulated records need the
  /// dynamics compressed to stay meaningful (documented in the report).
  ReceiverSettings with_time_scale(double s) const;
};

/// Swept detector readings, all in dBuV, on the log-spaced `freq` grid.
struct EmiScan {
  std::string receiver;
  std::vector<double> freq;
  std::vector<double> peak_dbuv;
  std::vector<double> quasi_peak_dbuv;
  std::vector<double> average_dbuv;

  std::size_t size() const { return freq.size(); }
};

/// Reusable swept-measurement engine for batched receiver runs. One
/// scanner keeps the FFT plan and both transform buffers alive across
/// scan() calls, so a corner sweep measuring hundreds of equally sized
/// records plans the FFT exactly once per worker (the plan is rebuilt only
/// when the record length changes). A scanner is cheap state, not a
/// shared resource: give each concurrent worker its own instance.
class EmiScanner {
 public:
  /// Run the swept measurement. Per-frequency buffers are reused across
  /// the scan and across calls. Scan frequencies above the record's
  /// Nyquist rate are clipped out. Throws std::invalid_argument when the
  /// record is too short to resolve the requested RBW (duration must be
  /// at least ~1/(4.8*rbw), or every detector could silently read the
  /// noise floor).
  EmiScan scan(const sig::Waveform& w, const ReceiverSettings& s);

 private:
  std::optional<FftPlan> plan_;
  std::vector<std::complex<double>> x_;  ///< forward transform of the record
  std::vector<std::complex<double>> y_;  ///< per-frequency filtered copy
};

/// One-shot convenience wrapper around EmiScanner (plans the FFT per call).
EmiScan emi_scan(const sig::Waveform& w, const ReceiverSettings& s);

}  // namespace emc::spec
