// EMI-receiver emulation: a swept-frequency measurement of a time-domain
// record the way a CISPR 16-1-1 receiver would see it. At each scan
// frequency the record is passed through a Gaussian resolution-bandwidth
// filter (RBW = -6 dB width), the analytic-signal envelope is extracted,
// and three detectors read it out: peak, average, and the classic
// quasi-peak charge/discharge circuit.
//
// Two demodulation paths produce that envelope. The reference path
// inverse-transforms the full-length filtered spectrum per scan point
// (O(n log n) per point). The zoom-IFFT path gathers only the K bins the
// Gaussian RBW window occupies, frequency-shifts them to baseband and
// inverse-transforms at a decimated rate, then feeds the detectors
// envelope samples linearly interpolated from that short exact envelope —
// O(K log K) per point plus a light O(n) detector pass with no
// per-sample sqrt or complex arithmetic. Detector readings agree with the
// reference to well under 0.01 dB (the interpolation grid oversamples the
// occupied band 32x); tests assert it.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "emc/fft.hpp"
#include "signal/waveform.hpp"

namespace emc::spec {

/// How EmiScanner demodulates the envelope at each scan point.
enum class ScanMethod {
  kAuto,       ///< zoom-IFFT whenever it actually decimates, else reference
  kZoom,       ///< always zoom-IFFT (even when the occupied band is wide)
  kReference,  ///< full-length inverse FFT per point (the validation path)
};

struct ReceiverSettings {
  std::string name = "custom";
  double f_start = 0.0;          ///< first scan frequency [Hz]
  double f_stop = 0.0;           ///< last scan frequency [Hz]
  std::size_t n_points = 100;    ///< log-spaced scan frequencies
  double rbw = 0.0;              ///< -6 dB resolution bandwidth [Hz]
  double tau_charge = 0.0;       ///< quasi-peak charge time constant [s]
  double tau_discharge = 0.0;    ///< quasi-peak discharge time constant [s]
  ScanMethod method = ScanMethod::kAuto;  ///< envelope demodulation path

  /// CISPR 16 band A (9-150 kHz): RBW 200 Hz, QP 45 ms / 500 ms.
  static ReceiverSettings cispr_band_a();
  /// CISPR 16 band B (150 kHz-30 MHz): RBW 9 kHz, QP 1 ms / 160 ms.
  static ReceiverSettings cispr_band_b();

  /// Copy with QP time constants scaled by `s`. Real quasi-peak constants
  /// assume >= 1 s dwell per frequency; short simulated records need the
  /// dynamics compressed to stay meaningful (documented in the report).
  ReceiverSettings with_time_scale(double s) const;
};

/// Swept detector readings, all in dBuV, on the log-spaced `freq` grid.
struct EmiScan {
  std::string receiver;
  std::vector<double> freq;
  std::vector<double> peak_dbuv;
  std::vector<double> quasi_peak_dbuv;
  std::vector<double> average_dbuv;

  /// Scan points dropped because their frequency was at or above the
  /// record's Nyquist rate: freq.size() + skipped_points equals the
  /// number of frequencies the scan laid out (max(2, n_points) — the
  /// grid needs both endpoints). A nonzero value means the record was too
  /// coarsely sampled to cover the requested span — compliance checks fed
  /// this scan must surface it, or a truncated scan can false-PASS a mask.
  std::size_t skipped_points = 0;

  /// How each measured point was demodulated (zoom_points +
  /// reference_points + points whose RBW window covered no bin ==
  /// freq.size()) — the per-scan record of the zoom-vs-reference decision.
  std::size_t zoom_points = 0;
  std::size_t reference_points = 0;

  /// Points added by adaptive refinement (crossing bisection / minimum
  /// polishing) rather than the initial grid. EmiScanner::measure leaves
  /// this at 0; AdaptiveScanner sets it on the merged scan it emits.
  std::size_t refined_points = 0;

  std::size_t size() const { return freq.size(); }
};

/// The log-spaced scan grid every fixed receiver pass uses: exact
/// endpoints (exp(log(x)) need not round-trip, and downstream mask checks
/// treat band edges as inclusive), interior points spaced uniformly in
/// log f. f_lo == f_hi collapses to the single point {f_lo} regardless of
/// `n`; n == 1 yields {f_lo}. Throws std::invalid_argument on n == 0,
/// f_lo <= 0 or f_hi < f_lo. Bit-identical to the grid EmiScanner::scan
/// lays out (it calls this helper).
std::vector<double> make_log_grid(double f_lo, double f_hi, std::size_t n);

/// Reusable swept-measurement engine for batched receiver runs. One
/// scanner keeps the FFT plans and all transform/envelope buffers alive
/// across scan() calls, so a corner sweep measuring hundreds of equally
/// sized records plans the FFTs exactly once per worker (plans are rebuilt
/// only when the record length or occupied-band size changes). A scanner
/// is cheap state, not a shared resource: give each concurrent worker its
/// own instance.
class EmiScanner {
 public:
  /// Run the swept measurement. Per-frequency buffers are reused across
  /// the scan and across calls. Scan frequencies at or above the record's
  /// Nyquist rate are dropped and counted in EmiScan::skipped_points.
  /// Throws std::invalid_argument when the record is too short to resolve
  /// the requested RBW (duration must be at least ~1/(4.8*rbw), or every
  /// detector could silently read the noise floor).
  /// Equivalent to load_record(w) + measure(s, make_log_grid(...)).
  EmiScan scan(const sig::Waveform& w, const ReceiverSettings& s);

  /// Forward-transform the record once and cache its half-spectrum. Every
  /// subsequent measure() call reuses it, so an adaptive scan pays the
  /// O(n log n) transform once and each refined point costs only a
  /// zoom-IFFT gather + detector pass. Throws when the record is shorter
  /// than 4 samples.
  void load_record(const sig::Waveform& w);
  bool has_record() const { return rec_n_ >= 4; }

  /// Measure the loaded record at explicit scan frequencies (need not be
  /// log-spaced; order is preserved in the output). Frequencies at or
  /// above the record's Nyquist rate are dropped and counted in
  /// EmiScan::skipped_points. `s.f_start/f_stop/n_points` are ignored —
  /// only the RBW, detector time constants and demodulation method apply.
  /// Throws when no record is loaded or a frequency is non-positive.
  EmiScan measure(const ReceiverSettings& s, std::span<const double> freqs);

 private:
  /// One scan point: its carrier and the occupied bin range (inclusive;
  /// k_lo > k_hi when the Gaussian window covers no positive bin).
  struct PointTask {
    double fc = 0.0;
    std::size_t k_lo = 1;
    std::size_t k_hi = 0;
  };
  /// Detector readings in envelope volts (not yet dBuV).
  struct Readings {
    double peak = 0.0;
    double qp = 0.0;
    double avg = 0.0;
  };
  /// Per-scan constants shared by both demodulation paths.
  struct ScanCtx {
    std::size_t n = 0;  ///< record length
    double df = 0.0;    ///< bin spacing fs/n
    double alpha = 0.0; ///< Gaussian RBW exponent
    double kc = 0.0;    ///< per-sample QP charge factor exp(-dt/tau_c)
    double kd = 0.0;    ///< per-sample QP discharge factor exp(-dt/tau_d)
  };

  Readings demod_reference(const ScanCtx& c, const PointTask& t);
  /// Demodulate `count` (1..4) consecutive zoom-eligible scan points
  /// sharing one decimated length n_env; the detector recursions of the
  /// whole block run interleaved in a single pass over the record, which
  /// hides the serial latency of the quasi-peak update chain.
  void demod_zoom_block(const ScanCtx& c, const PointTask* tasks, std::size_t count,
                        std::size_t n_env, Readings* out);

  std::optional<FftPlan> plan_;
  std::vector<std::complex<double>> spectrum_;  ///< n/2+1 bins of the record
  std::size_t rec_n_ = 0;   ///< loaded record length (0 = none)
  double rec_dt_ = 0.0;     ///< loaded record sample interval [s]
  std::vector<PointTask> tasks_;    ///< per-scan point list, reused across calls
  std::vector<Readings> readings_;  ///< per-scan detector outputs, reused

  // Reference path: sparse spectral buffer (zero outside the previously
  // occupied bin range, cleared surgically per point) and the time-domain
  // output of the out-of-place inverse. Sized lazily on first use.
  std::vector<std::complex<double>> y_;
  std::vector<std::complex<double>> z_;
  std::size_t prev_lo_ = 1;  ///< occupied range in y_; lo > hi means none
  std::size_t prev_hi_ = 0;

  // Zoom path: the small decimated plan (rebuilt only when n_env changes),
  // its transform buffer and up to 4 decimated envelopes per block.
  std::optional<FftPlan> zoom_plan_;
  std::vector<std::complex<double>> zoom_buf_;
  std::vector<double> zoom_env_;  ///< block-major, 4 * n_env magnitudes
};

/// One-shot convenience wrapper around EmiScanner (plans the FFT per call).
EmiScan emi_scan(const sig::Waveform& w, const ReceiverSettings& s);

/// Largest |a - b| in dB across all three detector traces of two scans of
/// the same span — the zoom-vs-reference agreement metric the tests and
/// benches gate on (< 0.01 dB). Compares up to the shorter scan.
double max_detector_delta_db(const EmiScan& a, const EmiScan& b);

}  // namespace emc::spec
