// Emission-limit masks and compliance checking: the final stage of the
// EMC-assessment pipeline. A LimitMask is a piecewise-log-linear limit
// line in dBuV vs. frequency (CISPR 32 conducted masks built in,
// user-defined masks via breakpoints); check_compliance scores a measured
// spectrum against it and reports per-point and worst-case margins.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "emc/spectrum.hpp"

namespace emc::spec {

/// Frequency-dependent emission limit. Between breakpoints the limit is
/// interpolated linearly in log10(f) (the shape CISPR masks are drawn in);
/// two breakpoints at the same frequency encode a step, with the
/// higher-frequency segment taking effect at the boundary. Frequencies
/// outside [points.front().f, points.back().f] are not covered.
struct LimitMask {
  struct Point {
    double f = 0.0;           ///< breakpoint frequency [Hz]
    double limit_dbuv = 0.0;  ///< limit at that frequency [dBuV]
  };

  std::string name;
  std::vector<Point> points;  ///< sorted by frequency, non-decreasing

  bool covers(double f) const;
  /// Limit at `f` in dBuV; quiet NaN when not covered.
  double at(double f) const;

  // CISPR 32 conducted emission limits at the mains port (quasi-peak and
  // average detectors), 150 kHz - 30 MHz.
  static LimitMask cispr32_class_a_conducted_qp();
  static LimitMask cispr32_class_a_conducted_avg();
  static LimitMask cispr32_class_b_conducted_qp();
  static LimitMask cispr32_class_b_conducted_avg();
};

/// One scored frequency point of a compliance check.
struct MarginPoint {
  double f = 0.0;
  double level_dbuv = 0.0;
  double limit_dbuv = 0.0;
  double margin_db = 0.0;  ///< limit - level; negative = violation
};

struct ComplianceReport {
  std::string mask_name;
  std::string what;                  ///< label of the spectrum under test
  std::vector<MarginPoint> points;   ///< only frequencies the mask covers
  double worst_margin_db = 0.0;      ///< min margin; meaningless when empty
  std::size_t worst_index = 0;       ///< into `points`
  bool pass = true;

  /// Scan points the measurement dropped before scoring (EmiScan::
  /// skipped_points: requested frequencies at/above the record's Nyquist
  /// rate). A nonzero count means part of the mask range was never
  /// measured, so `pass` is a verdict on a truncated scan — summary()
  /// flags it, and merge_reports() carries the worst input's count
  /// forward (detector reports of one scan share the same truncation).
  std::size_t skipped_scan_points = 0;

  /// The scored point with the smallest margin, or nullptr when the mask
  /// covered nothing (callers print/aggregate the worst point constantly;
  /// `points[worst_index]` without the empty-guard is a recurring bug).
  const MarginPoint* worst_point() const {
    return points.empty() ? nullptr : &points[worst_index];
  }

  /// One-line human-readable verdict.
  std::string summary() const;
};

/// Minimum worst margin across several reports, skipping reports whose
/// mask covered no points. Returns +infinity when nothing was scored.
double worst_margin(std::span<const ComplianceReport> reports);

/// Index of the report with the smallest worst margin (reports with no
/// covered points never win). SIZE_MAX when nothing was scored.
std::size_t worst_report_index(std::span<const ComplianceReport> reports);

/// Fold several reports into one combined verdict — e.g. the CISPR 32
/// dual-detector criterion (QP and AVG checks must both pass) or every
/// corner of a scenario sweep. Passes iff every input passes; the worst
/// margin / worst point come from the worst input report; `points`
/// concatenates all scored points in input order.
ComplianceReport merge_reports(std::span<const ComplianceReport> reports,
                               std::string what = "");

/// Score (freq, level) pairs against a mask. Points the mask does not
/// cover are skipped; an empty intersection yields pass = true with no
/// points (the summary says so). Pass the producing scan's
/// EmiScan::skipped_points as `skipped_scan_points` so a truncated
/// measurement is surfaced in the report instead of silently passing.
ComplianceReport check_compliance(std::span<const double> freq,
                                  std::span<const double> level_dbuv,
                                  const LimitMask& mask, std::string what = "",
                                  std::size_t skipped_scan_points = 0);

/// Convenience overload for a uniform-grid dBuV spectrum.
ComplianceReport check_compliance(const Spectrum& spectrum_dbuv, const LimitMask& mask,
                                  std::string what = "");

}  // namespace emc::spec
