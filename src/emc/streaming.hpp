// Streaming spectral estimation: the emc-side consumers of the chunked
// transient pipeline. Both classes accept samples in arbitrary-size pushes
// and hold O(segment) state, never the record:
//
// * WelchAccumulator — per-chunk windowed-segment PSD accumulation with
//   overlap carry. Feeding it a record chunk by chunk reproduces
//   welch_psd() of the whole record bit for bit (same segments, same
//   order, same arithmetic), so the streamed path needs no accuracy
//   budget at all.
// * SegmentedEmiAccumulator — runs the swept EMI receiver on each
//   completed segment and folds the per-segment detector readings into
//   one combined scan (peak/quasi-peak: max across segments; average:
//   mean of the linear envelope averages). For the repetitive stimuli the
//   sweep runs (periodic PRBS patterns), segment detectors track the
//   monolithic ones to well under 0.1 dB; tests bound it across
//   segment-length and overlap corners.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emc/fft.hpp"
#include "emc/receiver.hpp"
#include "emc/spectrum.hpp"
#include "signal/sample_sink.hpp"

namespace emc::spec {

/// Assembles pushed samples into overlapping segments: every time
/// `segment_len` samples are buffered, emit(segment) fires and the buffer
/// keeps the (segment_len - hop)-sample overlap tail. Hop derivation
/// matches welch_psd exactly, so a streamed record visits the same
/// segments in the same order as the monolithic call.
class SegmentBuffer {
 public:
  SegmentBuffer(std::size_t segment_len, double overlap);

  std::size_t segment_len() const { return seg_; }
  std::size_t hop() const { return hop_; }

  template <typename Fn>
  void push(std::span<const double> x, Fn&& emit) {
    std::size_t i = 0;
    while (i < x.size()) {
      const std::size_t take = std::min(x.size() - i, seg_ - fill_);
      std::copy(x.begin() + static_cast<std::ptrdiff_t>(i),
                x.begin() + static_cast<std::ptrdiff_t>(i + take),
                buf_.begin() + static_cast<std::ptrdiff_t>(fill_));
      fill_ += take;
      i += take;
      if (fill_ == seg_) {
        emit(std::span<const double>(buf_.data(), seg_));
        // Keep the overlap tail; the next segment starts hop_ later.
        std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(hop_), buf_.end(),
                  buf_.begin());
        fill_ = seg_ - hop_;
        first_sample_ += hop_;
      }
    }
  }

  /// Global sample index of the next segment's first sample.
  std::size_t next_segment_start() const { return first_sample_; }

  void reset();

 private:
  std::size_t seg_;
  std::size_t hop_;
  std::vector<double> buf_;
  std::size_t fill_ = 0;
  std::size_t first_sample_ = 0;
};

/// Chunk-fed Welch PSD: push() samples in any granularity, read psd() at
/// any point. psd() after streaming a whole record equals
/// welch_psd(record, segment_len, win, overlap) exactly.
class WelchAccumulator {
 public:
  /// `dt` is the sample spacing of the stream (fs = 1/dt).
  WelchAccumulator(double dt, std::size_t segment_len, Window win = Window::kHann,
                   double overlap = 0.5);

  void push(std::span<const double> x);

  std::size_t segments() const { return n_segments_; }

  /// Average of the accumulated periodograms. Throws std::logic_error
  /// when no full segment has been seen yet.
  Spectrum psd() const;

  /// Drop all accumulated state (carry and averages).
  void reset();

  /// Bytes of streaming state (segment carry + accumulator + FFT scratch):
  /// the O(segment) footprint the memory benches report.
  std::size_t state_bytes() const;

 private:
  double fs_;
  SegmentBuffer assembler_;
  WindowData wd_;
  FftPlan plan_;
  std::vector<double> xw_;                  ///< windowed-segment scratch
  std::vector<std::complex<double>> bins_;  ///< forward-transform output
  std::vector<double> acc_;                 ///< summed one-sided periodograms
  std::size_t n_segments_ = 0;
};

/// Segment geometry + receiver settings of a segmented EMI measurement.
struct SegmentedScanOptions {
  std::size_t segment_len = 0;  ///< samples per receiver segment (required)
  double overlap = 0.0;         ///< fractional overlap between segments, [0, 1)
  ReceiverSettings rx;          ///< receiver applied to every segment
};

/// Chunk-fed swept EMI receiver: every completed segment is measured with
/// the reusable EmiScanner and folded into combined detector readings, so
/// arbitrarily long records pass through O(segment) memory. All segments
/// share one scan-frequency grid (equal length and dt), making the
/// combination well-defined per scan point.
class SegmentedEmiAccumulator {
 public:
  SegmentedEmiAccumulator(double t0, double dt, const SegmentedScanOptions& opt);

  void push(std::span<const double> x);

  std::size_t segments() const { return n_segments_; }

  /// Combined scan over all completed segments. Throws std::logic_error
  /// when no segment has completed yet.
  EmiScan result() const;

  /// Bytes of streaming state (segment carry + scanner-independent
  /// combination state; the scanner's own scratch is O(segment) too).
  std::size_t state_bytes() const;

 private:
  void measure(std::span<const double> seg);

  double t0_;
  double dt_;
  SegmentedScanOptions opt_;
  SegmentBuffer assembler_;
  EmiScanner scanner_;
  std::size_t n_segments_ = 0;

  // Per-scan-point combination state, filled by the first segment.
  std::vector<double> freq_;
  std::vector<double> peak_db_;  ///< max over segments
  std::vector<double> qp_db_;    ///< max over segments
  std::vector<double> avg_v_;    ///< sum of linear envelope averages [V]
  std::size_t skipped_points_ = 0;
};

/// SampleSink adapter running a SegmentedEmiAccumulator over one channel
/// of a streamed transient: plug it into run_transient_streamed and read
/// scan() afterwards — a full transient -> EMI measurement with no record
/// ever materialized. The accumulator is built lazily in begin(), where
/// the stream's t0/dt become known.
class StreamingEmiSink final : public sig::SampleSink {
 public:
  StreamingEmiSink(std::size_t channel, const SegmentedScanOptions& opt);

  void begin(const sig::StreamInfo& info) override;
  void consume(const sig::SampleChunk& chunk) override;

  /// Valid after the stream finished (or any time >= 1 segment completed).
  EmiScan scan() const;
  const SegmentedEmiAccumulator& accumulator() const;

 private:
  std::size_t channel_;
  SegmentedScanOptions opt_;
  std::vector<double> buf_;
  // Rebuilt per stream in begin(); vector-of-one avoids an optional dance.
  std::vector<SegmentedEmiAccumulator> acc_;
};

}  // namespace emc::spec
