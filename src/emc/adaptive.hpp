// Adaptive mask-driven frequency sampling: a multi-stage scan planner
// that turns the fixed log-grid receiver scan into a certified margin
// oracle (De Stefano et al.'s coarse-pass -> local-refinement ->
// certified-bracketing template).
//
// Stage 1 runs a coarse log-grid pass and caches the record's
// forward_real half-spectrum in the EmiScanner, so every later point is
// only a zoom-IFFT gather + detector pass (O(K log K) + O(n), no
// re-transform). Stage 2 polishes each local worst-margin minimum whose
// margin is within `refine_margin_window_db` of the mask (parabolic vertex
// in log f with a golden-section safeguard) until the predicted margin
// improvement falls under `margin_tol_db` or the frequency bracket
// tightens below `freq_tol_rel`. Stage 3 bisects every mask crossing in
// log f until the (pass, fail) bracket is narrower than `freq_tol_rel`
// relative to the crossing frequency — that bracket is the certificate: a
// measured compliant point and a measured violating point pinning where
// the spectrum pierces the mask, plus a log-linear interpolated crossing
// estimate between them.
//
// The result flows into the ordinary ComplianceReport machinery (so
// merge_reports, sweep summaries and skipped_points accounting all apply
// unchanged), and the merged EmiScan carries the per-scan
// zoom/reference/refined point counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "emc/limits.hpp"
#include "emc/receiver.hpp"
#include "signal/waveform.hpp"

namespace emc::spec {

/// Which detector trace of the scan is scored against the mask.
enum class TraceSel {
  kPeak,
  kQuasiPeak,
  kAverage,
};

/// How a sweep corner lays out its receiver scan.
enum class ScanPlan {
  kFixed,     ///< the classic fixed log grid of n_points detector passes
  kAdaptive,  ///< coarse pass + certified refinement (AdaptiveScanner)
};

struct AdaptiveScanConfig {
  /// Stage-1 log-grid size. The coarse pass must still see every mask
  /// feature wider than one grid cell; refinement only sharpens what the
  /// coarse pass noticed.
  std::size_t coarse_points = 25;
  /// Certification tolerance: a crossing bracket [f_pass, f_fail] (and a
  /// minimum's final bracket) is tight once its width is below this
  /// fraction of the frequency.
  double freq_tol_rel = 1e-3;
  /// Stop polishing a minimum when the predicted margin improvement of
  /// another detector pass falls below this [dB].
  double margin_tol_db = 0.01;
  /// Only minima within this margin of the mask are polished; comfortably
  /// compliant spectra (every margin above the window) take zero refined
  /// points. Set to +infinity to always polish the worst margin.
  double refine_margin_window_db = 10.0;
  /// Hard cap on refined detector passes per scan (bisection + polishing).
  std::size_t max_refined_points = 512;
};

/// One certified mask crossing: the spectrum measures compliant at f_pass
/// and violating at f_fail, with |f_fail - f_pass| within the configured
/// tolerance of the crossing; f_cross is the log-linear interpolated zero
/// of the margin between the two measured points.
struct MaskCrossing {
  double f_pass = 0.0;
  double f_fail = 0.0;
  double f_cross = 0.0;
  /// true when the violation begins here (pass below, fail above in
  /// frequency); false when the spectrum re-enters compliance.
  bool entering = true;
};

/// Output of an adaptive scan: the merged measurement (coarse + refined
/// points, frequency-sorted), its compliance report, and the certificate
/// list. scan.refined_points / coarse accounting ride along so reports
/// and benches can show where the detector passes went.
struct CertifiedScan {
  EmiScan scan;                        ///< merged, frequency-sorted
  ComplianceReport report;             ///< scored trace vs the mask
  std::vector<MaskCrossing> crossings; ///< every certified mask crossing
  std::size_t coarse_points = 0;       ///< stage-1 measured points
  std::size_t refined_points = 0;      ///< stage-2/3 measured points
  /// Total detector passes spent (== coarse + refined measured points;
  /// the unit the fixed-vs-adaptive speedup is quoted in).
  std::size_t detector_passes = 0;
};

/// The selected detector trace of a scan (peak / quasi-peak / average).
const std::vector<double>& scan_trace(const EmiScan& scan, TraceSel trace);
const char* trace_name(TraceSel trace);

/// Run the multi-stage adaptive scan on `scanner` (its cached FFT plans
/// and buffers are reused; the record is loaded once). The scan span and
/// detector settings come from `rx` (rx.n_points is ignored — the grid is
/// cfg.coarse_points). Throws std::invalid_argument on a bad span/record
/// exactly like EmiScanner::scan.
CertifiedScan adaptive_scan(EmiScanner& scanner, const sig::Waveform& w,
                            const ReceiverSettings& rx, const LimitMask& mask,
                            TraceSel trace, const AdaptiveScanConfig& cfg,
                            std::string what = "");

/// Owning convenience wrapper: one AdaptiveScanner keeps the FFT plans
/// and buffers alive across scan() calls, like EmiScanner. Cheap state,
/// not a shared resource — one per concurrent worker.
class AdaptiveScanner {
 public:
  explicit AdaptiveScanner(AdaptiveScanConfig cfg = {}) : cfg_(cfg) {}

  CertifiedScan scan(const sig::Waveform& w, const ReceiverSettings& rx,
                     const LimitMask& mask, TraceSel trace, std::string what = "") {
    return adaptive_scan(scanner_, w, rx, mask, trace, cfg_, std::move(what));
  }

  const AdaptiveScanConfig& config() const { return cfg_; }
  AdaptiveScanConfig& config() { return cfg_; }

 private:
  AdaptiveScanConfig cfg_;
  EmiScanner scanner_;
};

}  // namespace emc::spec
