#include "emc/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <span>
#include <stdexcept>

#include "emc/fft.hpp"

namespace emc::spec {

namespace {

/// Cosine-sum window w[j] = sum_k (-1)^k a[k] cos(2*pi*k*j/n), DFT-even.
std::vector<double> cosine_sum(std::span<const double> a, std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double x = 2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(n);
    double acc = 0.0;
    double sign = 1.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      acc += sign * a[k] * std::cos(static_cast<double>(k) * x);
      sign = -sign;
    }
    w[j] = acc;
  }
  return w;
}

}  // namespace

WindowData make_window(Window kind, std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_window: empty window");
  WindowData out;
  switch (kind) {
    case Window::kRectangular:
      out.w.assign(n, 1.0);
      break;
    case Window::kHann: {
      const double a[] = {0.5, 0.5};
      out.w = cosine_sum(a, n);
      break;
    }
    case Window::kFlatTop: {
      // 5-term flat-top (SRS / SciPy "flattop"): < 0.01 dB scalloping loss.
      const double a[] = {0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368};
      out.w = cosine_sum(a, n);
      break;
    }
  }
  double s1 = 0.0, s2 = 0.0;
  for (double v : out.w) {
    s1 += v;
    s2 += v * v;
  }
  out.coherent_gain = s1 / static_cast<double>(n);
  out.noise_gain = s2 / static_cast<double>(n);
  return out;
}

double volts_to_dbuv(double v_rms) {
  constexpr double kFloor = 1e-12;  // -120 dBuV
  return 20.0 * std::log10(std::max(v_rms, kFloor) / 1e-6);
}

Spectrum amplitude_spectrum(const sig::Waveform& w, Window win) {
  const std::size_t n = w.size();
  if (n < 2) throw std::invalid_argument("amplitude_spectrum: need at least 2 samples");

  const WindowData wd = make_window(win, n);
  std::vector<double> x(n);
  for (std::size_t k = 0; k < n; ++k) x[k] = w[k] * wd.w[k];

  FftPlan plan(n);
  std::vector<std::complex<double>> bins;
  plan.forward_real(x, bins);

  Spectrum out;
  out.df = 1.0 / (w.dt() * static_cast<double>(n));
  out.value.resize(bins.size());
  const double base = 1.0 / (static_cast<double>(n) * wd.coherent_gain);
  for (std::size_t k = 0; k < bins.size(); ++k) {
    // Single-sided fold: interior bins carry the conjugate pair's energy;
    // DC and (for even n) Nyquist do not.
    const bool paired = k != 0 && !(n % 2 == 0 && k == n / 2);
    out.value[k] = std::abs(bins[k]) * base * (paired ? 2.0 : 1.0);
  }
  return out;
}

Spectrum amplitude_spectrum_dbuv(const sig::Waveform& w, Window win) {
  Spectrum s = amplitude_spectrum(w, win);
  for (std::size_t k = 0; k < s.value.size(); ++k) {
    const double v_rms = k == 0 ? s.value[k] : s.value[k] / std::numbers::sqrt2;
    s.value[k] = volts_to_dbuv(v_rms);
  }
  return s;
}

Spectrum welch_psd(const sig::Waveform& w, std::size_t segment_len, Window win,
                   double overlap) {
  const std::size_t n = w.size();
  if (segment_len < 2) throw std::invalid_argument("welch_psd: segment_len must be >= 2");
  if (segment_len > n) throw std::invalid_argument("welch_psd: segment longer than record");
  if (!(overlap >= 0.0 && overlap < 1.0))
    throw std::invalid_argument("welch_psd: overlap must be in [0, 1)");

  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(static_cast<double>(segment_len) * (1.0 - overlap))));
  const WindowData wd = make_window(win, segment_len);
  const double fs = 1.0 / w.dt();

  FftPlan plan(segment_len);
  std::vector<double> x(segment_len);
  std::vector<std::complex<double>> bins;

  Spectrum out;
  out.df = fs / static_cast<double>(segment_len);
  out.value.assign(segment_len / 2 + 1, 0.0);

  std::size_t n_segments = 0;
  for (std::size_t start = 0; start + segment_len <= n; start += hop) {
    for (std::size_t k = 0; k < segment_len; ++k) x[k] = w[start + k] * wd.w[k];
    plan.forward_real(x, bins);
    const double scale =
        1.0 / (fs * static_cast<double>(segment_len) * wd.noise_gain);
    for (std::size_t k = 0; k < bins.size(); ++k) {
      const bool paired = k != 0 && !(segment_len % 2 == 0 && k == segment_len / 2);
      out.value[k] += std::norm(bins[k]) * scale * (paired ? 2.0 : 1.0);
    }
    ++n_segments;
  }
  const double inv = 1.0 / static_cast<double>(n_segments);
  for (double& v : out.value) v *= inv;
  return out;
}

}  // namespace emc::spec
