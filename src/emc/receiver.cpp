#include "emc/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "emc/fft.hpp"
#include "emc/spectrum.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace emc::spec {

namespace {

/// Decimated-envelope oversampling of the occupied band. The detectors
/// read the envelope through linear interpolation of the decimated
/// samples; 32x oversampling of the band edge bounds the worst-case
/// interpolation error below (pi/64)^2/8 ~ 3e-4 relative (~0.003 dB), and
/// the Gaussian RBW window concentrates the energy mid-band where the
/// error is far smaller still.
constexpr std::size_t kZoomOversample = 32;
/// Scan points demodulated per fused detector pass.
constexpr std::size_t kMaxBlock = 4;

/// Peak / average / quasi-peak recursions for B interleaved scan points in
/// one pass over the record. env_at(k, e) must fill e[0..B) with the
/// envelope samples of each point at record sample k; running B
/// independent quasi-peak chains side by side hides the serial latency of
/// the charge/discharge update. Exact exponential updates per sample keep
/// the integration unconditionally stable for any dt / tau ratio.
template <int B, class Ctx, class Out, class EnvFn>
void detect(const Ctx& c, EnvFn&& env_at, Out* out) {
  double peak[B] = {};
  double sum[B] = {};
  double vqp[B] = {};
  double qpm[B] = {};
  for (std::size_t k = 0; k < c.n; ++k) {
    double e[B];
    env_at(k, e);
    for (int b = 0; b < B; ++b) {
      peak[b] = std::max(peak[b], e[b]);
      sum[b] += e[b];
      // CISPR quasi-peak circuit: charge toward the envelope through
      // tau_charge while the detector diode conducts, discharge through
      // tau_discharge always.
      if (e[b] > vqp[b]) vqp[b] = e[b] - (e[b] - vqp[b]) * c.kc;
      vqp[b] *= c.kd;
      qpm[b] = std::max(qpm[b], vqp[b]);
    }
  }
  for (int b = 0; b < B; ++b)
    out[b] = {peak[b], qpm[b], sum[b] / static_cast<double>(c.n)};
}

}  // namespace

ReceiverSettings ReceiverSettings::cispr_band_a() {
  ReceiverSettings s;
  s.name = "CISPR band A";
  s.f_start = 9e3;
  s.f_stop = 150e3;
  s.n_points = 100;
  s.rbw = 200.0;
  s.tau_charge = 45e-3;
  s.tau_discharge = 500e-3;
  return s;
}

ReceiverSettings ReceiverSettings::cispr_band_b() {
  ReceiverSettings s;
  s.name = "CISPR band B";
  s.f_start = 150e3;
  s.f_stop = 30e6;
  s.n_points = 100;
  s.rbw = 9e3;
  s.tau_charge = 1e-3;
  s.tau_discharge = 160e-3;
  return s;
}

ReceiverSettings ReceiverSettings::with_time_scale(double s) const {
  ReceiverSettings out = *this;
  out.tau_charge *= s;
  out.tau_discharge *= s;
  return out;
}

EmiScanner::Readings EmiScanner::demod_reference(const ScanCtx& c, const PointTask& t) {
  // Lazy sizing: pure-zoom scans never pay for the two length-n buffers.
  if (y_.size() != c.n) {
    y_.assign(c.n, {0.0, 0.0});
    z_.resize(c.n);
    prev_lo_ = 1;
    prev_hi_ = 0;
  }
  // y_ is zero outside the previously occupied bin range: clear just that
  // range (O(K)) instead of re-zeroing all n entries per point.
  for (std::size_t k = prev_lo_; k <= prev_hi_ && k < c.n; ++k) y_[k] = {0.0, 0.0};

  // Analytic signal of the RBW-filtered record: positive-frequency bins
  // only, doubled, then inverse FFT. |z(t)| is the carrier envelope.
  for (std::size_t k = t.k_lo; k <= t.k_hi; ++k) {
    const double d = static_cast<double>(k) * c.df - t.fc;
    const double h = std::exp(-c.alpha * d * d);
    const bool paired = k != 0 && !(c.n % 2 == 0 && k == c.n / 2);
    y_[k] = spectrum_[k] * (h * (paired ? 2.0 : 1.0));
  }
  prev_lo_ = t.k_lo;
  prev_hi_ = t.k_hi;
  plan_->inverse_to(y_.data(), z_.data());

  Readings r;
  const std::complex<double>* z = z_.data();
  detect<1>(c, [z](std::size_t k, double* e) { e[0] = std::abs(z[k]); }, &r);
  return r;
}

void EmiScanner::demod_zoom_block(const ScanCtx& c, const PointTask* tasks,
                                  std::size_t count, std::size_t n_env, Readings* out) {
  if (!zoom_plan_ || zoom_plan_->size() != n_env) {
    zoom_plan_.emplace(n_env);
    zoom_buf_.resize(n_env);
    zoom_env_.resize(kMaxBlock * n_env);
  }

  // Exact decimated envelopes: the occupied bins, shifted so the band
  // center lands at baseband (the magnitude is shift-invariant), form an
  // n_env-bin spectrum whose inverse DFT evaluates the analytic signal's
  // trig polynomial exactly at the n_env decimated sample times.
  const double scale = static_cast<double>(n_env) / static_cast<double>(c.n);
  for (std::size_t b = 0; b < count; ++b) {
    const PointTask& t = tasks[b];
    std::fill(zoom_buf_.begin(), zoom_buf_.end(), std::complex<double>{0.0, 0.0});
    const std::size_t k0 = (t.k_lo + t.k_hi) / 2;
    for (std::size_t k = t.k_lo; k <= t.k_hi; ++k) {
      const double d = static_cast<double>(k) * c.df - t.fc;
      const double h = std::exp(-c.alpha * d * d);
      const bool paired = k != 0 && !(c.n % 2 == 0 && k == c.n / 2);
      const std::size_t idx = k >= k0 ? k - k0 : n_env - (k0 - k);
      zoom_buf_[idx] = spectrum_[k] * (h * (paired ? 2.0 : 1.0));
    }
    zoom_plan_->inverse(zoom_buf_.data());
    double* env = zoom_env_.data() + b * n_env;
    for (std::size_t j = 0; j < n_env; ++j) env[j] = std::abs(zoom_buf_[j]) * scale;
  }

  // Fused detector pass at the original record rate (the quasi-peak
  // discretization must match the reference path exactly), reading the
  // envelope by linear interpolation of the decimated samples. The
  // periodic wrap at the last interval is exact: the trig polynomial the
  // decimated grid samples has period n*dt.
  const double stride = static_cast<double>(n_env) / static_cast<double>(c.n);
  const double* env = zoom_env_.data();
  const auto env_at = [env, stride, n_env]<int B>(std::size_t k, double (&e)[B]) {
    const double pos = static_cast<double>(k) * stride;
    const auto i0 = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i0);
    const std::size_t i1 = i0 + 1 == n_env ? 0 : i0 + 1;
    for (int b = 0; b < B; ++b) {
      const double* base = env + static_cast<std::size_t>(b) * n_env;
      e[b] = base[i0] + frac * (base[i1] - base[i0]);
    }
  };
  switch (count) {
    case 1: detect<1>(c, [&](std::size_t k, double (&e)[1]) { env_at(k, e); }, out); break;
    case 2: detect<2>(c, [&](std::size_t k, double (&e)[2]) { env_at(k, e); }, out); break;
    case 3: detect<3>(c, [&](std::size_t k, double (&e)[3]) { env_at(k, e); }, out); break;
    default: detect<4>(c, [&](std::size_t k, double (&e)[4]) { env_at(k, e); }, out); break;
  }
}

std::vector<double> make_log_grid(double f_lo, double f_hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_log_grid: need at least one point");
  if (!(f_lo > 0.0)) throw std::invalid_argument("make_log_grid: f_lo must be positive");
  if (!(f_hi >= f_lo)) throw std::invalid_argument("make_log_grid: f_hi must be >= f_lo");
  if (n == 1 || f_lo == f_hi) return {f_lo};

  std::vector<double> grid;
  grid.reserve(n);
  const double lg0 = std::log(f_lo);
  const double lg1 = std::log(f_hi);
  for (std::size_t p = 0; p < n; ++p) {
    // Exact endpoints (exp(log(x)) need not round-trip, and downstream
    // mask checks treat band edges as inclusive).
    const double fc =
        p == 0 ? f_lo
        : p == n - 1
            ? f_hi
            : std::exp(lg0 +
                       (lg1 - lg0) * static_cast<double>(p) / static_cast<double>(n - 1));
    grid.push_back(fc);
  }
  return grid;
}

void EmiScanner::load_record(const sig::Waveform& w) {
  const std::size_t n = w.size();
  if (n < 4) throw std::invalid_argument("emi_scan: record too short");

  // One real-input forward transform of the record; each scan point reads
  // its bins from the half-spectrum. The plan survives across scan()
  // calls, so batched runs over equally sized records (every corner of a
  // sweep) plan once.
  if (!plan_ || plan_->size() != n) plan_.emplace(n);
  plan_->forward_real(w.samples(), spectrum_);
  rec_n_ = n;
  rec_dt_ = w.dt();
}

EmiScan EmiScanner::scan(const sig::Waveform& w, const ReceiverSettings& s) {
  if (w.size() < 4) throw std::invalid_argument("emi_scan: record too short");
  if (!(s.f_start > 0.0 && s.f_stop > s.f_start))
    throw std::invalid_argument("emi_scan: bad frequency span");
  load_record(w);
  return measure(s, make_log_grid(s.f_start, s.f_stop,
                                  std::max<std::size_t>(2, s.n_points)));
}

EmiScan EmiScanner::measure(const ReceiverSettings& s, std::span<const double> freqs) {
  static const obs::Counter c_scans("spec.scan.runs");
  static const obs::Counter c_zoom("spec.scan.zoom_points");
  static const obs::Counter c_ref("spec.scan.reference_points");
  static const obs::Counter c_skipped("spec.scan.skipped_points");
  obs::Span span("scan");

  if (!has_record()) throw std::invalid_argument("emi_scan: no record loaded");
  if (!(s.rbw > 0.0)) throw std::invalid_argument("emi_scan: RBW must be positive");
  if (!(s.tau_charge > 0.0 && s.tau_discharge > 0.0))
    throw std::invalid_argument("emi_scan: QP time constants must be positive");

  const std::size_t n = rec_n_;
  const double fs = 1.0 / rec_dt_;
  const double f_nyq = fs / 2.0;
  const double df = fs / static_cast<double>(n);

  // Gaussian RBW filter, -6 dB (amplitude 1/2) at +-rbw/2 off the carrier.
  const double half = s.rbw / 2.0;
  const double alpha = std::numbers::ln2 / (half * half);
  // Beyond this offset the filter is < 1e-7 and bins are skipped entirely.
  const double reach = std::sqrt(16.1 / alpha);  // exp(-16.1) ~ 1e-7

  // A record must be long enough to resolve the RBW: if the filter could
  // fall entirely between two FFT bins the detectors would silently read
  // the -120 dBuV floor and compliance checks would false-PASS. Refuse
  // loudly instead.
  if (2.0 * reach < df)
    throw std::invalid_argument(
        "emi_scan: record too short for this RBW (need duration >= ~1/(4.8*rbw))");

  ScanCtx c;
  c.n = n;
  c.df = df;
  c.alpha = alpha;
  c.kc = std::exp(-rec_dt_ / s.tau_charge);
  c.kd = std::exp(-rec_dt_ / s.tau_discharge);

  EmiScan out;
  out.receiver = s.name;

  tasks_.clear();
  tasks_.reserve(freqs.size());
  for (const double fc : freqs) {
    if (!(fc > 0.0))
      throw std::invalid_argument("emi_scan: scan frequency must be positive");
    if (fc >= f_nyq) {
      // At or above the record's Nyquist rate: the point cannot be
      // measured. Record the truncation instead of hiding it.
      ++out.skipped_points;
      continue;
    }
    PointTask t;
    t.fc = fc;
    t.k_lo = static_cast<std::size_t>(std::max(1.0, std::ceil((fc - reach) / df)));
    t.k_hi = std::min<std::size_t>(
        n / 2, static_cast<std::size_t>(std::floor((fc + reach) / df)));
    tasks_.push_back(t);
  }

  // Decimated length for a point's occupied band, or 0 when the zoom path
  // does not apply (forced reference, or no decimation to be had).
  const auto zoom_len = [&](const PointTask& t) -> std::size_t {
    if (s.method == ScanMethod::kReference || t.k_lo > t.k_hi) return 0;
    const std::size_t n_env = FftPlan::next_pow2(kZoomOversample * (t.k_hi - t.k_lo + 1));
    if (s.method == ScanMethod::kAuto && n_env >= n) return 0;
    return n_env;
  };

  readings_.assign(tasks_.size(), Readings{});
  std::size_t i = 0;
  while (i < tasks_.size()) {
    if (tasks_[i].k_lo > tasks_[i].k_hi) {
      // The Gaussian window covers no positive-frequency bin: the
      // filtered record is identically zero and every detector reads the
      // floor.
      ++i;  // readings_[i] stays at the all-zero floor reading
      continue;
    }
    const std::size_t n_env = zoom_len(tasks_[i]);
    if (n_env == 0) {
      readings_[i] = demod_reference(c, tasks_[i]);
      ++out.reference_points;
      ++i;
      continue;
    }
    // Batch consecutive zoom points sharing one decimated length so their
    // detector recursions interleave in a single pass over the record.
    std::size_t j = i + 1;
    while (j < tasks_.size() && j - i < kMaxBlock && zoom_len(tasks_[j]) == n_env) ++j;
    demod_zoom_block(c, tasks_.data() + i, j - i, n_env, readings_.data() + i);
    out.zoom_points += j - i;
    i = j;
  }

  // Detector readings in dBuV of the RMS of the equivalent sine at
  // readout, as an EMI receiver is calibrated.
  for (std::size_t p = 0; p < tasks_.size(); ++p) {
    out.freq.push_back(tasks_[p].fc);
    out.peak_dbuv.push_back(volts_to_dbuv(readings_[p].peak / std::numbers::sqrt2));
    out.quasi_peak_dbuv.push_back(volts_to_dbuv(readings_[p].qp / std::numbers::sqrt2));
    out.average_dbuv.push_back(volts_to_dbuv(readings_[p].avg / std::numbers::sqrt2));
  }

  c_scans.add();
  c_zoom.add(out.zoom_points);
  c_ref.add(out.reference_points);
  c_skipped.add(out.skipped_points);
  return out;
}

EmiScan emi_scan(const sig::Waveform& w, const ReceiverSettings& s) {
  EmiScanner scanner;
  return scanner.scan(w, s);
}

double max_detector_delta_db(const EmiScan& a, const EmiScan& b) {
  double worst = 0.0;
  for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k) {
    worst = std::max(worst, std::abs(a.peak_dbuv[k] - b.peak_dbuv[k]));
    worst = std::max(worst, std::abs(a.quasi_peak_dbuv[k] - b.quasi_peak_dbuv[k]));
    worst = std::max(worst, std::abs(a.average_dbuv[k] - b.average_dbuv[k]));
  }
  return worst;
}

}  // namespace emc::spec
