#include "emc/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "emc/fft.hpp"
#include "emc/spectrum.hpp"

namespace emc::spec {

ReceiverSettings ReceiverSettings::cispr_band_a() {
  ReceiverSettings s;
  s.name = "CISPR band A";
  s.f_start = 9e3;
  s.f_stop = 150e3;
  s.n_points = 100;
  s.rbw = 200.0;
  s.tau_charge = 45e-3;
  s.tau_discharge = 500e-3;
  return s;
}

ReceiverSettings ReceiverSettings::cispr_band_b() {
  ReceiverSettings s;
  s.name = "CISPR band B";
  s.f_start = 150e3;
  s.f_stop = 30e6;
  s.n_points = 100;
  s.rbw = 9e3;
  s.tau_charge = 1e-3;
  s.tau_discharge = 160e-3;
  return s;
}

ReceiverSettings ReceiverSettings::with_time_scale(double s) const {
  ReceiverSettings out = *this;
  out.tau_charge *= s;
  out.tau_discharge *= s;
  return out;
}

EmiScan EmiScanner::scan(const sig::Waveform& w, const ReceiverSettings& s) {
  const std::size_t n = w.size();
  if (n < 4) throw std::invalid_argument("emi_scan: record too short");
  if (!(s.f_start > 0.0 && s.f_stop > s.f_start))
    throw std::invalid_argument("emi_scan: bad frequency span");
  if (!(s.rbw > 0.0)) throw std::invalid_argument("emi_scan: RBW must be positive");
  if (!(s.tau_charge > 0.0 && s.tau_discharge > 0.0))
    throw std::invalid_argument("emi_scan: QP time constants must be positive");

  const double fs = 1.0 / w.dt();
  const double f_nyq = fs / 2.0;
  const double df = fs / static_cast<double>(n);

  // One forward transform of the record; each scan point reuses it. The
  // plan survives across scan() calls, so batched runs over equally sized
  // records (every corner of a sweep) plan once.
  if (!plan_ || plan_->size() != n) plan_.emplace(n);
  x_.resize(n);
  for (std::size_t k = 0; k < n; ++k) x_[k] = {w[k], 0.0};
  plan_->forward(x_.data());

  y_.resize(n);
  auto& x = x_;
  auto& y = y_;
  FftPlan& plan = *plan_;

  // Gaussian RBW filter, -6 dB (amplitude 1/2) at +-rbw/2 off the carrier.
  const double half = s.rbw / 2.0;
  const double alpha = std::numbers::ln2 / (half * half);
  // Beyond this offset the filter is < 1e-7 and bins are skipped entirely.
  const double reach = std::sqrt(16.1 / alpha);  // exp(-16.1) ~ 1e-7

  // A record must be long enough to resolve the RBW: if the filter could
  // fall entirely between two FFT bins the detectors would silently read
  // the -120 dBuV floor and compliance checks would false-PASS. Refuse
  // loudly instead.
  if (2.0 * reach < df)
    throw std::invalid_argument(
        "emi_scan: record too short for this RBW (need duration >= ~1/(4.8*rbw))");

  EmiScan out;
  out.receiver = s.name;
  const std::size_t np = std::max<std::size_t>(2, s.n_points);
  const double lg0 = std::log(s.f_start);
  const double lg1 = std::log(s.f_stop);

  for (std::size_t p = 0; p < np; ++p) {
    // Exact endpoints (exp(log(x)) need not round-trip, and downstream
    // mask checks treat band edges as inclusive).
    const double fc =
        p == 0 ? s.f_start
        : p == np - 1
            ? s.f_stop
            : std::exp(lg0 +
                       (lg1 - lg0) * static_cast<double>(p) / static_cast<double>(np - 1));
    if (fc >= f_nyq) break;

    // Analytic signal of the RBW-filtered record: positive-frequency bins
    // only, doubled, then inverse FFT. |z(t)| is the carrier envelope.
    std::fill(y.begin(), y.end(), std::complex<double>{0.0, 0.0});
    const std::size_t k_lo =
        static_cast<std::size_t>(std::max(1.0, std::ceil((fc - reach) / df)));
    const std::size_t k_hi = std::min<std::size_t>(
        n / 2, static_cast<std::size_t>(std::floor((fc + reach) / df)));
    for (std::size_t k = k_lo; k <= k_hi; ++k) {
      const double d = static_cast<double>(k) * df - fc;
      const double h = std::exp(-alpha * d * d);
      const bool paired = k != 0 && !(n % 2 == 0 && k == n / 2);
      y[k] = x[k] * (h * (paired ? 2.0 : 1.0));
    }
    plan.inverse(y.data());

    // Detectors on the envelope (converted to the RMS of the equivalent
    // sine at readout, as an EMI receiver is calibrated).
    double env_peak = 0.0;
    double env_sum = 0.0;
    double v_qp = 0.0;
    double qp_max = 0.0;
    // CISPR quasi-peak circuit: charge toward the envelope through
    // tau_charge while the detector diode conducts, discharge through
    // tau_discharge always. Exact exponential updates per sample keep the
    // integration unconditionally stable for any dt / tau ratio.
    const double kc = std::exp(-w.dt() / s.tau_charge);
    const double kd = std::exp(-w.dt() / s.tau_discharge);
    for (std::size_t k = 0; k < n; ++k) {
      const double e = std::abs(y[k]);
      env_peak = std::max(env_peak, e);
      env_sum += e;
      if (e > v_qp) v_qp = e - (e - v_qp) * kc;
      v_qp *= kd;
      qp_max = std::max(qp_max, v_qp);
    }
    const double env_avg = env_sum / static_cast<double>(n);

    out.freq.push_back(fc);
    out.peak_dbuv.push_back(volts_to_dbuv(env_peak / std::numbers::sqrt2));
    out.quasi_peak_dbuv.push_back(volts_to_dbuv(qp_max / std::numbers::sqrt2));
    out.average_dbuv.push_back(volts_to_dbuv(env_avg / std::numbers::sqrt2));
  }
  return out;
}

EmiScan emi_scan(const sig::Waveform& w, const ReceiverSettings& s) {
  EmiScanner scanner;
  return scanner.scan(w, s);
}

}  // namespace emc::spec
