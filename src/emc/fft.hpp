// Dependency-free FFT for the spectral EMC-assessment subsystem.
//
// FftPlan is a reusable plan/workspace object in the allocation-free style
// of the Newton/MNA hot path: all twiddle tables, bit-reversal maps and
// Bluestein scratch buffers are allocated once at construction, so a swept
// EMI-receiver scan can run hundreds of transforms without touching the
// heap. Power-of-two lengths use the iterative radix-2 Cooley-Tukey
// kernel; every other length goes through Bluestein's chirp-z algorithm,
// which reduces an arbitrary-length DFT to a power-of-two convolution.
//
// Real input is first-class: forward_real computes the length-n real DFT
// through one length-n/2 complex FFT of the even/odd-packed samples plus a
// split/recombine pass with specialized first (DC/Nyquist, purely real)
// and last (center bin, pure conjugation) butterflies — about half the
// work of the complex transform the naive treat-real-as-complex route
// pays.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace emc::spec {

/// FFT plan for a fixed transform length n >= 1 (any n, not just 2^k).
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Smallest power of two >= n (n >= 1): the length callers round up to
  /// when they want a plan on the cheap radix-2 path.
  static std::size_t next_pow2(std::size_t n) {
    std::size_t m = 1;
    while (m < n) m <<= 1;
    return m;
  }

  /// In-place DFT, X[k] = sum_j x[j] exp(-2*pi*i*j*k/n). `x` has length n.
  void forward(std::complex<double>* x);

  /// In-place inverse DFT including the 1/n normalization, so
  /// inverse(forward(x)) == x up to rounding.
  void inverse(std::complex<double>* x);

  /// Out-of-place inverse DFT (same normalization as inverse()): reads the
  /// length-n spectrum `in` — which is left untouched — and writes the
  /// time-domain signal to `out`. Callers that maintain a mostly-zero
  /// spectral buffer (the swept EMI receiver) can keep it intact across
  /// transforms and re-clear only the bins they occupied, instead of
  /// re-zeroing the whole buffer after every in-place transform.
  /// `in` and `out` must not alias.
  void inverse_to(const std::complex<double>* in, std::complex<double>* out);

  /// Real-input forward transform: fills `out` with the n/2+1 non-negative
  /// frequency bins of the DFT of `x` (length n). For even n this runs the
  /// half-length complex FFT + recombine kernel (~2x the complex forward);
  /// odd lengths fall back to the full complex transform. `out` is resized
  /// on first use; repeated calls on the same plan do not allocate.
  void forward_real(std::span<const double> x, std::vector<std::complex<double>>& out);

 private:
  static bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

  void transform(std::complex<double>* x, bool inv);
  /// Butterfly stages of the radix-2 kernel over bit-reversed data.
  static void radix2_stages(std::complex<double>* x, std::size_t n,
                            const std::vector<std::complex<double>>& tw, bool inv);
  /// Radix-2 kernel over `len` = bitrev.size() points using twiddles
  /// tw[k] = exp(-2*pi*i*k/len), k < len/2.
  static void radix2(std::complex<double>* x, const std::vector<std::size_t>& bitrev,
                     const std::vector<std::complex<double>>& tw, bool inv);
  /// Out-of-place radix-2: gathers in[bitrev[k]] into out (replacing the
  /// in-place swap pass), then runs the butterfly stages on out.
  static void radix2_to(const std::complex<double>* in, std::complex<double>* out,
                        const std::vector<std::size_t>& bitrev,
                        const std::vector<std::complex<double>>& tw, bool inv);
  void bluestein_to(const std::complex<double>* in, std::complex<double>* out, bool inv);
  /// Builds the half-length sub-plan + recombine twiddles (even n only).
  void ensure_real_kernel();

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Radix-2 tables for length n_ (when pow2) or for the convolution length
  // m_ (when Bluestein is active).
  std::vector<std::size_t> bitrev_;
  std::vector<std::complex<double>> tw_;

  // Bluestein state: chirp_[k] = exp(-i*pi*k^2/n), chirp_fft_ the forward
  // FFT of the circularly wrapped conjugate chirp, work_ the length-m_
  // convolution buffer.
  std::size_t m_ = 0;
  std::vector<std::complex<double>> chirp_;
  std::vector<std::complex<double>> chirp_fft_;
  std::vector<std::complex<double>> work_;

  // Real-input kernel state, built on first forward_real call (even n):
  // the length-n/2 sub-plan for the packed samples and the recombine
  // twiddles rtw_[k] = exp(-2*pi*i*k/n), k <= n/4.
  std::unique_ptr<FftPlan> half_;
  std::vector<std::complex<double>> rtw_;
  std::vector<std::complex<double>> real_buf_;
};

}  // namespace emc::spec
