// Dependency-free FFT for the spectral EMC-assessment subsystem.
//
// FftPlan is a reusable plan/workspace object in the allocation-free style
// of the Newton/MNA hot path: all twiddle tables, bit-reversal maps and
// Bluestein scratch buffers are allocated once at construction, so a swept
// EMI-receiver scan can run hundreds of transforms without touching the
// heap. Power-of-two lengths use the iterative radix-2 Cooley-Tukey
// kernel; every other length goes through Bluestein's chirp-z algorithm,
// which reduces an arbitrary-length DFT to a power-of-two convolution.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace emc::spec {

/// FFT plan for a fixed transform length n >= 1 (any n, not just 2^k).
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place DFT, X[k] = sum_j x[j] exp(-2*pi*i*j*k/n). `x` has length n.
  void forward(std::complex<double>* x);

  /// In-place inverse DFT including the 1/n normalization, so
  /// inverse(forward(x)) == x up to rounding.
  void inverse(std::complex<double>* x);

  /// Real-input forward transform: fills `out` with the n/2+1 non-negative
  /// frequency bins of the DFT of `x` (length n). `out` is resized on
  /// first use; repeated calls on the same plan do not allocate.
  void forward_real(std::span<const double> x, std::vector<std::complex<double>>& out);

 private:
  static bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

  void transform(std::complex<double>* x, bool inv);
  /// Radix-2 kernel over `len` = bitrev.size() points using twiddles
  /// tw[k] = exp(-2*pi*i*k/len), k < len/2.
  static void radix2(std::complex<double>* x, const std::vector<std::size_t>& bitrev,
                     const std::vector<std::complex<double>>& tw, bool inv);
  void bluestein(std::complex<double>* x, bool inv);

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Radix-2 tables for length n_ (when pow2) or for the convolution length
  // m_ (when Bluestein is active).
  std::vector<std::size_t> bitrev_;
  std::vector<std::complex<double>> tw_;

  // Bluestein state: chirp_[k] = exp(-i*pi*k^2/n), chirp_fft_ the forward
  // FFT of the circularly wrapped conjugate chirp, work_ the length-m_
  // convolution buffer.
  std::size_t m_ = 0;
  std::vector<std::complex<double>> chirp_;
  std::vector<std::complex<double>> chirp_fft_;
  std::vector<std::complex<double>> work_;

  // Scratch for forward_real.
  std::vector<std::complex<double>> real_buf_;
};

}  // namespace emc::spec
