#include "emc/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace emc::spec {

const std::vector<double>& scan_trace(const EmiScan& scan, TraceSel trace) {
  switch (trace) {
    case TraceSel::kPeak: return scan.peak_dbuv;
    case TraceSel::kQuasiPeak: return scan.quasi_peak_dbuv;
    default: return scan.average_dbuv;
  }
}

const char* trace_name(TraceSel trace) {
  switch (trace) {
    case TraceSel::kPeak: return "peak";
    case TraceSel::kQuasiPeak: return "quasi_peak";
    default: return "average";
  }
}

namespace {

/// One measured frequency with its mask margin (NaN when uncovered).
struct Sample {
  double peak = 0.0;
  double qp = 0.0;
  double avg = 0.0;
  double margin = 0.0;
  bool covered = false;
};

double level_of(const Sample& s, TraceSel t) {
  switch (t) {
    case TraceSel::kPeak: return s.peak;
    case TraceSel::kQuasiPeak: return s.qp;
    default: return s.avg;
  }
}

/// Measurement front-end shared by all three stages: probes frequencies
/// through the scanner's cached half-spectrum, deduplicates exact repeat
/// frequencies (a bisection landing on an already-measured point costs
/// nothing), and keeps the merged frequency-sorted sample set plus the
/// zoom/reference/skipped accounting the final EmiScan reports.
class Prober {
 public:
  Prober(EmiScanner& scanner, const ReceiverSettings& rx, const LimitMask& mask,
         TraceSel trace)
      : scanner_(scanner), rx_(rx), mask_(mask), trace_(trace) {}

  /// Measure every frequency in `freqs` not yet sampled. Returns how many
  /// detector passes were spent (Nyquist-skipped points are counted in
  /// skipped(), not in passes).
  std::size_t probe(std::span<const double> freqs) {
    batch_.clear();
    for (const double f : freqs)
      if (!samples_.count(f)) batch_.push_back(f);
    if (batch_.empty()) return 0;

    const EmiScan scan = scanner_.measure(rx_, batch_);
    zoom_ += scan.zoom_points;
    reference_ += scan.reference_points;
    skipped_ += scan.skipped_points;
    for (std::size_t j = 0; j < scan.size(); ++j) {
      Sample s;
      s.peak = scan.peak_dbuv[j];
      s.qp = scan.quasi_peak_dbuv[j];
      s.avg = scan.average_dbuv[j];
      s.covered = mask_.covers(scan.freq[j]);
      s.margin = s.covered ? mask_.at(scan.freq[j]) - level_of(s, trace_) : 0.0;
      samples_.emplace(scan.freq[j], s);
    }
    return scan.size();
  }

  /// Single-frequency probe; false when the point was Nyquist-skipped.
  bool probe_one(double f, std::size_t* passes) {
    const double one[1] = {f};
    *passes += probe(one);
    return samples_.count(f) != 0;
  }

  const std::map<double, Sample>& samples() const { return samples_; }
  const Sample& at(double f) const { return samples_.at(f); }
  std::size_t zoom() const { return zoom_; }
  std::size_t reference() const { return reference_; }
  std::size_t skipped() const { return skipped_; }

 private:
  EmiScanner& scanner_;
  const ReceiverSettings& rx_;
  const LimitMask& mask_;
  TraceSel trace_;
  std::map<double, Sample> samples_;  ///< keyed by exact frequency
  std::vector<double> batch_;
  std::size_t zoom_ = 0;
  std::size_t reference_ = 0;
  std::size_t skipped_ = 0;
};

/// Covered (frequency, margin) view of the sample set, frequency-sorted.
struct Pt {
  double f = 0.0;
  double m = 0.0;
};

std::vector<Pt> covered_points(const Prober& p) {
  std::vector<Pt> out;
  out.reserve(p.samples().size());
  for (const auto& [f, s] : p.samples())
    if (s.covered) out.push_back({f, s.margin});
  return out;
}

/// Polish one interior local margin minimum bracketed by (x0, x1, x2) in
/// x = ln f (m1 <= m0, m1 <= m2): parabolic vertex steps with a
/// golden-section safeguard, stopping when the bracket is tighter than
/// the frequency tolerance, the bracket's margin relief drops under the
/// margin tolerance (a flat parabola has nothing left to give), or the
/// refinement budget runs out.
void polish_minimum(Prober& prober, double f0, double f1, double f2,
                    const AdaptiveScanConfig& cfg, std::size_t* passes,
                    std::size_t* budget) {
  constexpr double kGolden = 0.381966011250105;  // 2 - phi
  double x0 = std::log(f0), x1 = std::log(f1), x2 = std::log(f2);
  double m0 = prober.at(f0).margin;
  double m1 = prober.at(f1).margin;
  double m2 = prober.at(f2).margin;
  const double xtol = std::log1p(cfg.freq_tol_rel);

  while (*budget > 0) {
    if (x2 - x0 <= xtol) break;
    if (std::max(m0, m2) - m1 <= cfg.margin_tol_db) break;

    // Parabolic vertex through the three bracket points; fall back to a
    // golden-section step into the larger half when the parabola is
    // degenerate or its vertex leaves (or crowds the edge of) the bracket.
    const double d01 = x1 - x0, d21 = x1 - x2;
    const double num = d01 * d01 * (m1 - m2) - d21 * d21 * (m1 - m0);
    const double den = d01 * (m1 - m2) - d21 * (m1 - m0);
    double xv = 0.0;
    bool ok = std::abs(den) > 1e-300;
    if (ok) {
      xv = x1 - 0.5 * num / den;
      const double guard = 0.1 * std::min(x1 - x0, x2 - x1);
      ok = xv > x0 + guard && xv < x2 - guard && std::abs(xv - x1) > 0.25 * xtol;
    }
    if (!ok)
      xv = x2 - x1 > x1 - x0 ? x1 + kGolden * (x2 - x1) : x1 - kGolden * (x1 - x0);

    const double fv = std::exp(xv);
    --*budget;
    if (!prober.probe_one(fv, passes)) break;
    const Sample& sv = prober.at(fv);
    if (!sv.covered) break;
    const double mv = sv.margin;
    if (xv < x1) {
      if (mv <= m1) { x2 = x1; m2 = m1; x1 = xv; m1 = mv; }
      else          { x0 = xv; m0 = mv; }
    } else {
      if (mv <= m1) { x0 = x1; m0 = m1; x1 = xv; m1 = mv; }
      else          { x2 = xv; m2 = mv; }
    }
  }
}

}  // namespace

CertifiedScan adaptive_scan(EmiScanner& scanner, const sig::Waveform& w,
                            const ReceiverSettings& rx, const LimitMask& mask,
                            TraceSel trace, const AdaptiveScanConfig& cfg,
                            std::string what) {
  static const obs::Counter c_runs("spec.adaptive.runs");
  static const obs::Counter c_refined("spec.adaptive.refined_points");
  static const obs::Counter c_crossings("spec.adaptive.crossings");
  static const obs::Counter c_passes("spec.adaptive.detector_passes");
  obs::Span span("adaptive_scan");

  if (!(rx.f_start > 0.0 && rx.f_stop > rx.f_start))
    throw std::invalid_argument("adaptive_scan: bad frequency span");

  CertifiedScan out;
  scanner.load_record(w);
  Prober prober(scanner, rx, mask, trace);

  // Stage 1: coarse log-grid pass.
  const std::size_t np = std::max<std::size_t>(2, cfg.coarse_points);
  out.coarse_points = prober.probe(make_log_grid(rx.f_start, rx.f_stop, np));
  out.detector_passes = out.coarse_points;

  std::size_t budget = cfg.max_refined_points;

  // Stage 2: polish interior local worst-margin minima near the mask.
  // Endpoint minima need no refinement — the band edges are measured
  // exactly, and the minimum over the span is then that edge value.
  {
    const std::vector<Pt> pts = covered_points(prober);
    std::vector<std::size_t> minima;
    for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
      const double ml = pts[i - 1].m, mc = pts[i].m, mr = pts[i + 1].m;
      const bool is_min = (mc <= ml && mc < mr) || (mc < ml && mc <= mr);
      if (is_min && mc <= cfg.refine_margin_window_db) minima.push_back(i);
    }
    for (const std::size_t i : minima)
      polish_minimum(prober, pts[i - 1].f, pts[i].f, pts[i + 1].f, cfg,
                     &out.detector_passes, &budget);
  }

  // Stage 3: certify every mask crossing. Detection runs on the merged
  // (coarse + polished) set, so a violation first exposed by stage-2
  // polishing gets bracketed too.
  {
    const std::vector<Pt> pts = covered_points(prober);
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
      Pt lo = pts[i], hi = pts[i + 1];
      const auto passes_mask = [](const Pt& p) { return p.m >= 0.0; };
      if (passes_mask(lo) == passes_mask(hi)) continue;

      // Log-frequency bisection, keeping the bracket's verdicts opposite.
      while (budget > 0 && hi.f - lo.f > cfg.freq_tol_rel * std::sqrt(lo.f * hi.f)) {
        const double fm = std::sqrt(lo.f * hi.f);
        if (!(fm > lo.f && fm < hi.f)) break;  // double-precision floor
        --budget;
        if (!prober.probe_one(fm, &out.detector_passes)) break;
        const Sample& sm = prober.at(fm);
        if (!sm.covered) break;
        const Pt mid{fm, sm.margin};
        if (passes_mask(mid) == passes_mask(lo)) lo = mid; else hi = mid;
      }

      MaskCrossing x;
      x.entering = passes_mask(lo);
      x.f_pass = x.entering ? lo.f : hi.f;
      x.f_fail = x.entering ? hi.f : lo.f;
      // Log-linear interpolated zero of the margin across the bracket.
      const double xl = std::log(lo.f), xh = std::log(hi.f);
      const double t = lo.m / (lo.m - hi.m);
      x.f_cross = std::exp(xl + t * (xh - xl));
      out.crossings.push_back(x);
    }
  }

  // Merge every measured point, frequency-sorted, into the final scan.
  EmiScan& scan = out.scan;
  scan.receiver = rx.name;
  for (const auto& [f, s] : prober.samples()) {
    scan.freq.push_back(f);
    scan.peak_dbuv.push_back(s.peak);
    scan.quasi_peak_dbuv.push_back(s.qp);
    scan.average_dbuv.push_back(s.avg);
  }
  scan.zoom_points = prober.zoom();
  scan.reference_points = prober.reference();
  scan.skipped_points = prober.skipped();
  out.refined_points = out.detector_passes - out.coarse_points;
  scan.refined_points = out.refined_points;

  out.report = check_compliance(scan.freq, scan_trace(scan, trace), mask,
                                std::move(what), scan.skipped_points);

  c_runs.add();
  c_refined.add(out.refined_points);
  c_crossings.add(out.crossings.size());
  c_passes.add(out.detector_passes);
  return out;
}

}  // namespace emc::spec
