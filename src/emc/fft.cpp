#include "emc/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace emc::spec {

namespace {

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n);
  for (std::size_t k = 1; k < n; ++k) rev[k] = rev[k >> 1] >> 1 | (k & 1 ? n >> 1 : 0);
  return rev;
}

std::vector<std::complex<double>> make_twiddles(std::size_t n) {
  std::vector<std::complex<double>> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ph = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    tw[k] = {std::cos(ph), std::sin(ph)};
  }
  return tw;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("FftPlan: length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    tw_ = make_twiddles(n_);
    return;
  }

  // Bluestein: X[k] = w[k] * conv(x.*w, conj-chirp)[k] with
  // w[k] = exp(-i*pi*k^2/n). Reducing k^2 mod 2n before the trig call
  // keeps the chirp phase exact for large k.
  m_ = next_pow2(2 * n_ - 1);
  bitrev_ = make_bitrev(m_);
  tw_ = make_twiddles(m_);

  chirp_.resize(n_);
  const std::size_t two_n = 2 * n_;
  for (std::size_t k = 0; k < n_; ++k) {
    const double ph = -std::numbers::pi * static_cast<double>((k * k) % two_n) /
                      static_cast<double>(n_);
    chirp_[k] = {std::cos(ph), std::sin(ph)};
  }

  chirp_fft_.assign(m_, {0.0, 0.0});
  chirp_fft_[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    chirp_fft_[k] = std::conj(chirp_[k]);
    chirp_fft_[m_ - k] = std::conj(chirp_[k]);
  }
  radix2(chirp_fft_.data(), bitrev_, tw_, /*inv=*/false);

  work_.resize(m_);
}

void FftPlan::radix2_stages(std::complex<double>* x, std::size_t n,
                            const std::vector<std::complex<double>>& tw, bool inv) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = inv ? std::conj(tw[j * step]) : tw[j * step];
        const std::complex<double> u = x[base + j];
        const std::complex<double> v = x[base + j + half] * w;
        x[base + j] = u + v;
        x[base + j + half] = u - v;
      }
    }
  }
}

void FftPlan::radix2(std::complex<double>* x, const std::vector<std::size_t>& bitrev,
                     const std::vector<std::complex<double>>& tw, bool inv) {
  const std::size_t n = bitrev.size();
  for (std::size_t k = 0; k < n; ++k)
    if (k < bitrev[k]) std::swap(x[k], x[bitrev[k]]);
  radix2_stages(x, n, tw, inv);
}

void FftPlan::radix2_to(const std::complex<double>* in, std::complex<double>* out,
                        const std::vector<std::size_t>& bitrev,
                        const std::vector<std::complex<double>>& tw, bool inv) {
  const std::size_t n = bitrev.size();
  for (std::size_t k = 0; k < n; ++k) out[k] = in[bitrev[k]];
  radix2_stages(out, n, tw, inv);
}

void FftPlan::bluestein_to(const std::complex<double>* in, std::complex<double>* out,
                           bool inv) {
  // inverse(x) = conj(forward(conj(x))) / n; the conjugations are folded
  // into the copies below so both directions share the forward machinery.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> xk = inv ? std::conj(in[k]) : in[k];
    work_[k] = xk * chirp_[k];
  }
  for (std::size_t k = n_; k < m_; ++k) work_[k] = {0.0, 0.0};

  radix2(work_.data(), bitrev_, tw_, /*inv=*/false);
  for (std::size_t k = 0; k < m_; ++k) work_[k] *= chirp_fft_[k];
  radix2(work_.data(), bitrev_, tw_, /*inv=*/true);

  const double m_scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> Xk = work_[k] * m_scale * chirp_[k];
    out[k] = inv ? std::conj(Xk) : Xk;
  }
}

void FftPlan::transform(std::complex<double>* x, bool inv) {
  if (n_ == 1) return;
  if (pow2_) {
    radix2(x, bitrev_, tw_, inv);
    return;
  }
  bluestein_to(x, x, inv);
}

void FftPlan::forward(std::complex<double>* x) { transform(x, /*inv=*/false); }

void FftPlan::inverse(std::complex<double>* x) {
  transform(x, /*inv=*/true);
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t k = 0; k < n_; ++k) x[k] *= s;
}

void FftPlan::inverse_to(const std::complex<double>* in, std::complex<double>* out) {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (pow2_) {
    radix2_to(in, out, bitrev_, tw_, /*inv=*/true);
  } else {
    bluestein_to(in, out, /*inv=*/true);
  }
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t k = 0; k < n_; ++k) out[k] *= s;
}

void FftPlan::ensure_real_kernel() {
  if (half_) return;
  const std::size_t h = n_ / 2;
  half_ = std::make_unique<FftPlan>(h);
  rtw_.resize(h / 2 + 1);
  for (std::size_t k = 0; k < rtw_.size(); ++k) {
    const double ph = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    rtw_[k] = {std::cos(ph), std::sin(ph)};
  }
}

void FftPlan::forward_real(std::span<const double> x,
                           std::vector<std::complex<double>>& out) {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::forward_real: length mismatch");
  if (n_ == 1) {
    out.assign(1, {x[0], 0.0});
    return;
  }
  if (n_ % 2 != 0) {
    // Odd length: no even/odd split; run the full complex transform.
    real_buf_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) real_buf_[k] = {x[k], 0.0};
    forward(real_buf_.data());
    out.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = real_buf_[k];
    return;
  }

  // Even/odd split: Z = FFT_h(x_even + i*x_odd), then
  //   E[k] = (Z[k] + conj(Z[h-k])) / 2          (spectrum of even samples)
  //   O[k] = (Z[k] - conj(Z[h-k])) / (2i)       (spectrum of odd samples)
  //   X[k]   = E[k] + W^k O[k],  W = exp(-2*pi*i/n)
  //   X[h-k] = conj(E[k] - W^k O[k])            (Hermitian pairing)
  // with specialized butterflies for the purely real DC/Nyquist pair
  // (k = 0) and the self-paired center bin (k = h/2, W^{h/2} = -i).
  ensure_real_kernel();
  const std::size_t h = n_ / 2;
  real_buf_.resize(h);
  for (std::size_t j = 0; j < h; ++j) real_buf_[j] = {x[2 * j], x[2 * j + 1]};
  half_->forward(real_buf_.data());

  out.resize(h + 1);
  const std::complex<double>* Z = real_buf_.data();
  out[0] = {Z[0].real() + Z[0].imag(), 0.0};
  out[h] = {Z[0].real() - Z[0].imag(), 0.0};
  for (std::size_t k = 1; 2 * k < h; ++k) {
    const std::complex<double> za = Z[k];
    const std::complex<double> zb = std::conj(Z[h - k]);
    const std::complex<double> e = 0.5 * (za + zb);
    const std::complex<double> o = std::complex<double>{0.0, -0.5} * (za - zb);
    const std::complex<double> t = rtw_[k] * o;
    out[k] = e + t;
    out[h - k] = std::conj(e - t);
  }
  if (h % 2 == 0 && h >= 2) out[h / 2] = std::conj(Z[h / 2]);
}

}  // namespace emc::spec
