#include "emc/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace emc::spec {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t m = 1;
  while (m < n) m <<= 1;
  return m;
}

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n);
  for (std::size_t k = 1; k < n; ++k) rev[k] = rev[k >> 1] >> 1 | (k & 1 ? n >> 1 : 0);
  return rev;
}

std::vector<std::complex<double>> make_twiddles(std::size_t n) {
  std::vector<std::complex<double>> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ph = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    tw[k] = {std::cos(ph), std::sin(ph)};
  }
  return tw;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("FftPlan: length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    tw_ = make_twiddles(n_);
    return;
  }

  // Bluestein: X[k] = w[k] * conv(x.*w, conj-chirp)[k] with
  // w[k] = exp(-i*pi*k^2/n). Reducing k^2 mod 2n before the trig call
  // keeps the chirp phase exact for large k.
  m_ = next_pow2(2 * n_ - 1);
  bitrev_ = make_bitrev(m_);
  tw_ = make_twiddles(m_);

  chirp_.resize(n_);
  const std::size_t two_n = 2 * n_;
  for (std::size_t k = 0; k < n_; ++k) {
    const double ph = -std::numbers::pi * static_cast<double>((k * k) % two_n) /
                      static_cast<double>(n_);
    chirp_[k] = {std::cos(ph), std::sin(ph)};
  }

  chirp_fft_.assign(m_, {0.0, 0.0});
  chirp_fft_[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    chirp_fft_[k] = std::conj(chirp_[k]);
    chirp_fft_[m_ - k] = std::conj(chirp_[k]);
  }
  radix2(chirp_fft_.data(), bitrev_, tw_, /*inv=*/false);

  work_.resize(m_);
}

void FftPlan::radix2(std::complex<double>* x, const std::vector<std::size_t>& bitrev,
                     const std::vector<std::complex<double>>& tw, bool inv) {
  const std::size_t n = bitrev.size();
  for (std::size_t k = 0; k < n; ++k)
    if (k < bitrev[k]) std::swap(x[k], x[bitrev[k]]);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = inv ? std::conj(tw[j * step]) : tw[j * step];
        const std::complex<double> u = x[base + j];
        const std::complex<double> v = x[base + j + half] * w;
        x[base + j] = u + v;
        x[base + j + half] = u - v;
      }
    }
  }
}

void FftPlan::bluestein(std::complex<double>* x, bool inv) {
  // inverse(x) = conj(forward(conj(x))) / n; the conjugations are folded
  // into the copies below so both directions share the forward machinery.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> xk = inv ? std::conj(x[k]) : x[k];
    work_[k] = xk * chirp_[k];
  }
  for (std::size_t k = n_; k < m_; ++k) work_[k] = {0.0, 0.0};

  radix2(work_.data(), bitrev_, tw_, /*inv=*/false);
  for (std::size_t k = 0; k < m_; ++k) work_[k] *= chirp_fft_[k];
  radix2(work_.data(), bitrev_, tw_, /*inv=*/true);

  const double m_scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> Xk = work_[k] * m_scale * chirp_[k];
    x[k] = inv ? std::conj(Xk) : Xk;
  }
}

void FftPlan::transform(std::complex<double>* x, bool inv) {
  if (n_ == 1) return;
  if (pow2_) {
    radix2(x, bitrev_, tw_, inv);
    return;
  }
  bluestein(x, inv);
}

void FftPlan::forward(std::complex<double>* x) { transform(x, /*inv=*/false); }

void FftPlan::inverse(std::complex<double>* x) {
  transform(x, /*inv=*/true);
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t k = 0; k < n_; ++k) x[k] *= s;
}

void FftPlan::forward_real(std::span<const double> x,
                           std::vector<std::complex<double>>& out) {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::forward_real: length mismatch");
  real_buf_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) real_buf_[k] = {x[k], 0.0};
  forward(real_buf_.data());
  out.resize(n_ / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = real_buf_[k];
}

}  // namespace emc::spec
