// Estimation of the receiver macromodel (paper Section 3):
//  * linear ARX submodel from small steps inside the supply range,
//  * up / down clamp RBF submodels from multilevel records beyond each
//    rail, fitted on the residual after subtracting the linear part,
//  * and the baseline C-R model (capacitance from the linear record,
//    static resistor from a DC sweep).
#pragma once

#include <cstdint>

#include "core/dut.hpp"
#include "core/receiver_model.hpp"

namespace emc::core {

struct ReceiverEstimationOptions {
  int lin_order = 2;        ///< ARX orders (na = nb = lin_order)
  int nl_taps = 2;          ///< voltage taps of the clamp submodels
  int max_basis_clamp = 8;  ///< RBF size per clamp
  double ts = 25e-12;
  double rs = 25.0;         ///< source resistance of identification fixtures
  double v_beyond = 1.2;    ///< how far beyond a rail the clamp records go [V]
  double lin_lo = 0.1;      ///< linear record range [lin_lo, lin_hi]*vdd
  double lin_hi = 0.9;
  int n_steps = 60;
  int n_levels = 7;
  double t_hold = 1.0e-9;
  double t_edge = 0.1e-9;
  std::uint64_t seed = 515;
  ident::RbfFitOptions rbf;
};

/// Full parametric model estimation.
ParametricReceiverModel estimate_receiver_model(const ReceiverDut& dut,
                                                const ReceiverEstimationOptions& opt = {});

/// Baseline C-R model estimation from the same DUT.
CrReceiverModel estimate_cr_model(const ReceiverDut& dut,
                                  const ReceiverEstimationOptions& opt = {});

}  // namespace emc::core
