#include "core/driver_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::core {

namespace {

/// Identification record of one logic state.
PortRecord record_state(const DriverDut& dut, bool high, const DriverEstimationOptions& opt,
                        std::uint64_t seed) {
  const double v_min = -opt.v_margin;
  const double v_max = dut.vdd() + opt.v_margin;
  const auto sig = sig::multilevel_signal(v_min, v_max, opt.n_levels, opt.n_steps,
                                          opt.t_hold, opt.t_edge, seed);
  const double t_stop = (opt.t_hold + opt.t_edge) * (opt.n_steps + 2);
  return dut.forced_response(high, sig, opt.rs, opt.ts, t_stop);
}


/// Free-run relative RMS error of a candidate submodel on a record.
double free_run_error(const ident::RbfModel& m, ident::NarxOrders ord,
                      const PortRecord& rec) {
  std::vector<double> i_init(static_cast<std::size_t>(ord.history()));
  for (std::size_t k = 0; k < i_init.size(); ++k) i_init[k] = rec.i[k];
  const auto sim = ident::simulate_narx(m, ord, rec.v.samples(), i_init);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 20; k < sim.size(); ++k) {
    num += (sim[k] - rec.i[k]) * (sim[k] - rec.i[k]);
    den += rec.i[k] * rec.i[k];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// Fit one state submodel: OLS paths over a (sigma, basis) grid, scored by
/// free-run error on a held-out validation record. The paper's free-run
/// usage makes one-step scoring misleading: slightly overfitted feedback
/// terms destabilize the recursion, so the selection must run the model.
/// (A static-anchoring staircase record was tried here and rejected: it
/// pulls the fit toward the extreme-current statics and consistently
/// degrades the transition dynamics of the faster devices; the residual
/// static zero-crossing offset is documented in EXPERIMENTS.md.)
ident::RbfModel fit_submodel(const PortRecord& train, const PortRecord& val, int order,
                             int max_basis, const ident::RbfFitOptions& base) {
  ident::NarxOrders ord{order, order};
  const auto ds = ident::build_narx_dataset(train.v, train.i, ord);
  ident::RbfFitOptions o = base;

  const double sigma_grid[] = {1.0, 1.5, 2.2, 3.2};
  std::vector<int> basis_grid;
  for (int nb = 6; nb <= max_basis; nb += 4) basis_grid.push_back(nb);
  if (basis_grid.empty() || basis_grid.back() != max_basis)
    basis_grid.push_back(max_basis);

  return ident::fit_rbf_best(ds.x, ds.y, o, sigma_grid, basis_grid,
                             [&](const ident::RbfModel& m) {
                               // Must free-run on both records: stability on
                               // the training record is part of the score.
                               return free_run_error(m, ord, val) +
                                      free_run_error(m, ord, train);
                             });
}

/// Free-run a submodel over a recorded voltage, seeding its histories at
/// the record's initial operating point.
std::vector<double> free_run(const PwRbfDriverModel& m, bool high, const sig::Waveform& v) {
  SubmodelState st(m, high, v[0]);
  std::vector<double> i(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) i[k] = st.step(v[k]);
  return i;
}

double rel_rms(std::span<const double> ref, std::span<const double> test,
               std::size_t skip) {
  double num = 0.0, den = 0.0;
  for (std::size_t k = skip; k < ref.size(); ++k) {
    num += (ref[k] - test[k]) * (ref[k] - test[k]);
    den += ref[k] * ref[k];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num / static_cast<double>(ref.size()));
}

/// Per-sample 2x2 inversion of eq. (1) on two loads, with Tikhonov
/// regularization scaled to the current magnitudes, end-point blending to
/// the exact steady weights, and light smoothing.
WeightSequence solve_weights(const std::vector<double>& ih1, const std::vector<double>& il1,
                             const std::vector<double>& i1, const std::vector<double>& ih2,
                             const std::vector<double>& il2, const std::vector<double>& i2,
                             std::size_t k0, std::size_t n_keep, bool rising,
                             double ridge_rel) {
  WeightSequence seq;
  seq.wh.resize(n_keep);
  seq.wl.resize(n_keep);

  auto [wh_prev, wl_prev] = PwRbfDriverModel::steady_weights(!rising);
  for (std::size_t j = 0; j < n_keep; ++j) {
    const std::size_t k = k0 + j;
    // A w = b with A = [[ih1, il1], [ih2, il2]], b = [i1, i2].
    const double a11 = ih1[k], a12 = il1[k], a21 = ih2[k], a22 = il2[k];
    const double scale = a11 * a11 + a12 * a12 + a21 * a21 + a22 * a22;
    const double lam = ridge_rel * scale + 1e-30;
    // Tikhonov toward the previous sample: the weight trajectories are
    // smooth by construction (they encode one switching event), and the
    // prior takes over exactly where the two load records become
    // collinear and the plain inversion is ill posed.
    const double m11 = a11 * a11 + a21 * a21 + lam;
    const double m12 = a11 * a12 + a21 * a22;
    const double m22 = a12 * a12 + a22 * a22 + lam;
    const double r1 = a11 * i1[k] + a21 * i2[k] + lam * wh_prev;
    const double r2 = a12 * i1[k] + a22 * i2[k] + lam * wl_prev;
    const double det = m11 * m22 - m12 * m12;
    double wh = wh_prev, wl = wl_prev;
    if (std::abs(det) > 1e-30) {
      wh = (r1 * m22 - r2 * m12) / det;
      wl = (m11 * r2 - m12 * r1) / det;
    }
    // Keep the weights physical: they describe a convex-ish mix.
    wh = std::clamp(wh, -0.25, 1.25);
    wl = std::clamp(wl, -0.25, 1.25);
    seq.wh[j] = wh;
    seq.wl[j] = wl;
    wh_prev = wh;
    wl_prev = wl;
  }

  // 3-point moving average (kills isolated near-singular spikes).
  auto smooth = [](std::vector<double>& w) {
    if (w.size() < 3) return;
    std::vector<double> s(w);
    for (std::size_t j = 1; j + 1 < w.size(); ++j)
      s[j] = (w[j - 1] + w[j] + w[j + 1]) / 3.0;
    w.swap(s);
  };
  smooth(seq.wh);
  smooth(seq.wl);

  // Pin the head to the exact initial steady weights.
  if (!seq.wh.empty()) {
    const auto [wh0, wl0] = PwRbfDriverModel::steady_weights(!rising);
    seq.wh.front() = wh0;
    seq.wl.front() = wl0;
  }
  return seq;
}

/// Trim the sequence at its measured settling point and blend the kept
/// tail into the exact steady weights. Each device thus carries a
/// transition of its natural duration, which completes before a following
/// bit edge preempts it (fast ASIC drivers settle well under 1 ns; a
/// 4 ns untrimmed sequence would be restarted mid-flight on every bit).
void trim_to_settling(WeightSequence& seq, bool rising, double tol) {
  if (seq.empty()) return;
  const auto [wh_inf, wl_inf] = PwRbfDriverModel::steady_weights(rising);
  // Last sample violating the settling band.
  std::size_t last_active = 0;
  for (std::size_t j = 0; j < seq.size(); ++j) {
    if (std::abs(seq.wh[j] - wh_inf) > tol || std::abs(seq.wl[j] - wl_inf) > tol)
      last_active = j;
  }
  const std::size_t keep =
      std::min(seq.size(), last_active + std::max<std::size_t>(seq.size() / 10, 8));
  seq.wh.resize(keep);
  seq.wl.resize(keep);

  const std::size_t blend_start = keep - std::min<std::size_t>(keep / 4 + 1, keep);
  for (std::size_t j = blend_start; j < keep; ++j) {
    const double a = static_cast<double>(j - blend_start + 1) /
                     static_cast<double>(keep - blend_start);
    seq.wh[j] = (1.0 - a) * seq.wh[j] + a * wh_inf;
    seq.wl[j] = (1.0 - a) * seq.wl[j] + a * wl_inf;
  }
}

}  // namespace

PwRbfDriverModel estimate_driver_model(const DriverDut& dut,
                                       const DriverEstimationOptions& opt) {
  PwRbfDriverModel model;
  model.ts = opt.ts;
  model.vdd = dut.vdd();
  model.orders = ident::NarxOrders{opt.order, opt.order};

  // --- 1. State submodels -------------------------------------------------
  const auto rec_h = record_state(dut, true, opt, opt.seed);
  const auto rec_l = record_state(dut, false, opt, opt.seed + 1);
  if (rec_h.v.size() < 100 || rec_l.v.size() < 100)
    throw std::runtime_error("estimate_driver_model: identification record too short");

  // Short held-out records (different excitation) for model-order scoring.
  DriverEstimationOptions vopt = opt;
  vopt.n_steps = std::max(30, opt.n_steps / 4);
  const auto val_h = record_state(dut, true, vopt, opt.seed + 53);
  const auto val_l = record_state(dut, false, vopt, opt.seed + 54);

  model.f_high = fit_submodel(rec_h, val_h, opt.order, opt.max_basis_high, opt.rbf);
  model.f_low = fit_submodel(rec_l, val_l, opt.order, opt.max_basis_low, opt.rbf);

  // --- 2. Switching weights ----------------------------------------------
  // One bit of pre-roll so the DC point is settled, then the edge.
  const double pre = 2e-9;
  const double t_stop = pre + opt.w_window + 2e-9;
  const auto n_keep = static_cast<std::size_t>(std::llround(opt.w_window / opt.ts));

  for (bool rising : {true, false}) {
    const std::string bits = rising ? "01" : "10";
    const auto r1 = dut.switching_response(bits, pre, opt.load1_r, 0.0, opt.ts, t_stop);
    const auto r2 = dut.switching_response(bits, pre, opt.load2_r, dut.vdd(), opt.ts, t_stop);

    const auto ih1 = free_run(model, true, r1.v);
    const auto il1 = free_run(model, false, r1.v);
    const auto ih2 = free_run(model, true, r2.v);
    const auto il2 = free_run(model, false, r2.v);

    // The logic edge fires at t = pre (input starts ramping there).
    const auto k0 = static_cast<std::size_t>(std::llround(pre / opt.ts));
    if (k0 + n_keep > r1.v.size())
      throw std::runtime_error("estimate_driver_model: switching record too short");

    auto seq = solve_weights(ih1, il1, r1.i.samples(), ih2, il2, r2.i.samples(), k0,
                             n_keep, rising, opt.w_ridge);
    trim_to_settling(seq, rising, opt.w_settle_tol);
    if (rising)
      model.up = seq;
    else
      model.down = seq;
  }
  return model;
}

SubmodelFitReport validate_submodels(const DriverDut& dut, const PwRbfDriverModel& model,
                                     const DriverEstimationOptions& opt) {
  SubmodelFitReport rep;
  DriverEstimationOptions vopt = opt;
  vopt.n_steps = std::max(30, opt.n_steps / 3);
  const auto rec_h = record_state(dut, true, vopt, opt.seed + 101);
  const auto rec_l = record_state(dut, false, vopt, opt.seed + 202);

  const auto sim_h = free_run(model, true, rec_h.v);
  const auto sim_l = free_run(model, false, rec_l.v);
  const std::size_t skip = 20;  // settle the seeded histories
  rep.rel_rms_high = rel_rms(rec_h.i.samples(), sim_h, skip);
  rep.rel_rms_low = rel_rms(rec_l.i.samples(), sim_l, skip);
  return rep;
}

}  // namespace emc::core
