// MNA coupling of the receiver macromodels: the parametric model (eq. 2)
// as a discrete-time nonlinear device, and a helper that instantiates the
// C-R baseline from circuit primitives.
#pragma once

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"
#include "core/receiver_model.hpp"

namespace emc::core {

class ReceiverDevice : public ckt::Device {
 public:
  /// Model must outlive the device; `pin` is loaded against ground.
  ReceiverDevice(int pin, const ParametricReceiverModel& model);

  bool nonlinear() const override { return true; }
  void start_step(const ckt::SimState& st) override;
  void stamp(ckt::Stamper& s, const ckt::SimState& st) const override;
  void commit(const ckt::SimState& st) override;
  void post_dc(const ckt::SimState& st) override;
  void reset() override;

 private:
  int pin_;
  const ParametricReceiverModel* model_;
  std::vector<double> v_hist_;     // newest first, v(k-1), v(k-2), ...
  std::vector<double> ilin_hist_;  // i_lin(k-1), ...
};

/// Add the C-R baseline model at `pin` (shunt C + static I(V) table).
void add_cr_receiver(ckt::Circuit& ckt, int pin, const CrReceiverModel& model);

}  // namespace emc::core
