// Validation report helpers implementing the paper's Section 5 accuracy
// metrics (threshold-crossing timing error, RMS/max voltage errors).
#pragma once

#include <optional>
#include <string>

#include "signal/metrics.hpp"
#include "signal/waveform.hpp"

namespace emc::core {

struct ValidationReport {
  std::string label;
  double rms_error = 0.0;                ///< [V] or [A]
  double max_error = 0.0;
  double rel_rms = 0.0;                  ///< rms error / rms of reference
  std::optional<double> timing_error;    ///< [s], all deglitched crossings
  std::optional<double> edge_timing_error;  ///< [s], fast edges only (the
                                            ///< paper's Section 5 metric)

  /// One formatted line, paper-style.
  std::string to_line() const;
};

/// Compare a model waveform against the reference. The timing error uses
/// `threshold` (typically VDD/2); crossings closer than `min_separation`
/// are merged first.
ValidationReport validate_waveform(const std::string& label, const sig::Waveform& reference,
                                   const sig::Waveform& model, double threshold,
                                   double min_separation = 0.0);

}  // namespace emc::core
