#include "core/driver_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace emc::core {

double PwRbfDriverModel::submodel_current(bool high, std::span<const double> v_hist,
                                          std::span<const double> i_hist,
                                          double* d_dv) const {
  const ident::RbfModel& f = high ? f_high : f_low;
  std::vector<double> reg(static_cast<std::size_t>(orders.regressor_size()));
  ident::fill_narx_regressor(v_hist, i_hist, orders, reg);
  return d_dv ? f.eval_with_grad(reg, 0, d_dv) : f.eval(reg);
}

double PwRbfDriverModel::steady_current(bool high, double v, int iters) const {
  std::vector<double> v_hist(static_cast<std::size_t>(orders.nv) + 1, v);
  std::vector<double> i_hist(static_cast<std::size_t>(orders.ni), 0.0);
  double i = 0.0;
  for (int it = 0; it < iters; ++it) {
    const double i_new = submodel_current(high, v_hist, i_hist);
    // Damped fixed-point iteration: NARX feedback can be stiff.
    i = 0.5 * i + 0.5 * i_new;
    for (auto& h : i_hist) h = i;
  }
  return i;
}

std::pair<double, double> PwRbfDriverModel::weights_at(bool rising,
                                                       std::size_t steps_since_edge) const {
  const WeightSequence& seq = rising ? up : down;
  if (steps_since_edge < seq.size())
    return {seq.wh[steps_since_edge], seq.wl[steps_since_edge]};
  return steady_weights(rising);
}

SubmodelState::SubmodelState(const PwRbfDriverModel& m, bool high, double v0)
    : m_(&m),
      high_(high),
      v_hist_(static_cast<std::size_t>(m.orders.nv) + 1, v0),
      i_hist_(static_cast<std::size_t>(m.orders.ni), m.steady_current(high, v0)) {}

void SubmodelState::push_front(std::vector<double>& h, double value) {
  for (std::size_t j = h.size(); j-- > 1;) h[j] = h[j - 1];
  if (!h.empty()) h[0] = value;
}

double SubmodelState::peek(double v, double* d_dv) const {
  std::vector<double> vh(v_hist_.size());
  vh[0] = v;
  for (std::size_t j = 1; j < vh.size(); ++j) vh[j] = v_hist_[j - 1];
  return m_->submodel_current(high_, vh, i_hist_, d_dv);
}

double SubmodelState::step(double v, double* d_dv) {
  push_front(v_hist_, v);
  const double i = m_->submodel_current(high_, v_hist_, i_hist_, d_dv);
  push_front(i_hist_, i);
  return i;
}

void SubmodelState::reseed(double v0) {
  for (auto& h : v_hist_) h = v0;
  const double i0 = m_->steady_current(high_, v0);
  for (auto& h : i_hist_) h = i0;
}

sig::Waveform simulate_driver_on_voltage(const PwRbfDriverModel& m, const sig::Waveform& v,
                                         std::size_t edge_step, bool rising) {
  if (v.empty()) throw std::invalid_argument("simulate_driver_on_voltage: empty input");
  SubmodelState run_h(m, true, v[0]);
  SubmodelState run_l(m, false, v[0]);

  std::vector<double> i(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) {
    const double ih = run_h.step(v[k]);
    const double il = run_l.step(v[k]);
    const auto [wh, wl] = (k < edge_step)
                              ? PwRbfDriverModel::steady_weights(!rising)
                              : m.weights_at(rising, k - edge_step);
    i[k] = wh * ih + wl * il;
  }
  return sig::Waveform(v.t0(), v.dt(), std::move(i));
}

sig::Waveform simulate_driver_on_thevenin(const PwRbfDriverModel& m, const std::string& bits,
                                          double bit_time,
                                          const std::function<double(double)>& v_oc,
                                          double r_th, double t_stop) {
  if (bits.empty()) throw std::invalid_argument("simulate_driver_on_thevenin: empty bits");
  if (r_th <= 0.0) throw std::invalid_argument("simulate_driver_on_thevenin: r_th <= 0");

  const double dt = m.ts;
  const auto n = static_cast<std::size_t>(std::llround(t_stop / dt));

  // Initial DC point: solve i_state(v) = (voc - v)/rth for the first bit.
  const bool init_high = bits[0] == '1';
  double v = v_oc(0.0);
  for (int it = 0; it < 60; ++it) {
    const double f = m.steady_current(init_high, v, 60) - (v_oc(0.0) - v) / r_th;
    const double h = 1e-4;
    const double f2 = m.steady_current(init_high, v + h, 60) - (v_oc(0.0) - v - h) / r_th;
    const double df = (f2 - f) / h;
    if (std::abs(df) < 1e-12) break;
    const double step = f / df;
    v -= std::clamp(step, -0.5, 0.5);
    if (std::abs(step) < 1e-9) break;
  }

  SubmodelState run_h(m, true, v);
  SubmodelState run_l(m, false, v);

  // Logic edge schedule from the bit pattern.
  auto bit_at = [&](double t) {
    auto idx = static_cast<std::size_t>(t / bit_time);
    if (idx >= bits.size()) idx = bits.size() - 1;
    return bits[idx] == '1';
  };

  std::vector<double> out(n + 1);
  out[0] = v;
  bool state = init_high;
  bool rising = init_high;
  std::size_t steps_since_edge = std::numeric_limits<std::size_t>::max() / 2;

  for (std::size_t k = 1; k <= n; ++k) {
    const double t = dt * static_cast<double>(k);
    const bool b = bit_at(t);
    if (b != state) {
      rising = b;
      state = b;
      steps_since_edge = 0;
    } else if (steps_since_edge < std::numeric_limits<std::size_t>::max() / 2) {
      ++steps_since_edge;
    }
    const auto [wh, wl] = (steps_since_edge < std::numeric_limits<std::size_t>::max() / 2)
                              ? m.weights_at(rising, steps_since_edge)
                              : PwRbfDriverModel::steady_weights(state);

    // Newton on the port voltage: g(v) = wh*iH(v) + wl*iL(v) - (voc-v)/rth.
    // Submodel histories are advanced once per accepted sample, so the
    // Newton loop re-evaluates currents from frozen histories.
    const double voc = v_oc(t);
    double v_k = v;  // warm start from the previous sample
    double ih = 0.0, il = 0.0;
    for (int it = 0; it < 50; ++it) {
      double dh = 0.0, dl = 0.0;
      // Evaluate with candidate voltage at the head of a scratch history.
      ih = run_h.peek(v_k, &dh);
      il = run_l.peek(v_k, &dl);
      const double g = wh * ih + wl * il - (voc - v_k) / r_th;
      const double dg = wh * dh + wl * dl + 1.0 / r_th;
      const double step = g / dg;
      v_k -= std::clamp(step, -0.3, 0.3);
      if (std::abs(step) < 1e-9) break;
    }
    run_h.step(v_k);
    run_l.step(v_k);
    v = v_k;
    out[k] = v;
  }
  return sig::Waveform(0.0, dt, std::move(out));
}

}  // namespace emc::core
