// Device-under-test abstraction: the estimators only need port waveform
// records of identification experiments, not the device internals. The
// circuit-backed implementation (circuit_dut.hpp) wraps the reference
// transistor-level models; tests can plug in synthetic DUTs.
//
// Sign convention used throughout: the port current i is the current
// flowing *into* the device pin.
#pragma once

#include <string>

#include "signal/sources.hpp"
#include "signal/waveform.hpp"

namespace emc::core {

/// Aligned voltage/current record at a device port.
struct PortRecord {
  sig::Waveform v;
  sig::Waveform i;
};

/// An output port (driver) that identification experiments can be run on.
class DriverDut {
 public:
  virtual ~DriverDut() = default;

  virtual double vdd() const = 0;

  /// Hold the driver in the given logic state and force the port with the
  /// source waveform `vsrc` behind resistance `rs`; record (v, i) at the
  /// pin with sample time dt.
  virtual PortRecord forced_response(bool high, const sig::Pwl& vsrc, double rs, double dt,
                                     double t_stop) const = 0;

  /// Drive the logic input with `bits` (bit period `bit_time`) into a
  /// Thevenin load (r_th to v_load); record (v, i) at the pin.
  virtual PortRecord switching_response(const std::string& bits, double bit_time,
                                        double r_th, double v_load, double dt,
                                        double t_stop) const = 0;
};

/// An input port (receiver).
class ReceiverDut {
 public:
  virtual ~ReceiverDut() = default;

  virtual double vdd() const = 0;

  /// Force the pin with `vsrc` behind `rs`; record (v, i) at the pin.
  virtual PortRecord forced_response(const sig::Pwl& vsrc, double rs, double dt,
                                     double t_stop) const = 0;
};

}  // namespace emc::core
