#include "core/receiver_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::core {

namespace {

PortRecord record_range(const ReceiverDut& dut, double v_min, double v_max,
                        const ReceiverEstimationOptions& opt, std::uint64_t seed) {
  const auto sig = sig::multilevel_signal(v_min, v_max, opt.n_levels, opt.n_steps,
                                          opt.t_hold, opt.t_edge, seed);
  const double t_stop = (opt.t_hold + opt.t_edge) * (opt.n_steps + 2);
  return dut.forced_response(sig, opt.rs, opt.ts, t_stop);
}

}  // namespace

ParametricReceiverModel estimate_receiver_model(const ReceiverDut& dut,
                                                const ReceiverEstimationOptions& opt) {
  ParametricReceiverModel m;
  m.ts = opt.ts;
  m.vdd = dut.vdd();
  m.nl_taps = opt.nl_taps;

  // --- linear submodel: small steps inside the rails ----------------------
  const auto rec_lin = record_range(dut, opt.lin_lo * dut.vdd(), opt.lin_hi * dut.vdd(),
                                    opt, opt.seed);
  m.lin = ident::fit_arx(rec_lin.v, rec_lin.i, opt.lin_order, opt.lin_order);

  // --- clamp submodels: residual fits beyond each rail --------------------
  auto fit_clamp = [&](double v_min, double v_max, std::uint64_t seed) {
    const auto rec = record_range(dut, v_min, v_max, opt, seed);
    const auto i_lin = ident::simulate_arx(m.lin, rec.v.samples());
    // Residual target: what the linear model cannot explain.
    std::vector<double> resid(rec.i.size());
    for (std::size_t k = 0; k < resid.size(); ++k) resid[k] = rec.i[k] - i_lin[k];

    // FIR regressors on the voltage taps only (static + short dynamics).
    const auto taps = static_cast<std::size_t>(opt.nl_taps);
    const std::size_t n_rows = rec.v.size() - taps;
    linalg::Matrix x(n_rows, taps);
    std::vector<double> y(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      const std::size_t k = r + taps - 1;
      for (std::size_t j = 0; j < taps; ++j) x(r, j) = rec.v[k - j];
      y[r] = resid[k];
    }
    ident::RbfFitOptions o = opt.rbf;
    o.max_basis = opt.max_basis_clamp;
    return ident::fit_rbf_auto(x, y, o);
  };

  m.up = fit_clamp(dut.vdd() - 0.15, dut.vdd() + opt.v_beyond, opt.seed + 11);
  m.dn = fit_clamp(-opt.v_beyond, 0.15, opt.seed + 22);
  return m;
}

CrReceiverModel estimate_cr_model(const ReceiverDut& dut,
                                  const ReceiverEstimationOptions& opt) {
  CrReceiverModel m;

  // Capacitance: least squares of i ~ C dv/dt on the linear-range record.
  const auto rec = record_range(dut, opt.lin_lo * dut.vdd(), opt.lin_hi * dut.vdd(), opt,
                                opt.seed + 33);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 1; k < rec.v.size(); ++k) {
    const double dv = (rec.v[k] - rec.v[k - 1]) / rec.v.dt();
    num += rec.i[k] * dv;
    den += dv * dv;
  }
  if (den <= 0.0) throw std::runtime_error("estimate_cr_model: degenerate linear record");
  m.c = std::max(num / den, 1e-15);

  // Static resistor: DC sweep (settled short transients at forced levels).
  const double v_lo = -opt.v_beyond;
  const double v_hi = dut.vdd() + opt.v_beyond;
  const int n_pts = 33;
  for (int p = 0; p < n_pts; ++p) {
    const double v = v_lo + (v_hi - v_lo) * static_cast<double>(p) / (n_pts - 1);
    sig::Pwl dc({{0.0, v}, {1e-9, v}});
    const auto r = dut.forced_response(dc, opt.rs, opt.ts, 4e-9);
    m.iv.emplace_back(r.v[r.v.size() - 1], r.i[r.i.size() - 1]);
  }
  std::sort(m.iv.begin(), m.iv.end());
  // Deduplicate voltages that collapsed onto the same settled point.
  m.iv.erase(std::unique(m.iv.begin(), m.iv.end(),
                         [](const auto& a, const auto& b) {
                           return std::abs(a.first - b.first) < 1e-9;
                         }),
             m.iv.end());
  if (m.iv.size() < 2) throw std::runtime_error("estimate_cr_model: degenerate DC sweep");
  return m;
}

}  // namespace emc::core
