#include "core/receiver_device.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/devices_linear.hpp"

namespace emc::core {

ReceiverDevice::ReceiverDevice(int pin, const ParametricReceiverModel& model)
    : pin_(pin), model_(&model) {
  const std::size_t hv = std::max<std::size_t>(
      model.lin.b.size() > 0 ? model.lin.b.size() - 1 : 0,
      static_cast<std::size_t>(model.nl_taps > 0 ? model.nl_taps - 1 : 0));
  v_hist_.assign(std::max<std::size_t>(hv, 1), 0.0);
  ilin_hist_.assign(std::max<std::size_t>(model.lin.a.size(), 1), 0.0);
}

void ReceiverDevice::start_step(const ckt::SimState& st) {
  if (std::abs(st.dt - model_->ts) > 1e-3 * model_->ts)
    throw std::runtime_error(
        "ReceiverDevice: the engine step must equal the model sampling time Ts");
}

void ReceiverDevice::stamp(ckt::Stamper& s, const ckt::SimState& st) const {
  const double v = st.v(pin_);
  if (st.dc) {
    const double i0 = model_->static_current(v);
    const double h = 1e-3;
    const double g = (model_->static_current(v + h) - i0) / h;
    s.nonlinear_current(pin_, 0, i0, std::max(g, 0.0), v);
    s.conductance(pin_, 0, 1e-9);
    return;
  }
  double g = 0.0;
  const double i = model_->current(v, v_hist_, ilin_hist_, &g);
  s.nonlinear_current(pin_, 0, i, g, v);
  s.conductance(pin_, 0, 1e-9);
}

void ReceiverDevice::commit(const ckt::SimState& st) {
  if (st.dc) return;
  const double v = st.v(pin_);
  const double i_lin = model_->linear_current(v, v_hist_, ilin_hist_);
  for (std::size_t j = v_hist_.size(); j-- > 1;) v_hist_[j] = v_hist_[j - 1];
  v_hist_[0] = v;
  for (std::size_t j = ilin_hist_.size(); j-- > 1;) ilin_hist_[j] = ilin_hist_[j - 1];
  ilin_hist_[0] = i_lin;
}

void ReceiverDevice::post_dc(const ckt::SimState& st) {
  const double v = st.v(pin_);
  for (auto& h : v_hist_) h = v;
  double ilin_ss = 0.0;
  try {
    ilin_ss = model_->lin.dc_gain() * v;
  } catch (const std::runtime_error&) {
    ilin_ss = 0.0;
  }
  for (auto& h : ilin_hist_) h = ilin_ss;
}

void ReceiverDevice::reset() {
  for (auto& h : v_hist_) h = 0.0;
  for (auto& h : ilin_hist_) h = 0.0;
}

void add_cr_receiver(ckt::Circuit& ckt, int pin, const CrReceiverModel& model) {
  if (model.c <= 0.0 || model.iv.size() < 2)
    throw std::invalid_argument("add_cr_receiver: model not estimated");
  ckt.add<ckt::Capacitor>(pin, ckt.ground(), model.c);
  ckt.add<ckt::TableCurrent>(pin, ckt.ground(), model.iv);
}

}  // namespace emc::core
