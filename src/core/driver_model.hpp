// The paper's primary contribution, eq. (1): the Piece-Wise RBF driver
// macromodel
//
//   i(k) = w_H(k) * i_H(k) + w_L(k) * i_L(k)
//
// i_H / i_L are RBF NARX submodels describing the port in the fixed High
// and Low logic states; each one free-runs on the port voltage and its own
// past outputs. w_H / w_L are switching weight sequences (one pair per
// transition direction) obtained by linear inversion of (1) on two
// identification loads.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ident/rbf.hpp"
#include "signal/waveform.hpp"

namespace emc::core {

/// Switching weights sampled at the model rate, starting at the logic edge.
struct WeightSequence {
  std::vector<double> wh;
  std::vector<double> wl;

  std::size_t size() const { return wh.size(); }
  bool empty() const { return wh.empty(); }
};

/// Complete two-piece driver macromodel.
class PwRbfDriverModel {
 public:
  ident::RbfModel f_high;     ///< submodel i_H
  ident::RbfModel f_low;      ///< submodel i_L
  ident::NarxOrders orders;   ///< shared dynamic order (paper: r = 2..3)
  WeightSequence up;          ///< weights for the Low->High transition
  WeightSequence down;        ///< weights for the High->Low transition
  double ts = 25e-12;         ///< sampling time [s]
  double vdd = 3.3;           ///< High-state supply [V]
  std::string name;           ///< device tag (reports / exports)

  /// Submodel output given explicit histories (newest first):
  /// v_hist = [v(k), v(k-1), ...], i_hist = [i(k-1), ...] of *that*
  /// submodel. Optionally returns d i / d v(k).
  double submodel_current(bool high, std::span<const double> v_hist,
                          std::span<const double> i_hist, double* d_dv = nullptr) const;

  /// Steady-state submodel current at a constant port voltage (fixed point
  /// of the NARX recursion, damped iteration).
  double steady_current(bool high, double v, int iters = 200) const;

  /// Weights at `steps_since_edge` samples after a logic edge
  /// (`rising` selects the up sequence). Past the stored sequence the
  /// weights are the exact steady pair.
  std::pair<double, double> weights_at(bool rising, std::size_t steps_since_edge) const;

  /// Steady weights for a settled logic state.
  static std::pair<double, double> steady_weights(bool high) {
    return high ? std::pair{1.0, 0.0} : std::pair{0.0, 1.0};
  }
};

/// Free-running state of one submodel: keeps the voltage/current histories
/// and advances one sample at a time. Shared by the stand-alone simulators
/// and the MNA-coupled driver device.
class SubmodelState {
 public:
  /// Histories start at the submodel's fixed point for constant v0.
  SubmodelState(const PwRbfDriverModel& m, bool high, double v0);

  /// Evaluate i(k) for a *candidate* head voltage without committing
  /// (used inside Newton loops). Optionally returns d i / d v.
  double peek(double v, double* d_dv = nullptr) const;

  /// Commit the sample: push v(k), evaluate and push i(k). Returns i(k).
  double step(double v, double* d_dv = nullptr);

  /// Re-seed both histories at a new constant operating point.
  void reseed(double v0);

 private:
  static void push_front(std::vector<double>& h, double value);

  const PwRbfDriverModel* m_;
  bool high_;
  std::vector<double> v_hist_;
  std::vector<double> i_hist_;
};

/// Free-run both submodels over a recorded port voltage and combine them
/// with the scheduled weights; used by validation and the weight
/// estimation itself. `edge_step` is the sample index of the logic edge,
/// `rising` its direction, and the initial state is the opposite of
/// `rising`. Returns the model port current.
sig::Waveform simulate_driver_on_voltage(const PwRbfDriverModel& m, const sig::Waveform& v,
                                         std::size_t edge_step, bool rising);

/// Stand-alone transient of the macromodel on a Thevenin load
/// (v_oc(t) behind r_th): solves the scalar nonlinear port equation
///   i_model(v) = (v_oc - v)/r_th
/// at every sample with Newton. `bits` + `bit_time` give the logic input.
/// This is the fast discrete-time path (no MNA), used by the quickstart
/// and the efficiency benchmarks.
sig::Waveform simulate_driver_on_thevenin(const PwRbfDriverModel& m, const std::string& bits,
                                          double bit_time,
                                          const std::function<double(double)>& v_oc,
                                          double r_th, double t_stop);

}  // namespace emc::core
