#include "core/validation.hpp"

#include <sstream>

namespace emc::core {

std::string ValidationReport::to_line() const {
  std::ostringstream os;
  os.precision(4);
  os << label << ": rms=" << rms_error << " max=" << max_error
     << " rel_rms=" << rel_rms * 100.0 << "%";
  if (timing_error)
    os << " timing_err=" << *timing_error * 1e12 << " ps";
  else
    os << " timing_err=n/a";
  return os.str();
}

ValidationReport validate_waveform(const std::string& label, const sig::Waveform& reference,
                                   const sig::Waveform& model, double threshold,
                                   double min_separation) {
  ValidationReport rep;
  rep.label = label;
  rep.rms_error = sig::rms_error(reference, model);
  rep.max_error = sig::max_error(reference, model);
  const double ref_rms = sig::rms(reference);
  rep.rel_rms = ref_rms > 0 ? rep.rms_error / ref_rms : 0.0;
  // Hysteresis at 8% of the reference swing: rings that merely graze the
  // threshold do not produce phantom crossings.
  const double swing = reference.max_value() - reference.min_value();
  rep.timing_error =
      sig::timing_error(reference, model, threshold, min_separation, 0.08 * swing);
  rep.edge_timing_error =
      sig::edge_timing_error(reference, model, threshold, 0.08 * swing);
  return rep;
}

}  // namespace emc::core
