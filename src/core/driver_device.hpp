// MNA coupling of the PW-RBF driver macromodel: the discrete-time model is
// locked to the engine's fixed step (dt must equal the model's Ts) and
// stamps a linearized nonlinear current i(v(k)) at every Newton iteration,
// with analytic d i / d v from the RBF submodels (the paper's "SPICE
// implementation via an equivalent circuit").
#pragma once

#include <string>

#include "circuit/device.hpp"
#include "core/driver_model.hpp"

namespace emc::core {

class DriverDevice : public ckt::Device {
 public:
  /// The device drives `pad` against ground following the logic pattern
  /// `bits` (bit period `bit_time`). The model object must outlive the
  /// device.
  DriverDevice(int pad, const PwRbfDriverModel& model, std::string bits, double bit_time);

  bool nonlinear() const override { return true; }
  void start_step(const ckt::SimState& st) override;
  void stamp(ckt::Stamper& s, const ckt::SimState& st) const override;
  void commit(const ckt::SimState& st) override;
  void post_dc(const ckt::SimState& st) override;
  void reset() override;

 private:
  bool bit_at(double t) const;

  int pad_;
  const PwRbfDriverModel* model_;
  std::string bits_;
  double bit_time_;

  // Runtime state.
  SubmodelState run_h_;
  SubmodelState run_l_;
  bool state_ = false;
  bool rising_ = false;
  bool in_transition_ = false;
  std::size_t steps_since_edge_ = 0;
  double wh_ = 0.0, wl_ = 1.0;  // weights of the step being solved
};

}  // namespace emc::core
