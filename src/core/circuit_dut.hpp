// Circuit-simulation-backed DUT implementations wrapping the reference
// transistor-level models. This is the in-repo stand-in for "transient
// measurements on the real device" (or vendor transistor netlists) the
// paper estimates its macromodels from.
#pragma once

#include "core/dut.hpp"
#include "devices/reference_driver.hpp"
#include "devices/reference_receiver.hpp"

namespace emc::core {

class CircuitDriverDut final : public DriverDut {
 public:
  explicit CircuitDriverDut(dev::DriverTech tech) : tech_(tech) {}

  double vdd() const override { return tech_.vdd; }

  PortRecord forced_response(bool high, const sig::Pwl& vsrc, double rs, double dt,
                             double t_stop) const override;

  PortRecord switching_response(const std::string& bits, double bit_time, double r_th,
                                double v_load, double dt, double t_stop) const override;

  const dev::DriverTech& tech() const { return tech_; }

 private:
  dev::DriverTech tech_;
};

class CircuitReceiverDut final : public ReceiverDut {
 public:
  explicit CircuitReceiverDut(dev::ReceiverTech tech) : tech_(tech) {}

  double vdd() const override { return tech_.vdd; }

  PortRecord forced_response(const sig::Pwl& vsrc, double rs, double dt,
                             double t_stop) const override;

  const dev::ReceiverTech& tech() const { return tech_; }

 private:
  dev::ReceiverTech tech_;
};

}  // namespace emc::core
