// Receiver macromodel (paper Section 3, eq. 2):
//
//   i_in(k) = i_lin(k) + i_up(k) + i_dn(k)
//
// i_lin is a linear ARX submodel (the dominant capacitive behavior inside
// the supply range); i_up / i_dn are RBF submodels of the up / down
// protection circuits, active only near/beyond the rails. The simple C-R
// model (shunt capacitor + nonlinear static resistor) of the same class is
// provided as the baseline the paper compares against.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ident/arx.hpp"
#include "ident/rbf.hpp"

namespace emc::core {

class ParametricReceiverModel {
 public:
  ident::ArxModel lin;       ///< linear dynamic submodel
  ident::RbfModel up;        ///< up-clamp nonlinear submodel (input: v taps)
  ident::RbfModel dn;        ///< down-clamp nonlinear submodel
  int nl_taps = 2;           ///< voltage taps (v(k)..v(k-nl_taps+1)) of up/dn
  double ts = 25e-12;        ///< sampling time [s]
  double vdd = 1.8;
  std::string name;

  /// Total pin current for a candidate head voltage `v`, given histories
  /// (newest first): v_hist of length >= max(lin.nb(), nl_taps-1),
  /// ilin_hist of length >= lin.na(). Optionally d i / d v.
  double current(double v, std::span<const double> v_hist,
                 std::span<const double> ilin_hist, double* d_dv = nullptr) const;

  /// The linear contribution only (needed to advance the internal ARX
  /// state after a step is accepted).
  double linear_current(double v, std::span<const double> v_hist,
                        std::span<const double> ilin_hist) const;

  /// Static current at a constant pin voltage.
  double static_current(double v) const;
};

/// Baseline C-R model: shunt capacitor + static nonlinear resistor table.
struct CrReceiverModel {
  double c = 0.0;                                ///< shunt capacitance [F]
  std::vector<std::pair<double, double>> iv;     ///< static I(V) table
  std::string name;
};

/// Teacher-forced response of the parametric model to a recorded pin
/// voltage (the model current does not react back on v; used for
/// validation against recorded reference waveforms).
sig::Waveform simulate_receiver_on_voltage(const ParametricReceiverModel& m,
                                           const sig::Waveform& v);

/// Same for the C-R baseline (i = C dv/dt + I_table(v), trapezoidal d/dt).
sig::Waveform simulate_cr_on_voltage(const CrReceiverModel& m, const sig::Waveform& v);

}  // namespace emc::core
