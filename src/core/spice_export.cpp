#include "core/spice_export.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace emc::core {

namespace {

/// Gaussian sum expression of one RBF submodel. Voltage tap nodes are
/// named `vtap0..`, current tap nodes `itap0..` (node voltages carry the
/// sampled values); the expression inlines the standardization.
std::string rbf_expression(const ident::RbfModel& f, int n_vtaps, int n_itaps,
                           const std::string& vtap_prefix, const std::string& itap_prefix) {
  std::ostringstream os;
  os.precision(9);
  os << f.bias();
  const auto& mean = f.scaler().mean();
  const auto& scale = f.scaler().scale();
  for (std::size_t j = 0; j < f.num_basis(); ++j) {
    os << " + " << f.weights()[j] << "*exp(-(";
    bool first = true;
    for (int t = 0; t < n_vtaps + n_itaps; ++t) {
      const bool is_v = t < n_vtaps;
      const int local = is_v ? t : t - n_vtaps;
      const std::string node =
          (is_v ? vtap_prefix : itap_prefix) + std::to_string(local);
      const auto ti = static_cast<std::size_t>(t);
      if (!first) os << " + ";
      first = false;
      os << "((v(" << node << ")-(" << mean[ti] << "))/(" << scale[ti] << ")-("
         << f.centers()(j, ti) << "))^2";
    }
    os << ")/(2*(" << f.sigma() << ")^2))";
  }
  return os.str();
}

/// Emit a chain of sample-delay taps of a source node: tap j carries
/// v(src) delayed by j*ts. Uses ideal T elements terminated in their
/// characteristic impedance (the standard SPICE delay-line trick).
void emit_delay_taps(std::ostringstream& os, const std::string& src,
                     const std::string& prefix, int n_taps, double ts,
                     const std::string& gnd = "0") {
  os << "* delay taps of " << src << " (" << n_taps << " x " << ts << " s)\n";
  std::string prev = src;
  for (int j = 1; j <= n_taps; ++j) {
    const std::string tap = prefix + std::to_string(j);
    const std::string buf = tap + "_b";
    // Unity-gain buffer into the line so taps do not load each other.
    os << "E" << tap << " " << buf << " " << gnd << " " << prev << " " << gnd << " 1\n";
    os << "T" << tap << " " << buf << " " << gnd << " " << tap << " " << gnd
       << " Z0=50 TD=" << ts << "\n";
    os << "R" << tap << " " << tap << " " << gnd << " 50\n";
    prev = tap;
  }
}

}  // namespace

std::string export_driver_spice(const PwRbfDriverModel& m, const std::string& subckt_name) {
  std::ostringstream os;
  os.precision(9);
  os << "* PW-RBF driver macromodel";
  if (!m.name.empty()) os << " (" << m.name << ")";
  os << "\n* i(out) = wH(t)*iH(v,iH_hist) + wL(t)*iL(v,iL_hist)\n"
     << "* Ts = " << m.ts << " s, VDD = " << m.vdd << " V, order r = " << m.orders.nv
     << "\n";
  os << ".subckt " << subckt_name << " out wh wl\n";
  os << "* wh / wl: switching weight control nodes (drive with PWL sources\n";
  os << "* replaying the identified weight sequences at each logic edge)\n";

  // Voltage taps of the port voltage.
  os << "Rout out 0 1e9\n";
  emit_delay_taps(os, "out", "vtap", m.orders.nv, m.ts);

  // Each submodel: B-source producing the submodel current into a sense
  // node, with its own delayed-output feedback taps.
  for (const bool high : {true, false}) {
    const std::string tag = high ? "h" : "l";
    const ident::RbfModel& f = high ? m.f_high : m.f_low;
    os << "* submodel i_" << tag << "\n";
    // The submodel output is represented as a voltage on node i<tag>
    // (1 V = 1 A) so it can be delayed like any node voltage.
    std::ostringstream vt, it;
    vt << "vtap";
    it << "itap" << tag;
    // tap 0 of the voltage is the port itself; rename via node aliases.
    os << "Ri" << tag << " i" << tag << " 0 1e9\n";
    emit_delay_taps(os, "i" + tag, "itap" + tag, m.orders.ni, m.ts);
    os << "Bi" << tag << " i" << tag << " 0 V="
       << rbf_expression(f, m.orders.nv + 1, m.orders.ni, "vtapx", "itap" + tag) << "\n";
  }
  // vtapx0 aliases the port voltage, vtapxj the delayed taps.
  os << "Evt0 vtapx0 0 out 0 1\n";
  for (int j = 1; j <= m.orders.nv; ++j)
    os << "Evt" << j << " vtapx" << j << " 0 vtap" << j << " 0 1\n";
  // itap<h/l>0 aliases the submodel output itself (i(k-1) after delay 1;
  // index shift: feedback taps start at delay 1).
  os << "* output current: weighted combination\n";
  os << "Bout out 0 I=-(v(wh)*v(ih) + v(wl)*v(il))\n";
  os << ".ends " << subckt_name << "\n";

  // Reference PWL comment block with the weight sequences.
  os << "* up-transition weight samples (t_rel wh wl):\n";
  for (std::size_t k = 0; k < m.up.size(); k += std::max<std::size_t>(m.up.size() / 16, 1))
    os << "*   " << static_cast<double>(k) * m.ts << " " << m.up.wh[k] << " " << m.up.wl[k]
       << "\n";
  os << "* down-transition weight samples (t_rel wh wl):\n";
  for (std::size_t k = 0; k < m.down.size();
       k += std::max<std::size_t>(m.down.size() / 16, 1))
    os << "*   " << static_cast<double>(k) * m.ts << " " << m.down.wh[k] << " "
       << m.down.wl[k] << "\n";
  return os.str();
}

std::string export_receiver_spice(const ParametricReceiverModel& m,
                                  const std::string& subckt_name) {
  std::ostringstream os;
  os.precision(9);
  os << "* Parametric receiver macromodel";
  if (!m.name.empty()) os << " (" << m.name << ")";
  os << "\n* i(in) = ARX(v) + RBF_up(v taps) + RBF_dn(v taps)\n";
  os << ".subckt " << subckt_name << " in\n";
  os << "Rin in 0 1e9\n";
  emit_delay_taps(os, "in", "vtap", std::max(m.lin.nb(), m.nl_taps - 1), m.ts);

  // Linear ARX part: i_lin feedback realized on a sense node (1 V = 1 A).
  os << "* linear ARX submodel\n";
  emit_delay_taps(os, "ilin", "iltap", m.lin.na(), m.ts);
  os << "Bilin ilin 0 V=";
  {
    std::ostringstream ex;
    ex.precision(9);
    ex << m.lin.b[0] << "*v(in)";
    for (int j = 1; j <= m.lin.nb(); ++j)
      ex << " + " << m.lin.b[static_cast<std::size_t>(j)] << "*v(vtap" << j << ")";
    for (int j = 1; j <= m.lin.na(); ++j)
      ex << " + " << m.lin.a[static_cast<std::size_t>(j - 1)] << "*v(iltap" << j << ")";
    os << ex.str() << "\n";
  }

  // Clamp submodels (voltage taps only).
  os << "Evc0 vtapx0 0 in 0 1\n";
  for (int j = 1; j < m.nl_taps; ++j)
    os << "Evc" << j << " vtapx" << j << " 0 vtap" << j << " 0 1\n";
  os << "Bup iup 0 V=" << rbf_expression(m.up, m.nl_taps, 0, "vtapx", "") << "\n";
  os << "Bdn idn 0 V=" << rbf_expression(m.dn, m.nl_taps, 0, "vtapx", "") << "\n";

  os << "Bout in 0 I=v(ilin)+v(iup)+v(idn)\n";
  os << ".ends " << subckt_name << "\n";
  return os.str();
}

std::string export_cr_spice(const CrReceiverModel& m, const std::string& subckt_name) {
  std::ostringstream os;
  os.precision(9);
  os << "* C-R baseline receiver model";
  if (!m.name.empty()) os << " (" << m.name << ")";
  os << "\n.subckt " << subckt_name << " in\n";
  os << "Cin in 0 " << m.c << "\n";
  os << "* static nonlinear resistor as a PWL-controlled current source\n";
  os << "Bnl in 0 I=pwl(v(in)";
  for (const auto& [v, i] : m.iv) os << ", " << v << ", " << i;
  os << ")\n";
  os << ".ends " << subckt_name << "\n";
  return os.str();
}

void write_spice_file(const std::string& path, const std::string& netlist) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream osf(path);
  if (!osf) throw std::runtime_error("write_spice_file: cannot open " + path);
  osf << netlist;
}

}  // namespace emc::core
