// SPICE subcircuit export of the estimated macromodels (the paper's last
// modeling step: "implementation ... in a circuit simulation environment,
// like SPICE, by means of an equivalent circuit").
//
// Realization: each discrete delay tap v(k-j) / i(k-j) is produced by an
// ideal transmission-line delay element (the classic sample-delay
// synthesis); the RBF / ARX combination is a behavioral B-source whose
// expression contains the Gaussian terms. The emitted netlist is ngspice
// syntax; per the reproduction notes, coupling to an external ngspice run
// is manual.
#pragma once

#include <string>

#include "core/driver_model.hpp"
#include "core/receiver_model.hpp"

namespace emc::core {

/// Subcircuit text of a PW-RBF driver model. Ports: OUT GND; the switching
/// weights are emitted as two PWL sources triggered by the logic input
/// port IN (0/1 levels).
std::string export_driver_spice(const PwRbfDriverModel& m, const std::string& subckt_name);

/// Subcircuit text of the parametric receiver model. Ports: IN GND.
std::string export_receiver_spice(const ParametricReceiverModel& m,
                                  const std::string& subckt_name);

/// Subcircuit text of the C-R baseline receiver. Ports: IN GND.
std::string export_cr_spice(const CrReceiverModel& m, const std::string& subckt_name);

/// Write any exported netlist to a file (creates directories as needed).
void write_spice_file(const std::string& path, const std::string& netlist);

}  // namespace emc::core
