#include "core/driver_device.hpp"

#include <cmath>
#include <stdexcept>

namespace emc::core {

DriverDevice::DriverDevice(int pad, const PwRbfDriverModel& model, std::string bits,
                           double bit_time)
    : pad_(pad),
      model_(&model),
      bits_(std::move(bits)),
      bit_time_(bit_time),
      run_h_(model, true, bits_.empty() ? 0.0 : 0.0),
      run_l_(model, false, 0.0) {
  if (bits_.empty()) throw std::invalid_argument("DriverDevice: empty bit pattern");
  if (bit_time <= 0.0) throw std::invalid_argument("DriverDevice: bit_time must be positive");
  state_ = bits_[0] == '1';
}

bool DriverDevice::bit_at(double t) const {
  auto idx = static_cast<std::size_t>(t / bit_time_);
  if (idx >= bits_.size()) idx = bits_.size() - 1;
  return bits_[idx] == '1';
}

void DriverDevice::start_step(const ckt::SimState& st) {
  if (std::abs(st.dt - model_->ts) > 1e-3 * model_->ts)
    throw std::runtime_error(
        "DriverDevice: the engine step must equal the model sampling time Ts");

  const bool b = bit_at(st.t);
  if (b != state_) {
    state_ = b;
    rising_ = b;
    in_transition_ = true;
    steps_since_edge_ = 0;
  } else if (in_transition_) {
    ++steps_since_edge_;
  }

  if (in_transition_) {
    const auto w = model_->weights_at(rising_, steps_since_edge_);
    wh_ = w.first;
    wl_ = w.second;
    const auto& seq = rising_ ? model_->up : model_->down;
    if (steps_since_edge_ >= seq.size()) in_transition_ = false;
  } else {
    const auto w = PwRbfDriverModel::steady_weights(state_);
    wh_ = w.first;
    wl_ = w.second;
  }
}

void DriverDevice::stamp(ckt::Stamper& s, const ckt::SimState& st) const {
  const double v = st.v(pad_);
  if (st.dc) {
    // Operating point: steady model current of the initial logic state,
    // with a numeric derivative (only runs a handful of times).
    const bool high = state_;
    const double i0 = model_->steady_current(high, v);
    const double h = 1e-3;
    const double i1 = model_->steady_current(high, v + h);
    const double g = (i1 - i0) / h;
    s.nonlinear_current(pad_, 0, i0, std::max(g, 1e-9), v);
    return;
  }
  double dh = 0.0, dl = 0.0;
  const double ih = run_h_.peek(v, &dh);
  const double il = run_l_.peek(v, &dl);
  const double i = wh_ * ih + wl_ * il;
  const double g = wh_ * dh + wl_ * dl;
  // A tiny conductance floor keeps the pad node well defined even when
  // the RBF gradient locally vanishes.
  s.nonlinear_current(pad_, 0, i, g, v);
  s.conductance(pad_, 0, 1e-9);
}

void DriverDevice::commit(const ckt::SimState& st) {
  if (st.dc) return;
  const double v = st.v(pad_);
  run_h_.step(v);
  run_l_.step(v);
}

void DriverDevice::post_dc(const ckt::SimState& st) {
  const double v = st.v(pad_);
  run_h_.reseed(v);
  run_l_.reseed(v);
}

void DriverDevice::reset() {
  state_ = bits_[0] == '1';
  in_transition_ = false;
  steps_since_edge_ = 0;
  run_h_.reseed(0.0);
  run_l_.reseed(0.0);
}

}  // namespace emc::core
