#include "core/circuit_dut.hpp"

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"

namespace emc::core {

namespace {

/// Current into `pin` delivered through `rs` from `src`, derived from the
/// two node waveforms (measurement-resistor sensing).
sig::Waveform sense_current(const ckt::TransientResult& res, int src, int pin, double rs) {
  const auto v_src = res.waveform(src);
  const auto v_pin = res.waveform(pin);
  std::vector<double> i(v_src.size());
  for (std::size_t k = 0; k < v_src.size(); ++k) i[k] = (v_src[k] - v_pin[k]) / rs;
  return sig::Waveform(v_src.t0(), v_src.dt(), std::move(i));
}

}  // namespace

PortRecord CircuitDriverDut::forced_response(bool high, const sig::Pwl& vsrc, double rs,
                                             double dt, double t_stop) const {
  ckt::Circuit ckt;
  const double logic = high ? tech_.vdd : 0.0;
  auto inst = dev::build_reference_driver(ckt, tech_, [logic](double) { return logic; });
  const int src = ckt.node();
  ckt.add<ckt::VSource>(src, ckt.ground(), [vsrc](double t) { return vsrc(t); });
  ckt.add<ckt::Resistor>(src, inst.pad, rs);

  ckt::TransientOptions opt;
  opt.dt = dt;
  opt.t_stop = t_stop;
  const auto res = ckt::run_transient(ckt, opt);
  return {res.waveform(inst.pad), sense_current(res, src, inst.pad, rs)};
}

PortRecord CircuitDriverDut::switching_response(const std::string& bits, double bit_time,
                                                double r_th, double v_load, double dt,
                                                double t_stop) const {
  ckt::Circuit ckt;
  auto pattern = sig::bit_stream(bits, bit_time, 0.1e-9, 0.0, tech_.vdd);
  auto inst = dev::build_reference_driver(ckt, tech_, [pattern](double t) { return pattern(t); });
  int far = ckt.ground();
  if (v_load != 0.0) {
    far = ckt.node();
    ckt.add<ckt::VSource>(far, ckt.ground(), v_load);
  }
  ckt.add<ckt::Resistor>(inst.pad, far == ckt.ground() ? ckt.ground() : far, r_th);

  ckt::TransientOptions opt;
  opt.dt = dt;
  opt.t_stop = t_stop;
  const auto res = ckt::run_transient(ckt, opt);

  // Port current into the pad: the load draws (v_pad - v_load)/r_th out of
  // the pad, so i_into_pad = -(v_pad - v_load)/r_th.
  const auto v_pad = res.waveform(inst.pad);
  std::vector<double> i(v_pad.size());
  for (std::size_t k = 0; k < v_pad.size(); ++k) i[k] = -(v_pad[k] - v_load) / r_th;
  return {v_pad, sig::Waveform(v_pad.t0(), v_pad.dt(), std::move(i))};
}

PortRecord CircuitReceiverDut::forced_response(const sig::Pwl& vsrc, double rs, double dt,
                                               double t_stop) const {
  ckt::Circuit ckt;
  auto inst = dev::build_reference_receiver(ckt, tech_);
  const int src = ckt.node();
  ckt.add<ckt::VSource>(src, ckt.ground(), [vsrc](double t) { return vsrc(t); });
  ckt.add<ckt::Resistor>(src, inst.pin, rs);

  ckt::TransientOptions opt;
  opt.dt = dt;
  opt.t_stop = t_stop;
  const auto res = ckt::run_transient(ckt, opt);
  return {res.waveform(inst.pin), sense_current(res, src, inst.pin, rs)};
}

}  // namespace emc::core
