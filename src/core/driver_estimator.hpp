// Estimation of the PW-RBF driver macromodel (paper Section 2):
//
//  1. Submodels i_H / i_L: the driver is held in each logic state and the
//     port is excited with a multilevel identification signal spanning
//     slightly beyond the supply rails; the RBF NARX submodels are fitted
//     with Orthogonal Least Squares.
//  2. Switching weights w_H / w_L: the driver performs Up and Down
//     transitions on two different identification loads; for every sample
//     the 2x2 system given by eq. (1) on both loads is inverted (with a
//     Tikhonov fallback near collinearity).
#pragma once

#include <cstdint>

#include "core/driver_model.hpp"
#include "core/dut.hpp"

namespace emc::core {

struct DriverEstimationOptions {
  int order = 2;              ///< NARX dynamic order r (paper: 2..3)
  int max_basis_high = 26;    ///< basis budget of i_H (selection may use fewer)
  int max_basis_low = 26;     ///< basis budget of i_L
  double ts = 25e-12;         ///< sampling time (paper: 25 ps)
  double v_margin = 2.2;      ///< identification range beyond the rails [V]
                              ///< (unterminated reflective loads ring far
                              ///< past the rails; the submodels must not
                              ///< extrapolate there)
  double rs = 2.0;            ///< source resistance of the forced records [ohm]
                              ///< (low: the source must hold the port even
                              ///< against the full driver drive current)
  int n_steps = 140;          ///< multilevel steps per state record
  int n_levels = 9;           ///< distinct levels of the multilevel signal
  double t_hold = 1.2e-9;     ///< hold time per level
  double t_edge = 0.15e-9;    ///< transition time between levels
  double load1_r = 50.0;      ///< identification load 1: r to ground
  double load2_r = 50.0;      ///< identification load 2: r to vdd
  double w_window = 4e-9;     ///< weight-estimation record length; the
                              ///< stored sequence is then trimmed at its
                              ///< measured settling point so it completes
                              ///< (landing exactly on the steady weights)
                              ///< before a following bit edge preempts it
  double w_settle_tol = 0.04; ///< settling detection band on the weights
  double w_ridge = 1e-4;      ///< relative Tikhonov factor of the 2x2 solves
  std::uint64_t seed = 2026;  ///< multilevel signal seed
  ident::RbfFitOptions rbf;   ///< kernel/OLS settings (sigma is auto-tuned)
};

/// Run the full estimation flow against a DUT. Throws std::runtime_error
/// if an identification record is degenerate.
PwRbfDriverModel estimate_driver_model(const DriverDut& dut,
                                       const DriverEstimationOptions& opt = {});

/// Quality of a submodel fit on its own identification record (free-run
/// relative RMS error); returned by validate helpers and used in tests.
struct SubmodelFitReport {
  double rel_rms_high = 0.0;
  double rel_rms_low = 0.0;
};

/// Re-run both submodels on fresh forced records and report free-run
/// accuracy (uses a different excitation seed than the estimation).
SubmodelFitReport validate_submodels(const DriverDut& dut, const PwRbfDriverModel& model,
                                     const DriverEstimationOptions& opt = {});

}  // namespace emc::core
