#include "core/receiver_model.hpp"

#include <cmath>
#include <stdexcept>

namespace emc::core {

namespace {

/// Evaluate an RBF clamp submodel on [v, v_hist...] (nl_taps inputs).
/// An unfitted (default) submodel contributes nothing.
double eval_clamp(const ident::RbfModel& f, int taps, double v,
                  std::span<const double> v_hist, double* d_dv) {
  if (f.input_dim() == 0) {
    if (d_dv) *d_dv = 0.0;
    return 0.0;
  }
  std::vector<double> x(static_cast<std::size_t>(taps));
  x[0] = v;
  for (int j = 1; j < taps; ++j) x[static_cast<std::size_t>(j)] = v_hist[static_cast<std::size_t>(j - 1)];
  return d_dv ? f.eval_with_grad(x, 0, d_dv) : f.eval(x);
}

}  // namespace

double ParametricReceiverModel::linear_current(double v, std::span<const double> v_hist,
                                               std::span<const double> ilin_hist) const {
  std::vector<double> vh(lin.b.size());
  vh[0] = v;
  for (std::size_t j = 1; j < vh.size(); ++j) vh[j] = v_hist[j - 1];
  return lin.predict(vh, ilin_hist.first(lin.a.size()));
}

double ParametricReceiverModel::current(double v, std::span<const double> v_hist,
                                        std::span<const double> ilin_hist,
                                        double* d_dv) const {
  const double i_lin = linear_current(v, v_hist, ilin_hist);
  double g_up = 0.0, g_dn = 0.0;
  const double i_up = eval_clamp(up, nl_taps, v, v_hist, d_dv ? &g_up : nullptr);
  const double i_dn = eval_clamp(dn, nl_taps, v, v_hist, d_dv ? &g_dn : nullptr);
  if (d_dv) *d_dv = lin.b.empty() ? (g_up + g_dn) : (lin.b[0] + g_up + g_dn);
  return i_lin + i_up + i_dn;
}

double ParametricReceiverModel::static_current(double v) const {
  std::vector<double> v_hist(std::max<std::size_t>(lin.b.size(), 8), v);
  // Steady ARX output: i_ss = dc_gain * v for a stable AR part.
  double i_lin = 0.0;
  try {
    i_lin = lin.dc_gain() * v;
  } catch (const std::runtime_error&) {
    i_lin = 0.0;  // marginal AR part: treat as zero static gain
  }
  std::vector<double> x(static_cast<std::size_t>(nl_taps), v);
  const double i_up = up.input_dim() ? up.eval(x) : 0.0;
  const double i_dn = dn.input_dim() ? dn.eval(x) : 0.0;
  return i_lin + i_up + i_dn;
}

sig::Waveform simulate_receiver_on_voltage(const ParametricReceiverModel& m,
                                           const sig::Waveform& v) {
  if (v.empty()) throw std::invalid_argument("simulate_receiver_on_voltage: empty input");
  const std::size_t hv = std::max<std::size_t>(
      m.lin.b.size() > 0 ? m.lin.b.size() - 1 : 0, static_cast<std::size_t>(m.nl_taps - 1));
  std::vector<double> v_hist(std::max<std::size_t>(hv, 1), v[0]);
  std::vector<double> ilin_hist(std::max<std::size_t>(m.lin.a.size(), 1), 0.0);

  std::vector<double> i(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) {
    const double i_lin = m.linear_current(v[k], v_hist, ilin_hist);
    i[k] = m.current(v[k], v_hist, ilin_hist);
    // Shift histories (newest first).
    for (std::size_t j = v_hist.size(); j-- > 1;) v_hist[j] = v_hist[j - 1];
    v_hist[0] = v[k];
    for (std::size_t j = ilin_hist.size(); j-- > 1;) ilin_hist[j] = ilin_hist[j - 1];
    ilin_hist[0] = i_lin;
  }
  return sig::Waveform(v.t0(), v.dt(), std::move(i));
}

sig::Waveform simulate_cr_on_voltage(const CrReceiverModel& m, const sig::Waveform& v) {
  if (v.empty()) throw std::invalid_argument("simulate_cr_on_voltage: empty input");
  std::vector<double> i(v.size(), 0.0);
  // Static table lookup with end-slope extrapolation.
  auto table = [&](double vv) {
    if (m.iv.size() < 2) return 0.0;
    std::size_t hi = 1;
    if (vv >= m.iv.back().first) {
      hi = m.iv.size() - 1;
    } else if (vv > m.iv.front().first) {
      while (hi + 1 < m.iv.size() && m.iv[hi].first < vv) ++hi;
    }
    const auto& p0 = m.iv[hi - 1];
    const auto& p1 = m.iv[hi];
    const double slope = (p1.second - p0.second) / (p1.first - p0.first);
    return p0.second + slope * (vv - p0.first);
  };
  double i_cap_prev = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    double i_cap = 0.0;
    if (k > 0) {
      // Trapezoidal companion, consistent with the circuit capacitor.
      i_cap = 2.0 * m.c / v.dt() * (v[k] - v[k - 1]) - i_cap_prev;
    }
    i_cap_prev = i_cap;
    i[k] = i_cap + table(v[k]);
  }
  return sig::Waveform(v.t0(), v.dt(), std::move(i));
}

}  // namespace emc::core
