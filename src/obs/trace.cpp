#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace emc::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<std::uint64_t> g_tracer_generation{1};

}  // namespace

/// Fixed-capacity event ring owned by one recording thread. Only that
/// thread pushes; exporters read under the tracer mutex after quiescence.
struct Tracer::ThreadRing {
  ThreadRing(std::uint32_t tid, std::size_t capacity, std::int64_t epoch_ns)
      : tid_(tid), epoch_ns_(epoch_ns), buf_(capacity) {}

  void push(const TraceEvent& e) {
    if (count_ < buf_.size()) {
      buf_[(head_ + count_) % buf_.size()] = e;
      ++count_;
    } else {
      buf_[head_] = e;  // overwrite the oldest retained event
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
  }

  std::uint32_t tid_;
  std::int64_t epoch_ns_;    ///< the owning tracer's epoch
  std::uint32_t depth_ = 0;  ///< open spans on this thread
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;   ///< oldest retained event
  std::size_t count_ = 0;  ///< retained events
  std::uint64_t dropped_ = 0;
};

namespace {

/// Per-thread cache of (tracer, ring): a span only takes the tracer mutex
/// the first time its thread records into a given tracer. The generation
/// guards against a destroyed tracer's address being reused.
struct TlsRing {
  const Tracer* tracer = nullptr;
  std::uint64_t gen = 0;
  Tracer::ThreadRing* ring = nullptr;
};
thread_local TlsRing tls_ring;

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(1, ring_capacity)),
      epoch_ns_(now_ns()),
      generation_(g_tracer_generation.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  Tracer* self = this;
  g_tracer.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void Tracer::install() {
  Tracer* expected = nullptr;
  if (!g_tracer.compare_exchange_strong(expected, this, std::memory_order_acq_rel)) {
    if (expected == this) return;
    throw std::logic_error("Tracer::install: another tracer is already installed");
  }
}

void Tracer::uninstall() {
  Tracer* self = this;
  g_tracer.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

bool Tracer::installed() const {
  return g_tracer.load(std::memory_order_relaxed) == this;
}

Tracer::ThreadRing* Tracer::ring_for_current_thread() {
  if (tls_ring.tracer == this && tls_ring.gen == generation_) return tls_ring.ring;
  std::lock_guard<std::mutex> lk(mu_);
  rings_.push_back(std::make_unique<ThreadRing>(
      static_cast<std::uint32_t>(rings_.size()), capacity_, epoch_ns_));
  tls_ring = {this, generation_, rings_.back().get()};
  return tls_ring.ring;
}

std::size_t Tracer::threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t d = 0;
  for (const auto& r : rings_) d += r->dropped_;
  return d;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  for (const auto& r : rings_) {
    for (std::size_t i = 0; i < r->count_; ++i)
      out.push_back(r->buf_[(r->head_ + i) % r->buf_.size()]);
  }
  // Events are pushed at span *end*, so rings are ordered by end time;
  // sort into (tid, start, longest-first) so a parent precedes the
  // children it contains — the order nesting validators expect.
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;
  });
  return out;
}

Json Tracer::chrome_trace_json() const {
  Json doc = Json::object();
  Json list = Json::array();
  for (const TraceEvent& e : events()) {
    Json ev = Json::object();
    ev.set("name", Json::string(e.name));
    ev.set("cat", Json::string("emc"));
    ev.set("ph", Json::string("X"));
    ev.set("ts", Json::number(static_cast<double>(e.ts_ns) / 1e3));
    ev.set("dur", Json::number(static_cast<double>(e.dur_ns) / 1e3));
    ev.set("pid", Json::integer(1));
    ev.set("tid", Json::integer(static_cast<long>(e.tid)));
    Json args = Json::object();
    args.set("depth", Json::integer(static_cast<long>(e.depth)));
    ev.set("args", std::move(args));
    list.push(std::move(ev));
  }
  doc.set("traceEvents", std::move(list));
  doc.set("displayTimeUnit", Json::string("ns"));
  Json other = Json::object();
  other.set("dropped_events", Json::integer(static_cast<long>(dropped())));
  doc.set("otherData", std::move(other));
  return doc;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return chrome_trace_json().write_file(path);
}

Span::Span(const char* name) : name_(name), ring_(nullptr) {
  Tracer* t = g_tracer.load(std::memory_order_relaxed);
  if (!t) return;
  ring_ = t->ring_for_current_thread();
  ++ring_->depth_;
  t0_ns_ = now_ns();
}

Span::~Span() {
  if (!ring_) return;
  --ring_->depth_;
  TraceEvent e;
  e.name = name_;
  e.tid = ring_->tid_;
  e.depth = ring_->depth_;
  e.ts_ns = t0_ns_ - ring_->epoch_ns_;
  e.dur_ns = now_ns() - t0_ns_;
  ring_->push(e);
}

}  // namespace emc::obs
