#include "obs/report.hpp"

#include <thread>

#include "obs/profile.hpp"
#include "obs/resource.hpp"

namespace emc::obs {

Json host_info_json() {
  Json o = Json::object();
  o.set("cpus", Json::integer(static_cast<long>(std::thread::hardware_concurrency())));
#if defined(__linux__)
  o.set("os", Json::string("linux"));
#elif defined(__APPLE__)
  o.set("os", Json::string("macos"));
#elif defined(_WIN32)
  o.set("os", Json::string("windows"));
#else
  o.set("os", Json::string("unknown"));
#endif
#if defined(__clang__)
  o.set("compiler", Json::string(std::string("clang ") + __clang_version__));
#elif defined(__GNUC__)
  o.set("compiler", Json::string(std::string("gcc ") + __VERSION__));
#else
  o.set("compiler", Json::string("unknown"));
#endif
#if defined(EMC_BUILD_TYPE)
  o.set("build_type", Json::string(EMC_BUILD_TYPE));
#else
  o.set("build_type", Json::string(""));
#endif
#if defined(EMC_SANITIZE_BUILD)
  o.set("sanitize", Json::boolean(true));
#else
  o.set("sanitize", Json::boolean(false));
#endif
  o.set("pointer_bits", Json::integer(static_cast<long>(sizeof(void*) * 8)));
  return o;
}

RunReport::RunReport(std::string name) : doc_(Json::object()) {
  doc_.set("report", Json::string(std::move(name)));
  doc_.set("schema_version", Json::integer(2));
  doc_.set("host", host_info_json());
}

Json& RunReport::section(const std::string& key) {
  if (Json* existing = doc_.find(key)) return *existing;
  doc_.set(key, Json::object());
  return doc_.at(key);
}

void RunReport::set(const std::string& sec, const std::string& field, Json v) {
  section(sec).set(field, std::move(v));
}
void RunReport::set(const std::string& sec, const std::string& field, double v) {
  section(sec).set(field, Json::number(v));
}
void RunReport::set(const std::string& sec, const std::string& field, long v) {
  section(sec).set(field, Json::integer(v));
}
void RunReport::set(const std::string& sec, const std::string& field, const std::string& v) {
  section(sec).set(field, Json::string(v));
}
void RunReport::set(const std::string& sec, const std::string& field, bool v) {
  section(sec).set(field, Json::boolean(v));
}

void RunReport::add_metrics(const MetricsSnapshot& snap) {
  section("metrics") = snap.to_json();
}

void RunReport::add_trace_summary(const Tracer& tracer, const std::string& trace_file) {
  Json& t = section("trace");
  t = Json::object();
  t.set("threads", Json::integer(static_cast<long>(tracer.threads())));
  t.set("events", Json::integer(static_cast<long>(tracer.events().size())));
  t.set("dropped_events", Json::integer(static_cast<long>(tracer.dropped())));
  if (!trace_file.empty()) t.set("file", Json::string(trace_file));
}

void RunReport::add_profile(const Profile& profile) {
  section("profile") = profile.to_json();
}

void RunReport::add_resources(const ResourceSampler& sampler, std::size_t max_series) {
  section("resources") = sampler.to_json(max_series);
}

Json RunReport::to_json() const { return doc_; }

bool RunReport::write(const std::string& path) const { return doc_.write_file(path); }

}  // namespace emc::obs
