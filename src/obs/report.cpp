#include "obs/report.hpp"

namespace emc::obs {

RunReport::RunReport(std::string name) : doc_(Json::object()) {
  doc_.set("report", Json::string(std::move(name)));
  doc_.set("schema_version", Json::integer(1));
}

Json& RunReport::section(const std::string& key) {
  if (Json* existing = doc_.find(key)) return *existing;
  doc_.set(key, Json::object());
  return doc_.at(key);
}

void RunReport::set(const std::string& sec, const std::string& field, Json v) {
  section(sec).set(field, std::move(v));
}
void RunReport::set(const std::string& sec, const std::string& field, double v) {
  section(sec).set(field, Json::number(v));
}
void RunReport::set(const std::string& sec, const std::string& field, long v) {
  section(sec).set(field, Json::integer(v));
}
void RunReport::set(const std::string& sec, const std::string& field, const std::string& v) {
  section(sec).set(field, Json::string(v));
}
void RunReport::set(const std::string& sec, const std::string& field, bool v) {
  section(sec).set(field, Json::boolean(v));
}

void RunReport::add_metrics(const MetricsSnapshot& snap) {
  section("metrics") = snap.to_json();
}

void RunReport::add_trace_summary(const Tracer& tracer, const std::string& trace_file) {
  Json& t = section("trace");
  t = Json::object();
  t.set("threads", Json::integer(static_cast<long>(tracer.threads())));
  t.set("events", Json::integer(static_cast<long>(tracer.events().size())));
  t.set("dropped_events", Json::integer(static_cast<long>(tracer.dropped())));
  if (!trace_file.empty()) t.set("file", Json::string(trace_file));
}

Json RunReport::to_json() const { return doc_; }

bool RunReport::write(const std::string& path) const { return doc_.write_file(path); }

}  // namespace emc::obs
