#include "obs/resource.hpp"

#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define EMC_HAVE_GETRUSAGE 1
#endif

namespace emc::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Resident pages from /proc/self/statm (field 2); 0 when unreadable.
std::uint64_t statm_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace

ResourceUsage sample_resources() {
  ResourceUsage u;
  u.t_ns = now_ns();
  u.rss_bytes = statm_rss_bytes();
#if defined(EMC_HAVE_GETRUSAGE)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    u.cpu_user_ns = static_cast<std::uint64_t>(ru.ru_utime.tv_sec) * 1000000000ull +
                    static_cast<std::uint64_t>(ru.ru_utime.tv_usec) * 1000ull;
    u.cpu_sys_ns = static_cast<std::uint64_t>(ru.ru_stime.tv_sec) * 1000000000ull +
                   static_cast<std::uint64_t>(ru.ru_stime.tv_usec) * 1000ull;
    if (u.rss_bytes == 0) {
      // ru_maxrss is the peak RSS in kilobytes on Linux (bytes on macOS,
      // where this branch is the primary source).
#if defined(__APPLE__)
      u.rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
      u.rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;
#endif
      u.rss_is_peak = true;
    }
  }
#endif
  return u;
}

ResourceSampler::ResourceSampler() : ResourceSampler(Options{}) {}

ResourceSampler::ResourceSampler(Options opt) : opt_(opt) {
  if (opt_.interval_ms < 1) opt_.interval_ms = 1;
  if (opt_.ring_capacity < 2) opt_.ring_capacity = 2;
  ring_.resize(opt_.ring_capacity);
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::sample_locked() {
  const ResourceUsage u = sample_resources();
  if (stats_.samples == 0) first_t_ns_ = u.t_ns;
  ++stats_.samples;
  stats_.peak_rss_bytes = std::max(stats_.peak_rss_bytes, u.rss_bytes);
  stats_.cpu_user_ns = u.cpu_user_ns;
  stats_.cpu_sys_ns = u.cpu_sys_ns;
  stats_.wall_ns = u.t_ns - first_t_ns_;
  stats_.rss_is_peak = u.rss_is_peak;
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = u;
    ++count_;
  } else {
    ring_[head_] = u;
    head_ = (head_ + 1) % ring_.size();
    ++stats_.dropped;
  }
}

void ResourceSampler::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, std::chrono::milliseconds(opt_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    sample_locked();
  }
}

void ResourceSampler::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stop_requested_ = false;
  sample_locked();
  thread_ = std::thread([this] { loop(); });
  running_ = true;
}

void ResourceSampler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
  sample_locked();
}

ResourceSampler::Stats ResourceSampler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<ResourceUsage> ResourceSampler::series() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ResourceUsage> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

Json ResourceSampler::to_json(std::size_t max_series) const {
  const Stats s = stats();
  const std::vector<ResourceUsage> ser = series();

  Json o = Json::object();
  o.set("samples", Json::integer(static_cast<long>(s.samples)));
  o.set("dropped_samples", Json::integer(static_cast<long>(s.dropped)));
  o.set("peak_rss_bytes", Json::integer(static_cast<long>(s.peak_rss_bytes)));
  o.set("rss_is_peak_fallback", Json::boolean(s.rss_is_peak));
  o.set("cpu_user_s", Json::number(static_cast<double>(s.cpu_user_ns) * 1e-9));
  o.set("cpu_sys_s", Json::number(static_cast<double>(s.cpu_sys_ns) * 1e-9));
  o.set("wall_s", Json::number(static_cast<double>(s.wall_ns) * 1e-9));

  Json rows = Json::array();
  if (!ser.empty() && max_series > 0) {
    const std::size_t stride = (ser.size() + max_series - 1) / max_series;
    for (std::size_t i = 0; i < ser.size(); i += stride) {
      Json row = Json::object();
      row.set("t_ms", Json::number(static_cast<double>(ser[i].t_ns - ser[0].t_ns) * 1e-6));
      row.set("rss_bytes", Json::integer(static_cast<long>(ser[i].rss_bytes)));
      rows.push(std::move(row));
    }
  }
  o.set("rss_series", std::move(rows));
  return o;
}

}  // namespace emc::obs
