#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace emc::obs {

Json& Json::at(const std::string& key) {
  require(Kind::kObject, "at");
  for (auto& [k, v] : fields_)
    if (k == key) return v;
  throw std::logic_error("Json: no field " + key);
}

const Json& Json::at(const std::string& key) const {
  require(Kind::kObject, "at");
  for (const auto& [k, v] : fields_)
    if (k == key) return v;
  throw std::logic_error("Json: no field " + key);
}

Json* Json::find(const std::string& key) {
  if (kind_ != Kind::kObject) return nullptr;
  for (auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::operator[](std::size_t i) const {
  require(Kind::kArray, "operator[]");
  return items_.at(i);
}

double Json::as_double() const {
  if (kind_ == Kind::kInteger) return static_cast<double>(int_);
  require(Kind::kNumber, "as_double");
  return num_;
}

long Json::as_integer() const {
  require(Kind::kInteger, "as_integer");
  return int_;
}

const std::string& Json::as_string() const {
  require(Kind::kString, "as_string");
  return str_;
}

bool Json::as_bool() const {
  require(Kind::kBool, "as_bool");
  return bool_;
}

Json Json::parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("obs::Json: cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("obs::Json: error reading " + path);
  return parse(text);
}

bool Json::write_file(const std::string& path, int indent) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs::Json: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = dump(indent);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::fprintf(stderr, "obs::Json: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void Json::escape(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::emit(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += pad;
        escape(out, fields_[i].first);
        out += ": ";
        fields_[i].second.emit(out, indent, depth + 1);
        if (i + 1 < fields_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += close_pad + "}";
      return;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].emit(out, indent, depth + 1);
        if (i + 1 < items_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += close_pad + "]";
      return;
    }
    case Kind::kString:
      escape(out, str_);
      return;
    case Kind::kNumber: {
      // %.9g matches the precision the bench emitters always used;
      // non-finite values have no JSON spelling, so emit null (the reader
      // sees "value unavailable" instead of a syntax error).
      if (num_ != num_ || num_ == std::numeric_limits<double>::infinity() ||
          num_ == -std::numeric_limits<double>::infinity()) {
        out += "null";
        return;
      }
      std::snprintf(buf, sizeof buf, "%.9g", num_);
      out += buf;
      return;
    }
    case Kind::kInteger:
      std::snprintf(buf, sizeof buf, "%ld", int_);
      out += buf;
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const { throw JsonParseError(why, pos_); }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json::string(string_body());
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return Json::null();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json o = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return o;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string_body();
      skip_ws();
      expect(':');
      o.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return o;
    }
  }

  Json array() {
    expect('[');
    Json a = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return a;
    }
    for (;;) {
      a.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return a;
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Minimal UTF-8 encoding; surrogate pairs are passed through as
          // two 3-byte sequences (the dumper never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_int = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) fail("expected a value");
    const std::string tok(s_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (is_int) {
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) return Json::integer(v);
      errno = 0;  // integer overflow: fall through to double
    }
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    return Json::number(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace emc::obs
