#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace emc::obs {

namespace {

/// Shard slots a metric occupies: histograms pack buckets + sum + max.
std::size_t slot_width(MetricKind k) {
  return k == MetricKind::kHistogram ? kHistogramBuckets + 2 : 1;
}

std::size_t bucket_of(std::uint64_t sample) {
  return std::min<std::size_t>(std::bit_width(sample), kHistogramBuckets - 1);
}

std::atomic<std::uint64_t> g_generation{1};

}  // namespace

/// One thread's slot array. Only the owning thread writes; snapshots read
/// with relaxed loads under the registry mutex (which also serializes
/// against the owner growing the array).
struct MetricRegistry::Shard {
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  std::size_t cap = 0;

  void grow(std::size_t need) {
    auto bigger = std::make_unique<std::atomic<std::uint64_t>[]>(need);
    for (std::size_t i = 0; i < need; ++i)
      bigger[i].store(i < cap ? slots[i].load(std::memory_order_relaxed) : 0,
                      std::memory_order_relaxed);
    slots = std::move(bigger);
    cap = need;
  }
};

namespace {

/// Per-thread cache mapping registries to their shard for this thread.
/// Entries are validated by (address, generation) so a registry destroyed
/// and reallocated at the same address can never alias a stale shard.
struct TlsEntry {
  const void* reg = nullptr;
  std::uint64_t gen = 0;
  MetricRegistry::Shard* shard = nullptr;
};
thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

MetricRegistry::MetricRegistry()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricRegistry::~MetricRegistry() = default;

MetricId MetricRegistry::reg(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::uint32_t i = 0; i < metas_.size(); ++i) {
    if (metas_[i].name == name) {
      if (metas_[i].kind != kind)
        throw std::logic_error("MetricRegistry: kind mismatch re-registering " + name);
      return {metas_[i].slot, i};
    }
  }
  const MetricId id{next_slot_, static_cast<std::uint32_t>(metas_.size())};
  metas_.push_back({name, kind, next_slot_});
  next_slot_ += static_cast<std::uint32_t>(slot_width(kind));
  return id;
}

MetricRegistry::Shard& MetricRegistry::local_shard() {
  for (TlsEntry& e : tls_shards)
    if (e.reg == this && e.gen == generation_) return *e.shard;
  std::lock_guard<std::mutex> lk(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  s->grow(std::max<std::size_t>(next_slot_, 64));
  tls_shards.push_back({this, generation_, s});
  return *s;
}

std::atomic<std::uint64_t>* MetricRegistry::slots_for(MetricId id, std::size_t width) {
  Shard& s = local_shard();
  if (id.slot + width > s.cap) {
    // Metrics registered after this shard was created: grow under the
    // registry lock (serializes against snapshots reading the old array).
    std::lock_guard<std::mutex> lk(mu_);
    s.grow(std::max<std::size_t>(next_slot_, id.slot + width));
  }
  return s.slots.get() + id.slot;
}

void MetricRegistry::add(MetricId id, std::uint64_t v) {
  if (!enabled()) return;
  slots_for(id, 1)->fetch_add(v, std::memory_order_relaxed);
}

void MetricRegistry::set_max(MetricId id, std::uint64_t v) {
  if (!enabled()) return;
  std::atomic<std::uint64_t>* s = slots_for(id, 1);
  // Owner-only write: a plain raise needs no compare-exchange loop.
  if (v > s->load(std::memory_order_relaxed)) s->store(v, std::memory_order_relaxed);
}

void MetricRegistry::record(MetricId id, std::uint64_t sample) {
  if (!enabled()) return;
  std::atomic<std::uint64_t>* s = slots_for(id, kHistogramBuckets + 2);
  s[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
  s[kHistogramBuckets].fetch_add(sample, std::memory_order_relaxed);
  std::atomic<std::uint64_t>& mx = s[kHistogramBuckets + 1];
  if (sample > mx.load(std::memory_order_relaxed))
    mx.store(sample, std::memory_order_relaxed);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  snap.rows.reserve(metas_.size());
  for (const Meta& m : metas_) {
    MetricRow row;
    row.name = m.name;
    row.kind = m.kind;
    const std::size_t width = slot_width(m.kind);
    if (m.kind == MetricKind::kHistogram) row.buckets.assign(kHistogramBuckets, 0);
    for (const auto& sp : shards_) {
      if (m.slot + width > sp->cap) continue;  // shard predates this metric
      const auto* s = sp->slots.get() + m.slot;
      switch (m.kind) {
        case MetricKind::kCounter:
          row.value += s[0].load(std::memory_order_relaxed);
          break;
        case MetricKind::kGauge:
          row.value = std::max(row.value, s[0].load(std::memory_order_relaxed));
          break;
        case MetricKind::kHistogram: {
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            const std::uint64_t c = s[b].load(std::memory_order_relaxed);
            row.buckets[b] += c;
            row.value += c;
          }
          row.sum += s[kHistogramBuckets].load(std::memory_order_relaxed);
          row.max =
              std::max(row.max, s[kHistogramBuckets + 1].load(std::memory_order_relaxed));
          break;
        }
      }
    }
    snap.rows.push_back(std::move(row));
  }
  // Registration order differs across runs when threads race to register;
  // name order makes the snapshot (and every report built from it)
  // deterministic.
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return snap;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sp : shards_)
    for (std::size_t i = 0; i < sp->cap; ++i)
      sp->slots[i].store(0, std::memory_order_relaxed);
}

MetricRegistry& registry() {
  static MetricRegistry* g = new MetricRegistry();  // immortal: never destroyed
  return *g;
}

const MetricRow* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricRow& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

std::uint64_t MetricsSnapshot::value(const std::string& name) const {
  const MetricRow* r = find(name);
  return r ? r->value : 0;
}

Json MetricsSnapshot::to_json() const {
  Json o = Json::object();
  for (const MetricRow& r : rows) {
    if (r.kind == MetricKind::kHistogram) {
      Json h = Json::object();
      h.set("count", Json::integer(static_cast<long>(r.value)));
      h.set("sum", Json::integer(static_cast<long>(r.sum)));
      h.set("max", Json::integer(static_cast<long>(r.max)));
      if (r.value > 0)
        h.set("mean", Json::number(static_cast<double>(r.sum) / static_cast<double>(r.value)));
      Json buckets = Json::array();
      // Trailing empty buckets carry no information; stop at the last
      // occupied one so small histograms stay readable.
      std::size_t last = 0;
      for (std::size_t b = 0; b < r.buckets.size(); ++b)
        if (r.buckets[b] > 0) last = b + 1;
      for (std::size_t b = 0; b < last; ++b)
        buckets.push(Json::integer(static_cast<long>(r.buckets[b])));
      h.set("pow2_buckets", std::move(buckets));
      o.set(r.name, std::move(h));
    } else if (r.kind == MetricKind::kGauge) {
      // Gauges carry their merge discipline in their shape: a {"peak": v}
      // object max-merges across shards, a bare counter integer sums.
      Json g = Json::object();
      g.set("peak", Json::integer(static_cast<long>(r.value)));
      o.set(r.name, std::move(g));
    } else {
      o.set(r.name, Json::integer(static_cast<long>(r.value)));
    }
  }
  return o;
}

}  // namespace emc::obs
