// Report aggregation and regression detection on top of obs::RunReport
// JSON documents:
//
//   * merge_run_reports — deterministically combine N reports (the shards
//     of one logical run) into one, with the same merge discipline the
//     MetricRegistry uses: counters sum, gauges (peaks) max, histograms
//     add bucketwise, worker stats concatenate, trace summaries combine,
//     sweep summaries min/sum/max field by field. A 4-way sharded sweep
//     merged this way equals the single-process report on every counter,
//     histogram and summary field (gated in bench_report).
//
//   * check_baseline — score a current document against a committed
//     baseline spec: a list of (path, expected value, relative tolerance,
//     direction) rows. Produces per-row PASS / REGRESS / IMPROVED /
//     MISSING verdicts and an overall pass flag — the engine behind every
//     bench's --check-baseline mode and `emc_report check`.
//
//   * diff_reports — exploratory diff of two arbitrary report documents:
//     walk every scalar leaf of the baseline, compare against the same
//     path in the current document under one uniform tolerance.
//
// Baseline spec schema (committed under bench/baselines/):
//   {
//     "baseline": "<bench name>",
//     "schema_version": 1,
//     "captured": {...anything, ignored by the checker...},
//     "metrics": [
//       {"path": "scenarios[steady_state].wall_s",
//        "value": 0.123, "rel_tol": 9.0, "dir": "upper"},
//       {"path": "bit_identical", "value": true, "dir": "equal"}
//     ]
//   }
// `dir` bounds which side regresses: "upper" (regression when current >
// value * (1 + tol) — wall times), "lower" (regression when current <
// value / (1 + tol) — speedups), "both" (either side — counters), or
// "equal" (exact match — booleans, strings, gate flags). `rel_tol` is a
// relative half-width (2.0 = 3x), scalable at check time for slow
// runners (sanitizer CI passes a scale > 1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace emc::obs {

// ----------------------------------------------------------------- merge

/// Deterministically merge N RunReport documents into one (see file
/// comment for the per-section rules). Fields equal across documents pass
/// through; conflicting context fields (host, config) become arrays of
/// the per-document values. Throws std::invalid_argument on an empty
/// list, a non-object document, or structurally incompatible histograms.
Json merge_run_reports(const std::vector<Json>& reports);

// ----------------------------------------------------- baseline checking

enum class Verdict { kPass, kImproved, kRegress, kMissing };

const char* verdict_name(Verdict v);

/// One checked metric.
struct DeltaRow {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when baseline is 0 or non-numeric)
  double tol = 0.0;    ///< effective relative tolerance after scaling
  Verdict verdict = Verdict::kPass;
  std::string note;  ///< non-numeric expectations: what was compared
};

struct CompareResult {
  bool pass = true;  ///< no kRegress and no kMissing rows
  std::size_t regressed = 0;
  std::size_t improved = 0;
  std::size_t missing = 0;
  std::vector<DeltaRow> rows;

  /// Human-readable verdict table (one line per row + a summary line).
  std::string format() const;
  /// Machine-readable form ({"pass":, "rows":[...]}).
  Json to_json() const;
};

/// Check `current` against a baseline spec (schema above). `tol_scale`
/// multiplies every row's rel_tol — slow/sanitized runners pass > 1.
/// Rows whose path does not resolve in `current` are kMissing (and fail);
/// malformed spec rows throw std::invalid_argument.
CompareResult check_baseline(const Json& baseline_spec, const Json& current,
                             double tol_scale = 1.0);

/// Generic diff: every scalar leaf of `baseline` is compared against the
/// same path in `current` with direction "both" and tolerance `rel_tol`
/// (non-numeric leaves compare for equality). Leaves present only in
/// `current` are ignored — the baseline names what matters.
CompareResult diff_reports(const Json& baseline, const Json& current,
                           double rel_tol = 0.25);

/// Resolve a dotted path with array selectors into `doc`:
///   "solver.newton_iters"            object fields
///   "workers.pool[2].items"          array index
///   "scenarios[steady_state].wall_s" array of objects, matched by their
///                                    "name" (or "axis"/"value") field
/// Returns nullptr when any step fails to resolve.
const Json* resolve_path(const Json& doc, std::string_view path);

}  // namespace emc::obs
