// Span-aggregated profiles: turn a Tracer's raw event stream into a
// deterministic hierarchical profile.
//
// A Tracer records one event per closed Span — tens of thousands of
// newton_step entries for a single sweep. A Profile folds that stream into
// the two views a human (or a regression gate) actually reads:
//
//   * flat per-span-name statistics — call count, total and self wall
//     time, min/max/mean duration, and a power-of-two duration histogram
//     (same bucketing as obs::Histogram) — answering "where did the time
//     go, by site";
//   * a parent -> child call tree aggregated by path — answering "where
//     did the time go, by context" — exportable as collapsed-stack text
//     that flamegraph.pl / speedscope render directly.
//
// Self time is total time minus the time spent in child spans, so the
// flat table's self column sums (per thread) to attributed wall time:
// the fraction it covers of a root span is the profile's coverage gate.
//
// Determinism: events aggregate by (path, name) with children sorted by
// name and the flat table sorted by name, so two runs tracing the same
// work produce structurally identical profiles (only durations differ)
// regardless of thread scheduling. Build after the traced work quiesced.
//
// Truncation: a ring that overflowed dropped oldest-first, so parents of
// retained events may be missing. build() still produces a best-effort
// profile (orphaned events attach at the deepest retained ancestor) but
// flags it `truncated`; treat truncated profiles as diagnostics, never as
// regression-gate inputs — size the ring up until dropped() == 0 instead.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace emc::obs {

/// Flat statistics of one span name, aggregated over every occurrence on
/// every thread.
struct SpanStats {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;  ///< sum of durations
  std::int64_t self_ns = 0;   ///< total minus time inside child spans
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  /// Power-of-two duration buckets: bucket b counts durations of bit
  /// width b (see obs::kHistogramBuckets), clamped into the last bucket.
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// One aggregated call-tree node: every span with this name whose parent
/// chain matches this node's path. Children are sorted by name.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0;
  std::vector<ProfileNode> children;
};

class Profile {
 public:
  /// Aggregate a tracer's retained events (call after the traced work
  /// quiesced — it walks every ring).
  static Profile build(const Tracer& tracer);
  /// Aggregate a pre-extracted event list sorted the way Tracer::events()
  /// sorts: (tid, start, longest-first), parents before children.
  static Profile build(std::span<const TraceEvent> events, std::uint64_t dropped_events,
                       std::size_t threads);

  /// True when the source tracer dropped events to ring overflow: parent
  /// attribution is then best-effort and gates must not trust the profile.
  bool truncated() const { return dropped_events_ > 0; }
  std::uint64_t dropped_events() const { return dropped_events_; }
  std::size_t threads() const { return threads_; }
  std::size_t events() const { return events_; }

  /// Flat per-name table, keyed (and therefore sorted) by span name.
  const std::map<std::string, SpanStats>& spans() const { return spans_; }
  /// Synthetic root (empty name) whose children are the top-level spans.
  const ProfileNode& root() const { return root_; }
  /// Sum of top-level span durations — the profile's notion of traced
  /// wall time (per-thread times add; divide by threads for wall clock).
  std::int64_t total_ns() const { return root_.total_ns; }
  /// spans()[name].self_ns, 0 when the name never occurred.
  std::int64_t self_ns(const std::string& name) const;

  /// The profile as a JSON object (the RunReport "profile" section):
  /// {truncated, dropped_events, threads, events, total_ns,
  ///  spans: {name: {count, total_ns, self_ns, min_ns, max_ns, mean_ns,
  ///                 pow2_buckets}},
  ///  tree: [{name, count, total_ns, self_ns, children: [...]}]}.
  Json to_json() const;

  /// Collapsed-stack (Brendan Gregg "folded") text: one "a;b;c <self_us>"
  /// line per tree path with nonzero self time, root-first, children in
  /// name order. flamegraph.pl and speedscope read it directly.
  std::string collapsed_stacks() const;

 private:
  std::uint64_t dropped_events_ = 0;
  std::size_t threads_ = 0;
  std::size_t events_ = 0;
  std::map<std::string, SpanStats> spans_;
  ProfileNode root_;
};

/// Collapsed-stack text from an already-serialized profile section (the
/// JSON shape Profile::to_json emits) — what `emc_report flame` uses to
/// export flamegraphs from report files without rebuilding the Profile.
std::string collapsed_stacks_from_profile_json(const Json& profile);

}  // namespace emc::obs
