#include "obs/profile.hpp"

#include <algorithm>
#include <bit>
#include <memory>

namespace emc::obs {

namespace {

std::size_t bucket_of(std::int64_t dur_ns) {
  const auto v = static_cast<std::uint64_t>(dur_ns < 0 ? 0 : dur_ns);
  return std::min<std::size_t>(std::bit_width(v), kHistogramBuckets - 1);
}

/// Mutable aggregation node; converted to the sorted ProfileNode shape
/// once every event has been folded in.
struct TmpNode {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t child_ns = 0;
  std::map<std::string, std::unique_ptr<TmpNode>> children;
};

ProfileNode freeze(const std::string& name, const TmpNode& n) {
  ProfileNode out;
  out.name = name;
  out.count = n.count;
  out.total_ns = n.total_ns;
  out.self_ns = n.total_ns - n.child_ns;
  out.children.reserve(n.children.size());
  for (const auto& [child_name, child] : n.children)  // map: name-sorted
    out.children.push_back(freeze(child_name, *child));
  return out;
}

void fold_self_by_name(const ProfileNode& n, std::map<std::string, SpanStats>& spans) {
  for (const ProfileNode& c : n.children) {
    spans[c.name].self_ns += c.self_ns;
    fold_self_by_name(c, spans);
  }
}

void emit_node_json(const ProfileNode& n, Json& arr) {
  Json o = Json::object();
  o.set("name", Json::string(n.name));
  o.set("count", Json::integer(static_cast<long>(n.count)));
  o.set("total_ns", Json::integer(static_cast<long>(n.total_ns)));
  o.set("self_ns", Json::integer(static_cast<long>(n.self_ns)));
  if (!n.children.empty()) {
    Json kids = Json::array();
    for (const ProfileNode& c : n.children) emit_node_json(c, kids);
    o.set("children", std::move(kids));
  }
  arr.push(std::move(o));
}

void emit_folded(const Json& node, std::string& prefix, std::string& out) {
  const std::size_t prefix_len = prefix.size();
  if (!prefix.empty()) prefix.push_back(';');
  prefix += node.at("name").as_string();

  // Folded-format values are integer sample weights; microseconds keep
  // sub-millisecond spans visible without ballooning the numbers.
  const long self_us = (node.at("self_ns").as_integer() + 500) / 1000;
  if (self_us > 0) {
    out += prefix;
    out.push_back(' ');
    out += std::to_string(self_us);
    out.push_back('\n');
  }
  if (const Json* kids = node.find("children"))
    for (const Json& c : kids->items()) emit_folded(c, prefix, out);
  prefix.resize(prefix_len);
}

}  // namespace

Profile Profile::build(const Tracer& tracer) {
  return build(tracer.events(), tracer.dropped(), tracer.threads());
}

Profile Profile::build(std::span<const TraceEvent> events, std::uint64_t dropped_events,
                       std::size_t threads) {
  Profile p;
  p.dropped_events_ = dropped_events;
  p.threads_ = threads;
  p.events_ = events.size();

  TmpNode root;
  // Per-thread reconstruction: events arrive (tid, start, longest-first),
  // so a parent precedes the children it contains and the recorded depth
  // alone rebuilds the stack. stack[d] is the open node at depth d.
  std::vector<TmpNode*> stack;
  std::uint32_t cur_tid = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (first || e.tid != cur_tid) {
      stack.assign(1, &root);
      cur_tid = e.tid;
      first = false;
    }
    // An event at depth d nests under the last open event at depth d-1.
    // A dropped parent leaves d beyond the stack; clamp to the deepest
    // retained ancestor (only reachable when dropped_events > 0, which
    // already flags the profile truncated).
    const std::size_t depth =
        std::min<std::size_t>(e.depth, stack.size() - 1);
    stack.resize(depth + 1);

    TmpNode* parent = stack.back();
    std::unique_ptr<TmpNode>& slot = parent->children[e.name];
    if (!slot) slot = std::make_unique<TmpNode>();
    slot->count += 1;
    slot->total_ns += e.dur_ns;
    parent->child_ns += e.dur_ns;
    if (parent == &root) root.total_ns += e.dur_ns;
    stack.push_back(slot.get());

    SpanStats& s = p.spans_[e.name];
    if (s.count == 0 || e.dur_ns < s.min_ns) s.min_ns = e.dur_ns;
    if (e.dur_ns > s.max_ns) s.max_ns = e.dur_ns;
    s.count += 1;
    s.total_ns += e.dur_ns;
    s.buckets[bucket_of(e.dur_ns)] += 1;
  }

  root.child_ns = root.total_ns;  // the synthetic root has no self time
  p.root_ = freeze("", root);
  fold_self_by_name(p.root_, p.spans_);
  return p;
}

std::int64_t Profile::self_ns(const std::string& name) const {
  const auto it = spans_.find(name);
  return it == spans_.end() ? 0 : it->second.self_ns;
}

Json Profile::to_json() const {
  Json o = Json::object();
  o.set("truncated", Json::boolean(truncated()));
  o.set("dropped_events", Json::integer(static_cast<long>(dropped_events_)));
  o.set("threads", Json::integer(static_cast<long>(threads_)));
  o.set("events", Json::integer(static_cast<long>(events_)));
  o.set("total_ns", Json::integer(static_cast<long>(root_.total_ns)));

  Json spans = Json::object();
  for (const auto& [name, s] : spans_) {
    Json row = Json::object();
    row.set("count", Json::integer(static_cast<long>(s.count)));
    row.set("total_ns", Json::integer(static_cast<long>(s.total_ns)));
    row.set("self_ns", Json::integer(static_cast<long>(s.self_ns)));
    row.set("min_ns", Json::integer(static_cast<long>(s.min_ns)));
    row.set("max_ns", Json::integer(static_cast<long>(s.max_ns)));
    if (s.count > 0)
      row.set("mean_ns", Json::number(static_cast<double>(s.total_ns) /
                                      static_cast<double>(s.count)));
    // Same trailing-trim convention as MetricsSnapshot::to_json.
    std::size_t last = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b)
      if (s.buckets[b] > 0) last = b + 1;
    Json buckets = Json::array();
    for (std::size_t b = 0; b < last; ++b)
      buckets.push(Json::integer(static_cast<long>(s.buckets[b])));
    row.set("pow2_buckets", std::move(buckets));
    spans.set(name, std::move(row));
  }
  o.set("spans", std::move(spans));

  Json tree = Json::array();
  for (const ProfileNode& c : root_.children) emit_node_json(c, tree);
  o.set("tree", std::move(tree));
  return o;
}

std::string Profile::collapsed_stacks() const {
  return collapsed_stacks_from_profile_json(to_json());
}

std::string collapsed_stacks_from_profile_json(const Json& profile) {
  const Json* tree = profile.find("tree");
  if (!tree || !tree->is_array())
    throw std::logic_error("collapsed_stacks: profile has no tree array");
  std::string out, prefix;
  for (const Json& top : tree->items()) emit_folded(top, prefix, out);
  return out;
}

}  // namespace emc::obs
