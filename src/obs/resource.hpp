// Process resource sampling: RSS and CPU time, read on demand or sampled
// on a background thread into a fixed ring.
//
// sample_resources() reads the current resident set from
// /proc/self/statm (resident pages x page size). Where that file is
// unavailable it falls back to getrusage(RUSAGE_SELF) ru_maxrss — note
// the fallback reports the *peak* RSS, not the current one (documented in
// the sample's `rss_is_peak` flag). CPU time is getrusage user + system.
//
// ResourceSampler runs a background thread taking one sample every
// `interval_ms` into a fixed-capacity ring (oldest samples overwritten
// and counted, like the trace rings), so memory stays bounded for
// arbitrarily long runs while the peak — tracked over every sample, even
// overwritten ones — stays exact at sample granularity. One sample is
// taken at start() and a final one at stop(), so even a sub-interval run
// gets a meaningful peak.
//
// The sampler feeds the RunReport "resources" section: peak RSS, CPU
// split, and a decimated RSS series — and gives the streaming benches an
// external cross-check that "bytes held" accounting is not fiction: peak
// RSS can never be below what the sinks claim to be holding.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace emc::obs {

/// One point-in-time reading.
struct ResourceUsage {
  std::int64_t t_ns = 0;          ///< steady-clock timestamp
  std::uint64_t rss_bytes = 0;    ///< resident set size (see rss_is_peak)
  std::uint64_t cpu_user_ns = 0;  ///< process user CPU time
  std::uint64_t cpu_sys_ns = 0;   ///< process system CPU time
  bool rss_is_peak = false;       ///< true when the getrusage fallback was used
};

/// Current process usage; never throws (fields read 0 where unsupported).
ResourceUsage sample_resources();

class ResourceSampler {
 public:
  struct Options {
    std::int64_t interval_ms = 25;
    std::size_t ring_capacity = 4096;
  };

  // Two constructors rather than `Options opt = {}`: a default argument
  // braced-initializing a nested aggregate with member initializers is
  // ill-formed inside the enclosing class definition.
  ResourceSampler();
  explicit ResourceSampler(Options opt);
  ~ResourceSampler();  ///< stops the thread if still running

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Launch the sampling thread (idempotent). Takes an immediate sample.
  void start();
  /// Join the thread after one final sample (idempotent).
  void stop();
  bool running() const { return running_; }

  struct Stats {
    std::uint64_t samples = 0;        ///< taken (retained + overwritten)
    std::uint64_t dropped = 0;        ///< overwritten by ring overflow
    std::uint64_t peak_rss_bytes = 0; ///< max over every sample taken
    std::uint64_t cpu_user_ns = 0;    ///< of the last sample
    std::uint64_t cpu_sys_ns = 0;     ///< of the last sample
    std::int64_t wall_ns = 0;         ///< last sample time minus first
    bool rss_is_peak = false;         ///< fallback source in use
  };
  Stats stats() const;

  /// Retained samples, oldest first.
  std::vector<ResourceUsage> series() const;

  /// The RunReport "resources" section: stats plus an RSS series decimated
  /// to at most `max_series` points ({t_ms, rss_bytes} rows).
  Json to_json(std::size_t max_series = 64) const;

 private:
  void sample_locked();
  void loop();

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;

  std::vector<ResourceUsage> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
  std::int64_t first_t_ns_ = 0;
};

}  // namespace emc::obs
