#include "obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace emc::obs {

namespace {

// ------------------------------------------------------------ merge rules

bool is_int(const Json& j) { return j.kind() == Json::Kind::kInteger; }

/// dump(0) ends with a newline; notes embed values mid-sentence.
std::string dump_inline(const Json& j) {
  std::string s = j.dump(0);
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

long int_or_throw(const Json& j, const char* where) {
  if (!is_int(j)) throw std::invalid_argument(std::string("merge: ") + where +
                                              " is not an integer");
  return j.as_integer();
}

/// Fields whose values agree across documents pass through; disagreeing
/// context fields become an array of the per-document values (in document
/// order) — information-preserving and deterministic.
Json merge_equal_or_list(const std::vector<const Json*>& vals) {
  const std::string first = vals[0]->dump(0);
  bool all_equal = true;
  for (const Json* v : vals)
    if (v->dump(0) != first) {
      all_equal = false;
      break;
    }
  if (all_equal) return *vals[0];
  Json list = Json::array();
  for (const Json* v : vals) list.push(*v);
  return list;
}

/// Per-field merge of an object section: keys keep first-document order,
/// later-only keys append; each field merged by `field_fn(key, values)`.
/// Documents missing the section (or a field) simply don't contribute.
template <typename FieldFn>
Json merge_object_fields(const std::vector<const Json*>& docs, FieldFn&& field_fn) {
  Json out = Json::object();
  std::vector<std::string> order;
  for (const Json* d : docs) {
    if (!d || !d->is_object()) continue;
    for (const auto& [key, value] : d->fields()) {
      (void)value;
      if (std::find(order.begin(), order.end(), key) == order.end())
        order.push_back(key);
    }
  }
  for (const std::string& key : order) {
    std::vector<const Json*> vals;
    for (const Json* d : docs)
      if (d && d->is_object())
        if (const Json* v = d->find(key)) vals.push_back(v);
    if (!vals.empty()) out.set(key, field_fn(key, vals));
  }
  return out;
}

Json sum_integers(const std::vector<const Json*>& vals, const char* where) {
  long total = 0;
  for (const Json* v : vals) total += int_or_throw(*v, where);
  return Json::integer(total);
}

Json max_integers(const std::vector<const Json*>& vals, const char* where) {
  long best = 0;
  for (const Json* v : vals) best = std::max(best, int_or_throw(*v, where));
  return Json::integer(best);
}

/// Histogram objects ({count, sum, max, mean?, pow2_buckets}) merge like
/// MetricRegistry shards: count/sum add, max maxes, buckets add
/// elementwise, mean is recomputed from the merged sums.
Json merge_histogram_objects(const std::vector<const Json*>& vals) {
  long count = 0, sum = 0, mx = 0;
  std::vector<long> buckets;
  for (const Json* v : vals) {
    count += int_or_throw(v->at("count"), "histogram count");
    sum += int_or_throw(v->at("sum"), "histogram sum");
    mx = std::max(mx, int_or_throw(v->at("max"), "histogram max"));
    const Json& b = v->at("pow2_buckets");
    if (b.size() > buckets.size()) buckets.resize(b.size(), 0);
    for (std::size_t i = 0; i < b.size(); ++i) buckets[i] += b[i].as_integer();
  }
  Json h = Json::object();
  h.set("count", Json::integer(count));
  h.set("sum", Json::integer(sum));
  h.set("max", Json::integer(mx));
  if (count > 0)
    h.set("mean", Json::number(static_cast<double>(sum) / static_cast<double>(count)));
  Json barr = Json::array();
  for (long b : buckets) barr.push(Json::integer(b));
  h.set("pow2_buckets", std::move(barr));
  return h;
}

/// "metrics" section: counters are bare integers (sum), gauges are
/// {"peak": v} objects (max), histograms are count/sum/max objects (add).
Json merge_metrics(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string& key,
                                      const std::vector<const Json*>& vals) -> Json {
    const Json& probe = *vals[0];
    if (is_int(probe)) return sum_integers(vals, key.c_str());
    if (probe.is_object() && probe.find("peak")) {
      long best = 0;
      for (const Json* v : vals)
        best = std::max(best, int_or_throw(v->at("peak"), "gauge peak"));
      Json g = Json::object();
      g.set("peak", Json::integer(best));
      return g;
    }
    if (probe.is_object() && probe.find("count")) return merge_histogram_objects(vals);
    throw std::invalid_argument("merge: unrecognized metric shape for " + key);
  });
}

/// Margins serialize as numbers or the string "uncovered" (+inf).
double margin_value(const Json& j) {
  return j.is_number() ? j.as_double() : std::numeric_limits<double>::infinity();
}

/// Sweep-summary merge: the field-by-field rules that make a sharded
/// sweep's merged summary equal the single-process one.
Json merge_sweep_summary(const std::vector<const Json*>& vals) {
  // worst corner: min margin over documents, first document wins ties
  // (shards arrive in grid order, matching the sequential aggregation).
  std::size_t winner = 0;
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < vals.size(); ++d) {
    const double m = margin_value(vals[d]->at("worst_margin_db"));
    if (m < worst) {
      worst = m;
      winner = d;
    }
  }

  return merge_object_fields(vals, [&](const std::string& key,
                                       const std::vector<const Json*>& fv) -> Json {
    if (key == "corners" || key == "passed" || key == "failed" ||
        key == "uncovered" || key == "truncated" || key == "solver_failed" ||
        key == "recovered" || key == "scan_detector_passes" ||
        key == "scan_refined_points" || key == "scan_crossings")
      return sum_integers(fv, key.c_str());
    if (key == "worst_margin_db" || key == "worst_corner" || key == "worst_label") {
      // Copied verbatim from the winning document so numeric formatting
      // (and the label) stay bit-identical to the unsharded run.
      if (const Json* v = vals[winner]->find(key)) return *v;
      return *fv[0];
    }
    if (key == "peak_streamed_record_bytes" || key == "peak_monolithic_record_bytes")
      return max_integers(fv, key.c_str());
    if (key == "per_axis_worst")
      return *fv[0];  // placeholder; merge_sweep substitutes the real merge
    if (key == "margin_histogram_db") {
      const Json& first = *fv[0];
      Json h = Json::object();
      h.set("lo_db", first.at("lo_db"));
      h.set("hi_db", first.at("hi_db"));
      std::vector<long> counts(first.at("counts").size(), 0);
      for (const Json* v : fv) {
        if (v->at("lo_db").dump(0) != first.at("lo_db").dump(0) ||
            v->at("hi_db").dump(0) != first.at("hi_db").dump(0) ||
            v->at("counts").size() != counts.size())
          throw std::invalid_argument("merge: incompatible margin histograms");
        for (std::size_t i = 0; i < counts.size(); ++i)
          counts[i] += v->at("counts")[i].as_integer();
      }
      Json carr = Json::array();
      for (long c : counts) carr.push(Json::integer(c));
      h.set("counts", std::move(carr));
      return h;
    }
    return merge_equal_or_list(fv);
  });
}

/// per_axis_worst needs array-of-rows handling that doesn't fit the
/// object-field helper; done as a dedicated pass.
Json merge_per_axis_worst(const std::vector<const Json*>& vals) {
  Json out = Json::array();
  const Json& first = *vals[0];
  for (std::size_t r = 0; r < first.size(); ++r) {
    const Json& row0 = first[r];
    const std::string axis = row0.at("axis").as_string();
    Json row = Json::object();
    row.set("axis", Json::string(axis));
    Json merged_vals = Json::array();
    const Json& vals0 = row0.at("worst_by_value");
    for (std::size_t k = 0; k < vals0.size(); ++k) {
      const std::string label = vals0[k].at("value").as_string();
      // min margin across documents; the winning document's JSON value is
      // copied verbatim (same formatting as the unsharded emitter). The
      // per-value solver_failed count (newer reports only) sums.
      const Json* best = &vals0[k].at("worst_margin_db");
      double best_m = margin_value(*best);
      const bool has_failed = vals0[k].find("solver_failed") != nullptr;
      long failed_sum = 0;
      if (has_failed) failed_sum = vals0[k].at("solver_failed").as_integer();
      for (std::size_t d = 1; d < vals.size(); ++d) {
        const Json& doc = *vals[d];
        for (std::size_t rr = 0; rr < doc.size(); ++rr) {
          if (doc[rr].at("axis").as_string() != axis) continue;
          const Json& wv = doc[rr].at("worst_by_value");
          for (std::size_t kk = 0; kk < wv.size(); ++kk) {
            if (wv[kk].at("value").as_string() != label) continue;
            const Json& cand = wv[kk].at("worst_margin_db");
            if (margin_value(cand) < best_m) {
              best_m = margin_value(cand);
              best = &cand;
            }
            if (has_failed)
              if (const Json* f = wv[kk].find("solver_failed"))
                failed_sum += f->as_integer();
          }
        }
      }
      Json v = Json::object();
      v.set("value", Json::string(label));
      v.set("worst_margin_db", *best);
      if (has_failed) v.set("solver_failed", Json::integer(failed_sum));
      merged_vals.push(std::move(v));
    }
    row.set("worst_by_value", std::move(merged_vals));
    out.push(std::move(row));
  }
  return out;
}

/// Profile sections merge like their underlying aggregations: counts and
/// times sum, min/max extremize, trees merge recursively by name.
Json merge_profile_tree(const std::vector<const Json*>& trees);

Json merge_profile_node(const std::vector<const Json*>& nodes) {
  Json out = Json::object();
  out.set("name", nodes[0]->at("name"));
  long count = 0, total = 0, self = 0;
  for (const Json* n : nodes) {
    count += n->at("count").as_integer();
    total += n->at("total_ns").as_integer();
    self += n->at("self_ns").as_integer();
  }
  out.set("count", Json::integer(count));
  out.set("total_ns", Json::integer(total));
  out.set("self_ns", Json::integer(self));
  std::vector<const Json*> kid_arrays;
  for (const Json* n : nodes)
    if (const Json* kids = n->find("children")) kid_arrays.push_back(kids);
  if (!kid_arrays.empty()) {
    Json merged = merge_profile_tree(kid_arrays);
    if (merged.size() > 0) out.set("children", std::move(merged));
  }
  return out;
}

Json merge_profile_tree(const std::vector<const Json*>& trees) {
  // Collect child names in sorted order (each tree is already sorted).
  std::vector<std::string> names;
  for (const Json* t : trees)
    for (const Json& n : t->items()) {
      const std::string& nm = n.at("name").as_string();
      if (std::find(names.begin(), names.end(), nm) == names.end()) names.push_back(nm);
    }
  std::sort(names.begin(), names.end());
  Json out = Json::array();
  for (const std::string& nm : names) {
    std::vector<const Json*> matches;
    for (const Json* t : trees)
      for (const Json& n : t->items())
        if (n.at("name").as_string() == nm) matches.push_back(&n);
    out.push(merge_profile_node(matches));
  }
  return out;
}

Json merge_profiles(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string& key,
                                      const std::vector<const Json*>& fv) -> Json {
    if (key == "truncated") {
      bool any = false;
      for (const Json* v : fv) any = any || v->as_bool();
      return Json::boolean(any);
    }
    if (key == "dropped_events" || key == "threads" || key == "events" ||
        key == "total_ns")
      return sum_integers(fv, key.c_str());
    if (key == "spans")
      return merge_object_fields(fv, [](const std::string&,
                                        const std::vector<const Json*>& sv) -> Json {
        Json row = Json::object();
        long count = 0, total = 0, self = 0;
        long mn = std::numeric_limits<long>::max(), mx = 0;
        std::vector<long> buckets;
        for (const Json* s : sv) {
          count += s->at("count").as_integer();
          total += s->at("total_ns").as_integer();
          self += s->at("self_ns").as_integer();
          mn = std::min(mn, s->at("min_ns").as_integer());
          mx = std::max(mx, s->at("max_ns").as_integer());
          const Json& b = s->at("pow2_buckets");
          if (b.size() > buckets.size()) buckets.resize(b.size(), 0);
          for (std::size_t i = 0; i < b.size(); ++i) buckets[i] += b[i].as_integer();
        }
        row.set("count", Json::integer(count));
        row.set("total_ns", Json::integer(total));
        row.set("self_ns", Json::integer(self));
        row.set("min_ns", Json::integer(mn));
        row.set("max_ns", Json::integer(mx));
        if (count > 0)
          row.set("mean_ns",
                  Json::number(static_cast<double>(total) / static_cast<double>(count)));
        Json barr = Json::array();
        for (long b : buckets) barr.push(Json::integer(b));
        row.set("pow2_buckets", std::move(barr));
        return row;
      });
    if (key == "tree") return merge_profile_tree(fv);
    return merge_equal_or_list(fv);
  });
}

Json merge_trace(const std::vector<const Json*>& docs) {
  Json out = merge_object_fields(docs, [](const std::string& key,
                                          const std::vector<const Json*>& fv) -> Json {
    if (key == "threads" || key == "events" || key == "dropped_events")
      return sum_integers(fv, key.c_str());
    if (key == "file") {
      Json files = Json::array();
      for (const Json* v : fv) files.push(*v);
      return files;
    }
    return merge_equal_or_list(fv);
  });
  // A merged trace summary names its files in the plural.
  if (Json* f = out.find("file")) {
    Json files = std::move(*f);
    Json renamed = Json::object();
    for (const auto& [key, value] : out.fields())
      if (key != "file") renamed.set(key, value);
    renamed.set("files", std::move(files));
    return renamed;
  }
  return out;
}

Json merge_resources(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string& key,
                                      const std::vector<const Json*>& fv) -> Json {
    if (key == "samples" || key == "dropped_samples") return sum_integers(fv, key.c_str());
    if (key == "peak_rss_bytes") return max_integers(fv, key.c_str());
    if (key == "cpu_user_s" || key == "cpu_sys_s") {
      double total = 0.0;
      for (const Json* v : fv) total += v->as_double();
      return Json::number(total);
    }
    if (key == "wall_s") {
      double mx = 0.0;
      for (const Json* v : fv) mx = std::max(mx, v->as_double());
      return Json::number(mx);
    }
    if (key == "rss_is_peak_fallback") {
      bool any = false;
      for (const Json* v : fv) any = any || v->as_bool();
      return Json::boolean(any);
    }
    if (key == "rss_series") return Json::array();  // per-process series don't concat meaningfully
    return merge_equal_or_list(fv);
  });
}

Json merge_sweep(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string& key,
                                      const std::vector<const Json*>& fv) -> Json {
    if (key == "summary") {
      Json merged = merge_sweep_summary(fv);
      // per_axis_worst needs the dedicated array-aware pass.
      std::vector<const Json*> axes;
      for (const Json* v : fv)
        if (const Json* a = v->find("per_axis_worst")) axes.push_back(a);
      if (!axes.empty()) {
        if (Json* slot = merged.find("per_axis_worst")) *slot = merge_per_axis_worst(axes);
      }
      return merged;
    }
    if (key == "transients_reused") return sum_integers(fv, key.c_str());
    return merge_equal_or_list(fv);
  });
}

Json merge_solver(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string& key,
                                      const std::vector<const Json*>& fv) -> Json {
    if (key == "kind") {
      const std::string first = fv[0]->as_string();
      for (const Json* v : fv)
        if (v->as_string() != first) return Json::string("mixed");
      return Json::string(first);
    }
    if (is_int(*fv[0])) return sum_integers(fv, key.c_str());
    return merge_equal_or_list(fv);
  });
}

Json merge_workers(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string&,
                                      const std::vector<const Json*>& fv) -> Json {
    if (fv[0]->is_array()) {
      // Worker rows concatenate in document order; worker ids are
      // re-dealt so the merged pool reads 0..N-1.
      Json rows = Json::array();
      long next = 0;
      for (const Json* arr : fv)
        for (const Json& row : arr->items()) {
          if (row.is_object() && row.find("worker")) {
            Json r = Json::object();
            for (const auto& [k, v] : row.fields())
              r.set(k, k == "worker" ? Json::integer(next) : v);
            rows.push(std::move(r));
            ++next;
          } else {
            rows.push(row);
          }
        }
      return rows;
    }
    return merge_equal_or_list(fv);
  });
}

Json merge_context(const std::vector<const Json*>& docs) {
  return merge_object_fields(docs, [](const std::string&,
                                      const std::vector<const Json*>& fv) -> Json {
    return merge_equal_or_list(fv);
  });
}

// --------------------------------------------------------------- compare

struct ToleranceSpec {
  double rel = 0.25;
  enum Dir { kUpper, kLower, kBoth, kEqual } dir = kBoth;
};

ToleranceSpec::Dir parse_dir(const std::string& s) {
  if (s == "upper") return ToleranceSpec::kUpper;
  if (s == "lower") return ToleranceSpec::kLower;
  if (s == "both") return ToleranceSpec::kBoth;
  if (s == "equal") return ToleranceSpec::kEqual;
  throw std::invalid_argument("baseline: unknown dir \"" + s + "\"");
}

void finish(CompareResult& res) {
  for (const DeltaRow& r : res.rows) {
    if (r.verdict == Verdict::kRegress) ++res.regressed;
    if (r.verdict == Verdict::kImproved) ++res.improved;
    if (r.verdict == Verdict::kMissing) ++res.missing;
  }
  res.pass = res.regressed == 0 && res.missing == 0;
}

DeltaRow check_one(const std::string& path, const Json& expected, const Json* actual,
                   ToleranceSpec tol) {
  DeltaRow row;
  row.path = path;
  row.tol = tol.rel;
  if (!actual) {
    row.verdict = Verdict::kMissing;
    row.note = "path not found in current report";
    return row;
  }
  if (tol.dir == ToleranceSpec::kEqual || !expected.is_number()) {
    const bool eq = expected.dump(0) == actual->dump(0);
    row.verdict = eq ? Verdict::kPass : Verdict::kRegress;
    row.note = "expect " + dump_inline(expected) + ", got " + dump_inline(*actual);
    if (expected.is_number() && actual->is_number()) {
      row.baseline = expected.as_double();
      row.current = actual->as_double();
    }
    return row;
  }
  if (!actual->is_number()) {
    row.verdict = Verdict::kRegress;
    row.note = "expected a number, got " + dump_inline(*actual);
    return row;
  }

  row.baseline = expected.as_double();
  row.current = actual->as_double();
  row.ratio = row.baseline != 0.0 ? row.current / row.baseline : 0.0;

  // Band around the baseline, sized by its magnitude so negative
  // baselines (dB margins, sentinel values) keep hi above lo. Positive
  // baselines with a wide tolerance get the reciprocal lower bound (a
  // "within Nx" band); elsewhere the band is symmetric.
  const double span = std::abs(row.baseline);
  const double hi = row.baseline + span * tol.rel;
  const double lo = tol.rel >= 1.0 && row.baseline > 0.0
                        ? row.baseline / (1.0 + tol.rel)
                        : row.baseline - span * tol.rel;
  const bool over = row.current > hi;
  const bool under = row.current < lo;
  switch (tol.dir) {
    case ToleranceSpec::kUpper:
      row.verdict = over ? Verdict::kRegress : under ? Verdict::kImproved : Verdict::kPass;
      break;
    case ToleranceSpec::kLower:
      row.verdict = under ? Verdict::kRegress : over ? Verdict::kImproved : Verdict::kPass;
      break;
    default:
      row.verdict = (over || under) ? Verdict::kRegress : Verdict::kPass;
      break;
  }
  return row;
}

void walk_leaves(const Json& node, std::string& path, const Json& current,
                 double rel_tol, CompareResult& res) {
  if (node.is_object()) {
    for (const auto& [key, value] : node.fields()) {
      const std::size_t len = path.size();
      if (!path.empty()) path.push_back('.');
      path += key;
      walk_leaves(value, path, current, rel_tol, res);
      path.resize(len);
    }
    return;
  }
  if (node.is_array()) {
    for (std::size_t i = 0; i < node.size(); ++i) {
      const std::size_t len = path.size();
      // Arrays of named objects address by name for stable paths.
      const Json* name = node[i].is_object() ? node[i].find("name") : nullptr;
      if (!name) name = node[i].is_object() ? node[i].find("axis") : nullptr;
      path.push_back('[');
      path += name && name->is_string() ? name->as_string() : std::to_string(i);
      path.push_back(']');
      walk_leaves(node[i], path, current, rel_tol, res);
      path.resize(len);
    }
    return;
  }
  ToleranceSpec tol;
  tol.rel = rel_tol;
  tol.dir = node.is_number() ? ToleranceSpec::kBoth : ToleranceSpec::kEqual;
  res.rows.push_back(check_one(path, node, resolve_path(current, path), tol));
}

}  // namespace

Json merge_run_reports(const std::vector<Json>& reports) {
  if (reports.empty())
    throw std::invalid_argument("merge_run_reports: no reports to merge");
  for (const Json& r : reports)
    if (!r.is_object())
      throw std::invalid_argument("merge_run_reports: report is not a JSON object");

  std::vector<const Json*> docs;
  docs.reserve(reports.size());
  for (const Json& r : reports) docs.push_back(&r);

  Json out = Json::object();
  // Top-level key order: first document's order, then later-only keys.
  std::vector<std::string> order;
  for (const Json* d : docs)
    for (const auto& [key, value] : d->fields()) {
      (void)value;
      if (std::find(order.begin(), order.end(), key) == order.end())
        order.push_back(key);
    }

  for (const std::string& key : order) {
    std::vector<const Json*> secs;
    for (const Json* d : docs)
      if (const Json* s = d->find(key)) secs.push_back(s);
    if (secs.empty()) continue;

    if (key == "report" || key == "schema_version") {
      out.set(key, *secs[0]);
      if (key == "schema_version")
        out.set("merged_from", Json::integer(static_cast<long>(reports.size())));
    } else if (key == "metrics") {
      out.set(key, merge_metrics(secs));
    } else if (key == "trace") {
      out.set(key, merge_trace(secs));
    } else if (key == "workers") {
      out.set(key, merge_workers(secs));
    } else if (key == "sweep") {
      out.set(key, merge_sweep(secs));
    } else if (key == "solver") {
      out.set(key, merge_solver(secs));
    } else if (key == "profile") {
      out.set(key, merge_profiles(secs));
    } else if (key == "resources") {
      out.set(key, merge_resources(secs));
    } else if (secs[0]->is_object()) {
      // host, config, and any future context section: per-field
      // equal-or-list.
      out.set(key, merge_context(secs));
    } else {
      out.set(key, merge_equal_or_list(secs));
    }
  }
  return out;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "PASS";
    case Verdict::kImproved: return "IMPROVED";
    case Verdict::kRegress: return "REGRESS";
    case Verdict::kMissing: return "MISSING";
  }
  return "?";
}

std::string CompareResult::format() const {
  std::string out;
  char line[512];
  for (const DeltaRow& r : rows) {
    if (!r.note.empty()) {
      std::snprintf(line, sizeof line, "  %-8s %-52s %s\n", verdict_name(r.verdict),
                    r.path.c_str(), r.note.c_str());
    } else {
      std::snprintf(line, sizeof line,
                    "  %-8s %-52s base %.6g  now %.6g  (%.2fx, tol %.2gx)\n",
                    verdict_name(r.verdict), r.path.c_str(), r.baseline, r.current,
                    r.ratio, 1.0 + r.tol);
    }
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  %zu checked: %zu regressed, %zu missing, %zu improved -> %s\n",
                rows.size(), regressed, missing, improved, pass ? "PASS" : "REGRESS");
  out += line;
  return out;
}

Json CompareResult::to_json() const {
  Json o = Json::object();
  o.set("pass", Json::boolean(pass));
  o.set("checked", Json::integer(static_cast<long>(rows.size())));
  o.set("regressed", Json::integer(static_cast<long>(regressed)));
  o.set("missing", Json::integer(static_cast<long>(missing)));
  o.set("improved", Json::integer(static_cast<long>(improved)));
  Json arr = Json::array();
  for (const DeltaRow& r : rows) {
    Json row = Json::object();
    row.set("path", Json::string(r.path));
    row.set("verdict", Json::string(verdict_name(r.verdict)));
    row.set("baseline", Json::number(r.baseline));
    row.set("current", Json::number(r.current));
    row.set("ratio", Json::number(r.ratio));
    row.set("rel_tol", Json::number(r.tol));
    if (!r.note.empty()) row.set("note", Json::string(r.note));
    arr.push(std::move(row));
  }
  o.set("rows", std::move(arr));
  return o;
}

CompareResult check_baseline(const Json& baseline_spec, const Json& current,
                             double tol_scale) {
  if (tol_scale <= 0.0)
    throw std::invalid_argument("check_baseline: tol_scale must be positive");
  const Json* metrics = baseline_spec.find("metrics");
  if (!metrics || !metrics->is_array())
    throw std::invalid_argument("check_baseline: spec has no metrics array");

  CompareResult res;
  for (const Json& m : metrics->items()) {
    const Json* path = m.find("path");
    const Json* value = m.find("value");
    if (!path || !path->is_string() || !value)
      throw std::invalid_argument("check_baseline: metric row needs path and value");
    ToleranceSpec tol;
    if (const Json* t = m.find("rel_tol")) tol.rel = t->as_double();
    if (const Json* d = m.find("dir")) tol.dir = parse_dir(d->as_string());
    tol.rel *= tol_scale;
    res.rows.push_back(check_one(path->as_string(), *value,
                                 resolve_path(current, path->as_string()), tol));
  }
  finish(res);
  return res;
}

CompareResult diff_reports(const Json& baseline, const Json& current, double rel_tol) {
  CompareResult res;
  std::string path;
  walk_leaves(baseline, path, current, rel_tol, res);
  finish(res);
  return res;
}

const Json* resolve_path(const Json& doc, std::string_view path) {
  const Json* cur = &doc;
  std::size_t i = 0;
  while (i < path.size()) {
    if (path[i] == '.') {
      ++i;
      continue;
    }
    if (path[i] == '[') {
      const std::size_t close = path.find(']', i);
      if (close == std::string_view::npos || !cur->is_array()) return nullptr;
      const std::string_view sel = path.substr(i + 1, close - i - 1);
      const Json* next = nullptr;
      if (!sel.empty() && sel.find_first_not_of("0123456789") == std::string_view::npos) {
        const std::size_t idx = static_cast<std::size_t>(std::stoul(std::string(sel)));
        if (idx < cur->size()) next = &(*cur)[idx];
      } else {
        for (std::size_t k = 0; k < cur->size() && !next; ++k) {
          const Json& item = (*cur)[k];
          if (!item.is_object()) continue;
          for (const char* key : {"name", "axis", "value"}) {
            const Json* n = item.find(key);
            if (n && n->is_string() && n->as_string() == sel) {
              next = &item;
              break;
            }
          }
        }
      }
      if (!next) return nullptr;
      cur = next;
      i = close + 1;
      continue;
    }
    const std::size_t end = path.find_first_of(".[", i);
    const std::string_view key =
        path.substr(i, (end == std::string_view::npos ? path.size() : end) - i);
    if (!cur->is_object()) return nullptr;
    const Json* next = cur->find(std::string(key));
    if (!next) return nullptr;
    cur = next;
    i = end == std::string_view::npos ? path.size() : end;
  }
  return cur;
}

}  // namespace emc::obs
