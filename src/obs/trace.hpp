// Scoped span tracing with per-thread ring buffers and a Chrome trace
// event exporter.
//
// A Span is an RAII scope marker: constructing one records a start
// timestamp, destroying it appends a completed event (name, thread, start,
// duration, nesting depth) to the current thread's ring buffer inside the
// installed Tracer. When no Tracer is installed the constructor is one
// relaxed atomic load and a branch — hot paths (per Newton step, per
// factorization) keep their spans unconditionally and pay nothing in
// production.
//
// Each thread writes only its own ring, so concurrent spans from sweep
// workers need no synchronization on the record path. Rings are
// fixed-capacity: overflow overwrites the oldest event and counts the
// drop, bounding trace memory for arbitrarily long runs (the newest
// events — usually the interesting tail — survive).
//
// Export: write_chrome_trace() emits the Trace Event Format JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// that chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
// Export after the traced work quiesces: it walks every ring.
//
// Lifetime contract: the Tracer must outlive every Span recorded into it
// (install around whole program phases, uninstall only after joining the
// threads that traced). Only one Tracer can be installed at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace emc::obs {

/// One completed span. `name` must point at storage outliving the Tracer
/// (span sites pass string literals).
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;   ///< dense per-tracer thread index, 0 = first thread seen
  std::uint32_t depth = 0; ///< nesting depth within its thread (0 = top level)
  std::int64_t ts_ns = 0;  ///< start, relative to the tracer's epoch
  std::int64_t dur_ns = 0;
};

class Tracer {
 public:
  struct ThreadRing;  ///< opaque per-thread event ring (defined in trace.cpp)

  /// `ring_capacity` events are retained per thread; older events beyond
  /// that are dropped oldest-first and counted.
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();  ///< uninstalls itself if still installed

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Make this the process-wide tracer Spans record into. Throws
  /// std::logic_error when another tracer is already installed.
  void install();
  /// Stop recording. Spans still alive keep their ring pointers, so
  /// uninstall only between traced phases, and destroy the Tracer only
  /// after those spans closed.
  void uninstall();
  bool installed() const;

  /// Threads that recorded at least one span.
  std::size_t threads() const;
  /// Events dropped to ring overflow, summed over threads.
  std::uint64_t dropped() const;
  /// Retained events of every thread, sorted by (tid, start, -duration) —
  /// parents sort before their children. Call after traced work quiesced.
  std::vector<TraceEvent> events() const;

  /// The trace as a Chrome trace-event JSON document: complete ("ph":"X")
  /// events with microsecond timestamps, plus otherData.dropped_events.
  Json chrome_trace_json() const;
  /// Serialize chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  friend class Span;

  /// Ring of the calling thread, created on first use.
  ThreadRing* ring_for_current_thread();

  std::size_t capacity_;
  std::int64_t epoch_ns_;
  std::uint64_t generation_;  ///< distinguishes tracers reusing an address
  mutable std::mutex mu_;  ///< guards rings_ (creation and export)
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII scope marker. Inactive (and free beyond one atomic load) when no
/// tracer is installed at construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  Tracer::ThreadRing* ring_;  ///< nullptr = inactive
  std::int64_t t0_ns_ = 0;
};

}  // namespace emc::obs
