// Insertion-ordered JSON value tree shared by the observability layer
// (RunReport, Chrome trace export, metric snapshots) and the bench JSON
// emitters (bench/json_out.hpp re-exports it). One implementation of
// escaping and number formatting instead of one per consumer, plus a
// parser so exported documents can be read back and validated — the trace
// and report tests round-trip every file they emit.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emc::obs {

/// Thrown by Json::parse on malformed input; what() carries the byte
/// offset of the failure.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind { kNull, kObject, kArray, kString, kNumber, kInteger, kBool };

  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(Kind::kNull); }
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json string(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json number(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json integer(long v) {
    Json j(Kind::kInteger);
    j.int_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  /// Parse a JSON document (objects, arrays, strings with the escapes
  /// dump() emits plus \/, \b, \f, \r and \uXXXX, numbers, booleans,
  /// null). Numbers without '.', 'e' or 'E' that fit a long parse as
  /// kInteger, everything else as kNumber. Throws JsonParseError on
  /// malformed input or trailing garbage.
  static Json parse(std::string_view text);

  /// Read and parse a file. Throws std::runtime_error when the file
  /// cannot be read, JsonParseError when its contents are malformed.
  static Json parse_file(const std::string& path);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  /// kNumber or kInteger — anything as_double() can read.
  bool is_number() const { return kind_ == Kind::kNumber || kind_ == Kind::kInteger; }

  /// Object field (insertion-ordered). Returns *this for chaining.
  Json& set(std::string key, Json v) {
    require(Kind::kObject, "set");
    fields_.emplace_back(std::move(key), std::move(v));
    return *this;
  }
  /// Array element. Returns *this for chaining.
  Json& push(Json v) {
    require(Kind::kArray, "push");
    items_.push_back(std::move(v));
    return *this;
  }

  /// Access to an existing object field; throws std::logic_error if
  /// absent (use find() for optional fields).
  Json& at(const std::string& key);
  const Json& at(const std::string& key) const;

  /// Pointer to an object field, nullptr when absent (or not an object).
  Json* find(const std::string& key);
  const Json* find(const std::string& key) const;

  /// Array / object element count; 0 for scalars.
  std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size()
           : kind_ == Kind::kObject ? fields_.size()
                                    : 0;
  }

  /// Array element (kArray only; throws std::logic_error / out_of_range).
  const Json& operator[](std::size_t i) const;

  const std::vector<Json>& items() const {
    require(Kind::kArray, "items");
    return items_;
  }
  const std::vector<std::pair<std::string, Json>>& fields() const {
    require(Kind::kObject, "fields");
    return fields_;
  }

  /// Scalar readers; throw std::logic_error on kind mismatch. as_double
  /// accepts kInteger too (a parsed "3" may feed a double consumer).
  double as_double() const;
  long as_integer() const;
  const std::string& as_string() const;
  bool as_bool() const;

  std::string dump(int indent = 2) const {
    std::string out;
    emit(out, indent, 0);
    out.push_back('\n');
    return out;
  }

  /// Serialize to `path`; prints a warning and returns false on failure.
  bool write_file(const std::string& path, int indent = 2) const;

 private:
  explicit Json(Kind k) : kind_(k) {}

  void require(Kind k, const char* op) const {
    if (kind_ != k) throw std::logic_error(std::string("Json: bad ") + op);
  }

  static void escape(std::string& out, const std::string& s);
  void emit(std::string& out, int indent, int depth) const;

  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  long int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
};

}  // namespace emc::obs
