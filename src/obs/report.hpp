// Structured run report: one JSON document unifying what a run did —
// solver configuration and factorization statistics, Newton iteration
// counts, sweep worker telemetry, receiver scan decisions, streaming
// memory peaks — so a run leaves a machine-readable record instead of a
// scatter of stdout lines.
//
// A RunReport is a thin builder over obs::Json: named sections are
// created on first use and filled with set() calls, a metrics snapshot
// lands under "metrics", a tracer summary under "trace". Sections keep
// insertion order, so reports diff cleanly between runs.
//
// Schema of the emitted document (schema_version 2):
//   {
//     "report": <name>,
//     "schema_version": 2,
//     "host": { ... },               // host_info_json(), added by the ctor
//     "<section>": { ... },          // one per section() in creation order
//     "metrics": { ... },            // MetricsSnapshot::to_json(), sorted by name
//     "trace": {"threads": N, "events": N, "dropped_events": N, "file": "..."},
//     "profile": { ... },            // Profile::to_json()
//     "resources": { ... }           // ResourceSampler::to_json()
//   }
// v1 -> v2: reports carry a "host" section (so merged/diffed reports stay
// attributable to the machine and build that produced them) and gauges in
// "metrics" serialize as {"peak": v} objects — the shape that lets
// merge_run_reports tell a max-merging peak from a sum-merging counter.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace emc::obs {

class Profile;
class ResourceSampler;

/// Host/build metadata: cpus, os, compiler, build_type, sanitize,
/// pointer_bits. Every RunReport (and every BENCH_*.json document) embeds
/// it so reports merged or diffed across machines stay attributable.
Json host_info_json();

class RunReport {
 public:
  /// Creates the report with its "host" section already attached.
  explicit RunReport(std::string name);

  /// Section object by key, created (at the end) on first use.
  Json& section(const std::string& key);

  /// Convenience setters into a section: section(key).set(field, ...).
  void set(const std::string& sec, const std::string& field, Json v);
  void set(const std::string& sec, const std::string& field, double v);
  void set(const std::string& sec, const std::string& field, long v);
  void set(const std::string& sec, const std::string& field, const std::string& v);
  void set(const std::string& sec, const std::string& field, bool v);

  /// Attach a merged metrics snapshot as the "metrics" section
  /// (replaces a previous one — take the snapshot when the run is done).
  void add_metrics(const MetricsSnapshot& snap);

  /// Attach a tracer summary as the "trace" section: thread / event /
  /// drop counts plus the trace file path when one was written.
  void add_trace_summary(const Tracer& tracer, const std::string& trace_file = "");

  /// Attach an aggregated span profile as the "profile" section.
  void add_profile(const Profile& profile);

  /// Attach sampler output as the "resources" section.
  void add_resources(const ResourceSampler& sampler, std::size_t max_series = 64);

  /// The report document (schema above). Copy of the current state.
  Json to_json() const;
  /// Serialize to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  Json doc_;
};

}  // namespace emc::obs
