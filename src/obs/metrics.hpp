// Low-overhead metric registry: named counters / gauges / histograms with
// thread-local sharding and a deterministic merge.
//
// Write path: each recording thread owns one shard per registry (a flat
// array of relaxed atomic slots, created on first use), so a hot-path
// increment is a thread-local lookup plus one relaxed fetch_add on memory
// no other thread writes — no locks, no contention, no perturbation of
// the computation being measured. A process-wide kill switch
// (set_enabled) turns every record call into a load+branch, which is what
// the bit-identity and overhead gates compare against.
//
// Read path: snapshot() locks the registry, sums every metric across
// shards and returns the rows sorted by name. All merge operations are
// exact integer sums or maxima, so a snapshot is a deterministic function
// of what was recorded, independent of thread scheduling or shard count.
//
// Merge semantics per kind:
//   counter   — monotonic event count; shards sum.
//   gauge     — high-watermark (set_max); shards merge by max. Suited to
//               peaks (bytes held, ring occupancy), the only gauge
//               semantics with a scheduling-independent merge.
//   histogram — power-of-two buckets of a u64 sample plus exact count /
//               sum / max; all fields sum- or max-merge.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace emc::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Buckets of a histogram metric: bucket b counts samples whose bit width
/// is b (bucket 0 holds the value 0, bucket b>0 holds [2^(b-1), 2^b)),
/// clamped into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 32;

/// Opaque handle to a registered metric; cheap to copy, valid for the
/// registry's lifetime.
struct MetricId {
  std::uint32_t slot = 0;   ///< first shard slot
  std::uint32_t index = 0;  ///< row index in the registry
};

/// One merged metric row of a snapshot.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter sum / gauge max / histogram count
  // Histogram extras (zero for other kinds).
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;
};

/// Deterministic merged view of a registry: rows sorted by name.
struct MetricsSnapshot {
  std::vector<MetricRow> rows;

  /// Row by name, nullptr when absent.
  const MetricRow* find(const std::string& name) const;
  /// Counter/gauge value (histogram: count) by name; 0 when absent.
  std::uint64_t value(const std::string& name) const;

  /// {"name": value, ...} for counters/gauges; histograms expand to an
  /// object with count/sum/max/mean and the non-empty buckets.
  Json to_json() const;
};

class MetricRegistry {
 public:
  struct Shard;  ///< opaque per-thread slot array (defined in metrics.cpp)

  MetricRegistry();
  ~MetricRegistry();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (or look up — registration is idempotent by name) a metric.
  /// Registration takes a lock; do it once and keep the id (the
  /// obs::Counter/Gauge/Histogram handles cache one in a static).
  /// Re-registering a name with a different kind throws std::logic_error.
  MetricId counter(const std::string& name) { return reg(name, MetricKind::kCounter); }
  MetricId gauge(const std::string& name) { return reg(name, MetricKind::kGauge); }
  MetricId histogram(const std::string& name) { return reg(name, MetricKind::kHistogram); }

  /// Counter add / histogram sample. One relaxed fetch_add (a handful for
  /// histograms) on this thread's shard; no-op while disabled.
  void add(MetricId id, std::uint64_t v = 1);
  void record(MetricId id, std::uint64_t sample);  ///< histogram sample
  /// Gauge high-watermark: raises this thread's slot to at least v.
  void set_max(MetricId id, std::uint64_t v);

  /// Merge every shard into sorted rows. Safe while writers are active
  /// (relaxed loads observe each slot atomically); values recorded
  /// concurrently with the snapshot may or may not be included.
  MetricsSnapshot snapshot() const;

  /// Zero every shard slot (metric names stay registered). Tests and
  /// benches use this to scope an epoch; concurrent writers race the
  /// zeroing, so quiesce first.
  void reset();

  /// Process-wide kill switch for the record paths (registration and
  /// snapshots still work). The disabled path is what the "no-obs"
  /// bit-identity and overhead gates run.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  MetricId reg(const std::string& name, MetricKind kind);
  Shard& local_shard();
  std::atomic<std::uint64_t>* slots_for(MetricId id, std::size_t width);

  struct Meta {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;
  };

  const std::uint64_t generation_;  ///< distinguishes registries reusing an address
  std::atomic<bool> enabled_{true};

  mutable std::mutex mu_;  ///< guards metas_, shards_, slot growth
  std::vector<Meta> metas_;
  std::uint32_t next_slot_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The process-global registry every built-in instrumentation site uses.
MetricRegistry& registry();

/// Static-friendly handles over the global registry:
///
///   static const obs::Counter c("ckt.newton.iters");
///   c.add();
class Counter {
 public:
  explicit Counter(const std::string& name) : id_(registry().counter(name)) {}
  void add(std::uint64_t v = 1) const { registry().add(id_, v); }

 private:
  MetricId id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name) : id_(registry().gauge(name)) {}
  void set_max(std::uint64_t v) const { registry().set_max(id_, v); }

 private:
  MetricId id_;
};

class Histogram {
 public:
  explicit Histogram(const std::string& name) : id_(registry().histogram(name)) {}
  void record(std::uint64_t sample) const { registry().record(id_, sample); }

 private:
  MetricId id_;
};

}  // namespace emc::obs
