#include "ident/rbf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/decomp.hpp"
#include "signal/sources.hpp"

namespace emc::ident {

RbfModel::RbfModel(Scaler scaler, linalg::Matrix centers, std::vector<double> weights,
                   double bias, double sigma)
    : scaler_(std::move(scaler)),
      centers_(std::move(centers)),
      weights_(std::move(weights)),
      bias_(bias),
      sigma_(sigma) {
  if (centers_.rows() != weights_.size())
    throw std::invalid_argument("RbfModel: centers/weights mismatch");
  if (sigma_ <= 0.0) throw std::invalid_argument("RbfModel: sigma must be positive");
}

double RbfModel::eval(std::span<const double> x) const {
  return eval_with_grad(x, 0, nullptr);
}

double RbfModel::eval_with_grad(std::span<const double> x, std::size_t idx,
                                double* grad) const {
  const std::size_t d = scaler_.dim();
  if (x.size() != d) throw std::invalid_argument("RbfModel::eval: input size mismatch");

  double zbuf[64];
  if (d > 64) throw std::invalid_argument("RbfModel::eval: input dimension > 64");
  std::span<double> z(zbuf, d);
  scaler_.transform_row(x, z);

  const double inv2s2 = 1.0 / (2.0 * sigma_ * sigma_);
  double y = bias_;
  double dy = 0.0;
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    const auto c = centers_.row(j);
    double dist2 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double dlt = z[k] - c[k];
      dist2 += dlt * dlt;
    }
    const double phi = std::exp(-dist2 * inv2s2);
    y += weights_[j] * phi;
    if (grad) dy += weights_[j] * phi * (-(z[idx] - c[idx]) / (sigma_ * sigma_));
  }
  if (grad) *grad = dy / scaler_.scale()[idx];  // chain rule through standardization
  return y;
}

namespace {

/// Gaussian kernel value between a scaled row and a scaled center.
double kernel(std::span<const double> z, std::span<const double> c, double inv2s2) {
  double dist2 = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    const double d = z[k] - c[k];
    dist2 += d * d;
  }
  return std::exp(-dist2 * inv2s2);
}

}  // namespace

OlsPath::OlsPath(const linalg::Matrix& x, std::span<const double> y,
                 const RbfFitOptions& opt)
    : scaler_(Scaler::fit(x)), y_(y.begin(), y.end()), sigma_(opt.sigma), ridge_(opt.ridge) {
  const std::size_t n = x.rows();
  if (n == 0 || y.size() != n) throw std::invalid_argument("OlsPath: bad dataset");
  if (opt.max_basis < 1) throw std::invalid_argument("OlsPath: max_basis must be >= 1");

  z_ = scaler_.transform(x);
  const double inv2s2 = 1.0 / (2.0 * sigma_ * sigma_);

  // Candidate centers: subsample training rows deterministically.
  std::vector<std::size_t> cand;
  if (n <= static_cast<std::size_t>(opt.max_candidates)) {
    cand.resize(n);
    std::iota(cand.begin(), cand.end(), 0);
  } else {
    sig::Lcg rng(opt.seed);
    const double stride = static_cast<double>(n) / opt.max_candidates;
    for (int j = 0; j < opt.max_candidates; ++j) {
      const double base = stride * static_cast<double>(j);
      const auto idx = static_cast<std::size_t>(base + rng.uniform() * stride);
      cand.push_back(std::min(idx, n - 1));
    }
  }
  const std::size_t nc = cand.size();

  // Candidate design columns phi_c (n x nc), plus the residual targets.
  // OLS with incremental Gram-Schmidt: after a column is selected, all
  // remaining candidates and the target are deflated by it; the error
  // reduction ratio of a candidate is then (p.y)^2 / (p.p * y.y).
  std::vector<std::vector<double>> p(nc, std::vector<double>(n));
  for (std::size_t c = 0; c < nc; ++c) {
    const auto center = z_.row(cand[c]);
    for (std::size_t r = 0; r < n; ++r) p[c][r] = kernel(z_.row(r), center, inv2s2);
  }

  std::vector<double> yres(y.begin(), y.end());
  // Deflate the mean (the bias regressor is always in the model).
  const double ymean =
      std::accumulate(yres.begin(), yres.end(), 0.0) / static_cast<double>(n);
  for (auto& v : yres) v -= ymean;
  for (std::size_t c = 0; c < nc; ++c) {
    const double m =
        std::accumulate(p[c].begin(), p[c].end(), 0.0) / static_cast<double>(n);
    for (auto& v : p[c]) v -= m;
  }

  const double y_energy = std::max(linalg::dot(yres, yres), 1e-30);
  std::vector<bool> used(nc, false);

  const int n_select = std::min<int>(opt.max_basis, static_cast<int>(nc));
  for (int step = 0; step < n_select; ++step) {
    double best_err = 0.0;
    std::size_t best_c = nc;
    for (std::size_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      const double pp = linalg::dot(p[c], p[c]);
      if (pp < 1e-20) continue;  // deflated to nothing: collinear with picks
      const double py = linalg::dot(p[c], yres);
      const double err = py * py / (pp * y_energy);
      if (err > best_err) {
        best_err = err;
        best_c = c;
      }
    }
    if (best_c == nc || best_err < opt.min_err_reduction) break;

    used[best_c] = true;
    order_.push_back(cand[best_c]);

    // Deflate remaining candidates and the target by the chosen column.
    const double qq = linalg::dot(p[best_c], p[best_c]);
    const std::vector<double> q = p[best_c];
    const double qy = linalg::dot(q, yres) / qq;
    for (std::size_t r = 0; r < n; ++r) yres[r] -= qy * q[r];
    for (std::size_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      const double qc = linalg::dot(q, p[c]) / qq;
      for (std::size_t r = 0; r < n; ++r) p[c][r] -= qc * q[r];
    }
  }
}

RbfModel OlsPath::model(std::size_t n_basis) const {
  const std::size_t n = z_.rows();
  const std::size_t d = z_.cols();
  const std::size_t m = std::min(n_basis, order_.size());
  const double inv2s2 = 1.0 / (2.0 * sigma_ * sigma_);

  if (m == 0) {
    const double ymean =
        std::accumulate(y_.begin(), y_.end(), 0.0) / static_cast<double>(n);
    return RbfModel(scaler_, linalg::Matrix(0, d), {}, ymean, sigma_);
  }

  // Weights: ridge least squares on the selected raw columns + bias.
  linalg::Matrix a(n, m + 1);
  for (std::size_t r = 0; r < n; ++r) a(r, 0) = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    const auto center = z_.row(order_[j]);
    for (std::size_t r = 0; r < n; ++r) a(r, j + 1) = kernel(z_.row(r), center, inv2s2);
  }
  const auto w = linalg::solve_ridge(a, y_, ridge_);

  linalg::Matrix centers(m, d);
  std::vector<double> weights(m);
  for (std::size_t j = 0; j < m; ++j) {
    const auto c = z_.row(order_[j]);
    for (std::size_t k = 0; k < d; ++k) centers(j, k) = c[k];
    weights[j] = w[j + 1];
  }
  return RbfModel(scaler_, std::move(centers), std::move(weights), w[0], sigma_);
}

RbfModel fit_rbf_ols(const linalg::Matrix& x, std::span<const double> y,
                     const RbfFitOptions& opt) {
  const OlsPath path(x, y, opt);
  return path.model(static_cast<std::size_t>(opt.max_basis));
}

RbfModel fit_rbf_best(const linalg::Matrix& x, std::span<const double> y,
                      const RbfFitOptions& base, std::span<const double> sigma_grid,
                      std::span<const int> basis_grid,
                      const std::function<double(const RbfModel&)>& score) {
  if (sigma_grid.empty() || basis_grid.empty())
    throw std::invalid_argument("fit_rbf_best: empty grids");

  RbfModel best;
  double best_score = std::numeric_limits<double>::infinity();
  for (double s : sigma_grid) {
    RbfFitOptions opt = base;
    opt.sigma = s;
    opt.max_basis = *std::max_element(basis_grid.begin(), basis_grid.end());
    const OlsPath path(x, y, opt);
    for (int nb : basis_grid) {
      RbfModel m = path.model(static_cast<std::size_t>(nb));
      const double sc = score(m);
      if (std::isfinite(sc) && sc < best_score) {
        best_score = sc;
        best = std::move(m);
      }
    }
  }
  if (!std::isfinite(best_score))
    throw std::runtime_error("fit_rbf_best: every candidate model scored non-finite");
  return best;
}

RbfModel fit_rbf_auto(const linalg::Matrix& x, std::span<const double> y, RbfFitOptions opt,
                      std::span<const double> sigma_grid) {
  static constexpr double kDefaultGrid[] = {0.7, 1.0, 1.5, 2.2, 3.2};
  std::span<const double> grid =
      sigma_grid.empty() ? std::span<const double>(kDefaultGrid) : sigma_grid;

  const std::size_t n = x.rows();
  const std::size_t n_train = std::max<std::size_t>(n * 3 / 4, 1);

  // Train/validation split along time (the records are time series).
  linalg::Matrix x_train(n_train, x.cols());
  std::vector<double> y_train(n_train);
  for (std::size_t r = 0; r < n_train; ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) x_train(r, c) = x(r, c);
    y_train[r] = y[r];
  }

  double best_err = std::numeric_limits<double>::infinity();
  double best_sigma = grid[0];
  for (double s : grid) {
    RbfFitOptions o = opt;
    o.sigma = s;
    const RbfModel m = fit_rbf_ols(x_train, y_train, o);
    double err = 0.0;
    for (std::size_t r = n_train; r < n; ++r) {
      const double e = m.eval(x.row(r)) - y[r];
      err += e * e;
    }
    if (err < best_err) {
      best_err = err;
      best_sigma = s;
    }
  }
  opt.sigma = best_sigma;
  return fit_rbf_ols(x, y, opt);  // refit on everything with the winner
}

std::vector<double> simulate_narx(const RbfModel& model, NarxOrders ord,
                                  std::span<const double> v, std::span<const double> i_init) {
  const auto h = static_cast<std::size_t>(ord.history());
  if (i_init.size() < h) throw std::invalid_argument("simulate_narx: i_init too short");
  if (v.size() < h) throw std::invalid_argument("simulate_narx: input too short");

  std::vector<double> i(v.size());
  for (std::size_t k = 0; k < h; ++k) i[k] = i_init[k];

  std::vector<double> reg(static_cast<std::size_t>(ord.regressor_size()));
  std::vector<double> v_hist(static_cast<std::size_t>(ord.nv) + 1);
  std::vector<double> i_hist(static_cast<std::size_t>(ord.ni));
  for (std::size_t k = h; k < v.size(); ++k) {
    for (int j = 0; j <= ord.nv; ++j) v_hist[static_cast<std::size_t>(j)] = v[k - static_cast<std::size_t>(j)];
    for (int j = 1; j <= ord.ni; ++j) i_hist[static_cast<std::size_t>(j - 1)] = i[k - static_cast<std::size_t>(j)];
    fill_narx_regressor(v_hist, i_hist, ord, reg);
    i[k] = model.eval(reg);
  }
  return i;
}

}  // namespace emc::ident
