// ARX (AutoRegression with eXtra input) estimation — the linear submodel
// of the paper's receiver model (eq. 2):
//   i(k) = sum_{j=0..nb} b_j v(k-j) + sum_{j=1..na} a_j i(k-j)
#pragma once

#include <span>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::ident {

struct ArxModel {
  std::vector<double> b;  ///< input taps b0..b_nb (b0 multiplies v(k))
  std::vector<double> a;  ///< output feedback taps a1..a_na

  int nb() const { return static_cast<int>(b.size()) - 1; }
  int na() const { return static_cast<int>(a.size()); }
  int history() const { return std::max(nb(), na()); }

  /// One-step prediction from explicit histories (newest first):
  /// v_hist = [v(k), v(k-1), ...], i_hist = [i(k-1), i(k-2), ...].
  double predict(std::span<const double> v_hist, std::span<const double> i_hist) const;

  /// DC gain i/v for a constant input (throws if the AR part is unstable
  /// in the sense of unit-sum feedback).
  double dc_gain() const;
};

/// Least-squares ARX fit from aligned waveforms.
ArxModel fit_arx(const sig::Waveform& v, const sig::Waveform& i, int na, int nb);

/// Free-run simulation over an input sequence; the first history() output
/// samples are taken from i_init (zero-padded if shorter).
std::vector<double> simulate_arx(const ArxModel& m, std::span<const double> v,
                                 std::span<const double> i_init = {});

}  // namespace emc::ident
