// Regressor construction for the parametric port models.
//
// The paper's driver submodels are NARX maps
//   i(k) = F( v(k), v(k-1), ..., v(k-r),  i(k-1), ..., i(k-r) )
// estimated from sampled identification waveforms (v, i). This module
// turns waveform pairs into regression datasets and provides the column
// standardization shared by all estimators.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "signal/waveform.hpp"

namespace emc::ident {

/// Dynamic orders of a NARX regressor.
struct NarxOrders {
  int nv = 2;  ///< voltage taps: v(k) .. v(k-nv)
  int ni = 2;  ///< current feedback taps: i(k-1) .. i(k-ni)

  int regressor_size() const { return nv + 1 + ni; }
  int history() const { return nv > ni ? nv : ni; }
};

struct Dataset {
  linalg::Matrix x;       ///< rows are regressors
  std::vector<double> y;  ///< targets
};

/// Build the NARX dataset from aligned waveforms (same length & grid).
/// Rows start at k = max(nv, ni). Throws on mismatched/too-short inputs.
Dataset build_narx_dataset(const sig::Waveform& v, const sig::Waveform& i, NarxOrders ord);

/// Assemble one NARX regressor in place (used by the free-run simulators
/// and the circuit-coupled devices):
/// x = [v(k), .., v(k-nv), i(k-1), .., i(k-ni)].
/// `v_hist`/`i_hist` hold the newest sample first.
void fill_narx_regressor(std::span<const double> v_hist, std::span<const double> i_hist,
                         NarxOrders ord, std::span<double> out);

/// Column standardization: z = (x - mean) / scale. Constant columns get
/// scale 1 so they pass through unchanged.
class Scaler {
 public:
  Scaler() = default;

  /// Learn mean/scale from the rows of x.
  static Scaler fit(const linalg::Matrix& x);

  void transform_row(std::span<const double> x, std::span<double> out) const;
  linalg::Matrix transform(const linalg::Matrix& x) const;

  std::size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

  /// Construct from explicit parameters (deserialization / testing).
  Scaler(std::vector<double> mean, std::vector<double> scale);

 private:
  std::vector<double> mean_, scale_;
};

}  // namespace emc::ident
