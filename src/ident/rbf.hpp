// Gaussian Radial Basis Function network with Orthogonal Least Squares
// center selection (Chen, Cowan, Grant 1991) — the estimator behind the
// paper's driver submodels i_H / i_L and the receiver clamp submodels.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ident/dataset.hpp"
#include "linalg/matrix.hpp"

namespace emc::ident {

/// y(x) = w0 + sum_j w_j * exp(-||z - c_j||^2 / (2 sigma^2)),
/// where z is the standardized input (see Scaler).
class RbfModel {
 public:
  RbfModel() = default;
  RbfModel(Scaler scaler, linalg::Matrix centers, std::vector<double> weights, double bias,
           double sigma);

  /// Model output for a raw (unscaled) input vector.
  double eval(std::span<const double> x) const;

  /// Output and the partial derivative d y / d x[idx] (raw input space);
  /// needed by the circuit coupling, where Newton requires d i / d v(k).
  double eval_with_grad(std::span<const double> x, std::size_t idx, double* grad) const;

  std::size_t num_basis() const { return weights_.size(); }
  std::size_t input_dim() const { return scaler_.dim(); }
  bool empty() const { return weights_.empty() && bias_ == 0.0; }

  const Scaler& scaler() const { return scaler_; }
  const linalg::Matrix& centers() const { return centers_; }  ///< scaled space
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  double sigma() const { return sigma_; }

 private:
  Scaler scaler_;
  linalg::Matrix centers_;       // rows are centers in scaled space
  std::vector<double> weights_;  // one per center
  double bias_ = 0.0;
  double sigma_ = 1.0;
};

struct RbfFitOptions {
  int max_basis = 12;        ///< basis functions to select (paper: 6..15)
  double sigma = 1.5;        ///< kernel width in standardized space
  int max_candidates = 400;  ///< candidate centers (subsampled training rows)
  double ridge = 1e-8;       ///< Tikhonov term of the final weight solve
  double min_err_reduction = 1e-7;  ///< OLS stop threshold (relative)
  std::uint64_t seed = 1;    ///< candidate subsampling seed
};

/// Fit with fixed kernel width.
RbfModel fit_rbf_ols(const linalg::Matrix& x, std::span<const double> y,
                     const RbfFitOptions& opt);

/// The OLS greedy selection is nested: the first j selected centers of a
/// larger fit are exactly the j-basis fit. OlsPath captures one selection
/// run so models of several sizes can be re-solved cheaply (weights are a
/// small ridge solve per prefix) — used for free-run-scored model-order
/// selection by the macromodel estimators.
class OlsPath {
 public:
  OlsPath(const linalg::Matrix& x, std::span<const double> y, const RbfFitOptions& opt);

  /// Model using the first `n_basis` selected centers (clipped to the
  /// number actually selected).
  RbfModel model(std::size_t n_basis) const;

  std::size_t selected() const { return order_.size(); }
  double sigma() const { return sigma_; }

 private:
  Scaler scaler_;
  linalg::Matrix z_;  // standardized training rows
  std::vector<double> y_;
  std::vector<std::size_t> order_;  // selected row indices, in pick order
  double sigma_;
  double ridge_;
};

/// Grid search over (sigma, basis count), scoring each candidate model
/// with `score` (lower is better, e.g. free-run validation error).
RbfModel fit_rbf_best(const linalg::Matrix& x, std::span<const double> y,
                      const RbfFitOptions& base, std::span<const double> sigma_grid,
                      std::span<const int> basis_grid,
                      const std::function<double(const RbfModel&)>& score);

/// Fit trying several kernel widths, keeping the best one-step-ahead
/// validation error on the last quarter of the data.
RbfModel fit_rbf_auto(const linalg::Matrix& x, std::span<const double> y, RbfFitOptions opt,
                      std::span<const double> sigma_grid = {});

/// Free-run (simulation-mode) NARX response: feeds model predictions back
/// into the current taps. `v` is the full input sequence, `i_init` holds
/// ord.history() initial current samples (i[0..h-1]); the returned vector
/// has the same length as v with i_init copied in front.
std::vector<double> simulate_narx(const RbfModel& model, NarxOrders ord,
                                  std::span<const double> v, std::span<const double> i_init);

}  // namespace emc::ident
