#include "ident/arx.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"

namespace emc::ident {

double ArxModel::predict(std::span<const double> v_hist,
                         std::span<const double> i_hist) const {
  if (v_hist.size() < b.size() || i_hist.size() < a.size())
    throw std::invalid_argument("ArxModel::predict: history too short");
  double y = 0.0;
  for (std::size_t j = 0; j < b.size(); ++j) y += b[j] * v_hist[j];
  for (std::size_t j = 0; j < a.size(); ++j) y += a[j] * i_hist[j];
  return y;
}

double ArxModel::dc_gain() const {
  double asum = 0.0;
  for (double aj : a) asum += aj;
  double bsum = 0.0;
  for (double bj : b) bsum += bj;
  const double den = 1.0 - asum;
  if (std::abs(den) < 1e-12) throw std::runtime_error("ArxModel::dc_gain: marginal AR part");
  return bsum / den;
}

ArxModel fit_arx(const sig::Waveform& v, const sig::Waveform& i, int na, int nb) {
  if (v.size() != i.size()) throw std::invalid_argument("fit_arx: waveform length mismatch");
  if (na < 0 || nb < 0) throw std::invalid_argument("fit_arx: negative order");
  const int h = std::max(na, nb);
  if (static_cast<int>(v.size()) <= h + 2)
    throw std::invalid_argument("fit_arx: record too short");

  const std::size_t n_rows = v.size() - static_cast<std::size_t>(h);
  const std::size_t n_cols = static_cast<std::size_t>(nb + 1 + na);
  linalg::Matrix x(n_rows, n_cols);
  std::vector<double> y(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::size_t k = r + static_cast<std::size_t>(h);
    std::size_t c = 0;
    for (int j = 0; j <= nb; ++j) x(r, c++) = v[k - static_cast<std::size_t>(j)];
    for (int j = 1; j <= na; ++j) x(r, c++) = i[k - static_cast<std::size_t>(j)];
    y[r] = i[k];
  }

  const auto theta = linalg::solve_ridge(x, y, 1e-12);
  ArxModel m;
  m.b.assign(theta.begin(), theta.begin() + nb + 1);
  m.a.assign(theta.begin() + nb + 1, theta.end());
  return m;
}

std::vector<double> simulate_arx(const ArxModel& m, std::span<const double> v,
                                 std::span<const double> i_init) {
  const auto h = static_cast<std::size_t>(m.history());
  std::vector<double> i(v.size(), 0.0);
  for (std::size_t k = 0; k < h && k < i.size(); ++k)
    i[k] = k < i_init.size() ? i_init[k] : 0.0;

  std::vector<double> v_hist(m.b.size());
  std::vector<double> i_hist(m.a.size());
  for (std::size_t k = h; k < v.size(); ++k) {
    for (std::size_t j = 0; j < m.b.size(); ++j)
      v_hist[j] = (k >= j) ? v[k - j] : v[0];
    for (std::size_t j = 0; j < m.a.size(); ++j) i_hist[j] = i[k - 1 - j];
    i[k] = m.predict(v_hist, i_hist);
  }
  return i;
}

}  // namespace emc::ident
