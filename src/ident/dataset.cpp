#include "ident/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace emc::ident {

Dataset build_narx_dataset(const sig::Waveform& v, const sig::Waveform& i, NarxOrders ord) {
  if (v.size() != i.size())
    throw std::invalid_argument("build_narx_dataset: waveform length mismatch");
  const int h = ord.history();
  if (static_cast<int>(v.size()) <= h + 1)
    throw std::invalid_argument("build_narx_dataset: record too short for the orders");

  const std::size_t n_rows = v.size() - static_cast<std::size_t>(h);
  const auto n_cols = static_cast<std::size_t>(ord.regressor_size());
  Dataset ds;
  ds.x = linalg::Matrix(n_rows, n_cols);
  ds.y.resize(n_rows);

  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::size_t k = r + static_cast<std::size_t>(h);
    std::size_t c = 0;
    for (int j = 0; j <= ord.nv; ++j) ds.x(r, c++) = v[k - static_cast<std::size_t>(j)];
    for (int j = 1; j <= ord.ni; ++j) ds.x(r, c++) = i[k - static_cast<std::size_t>(j)];
    ds.y[r] = i[k];
  }
  return ds;
}

void fill_narx_regressor(std::span<const double> v_hist, std::span<const double> i_hist,
                         NarxOrders ord, std::span<double> out) {
  if (out.size() != static_cast<std::size_t>(ord.regressor_size()))
    throw std::invalid_argument("fill_narx_regressor: bad output size");
  if (v_hist.size() < static_cast<std::size_t>(ord.nv + 1) ||
      i_hist.size() < static_cast<std::size_t>(ord.ni))
    throw std::invalid_argument("fill_narx_regressor: history too short");
  std::size_t c = 0;
  for (int j = 0; j <= ord.nv; ++j) out[c++] = v_hist[static_cast<std::size_t>(j)];
  for (int j = 0; j < ord.ni; ++j) out[c++] = i_hist[static_cast<std::size_t>(j)];
}

Scaler Scaler::fit(const linalg::Matrix& x) {
  const std::size_t n = x.rows(), d = x.cols();
  if (n == 0) throw std::invalid_argument("Scaler::fit: empty data");
  Scaler s;
  s.mean_.assign(d, 0.0);
  s.scale_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) s.mean_[c] += x(r, c);
  for (auto& m : s.mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = x(r, c) - s.mean_[c];
      s.scale_[c] += dlt * dlt;
    }
  for (auto& v : s.scale_) {
    v = std::sqrt(v / static_cast<double>(n));
    if (v < 1e-12) v = 1.0;  // constant column: pass through
  }
  return s;
}

Scaler::Scaler(std::vector<double> mean, std::vector<double> scale)
    : mean_(std::move(mean)), scale_(std::move(scale)) {
  if (mean_.size() != scale_.size())
    throw std::invalid_argument("Scaler: mean/scale size mismatch");
}

void Scaler::transform_row(std::span<const double> x, std::span<double> out) const {
  if (x.size() != mean_.size() || out.size() != mean_.size())
    throw std::invalid_argument("Scaler::transform_row: size mismatch");
  for (std::size_t c = 0; c < mean_.size(); ++c) out[c] = (x[c] - mean_[c]) / scale_[c];
}

linalg::Matrix Scaler::transform(const linalg::Matrix& x) const {
  linalg::Matrix z(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) transform_row(x.row(r), z.row(r));
  return z;
}

}  // namespace emc::ident
