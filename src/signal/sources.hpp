// Time-domain stimulus builders: piecewise-linear sources, trapezoidal
// pulses, digital bit streams, and the multilevel identification signals
// used to estimate the parametric macromodels.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace emc::sig {

/// Piecewise-linear time function defined by (t, y) breakpoints.
/// Constant extrapolation outside the breakpoint range.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(std::vector<std::pair<double, double>> points);

  double operator()(double t) const;

  /// Append a breakpoint; times must be non-decreasing.
  void add(double t, double y);

  const std::vector<std::pair<double, double>>& points() const { return pts_; }

 private:
  std::vector<std::pair<double, double>> pts_;
};

/// Single trapezoidal pulse: base level outside
/// [t_delay, t_delay + rise + width + fall], `amplitude` on the flat top.
Pwl trapezoid(double base, double amplitude, double t_delay, double t_rise, double t_width,
              double t_fall);

/// Digital bit stream, e.g. "010110". Each bit lasts `bit_time`; edges are
/// linear ramps of `t_edge`. Levels are v_low / v_high. The first bit level
/// holds from t = 0 (any leading edge from an implicit previous bit equal
/// to the first bit is omitted).
Pwl bit_stream(const std::string& bits, double bit_time, double t_edge, double v_low,
               double v_high);

/// Deterministic 64-bit LCG (reproducible across platforms), used by the
/// identification-signal designers.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform integer in [0, n).
  std::uint32_t below(std::uint32_t n);

 private:
  std::uint64_t state_;
};

/// Multilevel identification signal: a staircase of `n_steps` random levels
/// in [v_min, v_max], each held for `t_hold` with linear transitions of
/// `t_edge`. This is the "multilevel voltage waveform" of the paper used to
/// excite the static and dynamic nonlinearities of a port.
Pwl multilevel_signal(double v_min, double v_max, int n_levels, int n_steps, double t_hold,
                      double t_edge, std::uint64_t seed);

/// Staircase spanning [v_min, v_max] in `n_steps` equal increments (the
/// "few steps spanning the supply range" used for ARX estimation).
Pwl staircase(double v_min, double v_max, int n_steps, double t_hold, double t_edge);

}  // namespace emc::sig
