// Uniformly sampled waveform: the exchange format between the circuit
// simulator, the identification algorithms and the validation metrics.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace emc::sig {

/// A uniformly sampled real-valued signal y(t0 + k*dt), k = 0..n-1.
class Waveform {
 public:
  Waveform() = default;
  Waveform(double t0, double dt, std::vector<double> samples);

  /// Sample a time function on a uniform grid [t0, t0 + n*dt).
  static Waveform sample(const std::function<double(double)>& f, double t0, double dt,
                         std::size_t n);

  double t0() const { return t0_; }
  double dt() const { return dt_; }
  std::size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }
  double t_end() const { return t0_ + (y_.empty() ? 0.0 : dt_ * static_cast<double>(y_.size() - 1)); }

  double operator[](std::size_t k) const { return y_[k]; }
  double& operator[](std::size_t k) { return y_[k]; }
  const std::vector<double>& samples() const { return y_; }
  std::vector<double>& samples() { return y_; }
  double time_at(std::size_t k) const { return t0_ + dt_ * static_cast<double>(k); }

  /// Linear interpolation; clamps outside the record.
  double value_at(double t) const;

  /// Resample onto a new uniform grid (linear interpolation, clamped).
  Waveform resampled(double t0, double dt, std::size_t n) const;

  /// Extract samples [first, first+count) as a new waveform.
  Waveform slice(std::size_t first, std::size_t count) const;

  Waveform& operator+=(const Waveform& other);
  Waveform& operator-=(const Waveform& other);
  Waveform& operator*=(double s);
  friend Waveform operator-(Waveform a, const Waveform& b) { return a -= b; }
  friend Waveform operator+(Waveform a, const Waveform& b) { return a += b; }
  friend Waveform operator*(Waveform a, double s) { return a *= s; }

  double min_value() const;
  double max_value() const;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> y_;
};

}  // namespace emc::sig
