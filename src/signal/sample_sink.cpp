#include "signal/sample_sink.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace emc::sig {

// ------------------------------------------------------------ RecordingSink

void RecordingSink::begin(const StreamInfo& info) {
  SampleSink::begin(info);
  data_.clear();
  if (info.total_frames > 0 && info.channels > 0) {
    const std::size_t last = std::min(info.total_frames,
                                      max_ == static_cast<std::size_t>(-1)
                                          ? info.total_frames
                                          : first_ + max_);
    if (last > first_) data_.reserve((last - first_) * info.channels);
  }
}

void RecordingSink::consume(const SampleChunk& chunk) {
  // Intersect [chunk.first_frame, +frames) with the window [first_, first_+max_).
  const std::size_t win_end =
      max_ == static_cast<std::size_t>(-1) ? static_cast<std::size_t>(-1) : first_ + max_;
  const std::size_t lo = std::max(chunk.first_frame, first_);
  const std::size_t hi = std::min(chunk.first_frame + chunk.frames, win_end);
  if (lo >= hi || chunk.channels == 0) return;
  const double* src = chunk.data + (lo - chunk.first_frame) * chunk.channels;
  data_.insert(data_.end(), src, src + (hi - lo) * chunk.channels);
  static const obs::Gauge g_bytes("sig.record.bytes_peak");
  g_bytes.set_max(data_.capacity() * sizeof(double));
}

Waveform RecordingSink::waveform(std::size_t channel) const {
  const std::size_t nch = channels();
  if (channel >= nch) throw std::out_of_range("RecordingSink::waveform: bad channel");
  const std::size_t n = frames();
  std::vector<double> y(n);
  for (std::size_t f = 0; f < n; ++f) y[f] = data_[f * nch + channel];
  const double t0 = info().t0 + info().dt * static_cast<double>(first_);
  return Waveform(t0, info().dt, std::move(y));
}

// ----------------------------------------------------------- DecimatingSink

DecimatingSink::DecimatingSink(std::size_t factor, SampleSink& inner)
    : factor_(factor), inner_(inner) {
  if (factor_ == 0) throw std::invalid_argument("DecimatingSink: factor must be >= 1");
}

void DecimatingSink::begin(const StreamInfo& info) {
  SampleSink::begin(info);
  StreamInfo out = info;
  out.dt = info.dt * static_cast<double>(factor_);
  out.total_frames =
      info.total_frames == 0 ? 0 : (info.total_frames + factor_ - 1) / factor_;
  buf_.assign(buf_capacity_ * info.channels, 0.0);
  buf_frames_ = 0;
  out_first_ = 0;
  inner_.begin(out);
}

void DecimatingSink::flush() {
  if (buf_frames_ == 0) return;
  SampleChunk c;
  c.first_frame = out_first_;
  c.frames = buf_frames_;
  c.channels = info().channels;
  c.data = buf_.data();
  inner_.consume(c);
  out_first_ += buf_frames_;
  buf_frames_ = 0;
}

void DecimatingSink::consume(const SampleChunk& chunk) {
  const std::size_t nch = chunk.channels;
  // First kept frame at or after chunk.first_frame.
  std::size_t g = ((chunk.first_frame + factor_ - 1) / factor_) * factor_;
  for (; g < chunk.first_frame + chunk.frames; g += factor_) {
    const double* src = chunk.data + (g - chunk.first_frame) * nch;
    std::copy(src, src + nch, buf_.data() + buf_frames_ * nch);
    if (++buf_frames_ == buf_capacity_) flush();
  }
}

void DecimatingSink::finish() {
  flush();
  inner_.finish();
}

// ----------------------------------------------------------- ChannelTapSink

ChannelTapSink::ChannelTapSink(std::size_t channel, Consumer consumer)
    : channel_(channel), consumer_(std::move(consumer)) {
  if (!consumer_) throw std::invalid_argument("ChannelTapSink: null consumer");
}

void ChannelTapSink::begin(const StreamInfo& info) {
  SampleSink::begin(info);
  if (channel_ >= info.channels)
    throw std::invalid_argument("ChannelTapSink: channel out of range");
}

void ChannelTapSink::consume(const SampleChunk& chunk) {
  buf_.resize(chunk.frames);
  for (std::size_t f = 0; f < chunk.frames; ++f)
    buf_[f] = chunk.data[f * chunk.channels + channel_];
  consumer_(buf_);
}

}  // namespace emc::sig
