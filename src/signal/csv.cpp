#include "signal/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace emc::sig {

namespace {

/// Flush and verify the stream; throws so a failed write (disk full,
/// permission lost mid-stream) can never yield a silently truncated file.
void check_stream(std::ofstream& os, const std::string& what, const std::string& path) {
  os.flush();
  if (!os) throw std::runtime_error(what + ": write failed for " + path);
}

}  // namespace

void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<Waveform>& columns) {
  if (names.size() != columns.size())
    throw std::invalid_argument("write_csv: names/columns size mismatch");
  if (columns.empty()) throw std::invalid_argument("write_csv: no columns");

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);

  os << "time";
  for (const auto& n : names) os << ',' << n;
  os << '\n';

  const Waveform& grid = columns.front();
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const double t = grid.time_at(k);
    os << t;
    for (const auto& w : columns) os << ',' << w.value_at(t);
    os << '\n';
  }
  check_stream(os, "write_csv", path);
}

void write_spectrum_csv(const std::string& path, const std::vector<std::string>& names,
                        const std::vector<double>& freq,
                        const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size())
    throw std::invalid_argument("write_spectrum_csv: names/columns size mismatch");
  if (columns.empty()) throw std::invalid_argument("write_spectrum_csv: no columns");
  for (const auto& c : columns)
    if (c.size() != freq.size())
      throw std::invalid_argument("write_spectrum_csv: column length != freq length");

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_spectrum_csv: cannot open " + path);

  os << "freq_hz";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  for (std::size_t k = 0; k < freq.size(); ++k) {
    os << freq[k];
    for (const auto& c : columns) os << ',' << c[k];
    os << '\n';
  }
  check_stream(os, "write_spectrum_csv", path);
}

// ------------------------------------------------------------ CsvStreamSink

namespace {
constexpr std::size_t kFlushBytes = 64 * 1024;
}

CsvStreamSink::CsvStreamSink(std::string path, std::vector<std::string> names)
    : path_(std::move(path)), names_(std::move(names)) {
  if (names_.empty()) throw std::invalid_argument("CsvStreamSink: no columns");
}

void CsvStreamSink::begin(const StreamInfo& info) {
  SampleSink::begin(info);
  if (names_.size() != info.channels)
    throw std::invalid_argument("CsvStreamSink: names/channels size mismatch");

  const std::filesystem::path p(path_);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  os_.open(path_, std::ios::trunc);
  if (!os_) throw std::runtime_error("CsvStreamSink: cannot open " + path_);

  rows_ = 0;
  buf_.clear();
  buf_.reserve(kFlushBytes + 4096);
  buf_ += "time";
  for (const auto& n : names_) {
    buf_.push_back(',');
    buf_ += n;
  }
  buf_.push_back('\n');
}

void CsvStreamSink::flush() {
  if (buf_.empty()) return;
  os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  check_stream(os_, "CsvStreamSink", path_);
  buf_.clear();
}

void CsvStreamSink::consume(const SampleChunk& chunk) {
  char num[32];
  for (std::size_t f = 0; f < chunk.frames; ++f) {
    const double t =
        info().t0 + info().dt * static_cast<double>(chunk.first_frame + f);
    std::snprintf(num, sizeof num, "%.9g", t);
    buf_ += num;
    for (std::size_t c = 0; c < chunk.channels; ++c) {
      std::snprintf(num, sizeof num, ",%.9g", chunk.value(f, c));
      buf_ += num;
    }
    buf_.push_back('\n');
    ++rows_;
    if (buf_.size() >= kFlushBytes) flush();
  }
}

void CsvStreamSink::finish() {
  flush();
  os_.close();
  if (os_.fail()) throw std::runtime_error("CsvStreamSink: close failed for " + path_);
}

}  // namespace emc::sig
