#include "signal/csv.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace emc::sig {

void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<Waveform>& columns) {
  if (names.size() != columns.size())
    throw std::invalid_argument("write_csv: names/columns size mismatch");
  if (columns.empty()) throw std::invalid_argument("write_csv: no columns");

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);

  os << "time";
  for (const auto& n : names) os << ',' << n;
  os << '\n';

  const Waveform& grid = columns.front();
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const double t = grid.time_at(k);
    os << t;
    for (const auto& w : columns) os << ',' << w.value_at(t);
    os << '\n';
  }
}

void write_spectrum_csv(const std::string& path, const std::vector<std::string>& names,
                        const std::vector<double>& freq,
                        const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size())
    throw std::invalid_argument("write_spectrum_csv: names/columns size mismatch");
  if (columns.empty()) throw std::invalid_argument("write_spectrum_csv: no columns");
  for (const auto& c : columns)
    if (c.size() != freq.size())
      throw std::invalid_argument("write_spectrum_csv: column length != freq length");

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_spectrum_csv: cannot open " + path);

  os << "freq_hz";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  for (std::size_t k = 0; k < freq.size(); ++k) {
    os << freq[k];
    for (const auto& c : columns) os << ',' << c[k];
    os << '\n';
  }
}

}  // namespace emc::sig
