// Minimal CSV writer for benchmark/experiment series output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "signal/sample_sink.hpp"
#include "signal/waveform.hpp"

namespace emc::sig {

/// Write aligned waveform columns to a CSV file with a header row:
/// time,<name0>,<name1>,... All waveforms are interpolated onto the grid of
/// the first one. Creates parent directories if missing.
/// Throws std::runtime_error if the file cannot be opened OR if any write
/// fails (disk full, pipe closed): a truncated file is never reported as
/// success.
void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<Waveform>& columns);

/// Write spectral columns to a CSV file with a header row:
/// freq_hz,<name0>,<name1>,... All columns must have the same length as
/// `freq` (values in whatever unit the producer used, typically dBuV).
/// Creates parent directories if missing. Throws std::runtime_error if the
/// file cannot be opened or any write fails (no silent truncation).
void write_spectrum_csv(const std::string& path, const std::vector<std::string>& names,
                        const std::vector<double>& freq,
                        const std::vector<std::vector<double>>& columns);

/// Buffered streaming CSV export: a SampleSink writing one
/// time,<name0>,<name1>,... row per frame as chunks arrive, so arbitrarily
/// long streamed records land on disk through O(buffer) memory. Rows are
/// formatted into an in-memory buffer flushed at ~64 KiB; stream state is
/// checked on every flush and a failed write throws std::runtime_error
/// (the producer then abandons the stream — no silently truncated files).
/// The file is opened in begin() and is complete only after finish().
class CsvStreamSink final : public SampleSink {
 public:
  /// `names` must match the stream's channel count at begin().
  CsvStreamSink(std::string path, std::vector<std::string> names);

  void begin(const StreamInfo& info) override;
  void consume(const SampleChunk& chunk) override;
  void finish() override;

  std::size_t rows_written() const { return rows_; }

 private:
  void flush();

  std::string path_;
  std::vector<std::string> names_;
  std::ofstream os_;
  std::string buf_;
  std::size_t rows_ = 0;
};

}  // namespace emc::sig
