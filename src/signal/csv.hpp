// Minimal CSV writer for benchmark/experiment series output.
#pragma once

#include <string>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::sig {

/// Write aligned waveform columns to a CSV file with a header row:
/// time,<name0>,<name1>,... All waveforms are interpolated onto the grid of
/// the first one. Creates parent directories if missing.
/// Throws std::runtime_error if the file cannot be opened.
void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<Waveform>& columns);

}  // namespace emc::sig
