// Minimal CSV writer for benchmark/experiment series output.
#pragma once

#include <string>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::sig {

/// Write aligned waveform columns to a CSV file with a header row:
/// time,<name0>,<name1>,... All waveforms are interpolated onto the grid of
/// the first one. Creates parent directories if missing.
/// Throws std::runtime_error if the file cannot be opened.
void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<Waveform>& columns);

/// Write spectral columns to a CSV file with a header row:
/// freq_hz,<name0>,<name1>,... All columns must have the same length as
/// `freq` (values in whatever unit the producer used, typically dBuV).
/// Creates parent directories if missing. Throws std::runtime_error if the
/// file cannot be opened.
void write_spectrum_csv(const std::string& path, const std::vector<std::string>& names,
                        const std::vector<double>& freq,
                        const std::vector<std::vector<double>>& columns);

}  // namespace emc::sig
