#include "signal/sources.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::sig {

Pwl::Pwl(std::vector<std::pair<double, double>> points) : pts_(std::move(points)) {
  for (std::size_t i = 1; i < pts_.size(); ++i)
    if (pts_[i].first < pts_[i - 1].first)
      throw std::invalid_argument("Pwl: breakpoints must be time-ordered");
}

void Pwl::add(double t, double y) {
  if (!pts_.empty() && t < pts_.back().first)
    throw std::invalid_argument("Pwl::add: breakpoints must be time-ordered");
  pts_.emplace_back(t, y);
}

double Pwl::operator()(double t) const {
  if (pts_.empty()) return 0.0;
  if (t <= pts_.front().first) return pts_.front().second;
  if (t >= pts_.back().first) return pts_.back().second;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(pts_.begin(), pts_.end(), t,
                             [](double tv, const auto& p) { return tv < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  if (span <= 0.0) return hi.second;
  const double frac = (t - lo.first) / span;
  return lo.second + frac * (hi.second - lo.second);
}

Pwl trapezoid(double base, double amplitude, double t_delay, double t_rise, double t_width,
              double t_fall) {
  Pwl p;
  p.add(0.0, base);
  p.add(t_delay, base);
  p.add(t_delay + t_rise, amplitude);
  p.add(t_delay + t_rise + t_width, amplitude);
  p.add(t_delay + t_rise + t_width + t_fall, base);
  return p;
}

Pwl bit_stream(const std::string& bits, double bit_time, double t_edge, double v_low,
               double v_high) {
  if (bits.empty()) throw std::invalid_argument("bit_stream: empty pattern");
  auto level = [&](char c) {
    if (c == '0') return v_low;
    if (c == '1') return v_high;
    throw std::invalid_argument("bit_stream: pattern must contain only 0/1");
  };
  Pwl p;
  p.add(0.0, level(bits[0]));
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] == bits[i - 1]) continue;
    const double t = static_cast<double>(i) * bit_time;
    p.add(t, level(bits[i - 1]));
    p.add(t + t_edge, level(bits[i]));
  }
  return p;
}

double Lcg::uniform() {
  // Numerical Recipes 64-bit LCG constants.
  state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>(state_ >> 11) * (1.0 / 9007199254740992.0);
}

std::uint32_t Lcg::below(std::uint32_t n) {
  return static_cast<std::uint32_t>(uniform() * n) % n;
}

Pwl multilevel_signal(double v_min, double v_max, int n_levels, int n_steps, double t_hold,
                      double t_edge, std::uint64_t seed) {
  if (n_levels < 2) throw std::invalid_argument("multilevel_signal: need >= 2 levels");
  if (n_steps < 1) throw std::invalid_argument("multilevel_signal: need >= 1 steps");
  Lcg rng(seed);
  Pwl p;
  double t = 0.0;
  double level = v_min;
  p.add(t, level);
  for (int k = 0; k < n_steps; ++k) {
    // Pick a level different from the current one so every step excites
    // the port dynamics.
    double next = level;
    for (int guard = 0; guard < 16 && next == level; ++guard) {
      const auto idx = rng.below(static_cast<std::uint32_t>(n_levels));
      next = v_min + (v_max - v_min) * static_cast<double>(idx) /
                         static_cast<double>(n_levels - 1);
    }
    t += t_hold;
    p.add(t, level);
    t += t_edge;
    p.add(t, next);
    level = next;
  }
  t += t_hold;
  p.add(t, level);
  return p;
}

Pwl staircase(double v_min, double v_max, int n_steps, double t_hold, double t_edge) {
  if (n_steps < 1) throw std::invalid_argument("staircase: need >= 1 steps");
  Pwl p;
  double t = 0.0;
  double level = v_min;
  p.add(t, level);
  for (int k = 1; k <= n_steps; ++k) {
    const double next = v_min + (v_max - v_min) * static_cast<double>(k) /
                                    static_cast<double>(n_steps);
    t += t_hold;
    p.add(t, level);
    t += t_edge;
    p.add(t, next);
    level = next;
  }
  t += t_hold;
  p.add(t, level);
  return p;
}

}  // namespace emc::sig
