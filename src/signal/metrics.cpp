#include "signal/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::sig {

double rms_error(const Waveform& a, const Waveform& b) {
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b.value_at(a.time_at(k));
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double max_error(const Waveform& a, const Waveform& b) {
  double m = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k)
    m = std::max(m, std::abs(a[k] - b.value_at(a.time_at(k))));
  return m;
}

double rms(const Waveform& a) {
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) acc += a[k] * a[k];
  return std::sqrt(acc / static_cast<double>(a.size()));
}

std::vector<double> threshold_crossings(const Waveform& w, double threshold,
                                        double min_separation) {
  std::vector<double> out;
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double y0 = w[k - 1] - threshold;
    const double y1 = w[k] - threshold;
    if (y0 == 0.0) {
      // Touching exactly: count it once at the sample time.
      if (out.empty() || w.time_at(k - 1) - out.back() > min_separation)
        out.push_back(w.time_at(k - 1));
      continue;
    }
    if (y0 * y1 < 0.0) {
      const double frac = y0 / (y0 - y1);
      const double t = w.time_at(k - 1) + frac * w.dt();
      if (out.empty() || t - out.back() > min_separation) out.push_back(t);
    }
  }
  return out;
}

std::vector<double> threshold_crossings_hysteresis(const Waveform& w, double threshold,
                                                   double hysteresis) {
  std::vector<double> out;
  if (w.empty()) return out;
  // Armed state: +1 after settling above threshold+h, -1 after settling
  // below threshold-h, 0 before the first settling.
  int state = 0;
  if (w[0] > threshold + hysteresis) state = 1;
  if (w[0] < threshold - hysteresis) state = -1;
  double pending = -1.0;  // interpolated threshold crossing awaiting confirmation
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double y0 = w[k - 1] - threshold;
    const double y1 = w[k] - threshold;
    if (y0 * y1 < 0.0) {
      const double frac = y0 / (y0 - y1);
      pending = w.time_at(k - 1) + frac * w.dt();
    }
    if (w[k] > threshold + hysteresis && state != 1) {
      if (state == -1 && pending >= 0.0) out.push_back(pending);
      state = 1;
    } else if (w[k] < threshold - hysteresis && state != -1) {
      if (state == 1 && pending >= 0.0) out.push_back(pending);
      state = -1;
    }
  }
  return out;
}

std::optional<double> timing_error(const Waveform& reference, const Waveform& model,
                                   double threshold, double min_separation,
                                   double hysteresis) {
  const auto cr = hysteresis > 0.0
                      ? threshold_crossings_hysteresis(reference, threshold, hysteresis)
                      : threshold_crossings(reference, threshold, min_separation);
  const auto cm = hysteresis > 0.0
                      ? threshold_crossings_hysteresis(model, threshold, hysteresis)
                      : threshold_crossings(model, threshold, min_separation);
  if (cr.empty() || cm.empty()) return std::nullopt;

  // Match each reference crossing to the nearest model crossing. This is
  // robust to a model producing a spurious extra crossing from ringing.
  double worst = 0.0;
  for (double t : cr) {
    double best = std::numeric_limits<double>::infinity();
    for (double u : cm) best = std::min(best, std::abs(u - t));
    worst = std::max(worst, best);
  }
  return worst;
}

std::optional<double> edge_timing_error(const Waveform& reference, const Waveform& model,
                                        double threshold, double hysteresis,
                                        double min_slew_fraction) {
  const auto cr = threshold_crossings_hysteresis(reference, threshold, hysteresis);
  const auto cm = threshold_crossings_hysteresis(model, threshold, hysteresis);
  if (cr.empty() || cm.empty()) return std::nullopt;

  double peak_slew = 0.0;
  for (std::size_t k = 1; k < reference.size(); ++k)
    peak_slew = std::max(peak_slew, std::abs(reference[k] - reference[k - 1]));
  peak_slew /= reference.dt();
  const double min_slew = min_slew_fraction * peak_slew;

  double worst = 0.0;
  bool any = false;
  for (double t : cr) {
    // Local slew of the reference at this crossing.
    const auto k = static_cast<std::size_t>((t - reference.t0()) / reference.dt());
    if (k + 1 >= reference.size()) continue;
    const double slew = std::abs(reference[k + 1] - reference[k]) / reference.dt();
    if (slew < min_slew) continue;
    any = true;
    double best = std::numeric_limits<double>::infinity();
    for (double u : cm) best = std::min(best, std::abs(u - t));
    worst = std::max(worst, best);
  }
  if (!any) return std::nullopt;
  return worst;
}

}  // namespace emc::sig
