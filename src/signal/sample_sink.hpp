// Streaming sample sinks: the consumer side of the chunked transient
// pipeline. A producer (ckt::run_transient_streamed, a file reader, a
// test) pushes fixed-size chunks of frame-major samples through a
// SampleSink instead of materializing the whole record, so downstream
// consumers (Welch accumulation, segmented EMI detection, CSV export)
// see O(chunk) memory regardless of record length.
//
// Protocol: begin(info) once, consume(chunk) zero or more times with
// strictly increasing, gap-free frame ranges, finish() once after the
// last chunk. Sinks may throw from any callback; the producer lets the
// exception propagate (a half-streamed record is abandoned, never
// silently truncated).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::sig {

/// Stream geometry, announced once before the first chunk.
struct StreamInfo {
  double t0 = 0.0;              ///< time of frame 0
  double dt = 1.0;              ///< frame spacing [s]
  std::size_t channels = 0;     ///< samples per frame
  std::size_t total_frames = 0; ///< expected frame count; 0 = unknown/open-ended
};

/// One chunk of frame-major samples: frame f, channel c lives at
/// data[f * channels + c]. The pointer is only valid during consume();
/// sinks that need the samples later must copy them.
struct SampleChunk {
  std::size_t first_frame = 0;  ///< global index of frame 0 of this chunk
  std::size_t frames = 0;
  std::size_t channels = 0;
  const double* data = nullptr;

  std::span<const double> frame(std::size_t f) const {
    return {data + f * channels, channels};
  }
  double value(std::size_t f, std::size_t c) const { return data[f * channels + c]; }
};

/// Abstract chunk consumer. Overriders of begin() must call the base
/// (it captures the StreamInfo that info() exposes to the subclass).
class SampleSink {
 public:
  virtual ~SampleSink() = default;

  /// Announce the stream geometry; called exactly once, before any chunk.
  virtual void begin(const StreamInfo& info) { info_ = info; }

  /// Deliver the next chunk (frames contiguous with the previous one).
  virtual void consume(const SampleChunk& chunk) = 0;

  /// The stream completed normally. Not called when the producer aborts
  /// on an exception, so buffered sinks flush here, not in destructors.
  virtual void finish() {}

  const StreamInfo& info() const { return info_; }

 private:
  StreamInfo info_{};
};

/// Discards every sample; measures the pure production cost of a stream
/// (the bench baseline for "what does materializing the record add").
class NullSink final : public SampleSink {
 public:
  void consume(const SampleChunk& chunk) override { frames_ += chunk.frames; }
  std::size_t frames_seen() const { return frames_; }

 private:
  std::size_t frames_ = 0;
};

/// Records a window [first_frame, first_frame + max_frames) of the stream
/// into one contiguous frame-major buffer — the bridge from the streamed
/// path back to whole-record consumers. Recording everything (the
/// defaults) reproduces the legacy full-record semantics.
class RecordingSink final : public SampleSink {
 public:
  explicit RecordingSink(std::size_t first_frame = 0,
                         std::size_t max_frames = static_cast<std::size_t>(-1))
      : first_(first_frame), max_(max_frames) {}

  void begin(const StreamInfo& info) override;
  void consume(const SampleChunk& chunk) override;

  /// Frames actually captured (the stream may end before the window does).
  std::size_t frames() const { return channels() ? data_.size() / channels() : 0; }
  std::size_t channels() const { return info().channels; }
  double value(std::size_t frame, std::size_t channel) const {
    return data_[frame * channels() + channel];
  }

  /// Waveform of one recorded channel; t0 reflects the window start.
  Waveform waveform(std::size_t channel) const;

  /// The flat frame-major buffer (frames() x channels()).
  const std::vector<double>& data() const { return data_; }
  std::vector<double> take_data() && { return std::move(data_); }

 private:
  std::size_t first_;
  std::size_t max_;
  std::vector<double> data_;
};

/// Forwards every `factor`-th frame (global frame index % factor == 0) to
/// an inner sink, rescaling dt. Plain decimation — callers band-limiting
/// the signal first get an anti-aliased stream, callers probing slow nodes
/// get cheap storage reduction.
class DecimatingSink final : public SampleSink {
 public:
  DecimatingSink(std::size_t factor, SampleSink& inner);

  void begin(const StreamInfo& info) override;
  void consume(const SampleChunk& chunk) override;
  void finish() override;

 private:
  void flush();

  std::size_t factor_;
  SampleSink& inner_;
  std::size_t out_first_ = 0;       ///< global (decimated) index of buf_[0]
  std::vector<double> buf_;         ///< frame-major staging for the inner sink
  std::size_t buf_frames_ = 0;
  std::size_t buf_capacity_ = 256;  ///< frames per forwarded chunk
};

/// Extracts one channel of the stream and hands its samples (contiguous,
/// chunk by chunk) to a consumer callback — the adapter that plugs
/// single-signal accumulators (Welch PSD, segmented EMI detection) into a
/// multi-channel stream.
class ChannelTapSink final : public SampleSink {
 public:
  using Consumer = std::function<void(std::span<const double>)>;
  ChannelTapSink(std::size_t channel, Consumer consumer);

  void begin(const StreamInfo& info) override;
  void consume(const SampleChunk& chunk) override;

 private:
  std::size_t channel_;
  Consumer consumer_;
  std::vector<double> buf_;
};

}  // namespace emc::sig
