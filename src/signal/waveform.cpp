#include "signal/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::sig {

Waveform::Waveform(double t0, double dt, std::vector<double> samples)
    : t0_(t0), dt_(dt), y_(std::move(samples)) {
  if (dt <= 0.0) throw std::invalid_argument("Waveform: dt must be positive");
}

Waveform Waveform::sample(const std::function<double(double)>& f, double t0, double dt,
                          std::size_t n) {
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) y[k] = f(t0 + dt * static_cast<double>(k));
  return Waveform(t0, dt, std::move(y));
}

double Waveform::value_at(double t) const {
  if (y_.empty()) return 0.0;
  const double u = (t - t0_) / dt_;
  if (u <= 0.0) return y_.front();
  const auto last = static_cast<double>(y_.size() - 1);
  if (u >= last) return y_.back();
  const auto k = static_cast<std::size_t>(u);
  const double frac = u - static_cast<double>(k);
  return y_[k] * (1.0 - frac) + y_[k + 1] * frac;
}

Waveform Waveform::resampled(double t0, double dt, std::size_t n) const {
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) y[k] = value_at(t0 + dt * static_cast<double>(k));
  return Waveform(t0, dt, std::move(y));
}

Waveform Waveform::slice(std::size_t first, std::size_t count) const {
  if (first + count > y_.size()) throw std::out_of_range("Waveform::slice: out of range");
  std::vector<double> y(y_.begin() + static_cast<std::ptrdiff_t>(first),
                        y_.begin() + static_cast<std::ptrdiff_t>(first + count));
  return Waveform(time_at(first), dt_, std::move(y));
}

Waveform& Waveform::operator+=(const Waveform& other) {
  if (other.size() != size()) throw std::invalid_argument("Waveform+=: length mismatch");
  for (std::size_t k = 0; k < y_.size(); ++k) y_[k] += other.y_[k];
  return *this;
}

Waveform& Waveform::operator-=(const Waveform& other) {
  if (other.size() != size()) throw std::invalid_argument("Waveform-=: length mismatch");
  for (std::size_t k = 0; k < y_.size(); ++k) y_[k] -= other.y_[k];
  return *this;
}

Waveform& Waveform::operator*=(double s) {
  for (auto& v : y_) v *= s;
  return *this;
}

double Waveform::min_value() const {
  return y_.empty() ? 0.0 : *std::min_element(y_.begin(), y_.end());
}

double Waveform::max_value() const {
  return y_.empty() ? 0.0 : *std::max_element(y_.begin(), y_.end());
}

}  // namespace emc::sig
