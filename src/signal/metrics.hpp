// Accuracy metrics used in the paper's Section 5: RMS / max errors and the
// threshold-crossing timing error ("maximum delay between the reference and
// the model responses measured at the crossing of a suitable voltage
// threshold").
#pragma once

#include <optional>
#include <vector>

#include "signal/waveform.hpp"

namespace emc::sig {

/// Root-mean-square difference between two waveforms evaluated on the grid
/// of `a` (b is interpolated).
double rms_error(const Waveform& a, const Waveform& b);

/// Maximum absolute difference on the grid of `a`.
double max_error(const Waveform& a, const Waveform& b);

/// RMS of `a` itself (useful for normalized errors).
double rms(const Waveform& a);

/// All times where the waveform crosses `threshold`, linearly interpolated
/// between samples. `min_separation` merges crossings closer than that
/// (e.g. ringing around the threshold).
std::vector<double> threshold_crossings(const Waveform& w, double threshold,
                                        double min_separation = 0.0);

/// Crossings with hysteresis (oscilloscope-style deglitching): a crossing
/// is only registered when the waveform has previously settled beyond
/// threshold -+ hysteresis on the opposite side, so rings that merely graze
/// the threshold do not count.
std::vector<double> threshold_crossings_hysteresis(const Waveform& w, double threshold,
                                                   double hysteresis);

/// Paper Section 5 timing-error metric: match every reference crossing of
/// `threshold` to the nearest model crossing and return the maximum
/// |delta t|. `hysteresis` > 0 deglitches both waveforms first (standard
/// timing-measurement practice; rings grazing the threshold would
/// otherwise produce phantom crossings with no partner). Returns nullopt
/// when either waveform never crosses the threshold.
std::optional<double> timing_error(const Waveform& reference, const Waveform& model,
                                   double threshold, double min_separation = 0.0,
                                   double hysteresis = 0.0);

/// Slew-qualified timing error: like timing_error (with hysteresis), but
/// only reference crossings whose local slew rate is at least
/// `min_slew_fraction` of the record's peak slew are scored. Shallow
/// ring-throughs turn small voltage errors into huge, meaningless delta-t
/// (dt = dv / slope); switching-edge timing is what the paper's Section 5
/// metric measures.
std::optional<double> edge_timing_error(const Waveform& reference, const Waveform& model,
                                        double threshold, double hysteresis,
                                        double min_slew_fraction = 0.25);

}  // namespace emc::sig
