// Circuit device simulating an IBIS model with linear switching
// coefficients: i(v, t) = Ku(t)*I_pu(v) + Kd(t)*I_pd(v) + C_comp*dv/dt.
#pragma once

#include <string>

#include "circuit/device.hpp"
#include "ibis/model.hpp"

namespace emc::ibis {

class IbisDriverDevice : public ckt::Device {
 public:
  /// Drives `pad` against ground following the logic pattern `bits`
  /// (period `bit_time`). The model must outlive the device.
  IbisDriverDevice(int pad, const IbisModel& model, std::string bits, double bit_time);

  bool nonlinear() const override { return true; }
  void start_step(const ckt::SimState& st) override;
  void stamp(ckt::Stamper& s, const ckt::SimState& st) const override;
  void commit(const ckt::SimState& st) override;
  void post_dc(const ckt::SimState& st) override;
  void reset() override;

 private:
  bool bit_at(double t) const;
  std::pair<double, double> table_eval(const IvTable& t, double v) const;

  int pad_;
  const IbisModel* model_;
  std::string bits_;
  double bit_time_;

  bool state_ = false;
  double edge_time_ = -1e18;
  double ku_ = 0.0, kd_ = 1.0;
  // Trapezoidal companion state of C_comp.
  double icap_prev_ = 0.0;
  double geq_ = 0.0, ieq_ = 0.0;
};

}  // namespace emc::ibis
