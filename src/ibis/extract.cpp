#include "ibis/extract.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/devices_linear.hpp"
#include "circuit/engine.hpp"
#include "circuit/netlist.hpp"
#include "signal/metrics.hpp"
#include "signal/sources.hpp"

namespace emc::ibis {

std::string corner_name(Corner c) {
  switch (c) {
    case Corner::Slow:
      return "slow";
    case Corner::Typical:
      return "typical";
    case Corner::Fast:
      return "fast";
  }
  return "?";
}

namespace {

/// Settled (pad voltage, current into the pad) with the output stage held
/// in one state and the pad forced through a small sense resistance. The
/// table must be keyed by the *pad* voltage: at 0.3 A the drop across the
/// sense resistor is a visible fraction of a volt.
std::pair<double, double> dc_point(const dev::DriverTech& tech, bool high, double v_force,
                                   const ExtractionOptions& opt) {
  ckt::Circuit c;
  auto inst = dev::build_reference_driver_static(c, tech, high);
  const int src = c.node();
  const double rs = 1.0;
  c.add<ckt::VSource>(src, c.ground(), v_force);
  c.add<ckt::Resistor>(src, inst.pad, rs);

  ckt::TransientOptions topt;
  topt.dt = opt.dt;
  topt.t_stop = opt.settle;
  const auto res = ckt::run_transient(c, topt);
  const auto v_pad = res.waveform(inst.pad);
  const std::size_t last = v_pad.size() - 1;
  return {v_pad[last], (v_force - v_pad[last]) / rs};
}

struct RampMeasurement {
  double slew = 0.0;     ///< 20-80% [V/s]
  double latency = 0.0;  ///< input edge -> start of the output ramp [s]
};

/// 20-80% slew of an edge into the standard load, plus the buffer
/// propagation latency (input logic edge to the extrapolated ramp start).
RampMeasurement measure_ramp(const dev::DriverTech& tech, bool rising,
                             const ExtractionOptions& opt) {
  ckt::Circuit c;
  const std::string bits = rising ? "01" : "10";
  auto pattern = sig::bit_stream(bits, 3e-9, 0.1e-9, 0.0, tech.vdd);
  auto inst = dev::build_reference_driver(c, tech, [pattern](double t) { return pattern(t); });
  // Standard IBIS ramp fixture: 50 ohm to GND for rising, to VDD for
  // falling edges.
  if (rising) {
    c.add<ckt::Resistor>(inst.pad, c.ground(), opt.ramp_load);
  } else {
    const int vt = c.node();
    c.add<ckt::VSource>(vt, c.ground(), tech.vdd);
    c.add<ckt::Resistor>(inst.pad, vt, opt.ramp_load);
  }

  ckt::TransientOptions topt;
  topt.dt = opt.dt;
  topt.t_stop = 8e-9;
  const auto res = ckt::run_transient(c, topt);
  const auto v = res.waveform(inst.pad);

  const double v0 = v[0];
  const double v1 = v[v.size() - 1];
  const double lo = v0 + 0.2 * (v1 - v0);
  const double hi = v0 + 0.8 * (v1 - v0);
  const auto t_lo = sig::threshold_crossings(v, lo);
  const auto t_hi = sig::threshold_crossings(v, hi);
  if (t_lo.empty() || t_hi.empty())
    throw std::runtime_error("measure_ramp: edge did not cross the 20/80% levels");
  const double dt_edge = std::abs(t_hi.front() - t_lo.front());
  if (dt_edge <= 0.0) throw std::runtime_error("measure_ramp: degenerate edge");

  RampMeasurement rm;
  rm.slew = std::abs(hi - lo) / dt_edge;
  // The input logic edge fires at the start of the second bit (3 ns in
  // this fixture); extrapolate the linear ramp back from the 20% point.
  const double t_input_edge = 3e-9;
  const double t_ramp_full = dt_edge / 0.6;
  rm.latency = std::max(0.0, t_lo.front() - t_input_edge - 0.2 * t_ramp_full);
  return rm;
}

/// Die capacitance estimate: with the output stage held Low, a small fast
/// probe step through a large resistor relaxes with tau = R*C.
double estimate_c_comp(const dev::DriverTech& tech) {
  // The reference's own structural caps dominate; summing them is the
  // honest equivalent of a vendor-quoted C_comp.
  return tech.c_pad + tech.c_junction_per_w * (tech.w_out_n + tech.w_out_p);
}

}  // namespace

IbisModel extract_ibis(const dev::DriverTech& tech, Corner corner,
                       const ExtractionOptions& opt) {
  dev::DriverTech t = tech;
  if (corner == Corner::Slow) t = tech.corner_slow();
  if (corner == Corner::Fast) t = tech.corner_fast();

  IbisModel m;
  m.corner = corner;
  m.vdd = t.vdd;
  // Force with enough headroom that the *pad* voltage covers the target
  // range even against the full drive current through the sense resistor.
  const double v_lo = -opt.v_beyond - 0.5;
  const double v_hi = t.vdd + opt.v_beyond + 0.5;
  for (int p = 0; p < opt.n_points; ++p) {
    const double v = v_lo + (v_hi - v_lo) * static_cast<double>(p) / (opt.n_points - 1);
    m.pullup.points.push_back(dc_point(t, true, v, opt));
    m.pulldown.points.push_back(dc_point(t, false, v, opt));
  }
  // The pad-voltage keys are monotone (the sense drop is monotone in the
  // forced value), but guard against numerically equal neighbours.
  auto dedupe = [](IvTable& tb) {
    auto& pts = tb.points;
    pts.erase(std::unique(pts.begin(), pts.end(),
                          [](const auto& a, const auto& b) {
                            return std::abs(a.first - b.first) < 1e-9;
                          }),
              pts.end());
  };
  dedupe(m.pullup);
  dedupe(m.pulldown);
  const auto ramp_up = measure_ramp(t, true, opt);
  const auto ramp_dn = measure_ramp(t, false, opt);
  m.ramp_up = ramp_up.slew;
  m.ramp_down = ramp_dn.slew;
  m.latency_up = ramp_up.latency;
  m.latency_down = ramp_dn.latency;
  m.c_comp = estimate_c_comp(t);
  return m;
}

std::vector<IbisModel> extract_ibis_corners(const dev::DriverTech& tech,
                                            const ExtractionOptions& opt) {
  std::vector<IbisModel> out;
  for (Corner c : {Corner::Slow, Corner::Typical, Corner::Fast})
    out.push_back(extract_ibis(tech, c, opt));
  return out;
}

}  // namespace emc::ibis
