#include "ibis/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::ibis {

IbisDriverDevice::IbisDriverDevice(int pad, const IbisModel& model, std::string bits,
                                   double bit_time)
    : pad_(pad), model_(&model), bits_(std::move(bits)), bit_time_(bit_time) {
  if (bits_.empty()) throw std::invalid_argument("IbisDriverDevice: empty bit pattern");
  if (bit_time <= 0.0)
    throw std::invalid_argument("IbisDriverDevice: bit_time must be positive");
  if (!model.pullup.valid() || !model.pulldown.valid())
    throw std::invalid_argument("IbisDriverDevice: model tables not extracted");
  state_ = bits_[0] == '1';
}

bool IbisDriverDevice::bit_at(double t) const {
  auto idx = static_cast<std::size_t>(t / bit_time_);
  if (idx >= bits_.size()) idx = bits_.size() - 1;
  return bits_[idx] == '1';
}

std::pair<double, double> IbisDriverDevice::table_eval(const IvTable& tb, double v) const {
  const auto& pts = tb.points;
  std::size_t hi = 1;
  if (v >= pts.back().first) {
    hi = pts.size() - 1;
  } else if (v > pts.front().first) {
    hi = static_cast<std::size_t>(
        std::upper_bound(pts.begin(), pts.end(), v,
                         [](double vv, const auto& p) { return vv < p.first; }) -
        pts.begin());
  }
  const auto& p0 = pts[hi - 1];
  const auto& p1 = pts[hi];
  const double g = (p1.second - p0.second) / (p1.first - p0.first);
  return {p0.second + g * (v - p0.first), g};
}

void IbisDriverDevice::start_step(const ckt::SimState& st) {
  const bool b = bit_at(st.t);
  if (b != state_) {
    state_ = b;
    edge_time_ = st.t;
  }
  // Switching coefficients: linear ramps over the edge's ramp duration,
  // delayed by the annotated buffer propagation latency.
  const double latency = state_ ? model_->latency_up : model_->latency_down;
  const double since = st.t - edge_time_ - latency;
  const double t_ramp = state_ ? model_->t_ramp_up() : model_->t_ramp_down();
  const double frac = std::clamp(since / t_ramp, 0.0, 1.0);
  ku_ = state_ ? frac : 1.0 - frac;
  kd_ = 1.0 - ku_;

  // C_comp trapezoidal companion.
  geq_ = 2.0 * model_->c_comp / st.dt;
  const double v_prev = st.v_prev(pad_);
  ieq_ = geq_ * v_prev + icap_prev_;
}

void IbisDriverDevice::stamp(ckt::Stamper& s, const ckt::SimState& st) const {
  const double v = st.v(pad_);
  const auto [ipu, gpu] = table_eval(model_->pullup, v);
  const auto [ipd, gpd] = table_eval(model_->pulldown, v);
  const double i = ku_ * ipu + kd_ * ipd;
  const double g = ku_ * gpu + kd_ * gpd;
  s.nonlinear_current(pad_, 0, i, g, v);
  if (!st.dc && model_->c_comp > 0.0) {
    s.conductance(pad_, 0, geq_);
    s.current_source(0, pad_, ieq_);
  }
}

void IbisDriverDevice::commit(const ckt::SimState& st) {
  if (st.dc) return;
  if (model_->c_comp > 0.0) icap_prev_ = geq_ * st.v(pad_) - ieq_;
}

void IbisDriverDevice::post_dc(const ckt::SimState&) { icap_prev_ = 0.0; }

void IbisDriverDevice::reset() {
  state_ = bits_[0] == '1';
  edge_time_ = -1e18;
  icap_prev_ = 0.0;
  ku_ = state_ ? 1.0 : 0.0;
  kd_ = 1.0 - ku_;
}

}  // namespace emc::ibis
