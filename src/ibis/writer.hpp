// Minimal IBIS (.ibs) file writer: serializes extracted models in the
// I/O Buffer Information Specification text format (subset: I-V tables,
// ramp, C_comp, three corners) so downstream IBIS-consuming tools can read
// the data this library extracts.
#pragma once

#include <string>
#include <vector>

#include "ibis/model.hpp"

namespace emc::ibis {

/// Serialize a slow/typ/fast corner set into one .ibs text. All models
/// must describe the same component (same vdd / table sizes are not
/// required). Throws std::invalid_argument on an empty set or invalid
/// tables.
std::string write_ibs(const std::string& component, const std::vector<IbisModel>& corners);

/// Write the text to a file, creating parent directories.
void write_ibs_file(const std::string& path, const std::string& text);

}  // namespace emc::ibis
