#include "ibis/writer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace emc::ibis {

namespace {

const IbisModel* find_corner(const std::vector<IbisModel>& corners, Corner c) {
  for (const auto& m : corners)
    if (m.corner == c) return &m;
  return nullptr;
}

/// One I-V table block: typ/min/max currents per voltage row. The corner
/// tables may have slightly different voltage grids; min/max corners are
/// interpolated onto the typical grid.
void emit_iv(std::ostringstream& os, const std::string& keyword, const IbisModel& typ,
             const IbisModel* slow, const IbisModel* fast, bool pullup) {
  auto table_of = [&](const IbisModel& m) -> const IvTable& {
    return pullup ? m.pullup : m.pulldown;
  };
  auto interp = [&](const IvTable& t, double v) {
    const auto& pts = t.points;
    std::size_t hi = 1;
    if (v >= pts.back().first) {
      hi = pts.size() - 1;
    } else if (v > pts.front().first) {
      while (hi + 1 < pts.size() && pts[hi].first < v) ++hi;
    }
    const auto& p0 = pts[hi - 1];
    const auto& p1 = pts[hi];
    const double g = (p1.second - p0.second) / (p1.first - p0.first);
    return p0.second + g * (v - p0.first);
  };

  os << "[" << keyword << "]\n";
  // IBIS convention: pullup voltages are VDD-relative; we emit pad-
  // referenced tables and note it, which common readers accept via the
  // voltage-range declaration.
  for (const auto& [v, i] : table_of(typ).points) {
    os << "  " << v << "  " << i;
    os << "  " << (slow ? interp(table_of(*slow), v) : i);
    os << "  " << (fast ? interp(table_of(*fast), v) : i);
    os << "\n";
  }
}

}  // namespace

std::string write_ibs(const std::string& component,
                      const std::vector<IbisModel>& corners) {
  const IbisModel* typ = find_corner(corners, Corner::Typical);
  if (!typ) throw std::invalid_argument("write_ibs: typical corner required");
  if (!typ->pullup.valid() || !typ->pulldown.valid())
    throw std::invalid_argument("write_ibs: typical corner tables not extracted");
  const IbisModel* slow = find_corner(corners, Corner::Slow);
  const IbisModel* fast = find_corner(corners, Corner::Fast);

  std::ostringstream os;
  os.precision(6);
  os << "[IBIS Ver]   3.2\n";
  os << "[File Name]  " << component << ".ibs\n";
  os << "[Component]  " << component << "\n";
  os << "[Manufacturer] emc-macromodel reproduction\n";
  os << "|\n";
  os << "[Model]      " << component << "_io\n";
  os << "Model_type   I/O\n";
  os << "C_comp       " << typ->c_comp << "  "
     << (slow ? slow->c_comp : typ->c_comp) << "  "
     << (fast ? fast->c_comp : typ->c_comp) << "\n";
  os << "[Voltage Range] " << typ->vdd << "  " << (slow ? slow->vdd : typ->vdd) << "  "
     << (fast ? fast->vdd : typ->vdd) << "\n";
  os << "|\n";
  emit_iv(os, "Pullup", *typ, slow, fast, true);
  os << "|\n";
  emit_iv(os, "Pulldown", *typ, slow, fast, false);
  os << "|\n";
  // Ramp rows in the IBIS "dV/dt" (swing / time) notation, typ min max.
  auto ramp_entry = [](const IbisModel* m, bool rising) {
    std::ostringstream e;
    e.precision(6);
    if (!m) {
      e << "NA";
      return e.str();
    }
    const double dv = 0.6 * m->vdd;
    const double slew = rising ? m->ramp_up : m->ramp_down;
    e << dv << "/" << dv / slew;
    return e.str();
  };
  os << "[Ramp]\n";
  os << "dV/dt_r  " << ramp_entry(typ, true) << "  " << ramp_entry(slow, true) << "  "
     << ramp_entry(fast, true) << "\n";
  os << "dV/dt_f  " << ramp_entry(typ, false) << "  " << ramp_entry(slow, false) << "  "
     << ramp_entry(fast, false) << "\n";
  os << "|\n";
  os << "[End]\n";
  return os.str();
}

void write_ibs_file(const std::string& path, const std::string& text) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream osf(path);
  if (!osf) throw std::runtime_error("write_ibs_file: cannot open " + path);
  osf << text;
}

}  // namespace emc::ibis
