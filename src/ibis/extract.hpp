// IBIS data extraction from a reference (transistor-level) driver — the
// same procedure a vendor uses to produce an .ibs file: DC sweeps of the
// output held in each state, edge slew measured into a standard load.
#pragma once

#include "devices/reference_driver.hpp"
#include "ibis/model.hpp"

namespace emc::ibis {

struct ExtractionOptions {
  double v_beyond = 1.0;    ///< sweep range beyond the rails [V]
  int n_points = 41;        ///< I-V table size
  double dt = 25e-12;
  double settle = 4e-9;     ///< settling time per DC point
  double ramp_load = 50.0;  ///< standard load of the ramp measurement [ohm]
};

/// Extract one corner from the given technology.
IbisModel extract_ibis(const dev::DriverTech& tech, Corner corner,
                       const ExtractionOptions& opt = {});

/// Extract the classic slow/typ/fast set (corners derived from the
/// technology's process-corner variants).
std::vector<IbisModel> extract_ibis_corners(const dev::DriverTech& tech,
                                            const ExtractionOptions& opt = {});

}  // namespace emc::ibis
