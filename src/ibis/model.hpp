// IBIS-like behavioral driver model (the paper's comparison baseline).
//
// Structure follows the I/O Buffer Information Specification data that
// vendors ship: static pullup / pulldown I-V tables, edge ramp rates
// measured on a standard load, a die capacitance C_comp, and slow /
// typical / fast process corners. Simulation uses the classic switching
// coefficients: during a transition Ku(t) ramps 0->1 and Kd(t) 1->0 (and
// vice versa), each table scaled by its coefficient.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace emc::ibis {

enum class Corner { Slow, Typical, Fast };

std::string corner_name(Corner c);

struct IvTable {
  /// (pad voltage, current into the pad) samples, sorted by voltage.
  std::vector<std::pair<double, double>> points;

  bool valid() const { return points.size() >= 2; }
};

struct IbisModel {
  std::string component;  ///< device tag
  Corner corner = Corner::Typical;
  double vdd = 3.3;
  IvTable pullup;     ///< output stage held High
  IvTable pulldown;   ///< output stage held Low
  double ramp_up = 0.0;    ///< rising-edge slew at the pad, 20-80% [V/s]
  double ramp_down = 0.0;  ///< falling-edge slew (positive number) [V/s]
  double c_comp = 0.0;     ///< die + package capacitance [F]
  double latency_up = 0.0;    ///< input-edge to output-ramp-start delay [s]
  double latency_down = 0.0;  ///< (buffer propagation delay annotation)

  /// Duration of the linear switching-coefficient ramp for each edge,
  /// derived from the 20-80% slew (ramp covers the full 0-100% swing).
  double t_ramp_up() const { return ramp_up > 0 ? vdd * 0.6 / ramp_up : 1e-9; }
  double t_ramp_down() const { return ramp_down > 0 ? vdd * 0.6 / ramp_down : 1e-9; }
};

}  // namespace emc::ibis
