#include "devices/reference_receiver.hpp"

#include "circuit/devices_linear.hpp"

namespace emc::dev {

using ckt::Capacitor;
using ckt::Circuit;
using ckt::Diode;
using ckt::DiodeParams;
using ckt::Resistor;
using ckt::VSource;

ReceiverTech ReceiverTech::md4_ibm18() {
  ReceiverTech t;
  return t;
}

ReceiverInstance build_reference_receiver(Circuit& ckt, const ReceiverTech& tech) {
  ReceiverInstance inst;
  inst.vdd_node = ckt.node();
  ckt.add<VSource>(inst.vdd_node, ckt.ground(), tech.vdd);

  inst.pin = ckt.node();
  const int pad = ckt.node();
  ckt.add<Resistor>(inst.pin, pad, tech.r_pin);
  ckt.add<Capacitor>(pad, ckt.ground(), tech.c_pad);
  // Junction capacitance: lumped linear approximation of the zero-bias
  // ESD junction capacitance (its voltage dependence is mild inside the
  // rails and the clamp diodes dominate outside).
  ckt.add<Capacitor>(pad, ckt.ground(), tech.c_esd);

  DiodeParams dp;
  dp.is = tech.is_esd;
  dp.n = tech.n_esd;

  // Up clamp: pad -> series R -> diode -> VDD.
  const int up_mid = ckt.node();
  ckt.add<Resistor>(pad, up_mid, tech.r_esd);
  ckt.add<Diode>(up_mid, inst.vdd_node, dp);

  // Down clamp: GND -> diode -> series R -> pad.
  const int dn_mid = ckt.node();
  ckt.add<Diode>(dn_mid, pad, dp);
  ckt.add<Resistor>(dn_mid, ckt.ground(), tech.r_esd);

  return inst;
}

}  // namespace emc::dev
