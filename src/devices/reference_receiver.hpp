// Reference ("transistor level") CMOS receiver input port.
//
// Inside the supply range a receiver is mainly a linear capacitance (gate
// + pad + wiring); outside it the rail ESD protection devices dominate.
// The reference model is: series pin resistance, pad capacitance,
// voltage-dependent junction capacitance and rail clamp diodes with their
// series resistances, matching the behavior the paper's receiver
// macromodel (eq. 2) has to reproduce.
#pragma once

#include "circuit/devices_nonlinear.hpp"
#include "circuit/netlist.hpp"

namespace emc::dev {

struct ReceiverTech {
  double vdd = 1.8;        ///< supply [V]
  double c_pad = 4e-12;    ///< linear pad + gate capacitance [F]
  double c_esd = 2e-12;    ///< additional junction capacitance near 0 bias [F]
  double r_pin = 2.0;      ///< series pin resistance [ohm]
  double r_esd = 4.0;      ///< clamp diode series resistance [ohm]
  double is_esd = 2e-15;   ///< clamp diode saturation current [A]
  double n_esd = 1.1;      ///< clamp diode emission coefficient

  /// The paper's MD4: 1.8 V IBM-class receiver.
  static ReceiverTech md4_ibm18();
};

struct ReceiverInstance {
  int pin = 0;       ///< external pin node
  int vdd_node = 0;  ///< internal supply node
};

/// Build the reference receiver; the caller connects the source to `pin`.
ReceiverInstance build_reference_receiver(ckt::Circuit& ckt, const ReceiverTech& tech);

}  // namespace emc::dev
