// Reference ("transistor level") CMOS output buffer.
//
// The paper estimates its macromodels from the responses of detailed
// transistor-level models of commercial devices (74LVC244 and IBM ASIC
// drivers). Those netlists are proprietary; this module builds an
// equivalent-class multi-stage CMOS buffer from level-1 MOSFETs:
//
//   logic in -> [pre-driver inverter chain with RC gate delays,
//                separate skewed gates for P and N to get
//                break-before-make] -> output stage -> package R/L/C -> pad
//
// which exhibits the port behaviors the macromodeling method must
// capture: nonlinear output I-V, state-dependent dynamics, finite and
// asymmetric slew, supply rail clamping, and package ringing.
#pragma once

#include <functional>
#include <string>

#include "circuit/devices_nonlinear.hpp"
#include "circuit/netlist.hpp"

namespace emc::dev {

/// Technology + sizing descriptor of a reference driver.
struct DriverTech {
  double vdd = 3.3;         ///< supply [V]
  double kp_n = 300e-6;     ///< NMOS process transconductance [A/V^2]
  double kp_p = 120e-6;     ///< PMOS process transconductance [A/V^2]
  double vt_n = 0.55;       ///< NMOS threshold [V]
  double vt_p = 0.55;       ///< PMOS threshold magnitude [V]
  double lambda = 0.06;     ///< channel-length modulation [1/V]
  double l = 0.35e-6;       ///< channel length [m]
  double w_out_n = 120e-6;  ///< output-stage NMOS width [m]
  double w_out_p = 280e-6;  ///< output-stage PMOS width [m]
  int pre_stages = 2;       ///< pre-driver inverters per gate branch
  double pre_taper = 4.0;   ///< width growth per pre-driver stage
  double w_pre1_n = 4e-6;   ///< first pre-driver NMOS width [m]
  double gate_r = 700.0;    ///< gate-branch series resistance [ohm]
  double gate_c = 90e-15;   ///< gate-branch load capacitance [F]
  double skew_r_p = 900.0;  ///< extra R on the P-gate branch (break-before-make)
  double skew_r_n = 900.0;  ///< extra R on the N-gate branch
  double r_pkg = 0.3;       ///< package series resistance [ohm]
  double l_pkg = 2.5e-9;    ///< package bond+lead inductance [H]
  double c_pad = 1.2e-12;   ///< pad + package shunt capacitance [F]
  double c_junction_per_w = 12e-9;  ///< output drain junction cap per gate width [F/m]

  /// Named presets for the paper's modeled devices (MD1..MD3).
  static DriverTech md1_lvc244();  ///< 3.3 V commercial LVC-class buffer
  static DriverTech md2_ibm18();   ///< 1.8 V IBM-class ASIC driver
  static DriverTech md3_ibm25();   ///< 2.5 V IBM-class ASIC driver

  /// Process-corner variants (used to generate slow/typ/fast IBIS data).
  DriverTech corner_slow() const;
  DriverTech corner_fast() const;
};

/// Handle to a driver instance inside a circuit.
struct DriverInstance {
  int pad = 0;        ///< output pad node (connect the load here)
  int vdd_node = 0;   ///< internal supply node
  int in_node = 0;    ///< logic input node (driven by the input source)
};

/// Build a reference driver driven by the logic-level waveform `input`
/// (0 -> low state, vdd -> high state). Returns the pad node to load.
DriverInstance build_reference_driver(ckt::Circuit& ckt, const DriverTech& tech,
                                      std::function<double(double)> input);

/// Build a driver whose output stage is forced by externally supplied gate
/// voltages (used by the IBIS extractor to hold the buffer in one state).
/// `gate_high` = true wires both gates to GND (PMOS on -> logic High);
/// false wires them to VDD (NMOS on -> logic Low).
DriverInstance build_reference_driver_static(ckt::Circuit& ckt, const DriverTech& tech,
                                             bool gate_high);

}  // namespace emc::dev
