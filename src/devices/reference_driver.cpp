#include "devices/reference_driver.hpp"

#include "circuit/devices_linear.hpp"

namespace emc::dev {

using ckt::Capacitor;
using ckt::Circuit;
using ckt::Inductor;
using ckt::Mosfet;
using ckt::MosParams;
using ckt::MosType;
using ckt::Resistor;
using ckt::VSource;

DriverTech DriverTech::md1_lvc244() {
  DriverTech t;  // defaults describe the 3.3 V LVC-class buffer
  return t;
}

DriverTech DriverTech::md2_ibm18() {
  // High-speed ASIC driver: the pre-driver must settle well within the
  // 1 ns bit time of the paper's validation patterns.
  DriverTech t;
  t.vdd = 1.8;
  t.kp_n = 340e-6;
  t.kp_p = 140e-6;
  t.vt_n = 0.42;
  t.vt_p = 0.42;
  t.l = 0.18e-6;
  t.w_out_n = 60e-6;
  t.w_out_p = 140e-6;
  t.gate_r = 220.0;
  t.gate_c = 30e-15;
  t.skew_r_p = 320.0;
  t.skew_r_n = 320.0;
  t.r_pkg = 0.25;
  t.l_pkg = 1.5e-9;
  t.c_pad = 0.8e-12;
  return t;
}

DriverTech DriverTech::md3_ibm25() {
  DriverTech t;
  t.vdd = 2.5;
  t.kp_n = 320e-6;
  t.kp_p = 130e-6;
  t.vt_n = 0.48;
  t.vt_p = 0.48;
  t.l = 0.25e-6;
  t.w_out_n = 80e-6;
  t.w_out_p = 190e-6;
  t.gate_r = 240.0;
  t.gate_c = 32e-15;
  t.skew_r_p = 340.0;
  t.skew_r_n = 340.0;
  t.r_pkg = 0.25;
  t.l_pkg = 2.0e-9;
  t.c_pad = 1.0e-12;
  return t;
}

DriverTech DriverTech::corner_slow() const {
  DriverTech t = *this;
  t.kp_n *= 0.8;
  t.kp_p *= 0.8;
  t.vt_n *= 1.1;
  t.vt_p *= 1.1;
  t.gate_r *= 1.2;
  return t;
}

DriverTech DriverTech::corner_fast() const {
  DriverTech t = *this;
  t.kp_n *= 1.2;
  t.kp_p *= 1.2;
  t.vt_n *= 0.9;
  t.vt_p *= 0.9;
  t.gate_r *= 0.85;
  return t;
}

namespace {

MosParams nmos_of(const DriverTech& t, double w) {
  MosParams p;
  p.type = MosType::Nmos;
  p.kp = t.kp_n;
  p.vt0 = t.vt_n;
  p.lambda = t.lambda;
  p.w = w;
  p.l = t.l;
  return p;
}

MosParams pmos_of(const DriverTech& t, double w) {
  MosParams p;
  p.type = MosType::Pmos;
  p.kp = t.kp_p;
  p.vt0 = t.vt_p;
  p.lambda = t.lambda;
  p.w = w;
  p.l = t.l;
  return p;
}

/// One CMOS inverter between `in` and `out`; returns out.
void add_inverter(Circuit& ckt, const DriverTech& t, int vdd, int in, int out, double wn) {
  // Keep the classic ~2.3x P/N ratio of the technology presets.
  const double wp = wn * (t.w_out_p / t.w_out_n);
  ckt.add<Mosfet>(out, in, ckt.ground(), nmos_of(t, wn));
  ckt.add<Mosfet>(out, in, vdd, pmos_of(t, wp));
}

/// Pre-driver branch: inverter chain (even number of stages) followed by a
/// polarity-fixing inverter and the gate RC that sets the output-stage
/// slew. Returns the output-device gate node.
int add_predriver_branch(Circuit& ckt, const DriverTech& t, int vdd, int in, double skew_r) {
  int cur = in;
  double wn = t.w_pre1_n;
  for (int s = 0; s < t.pre_stages; ++s) {
    const int inv_out = ckt.node();
    add_inverter(ckt, t, vdd, cur, inv_out, wn);
    ckt.add<Capacitor>(inv_out, ckt.ground(), t.gate_c);
    cur = inv_out;
    wn *= t.pre_taper;
  }
  // Polarity-fixing stage (odd total inversions: in = vdd -> gates low).
  const int inv_out = ckt.node();
  add_inverter(ckt, t, vdd, cur, inv_out, t.w_pre1_n * 8.0);
  ckt.add<Capacitor>(inv_out, ckt.ground(), t.gate_c);

  // Gate RC after the last stage: this is what limits how fast the big
  // output devices can be switched (and the knob that skews P vs N).
  const int gate = ckt.node();
  ckt.add<Resistor>(inv_out, gate, t.gate_r + skew_r);
  ckt.add<Capacitor>(gate, ckt.ground(), 4.0 * t.gate_c);
  return gate;
}

}  // namespace

DriverInstance build_reference_driver(Circuit& ckt, const DriverTech& tech,
                                      std::function<double(double)> input) {
  DriverInstance inst;
  inst.vdd_node = ckt.node();
  ckt.add<VSource>(inst.vdd_node, ckt.ground(), tech.vdd);

  inst.in_node = ckt.node();
  ckt.add<VSource>(inst.in_node, ckt.ground(), std::move(input));

  // Two pre-driver branches with different skews: the P gate turns off
  // faster than the N gate turns on (and vice versa), the usual
  // break-before-make shoot-through control.
  const int gp = add_predriver_branch(ckt, tech, inst.vdd_node, inst.in_node,
                                      tech.skew_r_p);
  const int gn = add_predriver_branch(ckt, tech, inst.vdd_node, inst.in_node,
                                      tech.skew_r_n);

  const int drain = ckt.node();
  ckt.add<Mosfet>(drain, gn, ckt.ground(), nmos_of(tech, tech.w_out_n));
  ckt.add<Mosfet>(drain, gp, inst.vdd_node, pmos_of(tech, tech.w_out_p));
  // Drain junction capacitance of the (wide) output devices.
  ckt.add<Capacitor>(drain, ckt.ground(),
                     tech.c_junction_per_w * (tech.w_out_n + tech.w_out_p));

  // Package parasitics to the external pad.
  inst.pad = ckt.node();
  const int mid = ckt.node();
  ckt.add<Resistor>(drain, mid, tech.r_pkg);
  ckt.add<Inductor>(mid, inst.pad, tech.l_pkg);
  ckt.add<Capacitor>(drain, ckt.ground(), tech.c_pad * 0.5);
  ckt.add<Capacitor>(inst.pad, ckt.ground(), tech.c_pad * 0.5);

  return inst;
}

DriverInstance build_reference_driver_static(Circuit& ckt, const DriverTech& tech,
                                             bool gate_high) {
  DriverInstance inst;
  inst.vdd_node = ckt.node();
  ckt.add<VSource>(inst.vdd_node, ckt.ground(), tech.vdd);
  inst.in_node = inst.vdd_node;

  // Gates hard-wired: High state = PMOS on + NMOS off (both gates low).
  const int gates = gate_high ? ckt.ground() : inst.vdd_node;

  const int drain = ckt.node();
  ckt.add<Mosfet>(drain, gates, ckt.ground(), nmos_of(tech, tech.w_out_n));
  ckt.add<Mosfet>(drain, gates, inst.vdd_node, pmos_of(tech, tech.w_out_p));
  ckt.add<Capacitor>(drain, ckt.ground(),
                     tech.c_junction_per_w * (tech.w_out_n + tech.w_out_p));

  inst.pad = ckt.node();
  const int mid = ckt.node();
  ckt.add<Resistor>(drain, mid, tech.r_pkg);
  ckt.add<Inductor>(mid, inst.pad, tech.l_pkg);
  ckt.add<Capacitor>(drain, ckt.ground(), tech.c_pad * 0.5);
  ckt.add<Capacitor>(inst.pad, ckt.ground(), tech.c_pad * 0.5);
  return inst;
}

}  // namespace emc::dev
