// Circuit container: node management and device storage.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "circuit/device.hpp"

namespace emc::ckt {

/// A circuit under construction. Node id 0 is ground.
class Circuit {
 public:
  Circuit() = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;

  int ground() const { return 0; }

  /// Create a fresh anonymous node.
  int node();

  /// Get-or-create a named node.
  int node(const std::string& name);

  /// Number of nodes including ground.
  int num_nodes() const { return next_node_; }

  /// Construct a device in place and keep ownership; returns a reference
  /// valid for the circuit's lifetime.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Assign extra-unknown ids to all devices; returns the total number of
  /// unknowns (nodes-1 + extras). Called by the engine.
  int finalize();

 private:
  int next_node_ = 1;
  std::map<std::string, int> named_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace emc::ckt
