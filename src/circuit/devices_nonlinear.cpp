#include "circuit/devices_nonlinear.hpp"

#include <cmath>

namespace emc::ckt {

Diode::Diode(int a, int b, DiodeParams p) : a_(a), b_(b), p_(p) {}

std::pair<double, double> Diode::eval(double v) const {
  const double nvt = p_.n * p_.vt;
  const double vmax = 40.0 * nvt;  // beyond this, linearize the exponential
  double i, g;
  if (v <= vmax) {
    const double e = std::exp(v / nvt);
    i = p_.is * (e - 1.0);
    g = p_.is * e / nvt;
  } else {
    const double e = std::exp(40.0);
    const double g0 = p_.is * e / nvt;
    i = p_.is * (e - 1.0) + g0 * (v - vmax);
    g = g0;
  }
  return {i + p_.gmin * v, g + p_.gmin};
}

void Diode::stamp(Stamper& s, const SimState& st) const {
  const double v = st.v(a_) - st.v(b_);
  const auto [i, g] = eval(v);
  s.nonlinear_current(a_, b_, i, g, v);
}

Mosfet::Mosfet(int d, int g, int s, MosParams p) : d_(d), g_(g), s_(s), p_(p) {}

Mosfet::OpPoint Mosfet::eval_normalized(double vgs, double vds) const {
  // NMOS-normalized quantities: vds >= 0 guaranteed by the caller.
  const double beta = p_.beta();
  const double vov = vgs - p_.vt0;
  OpPoint op{0.0, 0.0, 0.0};
  if (vov <= 0.0) {
    // Cut-off; leave a tiny conductance to keep Newton moving.
    op.gds = 1e-12;
    return op;
  }
  const double clm = 1.0 + p_.lambda * vds;
  if (vds < vov) {
    // Triode region.
    op.id = beta * (vov * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * p_.lambda;
  } else {
    // Saturation.
    op.id = 0.5 * beta * vov * vov * clm;
    op.gm = beta * vov * clm;
    op.gds = 0.5 * beta * vov * vov * p_.lambda;
  }
  return op;
}

double Mosfet::drain_current(double vd, double vg, double vs) const {
  const double sign = (p_.type == MosType::Nmos) ? 1.0 : -1.0;
  double vde = vd, vse = vs;
  bool swapped = false;
  if (sign * (vde - vse) < 0.0) {
    std::swap(vde, vse);
    swapped = true;
  }
  const double vgs = sign * (vg - vse);
  const double vds = sign * (vde - vse);
  const OpPoint op = eval_normalized(vgs, vds);
  const double ide = sign * op.id;  // current into effective drain
  return swapped ? -ide : ide;
}

void Mosfet::stamp(Stamper& s, const SimState& st) const {
  const double sign = (p_.type == MosType::Nmos) ? 1.0 : -1.0;
  int de = d_, se = s_;
  if (sign * (st.v(d_) - st.v(s_)) < 0.0) std::swap(de, se);

  const double vde = st.v(de);
  const double vse = st.v(se);
  const double vg = st.v(g_);
  const double vgs = sign * (vg - vse);
  const double vds = sign * (vde - vse);
  const OpPoint op = eval_normalized(vgs, vds);

  // Current into the effective drain: i = sign*id(vgs, vds).
  // d i / d v(g)  = gm, d i / d v(de) = gds, d i / d v(se) = -(gm+gds)
  // (the sign^2 factors cancel).
  const double i0 = sign * op.id;
  const double ieq = i0 - op.gm * vg - op.gds * vde + (op.gm + op.gds) * vse;

  // KCL: i leaves node de (through the channel) and enters node se.
  s.g(de, g_, op.gm);
  s.g(de, de, op.gds);
  s.g(de, se, -(op.gm + op.gds));
  s.rhs(de, -ieq);

  s.g(se, g_, -op.gm);
  s.g(se, de, -op.gds);
  s.g(se, se, op.gm + op.gds);
  s.rhs(se, ieq);
}

}  // namespace emc::ckt
