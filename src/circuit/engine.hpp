// Transient / DC analysis engine.
//
// Fixed-step trapezoidal integration with a damped Newton-Raphson solve at
// every step. The step is fixed on purpose: the behavioral macromodels of
// the paper are discrete-time systems with sampling time Ts, and locking
// the circuit step to Ts is how they are coupled to the analog solver
// (DESIGN.md, "Numerical design choices").
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/decomp.hpp"
#include "linalg/sparse.hpp"
#include "robust/error.hpp"
#include "signal/sample_sink.hpp"
#include "signal/waveform.hpp"

namespace emc::ckt {

/// Which linear-system backend the Newton solve uses.
///
/// kAuto picks per run and per mode (DC stamps a different topology than
/// the transient): dense when the system is small (n <
/// sparse_min_unknowns, skipping even the pattern pass — identical cost
/// and results to the pre-sparse engine), otherwise a structure-discovery
/// pass decides by pattern density. kDense / kSparse force a backend.
/// The selection is a pure function of the circuit structure and the
/// options, never of values, so sweeps stay deterministic.
enum class SolverKind { kAuto, kDense, kSparse };

struct TransientOptions {
  double dt = 25e-12;      ///< fixed step; defaults to the paper's Ts = 25 ps
  double t_stop = 0.0;     ///< end time (required)
  double t_start = 0.0;
  int max_newton = 100;
  double tol = 1e-6;       ///< infinity-norm convergence tolerance on dx
  double dx_limit = 0.5;   ///< Newton damping: max |dx| per iteration
  double gmin = 1e-12;     ///< diagonal leakage keeping the system regular
  bool dc_start = true;    ///< compute the operating point before stepping
  /// Cache the LU factorization of a purely linear circuit: factor once
  /// per (dt, dc, gmin) configuration and reuse the factors for every
  /// step. Each step still re-stamps the system (the right-hand side is
  /// time/history dependent) but replaces the O(n^3) LU with one O(n^2)
  /// back-substitution. Disable to force the generic re-factorizing
  /// Newton path (reference behavior for regression benches). Applies to
  /// the sparse backend too (numeric refactor cached per configuration).
  bool cache_lu = true;

  /// Linear-system backend; see SolverKind. kAuto keeps every circuit
  /// below sparse_min_unknowns on the dense path bit-identically to the
  /// pre-sparse engine.
  SolverKind solver = SolverKind::kAuto;
  /// kAuto: smallest unknown count worth a structure pass.
  std::size_t sparse_min_unknowns = 64;
  /// kAuto: densest pattern (nnz / n^2) still solved sparsely.
  double sparse_max_density = 0.25;

  /// Run identity for failure reports and the fault-injection harness
  /// (the sweep layer sets it to the corner's transient key). Carried
  /// into every robust::SolveError thrown by this run; empty is fine.
  std::string context;

  /// Cooperative wall-clock deadline: checked once per time step and once
  /// per Newton iteration; expiry throws robust::SolveError
  /// (kDeadlineExceeded). Null = no deadline. The pointee must outlive
  /// the run; the retry ladder arms a fresh one per attempt.
  const robust::Deadline* deadline = nullptr;
};

/// Per-mode sparse solve state inside a NewtonWorkspace (the DC and
/// transient stamps of reactive devices and lines differ structurally, so
/// each mode keeps its own pattern). The pattern is rebuilt per run (it
/// is cheap) but the SparseLu's symbolic analysis survives as long as the
/// pattern hash keeps matching — which is how corners sharing a topology
/// share one symbolic analysis.
struct SparseSystem {
  std::vector<linalg::SparseCoord> coords;  ///< raw stamped positions
  linalg::SparsePattern pattern;
  bool pattern_ready = false;
  int use_sparse = -1;  ///< resolved backend for this run: -1 undecided
  linalg::SparseMatrix a;
  linalg::SparseLu lu;

  // Cached numeric factorization key for the linear fast path (mirrors
  // the dense lu_* key).
  bool num_cached = false;
  double key_dt = 0.0;
  bool key_dc = false;
  double key_gmin = 0.0;
};

/// Reusable scratch for the Newton/MNA solve. Hoists the dense system
/// (Jacobian, right-hand side, candidate update) and the LU factorization
/// storage out of the per-step solve, so steady-state stepping performs no
/// heap allocation. One workspace serves one circuit at a time; the
/// two-argument run_transient owns one internally, and batch drivers (the
/// emc::sweep corner runner) pass a long-lived workspace to the
/// three-argument overload so back-to-back analyses of same-sized circuits
/// reuse the dense storage without reallocation.
class NewtonWorkspace {
 public:
  NewtonWorkspace() = default;
  explicit NewtonWorkspace(std::size_t n) { resize(n); }

  /// Size the scratch for an n-unknown system and drop any cached factors
  /// including the sparse symbolic analyses (the topology changed size).
  void resize(std::size_t n);

  /// Forget the cached linear-circuit factorizations (dense and sparse)
  /// and the per-run sparse pattern/backend decisions (topology or
  /// configuration may have changed). The sparse symbolic analyses are
  /// kept — they revalidate themselves against the rebuilt pattern's hash.
  void invalidate();

  linalg::Matrix g;           ///< MNA Jacobian scratch
  std::vector<double> rhs;    ///< right-hand side scratch
  std::vector<double> x_new;  ///< Newton candidate scratch
  linalg::LuFactor lu;        ///< refactorizable LU storage

  /// Chunk staging for run_transient_streamed (frame-major, chunk_frames x
  /// channels). Lives in the workspace so batch drivers streaming many
  /// records (sweep corners) reuse one buffer instead of allocating per
  /// run. Untouched by the dense-solve paths; resize() leaves it alone.
  std::vector<double> stream_buf;

  // Cached-factorization key for the linear fast path: the Jacobian of a
  // purely linear circuit depends only on (dt, dc, gmin), never on t, x,
  // or the source-stepping scale.
  bool lu_cached = false;
  double lu_dt = 0.0;
  bool lu_dc = false;
  double lu_gmin = 0.0;

  /// Sparse solve state, one per stamping mode (transient / DC).
  SparseSystem sp_tr;
  SparseSystem sp_dc;

  /// |dx|_inf per iteration of the most recent damped Newton solve,
  /// oldest-first and capped at kResidualHistoryCap (older entries are
  /// dropped). Failure reports copy it into SolveErrorInfo so a diverging
  /// solve's trajectory survives the throw. The linear fast path leaves
  /// it empty.
  static constexpr std::size_t kResidualHistoryCap = 12;
  std::vector<double> residual_history;
};

struct SolveStats {
  long total_newton_iters = 0;
  long steps = 0;
  long weak_steps = 0;  ///< steps accepted at loose tolerance (diagnostic)

  // Observability extensions (filled by the engine; zero-cost to carry).
  long restamps = 0;         ///< sparse pattern-growth retries (state-dependent structure)
  long dc_newton_iters = 0;  ///< Newton iterations spent on the operating point
  long dc_gmin_stages = 0;   ///< gmin continuation stages attempted
  long dc_source_steps = 0;  ///< source-stepping stages attempted (0 = not needed)
  int used_sparse = -1;      ///< transient backend: 1 sparse, 0 dense, -1 unknown

  /// Fold another run's statistics into this one (backend: keep when
  /// equal, -1 when mixed or unknown).
  void merge(const SolveStats& o) {
    total_newton_iters += o.total_newton_iters;
    steps += o.steps;
    weak_steps += o.weak_steps;
    restamps += o.restamps;
    dc_newton_iters += o.dc_newton_iters;
    dc_gmin_stages += o.dc_gmin_stages;
    dc_source_steps += o.dc_source_steps;
    if (used_sparse != o.used_sparse) used_sparse = -1;
  }
};

/// Full solution record of a transient run. Storage is one contiguous
/// step-major buffer (step k, unknown id at data()[k * n + id - 1]) — a
/// single allocation for the whole record instead of one vector per step.
class TransientResult {
 public:
  TransientResult(double t0, double dt, std::size_t n_unknowns);

  /// Waveform of node/extra unknown `id` (ground returns all-zero).
  sig::Waveform waveform(int id) const;

  /// Raw access for derived quantities.
  double value(std::size_t step, int id) const;
  /// Number of stored records: the initial state plus one per time step.
  std::size_t steps() const { return frames_; }
  double t0() const { return t0_; }
  double dt() const { return dt_; }

  /// The flat step-major sample buffer, steps() x n_unknowns.
  const std::vector<double>& data() const { return data_; }

  SolveStats stats;

 private:
  friend TransientResult run_transient(Circuit& ckt, const TransientOptions& opt,
                                       NewtonWorkspace& ws);
  double t0_, dt_;
  std::size_t n_;
  std::size_t frames_ = 0;
  std::vector<double> data_;  ///< frames_ * n_ samples, step-major
};

/// Solve the DC operating point (writes the solution into x, whose size
/// must be the circuit's unknown count). Uses damped Newton with gmin and
/// source stepping as fallbacks. Throws robust::SolveError (IS-A
/// std::runtime_error; info() carries the failure kind, the schedule
/// attempted and the Newton residual history) if everything fails.
void dc_operating_point(Circuit& ckt, std::vector<double>& x, const TransientOptions& opt);

/// Run a transient analysis; the result holds every unknown at every step
/// (the first record is the state at t_start). Implemented as a recording
/// sink over run_transient_streamed, so the two paths can never drift:
/// the record is bit-identical to what any other sink observes.
TransientResult run_transient(Circuit& ckt, const TransientOptions& opt);

/// Same analysis with caller-owned Newton scratch. The workspace is
/// resized to the circuit's unknown count only when it does not already
/// match (so a batch of equally sized circuits never reallocates) and any
/// cached linear-circuit factorization is dropped (the circuit behind it
/// may have changed). Results are identical to the two-argument overload.
TransientResult run_transient(Circuit& ckt, const TransientOptions& opt,
                              NewtonWorkspace& ws);

/// Streaming transient analysis: instead of materializing the record, emit
/// chunks of `chunk_frames` frames holding only the probed unknowns
/// (flat, frame-major, in `probes` order) through `sink`. Peak memory is
/// O(chunk_frames * probes.size()) on top of the dense solver scratch, for
/// any record length — the entry point for PRBS patterns far beyond what a
/// full record can hold.
///
/// `probes` are unknown ids (0 = ground streams constant 0.0); frame 0 is
/// the state at t_start, followed by one frame per step. The sink sees
/// begin() with the stream geometry (total_frames = step count + 1),
/// gap-free consume() calls, then finish(); if the sink or the solver
/// throws, the exception propagates and finish() is never called. Returns
/// the solver statistics a TransientResult would have carried.
SolveStats run_transient_streamed(Circuit& ckt, const TransientOptions& opt,
                                  NewtonWorkspace& ws, std::span<const int> probes,
                                  sig::SampleSink& sink,
                                  std::size_t chunk_frames = 1024);

}  // namespace emc::ckt
