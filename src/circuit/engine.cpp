#include "circuit/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/decomp.hpp"

namespace emc::ckt {

void NewtonWorkspace::resize(std::size_t n) {
  g = linalg::Matrix(n, n);
  rhs.assign(n, 0.0);
  x_new.assign(n, 0.0);
  invalidate();
}

void NewtonWorkspace::invalidate() { lu_cached = false; }

TransientResult::TransientResult(double t0, double dt, std::size_t n_unknowns)
    : t0_(t0), dt_(dt), n_(n_unknowns) {}

sig::Waveform TransientResult::waveform(int id) const {
  std::vector<double> y(frames_);
  if (id != 0) {
    const auto idx = static_cast<std::size_t>(id) - 1;
    if (idx >= n_) throw std::out_of_range("TransientResult::waveform: bad unknown id");
    for (std::size_t k = 0; k < frames_; ++k) y[k] = data_[k * n_ + idx];
  }
  return sig::Waveform(t0_, dt_, std::move(y));
}

double TransientResult::value(std::size_t step, int id) const {
  if (id == 0) return 0.0;
  if (step >= frames_) throw std::out_of_range("TransientResult::value: bad step");
  const auto idx = static_cast<std::size_t>(id) - 1;
  if (idx >= n_) throw std::out_of_range("TransientResult::value: bad unknown id");
  return data_[step * n_ + idx];
}

namespace {

/// True when no device's stamp depends on the candidate solution, i.e. the
/// MNA system G x = rhs is solved exactly by a single factorization.
bool circuit_is_linear(const Circuit& ckt) {
  for (const auto& dev : ckt.devices())
    if (dev->nonlinear()) return false;
  return true;
}

/// One damped Newton solve of the (non)linear MNA system at a fixed
/// (t, dt, dc, src_scale) configuration. Returns true on convergence;
/// x holds the solution (or the last iterate on failure). All scratch
/// lives in `ws`: steady-state calls perform no heap allocation.
bool newton_solve(Circuit& ckt, NewtonWorkspace& ws, bool linear, std::vector<double>& x,
                  const std::vector<double>& x_prev, double t, double dt, bool dc,
                  double src_scale, const TransientOptions& opt, long* iter_count) {
  const std::size_t n = x.size();

  const auto assemble = [&] {
    ws.g.fill(0.0);
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
    Stamper st(ws.g, ws.rhs);
    SimState state{x, x_prev, t, dt, dc, src_scale};
    for (const auto& dev : ckt.devices()) dev->stamp(st, state);
    for (std::size_t i = 0; i < n; ++i) ws.g(i, i) += opt.gmin;
  };

  if (linear && opt.cache_lu) {
    // Linear fast path: the Jacobian depends only on (dt, dc, gmin) —
    // never on t, x, or src_scale, which enter the right-hand side only —
    // so factor once per configuration and reuse the factors for every
    // step. The single solve is exact; no damping loop is needed.
    assemble();
    if (iter_count) ++(*iter_count);
    if (!ws.lu_cached || ws.lu_dt != dt || ws.lu_dc != dc || ws.lu_gmin != opt.gmin) {
      try {
        ws.lu.factor(ws.g);
      } catch (const std::runtime_error&) {
        ws.lu_cached = false;
        return false;  // singular system
      }
      ws.lu_cached = true;
      ws.lu_dt = dt;
      ws.lu_dc = dc;
      ws.lu_gmin = opt.gmin;
    }
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
    ws.lu.solve_in_place(ws.x_new);
    std::copy(ws.x_new.begin(), ws.x_new.end(), x.begin());
    return true;
  }

  for (int it = 0; it < opt.max_newton; ++it) {
    if (iter_count) ++(*iter_count);
    assemble();
    try {
      ws.lu.factor(ws.g);
    } catch (const std::runtime_error&) {
      ws.invalidate();
      return false;  // singular system at this iterate
    }
    ws.invalidate();  // the generic path leaves no reusable factorization
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.x_new.begin());
    ws.lu.solve_in_place(ws.x_new);

    double dx_max = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dx_max = std::max(dx_max, std::abs(ws.x_new[i] - x[i]));

    if (dx_max <= opt.tol) {
      std::copy(ws.x_new.begin(), ws.x_new.end(), x.begin());
      return true;
    }
    // Damping: clamp the update so nonlinear devices cannot be thrown far
    // outside their linearization region.
    const double scale = (dx_max > opt.dx_limit) ? opt.dx_limit / dx_max : 1.0;
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * (ws.x_new[i] - x[i]);
  }
  return false;
}

void dc_operating_point_impl(Circuit& ckt, NewtonWorkspace& ws, bool linear,
                             std::vector<double>& x, const TransientOptions& opt) {
  const std::vector<double> zeros(x.size(), 0.0);

  // Strategy 1: gmin continuation from a heavily damped system.
  for (double gmin : {1e-2, 1e-4, 1e-6, 1e-9, opt.gmin}) {
    TransientOptions o = opt;
    o.gmin = std::max(gmin, opt.gmin);
    o.max_newton = 200;
    if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, /*dc=*/true, 1.0, o,
                      nullptr)) {
      // Restart the continuation with source stepping below.
      break;
    }
    if (o.gmin == opt.gmin) return;
  }

  // Strategy 2: source stepping on top of gmin continuation. The failed
  // ladder solve left devices linearized around a diverged iterate — start
  // over from a clean slate: zero the solution AND reset device history.
  std::fill(x.begin(), x.end(), 0.0);
  for (const auto& dev : ckt.devices()) dev->reset();
  for (double scale : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    TransientOptions o = opt;
    o.max_newton = 300;
    o.gmin = 1e-9;
    if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, true, scale, o, nullptr))
      throw std::runtime_error("dc_operating_point: no convergence at source scale " +
                               std::to_string(scale));
  }
  TransientOptions o = opt;
  o.max_newton = 300;
  if (!newton_solve(ckt, ws, linear, x, zeros, opt.t_start, 0.0, true, 1.0, o, nullptr))
    throw std::runtime_error("dc_operating_point: final polish failed");
}

}  // namespace

void dc_operating_point(Circuit& ckt, std::vector<double>& x, const TransientOptions& opt) {
  NewtonWorkspace ws(x.size());
  dc_operating_point_impl(ckt, ws, circuit_is_linear(ckt), x, opt);
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opt) {
  NewtonWorkspace ws;
  return run_transient(ckt, opt, ws);
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opt,
                              NewtonWorkspace& ws) {
  // Thin recording-sink wrapper over the streamed path: probe every
  // unknown in id order, so the frame-major recording IS the step-major
  // record layout, moved into the result without reshaping.
  const int n_unknowns = ckt.finalize();
  std::vector<int> probes(static_cast<std::size_t>(n_unknowns));
  for (int i = 0; i < n_unknowns; ++i) probes[static_cast<std::size_t>(i)] = i + 1;

  sig::RecordingSink rec;
  TransientResult result(opt.t_start, opt.dt, static_cast<std::size_t>(n_unknowns));
  result.stats = run_transient_streamed(ckt, opt, ws, probes, rec);
  result.frames_ = rec.frames();
  result.data_ = std::move(rec).take_data();
  return result;
}

SolveStats run_transient_streamed(Circuit& ckt, const TransientOptions& opt,
                                  NewtonWorkspace& ws, std::span<const int> probes,
                                  sig::SampleSink& sink, std::size_t chunk_frames) {
  if (opt.t_stop <= opt.t_start)
    throw std::invalid_argument("run_transient: t_stop must exceed t_start");
  if (opt.dt <= 0.0) throw std::invalid_argument("run_transient: dt must be positive");
  if (chunk_frames == 0)
    throw std::invalid_argument("run_transient_streamed: chunk_frames must be >= 1");

  const int n_unknowns = ckt.finalize();
  for (int id : probes)
    if (id < 0 || id > n_unknowns)
      throw std::invalid_argument("run_transient_streamed: probe id out of range");

  std::vector<double> x(static_cast<std::size_t>(n_unknowns), 0.0);

  for (const auto& dev : ckt.devices()) dev->reset();

  // Reuse caller-owned scratch when the size already matches; a cached LU
  // can never be trusted across circuits, so it is dropped either way.
  if (ws.g.rows() != static_cast<std::size_t>(n_unknowns))
    ws.resize(static_cast<std::size_t>(n_unknowns));
  else
    ws.invalidate();
  const bool linear = circuit_is_linear(ckt);

  if (opt.dc_start) {
    dc_operating_point_impl(ckt, ws, linear, x, opt);
    SimState st{x, x, opt.t_start, 0.0, true, 1.0};
    for (const auto& dev : ckt.devices()) dev->post_dc(st);
  }

  const auto n_steps =
      static_cast<std::size_t>(std::llround((opt.t_stop - opt.t_start) / opt.dt));
  const std::size_t channels = probes.size();

  sig::StreamInfo info;
  info.t0 = opt.t_start;
  info.dt = opt.dt;
  info.channels = channels;
  info.total_frames = n_steps + 1;
  sink.begin(info);

  ws.stream_buf.resize(chunk_frames * channels);
  std::size_t buffered = 0;     ///< frames staged in stream_buf
  std::size_t flushed = 0;      ///< frames already delivered to the sink

  const auto stage_frame = [&] {
    double* dst = ws.stream_buf.data() + buffered * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      const int id = probes[c];
      dst[c] = id == 0 ? 0.0 : x[static_cast<std::size_t>(id) - 1];
    }
    if (++buffered == chunk_frames) {
      sig::SampleChunk chunk{flushed, buffered, channels, ws.stream_buf.data()};
      sink.consume(chunk);
      flushed += buffered;
      buffered = 0;
    }
  };

  SolveStats stats;
  stage_frame();  // frame 0: the state at t_start

  std::vector<double> x_prev = x;
  for (std::size_t k = 1; k <= n_steps; ++k) {
    const double t = opt.t_start + opt.dt * static_cast<double>(k);

    {
      SimState st{x_prev, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->start_step(st);
    }

    x = x_prev;  // warm start
    const bool ok = newton_solve(ckt, ws, linear, x, x_prev, t, opt.dt, false, 1.0, opt,
                                 &stats.total_newton_iters);
    if (!ok) {
      // Accept weakly converged steps (common right on a switching edge);
      // a genuinely diverged solve produces NaNs that we reject.
      bool finite = true;
      for (double v : x) finite = finite && std::isfinite(v);
      if (!finite)
        throw std::runtime_error("run_transient: Newton diverged at t = " +
                                 std::to_string(t));
      ++stats.weak_steps;
    }

    {
      SimState st{x, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->commit(st);
    }
    stage_frame();
    std::swap(x_prev, x);
    ++stats.steps;
  }

  if (buffered > 0) {
    sig::SampleChunk chunk{flushed, buffered, channels, ws.stream_buf.data()};
    sink.consume(chunk);
  }
  sink.finish();
  return stats;
}

}  // namespace emc::ckt
