#include "circuit/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "circuit/newton.hpp"
#include "linalg/decomp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace emc::ckt {

void NewtonWorkspace::resize(std::size_t n) {
  g = linalg::Matrix(n, n);
  rhs.assign(n, 0.0);
  x_new.assign(n, 0.0);
  // A size change is a topology change for good: drop the sparse systems
  // entirely (patterns, symbolic analyses, value storage).
  sp_tr = SparseSystem{};
  sp_dc = SparseSystem{};
  invalidate();
}

void NewtonWorkspace::invalidate() {
  lu_cached = false;
  for (SparseSystem* s : {&sp_tr, &sp_dc}) {
    s->num_cached = false;
    s->pattern_ready = false;
    s->use_sparse = -1;
  }
}

TransientResult::TransientResult(double t0, double dt, std::size_t n_unknowns)
    : t0_(t0), dt_(dt), n_(n_unknowns) {}

sig::Waveform TransientResult::waveform(int id) const {
  std::vector<double> y(frames_);
  if (id != 0) {
    const auto idx = static_cast<std::size_t>(id) - 1;
    if (idx >= n_) throw std::out_of_range("TransientResult::waveform: bad unknown id");
    for (std::size_t k = 0; k < frames_; ++k) y[k] = data_[k * n_ + idx];
  }
  return sig::Waveform(t0_, dt_, std::move(y));
}

double TransientResult::value(std::size_t step, int id) const {
  if (id == 0) return 0.0;
  if (step >= frames_) throw std::out_of_range("TransientResult::value: bad step");
  const auto idx = static_cast<std::size_t>(id) - 1;
  if (idx >= n_) throw std::out_of_range("TransientResult::value: bad unknown id");
  return data_[step * n_ + idx];
}

void dc_operating_point(Circuit& ckt, std::vector<double>& x, const TransientOptions& opt) {
  NewtonWorkspace ws(x.size());
  detail::dc_operating_point_impl(ckt, ws, detail::circuit_is_linear(ckt), x, opt);
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opt) {
  NewtonWorkspace ws;
  return run_transient(ckt, opt, ws);
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opt,
                              NewtonWorkspace& ws) {
  // Thin recording-sink wrapper over the streamed path: probe every
  // unknown in id order, so the frame-major recording IS the step-major
  // record layout, moved into the result without reshaping.
  const int n_unknowns = ckt.finalize();
  std::vector<int> probes(static_cast<std::size_t>(n_unknowns));
  for (int i = 0; i < n_unknowns; ++i) probes[static_cast<std::size_t>(i)] = i + 1;

  sig::RecordingSink rec;
  TransientResult result(opt.t_start, opt.dt, static_cast<std::size_t>(n_unknowns));
  result.stats = run_transient_streamed(ckt, opt, ws, probes, rec);
  result.frames_ = rec.frames();
  result.data_ = std::move(rec).take_data();
  return result;
}

SolveStats run_transient_streamed(Circuit& ckt, const TransientOptions& opt,
                                  NewtonWorkspace& ws, std::span<const int> probes,
                                  sig::SampleSink& sink, std::size_t chunk_frames) {
  static const obs::Counter c_runs("ckt.transient.runs");
  static const obs::Counter c_steps("ckt.transient.steps");
  static const obs::Counter c_iters("ckt.newton.iters");
  static const obs::Counter c_weak("ckt.newton.weak_steps");
  static const obs::Counter c_sparse_runs("ckt.transient.sparse_runs");
  static const obs::Counter c_dense_runs("ckt.transient.dense_runs");
  static const obs::Histogram h_step_iters("ckt.newton.iters_per_step");
  obs::Span span("transient");

  if (opt.t_stop <= opt.t_start)
    throw std::invalid_argument("run_transient: t_stop must exceed t_start");
  if (opt.dt <= 0.0) throw std::invalid_argument("run_transient: dt must be positive");
  if (chunk_frames == 0)
    throw std::invalid_argument("run_transient_streamed: chunk_frames must be >= 1");

  const int n_unknowns = ckt.finalize();
  for (int id : probes)
    if (id < 0 || id > n_unknowns)
      throw std::invalid_argument("run_transient_streamed: probe id out of range");

  std::vector<double> x(static_cast<std::size_t>(n_unknowns), 0.0);

  for (const auto& dev : ckt.devices()) dev->reset();

  // Reuse caller-owned scratch when the size already matches; a cached LU
  // can never be trusted across circuits, so it is dropped either way.
  if (ws.g.rows() != static_cast<std::size_t>(n_unknowns))
    ws.resize(static_cast<std::size_t>(n_unknowns));
  else
    ws.invalidate();
  const bool linear = detail::circuit_is_linear(ckt);

  SolveStats stats;
  if (opt.dc_start) {
    detail::dc_operating_point_impl(ckt, ws, linear, x, opt, &stats);
    SimState st{x, x, opt.t_start, 0.0, true, 1.0};
    for (const auto& dev : ckt.devices()) dev->post_dc(st);
  }

  const auto n_steps =
      static_cast<std::size_t>(std::llround((opt.t_stop - opt.t_start) / opt.dt));
  const std::size_t channels = probes.size();

  sig::StreamInfo info;
  info.t0 = opt.t_start;
  info.dt = opt.dt;
  info.channels = channels;
  info.total_frames = n_steps + 1;
  sink.begin(info);

  ws.stream_buf.resize(chunk_frames * channels);
  std::size_t buffered = 0;     ///< frames staged in stream_buf
  std::size_t flushed = 0;      ///< frames already delivered to the sink

  const robust::FaultCtx fctx = detail::fault_ctx(opt);
  double t_now = opt.t_start;

  // Chunk delivery; an injected write failure throws before the sink sees
  // the chunk (a real sink exception propagates as-is from consume()).
  const auto deliver = [&](std::size_t first, std::size_t frames) {
    if (robust::fault(robust::FaultSite::kSinkWrite, fctx)) {
      auto info = detail::solve_error_info(robust::FailureKind::kSinkFailure,
                                           "run_transient", opt, t_now, ws);
      info.detail = "injected sink write failure";
      throw robust::SolveError(std::move(info));
    }
    sig::SampleChunk chunk{first, frames, channels, ws.stream_buf.data()};
    sink.consume(chunk);
  };

  const auto stage_frame = [&] {
    double* dst = ws.stream_buf.data() + buffered * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      const int id = probes[c];
      dst[c] = id == 0 ? 0.0 : x[static_cast<std::size_t>(id) - 1];
    }
    if (++buffered == chunk_frames) {
      deliver(flushed, buffered);
      flushed += buffered;
      buffered = 0;
    }
  };

  stage_frame();  // frame 0: the state at t_start

  std::vector<double> x_prev = x;
  for (std::size_t k = 1; k <= n_steps; ++k) {
    const double t = opt.t_start + opt.dt * static_cast<double>(k);
    t_now = t;
    obs::Span step_span("newton_step");

    // Per-step cooperative cancellation (newton_solve also checks per
    // iteration, so one stuck solve cannot overrun the budget by a corner).
    const bool forced_overrun = robust::fault(robust::FaultSite::kDeadline, fctx);
    if (forced_overrun || (opt.deadline != nullptr && opt.deadline->expired())) {
      auto info = detail::solve_error_info(robust::FailureKind::kDeadlineExceeded,
                                           "run_transient", opt, t, ws);
      if (forced_overrun) {
        info.detail = "injected deadline overrun";
      } else {
        char detail[64];
        std::snprintf(detail, sizeof detail, "wall budget %.3g s exhausted",
                      opt.deadline->budget_s());
        info.detail = detail;
      }
      throw robust::SolveError(std::move(info));
    }

    {
      SimState st{x_prev, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->start_step(st);
    }

    x = x_prev;  // warm start
    const long iters_before = stats.total_newton_iters;
    const bool ok = detail::newton_solve(ckt, ws, linear, x, x_prev, t, opt.dt, false, 1.0,
                                         opt, &stats);
    h_step_iters.record(static_cast<std::uint64_t>(stats.total_newton_iters - iters_before));
    const bool poisoned = robust::fault(robust::FaultSite::kTransientStep, fctx);
    if (poisoned) x[0] = std::numeric_limits<double>::quiet_NaN();
    if (!ok || poisoned) {
      // Accept weakly converged steps (common right on a switching edge);
      // a genuinely diverged solve produces NaNs that we reject.
      bool finite = true;
      for (double v : x) finite = finite && std::isfinite(v);
      if (!finite) {
        auto info = detail::solve_error_info(robust::FailureKind::kTransientDivergence,
                                             "run_transient", opt, t, ws);
        if (poisoned) info.detail = "injected NaN residual";
        throw robust::SolveError(std::move(info));
      }
      ++stats.weak_steps;
    }

    {
      SimState st{x, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->commit(st);
    }
    stage_frame();
    std::swap(x_prev, x);
    ++stats.steps;
  }

  if (buffered > 0) deliver(flushed, buffered);
  sink.finish();

  stats.used_sparse = ws.sp_tr.use_sparse == 1 ? 1 : 0;
  c_runs.add();
  c_steps.add(static_cast<std::uint64_t>(stats.steps));
  c_iters.add(static_cast<std::uint64_t>(stats.total_newton_iters));
  c_weak.add(static_cast<std::uint64_t>(stats.weak_steps));
  (stats.used_sparse == 1 ? c_sparse_runs : c_dense_runs).add();
  return stats;
}

}  // namespace emc::ckt
