#include "circuit/engine.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/decomp.hpp"

namespace emc::ckt {

TransientResult::TransientResult(double t0, double dt, std::size_t n_unknowns)
    : t0_(t0), dt_(dt), n_(n_unknowns) {}

sig::Waveform TransientResult::waveform(int id) const {
  std::vector<double> y(data_.size());
  if (id != 0) {
    const auto idx = static_cast<std::size_t>(id) - 1;
    if (idx >= n_) throw std::out_of_range("TransientResult::waveform: bad unknown id");
    for (std::size_t k = 0; k < data_.size(); ++k) y[k] = data_[k][idx];
  }
  return sig::Waveform(t0_, dt_, std::move(y));
}

double TransientResult::value(std::size_t step, int id) const {
  if (id == 0) return 0.0;
  return data_.at(step).at(static_cast<std::size_t>(id) - 1);
}

namespace {

/// One damped Newton solve of the (non)linear MNA system at a fixed
/// (t, dt, dc, src_scale) configuration. Returns true on convergence;
/// x holds the solution (or the last iterate on failure).
bool newton_solve(Circuit& ckt, std::vector<double>& x, const std::vector<double>& x_prev,
                  double t, double dt, bool dc, double src_scale,
                  const TransientOptions& opt, long* iter_count) {
  const std::size_t n = x.size();
  linalg::Matrix g(n, n);
  std::vector<double> rhs(n);

  for (int it = 0; it < opt.max_newton; ++it) {
    if (iter_count) ++(*iter_count);
    g.fill(0.0);
    for (auto& v : rhs) v = 0.0;
    Stamper st(g, rhs);
    SimState state{x, x_prev, t, dt, dc, src_scale};
    for (const auto& dev : ckt.devices()) dev->stamp(st, state);
    for (std::size_t i = 0; i < n; ++i) g(i, i) += opt.gmin;

    std::vector<double> x_new;
    try {
      x_new = linalg::solve_dense(g, rhs);
    } catch (const std::runtime_error&) {
      return false;  // singular system at this iterate
    }

    double dx_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) dx_max = std::max(dx_max, std::abs(x_new[i] - x[i]));

    if (dx_max <= opt.tol) {
      x = std::move(x_new);
      return true;
    }
    // Damping: clamp the update so nonlinear devices cannot be thrown far
    // outside their linearization region.
    const double scale = (dx_max > opt.dx_limit) ? opt.dx_limit / dx_max : 1.0;
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * (x_new[i] - x[i]);
  }
  return false;
}

}  // namespace

void dc_operating_point(Circuit& ckt, std::vector<double>& x, const TransientOptions& opt) {
  const std::vector<double> zeros(x.size(), 0.0);

  // Strategy 1: gmin continuation from a heavily damped system.
  for (double gmin : {1e-2, 1e-4, 1e-6, 1e-9, opt.gmin}) {
    TransientOptions o = opt;
    o.gmin = std::max(gmin, opt.gmin);
    o.max_newton = 200;
    if (!newton_solve(ckt, x, zeros, opt.t_start, 0.0, /*dc=*/true, 1.0, o, nullptr)) {
      // Restart the continuation with source stepping below.
      break;
    }
    if (o.gmin == opt.gmin) return;
  }

  // Strategy 2: source stepping on top of gmin continuation.
  std::fill(x.begin(), x.end(), 0.0);
  for (double scale : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    TransientOptions o = opt;
    o.max_newton = 300;
    o.gmin = 1e-9;
    if (!newton_solve(ckt, x, zeros, opt.t_start, 0.0, true, scale, o, nullptr))
      throw std::runtime_error("dc_operating_point: no convergence at source scale " +
                               std::to_string(scale));
  }
  TransientOptions o = opt;
  o.max_newton = 300;
  if (!newton_solve(ckt, x, zeros, opt.t_start, 0.0, true, 1.0, o, nullptr))
    throw std::runtime_error("dc_operating_point: final polish failed");
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opt) {
  if (opt.t_stop <= opt.t_start)
    throw std::invalid_argument("run_transient: t_stop must exceed t_start");
  if (opt.dt <= 0.0) throw std::invalid_argument("run_transient: dt must be positive");

  const int n_unknowns = ckt.finalize();
  std::vector<double> x(static_cast<std::size_t>(n_unknowns), 0.0);

  for (const auto& dev : ckt.devices()) dev->reset();

  if (opt.dc_start) {
    dc_operating_point(ckt, x, opt);
    SimState st{x, x, opt.t_start, 0.0, true, 1.0};
    for (const auto& dev : ckt.devices()) dev->post_dc(st);
  }

  const auto n_steps =
      static_cast<std::size_t>(std::llround((opt.t_stop - opt.t_start) / opt.dt));

  TransientResult result(opt.t_start, opt.dt, static_cast<std::size_t>(n_unknowns));
  result.data_.reserve(n_steps + 1);
  result.data_.push_back(x);

  std::vector<double> x_prev = x;
  for (std::size_t k = 1; k <= n_steps; ++k) {
    const double t = opt.t_start + opt.dt * static_cast<double>(k);

    {
      SimState st{x_prev, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->start_step(st);
    }

    x = x_prev;  // warm start
    const bool ok = newton_solve(ckt, x, x_prev, t, opt.dt, false, 1.0, opt,
                                 &result.stats.total_newton_iters);
    if (!ok) {
      // Accept weakly converged steps (common right on a switching edge);
      // a genuinely diverged solve produces NaNs that we reject.
      bool finite = true;
      for (double v : x) finite = finite && std::isfinite(v);
      if (!finite)
        throw std::runtime_error("run_transient: Newton diverged at t = " +
                                 std::to_string(t));
      ++result.stats.weak_steps;
    }

    {
      SimState st{x, x_prev, t, opt.dt, false, 1.0};
      for (const auto& dev : ckt.devices()) dev->commit(st);
    }
    result.data_.push_back(x);
    x_prev = x;
    ++result.stats.steps;
  }
  return result;
}

}  // namespace emc::ckt
