// Nonlinear semiconductor primitives used by the reference ("transistor
// level") models: junction diode and level-1 (Shichman-Hodges) MOSFET.
#pragma once

#include "circuit/device.hpp"

namespace emc::ckt {

struct DiodeParams {
  double is = 1e-14;   ///< saturation current [A]
  double n = 1.0;      ///< emission coefficient
  double vt = 0.02585; ///< thermal voltage [V]
  double gmin = 1e-12; ///< parallel leakage keeping the Jacobian regular
};

/// Junction diode, anode a -> cathode b.
class Diode : public Device {
 public:
  Diode(int a, int b, DiodeParams p = {});
  bool nonlinear() const override { return true; }
  void stamp(Stamper& s, const SimState& st) const override;

  /// Exponential i(v) and slope with overflow-safe linearization above
  /// the internal critical voltage.
  std::pair<double, double> eval(double v) const;

 private:
  int a_, b_;
  DiodeParams p_;
};

enum class MosType { Nmos, Pmos };

struct MosParams {
  MosType type = MosType::Nmos;
  double kp = 100e-6;   ///< process transconductance [A/V^2]
  double vt0 = 0.5;     ///< threshold voltage magnitude [V]
  double lambda = 0.05; ///< channel-length modulation [1/V]
  double w = 10e-6;     ///< channel width [m]
  double l = 0.5e-6;    ///< channel length [m]

  double beta() const { return kp * w / l; }
};

/// Level-1 MOSFET (drain, gate, source; bulk tied to source). Symmetric:
/// drain/source roles swap automatically when vds changes sign.
class Mosfet : public Device {
 public:
  Mosfet(int d, int g, int s, MosParams p);
  bool nonlinear() const override { return true; }
  void stamp(Stamper& s, const SimState& st) const override;

  /// Drain current into the drain terminal for the given node voltages
  /// (sign convention of the device type). Exposed for unit tests.
  double drain_current(double vd, double vg, double vs) const;

 private:
  struct OpPoint {
    double id;   // current into effective drain
    double gm;   // d id / d vgs
    double gds;  // d id / d vds
  };
  OpPoint eval_normalized(double vgs, double vds) const;

  int d_, g_, s_;
  MosParams p_;
};

}  // namespace emc::ckt
